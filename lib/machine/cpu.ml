type t = {
  regs : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
}

let mask32 v = v land 0xFFFFFFFF

let create ?(sp = 0) ?(pc = 0) () =
  let regs = Array.make 16 0 in
  regs.(13) <- mask32 sp;
  regs.(15) <- mask32 pc;
  { regs; n = false; z = false; c = false; v = false }

let reset ?(sp = 0) ?(pc = 0) t =
  Array.fill t.regs 0 16 0;
  t.regs.(13) <- mask32 sp;
  t.regs.(15) <- mask32 pc;
  t.n <- false;
  t.z <- false;
  t.c <- false;
  t.v <- false

let get t r =
  let i = Thumb.Reg.to_int r in
  if i = 15 then mask32 (t.regs.(15) + 4) else t.regs.(i)

let set t r v =
  let i = Thumb.Reg.to_int r in
  if i = 15 then t.regs.(15) <- mask32 v land lnot 1 else t.regs.(i) <- mask32 v

let pc t = t.regs.(15)
let set_pc t v = t.regs.(15) <- mask32 v land lnot 1

let copy t = { t with regs = Array.copy t.regs }

let pp ppf t =
  for i = 0 to 15 do
    if i mod 4 = 0 && i > 0 then Fmt.cut ppf ();
    Fmt.pf ppf "%a=0x%08x " Thumb.Reg.pp (Thumb.Reg.of_int i) t.regs.(i)
  done;
  Fmt.pf ppf "[%c%c%c%c]"
    (if t.n then 'N' else '-')
    (if t.z then 'Z' else '-')
    (if t.c then 'C' else '-')
    (if t.v then 'V' else '-')

let condition_holds t (c : Thumb.Instr.cond) =
  match c with
  | EQ -> t.z
  | NE -> not t.z
  | CS -> t.c
  | CC -> not t.c
  | MI -> t.n
  | PL -> not t.n
  | VS -> t.v
  | VC -> not t.v
  | HI -> t.c && not t.z
  | LS -> (not t.c) || t.z
  | GE -> t.n = t.v
  | LT -> t.n <> t.v
  | GT -> (not t.z) && t.n = t.v
  | LE -> t.z || t.n <> t.v
