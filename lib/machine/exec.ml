type stop =
  | Breakpoint of int
  | Swi_trap of int
  | Bad_read of int
  | Bad_write of int
  | Bad_fetch of int
  | Invalid_instruction of int
  | Step_limit

let pp_stop ppf = function
  | Breakpoint n -> Fmt.pf ppf "breakpoint #%d" n
  | Swi_trap n -> Fmt.pf ppf "swi #%d" n
  | Bad_read a -> Fmt.pf ppf "bad read at 0x%08x" a
  | Bad_write a -> Fmt.pf ppf "bad write at 0x%08x" a
  | Bad_fetch a -> Fmt.pf ppf "bad fetch at 0x%08x" a
  | Invalid_instruction w -> Fmt.pf ppf "invalid instruction 0x%04x" w
  | Step_limit -> Fmt.string ppf "step limit exhausted"

let stop_equal (a : stop) (b : stop) = a = b

type step_result = Running | Stopped of stop

(* The hot path must not allocate: a stop is the rare case, so it
   travels as an exception and is caught once at the top of [execute].
   Memory faults arrive as [Memory.Fault] and are reclassified at the
   access site (loads become [Bad_read], stores [Bad_write]), exactly
   like the old [Result] protocol but without boxing an [Ok] per
   access. *)
exception Stop_exn of stop

let mask32 v = v land 0xFFFFFFFF
let bit31 v = v land 0x80000000 <> 0

open Thumb

(* Flag updates ---------------------------------------------------------- *)

let set_nz (cpu : Cpu.t) result =
  cpu.n <- bit31 result;
  cpu.z <- result = 0

(* result of a + b + carry_in over 32 bits, with NZCV updated in place
   (no intermediate tuple, so arithmetic instructions stay on the minor-
   heap-free path). *)
let add_with_carry (cpu : Cpu.t) a b carry_in =
  let wide = a + b + if carry_in then 1 else 0 in
  let result = mask32 wide in
  cpu.c <- wide > 0xFFFFFFFF;
  (* signed overflow: operands same sign, result different sign *)
  cpu.v <- bit31 (lnot (a lxor b) land (a lxor result));
  cpu.n <- bit31 result;
  cpu.z <- result = 0;
  result

let adds cpu a b = add_with_carry cpu a b false
let subs cpu a b = add_with_carry cpu a (mask32 (lnot b)) true
let adcs (cpu : Cpu.t) a b = add_with_carry cpu a b cpu.c
let sbcs (cpu : Cpu.t) a b = add_with_carry cpu a (mask32 (lnot b)) cpu.c

(* Immediate-amount shifts (format 1): amount 0 encodes special cases. *)
let shift_imm (cpu : Cpu.t) op value amount =
  match (op : Instr.shift_op), amount with
  | Lsl, 0 -> value (* MOVS: carry unchanged *)
  | Lsl, n ->
    cpu.c <- value land (1 lsl (32 - n)) <> 0;
    mask32 (value lsl n)
  | Lsr, 0 ->
    (* encodes LSR #32 *)
    cpu.c <- bit31 value;
    0
  | Lsr, n ->
    cpu.c <- value land (1 lsl (n - 1)) <> 0;
    value lsr n
  | Asr, 0 ->
    (* encodes ASR #32 *)
    cpu.c <- bit31 value;
    if bit31 value then 0xFFFFFFFF else 0
  | Asr, n ->
    cpu.c <- value land (1 lsl (n - 1)) <> 0;
    let signed = if bit31 value then value lor (-1 lxor 0xFFFFFFFF) else value in
    mask32 (signed asr n)

(* Register-amount shifts (format 4): amount taken from low byte. *)
let shift_reg (cpu : Cpu.t) op value amount =
  let amount = amount land 0xFF in
  if amount = 0 then value
  else
    match (op : Instr.alu_op) with
    | LSLr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (32 - amount)) <> 0;
        mask32 (value lsl amount)
      end
      else if amount = 32 then begin
        cpu.c <- value land 1 <> 0;
        0
      end
      else begin
        cpu.c <- false;
        0
      end
    | LSRr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (amount - 1)) <> 0;
        value lsr amount
      end
      else if amount = 32 then begin
        cpu.c <- bit31 value;
        0
      end
      else begin
        cpu.c <- false;
        0
      end
    | ASRr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (amount - 1)) <> 0;
        let signed =
          if bit31 value then value lor (-1 lxor 0xFFFFFFFF) else value
        in
        mask32 (signed asr amount)
      end
      else begin
        cpu.c <- bit31 value;
        if bit31 value then 0xFFFFFFFF else 0
      end
    | ROR ->
      let n = amount land 31 in
      let result =
        if n = 0 then value else mask32 ((value lsr n) lor (value lsl (32 - n)))
      in
      cpu.c <- bit31 result;
      result
    | AND | EOR | ADC | SBC | TST | NEG | CMPr | CMN | ORR | MUL | BIC | MVN ->
      invalid_arg "Exec.shift_reg: not a shift op"

(* Memory helpers --------------------------------------------------------- *)

let sign_extend_8 v = if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
let sign_extend_16 v = if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v

let load_w mem addr =
  match Memory.read_u32_exn mem addr with
  | v -> v
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_read a))

let load_h mem addr =
  match Memory.read_u16_exn mem addr with
  | v -> v
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_read a))

let load_b mem addr =
  match Memory.read_u8_exn mem addr with
  | v -> v
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_read a))

let store_w mem addr v =
  match Memory.write_u32_exn mem addr v with
  | () -> ()
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_write a))

let store_h mem addr v =
  match Memory.write_u16_exn mem addr v with
  | () -> ()
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_write a))

let store_b mem addr v =
  match Memory.write_u8_exn mem addr v with
  | () -> ()
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    raise (Stop_exn (Bad_write a))

(* Registers r0..r7 present in an 8-bit register list, lowest first,
   precomputed for all 256 lists so PUSH/POP/STMIA/LDMIA never build a
   list at execution time. *)
let rlist_table =
  Array.init 256 (fun rlist ->
      List.filter (fun i -> rlist land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let rlist_count =
  Array.init 256 (fun rlist -> List.length rlist_table.(rlist))

(* Execution --------------------------------------------------------------- *)

(* Each arm is responsible for the PC: fall-through arms end with
   [next2], branch arms call [Cpu.set_pc] themselves (it masks to 32
   bits and clears bit 0, as the old [next] ref protocol did). *)
let next2 (cpu : Cpu.t) pc =
  Cpu.set_pc cpu (pc + 2);
  Running

let execute_exn mem (cpu : Cpu.t) (i : Instr.t) : step_result =
  let pc = Cpu.pc cpu in
  match i with
  | Shift (op, rd, rs, imm) ->
    let r = shift_imm cpu op (Cpu.get cpu rs) imm in
    set_nz cpu r;
    Cpu.set cpu rd r;
    next2 cpu pc
  | Add_sub { sub; imm; rd; rs; operand } ->
    let b = if imm then operand else Cpu.get cpu (Reg.of_int operand) in
    let a = Cpu.get cpu rs in
    Cpu.set cpu rd (if sub then subs cpu a b else adds cpu a b);
    next2 cpu pc
  | Imm (MOVi, rd, imm) ->
    set_nz cpu imm;
    Cpu.set cpu rd imm;
    next2 cpu pc
  | Imm (CMPi, rd, imm) ->
    ignore (subs cpu (Cpu.get cpu rd) imm);
    next2 cpu pc
  | Imm (ADDi, rd, imm) ->
    Cpu.set cpu rd (adds cpu (Cpu.get cpu rd) imm);
    next2 cpu pc
  | Imm (SUBi, rd, imm) ->
    Cpu.set cpu rd (subs cpu (Cpu.get cpu rd) imm);
    next2 cpu pc
  | Alu (op, rd, rs) ->
    let a = Cpu.get cpu rd and b = Cpu.get cpu rs in
    (match op with
    | AND ->
      let r = a land b in
      set_nz cpu r;
      Cpu.set cpu rd r
    | EOR ->
      let r = a lxor b in
      set_nz cpu r;
      Cpu.set cpu rd r
    | ORR ->
      let r = a lor b in
      set_nz cpu r;
      Cpu.set cpu rd r
    | BIC ->
      let r = a land lnot b land 0xFFFFFFFF in
      set_nz cpu r;
      Cpu.set cpu rd r
    | MVN ->
      let r = mask32 (lnot b) in
      set_nz cpu r;
      Cpu.set cpu rd r
    | TST -> set_nz cpu (a land b)
    | NEG -> Cpu.set cpu rd (subs cpu 0 b)
    | CMPr -> ignore (subs cpu a b)
    | CMN -> ignore (adds cpu a b)
    | ADC -> Cpu.set cpu rd (adcs cpu a b)
    | SBC -> Cpu.set cpu rd (sbcs cpu a b)
    | MUL ->
      let r = mask32 (a * b) in
      set_nz cpu r;
      Cpu.set cpu rd r
    | LSLr | LSRr | ASRr | ROR ->
      let r = shift_reg cpu op a b in
      set_nz cpu r;
      Cpu.set cpu rd r);
    next2 cpu pc
  | Hi_add (rd, rm) ->
    let r = mask32 (Cpu.get cpu rd + Cpu.get cpu rm) in
    if Reg.equal rd Reg.pc then begin
      Cpu.set_pc cpu r;
      Running
    end
    else begin
      Cpu.set cpu rd r;
      next2 cpu pc
    end
  | Hi_cmp (rd, rm) ->
    ignore (subs cpu (Cpu.get cpu rd) (Cpu.get cpu rm));
    next2 cpu pc
  | Hi_mov (rd, rm) ->
    let r = Cpu.get cpu rm in
    if Reg.equal rd Reg.pc then begin
      Cpu.set_pc cpu r;
      Running
    end
    else begin
      Cpu.set cpu rd r;
      next2 cpu pc
    end
  | Bx rm ->
    let target = Cpu.get cpu rm in
    if target land 1 = 0 then
      (* Leaving Thumb state is an error on a Cortex-M-class core. *)
      Stopped (Invalid_instruction (target land 0xFFFF))
    else begin
      Cpu.set_pc cpu target;
      Running
    end
  | Ldr_pc (rd, imm) ->
    let addr = ((pc + 4) land lnot 3) + (imm * 4) in
    Cpu.set cpu rd (load_w mem addr);
    next2 cpu pc
  | Mem_reg { load = l; byte; rd; rb; ro } ->
    let addr = mask32 (Cpu.get cpu rb + Cpu.get cpu ro) in
    (if l then
       Cpu.set cpu rd (if byte then load_b mem addr else load_w mem addr)
     else if byte then store_b mem addr (Cpu.get cpu rd)
     else store_w mem addr (Cpu.get cpu rd));
    next2 cpu pc
  | Mem_sign { op; rd; rb; ro } ->
    let addr = mask32 (Cpu.get cpu rb + Cpu.get cpu ro) in
    (match op with
    | STRH -> store_h mem addr (Cpu.get cpu rd)
    | LDRH -> Cpu.set cpu rd (load_h mem addr)
    | LDSB -> Cpu.set cpu rd (sign_extend_8 (load_b mem addr))
    | LDSH -> Cpu.set cpu rd (sign_extend_16 (load_h mem addr)));
    next2 cpu pc
  | Mem_imm { load = l; byte; rd; rb; imm } ->
    let addr = mask32 (Cpu.get cpu rb + if byte then imm else imm * 4) in
    (if l then
       Cpu.set cpu rd (if byte then load_b mem addr else load_w mem addr)
     else if byte then store_b mem addr (Cpu.get cpu rd)
     else store_w mem addr (Cpu.get cpu rd));
    next2 cpu pc
  | Mem_half { load = l; rd; rb; imm } ->
    let addr = mask32 (Cpu.get cpu rb + (imm * 2)) in
    (if l then Cpu.set cpu rd (load_h mem addr)
     else store_h mem addr (Cpu.get cpu rd));
    next2 cpu pc
  | Mem_sp { load = l; rd; imm } ->
    let addr = mask32 (Cpu.get cpu Reg.sp + (imm * 4)) in
    (if l then Cpu.set cpu rd (load_w mem addr)
     else store_w mem addr (Cpu.get cpu rd));
    next2 cpu pc
  | Load_addr { from_sp; rd; imm } ->
    let base = if from_sp then Cpu.get cpu Reg.sp else (pc + 4) land lnot 3 in
    Cpu.set cpu rd (mask32 (base + (imm * 4)));
    next2 cpu pc
  | Sp_adjust words ->
    Cpu.set cpu Reg.sp (mask32 (Cpu.get cpu Reg.sp + (words * 4)));
    next2 cpu pc
  | Push { rlist; lr } ->
    let rlist = rlist land 0xFF in
    let count = rlist_count.(rlist) + if lr then 1 else 0 in
    let base = mask32 (Cpu.get cpu Reg.sp - (4 * count)) in
    let rec go addr = function
      | [] -> addr
      | r :: rest ->
        store_w mem addr (Cpu.get cpu (Reg.of_int r));
        go (addr + 4) rest
    in
    let addr = go base rlist_table.(rlist) in
    if lr then store_w mem addr (Cpu.get cpu Reg.lr);
    Cpu.set cpu Reg.sp base;
    next2 cpu pc
  | Pop { rlist; pc = load_pc } ->
    let rlist = rlist land 0xFF in
    let base = Cpu.get cpu Reg.sp in
    let rec go addr = function
      | [] -> addr
      | r :: rest ->
        Cpu.set cpu (Reg.of_int r) (load_w mem addr);
        go (addr + 4) rest
    in
    let addr = go base rlist_table.(rlist) in
    if load_pc then begin
      let target = load_w mem addr in
      Cpu.set cpu Reg.sp (mask32 (addr + 4));
      Cpu.set_pc cpu target;
      Running
    end
    else begin
      Cpu.set cpu Reg.sp (mask32 addr);
      next2 cpu pc
    end
  | Stmia (rb, rlist) ->
    let rec go addr = function
      | [] -> addr
      | r :: rest ->
        store_w mem addr (Cpu.get cpu (Reg.of_int r));
        go (mask32 (addr + 4)) rest
    in
    let final = go (Cpu.get cpu rb) rlist_table.(rlist land 0xFF) in
    Cpu.set cpu rb final;
    next2 cpu pc
  | Ldmia (rb, rlist) ->
    let rec go addr = function
      | [] -> addr
      | r :: rest ->
        Cpu.set cpu (Reg.of_int r) (load_w mem addr);
        go (mask32 (addr + 4)) rest
    in
    let final = go (Cpu.get cpu rb) rlist_table.(rlist land 0xFF) in
    Cpu.set cpu rb final;
    next2 cpu pc
  | B_cond (cond, off) ->
    if Cpu.condition_holds cpu cond then begin
      Cpu.set_pc cpu (pc + 4 + (off * 2));
      Running
    end
    else next2 cpu pc
  | Swi imm -> Stopped (Swi_trap imm)
  | B off ->
    Cpu.set_pc cpu (pc + 4 + (off * 2));
    Running
  | Bl_hi off ->
    Cpu.set cpu Reg.lr (mask32 (pc + 4 + (off lsl 12)));
    next2 cpu pc
  | Bl_lo off ->
    let target = mask32 (Cpu.get cpu Reg.lr + (off lsl 1)) in
    Cpu.set cpu Reg.lr ((pc + 2) lor 1);
    Cpu.set_pc cpu target;
    Running
  | Bkpt imm -> Stopped (Breakpoint imm)
  | Undefined w -> Stopped (Invalid_instruction w)

let execute mem cpu i =
  match execute_exn mem cpu i with
  | r -> r
  | exception Stop_exn s -> Stopped s

let fetch_and_execute mem cpu pc =
  match Memory.read_u16_exn mem pc with
  | w -> execute mem cpu Decode.table.(w)
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    Stopped (Bad_fetch a)

let step ?fetch mem cpu =
  let pc = Cpu.pc cpu in
  match fetch with
  | None -> fetch_and_execute mem cpu pc
  | Some f -> (
    match f pc with
    | Some w -> execute mem cpu (Decode.of_word w)
    | None -> fetch_and_execute mem cpu pc)

let run ?fetch ?(max_steps = 10_000) mem cpu =
  let rec go remaining =
    if remaining = 0 then Step_limit
    else
      match step ?fetch mem cpu with
      | Running -> go (remaining - 1)
      | Stopped s -> s
  in
  go max_steps
