(** ARM Cortex-M-class CPU register state: [r0]-[r15] plus the NZCV
    application flags. All register values are 32-bit words stored in
    OCaml ints. The [pc] slot holds the address of the instruction being
    executed; reading [pc] as an operand yields [address + 4] per the
    Thumb pipeline-visible convention. *)

type t = {
  regs : int array;  (** 16 words; index with [Thumb.Reg.to_int]. *)
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
}

val create : ?sp:int -> ?pc:int -> unit -> t

val reset : ?sp:int -> ?pc:int -> t -> unit
(** Restore the power-on state [create] builds, in place: all registers
    zero except [sp]/[pc], all flags clear. Lets sweep rigs reuse one
    CPU across millions of runs instead of allocating per run. *)

val get : t -> Thumb.Reg.t -> int
(** Operand read: [pc] reads as the current instruction address + 4. *)

val set : t -> Thumb.Reg.t -> int -> unit
(** Result write, masked to 32 bits. Writing [pc] clears bit 0. *)

val pc : t -> int
(** Raw current instruction address (no +4 adjustment). *)

val set_pc : t -> int -> unit
val copy : t -> t
val pp : t Fmt.t

val condition_holds : t -> Thumb.Instr.cond -> bool
(** Evaluate a branch condition against the NZCV flags. *)
