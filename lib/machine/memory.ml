type fault = Unmapped of int | Unaligned of int

exception Fault of fault

let pp_fault ppf = function
  | Unmapped a -> Fmt.pf ppf "unmapped access at 0x%08x" a
  | Unaligned a -> Fmt.pf ppf "unaligned access at 0x%08x" a

type region =
  | Ram of { base : int; data : Bytes.t }
  | Device of { base : int; size : int; read : int -> int; write : int -> int -> unit }

(* A write journal records (address, previous byte) pairs for every RAM
   byte store, packed as [(addr lsl 8) lor old] — addresses are below
   2^32 and OCaml ints are 63-bit, so the packing is exact. The
   exhaustive fault campaigns attach one journal per rig: undoing to a
   mark costs only the bytes actually dirtied since, instead of a
   whole-address-space snapshot blit, and the recorded pre-images are
   how the rig learns each byte's pristine value for state hashing. *)
type journal = { mutable packed : int array; mutable len : int }

(* [cache_lo, cache_hi) is the span of the most recently hit RAM region,
   backed by [cache_data] (address [a] lives at offset [a - cache_lo]).
   An empty cache is encoded as [cache_hi = 0], which no address
   satisfies. Devices are never cached: their handlers must run on every
   access. With the cache warm, an aligned halfword or word access is a
   bounds check plus one [Bytes] primitive — no list walk, no per-byte
   recursion, no allocation. *)
type t = {
  mutable regions : region list;
  mutable cache_lo : int;
  mutable cache_hi : int;
  mutable cache_data : Bytes.t;
  mutable journal : journal option;
}

let create () =
  { regions = []; cache_lo = 0; cache_hi = 0; cache_data = Bytes.empty;
    journal = None }

let journal_create () = { packed = Array.make 256 0; len = 0 }

let journal_note j addr old =
  let n = j.len in
  if n = Array.length j.packed then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit j.packed 0 bigger 0 n;
    j.packed <- bigger
  end;
  j.packed.(n) <- (addr lsl 8) lor old;
  j.len <- n + 1

let attach_journal t j = t.journal <- Some j
let detach_journal t = t.journal <- None
let journal_length j = j.len

let journal_entry j i =
  if i < 0 || i >= j.len then invalid_arg "Memory.journal_entry";
  let p = j.packed.(i) in
  (p lsr 8, p land 0xFF)

let invalidate_cache t =
  t.cache_lo <- 0;
  t.cache_hi <- 0;
  t.cache_data <- Bytes.empty

let region_span = function
  | Ram { base; data } -> (base, base + Bytes.length data)
  | Device { base; size; _ } -> (base, base + size)

let overlaps t lo hi =
  List.exists
    (fun r ->
      let rlo, rhi = region_span r in
      lo < rhi && rlo < hi)
    t.regions

let check_new t ~addr ~size =
  if size <= 0 then invalid_arg "Memory: non-positive region size";
  if addr < 0 then invalid_arg "Memory: negative base address";
  if overlaps t addr (addr + size) then
    invalid_arg (Printf.sprintf "Memory: region 0x%08x+%d overlaps" addr size)

let map t ~addr ~size =
  check_new t ~addr ~size;
  t.regions <- Ram { base = addr; data = Bytes.make size '\000' } :: t.regions;
  invalidate_cache t

let add_device t ~addr ~size ~read ~write =
  check_new t ~addr ~size;
  t.regions <- Device { base = addr; size; read; write } :: t.regions;
  invalidate_cache t

let find t addr =
  let r =
    List.find_opt
      (fun r ->
        let lo, hi = region_span r in
        addr >= lo && addr < hi)
      t.regions
  in
  (match r with
  | Some (Ram { base; data }) ->
    t.cache_lo <- base;
    t.cache_hi <- base + Bytes.length data;
    t.cache_data <- data
  | Some (Device _) | None -> ());
  r

let is_mapped t addr = find t addr <> None

let clear t =
  List.iter
    (function
      | Ram { data; _ } -> Bytes.fill data 0 (Bytes.length data) '\000'
      | Device _ -> ())
    t.regions

(* Slow paths: region-list search, one byte at a time, so accesses that
   straddle region boundaries or touch devices behave exactly like the
   original per-byte protocol (including which address a fault names). *)

let byte_read t addr =
  match find t addr with
  | Some (Ram { base; data }) -> Bytes.get_uint8 data (addr - base)
  | Some (Device { base; read; _ }) -> read (addr - base) land 0xFF
  | None -> raise (Fault (Unmapped addr))

let byte_write t addr v =
  match find t addr with
  | Some (Ram { base; data }) ->
    (match t.journal with
    | None -> ()
    | Some j -> journal_note j addr (Bytes.get_uint8 data (addr - base)));
    Bytes.set_uint8 data (addr - base) (v land 0xFF)
  | Some (Device { base; write; _ }) -> write (addr - base) (v land 0xFF)
  | None -> raise (Fault (Unmapped addr))

(* Undo-side byte store: must not itself be journaled. *)
let poke_raw t addr v =
  if addr >= t.cache_lo && addr < t.cache_hi then
    Bytes.set_uint8 t.cache_data (addr - t.cache_lo) v
  else
    match find t addr with
    | Some (Ram { base; data }) -> Bytes.set_uint8 data (addr - base) v
    | Some (Device _) | None -> invalid_arg "Memory.undo_to: not RAM"

let undo_to t j mark =
  if mark < 0 || mark > j.len then invalid_arg "Memory.undo_to";
  (* newest first, so overlapping writes unwind to the oldest pre-image *)
  for i = j.len - 1 downto mark do
    let p = j.packed.(i) in
    poke_raw t (p lsr 8) (p land 0xFF)
  done;
  j.len <- mark

(* Unboxed accessors: check the cache, fall back to the slow path. *)

let read_u8_exn t addr =
  if addr >= t.cache_lo && addr < t.cache_hi then
    Bytes.get_uint8 t.cache_data (addr - t.cache_lo)
  else byte_read t addr

let write_u8_exn t addr v =
  if addr >= t.cache_lo && addr < t.cache_hi then begin
    (match t.journal with
    | None -> ()
    | Some j ->
      journal_note j addr (Bytes.get_uint8 t.cache_data (addr - t.cache_lo)));
    Bytes.set_uint8 t.cache_data (addr - t.cache_lo) (v land 0xFF)
  end
  else byte_write t addr v

let read_u16_exn t addr =
  if addr land 1 <> 0 then raise (Fault (Unaligned addr))
  else if addr >= t.cache_lo && addr + 2 <= t.cache_hi then
    Bytes.get_uint16_le t.cache_data (addr - t.cache_lo)
  else begin
    let b0 = byte_read t addr in
    let b1 = byte_read t (addr + 1) in
    b0 lor (b1 lsl 8)
  end

let write_u16_exn t addr v =
  if addr land 1 <> 0 then raise (Fault (Unaligned addr))
  else if addr >= t.cache_lo && addr + 2 <= t.cache_hi then begin
    (match t.journal with
    | None -> ()
    | Some j ->
      let off = addr - t.cache_lo in
      journal_note j addr (Bytes.get_uint8 t.cache_data off);
      journal_note j (addr + 1) (Bytes.get_uint8 t.cache_data (off + 1)));
    Bytes.set_uint16_le t.cache_data (addr - t.cache_lo) (v land 0xFFFF)
  end
  else begin
    byte_write t addr v;
    byte_write t (addr + 1) (v lsr 8)
  end

let read_u32_exn t addr =
  if addr land 3 <> 0 then raise (Fault (Unaligned addr))
  else if addr >= t.cache_lo && addr + 4 <= t.cache_hi then
    Int32.to_int (Bytes.get_int32_le t.cache_data (addr - t.cache_lo))
    land 0xFFFFFFFF
  else begin
    let b0 = byte_read t addr in
    let b1 = byte_read t (addr + 1) in
    let b2 = byte_read t (addr + 2) in
    let b3 = byte_read t (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

let write_u32_exn t addr v =
  if addr land 3 <> 0 then raise (Fault (Unaligned addr))
  else if addr >= t.cache_lo && addr + 4 <= t.cache_hi then begin
    (match t.journal with
    | None -> ()
    | Some j ->
      let off = addr - t.cache_lo in
      for k = 0 to 3 do
        journal_note j (addr + k) (Bytes.get_uint8 t.cache_data (off + k))
      done);
    Bytes.set_int32_le t.cache_data (addr - t.cache_lo) (Int32.of_int v)
  end
  else begin
    byte_write t addr v;
    byte_write t (addr + 1) (v lsr 8);
    byte_write t (addr + 2) (v lsr 16);
    byte_write t (addr + 3) (v lsr 24)
  end

(* Result-typed API, kept for callers outside the hot loop. *)

let read_u8 t addr =
  match read_u8_exn t addr with v -> Ok v | exception Fault f -> Error f

let read_u16 t addr =
  match read_u16_exn t addr with v -> Ok v | exception Fault f -> Error f

let read_u32 t addr =
  match read_u32_exn t addr with v -> Ok v | exception Fault f -> Error f

let write_u8 t addr v =
  match write_u8_exn t addr v with () -> Ok () | exception Fault f -> Error f

let write_u16 t addr v =
  match write_u16_exn t addr v with () -> Ok () | exception Fault f -> Error f

let write_u32 t addr v =
  match write_u32_exn t addr v with () -> Ok () | exception Fault f -> Error f

let load_bytes t ~addr b =
  let len = Bytes.length b in
  match find t addr with
  | Some (Ram { base; data }) when addr + len <= base + Bytes.length data ->
    (match t.journal with
    | None -> ()
    | Some j ->
      for i = 0 to len - 1 do
        journal_note j (addr + i) (Bytes.get_uint8 data (addr - base + i))
      done);
    Bytes.blit b 0 data (addr - base) len
  | _ ->
    (* Straddles regions or touches a device: byte-by-byte. *)
    Bytes.iteri
      (fun i c ->
        match byte_write t (addr + i) (Char.code c) with
        | () -> ()
        | exception Fault _ ->
          invalid_arg
            (Printf.sprintf "Memory.load_bytes: 0x%08x is not mapped" (addr + i)))
      b

type snapshot = (int * Bytes.t) list

let snapshot t =
  List.filter_map
    (function
      | Ram { base; data } -> Some (base, Bytes.copy data)
      | Device _ -> None)
    t.regions

let restore t snap =
  List.iter
    (fun (base, saved) ->
      match find t base with
      | Some (Ram { base = b; data }) when b = base
                                           && Bytes.length data = Bytes.length saved ->
        Bytes.blit saved 0 data 0 (Bytes.length saved)
      | Some _ | None -> invalid_arg "Memory.restore: mismatched snapshot")
    snap
