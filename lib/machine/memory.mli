(** Sparse 32-bit physical memory with explicit mappings.

    Accesses to unmapped addresses report a fault instead of raising, so
    the executor can classify glitch outcomes ("bad read", "bad fetch")
    the same way the paper's Unicorn harness does. Word and halfword
    accesses must be naturally aligned, matching Cortex-M0 behaviour
    where unaligned accesses HardFault. *)

type t

type fault =
  | Unmapped of int  (** address with no RAM/ROM/device mapping *)
  | Unaligned of int  (** naturally misaligned halfword/word access *)

exception Fault of fault
(** Raised by the [_exn] accessors instead of returning [Error]. *)

val pp_fault : fault Fmt.t

val create : unit -> t

val map : t -> addr:int -> size:int -> unit
(** Back [addr, addr+size) with zero-initialised RAM.
    @raise Invalid_argument on overlap with an existing mapping. *)

val add_device : t ->
  addr:int -> size:int -> read:(int -> int) -> write:(int -> int -> unit) ->
  unit
(** Map a byte-granularity device: [read offset] and [write offset byte]
    are called with offsets relative to [addr].
    @raise Invalid_argument on overlap with an existing mapping. *)

val is_mapped : t -> int -> bool

val clear : t -> unit
(** Zero every RAM region (devices are untouched). Used by glitch
    campaigns to reuse one address space across millions of runs. *)

type snapshot

val snapshot : t -> snapshot
(** Copy of all RAM contents (device state is the device's problem). *)

val restore : t -> snapshot -> unit
(** Restore RAM to a snapshot taken from the same memory.
    @raise Invalid_argument if region shapes differ. *)

val read_u8 : t -> int -> (int, fault) result
val read_u16 : t -> int -> (int, fault) result
val read_u32 : t -> int -> (int, fault) result
val write_u8 : t -> int -> int -> (unit, fault) result
val write_u16 : t -> int -> int -> (unit, fault) result
val write_u32 : t -> int -> int -> (unit, fault) result

(** {2 Unboxed accessors}

    Same semantics as the [result] API (alignment checks, device
    dispatch, fault addresses), but faults are raised as {!Fault}
    instead of boxed in [Error], and aligned accesses inside the
    last-hit RAM region go through a single [Bytes] primitive. The
    executor's fetch/execute loop uses these so a well-behaved guest
    allocates nothing per step. *)

val read_u8_exn : t -> int -> int
val read_u16_exn : t -> int -> int
val read_u32_exn : t -> int -> int
val write_u8_exn : t -> int -> int -> unit
val write_u16_exn : t -> int -> int -> unit
val write_u32_exn : t -> int -> int -> unit

val load_bytes : t -> addr:int -> bytes -> unit
(** Bulk store for program loading; a single [Bytes.blit] when the
    range falls inside one RAM region. @raise Invalid_argument if any
    byte falls outside RAM mappings. *)

(** {2 Write journal}

    An attached journal records the pre-image byte of every RAM store
    (devices are not journaled — their handlers own their state), so a
    campaign rig can rewind to a mark in time proportional to the bytes
    actually dirtied instead of blitting whole-region snapshots, and
    can recover each byte's pristine value from the oldest entry. The
    journal sits on the write fast path as a single [option] check when
    detached. [restore]/[clear] bypass the journal — don't mix them
    with an attached one. *)

type journal

val journal_create : unit -> journal
(** An empty journal, not yet attached to any memory. *)

val attach_journal : t -> journal -> unit
(** Record subsequent RAM stores into the journal (replacing any
    previously attached one). *)

val detach_journal : t -> unit

val journal_length : journal -> int
(** Entries recorded so far; positions [< length] are valid marks. *)

val journal_entry : journal -> int -> int * int
(** [(address, pre-image byte)] of entry [i], oldest first.
    @raise Invalid_argument out of range. *)

val undo_to : t -> journal -> int -> unit
(** Rewind memory to its state at mark [m] (a previous
    {!journal_length}) by replaying pre-images newest-first, then
    truncate the journal to [m]. The undo stores are not themselves
    journaled. @raise Invalid_argument if [m] is not a valid mark or a
    journaled address is no longer RAM. *)
