(** Single-step Thumb-16 executor with glitch-friendly outcome
    classification (the Unicorn substitute).

    The executor never raises on bad guest behaviour: unmapped or
    misaligned accesses, undecodable instructions, traps, and runaway
    execution are all reported as {!stop} values, mirroring the outcome
    taxonomy of the paper's emulation framework (Section IV). *)

type stop =
  | Breakpoint of int  (** [BKPT imm] executed — normal harness exit. *)
  | Swi_trap of int  (** [SWI imm] executed. *)
  | Bad_read of int  (** data load from an unmapped/misaligned address *)
  | Bad_write of int  (** data store to an unmapped/misaligned address *)
  | Bad_fetch of int  (** instruction fetch from unmapped memory (e.g. a corrupted PC) *)
  | Invalid_instruction of int  (** fetched word has no Thumb decoding *)
  | Step_limit  (** [run] exhausted its step budget *)

val pp_stop : stop Fmt.t
val stop_equal : stop -> stop -> bool

type step_result = Running | Stopped of stop

val execute : Memory.t -> Cpu.t -> Thumb.Instr.t -> step_result
(** [execute mem cpu i] executes the already-decoded [i] as if it were
    located at [Cpu.pc cpu], updating registers, flags, memory and the
    PC. Used directly by the pipeline simulator to run corrupted
    instructions without writing them back to flash. *)

val step : ?fetch:(int -> int option) -> Memory.t -> Cpu.t -> step_result
(** Fetch the halfword at [Cpu.pc], decode via the shared pre-decoded
    [Thumb.Decode.table], {!execute}. [fetch] may override the memory
    image for a given address (used for transient fetch-stage
    corruption); returning [None] falls back to memory. *)

val run : ?fetch:(int -> int option) -> ?max_steps:int ->
  Memory.t -> Cpu.t -> stop
(** Step until the program stops, at most [max_steps] (default 10,000)
    instructions. *)
