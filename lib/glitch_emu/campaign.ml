open Machine

type category =
  | Success
  | Bad_read
  | Bad_fetch
  | Invalid_instruction
  | Failed
  | No_effect

let categories =
  [ Success; Bad_read; Bad_fetch; Invalid_instruction; Failed; No_effect ]

let category_name = function
  | Success -> "Success"
  | Bad_read -> "Bad Read"
  | Bad_fetch -> "Bad Fetch"
  | Invalid_instruction -> "Invalid Instruction"
  | Failed -> "Failed"
  | No_effect -> "No Effect"

let category_index = function
  | Success -> 0
  | Bad_read -> 1
  | Bad_fetch -> 2
  | Invalid_instruction -> 3
  | Failed -> 4
  | No_effect -> 5

let category_of_index = function
  | 0 -> Success
  | 1 -> Bad_read
  | 2 -> Bad_fetch
  | 3 -> Invalid_instruction
  | 4 -> Failed
  | 5 -> No_effect
  | _ -> invalid_arg "Campaign.category_of_index"

type config = {
  flip : Fault_model.flip;
  zero_is_invalid : bool;
  max_steps : int;
}

let default_config flip = { flip; zero_is_invalid = false; max_steps = 200 }

type counts = int array

type sweep_stats = { executed : int; memoized : int }

type result = {
  case : Testcase.t;
  config : config;
  by_weight : counts array;
  totals : counts;
  stats : sweep_stats;
}

(* A small dedicated address space: snippets are a handful of
   instructions and a few words of stack. Small regions keep the
   65,536-run sweep cheap to reset. *)
let flash_base = 0x08000000
let flash_size = 0x400
let sram_base = 0x20000000
let sram_size = 0x400
let stack_top = sram_base + sram_size - 16

(* [pristine] is the address space right after loading the unperturbed
   image: resetting between masks is two [Bytes.blit]s (flash including
   the target halfword, plus zeroed SRAM) via [Memory.restore], instead
   of [Memory.clear] + a per-byte [load_bytes]. The blit also undoes
   any stray flash writes a glitched run may have performed, so the
   fast reset is exactly as thorough as the old one. *)
type rig = {
  mem : Memory.t;
  cpu : Cpu.t;
  image : bytes;
  target : int;  (* unperturbed target halfword *)
  target_addr : int;  (* its flash address *)
  pristine : Memory.snapshot;
}

let make_rig (case : Testcase.t) =
  let mem = Memory.create () in
  Memory.map mem ~addr:flash_base ~size:flash_size;
  Memory.map mem ~addr:sram_base ~size:sram_size;
  let image = Thumb.Encode.to_bytes case.Testcase.instrs in
  Memory.load_bytes mem ~addr:flash_base image;
  { mem;
    cpu = Cpu.create ~sp:stack_top ~pc:flash_base ();
    image;
    target = Testcase.target_word case;
    target_addr = flash_base + (2 * case.target_index);
    pristine = Memory.snapshot mem }

(* Execute until stop, optionally treating a fetched 0x0000 as an
   invalid instruction (Figure 2(c)'s modified ISA). Fetches go through
   the unboxed memory path and the shared pre-decoded instruction
   table, so a well-behaved run allocates nothing. *)
let run_to_stop ~zero_is_invalid ~max_steps mem cpu =
  let rec go remaining =
    if remaining = 0 then Exec.Step_limit
    else
      match Memory.read_u16_exn mem (Cpu.pc cpu) with
      | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
        Exec.Bad_fetch a
      | 0 when zero_is_invalid -> Exec.Invalid_instruction 0
      | w -> (
        match Exec.execute mem cpu Thumb.Decode.table.(w) with
        | Exec.Running -> go (remaining - 1)
        | Exec.Stopped s -> s)
  in
  go max_steps

let classify cpu (stop : Exec.stop) : category =
  match stop with
  | Exec.Breakpoint _ ->
    if Cpu.get cpu Testcase.skip_reg = Testcase.skip_marker then Success
    else No_effect
  | Exec.Bad_read _ | Exec.Bad_write _ -> Bad_read
  | Exec.Bad_fetch _ -> Bad_fetch
  | Exec.Invalid_instruction _ -> Invalid_instruction
  | Exec.Swi_trap _ | Exec.Step_limit -> Failed

(* The fast kernel: one perturbed word against a reused rig. The
   outcome is a pure function of (config, case, word) — the rig is
   restored to the same pristine state every time — which is what makes
   the per-word memo below sound. *)
let run_word config rig ~word =
  Memory.restore rig.mem rig.pristine;
  (match Memory.write_u16 rig.mem rig.target_addr word with
  | Ok () -> ()
  | Error _ -> assert false);
  Cpu.reset ~sp:stack_top ~pc:flash_base rig.cpu;
  let stop =
    run_to_stop ~zero_is_invalid:config.zero_is_invalid
      ~max_steps:config.max_steps rig.mem rig.cpu
  in
  classify rig.cpu stop

(* The reference kernel: the original reset protocol (clear everything,
   reload the image, perturb), no memo, a fresh machine per call. Kept
   deliberately independent of the sweep fast path so differential
   tests can pin one against the other. *)
let run_mask config rig (case : Testcase.t) ~mask =
  Memory.clear rig.mem;
  Memory.load_bytes rig.mem ~addr:flash_base rig.image;
  let word = Fault_model.apply config.flip ~mask (Testcase.target_word case) in
  (match Memory.write_u16 rig.mem rig.target_addr word with
  | Ok () -> ()
  | Error _ -> assert false);
  Cpu.reset ~sp:stack_top ~pc:flash_base rig.cpu;
  let stop =
    run_to_stop ~zero_is_invalid:config.zero_is_invalid
      ~max_steps:config.max_steps rig.mem rig.cpu
  in
  classify rig.cpu stop

let run_one config case ~mask = run_mask config (make_rig case) case ~mask

let width = 16
let ncat = List.length categories

type tally = { by_weight : counts array; totals : counts }

let make_tally () =
  { by_weight = Array.init (width + 1) (fun _ -> Array.make ncat 0);
    totals = Array.make ncat 0 }

(* The word-outcome memo. [store] slot [word] is the category index
   already established for a perturbed word, or empty. The And/Or
   fault models are many-to-one (e.g. AND can only produce subsets of
   the target's set bits), so a 65,536-mask sweep visits only a few
   hundred to a few thousand distinct words — every revisit is a table
   lookup instead of an emulation.

   The store is SHARED between worker domains (it used to be
   worker-private, which made N workers re-execute every word up to N
   times and inverted the parallel speedup). Sharing is sound because
   the outcome is a pure function of (config, case, word): racing
   workers can only publish identical values, and a stale read of
   "empty" merely re-executes — see [Runtime.Store]. The counters stay
   per-worker (merged after the region), so hit rates remain
   observable without contended atomics on the hot path.

   A store is only valid for the (config, case) pair it was filled
   under — the outcome depends on the whole snippet, not just the
   perturbed word — so callers passing [?store] must key it by both. *)
type memo = {
  store : Runtime.Store.t;
  mutable executed : int;
  mutable memoized : int;
}

let make_store () = Runtime.Store.create ~slots:0x10000

let make_memo ?store () =
  let store = match store with Some s -> s | None -> make_store () in
  { store; executed = 0; memoized = 0 }

let classify_word config rig memo ~word =
  let c = Runtime.Store.get memo.store word in
  if c >= 0 then begin
    memo.memoized <- memo.memoized + 1;
    c
  end
  else begin
    let c = category_index (run_word config rig ~word) in
    Runtime.Store.set memo.store word c;
    memo.executed <- memo.executed + 1;
    c
  end

let record config rig memo t ~mask =
  let flipped = Fault_model.flipped_bits config.flip ~width ~mask in
  let word = Fault_model.apply config.flip ~mask rig.target in
  let idx = classify_word config rig memo ~word in
  t.by_weight.(flipped).(idx) <- t.by_weight.(flipped).(idx) + 1;
  if flipped > 0 then t.totals.(idx) <- t.totals.(idx) + 1

(* Counts are merged with integer addition — commutative and
   associative — so the merged result is bit-identical whatever the
   domain count or chunk schedule. *)
let merge_into dst (src : tally) =
  Array.iteri
    (fun w row -> Array.iteri (fun i n -> row.(i) <- row.(i) + n) src.by_weight.(w))
    dst.by_weight;
  Array.iteri (fun i n -> dst.totals.(i) <- dst.totals.(i) + n) src.totals

(* The single-domain path: one rig, one memo, masks in weight order. *)
let run_case_seq ?store config (case : Testcase.t) =
  let rig = make_rig case in
  let memo = make_memo ?store () in
  let t = make_tally () in
  Bitmask.iter_all ~width (fun ~weight:_ ~mask -> record config rig memo t ~mask);
  { case; config; by_weight = t.by_weight; totals = t.totals;
    stats = { executed = memo.executed; memoized = memo.memoized } }

(* The parallel path: the 2^16 mask space is cut into contiguous
   slices; each worker domain drains slices into a private rig and
   tally but a SHARED word-outcome store, and per-worker tallies are
   summed. Classification depends only on (config, case, mask), so the
   merged counts equal the sequential ones exactly whatever the races
   on the store resolve to; the executed/memoized split, by contrast,
   is schedule-dependent (a word raced by two workers on a cold slot
   counts as two executions), so only executed + memoized and the
   tables themselves are deterministic. *)
let run_case_in ?store pool config (case : Testcase.t) =
  let q =
    Runtime.Chunk.queue ~lo:0 ~hi:(1 lsl width) ~jobs:(Runtime.Pool.jobs pool) ()
  in
  let store = match store with Some s -> s | None -> make_store () in
  let parts =
    Runtime.Pool.map_workers pool (fun _wid ->
        let rig = make_rig case in
        let memo = make_memo ~store () in
        let t = make_tally () in
        let rec drain () =
          match Runtime.Chunk.take q with
          | None -> ()
          | Some (lo, hi) ->
            for mask = lo to hi - 1 do
              record config rig memo t ~mask
            done;
            drain ()
        in
        drain ();
        (t, memo.executed, memo.memoized))
  in
  let t = make_tally () in
  let executed = ref 0 and memoized = ref 0 in
  List.iter
    (fun (part, e, m) ->
      merge_into t part;
      executed := !executed + e;
      memoized := !memoized + m)
    parts;
  { case; config; by_weight = t.by_weight; totals = t.totals;
    stats = { executed = !executed; memoized = !memoized } }

let run_case ?pool ?(jobs = 1) ?store config case =
  match pool with
  | Some pool when Runtime.Pool.jobs pool > 1 -> run_case_in ?store pool config case
  | Some _ -> run_case_seq ?store config case
  | None ->
    if jobs <= 1 then run_case_seq ?store config case
    else
      Runtime.Pool.with_pool ~jobs (fun pool -> run_case_in ?store pool config case)

let run_all ?pool ?jobs config cases =
  List.map (run_case ?pool ?jobs config) cases

type sweep = {
  categories : category array;
  by_word : category option array;
  sweep_stats : sweep_stats;
}

let sweep config (case : Testcase.t) =
  let rig = make_rig case in
  let memo = make_memo () in
  let categories =
    Array.init (1 lsl width) (fun mask ->
        let word = Fault_model.apply config.flip ~mask rig.target in
        category_of_index (classify_word config rig memo ~word))
  in
  { categories;
    by_word =
      Array.init (1 lsl width) (fun word ->
          match Runtime.Store.get memo.store word with
          | -1 -> None
          | c -> Some (category_of_index c));
    sweep_stats = { executed = memo.executed; memoized = memo.memoized } }

let categories_by_mask config case = (sweep config case).categories

let success_rate_by_weight (result : result) =
  List.init (width + 1) (fun flipped ->
      let row = result.by_weight.(flipped) in
      let den = Array.fold_left ( + ) 0 row in
      let num = row.(category_index Success) in
      (flipped, Stats.Rate.pct ~num ~den))
  |> List.filter (fun (flipped, _) ->
         Array.fold_left ( + ) 0 result.by_weight.(flipped) > 0)

let category_percent (result : result) cat =
  let num = result.totals.(category_index cat) in
  let den = Array.fold_left ( + ) 0 result.totals in
  Stats.Rate.pct ~num ~den
