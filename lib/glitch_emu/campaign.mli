(** Exhaustive bit-flip campaigns over an instruction's encoding — the
    paper's RQ1 harness. For every possible mask of every weight, the
    target instruction is perturbed in flash and the snippet is executed
    to completion; the outcome is classified with the same taxonomy as
    Figure 2.

    The sweep kernel exploits the fact that classification is a pure
    function of the {e perturbed word} (the rig is restored to an
    identical pristine state before every run): the And/Or fault models
    map 65,536 masks onto far fewer distinct words, so each distinct
    word is executed once and every other mask replays the memoized
    category. {!sweep_stats} reports how much work that saved. *)

(** Outcome classification, matching Figure 2's legend. *)
type category =
  | Success  (** the otherwise-dead instruction after the branch ran *)
  | Bad_read
      (** the run faulted on a data access to unmapped or misaligned
          memory (unmapped writes are also counted here) *)
  | Bad_fetch  (** instruction fetch from unmapped memory (PC corrupted) *)
  | Invalid_instruction  (** the perturbed word has no decoding *)
  | Failed  (** any other abnormal end (trap, runaway execution) *)
  | No_effect  (** the run completed normally *)

val categories : category list
val category_name : category -> string

type config = {
  flip : Fault_model.flip;
  zero_is_invalid : bool;
      (** Figure 2(c)'s ISA modification: treat the all-zero word as an
          invalid instruction instead of [MOVS r0, r0]. *)
  max_steps : int;
}

val default_config : Fault_model.flip -> config

type counts = int array
(** Indexed by {!category_index}; length [List.length categories]. *)

val category_index : category -> int

val flash_base : int
val flash_size : int
val sram_base : int
val sram_size : int
val stack_top : int
(** The sweep rig's address-space geometry.  Exposed so the static
    analyzer ({!Analysis.Surface.predicted_outcomes}) can reason about
    which perturbed branch targets stay inside the snippet image — the
    differential property pins its predictions against {!run_one} on
    exactly this rig. *)

type sweep_stats = {
  executed : int;  (** perturbed words actually emulated *)
  memoized : int;  (** masks served from the per-word outcome memo *)
}
(** [executed + memoized] equals the number of masks processed. The
    memo store is shared between workers, so in a parallel sweep
    [executed] stays close to the number of distinct perturbed words;
    the exact executed/memoized split is schedule-dependent (two
    workers racing on a cold slot both count an execution) — only the
    sum and the resulting tables are deterministic. *)

type result = {
  case : Testcase.t;
  config : config;
  by_weight : counts array;
      (** Index = number of potentially-flipped bits (0..16); see
          [Fault_model.flipped_bits]. Entry 0 is the unmodified
          instruction. *)
  totals : counts;
  stats : sweep_stats;
}

val run_one : config -> Testcase.t -> mask:int -> category
(** Run a single perturbed execution on a fresh machine, via the
    original reference reset protocol (clear, reload, perturb) with no
    memoization. This is the oracle that differential tests pin the
    memoized sweep kernel against. *)

val make_store : unit -> Runtime.Store.t
(** A fresh empty word-outcome store ([2^16] slots). A store caches
    word classifications for exactly one [(config, case)] pair — the
    outcome depends on the whole snippet, not just the perturbed word —
    so callers keeping stores warm across calls must key them by
    both. *)

val run_case :
  ?pool:Runtime.Pool.t -> ?jobs:int -> ?store:Runtime.Store.t ->
  config -> Testcase.t -> result
(** Run all [2^16] masks against the case's target instruction.

    With [pool] (or [jobs > 1], which spins up a transient pool) the
    mask space is split into contiguous chunks drained by worker
    domains, each against a private rig whose memory map and CPU are
    reused across masks, all sharing one lock-free word-outcome store
    ({!Runtime.Store}). Per-domain counts are merged with plain
    integer addition — commutative — so [by_weight] and [totals] are
    bit-identical to the sequential sweep for every domain count. The
    default ([jobs = 1], no pool) takes the single-domain code path.

    [store] supplies a warm store from a previous run of the {e same}
    [(config, case)] pair (see {!make_store}); words already present
    are served without emulation, so a fully warm store yields
    [stats.executed = 0]. *)

val run_all : ?pool:Runtime.Pool.t -> ?jobs:int -> config -> Testcase.t list -> result list

type sweep = {
  categories : category array;
      (** entry [mask] is that mask's classification; [2^16] entries *)
  by_word : category option array;
      (** the memo: entry [word] is the category established for that
          perturbed word, or [None] if no mask produced it; [2^16]
          entries *)
  sweep_stats : sweep_stats;
}

val sweep : config -> Testcase.t -> sweep
(** The raw memoized sweep behind {!run_case}, computed with a single
    reused rig, with the per-word memo exposed so tests can check it
    against {!categories_by_mask} and {!run_one}. *)

val categories_by_mask : config -> Testcase.t -> category array
(** [(sweep config case).categories]. *)

val success_rate_by_weight : result -> (int * float) list
(** [(flipped_bits, percent)] for each weight with at least one mask. *)

val category_percent : result -> category -> float
(** Share of all modified-mask runs (weight > 0) in a category. *)
