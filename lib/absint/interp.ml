(* The bounded abstract explorer: execute the recovered CFG over
   {!Astate} with a worklist, widening at every revisited (address,
   call-stack) pair so any loop stabilises, and classify how each path
   ends. Two modes share the engine:

   - reach mode ([sinks = false]) walks the pristine firmware from
     reset and records the joined abstract state at every conditional
     branch — the input the direction-flip prover starts from;
   - scenario mode ([sinks = true]) walks a faulted continuation and
     reports terminals: detection (a call into the [__gr_detected]
     handler or a store to the detection counter), silent escape (an
     observable user global is stored, the faulted region returns, or
     the firmware halts normally), crash (trap, undefined encoding), or
     unresolved (budget exhausted, computed flow the analysis cannot
     follow).

   Everything here over-approximates: extra paths cost precision (a
   "proven" claim degrades to "unproven"), never soundness. *)

type ctx = {
  image : Lower.Layout.image;
  insns : (int, Analysis.Cfg.insn) Hashtbl.t;
  detect_counter : int option;  (** [__gr_detect_count] word address *)
  detect_entry : int option;  (** [__gr_detected] entry address *)
  observable : (int * string) list;  (** user-global word address -> name *)
}

(* Runtime bookkeeping globals — the detection counter, sigcfi/domains
   state, integrity shadows — are not attacker-observable outputs; only
   the program's own globals are. Shadows are named [g ^ "__integrity"],
   so the prefix test alone does not exclude them. *)
let internal_global name =
  (String.length name >= 2 && String.sub name 0 2 = "__")
  || Filename.check_suffix name "__integrity"

let create (image : Lower.Layout.image) =
  let cfg = Analysis.Cfg.of_image image in
  let insns = Hashtbl.create 512 in
  List.iter
    (fun (i : Analysis.Cfg.insn) -> Hashtbl.replace insns i.addr i)
    (Analysis.Cfg.reachable_insns cfg);
  ( cfg,
    { image;
      insns;
      detect_counter =
        List.assoc_opt "__gr_detect_count" image.global_addrs
        |> Option.map Astate.word_aligned;
      detect_entry = List.assoc_opt "__gr_detected" image.symbols;
      observable =
        List.filter_map
          (fun (name, addr) ->
            if internal_global name then None
            else Some (Astate.word_aligned addr, name))
          image.global_addrs } )

(* --- value helpers ------------------------------------------------------- *)

let mask32 v = v land 0xFFFFFFFF
let bit31 v = v land 0x80000000 <> 0
let sign32 v = if bit31 v then v lor lnot 0xFFFFFFFF else v

let bool_set b = Dom.const (if b then 1 else 0)

let nz_of (rv : Dom.vset) =
  ( Dom.lift1 (fun r -> (r lsr 31) land 1) rv,
    Dom.lift1 (fun r -> if r = 0 then 1 else 0) rv )

let with_nz st (rv : Dom.vset) =
  let n, z = nz_of rv in
  { st with Astate.flags = { st.Astate.flags with n; z } }

(* a + b + cin with full NZCV, mirroring Exec.add_with_carry — exact
   C/V only when every input is a singleton, Top otherwise. *)
let add_with_carry st av bv (cin : Dom.vset) =
  let sum c = Dom.lift2 (fun a b -> a + b + c) av bv in
  let rv =
    match Dom.singleton cin with
    | Some c -> sum c
    | None -> Dom.join (sum 0) (sum 1)
  in
  let c, v =
    match (Dom.singleton av, Dom.singleton bv, Dom.singleton cin) with
    | Some a, Some b, Some cin ->
      let wide = a + b + cin in
      let r = mask32 wide in
      ( bool_set (wide > 0xFFFFFFFF),
        bool_set (bit31 (lnot (a lxor b) land (a lxor r))) )
    | _ -> (Astate.bool_top, Astate.bool_top)
  in
  let n, z = nz_of rv in
  (rv, { st with Astate.flags = { n; z; c; v } })

let adds st av bv = add_with_carry st av bv (Dom.const 0)

let subs st av bv =
  add_with_carry st av (Dom.lift1 (fun b -> lnot b) bv) (Dom.const 1)

(* shift-by-immediate, with the architectural amount-0 special cases *)
let shift_imm_value (op : Thumb.Instr.shift_op) v amount =
  match (op, amount) with
  | Thumb.Instr.Lsl, 0 -> v
  | Lsl, n -> v lsl n
  | Lsr, 0 -> 0
  | Lsr, n -> v lsr n
  | Asr, 0 -> if bit31 v then 0xFFFFFFFF else 0
  | Asr, n -> sign32 v asr n

let shift_imm_carry (op : Thumb.Instr.shift_op) v amount =
  match (op, amount) with
  | Thumb.Instr.Lsl, 0 -> None (* carry unchanged *)
  | Lsl, n -> Some (v land (1 lsl (32 - n)) <> 0)
  | Lsr, 0 | Asr, 0 -> Some (bit31 v)
  | Lsr, n | Asr, n -> Some (v land (1 lsl (n - 1)) <> 0)

let shift_reg_value (op : Thumb.Instr.alu_op) v amt =
  let amt = amt land 0xFF in
  if amt = 0 then v
  else
    match op with
    | Thumb.Instr.LSLr -> if amt < 32 then mask32 (v lsl amt) else 0
    | LSRr -> if amt < 32 then v lsr amt else 0
    | ASRr ->
      if amt < 32 then mask32 (sign32 v asr amt)
      else if bit31 v then 0xFFFFFFFF
      else 0
    | _ ->
      (* ROR *)
      let n = amt land 31 in
      if n = 0 then v else mask32 ((v lsr n) lor (v lsl (32 - n)))

(* --- stepping ------------------------------------------------------------ *)

type step =
  | Fall of Astate.t
  | Goto of Astate.t * int
  | Branch of { cond : Thumb.Instr.cond; taken : int; fall : int }
  | Call of { st : Astate.t; callee : int; ret : int }
  | Exit of Astate.t * Dom.vset  (** bx / pop pc / mov pc: target value *)
  | Halted
  | Trapped
  | Undef
  | Stuck of string

type event = Detect_store | Observable_store of string

exception Stuck_exn of string

let addr_singleton what (v : Dom.vset) =
  match Dom.singleton v with
  | Some a -> a
  | None -> raise (Stuck_exn (what ^ " with an unresolved address"))

let low_regs rlist =
  List.filter
    (fun i -> rlist land 0xFF land (1 lsl i) <> 0)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Word-container read-modify-write for byte/halfword stores. *)
let store_sub ctx st addr width value =
  let base = Astate.word_aligned addr in
  let old = Astate.load_word ctx.image st base in
  let merged =
    match (Dom.singleton old.Dom.v, Dom.singleton value.Dom.v) with
    | Some w, Some v ->
      let shift = (addr - base) * 8 in
      let m = ((1 lsl width) - 1) lsl shift in
      Dom.av_const (w land lnot m lor ((v lsl shift) land m))
    | _ -> { Dom.av_top with Dom.t = Dom.tjoin old.Dom.t value.Dom.t }
  in
  Astate.store_word st base merged

let load_sub ctx st addr width ~signed =
  let base = Astate.word_aligned addr in
  let w = Astate.load_word ctx.image st base in
  match Dom.singleton w.Dom.v with
  | Some word ->
    let shift = (addr - base) * 8 in
    let raw = (word lsr shift) land ((1 lsl width) - 1) in
    Dom.av_const
      (if signed && raw land (1 lsl (width - 1)) <> 0 then
         mask32 (raw lor lnot ((1 lsl width) - 1))
       else raw)
  | None -> { Dom.av_top with Dom.t = w.Dom.t }

(* A store to the detection counter is a defense success; a store to a
   user-visible global is a silent-escape sink (in scenario mode). *)
let store_events ctx addr =
  let base = Astate.word_aligned addr in
  if ctx.detect_counter = Some base then [ Detect_store ]
  else
    match List.assoc_opt base ctx.observable with
    | Some name -> [ Observable_store name ]
    | None -> []

(* One instruction. Registers are mutated through the state's shared
   array — the caller owns a fresh copy per dequeued path. *)
let step_insn ctx st (insn : Analysis.Cfg.insn) : event list * step =
  let addr = insn.addr in
  let rdv r =
    if Thumb.Reg.equal r Thumb.Reg.pc then Dom.av_const (addr + 4)
    else Astate.get st r
  in
  let setr st r v =
    Astate.set st r v;
    st
  in
  let fall st = ([], Fall st) in
  let store_full st a value =
    ( store_events ctx a,
      Fall (if Astate.in_sram a then Astate.store_word st a value else st) )
  in
  let store_narrow st a width value =
    (store_events ctx a, Fall (store_sub ctx st a width value))
  in
  let load_into st rd (av : Dom.vset) ~width ~signed =
    match Dom.singleton av with
    | Some a ->
      let v =
        if width < 32 then load_sub ctx st a width ~signed
        else Astate.load_word ctx.image st a
      in
      fall (setr st rd v)
    | None -> fall (setr st rd Dom.av_top)
  in
  try
    match insn.instr with
    | Thumb.Instr.Shift (op, rd, rs, imm) ->
      let a = rdv rs in
      let rv = Dom.lift1 (fun x -> shift_imm_value op x imm) a.Dom.v in
      let st = with_nz st rv in
      let st =
        match Dom.singleton a.Dom.v with
        | Some x -> (
          match shift_imm_carry op x imm with
          | Some c ->
            { st with Astate.flags = { st.Astate.flags with c = bool_set c } }
          | None -> st)
        | None ->
          if op = Thumb.Instr.Lsl && imm = 0 then st
          else
            { st with
              Astate.flags = { st.Astate.flags with c = Astate.bool_top } }
      in
      fall (setr st rd { a with Dom.v = rv; sym = None })
    | Add_sub { sub; imm; rd; rs; operand } ->
      let a = rdv rs in
      let b =
        if imm then Dom.av_const operand else rdv (Thumb.Reg.of_int operand)
      in
      let rv, st =
        if sub then subs st a.Dom.v b.Dom.v else adds st a.Dom.v b.Dom.v
      in
      fall (setr st rd (Dom.av ~t:(Dom.tjoin a.Dom.t b.Dom.t) rv))
    | Imm (MOVi, rd, imm) ->
      fall (setr (with_nz st (Dom.const imm)) rd (Dom.av_const imm))
    | Imm (CMPi, rd, imm) ->
      let _, st = subs st (rdv rd).Dom.v (Dom.const imm) in
      fall st
    | Imm (ADDi, rd, imm) ->
      let a = rdv rd in
      let rv, st = adds st a.Dom.v (Dom.const imm) in
      fall (setr st rd { a with Dom.v = rv; sym = None })
    | Imm (SUBi, rd, imm) ->
      let a = rdv rd in
      let rv, st = subs st a.Dom.v (Dom.const imm) in
      fall (setr st rd { a with Dom.v = rv; sym = None })
    | Alu (op, rd, rs) -> (
      let a = rdv rd and b = rdv rs in
      let t = Dom.tjoin a.Dom.t b.Dom.t in
      let logic rv = fall (setr (with_nz st rv) rd (Dom.av ~t rv)) in
      match op with
      | AND -> logic (Dom.lift2 ( land ) a.Dom.v b.Dom.v)
      | EOR -> logic (Dom.lift2 ( lxor ) a.Dom.v b.Dom.v)
      | ORR -> logic (Dom.lift2 ( lor ) a.Dom.v b.Dom.v)
      | BIC -> logic (Dom.lift2 (fun x y -> x land lnot y) a.Dom.v b.Dom.v)
      | MVN -> logic (Dom.lift1 lnot b.Dom.v)
      | MUL -> logic (Dom.lift2 (fun x y -> mask32 (x * y)) a.Dom.v b.Dom.v)
      | TST -> fall (with_nz st (Dom.lift2 ( land ) a.Dom.v b.Dom.v))
      | NEG ->
        let rv, st = subs st (Dom.const 0) b.Dom.v in
        fall (setr st rd (Dom.av ~t rv))
      | CMPr ->
        let _, st = subs st a.Dom.v b.Dom.v in
        fall st
      | CMN ->
        let _, st = adds st a.Dom.v b.Dom.v in
        fall st
      | ADC ->
        let rv, st = add_with_carry st a.Dom.v b.Dom.v st.Astate.flags.c in
        fall (setr st rd (Dom.av ~t rv))
      | SBC ->
        let rv, st =
          add_with_carry st a.Dom.v (Dom.lift1 lnot b.Dom.v) st.Astate.flags.c
        in
        fall (setr st rd (Dom.av ~t rv))
      | LSLr | LSRr | ASRr | ROR ->
        let rv =
          Dom.lift2 (fun v amt -> shift_reg_value op v amt) a.Dom.v b.Dom.v
        in
        let st = with_nz st rv in
        let st =
          { st with Astate.flags = { st.Astate.flags with c = Astate.bool_top } }
        in
        fall (setr st rd (Dom.av ~t rv)))
    | Hi_add (rd, rm) when Thumb.Reg.equal rd Thumb.Reg.pc ->
      ([], Exit (st, Dom.lift2 (fun a b -> a + b) (rdv rd).Dom.v (rdv rm).Dom.v))
    | Hi_add (rd, rm) ->
      let rv = Dom.lift2 (fun a b -> a + b) (rdv rd).Dom.v (rdv rm).Dom.v in
      fall (setr st rd (Dom.av rv))
    | Hi_cmp (rd, rm) ->
      let _, st = subs st (rdv rd).Dom.v (rdv rm).Dom.v in
      fall st
    | Hi_mov (rd, rm) when Thumb.Reg.equal rd Thumb.Reg.pc ->
      ([], Exit (st, (rdv rm).Dom.v))
    | Hi_mov (rd, rm) -> fall (setr st rd (rdv rm))
    | Bx rm -> ([], Exit (st, (rdv rm).Dom.v))
    | Ldr_pc (rd, imm) ->
      let a = ((addr + 4) land lnot 3) + (imm * 4) in
      fall (setr st rd (Astate.load_word ctx.image st a))
    | Mem_reg { load; byte; rd; rb; ro } ->
      let av = Dom.lift2 (fun a b -> a + b) (rdv rb).Dom.v (rdv ro).Dom.v in
      if load then load_into st rd av ~width:(if byte then 8 else 32) ~signed:false
      else
        let a = addr_singleton "store" av in
        if byte then store_narrow st a 8 (rdv rd) else store_full st a (rdv rd)
    | Mem_sign { op; rd; rb; ro } -> (
      let av = Dom.lift2 (fun a b -> a + b) (rdv rb).Dom.v (rdv ro).Dom.v in
      match op with
      | STRH ->
        let a = addr_singleton "store" av in
        store_narrow st a 16 (rdv rd)
      | LDRH -> load_into st rd av ~width:16 ~signed:false
      | LDSB -> load_into st rd av ~width:8 ~signed:true
      | LDSH -> load_into st rd av ~width:16 ~signed:true)
    | Mem_imm { load; byte; rd; rb; imm } ->
      let off = if byte then imm else imm * 4 in
      let av = Dom.lift1 (fun b -> b + off) (rdv rb).Dom.v in
      if load then load_into st rd av ~width:(if byte then 8 else 32) ~signed:false
      else
        let a = addr_singleton "store" av in
        if byte then store_narrow st a 8 (rdv rd) else store_full st a (rdv rd)
    | Mem_half { load; rd; rb; imm } ->
      let av = Dom.lift1 (fun b -> b + (imm * 2)) (rdv rb).Dom.v in
      if load then load_into st rd av ~width:16 ~signed:false
      else
        let a = addr_singleton "store" av in
        store_narrow st a 16 (rdv rd)
    | Mem_sp { load; rd; imm } ->
      let av = Dom.lift1 (fun b -> b + (imm * 4)) (rdv Thumb.Reg.sp).Dom.v in
      if load then load_into st rd av ~width:32 ~signed:false
      else
        let a = addr_singleton "store" av in
        store_full st a (rdv rd)
    | Load_addr { from_sp; rd; imm } ->
      let base =
        if from_sp then (rdv Thumb.Reg.sp).Dom.v
        else Dom.const ((addr + 4) land lnot 3)
      in
      fall (setr st rd (Dom.av (Dom.lift1 (fun b -> b + (imm * 4)) base)))
    | Sp_adjust words ->
      let sp = Dom.lift1 (fun s -> s + (words * 4)) (rdv Thumb.Reg.sp).Dom.v in
      fall (setr st Thumb.Reg.sp (Dom.av sp))
    | Push { rlist; lr } ->
      let regs = low_regs rlist in
      let count = List.length regs + if lr then 1 else 0 in
      let sp = addr_singleton "push" (rdv Thumb.Reg.sp).Dom.v in
      let base = mask32 (sp - (4 * count)) in
      let st, a =
        List.fold_left
          (fun (st, a) r ->
            (Astate.store_word st a (rdv (Thumb.Reg.of_int r)), a + 4))
          (st, base) regs
      in
      let st = if lr then Astate.store_word st a (rdv Thumb.Reg.lr) else st in
      fall (setr st Thumb.Reg.sp (Dom.av_const base))
    | Pop { rlist; pc = load_pc } ->
      let regs = low_regs rlist in
      let base = addr_singleton "pop" (rdv Thumb.Reg.sp).Dom.v in
      let st, a =
        List.fold_left
          (fun (st, a) r ->
            ( setr st (Thumb.Reg.of_int r) (Astate.load_word ctx.image st a),
              a + 4 ))
          (st, base) regs
      in
      if load_pc then
        let target = Astate.load_word ctx.image st a in
        ( [],
          Exit
            (setr st Thumb.Reg.sp (Dom.av_const (mask32 (a + 4))), target.Dom.v)
        )
      else fall (setr st Thumb.Reg.sp (Dom.av_const (mask32 a)))
    | Stmia (rb, rlist) ->
      let base = addr_singleton "stmia" (rdv rb).Dom.v in
      let st, a =
        List.fold_left
          (fun (st, a) r ->
            (Astate.store_word st a (rdv (Thumb.Reg.of_int r)), mask32 (a + 4)))
          (st, base) (low_regs rlist)
      in
      fall (setr st rb (Dom.av_const a))
    | Ldmia (rb, rlist) ->
      let base = addr_singleton "ldmia" (rdv rb).Dom.v in
      let st, a =
        List.fold_left
          (fun (st, a) r ->
            ( setr st (Thumb.Reg.of_int r) (Astate.load_word ctx.image st a),
              mask32 (a + 4) ))
          (st, base) (low_regs rlist)
      in
      fall (setr st rb (Dom.av_const a))
    | B_cond (cond, off) ->
      ([], Branch { cond; taken = addr + 4 + (off * 2); fall = addr + 2 })
    | B off -> ([], Goto (st, addr + 4 + (off * 2)))
    | Bl_hi off -> (
      (* the CFG folds a BL pair into its prefix insn (the suffix is
         covered, not listed), so resolve the pair here *)
      match
        Option.map
          (fun w -> Thumb.Decode.table.(w land 0xFFFF))
          (Astate.flash_halfword ctx.image (addr + 2))
      with
      | Some (Thumb.Instr.Bl_lo lo) ->
        let callee = mask32 (addr + 4 + (off lsl 12) + (lo lsl 1)) land lnot 1 in
        ( [],
          Call
            { st = setr st Thumb.Reg.lr (Dom.av_const ((addr + 4) lor 1));
              callee;
              ret = addr + 4 } )
      | _ ->
        (* dangling prefix: just the architectural LR update *)
        fall
          (setr st Thumb.Reg.lr (Dom.av_const (mask32 (addr + 4 + (off lsl 12))))))
    | Bl_lo off -> (
      match Dom.singleton (rdv Thumb.Reg.lr).Dom.v with
      | Some lr ->
        let target = mask32 (lr + (off lsl 1)) land lnot 1 in
        ( [],
          Call
            { st = setr st Thumb.Reg.lr (Dom.av_const ((addr + 2) lor 1));
              callee = target;
              ret = addr + 2 } )
      | None -> ([], Stuck "bl with an unresolved high half"))
    | Swi _ -> ([], Trapped)
    | Bkpt _ -> ([], Halted)
    | Undefined _ -> ([], Undef)
  with Stuck_exn m -> ([], Stuck m)

(* --- the explorer -------------------------------------------------------- *)

type terminal =
  | Detected of int
  | Escaped of { addr : int; reason : string; forks : int }
  | Crashed of { addr : int; reason : string }
  | Unresolved of { addr : int; reason : string }

type summary = {
  terminals : terminal list;
  steps_used : int;
  complete : bool;  (** every path ended in a classified terminal *)
}

let terminal_addr = function
  | Detected a -> a
  | Escaped { addr; _ } | Crashed { addr; _ } | Unresolved { addr; _ } -> addr

let pp_terminal ppf = function
  | Detected a -> Fmt.pf ppf "detected@0x%x" a
  | Escaped { addr; reason; forks } ->
    Fmt.pf ppf "escape@0x%x (%s%s)" addr reason
      (if forks > 0 then Fmt.str ", %d speculative branches" forks else "")
  | Crashed { addr; reason } -> Fmt.pf ppf "crash@0x%x (%s)" addr reason
  | Unresolved { addr; reason } -> Fmt.pf ppf "unresolved@0x%x (%s)" addr reason

let max_terminals = 64
let max_depth = 12

(* Walk from [(state0, addr0)] with an empty call stack; return the
   terminal summary and (for reach mode) the joined states observed at
   each conditional branch, keyed by its address. *)
let explore ctx ~sinks ~max_steps state0 addr0 =
  let seen : (int * int list, Astate.t) Hashtbl.t = Hashtbl.create 256 in
  let reach : (int, Astate.t) Hashtbl.t = Hashtbl.create 64 in
  let terminals = ref [] in
  let nterms = ref 0 in
  let incomplete = ref false in
  let steps = ref 0 in
  let record t =
    if !nterms >= max_terminals then incomplete := true
    else begin
      terminals := t :: !terminals;
      incr nterms;
      match t with Unresolved _ -> incomplete := true | _ -> ()
    end
  in
  let queue = Queue.create () in
  Queue.add (state0, addr0, []) queue;
  while not (Queue.is_empty queue) do
    let st, addr, stack = Queue.pop queue in
    if !steps >= max_steps then incomplete := true
    else begin
      incr steps;
      match Hashtbl.find_opt ctx.insns addr with
      | None ->
        if sinks then
          record (Unresolved { addr; reason = "outside the recovered CFG" })
        else incomplete := true
      | Some insn -> (
        let key = (addr, stack) in
        let proceed =
          match Hashtbl.find_opt seen key with
          | Some prev when Astate.leq st prev -> None (* subsumed: cut *)
          | Some prev ->
            let w = Astate.widen prev st in
            Hashtbl.replace seen key w;
            Some w
          | None ->
            Hashtbl.replace seen key st;
            Some st
        in
        match proceed with
        | None -> ()
        | Some st -> (
          let events, s = step_insn ctx (Astate.copy st) insn in
          if List.mem Detect_store events then begin
            (* terminal in both modes: the defense reacted *)
            if sinks then record (Detected addr)
          end
          else
            let escape =
              if sinks then
                List.find_map
                  (function Observable_store n -> Some n | _ -> None)
                  events
              else None
            in
            match escape with
            | Some name ->
              record
                (Escaped
                   { addr;
                     reason = Fmt.str "stores to global %S" name;
                     forks = st.Astate.forks })
            | None -> (
              match s with
              | Fall st -> Queue.add (st, addr + 2, stack) queue
              | Goto (st, t) -> Queue.add (st, t, stack) queue
              | Branch { cond; taken; fall } ->
                if not sinks then begin
                  let joined =
                    match Hashtbl.find_opt reach addr with
                    | Some prev -> Astate.widen prev st
                    | None -> st
                  in
                  Hashtbl.replace reach addr joined
                end;
                let may_t, may_f = Astate.cond_outcomes st.Astate.flags cond in
                let speculative = may_t && may_f in
                let go holds target =
                  let st' = Astate.refine_cond (Astate.copy st) cond holds in
                  let st' =
                    if speculative then
                      { st' with Astate.forks = st'.Astate.forks + 1 }
                    else st'
                  in
                  Queue.add (st', target, stack) queue
                in
                if may_t then go true taken;
                if may_f then go false fall
                (* neither feasible: contradictory flags, path unreachable *)
              | Call { st; callee; ret } ->
                if ctx.detect_entry = Some callee then begin
                  if sinks then record (Detected addr)
                end
                else if List.length stack >= max_depth then
                  record (Unresolved { addr; reason = "call depth limit" })
                else Queue.add (st, callee, ret :: stack) queue
              | Exit (st, target) -> (
                match Dom.singleton target with
                | None ->
                  if sinks then
                    record
                      (Unresolved { addr; reason = "computed branch target" })
                  else incomplete := true
                | Some t -> (
                  let t = t land lnot 1 in
                  match stack with
                  | r :: rest when r = t -> Queue.add (st, t, rest) queue
                  | [] ->
                    if sinks then
                      record
                        (Escaped
                           { addr;
                             reason = "returns from the faulted region";
                             forks = st.Astate.forks })
                  | _ ->
                    (* not the pending return address: follow it as a
                       jump (tail call, computed dispatch) *)
                    Queue.add (st, t, stack) queue))
              | Halted ->
                if sinks then
                  record
                    (Escaped
                       { addr;
                         reason = "halts normally with the fault in effect";
                         forks = st.Astate.forks })
              | Trapped ->
                if sinks then record (Crashed { addr; reason = "swi trap" })
              | Undef ->
                if sinks then
                  record (Crashed { addr; reason = "undefined instruction" })
              | Stuck reason ->
                if sinks then record (Unresolved { addr; reason })
                else incomplete := true)))
    end
  done;
  if !steps >= max_steps then incomplete := true;
  ( { terminals = List.rev !terminals;
      steps_used = !steps;
      complete = not !incomplete },
    reach )
