(* Per-instruction dataflow metadata, one entry per arm of
   Thumb.Instr.t, mirroring Machine.Exec's concrete semantics: which
   registers and flags an instruction reads (values its result depends
   on), which it writes, whether it touches memory, and whether it is
   control-relevant. Every instruction the emulator can execute has an
   entry — the exhaustiveness test walks all 65,536 decodings. *)

let reg r = 1 lsl Thumb.Reg.to_int r

let sp_bit = 1 lsl 13
let lr_bit = 1 lsl 14
let pc_bit = 1 lsl 15

(* NZCV bit codes, matching the Exhaust.State key flag byte. *)
let fn = 8
let fz = 4
let fc = 2
let fv = 1
let fnzcv = fn lor fz lor fc lor fv

(* Flags read by Cpu.condition_holds per condition. *)
let cond_flags (c : Thumb.Instr.cond) =
  match c with
  | EQ | NE -> fz
  | CS | CC -> fc
  | MI | PL -> fn
  | VS | VC -> fv
  | HI | LS -> fc lor fz
  | GE | LT -> fn lor fv
  | GT | LE -> fz lor fn lor fv

type mem_kind = No_mem | Load | Store

type ctrl_kind = Straight | Cond of Thumb.Instr.cond | Diverts

type t = {
  reads : int;  (** registers whose values feed the result or address *)
  writes : int;  (** registers written *)
  flag_reads : int;
  flag_writes : int;
  mem : mem_kind;
  ctrl : ctrl_kind;  (** [Diverts]: PC writes, traps, halts, undefined *)
}

let straight ?(flag_reads = 0) ?(flag_writes = 0) ?(mem = No_mem) ~reads ~writes
    () =
  { reads; writes; flag_reads; flag_writes; mem; ctrl = Straight }

let low_rlist_bits rlist = rlist land 0xFF

let of_instr (i : Thumb.Instr.t) =
  match i with
  | Shift (op, rd, rs, imm) ->
    (* NZ always; C except the LSL #0 (MOVS) special case. *)
    let c = match op with Lsl when imm = 0 -> 0 | _ -> fc in
    straight ~reads:(reg rs) ~writes:(reg rd) ~flag_writes:(fn lor fz lor c) ()
  | Add_sub { imm; rd; rs; operand; _ } ->
    let reads = reg rs lor if imm then 0 else 1 lsl operand in
    straight ~reads ~writes:(reg rd) ~flag_writes:fnzcv ()
  | Imm (MOVi, rd, _) ->
    straight ~reads:0 ~writes:(reg rd) ~flag_writes:(fn lor fz) ()
  | Imm (CMPi, rd, _) -> straight ~reads:(reg rd) ~writes:0 ~flag_writes:fnzcv ()
  | Imm ((ADDi | SUBi), rd, _) ->
    straight ~reads:(reg rd) ~writes:(reg rd) ~flag_writes:fnzcv ()
  | Alu (op, rd, rs) -> (
    let rd_b = reg rd and rs_b = reg rs in
    match op with
    | AND | EOR | ORR | BIC | MUL ->
      straight ~reads:(rd_b lor rs_b) ~writes:rd_b ~flag_writes:(fn lor fz) ()
    | MVN -> straight ~reads:rs_b ~writes:rd_b ~flag_writes:(fn lor fz) ()
    | TST -> straight ~reads:(rd_b lor rs_b) ~writes:0 ~flag_writes:(fn lor fz) ()
    | LSLr | LSRr | ASRr | ROR ->
      (* C conditionally updated (amount <> 0): may-write. *)
      straight ~reads:(rd_b lor rs_b) ~writes:rd_b
        ~flag_writes:(fn lor fz lor fc) ()
    | NEG -> straight ~reads:rs_b ~writes:rd_b ~flag_writes:fnzcv ()
    | CMPr | CMN ->
      straight ~reads:(rd_b lor rs_b) ~writes:0 ~flag_writes:fnzcv ()
    | ADC | SBC ->
      straight ~reads:(rd_b lor rs_b) ~writes:rd_b ~flag_reads:fc
        ~flag_writes:fnzcv ())
  | Hi_add (rd, rm) when Thumb.Reg.equal rd Thumb.Reg.pc ->
    { reads = reg rm; writes = pc_bit; flag_reads = 0; flag_writes = 0;
      mem = No_mem; ctrl = Diverts }
  | Hi_add (rd, rm) ->
    straight ~reads:(reg rd lor reg rm) ~writes:(reg rd) ()
  | Hi_cmp (rd, rm) ->
    straight ~reads:(reg rd lor reg rm) ~writes:0 ~flag_writes:fnzcv ()
  | Hi_mov (rd, rm) when Thumb.Reg.equal rd Thumb.Reg.pc ->
    { reads = reg rm; writes = pc_bit; flag_reads = 0; flag_writes = 0;
      mem = No_mem; ctrl = Diverts }
  | Hi_mov (rd, rm) -> straight ~reads:(reg rm) ~writes:(reg rd) ()
  | Bx rm ->
    { reads = reg rm; writes = pc_bit; flag_reads = 0; flag_writes = 0;
      mem = No_mem; ctrl = Diverts }
  | Ldr_pc (rd, _) ->
    (* PC-relative: the address is a constant; flash is immutable in
       transient mode, so the loaded value is the baseline's. *)
    straight ~reads:0 ~writes:(reg rd) ~mem:Load ()
  | Mem_reg { load; rd; rb; ro; _ } ->
    if load then straight ~reads:(reg rb lor reg ro) ~writes:(reg rd) ~mem:Load ()
    else
      straight ~reads:(reg rb lor reg ro lor reg rd) ~writes:0 ~mem:Store ()
  | Mem_sign { op = STRH; rd; rb; ro } ->
    straight ~reads:(reg rb lor reg ro lor reg rd) ~writes:0 ~mem:Store ()
  | Mem_sign { rd; rb; ro; _ } ->
    straight ~reads:(reg rb lor reg ro) ~writes:(reg rd) ~mem:Load ()
  | Mem_imm { load; rd; rb; _ } ->
    if load then straight ~reads:(reg rb) ~writes:(reg rd) ~mem:Load ()
    else straight ~reads:(reg rb lor reg rd) ~writes:0 ~mem:Store ()
  | Mem_half { load; rd; rb; _ } ->
    if load then straight ~reads:(reg rb) ~writes:(reg rd) ~mem:Load ()
    else straight ~reads:(reg rb lor reg rd) ~writes:0 ~mem:Store ()
  | Mem_sp { load; rd; _ } ->
    if load then straight ~reads:sp_bit ~writes:(reg rd) ~mem:Load ()
    else straight ~reads:(sp_bit lor reg rd) ~writes:0 ~mem:Store ()
  | Load_addr { from_sp; rd; _ } ->
    straight ~reads:(if from_sp then sp_bit else 0) ~writes:(reg rd) ()
  | Sp_adjust _ -> straight ~reads:sp_bit ~writes:sp_bit ()
  | Push { rlist; lr } ->
    let regs = low_rlist_bits rlist lor if lr then lr_bit else 0 in
    straight ~reads:(sp_bit lor regs) ~writes:sp_bit ~mem:Store ()
  | Pop { rlist; pc } ->
    let writes = low_rlist_bits rlist lor sp_bit in
    if pc then
      { reads = sp_bit; writes = writes lor pc_bit; flag_reads = 0;
        flag_writes = 0; mem = Load; ctrl = Diverts }
    else straight ~reads:sp_bit ~writes ~mem:Load ()
  | Stmia (rb, rlist) ->
    straight ~reads:(reg rb lor low_rlist_bits rlist) ~writes:(reg rb)
      ~mem:Store ()
  | Ldmia (rb, rlist) ->
    straight ~reads:(reg rb) ~writes:(reg rb lor low_rlist_bits rlist)
      ~mem:Load ()
  | B_cond (c, _) ->
    { reads = 0; writes = 0; flag_reads = cond_flags c; flag_writes = 0;
      mem = No_mem; ctrl = Cond c }
  | B _ ->
    { reads = 0; writes = pc_bit; flag_reads = 0; flag_writes = 0;
      mem = No_mem; ctrl = Diverts }
  | Bl_hi _ ->
    (* Writes LR from the (untainted) PC; falls through. *)
    straight ~reads:0 ~writes:lr_bit ()
  | Bl_lo _ ->
    { reads = lr_bit; writes = lr_bit lor pc_bit; flag_reads = 0;
      flag_writes = 0; mem = No_mem; ctrl = Diverts }
  | Swi _ | Bkpt _ | Undefined _ ->
    { reads = 0; writes = 0; flag_reads = 0; flag_writes = 0; mem = No_mem;
      ctrl = Diverts }

(* A "pure" instruction in the pre-pruner's sense: no memory access, no
   control relevance — its whole effect is a register/flag write. *)
let pure e = e.mem = No_mem && e.ctrl = Straight
