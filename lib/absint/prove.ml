(* The glitch-gadget prover: for every conditional branch the pristine
   firmware actually reaches, ask what a direction-flipping fault at
   that guard can lead to. The abstract explorer ({!Interp}) walks the
   faulted continuation from the *wrong* edge, starting from the joined
   reach state refined with the direction the condition really took;
   every terminal is either a detection, a crash, a silent escape, or
   an unresolved path.

   The verdict per guard:

   - a deterministic escape witness (no speculative branch decisions on
     the path) is an [Error] — a single glitch provably reaches
     observable behaviour unchecked;
   - a speculative escape is a [Warning] — the finder cannot rule the
     path out, but imprecision may have invented it;
   - no escapes but unresolved paths is a [Warning] — the defense was
     not proven;
   - every path detected or crashed, exhaustively, is an [Info] — the
     defense is semantically proven at this guard, not just structurally
     present (the lint rules' view).

   Guards owned by runtime support ("__udiv" and friends) are reported
   at [Info] regardless, mirroring lint's guard-flippable policy: the
   paper's defenses only claim user code.

   Two static gadget scanners ride along: single-bit BL retargets that
   land at another function's entry (scored against the Domains
   clustering when configured), and Sigcfi signature collisions across
   functions. Both are [Info] — material for the defense-design audit
   rather than firmware bugs. *)

type guard = {
  g_addr : int;
  g_func : string;
  g_runtime : bool;
  g_scenarios : Interp.summary list;  (** one per feasible direction *)
}

type report = {
  cfg : Analysis.Cfg.t;
  guards_total : int;  (** conditionals in the recovered CFG *)
  guards_reached : int;  (** with a pristine reach state *)
  scenarios : int;
  proven : int;  (** guards with every faulted path detected/crashed *)
  escapes : int;  (** guards with at least one escape terminal *)
  unproven : int;  (** reached, not proven, no escape witness *)
  reach_complete : bool;
  diags : Analysis.Lint.diag list;
}

let reach_budget = 40_000
let scenario_budget = 6_000

let sev_rank = function
  | Analysis.Lint.Error -> 0
  | Analysis.Lint.Warning -> 1
  | Analysis.Lint.Info -> 2

let sort_diags =
  List.sort (fun (a : Analysis.Lint.diag) b ->
      match compare (sev_rank a.severity) (sev_rank b.severity) with
      | 0 -> ( match compare a.rule b.rule with 0 -> compare a.addr b.addr | c -> c)
      | c -> c)

(* --- per-guard fault scenarios ------------------------------------------- *)

let scenarios_of_guard ctx reach (insn : Analysis.Cfg.insn) =
  match insn.instr with
  | Thumb.Instr.B_cond (cond, off) -> (
    match Hashtbl.find_opt reach insn.addr with
    | None -> None (* never reached by the pristine run: no fault to flip *)
    | Some st ->
      let taken = insn.addr + 4 + (off * 2) and fall = insn.addr + 2 in
      let may_t, may_f = Astate.cond_outcomes st.Astate.flags cond in
      let run actual wrong_target =
        let st0 = Astate.refine_cond (Astate.copy st) cond actual in
        fst (Interp.explore ctx ~sinks:true ~max_steps:scenario_budget st0 wrong_target)
      in
      let ss = [] in
      let ss = if may_t then run true fall :: ss else ss in
      let ss = if may_f then run false taken :: ss else ss in
      Some ss)
  | _ -> None

type verdict = Proven | Escape of Interp.terminal * bool | Unproven of string

let judge (scenarios : Interp.summary list) =
  let terminals = List.concat_map (fun s -> s.Interp.terminals) scenarios in
  let escapes =
    List.filter_map
      (function Interp.Escaped e -> Some (Interp.Escaped e, e.forks = 0) | _ -> None)
      terminals
  in
  match List.find_opt snd escapes with
  | Some (t, _) -> Escape (t, true)
  | None -> (
    match escapes with
    | (t, _) :: _ -> Escape (t, false)
    | [] ->
      if List.for_all (fun s -> s.Interp.complete) scenarios then Proven
      else
        let reason =
          match
            List.find_map
              (function Interp.Unresolved u -> Some u.reason | _ -> None)
              terminals
          with
          | Some r -> r
          | None -> "path budget exhausted"
        in
        Unproven reason)

let diag_of_guard (g : guard) =
  let open Analysis.Lint in
  let mk severity rule message =
    { rule; severity; func = g.g_func; addr = g.g_addr; message }
  in
  let soften s = if g.g_runtime then Info else s in
  match judge g.g_scenarios with
  | Proven ->
    let n = List.fold_left (fun n s -> n + List.length s.Interp.terminals) 0 g.g_scenarios in
    mk Info "fault-flow-proven"
      (Fmt.str
         "direction flip proven harmless: all %d faulted paths end in detection or crash"
         n)
  | Escape (t, deterministic) ->
    mk
      (soften (if deterministic then Error else Warning))
      "fault-flow-escape"
      (Fmt.str "direction flip %s: %a%s"
         (if deterministic then "escapes deterministically"
          else "may escape (speculative path)")
         Interp.pp_terminal t
         (if g.g_runtime then " [runtime support]" else ""))
  | Unproven reason ->
    mk (soften Warning) "fault-flow-unproven"
      (Fmt.str "no escape found, but the flip is not proven harmless: %s" reason)

(* --- BL retarget scanner ------------------------------------------------- *)

(* One-bit flips of a BL-suffix halfword that still decode as a BL
   suffix move the call target by (delta lsl 1); when the perturbed
   target is another function's entry the call is a classic glitch
   gadget. Domains clustering catches exactly the cross-cluster ones. *)
let retarget_diags (cfg : Analysis.Cfg.t) domains =
  let fn_entries =
    List.map (fun (f : Analysis.Cfg.fn) -> (f.entry, f.name)) cfg.funcs
  in
  let cluster f =
    Option.bind domains (fun d -> List.assoc_opt f d)
  in
  List.concat_map
    (fun (i : Analysis.Cfg.insn) ->
      match i.instr with
      | Thumb.Instr.Bl_lo off ->
        let caller =
          Option.value ~default:"?" (Analysis.Cfg.owner cfg i.addr)
        in
        List.filter_map
          (fun bit ->
            let word' = i.word lxor (1 lsl bit) in
            match Thumb.Decode.table.(word' land 0xFFFF) with
            | Thumb.Instr.Bl_lo off' when off' <> off ->
              (* same BL pair, perturbed suffix: the original suffix
                 resolves lr + off<<1, so the perturbed call lands
                 (off'-off)<<1 away from the original destination *)
              let orig =
                List.find_opt
                  (fun b -> List.mem_assoc b fn_entries)
                  (Analysis.Cfg.block_at cfg i.addr
                  |> Option.map (fun (b : Analysis.Cfg.block) -> b.calls)
                  |> Option.value ~default:[])
              in
              Option.bind orig (fun orig_target ->
                  let t' = orig_target + ((off' - off) lsl 1) in
                  match List.assoc_opt t' fn_entries with
                  | Some victim when t' <> orig_target ->
                    let covered =
                      match (cluster caller, cluster victim) with
                      | Some a, Some b -> a <> b
                      | _ -> false
                    in
                    if covered then None
                    else
                      Some
                        { Analysis.Lint.rule = "fault-flow-retarget";
                          severity = Analysis.Lint.Info;
                          func = caller;
                          addr = i.addr;
                          message =
                            Fmt.str
                              "bit %d flip retargets this call to %s%s" bit
                              victim
                              (match domains with
                              | Some _ -> " within the same domain cluster"
                              | None -> " (no domain clustering configured)")
                        }
                  | _ -> None)
            | _ -> None)
          (List.init 11 Fun.id)
      | _ -> [])
    (Analysis.Cfg.reachable_insns cfg)

(* --- Sigcfi collision scanner -------------------------------------------- *)

let collision_diags (modul : Ir.modul option)
    (sigcfi : Resistor.Sigcfi.report option) =
  match (modul, sigcfi) with
  | Some m, Some r ->
    let sigs =
      List.concat_map
        (fun (f : Ir.func) ->
          List.map
            (fun (b : Ir.block) ->
              (f.fname, b.label, Resistor.Sigcfi.signature ~key:r.key f.fname b.label))
            f.blocks)
        m.funcs
    in
    let rec pairs acc = function
      | [] -> acc
      | (f1, l1, s1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (f2, l2, s2) ->
              if s1 = s2 && f1 <> f2 && List.length acc < 8 then
                { Analysis.Lint.rule = "fault-flow-collision";
                  severity = Analysis.Lint.Info;
                  func = f1;
                  addr = 0;
                  message =
                    Fmt.str
                      "sigcfi signature 0x%02x of %s.%s collides with %s.%s: \
                       a retarget between them passes the sink check"
                      s1 f1 l1 f2 l2 }
                :: acc
              else acc)
            acc rest
        in
        pairs acc rest
    in
    List.rev (pairs [] sigs)
  | _ -> []

(* --- entry point --------------------------------------------------------- *)

let run ?config ?(reports : Resistor.Driver.reports option) ?modul
    (image : Lower.Layout.image) =
  ignore config;
  let cfg, ctx = Interp.create image in
  let reach_summary, reach =
    Interp.explore ctx ~sinks:false ~max_steps:reach_budget
      (Astate.init image) image.entry
  in
  let guards =
    List.filter_map
      (fun (i : Analysis.Cfg.insn) ->
        match scenarios_of_guard ctx reach i with
        | None -> None
        | Some ss ->
          let func =
            Option.value ~default:"?" (Analysis.Cfg.owner cfg i.addr)
          in
          Some
            { g_addr = i.addr;
              g_func = func;
              g_runtime =
                String.length func >= 2 && String.sub func 0 2 = "__";
              g_scenarios = ss })
      (Analysis.Cfg.conditionals cfg)
  in
  let guard_diags = List.map diag_of_guard guards in
  let domains =
    Option.bind reports (fun (r : Resistor.Driver.reports) ->
        Option.map
          (fun (d : Resistor.Domains.report) -> d.domains)
          r.domains_report)
  in
  let sigcfi = Option.bind reports (fun r -> r.Resistor.Driver.sigcfi_report) in
  let diags =
    sort_diags
      (guard_diags @ retarget_diags cfg domains @ collision_diags modul sigcfi)
  in
  let count rule =
    List.length (List.filter (fun (d : Analysis.Lint.diag) -> d.rule = rule) guard_diags)
  in
  { cfg;
    guards_total = List.length (Analysis.Cfg.conditionals cfg);
    guards_reached = List.length guards;
    scenarios = List.fold_left (fun n g -> n + List.length g.g_scenarios) 0 guards;
    proven = count "fault-flow-proven";
    escapes = count "fault-flow-escape";
    unproven = count "fault-flow-unproven";
    reach_complete = reach_summary.Interp.complete;
    diags }

let errors r =
  List.filter
    (fun (d : Analysis.Lint.diag) -> d.severity = Analysis.Lint.Error)
    r.diags

(* --- dataflow-backed lint refinement ------------------------------------- *)

(* The structural guard-flippable rule grades a guard by whether a
   complemented duplicate exists anywhere in the owning function; the
   abstract explorer grades the actual faulted continuation. Where both
   have an opinion on the same guard the semantic verdict wins:

   - structurally unprotected (Error) but semantically proven — every
     faulted path ends in detection or crash, so nothing exploitable
     survives the missing duplicate: downgraded to Info;
   - structurally protected (Info/Warning) but deterministically
     escaping — the duplicate exists yet never re-checks the faulted
     path: upgraded to Error.

   Everything else (other rules, runtime support, speculative or
   unproven verdicts) passes through untouched, and the prover's own
   findings are merged so the refined report carries the evidence for
   each re-grade. *)
let refine_lint (lint : Analysis.Lint.report) (r : report) =
  let verdict_at addr =
    List.find_opt
      (fun (d : Analysis.Lint.diag) ->
        d.addr = addr
        && (d.rule = "fault-flow-proven" || d.rule = "fault-flow-escape"
          || d.rule = "fault-flow-unproven"))
      r.diags
  in
  let refined =
    List.map
      (fun (d : Analysis.Lint.diag) ->
        if d.rule <> "guard-flippable" then d
        else
          match verdict_at d.addr with
          | Some { rule = "fault-flow-proven"; _ }
            when d.severity = Analysis.Lint.Error ->
            { d with
              severity = Analysis.Lint.Info;
              message =
                d.message
                ^ "; absint: every faulted continuation provably ends in \
                   detection or crash" }
          | Some { rule = "fault-flow-escape"; severity = Analysis.Lint.Error; _ }
            when d.severity <> Analysis.Lint.Error ->
            { d with
              severity = Analysis.Lint.Error;
              message =
                d.message
                ^ "; absint: a deterministic escape survives the duplicate" }
          | _ -> d)
      lint.Analysis.Lint.diags
  in
  sort_diags (refined @ r.diags)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"guards\":%d,\"reached\":%d,\"scenarios\":%d,\"proven\":%d,\
        \"escapes\":%d,\"unproven\":%d,\"reach_complete\":%b,\"diags\":["
       r.guards_total r.guards_reached r.scenarios r.proven r.escapes
       r.unproven r.reach_complete);
  List.iteri
    (fun i (d : Analysis.Lint.diag) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"func\":\"%s\",\
            \"addr\":\"0x%08x\",\"message\":\"%s\"}"
           (json_escape d.rule)
           (Analysis.Lint.severity_name d.severity)
           (json_escape d.func) d.addr (json_escape d.message)))
    r.diags;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp ppf r =
  List.iter (fun d -> Fmt.pf ppf "%a@." Analysis.Lint.pp_diag d) r.diags;
  Fmt.pf ppf
    "%d guards (%d reached by the pristine run, %d fault scenarios): %d \
     proven, %d with escapes, %d unproven%s@."
    r.guards_total r.guards_reached r.scenarios r.proven r.escapes r.unproven
    (if r.reach_complete then "" else " [reach exploration incomplete]")
