(* Abstract machine state for the whole-image fault-flow explorer: 16
   registers and 4 flags as value sets, plus a word-granular map over
   SRAM. The map starts from the linked image's initial memory (.data
   initialisers, zeroed .bss), so an exploration from reset tracks the
   firmware's globals concretely; an absent address means "any word"
   (stack slots before their first store, device registers, havoced
   regions).

   States are compared with [leq] (pointwise subset) for subsumption
   and combined with [widen] at re-visited program points; both respect
   the map's Top-when-absent convention, so dropping a key is always a
   sound way to lose precision. *)

module Imap = Map.Make (Int)

type flags = { n : Dom.vset; z : Dom.vset; c : Dom.vset; v : Dom.vset }

type t = {
  regs : Dom.aval array;  (** r0..r15; r15 is tracked by the explorer *)
  flags : flags;
  mem : Dom.aval Imap.t;  (** word-aligned address -> value; absent = Top *)
  forks : int;  (** speculative branch decisions taken on this path *)
}

let bool_top = Dom.of_list [ 0; 1 ]
let flags_top = { n = bool_top; z = bool_top; c = bool_top; v = bool_top }

let copy st = { st with regs = Array.copy st.regs }

let get st r = st.regs.(Thumb.Reg.to_int r)
let set st r v = st.regs.(Thumb.Reg.to_int r) <- v

(* --- initial memory ------------------------------------------------------ *)

let word_aligned a = a land lnot 3

let initial_mem (image : Lower.Layout.image) =
  let add_section m (s : Lower.Layout.section) =
    let rec go m a =
      if a >= s.base + s.size then m
      else go (Imap.add a (Dom.av_const 0) m) (a + 4)
    in
    go m s.base
  in
  let m = add_section (add_section Imap.empty image.data) image.bss in
  List.fold_left
    (fun m (a, v) -> Imap.add (word_aligned a) (Dom.av_const v) m)
    m image.data_init

let init (image : Lower.Layout.image) =
  let regs = Array.make 16 Dom.av_top in
  regs.(13) <- Dom.av_const image.stack_top;
  { regs; flags = flags_top; mem = initial_mem image; forks = 0 }

(* --- flash reads --------------------------------------------------------- *)

let flash_halfword (image : Lower.Layout.image) addr =
  let i = (addr - image.text.base) / 2 in
  if addr land 1 = 0 && i >= 0 && i < Array.length image.words then
    Some image.words.(i)
  else None

let flash_word image addr =
  match (flash_halfword image addr, flash_halfword image (addr + 2)) with
  | Some lo, Some hi -> Some (lo lor (hi lsl 16))
  | _ -> None

let in_flash (image : Lower.Layout.image) addr =
  addr >= image.text.base && addr < image.text.base + image.text.size

let in_sram addr =
  addr >= Lower.Layout.sram_base
  && addr < Lower.Layout.sram_base + Lower.Layout.sram_size

(* --- memory access (word granularity; addr must be a singleton) ---------- *)

let load_word image st addr =
  if in_flash image addr then
    match flash_word image addr with
    | Some w -> Dom.av_const w
    | None -> Dom.av_top
  else if in_sram addr then
    match Imap.find_opt (word_aligned addr) st.mem with
    | Some v -> v
    | None -> Dom.av_top
  else Dom.av_top

let store_word st addr v =
  if in_sram addr then { st with mem = Imap.add (word_aligned addr) v st.mem }
  else st (* flash / device stores don't enter the tracked map *)

let havoc_mem st = { st with mem = Imap.empty }

(* --- lattice ------------------------------------------------------------- *)

let flags_leq a b =
  Dom.subset a.n b.n && Dom.subset a.z b.z && Dom.subset a.c b.c
  && Dom.subset a.v b.v

let leq a b =
  (* b over-approximates a: registers and flags pointwise, and every
     constraint b keeps on memory is implied by a *)
  let regs_ok = ref true in
  for i = 0 to 15 do
    if
      not
        (Dom.subset a.regs.(i).Dom.v b.regs.(i).Dom.v
        && (a.regs.(i).Dom.t = Dom.Clean || b.regs.(i).Dom.t = Dom.Tainted))
    then regs_ok := false
  done;
  !regs_ok && flags_leq a.flags b.flags
  && Imap.for_all
       (fun addr bv ->
         match Imap.find_opt addr a.mem with
         | Some av -> Dom.subset av.Dom.v bv.Dom.v
         | None -> Dom.is_top bv.Dom.v)
       b.mem

let widen_flags a b =
  { n = Dom.widen a.n b.n;
    z = Dom.widen a.z b.z;
    c = Dom.widen a.c b.c;
    v = Dom.widen a.v b.v }

let widen a b =
  let regs = Array.init 16 (fun i -> Dom.av_widen a.regs.(i) b.regs.(i)) in
  let mem =
    (* keep only addresses constrained in both, widened *)
    Imap.merge
      (fun _ x y ->
        match (x, y) with Some x, Some y -> Some (Dom.av_widen x y) | _ -> None)
      a.mem b.mem
  in
  { regs; flags = widen_flags a.flags b.flags; mem;
    forks = max a.forks b.forks }

(* --- conditions ---------------------------------------------------------- *)

let has n s = Dom.mem n s

(* Possible outcomes of a condition under the current flag sets; the
   correlation between flags is not tracked, so a compound condition
   over imprecise flags reports both. *)
let cond_outcomes fl (c : Thumb.Instr.cond) =
  let may_t, may_f =
    match c with
    | Thumb.Instr.EQ -> (has 1 fl.z, has 0 fl.z)
    | NE -> (has 0 fl.z, has 1 fl.z)
    | CS -> (has 1 fl.c, has 0 fl.c)
    | CC -> (has 0 fl.c, has 1 fl.c)
    | MI -> (has 1 fl.n, has 0 fl.n)
    | PL -> (has 0 fl.n, has 1 fl.n)
    | VS -> (has 1 fl.v, has 0 fl.v)
    | VC -> (has 0 fl.v, has 1 fl.v)
    | HI -> (has 1 fl.c && has 0 fl.z, has 0 fl.c || has 1 fl.z)
    | LS -> (has 0 fl.c || has 1 fl.z, has 1 fl.c && has 0 fl.z)
    | GE ->
      ( (has 0 fl.n && has 0 fl.v) || (has 1 fl.n && has 1 fl.v),
        (has 0 fl.n && has 1 fl.v) || (has 1 fl.n && has 0 fl.v) )
    | LT ->
      ( (has 0 fl.n && has 1 fl.v) || (has 1 fl.n && has 0 fl.v),
        (has 0 fl.n && has 0 fl.v) || (has 1 fl.n && has 1 fl.v) )
    | GT ->
      ( has 0 fl.z && ((has 0 fl.n && has 0 fl.v) || (has 1 fl.n && has 1 fl.v)),
        has 1 fl.z || (has 0 fl.n && has 1 fl.v) || (has 1 fl.n && has 0 fl.v)
      )
    | LE ->
      ( has 1 fl.z || (has 0 fl.n && has 1 fl.v) || (has 1 fl.n && has 0 fl.v),
        has 0 fl.z && ((has 0 fl.n && has 0 fl.v) || (has 1 fl.n && has 1 fl.v))
      )
  in
  (may_t, may_f)

(* Refine the flag sets with "condition [c] evaluated to [holds]" —
   only single-flag conditions carry a usable refinement; the rest
   return the state unchanged (sound). *)
let refine_cond st (c : Thumb.Instr.cond) holds =
  let one = Dom.const 1 and zero = Dom.const 0 in
  let fl = st.flags in
  let fl =
    match (c, holds) with
    | Thumb.Instr.EQ, true | NE, false -> { fl with z = one }
    | EQ, false | NE, true -> { fl with z = zero }
    | CS, true | CC, false -> { fl with c = one }
    | CS, false | CC, true -> { fl with c = zero }
    | MI, true | PL, false -> { fl with n = one }
    | MI, false | PL, true -> { fl with n = zero }
    | VS, true | VC, false -> { fl with v = one }
    | VS, false | VC, true -> { fl with v = zero }
    | (HI | LS | GE | LT | GT | LE), _ -> fl
  in
  { st with flags = fl }

let pp ppf st =
  Fmt.pf ppf "regs:";
  Array.iteri
    (fun i a ->
      if not (Dom.is_top a.Dom.v) then Fmt.pf ppf " r%d=%a" i Dom.pp_aval a)
    st.regs;
  Fmt.pf ppf " z=%a n=%a" Dom.pp st.flags.z Dom.pp st.flags.n;
  Fmt.pf ppf " mem:%d words" (Imap.cardinal st.mem)
