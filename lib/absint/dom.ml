(* The abstract domain: small value sets with widening, the two-point
   fault-taint lattice, and abstract values carrying a value number so
   flag provenance survives spills and reloads.

   A value set is either Top (any 32-bit word) or a sorted array of at
   most [max_card] distinct words. Bottom is the empty set: the value
   of an expression on an unreachable path. Join is set union with a
   cardinality cap; widening only ever grows a set, so any ascending
   chain stabilises after at most [max_card] growths before collapsing
   to Top — the termination argument the lattice-law tests pin. *)

let max_card = 8

type vset = Top | Set of int array

let bot = Set [||]
let top = Top

let norm l =
  let l = List.sort_uniq compare l in
  if List.length l > max_card then Top else Set (Array.of_list l)

let const n = Set [| n land 0xFFFFFFFF |]
let of_list l = norm (List.map (fun n -> n land 0xFFFFFFFF) l)

let is_bot = function Set [||] -> true | _ -> false
let is_top = function Top -> true | _ -> false

let mem n = function
  | Top -> true
  | Set a -> Array.exists (( = ) n) a

let singleton = function Set [| n |] -> Some n | _ -> None

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Set x, Set y -> x = y
  | _ -> false

let subset a b =
  match (a, b) with
  | _, Top -> true
  | Top, _ -> false
  | Set x, Set y -> Array.for_all (fun n -> Array.exists (( = ) n) y) x

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Set x, Set y -> norm (Array.to_list x @ Array.to_list y)

(* Widening: keep [a] when nothing new arrived; otherwise take the join
   (strictly larger, cardinality-capped). Chains a ⊑ widen a b ⊑ ... can
   grow at most [max_card] times before the cap forces Top. *)
let widen a b = if subset b a then a else join a b

let lift1 f = function
  | Top -> Top
  | Set a -> norm (List.map (fun x -> f x land 0xFFFFFFFF) (Array.to_list a))

let lift2 f a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Set [||], _ | _, Set [||] -> bot
  | Set x, Set y ->
    if Array.length x * Array.length y > 64 then Top
    else
      norm
        (List.concat_map
           (fun a ->
             List.map (fun b -> f a b land 0xFFFFFFFF) (Array.to_list y))
           (Array.to_list x))

let pp ppf = function
  | Top -> Fmt.string ppf "T"
  | Set [||] -> Fmt.string ppf "_"
  | Set a ->
    Fmt.pf ppf "{%s}"
      (String.concat ","
         (List.map (Printf.sprintf "0x%x") (Array.to_list a)))

(* --- taint -------------------------------------------------------------- *)

type taint = Clean | Tainted

let tjoin a b = if a = Tainted || b = Tainted then Tainted else Clean
let is_tainted t = t = Tainted

(* --- abstract values ---------------------------------------------------- *)

(* A value number identifies "the same runtime value" across copies:
   spilling a register and reloading it yields the same [sym], which is
   what lets a complemented re-check be tied back to the guard it
   shadows. Arithmetic produces fresh numbers (or none). *)
type operand_id = Sym of int | Const of int

type aval = { v : vset; t : taint; sym : int option }

let av ?sym ?(t = Clean) v = { v; t; sym }
let av_top = { v = Top; t = Clean; sym = None }
let av_tainted = { v = Top; t = Tainted; sym = None }
let av_const n = { v = const n; t = Clean; sym = None }

let sym_counter = ref 0

let fresh_sym () =
  incr sym_counter;
  !sym_counter

let with_fresh_sym a = { a with sym = Some (fresh_sym ()) }

let operand_of a =
  match singleton a.v with
  | Some n -> Some (Const n)
  | None -> ( match a.sym with Some s -> Some (Sym s) | None -> None)

let av_join a b =
  { v = join a.v b.v;
    t = tjoin a.t b.t;
    sym = (match (a.sym, b.sym) with
          | Some x, Some y when x = y -> Some x
          | _ -> None) }

let av_widen a b =
  { v = widen a.v b.v;
    t = tjoin a.t b.t;
    sym = (match (a.sym, b.sym) with
          | Some x, Some y when x = y -> Some x
          | _ -> None) }

let av_equal a b = equal a.v b.v && a.t = b.t && a.sym = b.sym

let pp_aval ppf a =
  Fmt.pf ppf "%a%s" pp a.v (if a.t = Tainted then "!" else "")
