(* The sound static pre-pruner for Exhaust.Campaign (transient mode).

   After the injected step executes, the campaign knows the exact
   post-fault machine state; the baseline trace records the exact state
   the pristine run had at the same cycle. Their difference is the
   complete fault damage. Seed a taint set with the differing
   registers/flags (refusing any PC or memory difference) and push it
   forward along the *remaining baseline instructions* — which are
   exactly what the continuation will execute as long as control never
   diverges — with per-instruction transfer metadata (Effects):

   - an instruction whose inputs are all clean overwrites its
     destinations with the baseline's values: taint dies there;
   - a tainted input to a pure register op taints its destinations;
   - a tainted input to anything control-relevant (conditional flags,
     indirect-branch registers) or memory-relevant (address or store
     data) is refused — the continuation could diverge, fault, or
     corrupt memory, so the point is left to the dynamic engine.

   Invariant maintained: at every step the continuation's state equals
   the baseline's except in tainted registers/flags, and memory is
   bit-identical. Hence:

   - terminating baseline, taint dead by the end, settle budget covers
     the remaining steps: the continuation reproduces the baseline's
     stop and final state exactly — its verdict is the baseline end's
     own classification;
   - non-terminating baseline, window covered (k+1+settle <= n) and no
     detection anywhere in the trace: the continuation is still running
     at its budget with memory identical to the baseline — No_effect —
     even if register taint persists (the built-in classifier compares
     no state in that case).

   Anything else returns None and is executed dynamically. The
   [unsound] ref deliberately breaks the transfer function (taint never
   propagates) — the negative control that must trip the soundness
   differential in CI. *)

let unsound = ref false

type ctx = {
  effs : Effects.t array;  (** per-cycle decoded instruction effects *)
  n : int;  (** trace length *)
  terminating : bool;
  settle : int;
  end_verdict : int;  (** verdict of a perfect baseline replay *)
  no_effect_ok : bool;  (** non-terminating: builtin classifier, det = 0 *)
  no_effect_verdict : int;
  proved : int Atomic.t;  (** points proven without emulation (all domains) *)
}

let create ~steps ~terminating ~settle ~end_verdict ~no_effect_ok
    ~no_effect_verdict () =
  { effs =
      Array.map
        (fun (_, w) -> Effects.of_instr Thumb.Decode.table.(w land 0xFFFF))
        steps;
    n = Array.length steps;
    terminating;
    settle;
    end_verdict;
    no_effect_ok;
    no_effect_verdict;
    proved = Atomic.make 0 }

let proved ctx = Atomic.get ctx.proved

(* State keys are exact serializations (Exhaust.State): r0..r15 as 4
   bytes LE each, one NZCV byte, then touched-and-dirty memory. Equal
   suffix <=> identical memory. *)
let regs_bytes = 64
let flag_index = 64
let header = 65

(* Diff two keys into a (reg mask, flag mask) taint seed; None when the
   damage is not representable (PC or memory differs). *)
let seed base fault =
  if String.length base < header || String.length fault < header then None
  else if
    (* memory tails must be bit-identical *)
    String.length base <> String.length fault
    || not
         (String.equal
            (String.sub base header (String.length base - header))
            (String.sub fault header (String.length fault - header)))
  then None
  else begin
    let regs = ref 0 in
    for i = 0 to 15 do
      let off = 4 * i in
      if
        base.[off] <> fault.[off]
        || base.[off + 1] <> fault.[off + 1]
        || base.[off + 2] <> fault.[off + 2]
        || base.[off + 3] <> fault.[off + 3]
      then regs := !regs lor (1 lsl i)
    done;
    let flags = Char.code base.[flag_index] lxor Char.code fault.[flag_index] in
    if !regs land (1 lsl 15) <> 0 then None  (* control already diverged *)
    else Some (!regs land 0xFFFF, flags land 0xF)
  end

(* Push the taint through baseline step [j]'s instruction. Returns the
   new (regs, flags) taint, or None on a refusal. *)
let flow_step (e : Effects.t) regs flags =
  match e.ctrl with
  | Effects.Cond _ ->
    (* same direction as the baseline iff the condition's flags are
       clean; the branch writes nothing *)
    if e.flag_reads land flags <> 0 then None else Some (regs, flags)
  | Effects.Diverts ->
    (* indirect targets / trap state must be baseline-equal *)
    if e.reads land regs <> 0 then None
    else Some (regs land lnot e.writes, flags land lnot e.flag_writes)
  | Effects.Straight -> (
    match e.mem with
    | Effects.No_mem ->
      if e.reads land regs <> 0 || e.flag_reads land flags <> 0 then
        (* tainted inputs propagate to every destination *)
        Some (regs lor e.writes, flags lor e.flag_writes)
      else
        (* clean inputs: destinations take baseline values — taint dies *)
        Some (regs land lnot e.writes, flags land lnot e.flag_writes)
    | Effects.Load | Effects.Store ->
      (* tainted addresses or store data would diverge memory or fault
         differently; clean ones replay the baseline access exactly, so
         loaded destinations are baseline values *)
      if e.reads land regs <> 0 then None
      else Some (regs land lnot e.writes, flags land lnot e.flag_writes))

let prove ctx ~cycle ~base_key ~fault_key =
  let k = cycle in
  (* the settle budget must provably cover the continuation *)
  let covered =
    if ctx.terminating then ctx.settle >= ctx.n - (k + 1)
    else ctx.no_effect_ok && k + 1 + ctx.settle <= ctx.n
  in
  if not covered then None
  else
    match seed base_key fault_key with
    | None -> None
    | Some (regs0, flags0) ->
      let hi = if ctx.terminating then ctx.n - 1 else k + ctx.settle in
      let rec flow j regs flags =
        if regs = 0 && flags = 0 then
          (* identical to the baseline from here on *)
          Some (if ctx.terminating then ctx.end_verdict else ctx.no_effect_verdict)
        else if j > hi then
          if ctx.terminating then None  (* final state still differs *)
          else Some ctx.no_effect_verdict
        else if !unsound then
          (* sabotaged transfer function: taint never propagates *)
          flow (j + 1) 0 0
        else
          match flow_step ctx.effs.(j) regs flags with
          | None -> None
          | Some (regs, flags) -> flow (j + 1) regs flags
      in
      let r = flow (k + 1) regs0 flags0 in
      (match r with Some _ -> Atomic.incr ctx.proved | None -> ());
      r
