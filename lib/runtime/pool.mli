(** A persistent pool of worker domains for campaign sweeps.

    The pool owns [jobs - 1] domains that sleep between parallel
    regions; the calling domain participates as worker 0, so [jobs]
    workers execute every region. Campaigns combine a pool with a
    {!Chunk.queue}: each worker drains slices into a private
    accumulator, and the per-worker accumulators are merged with a
    commutative reduction — making results independent of the domain
    count and of scheduling.

    A [jobs = 1] pool spawns no domains and runs everything in the
    caller, so the sequential code path is untouched. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the [--jobs] default. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; values below 1 are clamped
    to 1. *)

val jobs : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f wid] once for each worker id
    [0 .. jobs - 1], concurrently, and returns when all are done. The
    calling domain runs [f 0]. If any worker raises, one of the
    exceptions is re-raised here after every worker has finished.
    Regions cannot be nested: calling [run] from inside [f] raises
    [Invalid_argument]. *)

val map_workers : t -> (int -> 'a) -> 'a list
(** Like {!run} but collects each worker's result, ordered by worker
    id. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]: items are claimed one at a time from a shared
    queue, so uneven item costs balance across workers. Result slots
    match input order. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool is unusable
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, and [shutdown] (also on exceptions). *)
