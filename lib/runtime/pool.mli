(** A persistent pool of worker domains for campaign sweeps.

    The pool owns [jobs - 1] domains that sleep between parallel
    regions; the calling domain participates as worker 0, so [jobs]
    workers execute every region. Campaigns combine a pool with a
    {!Chunk.queue}: each worker drains slices into a private
    accumulator, and the per-worker accumulators are merged with a
    commutative reduction — making results independent of the domain
    count and of scheduling.

    A [jobs = 1] pool spawns no domains and runs everything in the
    caller, so the sequential code path is untouched. *)

type t

val default_jobs : ?chunks:int -> unit -> int
(** [Domain.recommended_domain_count ()], the [--jobs] default, clamped
    to the cgroup CPU quota ({!cgroup_cpu_limit}) and to [chunks] (the
    number of parallel work items) when given: the recommended count is
    the {e host}'s core count, so in a quota-limited CI container it
    over-subscribes workers that then time-slice against each other,
    and surplus domains beyond the chunk count can only spin on an
    empty queue. *)

val cgroup_cpu_limit : unit -> int option
(** Effective CPU limit from the cgroup: v2 [/sys/fs/cgroup/cpu.max],
    falling back to the v1 [cpu.cfs_quota_us]/[cpu.cfs_period_us] pair;
    [None] when unlimited, unreadable, or malformed. *)

val parse_cpu_max : string -> int option
(** Parse a cgroup-v2 ["QUOTA PERIOD"] line (["max PERIOD"] =
    unlimited) into [ceil(quota/period)] cores. Exposed for tests. *)

val parse_cpu_cfs : quota:string -> period:string -> int option
(** Parse the cgroup-v1 file pair ([-1] quota = unlimited). Exposed for
    tests. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; values below 1 are clamped
    to 1. *)

val jobs : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f wid] once for each worker id
    [0 .. jobs - 1], concurrently, and returns when all are done. The
    calling domain runs [f 0]. If any worker raises, one of the
    exceptions is re-raised here after every worker has finished.
    Regions cannot be nested: calling [run] from inside [f] raises
    [Invalid_argument]. *)

val map_workers : t -> (int -> 'a) -> 'a list
(** Like {!run} but collects each worker's result, ordered by worker
    id. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]: items are claimed one at a time from a shared
    queue, so uneven item costs balance across workers. Result slots
    match input order. *)

type stats = { regions : int; wall_s : float; busy_s : float }
(** Accumulated parallel-region accounting: [regions] completed,
    caller-observed wall seconds inside regions, and the sum over all
    workers of seconds spent inside job functions. *)

val stats : t -> stats

val reset_stats : t -> unit

val stats_wait : jobs:int -> stats -> float
(** Worker-seconds of capacity not spent in job functions —
    queue wait plus wake-up/barrier overhead. *)

val stats_utilization : jobs:int -> stats -> float
(** [busy / (jobs * wall)], clamped to [0, 1]. [1.] when no region has
    run. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool is unusable
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, and [shutdown] (also on exceptions). *)
