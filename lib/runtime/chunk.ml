let split ~lo ~hi ~pieces =
  let total = hi - lo in
  if total <= 0 || pieces <= 0 then []
  else begin
    let pieces = min pieces total in
    let base = total / pieces and extra = total mod pieces in
    (* the first [extra] slices carry one more element *)
    let rec go start i acc =
      if i = pieces then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        go (start + len) (i + 1) ((start, start + len) :: acc)
    in
    go lo 0 []
  end

(* Several slices per worker so a domain that drew cheap work steals the
   remainder of a slow one's share; large enough that the atomic claim
   is noise against the per-element cost. *)
let slices_per_job = 8

let default_size ~lo ~hi ~jobs =
  let total = max 0 (hi - lo) in
  let pieces = max 1 (jobs * slices_per_job) in
  max 1 ((total + pieces - 1) / pieces)

type queue = { lo : int; hi : int; size : int; next : int Atomic.t }

let queue ?size ~lo ~hi ~jobs () =
  let size =
    match size with
    | Some s when s > 0 -> s
    | Some _ -> invalid_arg "Chunk.queue: non-positive slice size"
    | None -> default_size ~lo ~hi ~jobs
  in
  { lo; hi; size; next = Atomic.make lo }

let take q =
  let start = Atomic.fetch_and_add q.next q.size in
  if start >= q.hi then None else Some (start, min q.hi (start + q.size))
