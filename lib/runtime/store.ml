(* A fixed-slot shared outcome store: one byte per slot, 0xFF = empty.

   Safety argument (the "publication" question). Slots are written with
   plain byte stores and read with plain byte loads, no fences. Under
   the OCaml 5 memory model a racy read of a non-atomic location yields
   *some* value previously written there (never an out-of-thin-air or
   torn value — single bytes cannot tear), so a reader sees either the
   empty sentinel or a value some domain stored. That is only sound
   because users must guarantee the stored function is deterministic
   and many-to-one: every domain that computes slot [i] computes the
   same value, so whichever write wins, and however stale a read is,
   the observable result is identical. A stale read of the sentinel
   merely costs a duplicated computation, never a wrong answer. *)

type t = { slots : Bytes.t }

let empty_slot = 0xFF
let max_value = 0xFE

let create ~slots =
  if slots <= 0 then invalid_arg "Store.create: non-positive slot count";
  { slots = Bytes.make slots (Char.chr empty_slot) }

let length t = Bytes.length t.slots

let get t i =
  let v = Char.code (Bytes.get t.slots i) in
  if v = empty_slot then -1 else v

let set t i v =
  if v < 0 || v > max_value then invalid_arg "Store.set: value out of range";
  Bytes.set t.slots i (Char.chr v)

let occupancy t =
  let n = ref 0 in
  Bytes.iter (fun c -> if Char.code c <> empty_slot then incr n) t.slots;
  !n
