(* A lock-free hash map from canonical state-key strings to small
   verdict integers, shared between worker domains.

   This is [Store] lifted from a dense integer index space (perturbed
   words) to sparse string keys (whole-machine states). The bucket
   array is fixed; each bucket is an [Atomic.t] holding an immutable
   list of entries, pushed with a CAS retry loop. Every entry keeps its
   FULL key, and [find] compares keys with [String.equal] — two states
   that merely collide on the bucket hash coexist in the list and are
   never merged, which is what makes state-hash pruning sound (a hash
   collision costs a list walk, never a wrong verdict).

   Sharing between domains is sound under the same contract as [Store]:
   the mapped value must be a deterministic function of the key, so
   racing writers can only publish identical values. [add] re-checks
   for the key when its CAS fails, so a raced key is inserted exactly
   once and [count] is schedule-independent. *)

type entry = { key : string; value : int }

type t = { buckets : entry list Atomic.t array; mask : int; added : int Atomic.t }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(slots = 1 lsl 16) () =
  if slots <= 0 then invalid_arg "Keymap.create";
  let n = next_pow2 slots 1 in
  { buckets = Array.init n (fun _ -> Atomic.make []);
    mask = n - 1;
    added = Atomic.make 0 }

let bucket t key = t.buckets.(Hashtbl.hash key land t.mask)

let rec find_in key = function
  | [] -> None
  | e :: rest -> if String.equal e.key key then Some e.value else find_in key rest

let find t key = find_in key (Atomic.get (bucket t key))

let add t key value =
  if value < 0 then invalid_arg "Keymap.add: negative value";
  let b = bucket t key in
  let rec push () =
    let old = Atomic.get b in
    match find_in key old with
    | Some _ -> ()  (* lost the race; the winner's value is identical *)
    | None ->
      if Atomic.compare_and_set b old ({ key; value } :: old) then
        ignore (Atomic.fetch_and_add t.added 1)
      else push ()
  in
  push ()

let count t = Atomic.get t.added
