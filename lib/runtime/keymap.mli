(** A lock-free shared map from canonical state keys to verdicts —
    {!Store} lifted from dense word indices to sparse whole-machine
    state strings.

    Entries keep their full key and lookups compare keys byte-for-byte,
    so two states colliding on the bucket hash are both stored and
    never silently merged. Sharing between domains follows the same
    contract as {!Store}: the value must be a deterministic function of
    the key (racing writers then publish identical values, and a stale
    miss merely recomputes). *)

type t

val create : ?slots:int -> unit -> t
(** [slots] (default [65536], rounded up to a power of two) fixes the
    bucket count, not a capacity: buckets chain, so the map never
    rejects an insert. @raise Invalid_argument on a non-positive
    count. *)

val find : t -> string -> int option
(** The value published for a key. A racing reader may miss a key
    another domain just added; callers must treat that as "compute it
    yourself". *)

val add : t -> string -> int -> unit
(** Publish a non-negative value for a key. First writer wins; losers
    of the insertion race verify the key is present and return. @raise
    Invalid_argument on a negative value. *)

val count : t -> int
(** Distinct keys inserted so far. Schedule-independent after a region
    completes, because raced duplicates are never inserted. *)
