type job = { f : int -> unit; generation : int }

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable running : int;  (* spawned workers still inside the current job *)
  mutable in_region : bool;
  mutable stopping : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable domains : unit Domain.t list;
  mutable stat_regions : int;
  mutable stat_wall : float;  (* caller-side wall time inside regions *)
  mutable stat_busy : float;  (* summed per-worker time inside job fns *)
}

type stats = { regions : int; wall_s : float; busy_s : float }

(* cgroup v2 cpu.max: "QUOTA PERIOD" in microseconds, or "max PERIOD"
   for unlimited. The effective core count is ceil(quota / period). *)
let parse_cpu_max line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "max"; _ ] -> None
  | [ quota; period ] -> (
    match (int_of_string_opt quota, int_of_string_opt period) with
    | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
    | _ -> None)
  | _ -> None

(* cgroup v1 split the same quota over two files; a quota of -1 means
   unlimited. *)
let parse_cpu_cfs ~quota ~period =
  match (int_of_string_opt (String.trim quota), int_of_string_opt (String.trim period)) with
  | Some q, _ when q < 0 -> None
  | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
  | _ -> None

let read_first_line path =
  match open_in path with
  | exception _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> match input_line ic with l -> Some l | exception _ -> None)

let cgroup_cpu_limit () =
  match read_first_line "/sys/fs/cgroup/cpu.max" with
  | Some line -> parse_cpu_max line
  | None -> (
    match
      ( read_first_line "/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
        read_first_line "/sys/fs/cgroup/cpu/cpu.cfs_period_us" )
    with
    | Some quota, Some period -> parse_cpu_cfs ~quota ~period
    | _ -> None)

(* [recommended_domain_count] reports the host's cores, which points
   the wrong way on both ends: CI containers often cap the process at
   one or two cores via a cgroup CPU quota while the host reports many
   more, and a sweep with fewer work chunks than cores leaves the
   surplus domains spinning on an empty queue. Clamping to the cgroup
   quota fixes the first (over-subscribed workers time-slice against
   each other inside the quota); clamping to the chunk count fixes the
   second. *)
let default_jobs ?chunks () =
  let n = Domain.recommended_domain_count () in
  let n = match cgroup_cpu_limit () with Some c -> max 1 (min n c) | None -> n in
  match chunks with None -> n | Some c -> max 1 (min n c)

let record_failure t e bt =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some (e, bt);
  Mutex.unlock t.mutex

(* Each spawned worker sleeps until a fresh generation is published,
   runs its share, then reports in. Exceptions are captured so a
   crashing worker can never leave the region's barrier hanging. *)
let worker_loop t wid =
  let last_generation = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if t.stopping then None
      else
        match t.job with
        | Some j when j.generation > !last_generation -> Some j
        | Some _ | None ->
          Condition.wait t.work_ready t.mutex;
          await ()
    in
    match await () with
    | None -> Mutex.unlock t.mutex
    | Some j ->
      Mutex.unlock t.mutex;
      last_generation := j.generation;
      let t0 = Unix.gettimeofday () in
      (try j.f wid
       with e -> record_failure t e (Printexc.get_raw_backtrace ()));
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock t.mutex;
      t.stat_busy <- t.stat_busy +. dt;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    { jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      in_region = false;
      stopping = false;
      failure = None;
      domains = [];
      stat_regions = 0;
      stat_wall = 0.;
      stat_busy = 0. }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let run t f =
  if t.jobs = 1 then begin
    if t.in_region then invalid_arg "Pool.run: nested parallel region";
    t.in_region <- true;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        t.stat_regions <- t.stat_regions + 1;
        t.stat_wall <- t.stat_wall +. dt;
        t.stat_busy <- t.stat_busy +. dt;
        t.in_region <- false)
      (fun () -> f 0)
  end
  else begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if t.in_region then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: nested parallel region"
    end;
    t.in_region <- true;
    t.failure <- None;
    t.generation <- t.generation + 1;
    t.job <- Some { f; generation = t.generation };
    t.running <- t.jobs - 1;
    let t0 = Unix.gettimeofday () in
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try f 0 with e -> record_failure t e (Printexc.get_raw_backtrace ()));
    let caller_busy = Unix.gettimeofday () -. t0 in
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.stat_regions <- t.stat_regions + 1;
    t.stat_wall <- t.stat_wall +. (Unix.gettimeofday () -. t0);
    t.stat_busy <- t.stat_busy +. caller_busy;
    t.job <- None;
    t.in_region <- false;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map_workers t f =
  let results = Array.make t.jobs None in
  run t (fun wid -> results.(wid) <- Some (f wid));
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every worker id runs exactly once *))

let map_array t f input =
  let n = Array.length input in
  if t.jobs = 1 || n <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let q = Chunk.queue ~size:1 ~lo:0 ~hi:n ~jobs:t.jobs () in
    run t (fun _wid ->
        let rec drain () =
          match Chunk.take q with
          | None -> ()
          | Some (lo, _) ->
            results.(lo) <- Some (f input.(lo));
            drain ()
        in
        drain ());
    Array.map
      (function Some r -> r | None -> assert false (* queue covers 0..n-1 *))
      results
  end

let stats t =
  Mutex.lock t.mutex;
  let s = { regions = t.stat_regions; wall_s = t.stat_wall; busy_s = t.stat_busy } in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.stat_regions <- 0;
  t.stat_wall <- 0.;
  t.stat_busy <- 0.;
  Mutex.unlock t.mutex

(* With [jobs] workers available for [wall_s] seconds, anything not
   spent inside job functions is queue wait + scheduling overhead. *)
let stats_wait ~jobs s =
  Float.max 0. ((float_of_int jobs *. s.wall_s) -. s.busy_s)

let stats_utilization ~jobs s =
  let capacity = float_of_int jobs *. s.wall_s in
  if capacity <= 0. then 1. else Float.min 1. (s.busy_s /. capacity)

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
