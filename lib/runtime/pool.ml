type job = { f : int -> unit; generation : int }

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable running : int;  (* spawned workers still inside the current job *)
  mutable in_region : bool;
  mutable stopping : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let record_failure t e bt =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some (e, bt);
  Mutex.unlock t.mutex

(* Each spawned worker sleeps until a fresh generation is published,
   runs its share, then reports in. Exceptions are captured so a
   crashing worker can never leave the region's barrier hanging. *)
let worker_loop t wid =
  let last_generation = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if t.stopping then None
      else
        match t.job with
        | Some j when j.generation > !last_generation -> Some j
        | Some _ | None ->
          Condition.wait t.work_ready t.mutex;
          await ()
    in
    match await () with
    | None -> Mutex.unlock t.mutex
    | Some j ->
      Mutex.unlock t.mutex;
      last_generation := j.generation;
      (try j.f wid
       with e -> record_failure t e (Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    { jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      in_region = false;
      stopping = false;
      failure = None;
      domains = [] }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let run t f =
  if t.jobs = 1 then begin
    if t.in_region then invalid_arg "Pool.run: nested parallel region";
    t.in_region <- true;
    Fun.protect ~finally:(fun () -> t.in_region <- false) (fun () -> f 0)
  end
  else begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if t.in_region then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: nested parallel region"
    end;
    t.in_region <- true;
    t.failure <- None;
    t.generation <- t.generation + 1;
    t.job <- Some { f; generation = t.generation };
    t.running <- t.jobs - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try f 0 with e -> record_failure t e (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    t.in_region <- false;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map_workers t f =
  let results = Array.make t.jobs None in
  run t (fun wid -> results.(wid) <- Some (f wid));
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every worker id runs exactly once *))

let map_array t f input =
  let n = Array.length input in
  if t.jobs = 1 || n <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let q = Chunk.queue ~size:1 ~lo:0 ~hi:n ~jobs:t.jobs () in
    run t (fun _wid ->
        let rec drain () =
          match Chunk.take q with
          | None -> ()
          | Some (lo, _) ->
            results.(lo) <- Some (f input.(lo));
            drain ()
        in
        drain ());
    Array.map
      (function Some r -> r | None -> assert false (* queue covers 0..n-1 *))
      results
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
