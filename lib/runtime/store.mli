(** A lock-free fixed-slot outcome store shared between worker domains.

    One byte per slot; a slot is either empty or holds a small integer
    in [0, 254]. Reads and writes are plain (non-atomic) byte accesses,
    which is sound {e only} for memoizing a function that is
    deterministic and many-to-one over slot indices: every domain that
    fills slot [i] must store the same value, so races can at worst
    return a stale "empty" and cost a duplicated computation — never a
    wrong or torn value (single-byte accesses cannot tear, and the
    OCaml 5 memory model forbids out-of-thin-air reads).

    This is the shared replacement for the worker-private sweep memos:
    with a private memo, [N] workers re-execute a word up to [N] times;
    with a shared store the expected duplication is bounded by the
    handful of in-flight computations that race on a cold slot. *)

type t

val create : slots:int -> t
(** All slots empty. Raises [Invalid_argument] on a non-positive
    count. *)

val length : t -> int

val get : t -> int -> int
(** The value published for a slot, or [-1] when (observably) empty.
    A racing reader may see [-1] for a slot another domain just filled;
    callers must treat that as "compute it yourself". *)

val set : t -> int -> int -> unit
(** Publish a value in [0, 254]. Concurrent writers must be writing the
    same value (the determinism contract above). Raises
    [Invalid_argument] if the value does not fit in a slot. *)

val occupancy : t -> int
(** Number of non-empty slots — the count of distinct outcomes
    established so far. Linear scan; racy by nature, intended for
    post-run statistics. *)
