(** Contiguous work distribution for exhaustive sweeps.

    A campaign's index space (65,536 masks, a list of parameter-plane
    rows, ...) is cut into contiguous slices that worker domains pull
    from a shared queue. Slices are disjoint and cover the range
    exactly, so any per-slice tally merged with a commutative reduction
    is independent of which domain processed which slice. *)

val split : lo:int -> hi:int -> pieces:int -> (int * int) list
(** [split ~lo ~hi ~pieces] cuts [\[lo, hi)] into at most [pieces]
    non-empty contiguous [(lo, hi)] slices, in increasing order. Sizes
    differ by at most one. Empty ranges yield the empty list. *)

val default_size : lo:int -> hi:int -> jobs:int -> int
(** Slice size giving each worker several slices to pull (for load
    balance) while keeping per-slice overhead negligible. *)

type queue
(** A lock-free queue of contiguous slices over an integer range.
    Multiple domains may [take] concurrently. *)

val queue : ?size:int -> lo:int -> hi:int -> jobs:int -> unit -> queue
(** Queue over [\[lo, hi)] in slices of [size] (default
    {!default_size}). *)

val take : queue -> (int * int) option
(** Next unclaimed slice [(lo, hi)], or [None] once the range is
    exhausted. Each index is handed out exactly once across all
    domains. *)
