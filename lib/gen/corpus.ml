(* Replayable counterexamples.

   A corpus entry is a plain Mini-C file whose leading comment lines
   carry the metadata needed to re-run the exact failing check:
   property family, generator seed, pass configuration and sabotage
   flag. Because the metadata lives in [//] comments, the whole file
   still parses as Mini-C — the stored source IS the replay input. *)

type entry = {
  property : string;
  seed : int;
  config : Resistor.Config.t;
  sabotage : bool;
  message : string;
  source : string;
}

let config_to_string (c : Resistor.Config.t) =
  let flags =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [ (c.enums, "enums"); (c.returns, "returns"); (c.integrity, "integrity");
        (c.branches, "branches"); (c.loops, "loops"); (c.delay, "delay");
        (c.sigcfi, "sigcfi"); (c.domains, "domains") ]
  in
  String.concat "," flags

let config_of_string ~sensitive s =
  let has f =
    s <> "" && List.mem f (String.split_on_char ',' s)
  in
  Resistor.Config.only ~enums:(has "enums") ~returns:(has "returns")
    ~integrity:(has "integrity") ~branches:(has "branches")
    ~loops:(has "loops") ~delay:(has "delay") ~sigcfi:(has "sigcfi")
    ~domains:(has "domains") ~sensitive ()

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | ch -> ch) s

let render (e : entry) =
  String.concat "\n"
    [ "// glitchctl fuzz counterexample";
      "// property: " ^ e.property;
      "// seed: " ^ string_of_int e.seed;
      "// defenses: " ^ config_to_string e.config;
      "// sensitive: " ^ String.concat "," e.config.sensitive;
      "// sabotage: " ^ (if e.sabotage then "yes" else "no");
      "// message: " ^ one_line e.message;
      "";
      e.source ]

let filename (e : entry) =
  Printf.sprintf "fuzz-%s-%08x.c" e.property
    (Hashtbl.hash (e.source, e.property, e.seed) land 0xFFFFFFFF)

let save ~dir (e : entry) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  output_string oc (render e);
  close_out oc;
  path

let field lines key =
  let prefix = "// " ^ key ^ ": " in
  List.find_map
    (fun l ->
      if String.length l >= String.length prefix
         && String.sub l 0 (String.length prefix) = prefix
      then
        Some (String.sub l (String.length prefix)
                (String.length l - String.length prefix))
      else None)
    lines

let load path : (entry, string) result =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | text ->
    let lines = String.split_on_char '\n' text in
    let get key ~default = Option.value (field lines key) ~default in
    let sensitive =
      match field lines "sensitive" with
      | Some "" | None -> []
      | Some s -> String.split_on_char ',' s
    in
    let seed =
      match int_of_string_opt (get "seed" ~default:"0") with
      | Some n -> n
      | None -> 0
    in
    Ok
      { property = get "property" ~default:"roundtrip";
        seed;
        config = config_of_string ~sensitive (get "defenses" ~default:"");
        sabotage = get "sabotage" ~default:"no" = "yes";
        message = get "message" ~default:"";
        source = text }
