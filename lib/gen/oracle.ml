(* Differential oracles for generated programs.

   Three views of one program are cross-checked:

   - the source-level reference: [Ir.Interp] on the defended module,
     with builtins modelling the trigger GPIO and an observer
     collecting the volatile-I/O trace;
   - the architectural run: [Hw.Board] executing the linked image;
   - the static analyzers: [Analysis.Lint] / [Analysis.Surface] on the
     same image, checked against persistent-corruption campaigns. *)

type obs_event =
  | Vload of string * int
  | Vstore of string * int
  | Tcall of string  (** __trigger_high / __trigger_low, in order *)

let obs_event_to_string = function
  | Vload (n, v) -> Printf.sprintf "read %s -> %d" n v
  | Vstore (n, v) -> Printf.sprintf "write %s <- %d" n v
  | Tcall f -> f

type src_run = {
  ret : int;
  final_globals : (string * int) list;  (** every module global *)
  trace : obs_event list;
      (** volatile accesses to [watch]ed globals + trigger calls *)
  edges : int;  (** rising trigger edges *)
}

(* Interpret [modul]'s main with firmware builtins. [watch] restricts
   the volatile trace to the program's own volatile globals — defense
   passes add volatile machinery of their own (detector counter, delay
   seed, integrity shadows) that is not part of the source-observable
   behaviour. *)
let run_interp ?(fuel = 4_000_000) ~watch (modul : Ir.modul) :
    (src_run, string) result =
  let trace = ref [] in
  let edges = ref 0 in
  let gpio = ref 0 in
  let builtins =
    [ ("__trigger_high",
       fun _ ->
         if !gpio = 0 then incr edges;
         gpio := 1;
         0);
      ("__trigger_low", fun _ -> gpio := 0; 0);
      ("__halt", fun _ -> 0);
      ("__flash_commit", fun _ -> 0) ]
  in
  let observer (ev : Ir.Interp.event) =
    match ev with
    | Ir.Interp.Obs_load { name; value; volatile } ->
      if volatile && List.mem name watch then trace := Vload (name, value) :: !trace
    | Ir.Interp.Obs_store { name; value; volatile } ->
      if volatile && List.mem name watch then trace := Vstore (name, value) :: !trace
    | Ir.Interp.Obs_call { callee; _ } ->
      if callee = "__trigger_high" || callee = "__trigger_low" then
        trace := Tcall callee :: !trace
  in
  match Ir.Interp.run ~fuel ~builtins ~observer modul ~entry:"main" ~args:[] with
  | Error m -> Error m
  | Ok { ret = None; _ } -> Error "main returned void"
  | Ok { ret = Some r; globals } ->
    Ok { ret = Ir.mask32 r; final_globals = globals; trace = List.rev !trace;
         edges = !edges }

type arch_run = {
  stop : Machine.Exec.stop option;  (** [None] on timeout *)
  exit_code : int option;  (** R0 at the breakpoint stop *)
  arch_globals : (string * int) list;
  arch_edges : int;
  marker : int option;
  detections : int;
  cycles : int;
}

let run_board ?(max_cycles = 4_000_000) (modul : Ir.modul)
    (image : Lower.Layout.image) : arch_run =
  let board = Hw.Board.create (Hw.Board.Image image) in
  let stop =
    match Hw.Board.run_plain ~max_cycles board with
    | `Stopped s -> Some s
    | `Timeout -> None
  in
  let exit_code =
    match stop with
    | Some (Machine.Exec.Breakpoint _) -> Some (Hw.Board.reg board 0)
    | _ -> None
  in
  let arch_globals =
    List.filter_map
      (fun (g : Ir.global) ->
        Option.map (fun v -> (g.gname, v)) (Hw.Board.read_global board g.gname))
      modul.Ir.globals
  in
  { stop;
    exit_code;
    arch_globals;
    arch_edges = List.length (Hw.Board.trigger_edges board);
    marker = Hw.Board.read_global board Resistor.Firmware.attack_marker_global;
    detections = Resistor.Detect.detections (Hw.Board.read_global board);
    cycles = Hw.Board.cycles board }

(* ------------------------------------------------------------------ *)
(* persistent flash corruption                                         *)

let corrupt_image (image : Lower.Layout.image) ~addr ~mask =
  let index = (addr - image.text.base) / 2 in
  if index < 0 || index >= Array.length image.words then
    invalid_arg "corrupt_image: address outside .text";
  let words = Array.copy image.words in
  words.(index) <- words.(index) lxor mask land 0xFFFF;
  { image with words }

(* Outcome of one corrupted boot, classified by two independent
   oracles: the stop reason (Campaign's taxonomy) and the firmware's
   memory state (Attack/Evaluate's marker + detection counters). *)
type glitch_outcome = {
  g_addr : int;
  g_mask : int;
  category : Glitch_emu.Campaign.category;
  succeeded : bool;  (** marker holds the attack value *)
  detected : bool;  (** the detector counter advanced *)
}

let silent o = o.succeeded && not o.detected

let categorize (stop : Machine.Exec.stop option) : Glitch_emu.Campaign.category =
  match stop with
  | Some (Machine.Exec.Breakpoint _) -> Glitch_emu.Campaign.No_effect
  | Some (Machine.Exec.Bad_read _ | Machine.Exec.Bad_write _) ->
    Glitch_emu.Campaign.Bad_read
  | Some (Machine.Exec.Bad_fetch _) -> Glitch_emu.Campaign.Bad_fetch
  | Some (Machine.Exec.Invalid_instruction _) ->
    Glitch_emu.Campaign.Invalid_instruction
  | Some (Machine.Exec.Swi_trap _ | Machine.Exec.Step_limit) ->
    Glitch_emu.Campaign.Failed
  | None -> Glitch_emu.Campaign.Failed  (* ran off its budget *)

let run_corrupted ~budget (image : Lower.Layout.image) ~addr ~mask :
    glitch_outcome =
  let image' = corrupt_image image ~addr ~mask in
  let board = Hw.Board.create (Hw.Board.Image image') in
  let stop =
    match Hw.Board.run_plain ~max_cycles:budget board with
    | `Stopped s -> Some s
    | `Timeout -> None
  in
  let marker = Hw.Board.read_global board Resistor.Firmware.attack_marker_global in
  { g_addr = addr;
    g_mask = mask;
    category = categorize stop;
    succeeded = marker = Some Resistor.Firmware.attack_marker_value;
    detected = Resistor.Detect.detections (Hw.Board.read_global board) > 0 }

(* The masks worth sweeping on a conditional branch: every single-bit
   direction flip and guard escape the static profile identifies, plus
   their pairwise XORs (the 2-bit combinations of interesting flips).

   Pair masks are kept inside the paper's threat model. A pair of two
   direction bits still encodes the same conditional branch with the
   same offset; a pair involving an escape bit is kept only when the
   perturbed word no longer diverts control (a true straight-line
   escape) or has no decoding at all. Dropping the rest matters: two
   flips can rewrite [b<cc>] into an {e unconditional} branch whose
   offset field absorbs the old condition bits — an arbitrary
   retargeting jump, i.e. the control-flow-integrity attack class the
   paper's defenses explicitly do not claim to stop (Table VII). *)
let guard_masks ~word (profile : Analysis.Surface.profile) =
  let dirs = profile.direction_masks and escs = profile.escape_masks in
  let ones = dirs @ escs in
  let in_model mask =
    let w = (word lxor mask) land 0xFFFF in
    Thumb.Decode.is_undefined w
    || not (Analysis.Surface.diverts (Thumb.Decode.of_word w))
  in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a >= b then None
            else if (List.mem a dirs && List.mem b dirs) || in_model (a lxor b)
            then Some (a lxor b)
            else None)
          ones)
      ones
  in
  List.sort_uniq compare (ones @ pairs)

(* Boot the pristine image to its trigger edge and derive a cycle
   budget that covers boot plus a post-trigger settling window. *)
let boot_budget ?(slack = 8_000) (image : Lower.Layout.image) =
  let board = Hw.Board.create (Hw.Board.Image image) in
  if not (Hw.Board.run_until_trigger ~max_cycles:2_000_000 board) then None
  else Some (Hw.Board.cycles board + slack)
