(* Randomized differential defense testing — the engine behind
   [glitchctl fuzz].

   Every generated Mini-C program is pushed through up to four property
   families:

   - {e roundtrip}: the pretty-printer output reparses to the same AST;
   - {e semantics}: for every pass configuration, the glitch-free
     defended binary's observable behaviour (volatile I/O trace,
     trigger edges, exit value, final globals) equals the [Ir.Interp]
     source-level oracle, and every defended configuration matches the
     undefended reference;
   - {e efficacy}: a defended guard never silently accepts a corrupted
     branch under the 1/2-bit flash sweep, with the marker/detector
     accounting cross-checked against the Campaign stop taxonomy;
   - {e static/dynamic}: the [Analysis.Lint] / [Analysis.Surface]
     verdicts agree with the dynamic campaign outcomes.

   Failing cases are shrunk by QCheck and saved to [corpus/] as
   replayable Mini-C files ([Corpus]). *)

module Ast = Minic.Ast
module Config = Resistor.Config
module Campaign = Glitch_emu.Campaign

type family = Roundtrip | Semantics | Efficacy | Static_dynamic | Absint

let all_families = [ Roundtrip; Semantics; Efficacy; Static_dynamic; Absint ]

let family_name = function
  | Roundtrip -> "roundtrip"
  | Semantics -> "semantics"
  | Efficacy -> "efficacy"
  | Static_dynamic -> "static-dynamic"
  | Absint -> "absint"

let family_of_string = function
  | "roundtrip" -> Some Roundtrip
  | "semantics" -> Some Semantics
  | "efficacy" -> Some Efficacy
  | "static-dynamic" | "static_dynamic" -> Some Static_dynamic
  | "absint" -> Some Absint
  | _ -> None

type verdict = Pass | Skip of string | Fail of string

(* ------------------------------------------------------------------ *)
(* shared plumbing                                                     *)

exception Check_failed of string
exception Check_skipped of string

let failf fmt = Printf.ksprintf (fun m -> raise (Check_failed m)) fmt
let skipf fmt = Printf.ksprintf (fun m -> raise (Check_skipped m)) fmt

let guard_check f =
  match f () with
  | () -> Pass
  | exception Check_failed m -> Fail m
  | exception Check_skipped m -> Skip m

let stop_name : Machine.Exec.stop -> string = function
  | Machine.Exec.Breakpoint a -> Printf.sprintf "breakpoint@0x%x" a
  | Machine.Exec.Swi_trap a -> Printf.sprintf "swi@0x%x" a
  | Machine.Exec.Bad_read a -> Printf.sprintf "bad-read@0x%x" a
  | Machine.Exec.Bad_write a -> Printf.sprintf "bad-write@0x%x" a
  | Machine.Exec.Bad_fetch a -> Printf.sprintf "bad-fetch@0x%x" a
  | Machine.Exec.Invalid_instruction a -> Printf.sprintf "invalid@0x%x" a
  | Machine.Exec.Step_limit -> "step-limit"

let source_globals prog =
  List.filter_map
    (function Ast.Iglobal g -> Some g.Ast.gname | _ -> None)
    prog

let source_volatile_globals prog =
  List.filter_map
    (function
      | Ast.Iglobal g when g.Ast.gvolatile -> Some g.Ast.gname
      | _ -> None)
    prog

let has_marker prog =
  List.mem Resistor.Firmware.attack_marker_global (source_globals prog)

let sema_ok prog =
  match Minic.Sema.check ~externs:Resistor.Driver.firmware_externs prog with
  | _ -> true
  | exception Minic.Sema.Error _ -> false

let compile_result config source =
  match Resistor.Driver.compile config source with
  | c -> Ok c
  | exception Minic.Parser.Error e -> Error (Fmt.str "%a" Minic.Parser.pp_error e)
  | exception Minic.Sema.Error e -> Error (Fmt.str "%a" Minic.Sema.pp_error e)
  | exception Lower.Layout.Error e -> Error (Fmt.str "%a" Lower.Layout.pp_error e)
  | exception Lower.Codegen.Error e ->
    Error (Fmt.str "%a" Lower.Codegen.pp_error e)
  | exception e -> Error (Printexc.to_string e)

(* The backend's one documented capacity limit: a frame needs one slot
   per local and temp, and [ldr rd, [sp, #imm]] addresses at most 255 of
   them, so a generated program can legitimately outgrow the frame once
   every pass has piled on its temps. That is a precondition miss for
   the differential properties, not a finding — unlike the literal-pool
   and branch-range limits, which codegen is expected to relax away. *)
let capacity_message m =
  let needle = "too many stack slots" in
  let nl = String.length needle and ml = String.length m in
  let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
  go 0

let globals_str gs =
  String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) gs)

let trace_str tr =
  String.concat "; " (List.map Oracle.obs_event_to_string tr)

let restrict names assoc = List.filter (fun (n, _) -> List.mem n names) assoc

(* ------------------------------------------------------------------ *)
(* family 1: pretty-printer round trip                                 *)

let check_roundtrip (case : Ast_gen.case) =
  guard_check @@ fun () ->
  let src = Ast_gen.source_of_case case in
  match Minic.Parser.program src with
  | exception e -> failf "reparse raised %s" (Printexc.to_string e)
  | prog ->
    if not (Ast.equal_program case.prog prog) then
      failf "pretty-printed program reparses to a different AST"

(* ------------------------------------------------------------------ *)
(* family 2: semantics preservation across pass configurations         *)

let semantics_configs prog =
  let sens = source_globals prog in
  [ Config.none;
    Config.only ~enums:true ();
    Config.only ~returns:true ();
    Config.only ~branches:true ();
    Config.only ~loops:true ();
    Config.only ~integrity:true ~sensitive:sens ();
    Config.only ~delay:true ();
    Config.only ~sigcfi:true ();
    Config.only ~domains:true ();
    Config.all_but_delay ~sensitive:sens ();
    Config.all ~sensitive:sens ();
    { (Config.all_but_delay ~sensitive:sens ()) with sigcfi = true;
      domains = true } ]

let check_semantics (case : Ast_gen.case) =
  guard_check @@ fun () ->
  if case.shape <> Ast_gen.Terminating then
    skipf "semantics oracle needs a terminating program";
  if not (sema_ok case.prog) then skipf "source does not sema-check";
  let src = Ast_gen.source_of_case case in
  let watch = source_volatile_globals case.prog in
  let names = source_globals case.prog in
  let reference = ref None in
  List.iter
    (fun config ->
      let cname = Config.name config in
      let compiled =
        match compile_result config src with
        | Ok c -> c
        | Error m when capacity_message m -> skipf "%s: %s" cname m
        | Error m -> failf "%s: compile failed: %s" cname m
      in
      (* The undefended reference is capped tight: a program that needs
         more than ~400k interpreted instructions is a degenerate
         shrinker artifact, and skipping it early keeps the cycle
         budgets of every later leg comfortably clear of the board's
         40M-cycle ceiling. *)
      let fuel = if !reference = None then 400_000 else 4_000_000 in
      let interp =
        match Oracle.run_interp ~fuel ~watch compiled.Resistor.Driver.modul with
        | Ok r -> r
        | Error m ->
          (* Fuel exhaustion on the undefended module is a precondition
             miss (the shrinker can build unbounded loops out of bounded
             ones), not a divergence. Once the None reference ran fine,
             a defended-module failure is a real finding. *)
          if !reference = None then
            skipf "%s: interpreter did not finish (%s)" cname m
          else failf "%s: interpreter failed: %s" cname m
      in
      (* leg A: the architectural run must match the interpreter on the
         same (defended) module *)
      let arch =
        Oracle.run_board ~max_cycles:40_000_000 compiled.Resistor.Driver.modul
          compiled.Resistor.Driver.image
      in
      (match arch.Oracle.stop with
      | Some (Machine.Exec.Breakpoint _) -> ()
      | Some s -> failf "%s: board stopped abnormally (%s)" cname (stop_name s)
      | None -> failf "%s: board timed out" cname);
      (match arch.Oracle.exit_code with
      | Some r when r <> interp.Oracle.ret ->
        failf "%s: exit code %d (board) vs %d (interp)" cname r
          interp.Oracle.ret
      | _ -> ());
      let ag = restrict names arch.Oracle.arch_globals in
      let ig = restrict names interp.Oracle.final_globals in
      if ag <> ig then
        failf "%s: final globals diverge: board {%s} vs interp {%s}" cname
          (globals_str ag) (globals_str ig);
      if arch.Oracle.arch_edges <> interp.Oracle.edges then
        failf "%s: %d trigger edges (board) vs %d (interp)" cname
          arch.Oracle.arch_edges interp.Oracle.edges;
      (* leg B: every defended configuration must match the undefended
         reference at the source level *)
      match !reference with
      | None -> reference := Some interp
      | Some ref_run ->
        if interp.Oracle.ret <> ref_run.Oracle.ret then
          failf "%s: exit code %d vs %d under None" cname interp.Oracle.ret
            ref_run.Oracle.ret;
        let fg = restrict names interp.Oracle.final_globals in
        let rg = restrict names ref_run.Oracle.final_globals in
        if fg <> rg then
          failf "%s: final globals {%s} vs {%s} under None" cname
            (globals_str fg) (globals_str rg);
        if interp.Oracle.trace <> ref_run.Oracle.trace then
          failf "%s: volatile I/O trace diverges from None:\n  none: %s\n  %s: %s"
            cname (trace_str ref_run.Oracle.trace) cname
            (trace_str interp.Oracle.trace);
        if interp.Oracle.edges <> ref_run.Oracle.edges then
          failf "%s: %d trigger edges vs %d under None" cname
            interp.Oracle.edges ref_run.Oracle.edges)
    (semantics_configs case.prog)

(* ------------------------------------------------------------------ *)
(* family 3: efficacy generalization under the 1/2-bit sweep           *)

(* Every config here must protect branch *directions* (Branches/Loops):
   the CFI passes alone leave legal-edge flips invisible (Table VII),
   so they ride on top of the redundancy passes, never alone. *)
let defended_configs prog =
  [ Config.only ~branches:true ~loops:true ();
    Config.all_but_delay ~sensitive:(source_globals prog) ();
    { (Config.all_but_delay ~sensitive:(source_globals prog) ()) with
      sigcfi = true; domains = true } ]

(* Boot-relative cycle budget plus the pristine-image sanity run. *)
let sweep_setup cname (compiled : Resistor.Driver.compiled) =
  let image = compiled.image in
  let budget =
    match Oracle.boot_budget image with
    | Some b -> b
    | None -> skipf "%s: no trigger edge reached in the pristine image" cname
  in
  let base = Oracle.run_board ~max_cycles:budget compiled.modul image in
  if base.Oracle.marker = Some Resistor.Firmware.attack_marker_value then
    skipf "%s: pristine run already sets the attack marker" cname;
  if base.Oracle.detections > 0 then
    failf "%s: glitch-free run trips the detector %d times" cname
      base.Oracle.detections;
  (budget, base)

let sweep_conditionals ~budget image =
  let cfg = Analysis.Cfg.of_image image in
  let conds = Analysis.Cfg.conditionals cfg in
  let outcomes =
    List.concat_map
      (fun (insn : Analysis.Cfg.insn) ->
        let profile =
          Analysis.Surface.profile_word ~addr:insn.addr insn.word
        in
        List.map
          (fun mask ->
            Oracle.run_corrupted ~budget image ~addr:insn.addr ~mask)
          (Oracle.guard_masks ~word:insn.word profile))
      conds
  in
  (conds, outcomes)

(* Cross-check the firmware-state oracle (marker + detector counter)
   against the stop-reason taxonomy, and reject any silent success. *)
let check_outcome cname (o : Oracle.glitch_outcome) =
  let where = Printf.sprintf "%s: addr 0x%x mask 0x%04x" cname o.g_addr o.g_mask in
  if Oracle.silent o then
    failf "%s: silent success — marker set with no detection" where;
  if o.succeeded && o.detected then
    failf "%s: accounting mismatch — marker set and detector tripped" where;
  if o.succeeded && o.category <> Campaign.No_effect then
    failf "%s: accounting mismatch — marker set but stop category %s" where
      (Campaign.category_name o.category);
  if o.detected && o.category <> Campaign.Failed then
    failf
      "%s: accounting mismatch — detection should spin into a timeout, got %s"
      where
      (Campaign.category_name o.category)

let check_efficacy (case : Ast_gen.case) =
  guard_check @@ fun () ->
  if case.shape <> Ast_gen.Guarded then skipf "efficacy needs a guarded program";
  if not (has_marker case.prog) then skipf "no attack marker global";
  if not (sema_ok case.prog) then skipf "source does not sema-check";
  let src = Ast_gen.source_of_case case in
  List.iter
    (fun config ->
      let cname = Config.name config in
      let compiled =
        match compile_result config src with
        | Ok c -> c
        | Error m when capacity_message m -> skipf "%s: %s" cname m
        | Error m -> failf "%s: compile failed: %s" cname m
      in
      let budget, _base = sweep_setup cname compiled in
      let _conds, outcomes =
        sweep_conditionals ~budget compiled.Resistor.Driver.image
      in
      List.iter (check_outcome cname) outcomes)
    (defended_configs case.prog)

(* ------------------------------------------------------------------ *)
(* family 4: static and dynamic oracles agree                          *)

let triple (o : Oracle.glitch_outcome) = (o.category, o.succeeded, o.detected)

let check_static_dynamic (case : Ast_gen.case) =
  guard_check @@ fun () ->
  if case.shape <> Ast_gen.Guarded then
    skipf "static/dynamic agreement needs a guarded program";
  if not (has_marker case.prog) then skipf "no attack marker global";
  if not (sema_ok case.prog) then skipf "source does not sema-check";
  let src = Ast_gen.source_of_case case in
  (* Defended image: the auditor must come back clean, and the dynamic
     sweep must agree that nothing slips through. *)
  let defended = Config.all_but_delay ~sensitive:(source_globals case.prog) () in
  let compiled =
    match compile_result defended src with
    | Ok c -> c
    | Error m when capacity_message m -> skipf "All\\Delay: %s" m
    | Error m -> failf "All\\Delay: compile failed: %s" m
  in
  let report = Analysis.Lint.run (Analysis.Lint.of_compiled compiled) in
  (match Analysis.Lint.errors report with
  | [] -> ()
  | d :: _ ->
    failf "All\\Delay: lint reports %d error(s), first: %s %s"
      (List.length (Analysis.Lint.errors report))
      d.Analysis.Lint.rule d.Analysis.Lint.message);
  let budget, _ = sweep_setup "All\\Delay" compiled in
  let _, outcomes = sweep_conditionals ~budget compiled.image in
  List.iter
    (fun o ->
      if Oracle.silent o then
        failf
          "All\\Delay: lint is clean but addr 0x%x mask 0x%04x succeeds \
           silently"
          o.Oracle.g_addr o.Oracle.g_mask)
    outcomes;
  (* Undefended image: the auditor must flag the flippable guard, and
     the dynamic sweep must exhibit the attack it predicts. *)
  let bare =
    match compile_result Config.none src with
    | Ok c -> c
    | Error m -> failf "None: compile failed: %s" m
  in
  let bare_report = Analysis.Lint.run (Analysis.Lint.of_compiled bare) in
  let flippable =
    List.filter
      (fun (d : Analysis.Lint.diag) -> d.rule = "guard-flippable")
      (Analysis.Lint.errors bare_report)
  in
  if flippable = [] then
    failf "None: lint reports no guard-flippable error on an unprotected guard";
  let bare_budget, bare_base = sweep_setup "None" bare in
  let bare_cfg = Analysis.Cfg.of_image bare.image in
  let bare_conds = Analysis.Cfg.conditionals bare_cfg in
  let silent_hit = ref false in
  List.iter
    (fun (insn : Analysis.Cfg.insn) ->
      let profile = Analysis.Surface.profile_word ~addr:insn.addr insn.word in
      List.iter
        (fun mask ->
          let o =
            Oracle.run_corrupted ~budget:bare_budget bare.image
              ~addr:insn.addr ~mask
          in
          if Oracle.silent o then silent_hit := true)
        profile.Analysis.Surface.direction_masks)
    bare_conds;
  if not !silent_hit then
    failf
      "None: lint flags the guard but no direction flip dynamically succeeds";
  (* Per-mask membership: a static Fault verdict must either surface as
     Invalid_instruction or leave the run indistinguishable from the
     pristine baseline (the corrupted word was never fetched). Branch
     words must never be statically Benign. *)
  let baseline_triple =
    (Oracle.categorize bare_base.Oracle.stop,
     bare_base.Oracle.marker = Some Resistor.Firmware.attack_marker_value,
     bare_base.Oracle.detections > 0)
  in
  let first_conds =
    match bare_conds with a :: b :: _ -> [ a; b ] | l -> l
  in
  List.iter
    (fun (insn : Analysis.Cfg.insn) ->
      for bit = 0 to 15 do
        let mask = 1 lsl bit in
        let v = Analysis.Surface.classify ~old_word:insn.word (insn.word lxor mask) in
        if v = Analysis.Surface.Benign then
          failf
            "None: 1-bit flip 0x%04x of branch word 0x%04x@0x%x classified \
             Benign"
            mask insn.word insn.addr;
        if v = Analysis.Surface.Fault then begin
          let o =
            Oracle.run_corrupted ~budget:bare_budget bare.image
              ~addr:insn.addr ~mask
          in
          let invalid = o.Oracle.category = Campaign.Invalid_instruction in
          if (not invalid) && triple o <> baseline_triple then
            failf
              "None: static Fault at 0x%x mask 0x%04x ran to %s instead of \
               Invalid_instruction or the baseline outcome"
              insn.addr mask
              (Campaign.category_name o.Oracle.category)
        end
      done)
    first_conds

(* ------------------------------------------------------------------ *)
(* family 5: the static fault-flow pre-pruner agrees with the oracle   *)

(* Soundness by differential: the campaign with the abstract-interpreter
   pre-pruner enabled must produce bit-identical verdicts — totals,
   per-function rows, and the per-point verdict array — to the oracle
   run that executes every continuation with all pruning off. Checked at
   an undefended and a fully defended configuration, so the prover sees
   detection counters, integrity shadows and CFI state machines. *)
let check_absint (case : Ast_gen.case) =
  guard_check @@ fun () ->
  if not (sema_ok case.prog) then skipf "source does not sema-check";
  let src = Ast_gen.source_of_case case in
  List.iter
    (fun (label, config) ->
      match compile_result config src with
      | Error m when capacity_message m -> skipf "%s: %s" label m
      | Error m -> failf "%s: compile failed: %s" label m
      | Ok compiled ->
        let spec =
          Exhaust.Campaign.spec_of_image ~name:"fuzz-absint"
            compiled.Resistor.Driver.image
        in
        let cfg =
          { (Exhaust.Campaign.default_config ()) with
            Exhaust.Campaign.weights = [ 1 ];
            max_trace = 96;
            settle_steps = Some 24;
            prune = true;
            static_prune = true;
            keep_points = true }
        in
        let static = Exhaust.Campaign.run spec cfg in
        let oracle =
          Exhaust.Campaign.run spec
            { cfg with Exhaust.Campaign.prune = false; static_prune = false }
        in
        if static.Exhaust.Campaign.totals <> oracle.Exhaust.Campaign.totals
        then failf "%s: static verdict totals diverge from the oracle" label;
        if static.Exhaust.Campaign.rows <> oracle.Exhaust.Campaign.rows then
          failf "%s: static per-function rows diverge from the oracle" label;
        if static.Exhaust.Campaign.verdicts <> oracle.Exhaust.Campaign.verdicts
        then failf "%s: static per-point verdicts diverge from the oracle" label;
        if
          static.Exhaust.Campaign.points
          <> static.faulted + static.pruned + static.executed
             + static.static_pruned
        then
          failf "%s: prune counters do not partition the %d points" label
            static.Exhaust.Campaign.points)
    [ ("None", Config.none);
      ( "All\\Delay",
        Config.all_but_delay ~sensitive:(source_globals case.prog) () ) ]

(* ------------------------------------------------------------------ *)
(* orchestration                                                       *)

let check family case =
  match family with
  | Roundtrip -> check_roundtrip case
  | Semantics -> check_semantics case
  | Efficacy -> check_efficacy case
  | Static_dynamic -> check_static_dynamic case
  | Absint -> check_absint case

let family_arb = function
  | Roundtrip | Absint -> Ast_gen.arb_any
  | Semantics -> Ast_gen.arb_terminating
  | Efficacy | Static_dynamic -> Ast_gen.arb_guarded

(* Distinct deterministic RNG stream per family, derived from the run
   seed so one seed reproduces the whole run. *)
let family_index = function
  | Roundtrip -> 1
  | Semantics -> 2
  | Efficacy -> 3
  | Static_dynamic -> 4
  | Absint -> 5

type failure = {
  message : string;
  shrink_steps : int;
  source : string;  (** shrunk counterexample, pretty-printed *)
  corpus_path : string option;
}

type family_run = {
  family : family;
  checked : int;  (** property evaluations, skips included *)
  skipped : int;
  failure : failure option;
}

type summary = {
  seed : int;
  count : int;
  sabotage : bool;
  runs : family_run list;
}

let ok s = List.for_all (fun r -> r.failure = None) s.runs

let skip_rate (r : family_run) =
  if r.checked = 0 then 0.
  else float_of_int r.skipped /. float_of_int r.checked

(* [Check_skipped] cases used to drain into silent QCheck passes: a
   generator drifting into a precondition desert (capacity limit,
   sema-check misses) could "pass" a family while exercising nothing.
   Callers now get the per-family rate and a budget to enforce. *)
let skip_breaches ~max_skip_rate s =
  List.filter (fun r -> skip_rate r > max_skip_rate) s.runs

let corpus_config family prog =
  match family with
  | Roundtrip | Semantics | Absint -> Config.none
  | Efficacy | Static_dynamic ->
    Config.all_but_delay ~sensitive:(source_globals prog) ()

let run_family ?dir ~sabotage ~count ~seed family =
  let checked = ref 0 and skipped = ref 0 in
  let prop case =
    match check family case with
    | Pass -> incr checked; true
    | Skip _ ->
      incr checked;
      incr skipped;
      true
    | Fail _ -> incr checked; false
  in
  let cell =
    QCheck.Test.make_cell ~count ~name:(family_name family)
      (family_arb family) prop
  in
  let rand = Random.State.make [| seed; family_index family |] in
  let result = QCheck.Test.check_cell ~rand cell in
  let failure_of ?(shrink_steps = 0) case message =
    let source = Ast_gen.source_of_case case in
    let corpus_path =
      Option.map
        (fun dir ->
          Corpus.save ~dir
            { Corpus.property = family_name family;
              seed;
              config = corpus_config family case.Ast_gen.prog;
              sabotage;
              message;
              source })
        dir
    in
    Some { message; shrink_steps; source; corpus_path }
  in
  let failure =
    match QCheck.TestResult.get_state result with
    | QCheck.TestResult.Success -> None
    | QCheck.TestResult.Failed { instances = cex :: _ } ->
      let case = cex.QCheck.TestResult.instance in
      let message =
        (* re-run the shrunk instance to recover the diagnostic *)
        match check family case with
        | Fail m -> m
        | Pass | Skip _ -> "shrunk counterexample no longer reproduces"
      in
      failure_of ~shrink_steps:cex.QCheck.TestResult.shrink_steps case message
    | QCheck.TestResult.Failed { instances = [] } ->
      Some
        { message = "property failed without a counterexample";
          shrink_steps = 0; source = ""; corpus_path = None }
    | QCheck.TestResult.Failed_other { msg } ->
      Some { message = msg; shrink_steps = 0; source = ""; corpus_path = None }
    | QCheck.TestResult.Error { instance; exn; _ } ->
      failure_of instance.QCheck.TestResult.instance
        ("property raised " ^ Printexc.to_string exn)
  in
  { family; checked = !checked; skipped = !skipped; failure }

(* Run [count] generated programs through each selected family.
   [sabotage] flips {!Resistor.Branches.disable_complement_check} for
   the duration — the negative control: a deliberately broken defense
   must make the efficacy family fail. [sabotage_absint] breaks the
   abstract interpreter's taint transfer function the same way: the
   absint family's soundness differential must then trip. *)
let run ?dir ?(families = all_families) ?(sabotage = false)
    ?(sabotage_absint = false) ~count ~seed () =
  Resistor.Branches.disable_complement_check := sabotage;
  Absint.Prune.unsound := sabotage_absint;
  Fun.protect
    ~finally:(fun () ->
      Resistor.Branches.disable_complement_check := false;
      Absint.Prune.unsound := false)
    (fun () ->
      let runs =
        List.map
          (fun f ->
            run_family ?dir ~sabotage:(sabotage || sabotage_absint) ~count
              ~seed f)
          families
      in
      { seed; count; sabotage = sabotage || sabotage_absint; runs })

(* Re-run the property of a saved counterexample deterministically. *)
let replay (entry : Corpus.entry) : (verdict, string) result =
  match family_of_string entry.property with
  | None -> Error (Printf.sprintf "unknown property %S" entry.property)
  | Some family -> (
    match Minic.Parser.program entry.source with
    | exception e -> Error ("counterexample does not parse: " ^ Printexc.to_string e)
    | prog ->
      let shape =
        if has_marker prog then Ast_gen.Guarded else Ast_gen.Terminating
      in
      let case = { Ast_gen.shape; prog } in
      Resistor.Branches.disable_complement_check := entry.sabotage;
      Fun.protect
        ~finally:(fun () ->
          Resistor.Branches.disable_complement_check := false)
        (fun () -> Ok (check family case)))
