(* Random well-typed Mini-C programs for the differential fuzzer.

   Two shapes are generated:

   - [Terminating]: firmware that provably halts — every loop is a
     counter loop with a fresh, never-reassigned induction variable —
     so the IR interpreter can serve as a semantics oracle against the
     board.
   - [Guarded]: firmware in the Table-VI mold — a volatile guard
     variable that (glitch-free) never satisfies its unlock condition
     protects the [attack_success] marker store, exactly like the
     hand-written suite in [Resistor.Firmware].

   Invariants the properties rely on, maintained here by construction:
   every name is globally unique (sema rejects shadowing); locals are
   always initialised (the interpreter traps on read-before-write, the
   board would read stack fill); enum constants flow only into
   enum-typed locals, enum comparisons and enum switch cases, never
   into globals, returns or arithmetic (so ENUM diversification cannot
   change observables); shift amounts are literal; loop counters are
   read-only inside their own bodies; generated switch arms are never
   empty (an empty arm body would merge its case labels with the next
   arm on reparse). *)

open Minic

type shape = Terminating | Guarded

type case = { shape : shape; prog : Ast.program }

let shape_name = function Terminating -> "terminating" | Guarded -> "guarded"

let source_of_case c = Pretty.to_string c.prog

(* ------------------------------------------------------------------ *)
(* generation context                                                  *)

type ctx = {
  st : Random.State.t;
  mutable fresh : int;
  mutable vars : string list;  (** assignable integer variables in scope *)
  mutable reads : string list;  (** readable but never assigned (counters, guards) *)
  mutable helpers : (string * int) list;  (** callable helpers: name, arity *)
  mutable status : (string * int * int) list;
      (** constant-return helpers and their two return values — used
          only as [s() == k] so the Returns pass can diversify them *)
  mutable enum_members : string list;  (** members of the single enum, if any *)
  mutable enum_name : string option;
  mutable enum_vars : string list;  (** enum-typed locals in scope *)
  allow_trigger : bool;  (** random trigger pulses allowed in statements *)
}

let new_ctx ?(allow_trigger = true) st =
  { st; fresh = 0; vars = []; reads = []; helpers = []; status = [];
    enum_members = []; enum_name = None; enum_vars = []; allow_trigger }

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let rint ctx n = Random.State.int ctx.st n
let range ctx lo hi = lo + rint ctx (hi - lo + 1)
let pick ctx l = List.nth l (rint ctx (List.length l))
let chance ctx pct = rint ctx 100 < pct

(* ------------------------------------------------------------------ *)
(* expressions                                                         *)

let interesting_literals =
  [ 0; 1; 2; 3; 5; 7; 10; 42; 100; 170; 255; 256; 1000; 0xFFFF; 0x7FFFFFFF;
    0x80000000; 0xFFFFFFFF; -1; -2; -17; -256 ]

let gen_literal ctx =
  if chance ctx 40 then Ast.Int (pick ctx interesting_literals)
  else Ast.Int (range ctx (-64) 500)

let arith_binops =
  [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band; Ast.Bor; Ast.Bxor ]

let compare_binops = [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let gen_leaf ctx =
  let readable = ctx.vars @ ctx.reads in
  if readable <> [] && chance ctx 55 then Ast.Ident (pick ctx readable)
  else gen_literal ctx

let rec gen_expr ctx depth =
  if depth <= 0 then gen_leaf ctx
  else
    match rint ctx 10 with
    | 0 | 1 -> gen_leaf ctx
    | 2 | 3 | 4 ->
      Ast.Binop (pick ctx arith_binops, gen_expr ctx (depth - 1),
                 gen_expr ctx (depth - 1))
    | 5 ->
      (* literal shift amounts: keeps >=32-bit shift semantics out of
         the differential (the IR masks the amount, hardware varies) *)
      let op = if chance ctx 50 then Ast.Shl else Ast.Shr in
      Ast.Binop (op, gen_expr ctx (depth - 1), Ast.Int (range ctx 0 12))
    | 6 ->
      let op = pick ctx [ Ast.Neg; Ast.Lnot; Ast.Bnot ] in
      (match (op, gen_expr ctx (depth - 1)) with
      | Ast.Neg, Ast.Int v -> Ast.Int (-v)  (* canonical negated literal *)
      | op, e -> Ast.Unop (op, e))
    | 7 ->
      Ast.Binop (pick ctx compare_binops, gen_expr ctx (depth - 1),
                 gen_expr ctx (depth - 1))
    | 8 when ctx.helpers <> [] ->
      let name, arity = pick ctx ctx.helpers in
      Ast.Call (name, List.init arity (fun _ -> gen_expr ctx (depth - 1)))
    | _ ->
      let op = if chance ctx 50 then Ast.Land else Ast.Lor in
      Ast.Binop (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))

(* conditions: mostly comparisons, sprinkled with status-helper checks
   (Returns-pass fodder) and enum comparisons *)
let gen_cond ctx depth =
  match rint ctx 6 with
  | 0 when ctx.status <> [] ->
    let name, k1, k2 = pick ctx ctx.status in
    let k = if chance ctx 50 then k1 else k2 in
    let op = if chance ctx 50 then Ast.Eq else Ast.Ne in
    Ast.Binop (op, Ast.Call (name, []), Ast.Int k)
  | 1 when ctx.enum_vars <> [] && ctx.enum_members <> [] ->
    let v = pick ctx ctx.enum_vars in
    let m = pick ctx ctx.enum_members in
    let op = if chance ctx 50 then Ast.Eq else Ast.Ne in
    Ast.Binop (op, Ast.Ident v, Ast.Ident m)
  | 2 | 3 ->
    Ast.Binop (pick ctx compare_binops, gen_expr ctx depth,
               gen_expr ctx (depth - 1))
  | _ -> gen_expr ctx depth

(* ------------------------------------------------------------------ *)
(* statements                                                          *)

let scoped ctx f =
  let vars = ctx.vars and reads = ctx.reads and evars = ctx.enum_vars in
  let r = f () in
  ctx.vars <- vars;
  ctx.reads <- reads;
  ctx.enum_vars <- evars;
  r

let int_ty ctx = if chance ctx 50 then Ast.Tint else Ast.Tuint

let rec gen_stmt ctx ~depth ~in_for =
  let budgeted = depth > 0 in
  match rint ctx 14 with
  | 0 | 1 when ctx.vars <> [] ->
    Ast.Sassign (pick ctx ctx.vars, gen_expr ctx 2)
  | 2 | 3 ->
    let name = fresh ctx "x" in
    let d =
      { Ast.dname = name; dty = int_ty ctx; dvolatile = false;
        dinit = Some (gen_expr ctx 2) }
    in
    ctx.vars <- name :: ctx.vars;
    Ast.Sdecl d
  | 4 when ctx.enum_members <> [] ->
    let name = fresh ctx "m" in
    let d =
      { Ast.dname = name;
        dty = Ast.Tenum (Option.get ctx.enum_name);
        dvolatile = false;
        dinit = Some (Ast.Ident (pick ctx ctx.enum_members)) }
    in
    ctx.enum_vars <- name :: ctx.enum_vars;
    Ast.Sdecl d
  | 5 | 6 when budgeted ->
    let cond = gen_cond ctx 2 in
    let then_ = gen_block ctx ~depth:(depth - 1) ~in_for ~min_stmts:1 in
    let else_ =
      if chance ctx 40 then
        Some (gen_block ctx ~depth:(depth - 1) ~in_for ~min_stmts:1)
      else None
    in
    Ast.Sif (cond, then_, else_)
  | 7 when budgeted -> gen_for ctx ~depth
  | 8 when budgeted -> gen_while ctx ~depth
  | 9 when budgeted -> gen_do_while ctx ~depth
  | 10 when budgeted -> gen_switch ctx ~depth ~in_for
  | 11 when ctx.helpers <> [] ->
    let name, arity = pick ctx ctx.helpers in
    Ast.Sexpr (Ast.Call (name, List.init arity (fun _ -> gen_expr ctx 1)))
  | 12 when ctx.allow_trigger && chance ctx 30 ->
    Ast.Sexpr
      (Ast.Call ((if chance ctx 50 then "__trigger_high" else "__trigger_low"), []))
  | 13 when in_for && chance ctx 30 ->
    (* guarded early exit; [continue] is safe in a for (the step block
       still advances the induction variable) *)
    let exit = if chance ctx 50 then Ast.Sbreak else Ast.Scontinue in
    Ast.Sif (gen_cond ctx 1, [ exit ], None)
  | _ ->
    if ctx.vars <> [] then Ast.Sassign (pick ctx ctx.vars, gen_expr ctx 2)
    else Ast.Sexpr (gen_expr ctx 2)

and gen_block ctx ~depth ~in_for ~min_stmts =
  scoped ctx (fun () ->
      let n = max min_stmts (range ctx min_stmts 3) in
      List.init n (fun _ -> gen_stmt ctx ~depth ~in_for))

and gen_for ctx ~depth =
  let i = fresh ctx "i" in
  let bound = range ctx 1 4 in
  let init =
    Ast.Sdecl
      { Ast.dname = i; dty = Ast.Tint; dvolatile = false; dinit = Some (Ast.Int 0) }
  in
  let cond = Ast.Binop (Ast.Lt, Ast.Ident i, Ast.Int bound) in
  let step = Ast.Sassign (i, Ast.Binop (Ast.Add, Ast.Ident i, Ast.Int 1)) in
  let body =
    scoped ctx (fun () ->
        ctx.reads <- i :: ctx.reads;
        List.init (range ctx 1 3) (fun _ -> gen_stmt ctx ~depth:(depth - 1) ~in_for:true))
  in
  Ast.Sfor (Some init, Some cond, Some step, body)

and gen_while ctx ~depth =
  (* int c = 0; while (c < k) { c = c + 1; ... } — the increment comes
     first so the body cannot starve it *)
  let c = fresh ctx "c" in
  let bound = range ctx 1 4 in
  let body =
    scoped ctx (fun () ->
        ctx.reads <- c :: ctx.reads;
        Ast.Sassign (c, Ast.Binop (Ast.Add, Ast.Ident c, Ast.Int 1))
        :: List.init (range ctx 0 2) (fun _ ->
               gen_stmt ctx ~depth:(depth - 1) ~in_for:false))
  in
  Ast.Sblock
    [ Ast.Sdecl
        { Ast.dname = c; dty = Ast.Tint; dvolatile = false;
          dinit = Some (Ast.Int 0) };
      Ast.Swhile (Ast.Binop (Ast.Lt, Ast.Ident c, Ast.Int bound), body) ]

and gen_do_while ctx ~depth =
  let c = fresh ctx "d" in
  let bound = range ctx 1 3 in
  let body =
    scoped ctx (fun () ->
        ctx.reads <- c :: ctx.reads;
        Ast.Sassign (c, Ast.Binop (Ast.Add, Ast.Ident c, Ast.Int 1))
        :: List.init (range ctx 0 2) (fun _ ->
               gen_stmt ctx ~depth:(depth - 1) ~in_for:false))
  in
  Ast.Sblock
    [ Ast.Sdecl
        { Ast.dname = c; dty = Ast.Tint; dvolatile = false;
          dinit = Some (Ast.Int 0) };
      Ast.Sdo_while (body, Ast.Binop (Ast.Lt, Ast.Ident c, Ast.Int bound)) ]

and gen_switch ctx ~depth ~in_for =
  let on_enum = ctx.enum_vars <> [] && List.length ctx.enum_members >= 2
                && chance ctx 50 in
  let arm_body () =
    scoped ctx (fun () ->
        let stmts =
          List.init (range ctx 1 2) (fun _ ->
              gen_stmt ctx ~depth:(depth - 1) ~in_for)
        in
        if chance ctx 70 then stmts @ [ Ast.Sbreak ] else stmts)
  in
  if on_enum then begin
    let v = pick ctx ctx.enum_vars in
    let n = min (List.length ctx.enum_members) (range ctx 1 3) in
    let members = List.filteri (fun i _ -> i < n) ctx.enum_members in
    let arms =
      List.map
        (fun m ->
          { Ast.arm_cases = [ Some (Ast.Ident m) ]; arm_body = arm_body () })
        members
    in
    let arms =
      if chance ctx 50 then
        arms @ [ { Ast.arm_cases = [ None ]; arm_body = arm_body () } ]
      else arms
    in
    Ast.Sswitch (Ast.Ident v, arms)
  end
  else begin
    let base = range ctx (-3) 20 in
    let n = range ctx 1 3 in
    let arms =
      List.init n (fun k ->
          let cases =
            if k = 0 && chance ctx 30 then
              [ Some (Ast.Int base); Some (Ast.Int (base + 100)) ]
            else [ Some (Ast.Int (base + k + 1)) ]
          in
          { Ast.arm_cases = cases; arm_body = arm_body () })
    in
    let arms =
      if chance ctx 50 then
        arms @ [ { Ast.arm_cases = [ None ]; arm_body = arm_body () } ]
      else arms
    in
    Ast.Sswitch (gen_expr ctx 2, arms)
  end

(* ------------------------------------------------------------------ *)
(* top-level items                                                     *)

let gen_enum ctx =
  let name = fresh ctx "e" in
  let n = range ctx 2 4 in
  let members = List.init n (fun i -> (Printf.sprintf "%s_m%d" name i, None)) in
  ctx.enum_name <- Some name;
  ctx.enum_members <- List.map fst members;
  Ast.Ienum { ename = name; members }

let gen_global ctx ~volatile =
  let name = fresh ctx (if volatile then "v" else "g") in
  let g =
    { Ast.gname = name; gty = int_ty ctx; gvolatile = volatile;
      ginit = Some (gen_literal ctx) }
  in
  ctx.vars <- name :: ctx.vars;
  Ast.Iglobal g

let gen_status_helper ctx =
  let name = fresh ctx "s" in
  let k1 = range ctx 1 120 in
  let k2 = k1 + range ctx 1 120 in
  let body =
    [ Ast.Sif (gen_cond ctx 1, [ Ast.Sreturn (Some (Ast.Int k1)) ], None);
      Ast.Sreturn (Some (Ast.Int k2)) ]
  in
  ctx.status <- (name, k1, k2) :: ctx.status;
  Ast.Ifunc { fname = name; fret = Ast.Tint; fparams = []; fbody = body }

let gen_helper ctx =
  let name = fresh ctx "h" in
  let arity = range ctx 0 2 in
  let params =
    List.init arity (fun _ -> (fresh ctx "p", int_ty ctx))
  in
  let body =
    scoped ctx (fun () ->
        ctx.vars <- List.map fst params @ ctx.vars;
        let stmts =
          List.init (range ctx 1 4) (fun _ ->
              gen_stmt ctx ~depth:1 ~in_for:false)
        in
        stmts @ [ Ast.Sreturn (Some (gen_expr ctx 2)) ])
  in
  ctx.helpers <- (name, arity) :: ctx.helpers;
  Ast.Ifunc { fname = name; fret = Ast.Tint; fparams = params; fbody = body }

let gen_preamble ctx =
  let enum = if chance ctx 60 then [ gen_enum ctx ] else [] in
  let globals =
    List.init (range ctx 1 3) (fun _ -> gen_global ctx ~volatile:false)
    @ List.init (range ctx 0 2) (fun _ -> gen_global ctx ~volatile:true)
  in
  let status = if chance ctx 60 then [ gen_status_helper ctx ] else [] in
  let helpers = List.init (range ctx 0 2) (fun _ -> gen_helper ctx) in
  enum @ globals @ status @ helpers

(* ------------------------------------------------------------------ *)
(* program shapes                                                      *)

let gen_terminating st =
  let ctx = new_ctx st in
  let items = gen_preamble ctx in
  let stmts =
    List.init (range ctx 3 7) (fun _ -> gen_stmt ctx ~depth:2 ~in_for:false)
  in
  let body =
    (Ast.Sexpr (Ast.Call ("__trigger_high", [])) :: stmts)
    @ [ Ast.Sexpr (Ast.Call ("__trigger_low", []));
        Ast.Sreturn (Some (gen_expr ctx 2)) ]
  in
  let main =
    Ast.Ifunc { fname = "main"; fret = Ast.Tint; fparams = []; fbody = body }
  in
  { shape = Terminating; prog = items @ [ main ] }

type guard_kind = While_not | While_ne | If_eq

let marker = Resistor.Firmware.attack_marker_global

let gen_guarded st =
  let ctx = new_ctx ~allow_trigger:false st in
  let items = gen_preamble ctx in
  let kind = pick ctx [ While_not; While_ne; If_eq ] in
  let gv = fresh ctx "guard" in
  let gv_init, unlock =
    match kind with
    | While_not -> (0, 0)  (* while (!guard) spins while guard stays 0 *)
    | While_ne | If_eq ->
      let v = range ctx 0 5000 in
      let k = v + range ctx 1 5000 in
      (v, k)
  in
  let guard_items =
    [ Ast.Iglobal
        { gname = gv; gty = Ast.Tuint; gvolatile = true;
          ginit = Some (Ast.Int gv_init) };
      Ast.Iglobal
        { gname = marker; gty = Ast.Tuint; gvolatile = true;
          ginit = Some (Ast.Int 0) } ]
  in
  (* the guard variable and marker are readable but never assigned *)
  ctx.reads <- gv :: ctx.reads;
  let prelude =
    List.init (range ctx 1 4) (fun _ -> gen_stmt ctx ~depth:1 ~in_for:false)
  in
  let unlock_stmts =
    [ Ast.Sassign (marker, Ast.Int Resistor.Firmware.attack_marker_value) ]
  in
  let tail =
    match kind with
    | While_not ->
      Ast.Swhile (Ast.Unop (Ast.Lnot, Ast.Ident gv), [])
      :: unlock_stmts
      @ [ Ast.Sexpr (Ast.Call ("__halt", [])) ]
    | While_ne ->
      Ast.Swhile (Ast.Binop (Ast.Ne, Ast.Ident gv, Ast.Int unlock), [])
      :: unlock_stmts
      @ [ Ast.Sexpr (Ast.Call ("__halt", [])) ]
    | If_eq ->
      [ Ast.Sif
          (Ast.Binop (Ast.Eq, Ast.Ident gv, Ast.Int unlock), unlock_stmts, None);
        Ast.Sexpr (Ast.Call ("__halt", [])) ]
  in
  let body =
    prelude
    @ (Ast.Sexpr (Ast.Call ("__trigger_high", [])) :: tail)
    @ [ Ast.Sreturn (Some (Ast.Int 0)) ]
  in
  let main =
    Ast.Ifunc { fname = "main"; fret = Ast.Tint; fparams = []; fbody = body }
  in
  { shape = Guarded; prog = items @ guard_items @ [ main ] }

(* ------------------------------------------------------------------ *)
(* shrinking (through the AST; the corpus stores pretty-printed text)  *)

module Iter = QCheck.Iter

let rec shrink_expr (e : Ast.expr) : Ast.expr Iter.t =
 fun yield ->
  match e with
  | Ast.Int v -> QCheck.Shrink.int v (fun v' -> yield (Ast.Int v'))
  | Ast.Ident _ -> yield (Ast.Int 0)
  | Ast.Unop (op, a) ->
    yield a;
    shrink_expr a (fun a' -> yield (Ast.Unop (op, a')))
  | Ast.Binop (op, a, b) ->
    yield a;
    yield b;
    shrink_expr a (fun a' -> yield (Ast.Binop (op, a', b)));
    shrink_expr b (fun b' -> yield (Ast.Binop (op, a, b')))
  | Ast.Call (f, args) ->
    yield (Ast.Int 1);
    List.iteri
      (fun i a ->
        shrink_expr a (fun a' ->
            yield (Ast.Call (f, List.mapi (fun j x -> if i = j then a' else x) args))))
      args

let shrink_list shrink_elem l : _ list Iter.t =
 fun yield ->
  List.iteri (fun i _ -> yield (List.filteri (fun j _ -> i <> j) l)) l;
  List.iteri
    (fun i x ->
      shrink_elem x (fun x' ->
          yield (List.mapi (fun j y -> if i = j then x' else y) l)))
    l

let rec shrink_stmt (s : Ast.stmt) : Ast.stmt Iter.t =
 fun yield ->
  match s with
  | Ast.Sexpr e -> shrink_expr e (fun e' -> yield (Ast.Sexpr e'))
  | Ast.Sassign (n, e) -> shrink_expr e (fun e' -> yield (Ast.Sassign (n, e')))
  | Ast.Sdecl d ->
    (match d.dinit with
    | Some e ->
      shrink_expr e (fun e' -> yield (Ast.Sdecl { d with dinit = Some e' }))
    | None -> ())
  | Ast.Sif (c, t, e) ->
    yield (Ast.Sblock t);
    (match e with Some b -> yield (Ast.Sblock b) | None -> ());
    (match e with
    | Some _ -> yield (Ast.Sif (c, t, None))
    | None -> ());
    shrink_expr c (fun c' -> yield (Ast.Sif (c', t, e)));
    shrink_block t (fun t' -> yield (Ast.Sif (c, t', e)));
    (match e with
    | Some b -> shrink_block b (fun b' -> yield (Ast.Sif (c, t, Some b')))
    | None -> ())
  | Ast.Swhile (c, b) ->
    yield (Ast.Sblock b);
    shrink_expr c (fun c' -> yield (Ast.Swhile (c', b)));
    shrink_block b (fun b' -> yield (Ast.Swhile (c, b')))
  | Ast.Sdo_while (b, c) ->
    yield (Ast.Sblock b);
    shrink_expr c (fun c' -> yield (Ast.Sdo_while (b, c')));
    shrink_block b (fun b' -> yield (Ast.Sdo_while (b', c)))
  | Ast.Sfor (init, cond, step, b) ->
    yield (Ast.Sblock b);
    shrink_block b (fun b' -> yield (Ast.Sfor (init, cond, step, b')))
  | Ast.Sswitch (e, arms) ->
    List.iter (fun a -> yield (Ast.Sblock a.Ast.arm_body)) arms;
    (* drop a whole arm (never just its last statement: an empty arm
       body would merge labels with the following arm when reprinted) *)
    List.iteri
      (fun i _ -> yield (Ast.Sswitch (e, List.filteri (fun j _ -> i <> j) arms)))
      arms;
    shrink_expr e (fun e' -> yield (Ast.Sswitch (e', arms)));
    List.iteri
      (fun i a ->
        shrink_block a.Ast.arm_body (fun b' ->
            if b' <> [] then
              yield
                (Ast.Sswitch
                   ( e,
                     List.mapi
                       (fun j a' ->
                         if i = j then { a' with Ast.arm_body = b' } else a')
                       arms ))))
      arms
  | Ast.Sreturn (Some e) ->
    shrink_expr e (fun e' -> yield (Ast.Sreturn (Some e')))
  | Ast.Sblock b ->
    (match b with [ s ] -> yield s | _ -> ());
    shrink_block b (fun b' -> yield (Ast.Sblock b'))
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> ()

and shrink_block (b : Ast.block) : Ast.block Iter.t = shrink_list shrink_stmt b

let shrink_item (it : Ast.item) : Ast.item Iter.t =
 fun yield ->
  match it with
  | Ast.Ifunc f -> shrink_block f.fbody (fun b -> yield (Ast.Ifunc { f with fbody = b }))
  | Ast.Iglobal g ->
    (match g.ginit with
    | Some e ->
      shrink_expr e (fun e' -> yield (Ast.Iglobal { g with ginit = Some e' }))
    | None -> ())
  | Ast.Ienum e ->
    List.iteri
      (fun i _ ->
        let members = List.filteri (fun j _ -> i <> j) e.members in
        if members <> [] then yield (Ast.Ienum { e with members }))
      e.members

let shrink_case (c : case) : case Iter.t =
 fun yield ->
  (* Item removal must not delete [main]: a program without an entry
     point fails to link for a reason of its own, which would let the
     shrinker walk every counterexample down to the empty program. *)
  let removable = function
    | Ast.Ifunc f -> f.Ast.fname <> "main"
    | Ast.Iglobal _ | Ast.Ienum _ -> true
  in
  List.iteri
    (fun i it ->
      if removable it then
        yield { c with prog = List.filteri (fun j _ -> i <> j) c.prog })
    c.prog;
  List.iteri
    (fun i it ->
      shrink_item it (fun it' ->
          yield
            { c with
              prog = List.mapi (fun j x -> if i = j then it' else x) c.prog }))
    c.prog

(* ------------------------------------------------------------------ *)
(* QCheck plumbing                                                     *)

let print_case c =
  Printf.sprintf "/* shape: %s */\n%s" (shape_name c.shape) (source_of_case c)

let arb_of gen =
  QCheck.make ~print:print_case ~shrink:shrink_case gen

let arb_terminating = arb_of gen_terminating
let arb_guarded = arb_of gen_guarded

let arb_any =
  arb_of (fun st ->
      if Random.State.bool st then gen_terminating st else gen_guarded st)
