let sign_extend bits v =
  let m = 1 lsl (bits - 1) in
  (v lxor m) - m

let reg = Reg.of_int

let bit n w = (w lsr n) land 1
let bits hi lo w = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

(* Miscellaneous 16-bit space, top nibble 0b1011. *)
let decode_misc w : Instr.t =
  match bits 11 8 w with
  | 0b0000 ->
    let imm7 = bits 6 0 w in
    Instr.Sp_adjust (if bit 7 w = 1 then -imm7 else imm7)
  | 0b0100 | 0b0101 ->
    Instr.Push { rlist = bits 7 0 w; lr = bit 8 w = 1 }
  | 0b1100 | 0b1101 ->
    Instr.Pop { rlist = bits 7 0 w; pc = bit 8 w = 1 }
  | 0b1110 -> Instr.Bkpt (bits 7 0 w)
  | 0b0001 | 0b0010 | 0b0011 | 0b0110 | 0b0111 | 0b1000 | 0b1001 | 0b1010
  | 0b1011 | 0b1111 -> Instr.Undefined w
  | _ -> assert false

let instr w : Instr.t =
  if w < 0 || w > 0xFFFF then invalid_arg "Decode.instr: not a 16-bit word";
  match bits 15 13 w with
  | 0b000 -> (
    match bits 12 11 w with
    | 0b11 ->
      Instr.Add_sub
        { sub = bit 9 w = 1;
          imm = bit 10 w = 1;
          rd = reg (bits 2 0 w);
          rs = reg (bits 5 3 w);
          operand = bits 8 6 w }
    | op ->
      let shift_op =
        match op with
        | 0 -> Instr.Lsl
        | 1 -> Instr.Lsr
        | 2 -> Instr.Asr
        | _ -> assert false
      in
      Instr.Shift (shift_op, reg (bits 2 0 w), reg (bits 5 3 w), bits 10 6 w))
  | 0b001 ->
    Instr.Imm
      (Instr.imm_op_of_int (bits 12 11 w), reg (bits 10 8 w), bits 7 0 w)
  | 0b010 -> (
    match bits 12 10 w with
    | 0b000 ->
      Instr.Alu
        (Instr.alu_op_of_int (bits 9 6 w), reg (bits 2 0 w), reg (bits 5 3 w))
    | 0b001 -> (
      let h1 = bit 7 w and h2 = bit 6 w in
      let rd = reg ((h1 lsl 3) lor bits 2 0 w) in
      let rm = reg ((h2 lsl 3) lor bits 5 3 w) in
      match bits 9 8 w with
      | 0b00 -> Instr.Hi_add (rd, rm)
      | 0b01 -> Instr.Hi_cmp (rd, rm)
      | 0b10 -> Instr.Hi_mov (rd, rm)
      | 0b11 -> if h1 = 0 && bits 2 0 w = 0 then Instr.Bx rm else Instr.Undefined w
      | _ -> assert false)
    | 0b010 | 0b011 -> Instr.Ldr_pc (reg (bits 10 8 w), bits 7 0 w)
    | 0b100 | 0b101 | 0b110 | 0b111 ->
      let rd = reg (bits 2 0 w)
      and rb = reg (bits 5 3 w)
      and ro = reg (bits 8 6 w) in
      if bit 9 w = 0 then
        Instr.Mem_reg { load = bit 11 w = 1; byte = bit 10 w = 1; rd; rb; ro }
      else
        let op =
          match (bit 10 w, bit 11 w) with
          | 0, 0 -> Instr.STRH
          | 0, 1 -> Instr.LDRH
          | 1, 0 -> Instr.LDSB
          | 1, 1 -> Instr.LDSH
          | _ -> assert false
        in
        Instr.Mem_sign { op; rd; rb; ro }
    | _ -> assert false)
  | 0b011 ->
    Instr.Mem_imm
      { load = bit 11 w = 1;
        byte = bit 12 w = 1;
        rd = reg (bits 2 0 w);
        rb = reg (bits 5 3 w);
        imm = bits 10 6 w }
  | 0b100 ->
    if bit 12 w = 0 then
      Instr.Mem_half
        { load = bit 11 w = 1;
          rd = reg (bits 2 0 w);
          rb = reg (bits 5 3 w);
          imm = bits 10 6 w }
    else Instr.Mem_sp { load = bit 11 w = 1; rd = reg (bits 10 8 w); imm = bits 7 0 w }
  | 0b101 ->
    if bit 12 w = 0 then
      Instr.Load_addr
        { from_sp = bit 11 w = 1; rd = reg (bits 10 8 w); imm = bits 7 0 w }
    else decode_misc w
  | 0b110 ->
    if bit 12 w = 0 then
      let rb = reg (bits 10 8 w) and rlist = bits 7 0 w in
      if bit 11 w = 1 then Instr.Ldmia (rb, rlist) else Instr.Stmia (rb, rlist)
    else begin
      match bits 11 8 w with
      | 0b1111 -> Instr.Swi (bits 7 0 w)
      | 0b1110 -> Instr.Undefined w
      | c -> (
        match Instr.cond_of_int c with
        | Some cond -> Instr.B_cond (cond, sign_extend 8 (bits 7 0 w))
        | None -> Instr.Undefined w)
    end
  | 0b111 -> (
    match bits 12 11 w with
    | 0b00 -> Instr.B (sign_extend 11 (bits 10 0 w))
    | 0b01 -> Instr.Undefined w (* 32-bit Thumb-2 prefix space *)
    | 0b10 -> Instr.Bl_hi (sign_extend 11 (bits 10 0 w))
    | 0b11 -> Instr.Bl_lo (bits 10 0 w)
    | _ -> assert false)
  | _ -> assert false

(* Every possible halfword, pre-decoded once at module initialisation.
   Campaigns and the board simulator decode the same 65,536 encodings
   millions of times; sharing one immutable table removes that work (and
   its allocation) from every fetch/execute loop. Eager initialisation —
   rather than lazy — keeps the table safe to read from any domain. *)
let table = Array.init 0x10000 instr

let of_word w = table.(w)

let is_undefined w =
  match instr w with
  | Instr.Undefined _ -> true
  | Instr.Shift _ | Instr.Add_sub _ | Instr.Imm _ | Instr.Alu _
  | Instr.Hi_add _ | Instr.Hi_cmp _ | Instr.Hi_mov _ | Instr.Bx _
  | Instr.Ldr_pc _ | Instr.Mem_reg _ | Instr.Mem_sign _ | Instr.Mem_imm _
  | Instr.Mem_half _ | Instr.Mem_sp _ | Instr.Load_addr _ | Instr.Sp_adjust _
  | Instr.Push _ | Instr.Pop _ | Instr.Stmia _ | Instr.Ldmia _
  | Instr.B_cond _ | Instr.Swi _ | Instr.B _ | Instr.Bl_hi _ | Instr.Bl_lo _
  | Instr.Bkpt _ -> false
