(** Total disassembler for 16-bit Thumb words (the Capstone substitute).

    Every value in [0, 0xFFFF] decodes: words with no architected
    Thumb-16 meaning (Thumb-2 32-bit prefixes, holes in the [1011]
    miscellaneous space, the [cond = 0b1110] branch slot) decode to
    [Instr.Undefined]. This totality is what lets the glitch emulator
    execute arbitrarily perturbed instruction words and classify the
    outcome, exactly as the paper does with Unicorn/Capstone. *)

val instr : int -> Instr.t
(** [instr w] decodes the 16-bit word [w].
    @raise Invalid_argument if [w] is outside [0, 0xFFFF]. *)

val is_undefined : int -> bool
(** [is_undefined w] is true iff [instr w] is [Undefined _]. *)

val table : Instr.t array
(** All 65,536 halfwords pre-decoded at module initialisation:
    [table.(w) = instr w]. Immutable after construction, so worker
    domains can index it concurrently. *)

val of_word : int -> Instr.t
(** [of_word w] is [table.(w)] — the allocation-free decode used by
    fetch/execute hot loops.
    @raise Invalid_argument if [w] is outside [0, 0xFFFF]. *)
