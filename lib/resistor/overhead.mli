(** Tables IV and V: run-time (boot clock cycles) and size (bytes per
    section) overhead of each defense on the {!Firmware.boot_tick}
    image. Boot time is measured like the paper's DWT reads: the cycle
    counter value when the firmware raises its boot-complete trigger. *)

type row = {
  label : string;  (** "None", "Branches", ..., "All" *)
  boot_cycles : int;
  text_bytes : int;
  data_bytes : int;
  bss_bytes : int;
  total_bytes : int;
}

val paper_configurations : (string * Config.t) list
(** The paper's rows: None, Branches, Delay, Integrity, Loops, Returns,
    All\Delay, All (enums ride along with Returns in size terms and are
    exercised by All). *)

val cfi_configurations : (string * Config.t) list
(** The post-paper CFI rows: Sigcfi, Domains, and All\Delay with both
    CFI passes stacked on top. *)

val configurations : (string * Config.t) list
(** [paper_configurations @ cfi_configurations]. *)

val measure : Config.t -> label:string -> row
val all_rows : unit -> row list

val flash_commit_cycles : int
(** The constant flash-seed-update cost included in any Delay row
    (Table IV's "Constant" column). *)
