(** FIPAC-flavoured running-signature CFI (post-paper extension).

    A keyed GF(2^8) accumulator ({!state_global}) is threaded through
    the control-flow graph: every edge is split and updated with
    [S := step(S) xor patch] where [step] is multiplication by the
    field generator and the patch constants are derived at compile time
    from keyed per-block MACs ({!signature}), so only a legal edge
    turns the predecessor's signature into the successor's.  Returns
    are sink-checked against the current block's signature and route
    mismatches into {!Detect}.  Like CFCSS, a glitch flipping a legal
    branch *direction* stays invisible; unlike CFCSS, skipping or
    re-ordering blocks anywhere along an activation corrupts the
    running state until the next sink. *)

type report = {
  blocks_signed : int;
  updates_inserted : int;  (** edge-split state-update blocks *)
  checks_inserted : int;  (** sink (return) checks *)
  key : int;
}

val state_global : string
(** Name of the volatile accumulator global ("__sigcfi_S"). *)

val step_fn : string
(** Name of the out-of-line update helper ("__gr_sigcfi_step"): glue
    blocks call it with the edge's compile-time patch constant. *)

val default_key : int

val disable_checks : bool ref
(** Negative control: when set, sink checks are not emitted, so the
    lint signature-domination audit must flag every return. Reset it
    after use. *)

val step : int -> int
(** GF(2^8) multiply-by-alpha (poly 0x11D); the compile-time twin of
    the branchless IR update sequence. *)

val signature : key:int -> string -> string -> int
(** [signature ~key fname label]: keyed polynomial MAC in [0, 255]. *)

val run : ?key:int -> Config.reaction -> Ir.modul -> report
(** Instrument every function (except the detector); verifies the
    module. @raise Invalid_argument if [key] is outside 1..255. *)
