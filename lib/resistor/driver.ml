type reports = {
  enum_report : Enum_rewriter.report option;
  returns_report : Returns.report option;
  integrity_report : Integrity.report option;
  branches_report : Branches.report option;
  loops_report : Loops.report option;
  delay_report : Delay.report option;
  domains_report : Domains.report option;
  sigcfi_report : Sigcfi.report option;
  verify_warnings : (string * Ir.Verify.violation) list;
      (* pass-tagged Ir.Verify.lint findings from the after-every-pass
         verification runs *)
}

type compiled = {
  config : Config.t;
  modul : Ir.modul;
  image : Lower.Layout.image;
  reports : reports;
}

let firmware_externs =
  [ ("__trigger_high", 0); ("__trigger_low", 0); ("__halt", 0) ]

let compile_modul (config : Config.t) source =
  Pass.reset_warnings ();
  let ast = Minic.Parser.program source in
  let sema = Minic.Sema.check ~externs:firmware_externs ast in
  (* source-to-source stage *)
  let ast, enum_report =
    if config.enums then begin
      let ast, report = Enum_rewriter.rewrite sema in
      (ast, Some report)
    end
    else (ast, None)
  in
  let sema = Minic.Sema.check ~externs:firmware_externs ast in
  let m = Lower.Ast_lower.modul ~externs:firmware_externs sema in
  (* mark sensitive globals (from configuration, like the paper's
     developer-provided list) *)
  List.iter
    (fun name ->
      match Ir.find_global m name with
      | Some g -> g.sensitive <- true
      | None -> ())
    config.sensitive;
  if config.integrity || config.branches || config.loops || config.sigcfi
     || config.domains
  then Detect.ensure config.reaction m;
  let delay_report =
    if config.delay then Some (Delay.run ~scope:config.delay_scope m) else None
  in
  let returns_report = if config.returns then Some (Returns.run m) else None in
  let branches_report =
    if config.branches then Some (Branches.run config.reaction m) else None
  in
  let loops_report =
    if config.loops then Some (Loops.run config.reaction m) else None
  in
  let integrity_report =
    if config.integrity then
      Some (Integrity.run ~sensitive:config.sensitive config.reaction m)
    else None
  in
  (* The CFI passes run last: their own check blocks must not be
     re-instrumented by Branches/Loops, and Sigcfi after Domains means
     the running signature also covers the domain-check blocks. *)
  let domains_report =
    if config.domains then Some (Domains.run config.reaction m) else None
  in
  let sigcfi_report =
    if config.sigcfi then Some (Sigcfi.run config.reaction m) else None
  in
  Ir.Verify.check_exn m;
  Pass.collect_warnings "final" m;
  ( m,
    { enum_report; returns_report; integrity_report; branches_report;
      loops_report; delay_report; domains_report; sigcfi_report;
      verify_warnings = Pass.drain_warnings () } )

let compile config source =
  let modul, reports = compile_modul config source in
  let image = Lower.Layout.link modul in
  { config; modul; image; reports }
