type report = { loops_instrumented : int }

(* A loop guard is a conditional block inside a cycle with an edge that
   leaves it. Two detectors are combined:

   - back-edge targets ending in [Cond_br] — the classic while/for
     header, also caught for inner loops nested inside a larger SCC;
   - conditional blocks inside a non-trivial SCC (or self-loop) with a
     successor outside it — which additionally catches do-while exits,
     where the back edge targets the *body*, so the conditional block
     is never itself a back-edge target.

   The second definition mirrors the lint auditor's notion of a
   loop-exit guard; randomized differential testing caught the original
   header-only detector silently skipping every do-while loop. *)
let guard_edges (f : Ir.func) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace index b.label i) blocks;
  let succs v =
    List.filter_map
      (fun l -> Hashtbl.find_opt index l)
      (Ir.successors blocks.(v).Ir.term)
  in
  (* Tarjan strongly-connected components *)
  let comp = Array.make n (-1) in
  let num = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let rec strong v =
    num.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if num.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) num.(w))
      (succs v);
    if low.(v) = num.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if num.(v) < 0 then strong v
  done;
  let comp_size = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      Hashtbl.replace comp_size c
        (1 + Option.value (Hashtbl.find_opt comp_size c) ~default:0))
    comp;
  let in_cycle v =
    Hashtbl.find comp_size comp.(v) > 1 || List.mem v (succs v)
  in
  (* back-edge targets, by block order (the pre-fix detector) *)
  let headers = Hashtbl.create 8 in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter
        (fun target ->
          match Hashtbl.find_opt index target with
          | Some ti when ti <= i -> Hashtbl.replace headers target ()
          | _ -> ())
        (Ir.successors b.Ir.term))
    blocks;
  let guards = ref [] in
  Array.iteri
    (fun v (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Cond_br { if_true; if_false; _ } ->
        let leaves label =
          match Hashtbl.find_opt index label with
          | Some w -> comp.(w) <> comp.(v)
          | None -> false
        in
        if Hashtbl.mem headers b.label then
          (* while/for header: the false edge is the loop exit *)
          guards := (b, `False) :: !guards
        else if in_cycle v && leaves if_false then
          guards := (b, `False) :: !guards
        else if in_cycle v && leaves if_true then
          guards := (b, `True) :: !guards
      | _ -> ())
    blocks;
  List.rev !guards

let run reaction (m : Ir.modul) =
  Detect.ensure reaction m;
  let count = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if f.fname <> Detect.detected_fn then begin
        let fresh = Pass.fresh_for f in
        let defs = Pass.def_map f in
        let shadows = Hashtbl.create 8 in
        let additions =
          List.concat_map
            (fun (block, edge) ->
              incr count;
              Branches.instrument_edge f fresh defs ~shadows ~block ~edge)
            (guard_edges f)
        in
        f.blocks <- f.blocks @ additions
      end)
    m.funcs;
  Pass.verify_or_fail "loops" m;
  { loops_instrumented = !count }
