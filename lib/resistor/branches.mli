(** Conditional-branch duplication (Section VI-B): on the {e true} edge
    of every conditional branch, re-verify the condition before letting
    execution continue. The re-check replicates the instructions that
    computed the comparison (volatile loads and call results excepted)
    and evaluates the {e complemented} form — [if (a == 5)] is
    re-checked as [if (~a == ~5)] — so the same unidirectional bit flips
    applied twice cannot satisfy both encodings. A failed re-check is a
    logical impossibility and calls the detector. *)

type report = { branches_instrumented : int }

val disable_complement_check : bool ref
(** Test-only sabotage switch (default [false]): emit a tautological
    verdict instead of the complemented re-comparison, disabling
    detection in every check block this pass (and the loop pass, which
    shares {!instrument_edge}) emits. The fuzzer's efficacy property
    uses it as a negative control — a deliberately broken defense must
    be caught. Always reset it after use. *)

val instrument_edge :
  Ir.func ->
  Pass.fresh ->
  (int, Ir.instr) Hashtbl.t ->
  shadows:(int, int) Hashtbl.t ->
  block:Ir.block ->
  edge:[ `True | `False ] ->
  Ir.block list
(** Build the re-check on one edge of [block]'s conditional terminator
    (re-pointing the terminator); returns the new blocks to append.
    Shared with the loop-guard pass. [shadows] memoizes per-function
    complemented shadows ({!Pass.shadow_for}) of operands the cloner
    reuses verbatim; the check cross-validates each reused temp against
    its shadow so a single corrupted word that decodes into a frame
    store cannot both skip the primary test and feed the re-check a
    consistent forged value. *)

val run : Config.reaction -> Ir.modul -> report
