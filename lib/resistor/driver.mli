(** The GlitchResistor compile pipeline: Mini-C source in, defended
    firmware image out.

    Stage order mirrors the paper's architecture — one source-to-source
    rewriter (the clang-level ENUM pass) followed by IR passes:

    + parse, check, {!Enum_rewriter} (then re-check: the rewritten
      source must still be a valid program);
    + lower to IR;
    + {!Delay} (first, so its generator and init code are themselves
      protected by the passes that follow);
    + {!Returns}, {!Branches}, {!Loops}, {!Integrity};
    + the post-paper CFI passes {!Domains} then {!Sigcfi} (last, so
      their check blocks are not re-instrumented and the running
      signature covers the domain checks);
    + verify, code-generate, link.

    Firmware may call the board intrinsics [__trigger_high()],
    [__trigger_low()] and [__halt()]. *)

type reports = {
  enum_report : Enum_rewriter.report option;
  returns_report : Returns.report option;
  integrity_report : Integrity.report option;
  branches_report : Branches.report option;
  loops_report : Loops.report option;
  delay_report : Delay.report option;
  domains_report : Domains.report option;
  sigcfi_report : Sigcfi.report option;
  verify_warnings : (string * Ir.Verify.violation) list;
      (** pass-tagged {!Ir.Verify.lint} findings (unreachable blocks,
          maybe-undefined temps) from the after-every-pass verifier *)
}

type compiled = {
  config : Config.t;
  modul : Ir.modul;
  image : Lower.Layout.image;
  reports : reports;
}

val firmware_externs : (string * int) list

val compile_modul : Config.t -> string -> Ir.modul * reports
(** Source through all enabled passes; module verified. *)

val compile : Config.t -> string -> compiled
(** [compile_modul] plus code generation and linking. *)
