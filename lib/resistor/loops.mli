(** Loop-guard duplication (Section VI-B): the branch-duplication pass
    protects the {e true} edge only, on the assumption that the false
    edge is the common, uninteresting path — which is exactly backwards
    for loop guards, where escaping the loop takes the false edge. This
    pass finds loop-exit guards and adds the same complemented re-check
    to the escaping edge. *)

type report = { loops_instrumented : int }

val guard_edges : Ir.func -> (Ir.block * [ `True | `False ]) list
(** The loop-exit guards of [f], paired with the edge that leaves the
    loop: back-edge-target headers (the while/for shape, false-edge
    exit) plus conditional blocks inside a strongly-connected component
    with a successor outside it — which catches do-while exits, where
    the back edge targets the body rather than the conditional, and
    guarded breaks. The second detector was added after randomized
    differential testing showed the header-only definition silently
    skipping every do-while loop. *)

val run : Config.reaction -> Ir.modul -> report
