type technique = {
  name : string;
  generic : bool;
  extensible : bool;
  backward_compatible : bool;
  constant_diversification : bool;
  data_integrity : bool;
  control_flow_hardening : bool;
  random_delay : bool;
}

let glitch_resistor =
  { name = "GlitchResistor";
    generic = true;
    extensible = true;
    backward_compatible = true;
    constant_diversification = true;
    data_integrity = true;
    control_flow_hardening = true;
    random_delay = true }

(* Rows transcribed from Table VII. *)
let table =
  [ { name = "Data Encoding"; generic = false; extensible = false;
      backward_compatible = false; constant_diversification = true;
      data_integrity = true; control_flow_hardening = false;
      random_delay = false };
    { name = "CAMFAS"; generic = true; extensible = false;
      backward_compatible = false; constant_diversification = false;
      data_integrity = true; control_flow_hardening = false;
      random_delay = false };
    { name = "Loop Hardening"; generic = true; extensible = false;
      backward_compatible = true; constant_diversification = false;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    { name = "IIR"; generic = false; extensible = false;
      backward_compatible = false; constant_diversification = false;
      data_integrity = true; control_flow_hardening = false;
      random_delay = false };
    { name = "CountCompile"; generic = true; extensible = false;
      backward_compatible = true; constant_diversification = false;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    { name = "CountC"; generic = false; extensible = false;
      backward_compatible = false; constant_diversification = false;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    { name = "SWIFT"; generic = true; extensible = false;
      backward_compatible = false; constant_diversification = false;
      data_integrity = true; control_flow_hardening = true;
      random_delay = false };
    { name = "CFCSS"; generic = true; extensible = false;
      backward_compatible = false; constant_diversification = false;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    (* Post-paper signature CFI schemes modelled by the Sigcfi and
       Domains passes: both harden control flow generically from source
       (compiler passes, no code changes), with keyed state that doubles
       as constant diversification; neither touches data integrity or
       timing. *)
    { name = "FIPAC"; generic = true; extensible = false;
      backward_compatible = true; constant_diversification = true;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    { name = "SCRAMBLE-CFI"; generic = true; extensible = false;
      backward_compatible = true; constant_diversification = true;
      data_integrity = false; control_flow_hardening = true;
      random_delay = false };
    glitch_resistor ]

let render () =
  let mark b = if b then "yes" else "-" in
  let header =
    [ "Defense"; "Generic"; "Extensible"; "Backward Compat.";
      "Const. Diversification"; "Data Integrity"; "CF Hardening";
      "Random Delay" ]
  in
  let rows =
    List.map
      (fun t ->
        [ t.name; mark t.generic; mark t.extensible;
          mark t.backward_compatible; mark t.constant_diversification;
          mark t.data_integrity; mark t.control_flow_hardening;
          mark t.random_delay ])
      table
  in
  Stats.Table.render ~header rows
