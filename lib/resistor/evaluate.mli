(** Table VI: attack the defended firmware on the simulated board.

    For each scenario the firmware is compiled with a defense
    configuration, booted once to its trigger, snapshotted, and then
    attacked across the full glitch-parameter plane:

    - {e single}: one glitched cycle, [ext_offset] 0..10
      (11 x 9,801 = 107,811 attempts);
    - {e long}: glitches sustained for 10, 20, ..., 100 cycles from the
      trigger (10 x 9,801 = 98,010 attempts);
    - {e windowed}: a fixed 10-cycle glitch whose starting cycle varies
      over 0..10 (107,811 attempts).

    An attempt succeeds when the attack marker global holds [0xAA]
    post-mortem; it is detected when the GlitchResistor counter is
    non-zero (and the attack did not succeed), mirroring the paper's
    success/detection accounting. *)

type scenario =
  | Worst_case  (** [while (!a)], {!Firmware.guard_loop} *)
  | Best_case  (** [if (a == SUCCESS)], {!Firmware.if_success} *)

val scenario_name : scenario -> string
val scenario_source : scenario -> string

type attack = Single | Long | Windowed

val attack_name : attack -> string

type outcome = {
  attempts : int;
  successes : int;
  detections : int;
}

val success_rate : outcome -> float
val detection_rate : outcome -> float
(** detections / (detections + successes), the paper's formula. *)

val run :
  ?pool:Runtime.Pool.t ->
  ?fault_config:Hw.Susceptibility.config ->
  ?sweep_step:int ->
  Config.t ->
  scenario ->
  attack ->
  outcome
(** [sweep_step] strides the (width, offset) plane (default 1 = the full
    9,801-point sweep; benches may use 1, quick tests a larger step —
    attempt counts scale accordingly).

    With [pool], sweep rows (one width at one attack window) are drained
    by worker domains, each attacking its own booted-and-snapshotted
    board; every attempt rewinds to the snapshot, so the summed counts
    are bit-identical to the sequential sweep. *)

val run_image :
  ?pool:Runtime.Pool.t ->
  ?fault_config:Hw.Susceptibility.config ->
  ?sweep_step:int ->
  Lower.Layout.image ->
  attack ->
  outcome
(** Attack an already-linked image (used by the per-defense ablation and
    the CFCSS baseline comparison). The firmware must raise the trigger
    and write the attack marker, like {!Firmware.guard_loop}. *)
