(** SCRAMBLE-CFI-flavoured scramble domains (post-paper extension).

    Functions are partitioned into keyed clusters; a volatile domain
    register ({!domain_global}) must hold the current cluster's key.
    Cross-domain calls are bracketed with compile-time XOR bridges
    ([key_src xor key_dst], nonzero by construction) and every function
    entry and return checks the register against its own cluster key,
    routing mismatches into {!Detect}. Control flow that escapes its
    domain without passing a bridge fails its next check. *)

type report = {
  domains : (string * int) list;  (** function -> cluster index *)
  clusters : int;
  bridges : int;  (** cross-domain call sites bracketed *)
  checks_inserted : int;  (** entry + return checks *)
  key : int;
}

val domain_global : string
(** Name of the volatile domain register ("__domains_D"). *)

val bridge_fn : string
(** Name of the out-of-line XOR helper ("__gr_domains_xor"): each
    bridge half calls it with the compile-time bridge constant. *)

val default_key : int

val disable_checks : bool ref
(** Negative control: when set, entry/return checks are not emitted
    (bridges stay), so the lint domain audit must flag every
    instrumented function. Reset it after use. *)

val cluster_key : key:int -> int -> int
(** Distinct nonzero GF(2^8) key of cluster [d]: [key * alpha^(d+1)]. *)

val partition : key:int -> Ir.modul -> (string * int) list * int
(** Deterministic keyed partition (function -> cluster, cluster
    count); [main] anchors cluster 0, "__gr_" runtime helpers are
    excluded. *)

val run : ?key:int -> Config.reaction -> Ir.modul -> report
(** Instrument every function (except the detector); verifies the
    module. @raise Invalid_argument if [key] is outside 1..255. *)
