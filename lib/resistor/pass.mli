(** Shared infrastructure for GlitchResistor's IR passes: fresh temp and
    label allocation, use-def lookup, and the operand-chain cloner used
    by the redundancy passes. *)

type fresh

val fresh_for : Ir.func -> fresh
val temp : fresh -> int
val label : fresh -> string -> string
(** Unique labels of the form ["gr.<hint>.<n>"]. *)

val def_map : Ir.func -> (int, Ir.instr) Hashtbl.t
(** Temp index -> defining instruction (temps are write-once). *)

type clone_result = {
  instrs : Ir.instr list;  (** replicated computation, in order *)
  value : Ir.value;  (** the replicated result *)
  replicated : bool;
      (** false if the chain had to reuse the original value because it
          reaches a volatile load, a call, or exceeds the depth bound *)
  reused : int list;
      (** the temps reused verbatim (first-use order). A checker that
          consumes the clone must cross-validate each against a shadow
          captured at definition time: at -O0 every temp lives in a
          stack slot, and a corrupted guard word can decode into a store
          that overwrites exactly the slot the re-check would read. *)
}

val clone_chain :
  fresh -> (int, Ir.instr) Hashtbl.t -> Ir.value -> clone_result
(** Replicate the computation producing a value with fresh temps
    (Section VI-B: "replicates any instructions that are needed to
    calculate the comparison"). Volatile loads and call results are not
    replicated — the original temp is reused, as in the paper. *)

val shadow_for :
  Ir.func ->
  fresh ->
  (int, Ir.instr) Hashtbl.t ->
  (int, int) Hashtbl.t ->
  int ->
  int option
(** [shadow_for f fresh defs shadows t] returns (creating on first use,
    memoized in [shadows]) the temp holding [t lxor 0xFFFFFFFF],
    materialized immediately after [t]'s definition. [None] when [t]
    has no defining instruction (parameter-by-convention). *)

val verify_or_fail : string -> Ir.modul -> unit
(** Run the IR verifier after a pass; raise with the pass name on
    violation (pass bugs must never produce silently-broken firmware).
    Non-fatal [Ir.Verify.lint] findings (unreachable blocks,
    maybe-undefined temps) are accumulated instead of raised; the
    driver drains them with {!drain_warnings}. *)

val reset_warnings : unit -> unit
val collect_warnings : string -> Ir.modul -> unit
val drain_warnings : unit -> (string * Ir.Verify.violation) list
(** Pass-tagged lint findings since the last reset/drain, oldest
    first, deduplicated by (func, message). *)
