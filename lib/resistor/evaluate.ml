type scenario = Worst_case | Best_case

let scenario_name = function
  | Worst_case -> "while(!a)"
  | Best_case -> "if(a==SUCCESS)"

let scenario_source = function
  | Worst_case -> Firmware.guard_loop
  | Best_case -> Firmware.if_success

type attack = Single | Long | Windowed

let attack_name = function
  | Single -> "single"
  | Long -> "long"
  | Windowed -> "windowed(10)"

type outcome = { attempts : int; successes : int; detections : int }

let success_rate o =
  Stats.Rate.pct ~num:o.successes ~den:o.attempts

let detection_rate o =
  Stats.Rate.pct ~num:o.detections ~den:(o.detections + o.successes)

(* Schedules per attack, in (ext_offset, repeat) form. *)
let windows = function
  | Single -> List.init 11 (fun c -> (c, 1))
  | Long -> List.init 10 (fun i -> (0, 10 * (i + 1)))
  | Windowed -> List.init 11 (fun s -> (s, 10))

(* Boot the firmware to its trigger and snapshot: the pre-attack state
   every attempt rewinds to. Deterministic, so each worker domain can
   rebuild an identical board from the shared image. *)
let boot_board image =
  let board = Hw.Board.create (Hw.Board.Image image) in
  if not (Hw.Board.run_until_trigger ~max_cycles:2_000_000 board) then
    invalid_arg "Evaluate.run: firmware never raised its trigger";
  let snap = Hw.Board.snapshot board in
  (* enough budget after the trigger for the defended loop plus the
     spin-on-detection reaction to settle *)
  let max_cycles = Hw.Board.cycles board + 4_000 in
  (board, snap, max_cycles)

(* One row of the sweep: all offsets at a fixed (window, width). The
   attempt outcome depends only on the snapshot and the schedule, so
   rows can run on any domain in any order. *)
let run_row ?fault_config ~sweep_step (board, snap, max_cycles) (ext_offset, repeat, width)
    =
  let attempts = ref 0 and successes = ref 0 and detections = ref 0 in
  let offset = ref (-49) in
  while !offset <= 49 do
    incr attempts;
    let schedule =
      [ Hw.Glitcher.with_repeat
          (Hw.Glitcher.single ~width ~offset:!offset ~ext_offset)
          repeat ]
    in
    let (_ : Hw.Glitcher.observation) =
      Hw.Glitcher.run ?config:fault_config ~max_cycles ~from:snap board schedule
    in
    let marker = Hw.Board.read_global board Firmware.attack_marker_global in
    let succeeded = marker = Some Firmware.attack_marker_value in
    if succeeded then incr successes
    else if Detect.detections (Hw.Board.read_global board) > 0 then
      incr detections;
    offset := !offset + sweep_step
  done;
  (!attempts, !successes, !detections)

let rows_of attack ~sweep_step =
  List.concat_map
    (fun (ext_offset, repeat) ->
      let rec widths w acc =
        if w > 49 then List.rev acc
        else widths (w + sweep_step) ((ext_offset, repeat, w) :: acc)
      in
      widths (-49) [])
    (windows attack)

let run_image ?pool ?fault_config ?(sweep_step = 1) image attack =
  let rows = rows_of attack ~sweep_step in
  let parts =
    match pool with
    | Some pool when Runtime.Pool.jobs pool > 1 ->
      (* per-worker board: rows are claimed from a shared queue and the
         (attempts, successes, detections) triples summed — an
         order-independent reduction, so counts match the sequential
         sweep exactly *)
      let items = Array.of_list rows in
      let q =
        Runtime.Chunk.queue ~size:1 ~lo:0 ~hi:(Array.length items)
          ~jobs:(Runtime.Pool.jobs pool) ()
      in
      Runtime.Pool.map_workers pool (fun _wid ->
          let rig = boot_board image in
          let acc = ref (0, 0, 0) in
          let rec drain () =
            match Runtime.Chunk.take q with
            | None -> ()
            | Some (i, _) ->
              let a, s, d = run_row ?fault_config ~sweep_step rig items.(i) in
              let a0, s0, d0 = !acc in
              acc := (a0 + a, s0 + s, d0 + d);
              drain ()
          in
          drain ();
          !acc)
    | Some _ | None ->
      let rig = boot_board image in
      List.map (run_row ?fault_config ~sweep_step rig) rows
  in
  let attempts, successes, detections =
    List.fold_left
      (fun (a0, s0, d0) (a, s, d) -> (a0 + a, s0 + s, d0 + d))
      (0, 0, 0) parts
  in
  { attempts; successes; detections }

let run ?pool ?fault_config ?sweep_step (config : Config.t) scenario attack =
  let compiled = Driver.compile config (scenario_source scenario) in
  run_image ?pool ?fault_config ?sweep_step compiled.image attack
