(* FIPAC-flavoured running-signature CFI (post-paper; FIPAC,
   arXiv:2104.14993).

   Where CFCSS assigns every block a static signature and checks set
   membership at merge points, this pass threads one keyed *running*
   accumulator through the control-flow graph:

   - every basic block [b] owns a keyed signature [sig b], a GF(2^8)
     polynomial MAC of (function, label) evaluated at the key — the
     repo's stand-in for FIPAC's PAC-keyed state;
   - every CFG edge [p -> s] is split and carries an update
     [S := step(S) xor patch(p, s)] where [step] is multiplication by
     the field generator and [patch(p, s) = step(sig p) xor sig s] is a
     compile-time constant.  Arriving over a legal edge turns [sig p]
     into exactly [sig s]; arriving from anywhere else leaves garbage
     that no later patch can justify;
   - sinks (returns) load the accumulator and compare it against the
     current block's signature, calling the {!Detect} handler on
     mismatch.  Function entries re-seed, and the accumulator is
     re-seeded after every internal call (the callee ran its own
     chain), keeping the scheme per-activation like CFCSS.

   An 8-bit state means an illegal edge still passes a sink check with
   probability ~1/256 — the honest FIPAC trade-off — and, exactly like
   CFCSS, a glitch that only flips a *legal* branch direction updates
   the state along a legal edge and stays invisible (the Table VII
   limitation). *)

type report = {
  blocks_signed : int;
  updates_inserted : int;  (** edge-split state-update blocks *)
  checks_inserted : int;  (** sink (return) checks *)
  key : int;
}

let state_global = "__sigcfi_S"
let default_key = 0x5A

(* Negative-control hook for the lint smoke: skip the sink checks so
   the signature-domination audit must flag every return. *)
let disable_checks = ref false

(* GF(2^8) multiply-by-alpha, poly 0x11D — branchless, so the runtime
   IR sequence below computes the same function the compile-time patch
   constants are derived with. *)
let step x = ((x lsl 1) land 0xFF) lxor (0x1D * ((x lsr 7) land 1))

(* Keyed per-(function, block) signature: the MAC
   [sum byte_i * key^(n-i)] over the bytes of "fname.label", i.e. a
   GF(2^8) polynomial evaluated at the key. *)
let signature ~key fname label =
  let s = fname ^ "." ^ label in
  let acc = ref 0 in
  String.iter
    (fun c -> acc := Reedsolomon.Gf256.add (Reedsolomon.Gf256.mul !acc key) (Char.code c))
    s;
  !acc

let step_fn = "__gr_sigcfi_step"

(* Runtime helpers ("__gr_" prefix) are never instrumented, never
   trigger a re-seed, and never count as user control flow. *)
let is_runtime_helper fname =
  String.length fname >= 4 && String.sub fname 0 4 = "__gr"

(* Out-of-line state update [S := step(S) xor patch] so each edge-split
   glue block is a single call with a compile-time argument: IR temps
   are single-assignment and map 1:1 to stack slots in codegen, so
   inlining the 8-temp update on every CFG edge would blow the 255-slot
   frame budget on large defended images. *)
let ensure_step_fn (m : Ir.modul) =
  if Ir.find_func m step_fn = None then begin
    let b = Ir.Builder.create ~fname:step_fn ~params:[ "p" ] ~returns_value:false in
    let s = Ir.Builder.load ~volatile:true b (Ir.Global state_global) in
    let shl = Ir.Builder.binop b Ir.Shl s (Ir.Const 1) in
    let low = Ir.Builder.binop b Ir.And shl (Ir.Const 0xFF) in
    let hi = Ir.Builder.binop b Ir.Lshr s (Ir.Const 7) in
    let hibit = Ir.Builder.binop b Ir.And hi (Ir.Const 1) in
    let red = Ir.Builder.binop b Ir.Mul hibit (Ir.Const 0x1D) in
    let stepped = Ir.Builder.binop b Ir.Xor low red in
    let p = Ir.Builder.load b (Ir.Local "p") in
    let next = Ir.Builder.binop b Ir.Xor stepped p in
    Ir.Builder.store ~volatile:true b (Ir.Global state_global) next;
    Ir.Builder.ret b None;
    m.funcs <- m.funcs @ [ Ir.Builder.func b ]
  end

let seed_instr s =
  Ir.Store { dst = Ir.Global state_global; src = Ir.Const s; volatile = true }

let instrument_function ~key (m : Ir.modul) (f : Ir.func) =
  let fresh = Pass.fresh_for f in
  let sig_of =
    let table = Hashtbl.create 16 in
    List.iter
      (fun (b : Ir.block) ->
        Hashtbl.replace table b.label (signature ~key f.fname b.label))
      f.blocks;
    fun label -> Hashtbl.find table label
  in
  let original = List.map (fun (b : Ir.block) -> b.label) f.blocks in
  let updates = ref 0 and checks = ref 0 in
  (* New blocks are spliced in right after the block they serve, not
     appended at the end of the function: with one glue block per CFG
     edge, an appended tail puts every body→glue→body hop ~the whole
     function apart and drowns codegen's branch relaxation in
     trampoline stubs. *)
  let added : (string, Ir.block list) Hashtbl.t = Hashtbl.create 16 in
  let attach src blocks =
    Hashtbl.replace added src
      (match Hashtbl.find_opt added src with
      | Some l -> l @ blocks
      | None -> blocks)
  in
  (* 1. split every edge between original blocks and put the keyed
     state update on it *)
  let glue src src_sig target =
    incr updates;
    let label = Pass.label fresh "sigcfi.up" in
    let patch = step src_sig lxor sig_of target in
    attach src
      [ { Ir.label;
          instrs =
            [ Ir.Call { dst = None; callee = step_fn; args = [ Ir.Const patch ] } ];
          term = Ir.Br target } ];
    label
  in
  List.iter
    (fun (b : Ir.block) ->
      let own = sig_of b.label in
      let glue = glue b.label own in
      b.term <-
        (match b.term with
        | Ir.Br l -> Ir.Br (glue l)
        | Ir.Cond_br { cond; if_true; if_false } ->
          Ir.Cond_br { cond; if_true = glue if_true; if_false = glue if_false }
        | Ir.Switch { value; cases; default } ->
          Ir.Switch
            { value;
              cases = List.map (fun (v, l) -> (v, glue l)) cases;
              default = glue default }
        | (Ir.Ret _ | Ir.Unreachable) as t -> t))
    (List.filter (fun (b : Ir.block) -> List.mem b.Ir.label original) f.blocks);
  (* 2. seed on entry, re-seed after internal calls (the callee ran its
     own signature chain to its own sink) *)
  (match f.blocks with
  | entry :: _ -> entry.instrs <- seed_instr (sig_of entry.label) :: entry.instrs
  | [] -> ());
  List.iter
    (fun (b : Ir.block) ->
      if List.mem b.Ir.label original then
        b.instrs <-
          List.concat_map
            (fun i ->
              match i with
              | Ir.Call { callee; _ }
                when Ir.find_func m callee <> None
                     && not (is_runtime_helper callee) ->
                (* the callee ran its own chain and clobbered S; helpers
                   never touch the chain, and re-seeding after them
                   would mask an already-corrupt state *)
                [ i; seed_instr (sig_of b.label) ]
              | _ -> [ i ])
            b.instrs)
    f.blocks;
  (* 3. sink checks: every return is dominated by a signature check *)
  if not !disable_checks then
    List.iter
      (fun (b : Ir.block) ->
        match b.term with
        | Ir.Ret _ when List.mem b.Ir.label original ->
          incr checks;
          let ret_label = Pass.label fresh "sigcfi.ret" in
          let bad_label = Pass.label fresh "sigcfi.bad" in
          let t = Pass.temp fresh in
          let v = Pass.temp fresh in
          attach b.label
            [ { Ir.label = ret_label; instrs = []; term = b.term };
              { Ir.label = bad_label;
                instrs =
                  [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
                term = Ir.Br ret_label } ];
          b.instrs <-
            b.instrs
            @ [ Ir.Load { dst = t; src = Ir.Global state_global; volatile = true };
                Ir.Icmp
                  { dst = v; op = Ir.Eq; lhs = Ir.Temp t;
                    rhs = Ir.Const (sig_of b.label) } ];
          b.term <-
            Ir.Cond_br { cond = Ir.Temp v; if_true = ret_label; if_false = bad_label }
        | _ -> ())
      f.blocks;
  f.blocks <-
    List.concat_map
      (fun (b : Ir.block) ->
        b :: (match Hashtbl.find_opt added b.Ir.label with Some l -> l | None -> []))
      f.blocks;
  (List.length original, !updates, !checks)

let run ?(key = default_key) reaction (m : Ir.modul) =
  if key <= 0 || key > 0xFF then invalid_arg "Sigcfi.run: key must be in 1..255";
  Detect.ensure reaction m;
  if Ir.find_global m state_global = None then
    m.globals <-
      m.globals
      @ [ { Ir.gname = state_global; init = 0; volatile = true;
            sensitive = false } ];
  ensure_step_fn m;
  let signed = ref 0 and updates = ref 0 and checks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if not (is_runtime_helper f.fname) then begin
        let s, u, c = instrument_function ~key m f in
        signed := !signed + s;
        updates := !updates + u;
        checks := !checks + c
      end)
    m.funcs;
  Pass.verify_or_fail "sigcfi" m;
  { blocks_signed = !signed; updates_inserted = !updates;
    checks_inserted = !checks; key }
