type report = { branches_instrumented : int }

(* Negative-control hook for the fuzzer: when set, the emitted check
   block compares the complemented clones for *equality with
   themselves* instead of re-evaluating the edge condition, i.e. the
   verdict is a tautology and the defense never detects anything. Both
   Branches and Loops route through [instrument_edge], so flipping this
   breaks both passes at once; the efficacy property must then find a
   silently-accepted corrupted guard. *)
let disable_complement_check = ref false

let mask32 = 0xFFFFFFFF

(* Complementing both operands reverses order: x < y iff ~x > ~y (two's
   complement: ~x = -x - 1), while (in)equality is preserved. *)
let complemented_op (op : Ir.icmp) : Ir.icmp =
  match op with
  | Ir.Eq -> Ir.Eq
  | Ir.Ne -> Ir.Ne
  | Ir.Slt -> Ir.Sgt
  | Ir.Sle -> Ir.Sge
  | Ir.Sgt -> Ir.Slt
  | Ir.Sge -> Ir.Sle
  | Ir.Ult -> Ir.Ugt
  | Ir.Ule -> Ir.Uge
  | Ir.Ugt -> Ir.Ult
  | Ir.Uge -> Ir.Ule

let instrument_edge (f : Ir.func) fresh defs ~shadows ~(block : Ir.block) ~edge
    =
  match block.term with
  | Ir.Br _ | Ir.Switch _ | Ir.Ret _ | Ir.Unreachable -> []
  | Ir.Cond_br { cond; if_true; if_false } ->
    (* The condition this edge asserts: [op lhs rhs] that must hold when
       execution goes this way. Raw (non-icmp) conditions are treated as
       [cond != 0]. *)
    let base_op, lhs, rhs =
      match cond with
      | Ir.Temp t -> (
        match Hashtbl.find_opt defs t with
        | Some (Ir.Icmp { op; lhs; rhs; _ }) -> (op, lhs, rhs)
        | Some (Ir.Load _ | Ir.Binop _ | Ir.Call _ | Ir.Store _) | None ->
          (Ir.Ne, cond, Ir.Const 0))
      | Ir.Const _ -> (Ir.Ne, cond, Ir.Const 0)
    in
    let edge_op =
      match edge with `True -> base_op | `False -> Ir.negate_icmp base_op
    in
    let target = match edge with `True -> if_true | `False -> if_false in
    (* replicate the operand computations *)
    let lhs_clone = Pass.clone_chain fresh defs lhs in
    let rhs_clone = Pass.clone_chain fresh defs rhs in
    let check_label = Pass.label fresh "branch.check" in
    let bad_label = Pass.label fresh "branch.bad" in
    let complement v =
      let dst = Pass.temp fresh in
      (Ir.Binop { dst; op = Ir.Xor; lhs = v; rhs = Ir.Const mask32 }, Ir.Temp dst)
    in
    let c_lhs_i, c_lhs = complement lhs_clone.value in
    let c_rhs_i, c_rhs = complement rhs_clone.value in
    let verdict = Pass.temp fresh in
    let verdict_icmp =
      if !disable_complement_check then
        Ir.Icmp { dst = verdict; op = Ir.Eq; lhs = c_lhs; rhs = c_lhs }
      else
        Ir.Icmp
          { dst = verdict; op = complemented_op edge_op; lhs = c_lhs;
            rhs = c_rhs }
    in
    (* Operands the cloner reused verbatim live in a single stack slot
       at -O0, and a corrupted guard word can decode into a store that
       overwrites exactly that slot — skipping the primary test and
       feeding the re-check the attacker's value in one fault. Pair
       each reused temp with a complemented shadow captured at its
       definition and fold [t lxor shadow = ~0] into the verdict: a
       one-word fault can clobber one slot of the pair, never both. *)
    let reused =
      List.filter
        (fun t -> not (List.mem t lhs_clone.Pass.reused))
        rhs_clone.Pass.reused
      |> ( @ ) lhs_clone.Pass.reused
    in
    let pair_instrs, pair_cond =
      if !disable_complement_check then ([], Ir.Temp verdict)
      else
        List.fold_left
          (fun (instrs, cond) t ->
            match Pass.shadow_for f fresh defs shadows t with
            | None -> (instrs, cond)
            | Some sh ->
              let x = Pass.temp fresh in
              let ok = Pass.temp fresh in
              let combined = Pass.temp fresh in
              ( instrs
                @ [ Ir.Binop
                      { dst = x; op = Ir.Xor; lhs = Ir.Temp t;
                        rhs = Ir.Temp sh };
                    Ir.Icmp
                      { dst = ok; op = Ir.Eq; lhs = Ir.Temp x;
                        rhs = Ir.Const mask32 };
                    Ir.Binop
                      { dst = combined; op = Ir.And; lhs = cond;
                        rhs = Ir.Temp ok } ],
                Ir.Temp combined ))
          ([], Ir.Temp verdict) reused
    in
    let check_block =
      { Ir.label = check_label;
        instrs =
          lhs_clone.instrs @ rhs_clone.instrs
          @ [ c_lhs_i; c_rhs_i; verdict_icmp ]
          @ pair_instrs;
        term =
          Ir.Cond_br { cond = pair_cond; if_true = target; if_false = bad_label }
      }
    in
    let bad_block =
      { Ir.label = bad_label;
        instrs = [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
        term = Ir.Br target }
    in
    (* redirect the instrumented edge through the check *)
    block.term <-
      (match edge with
      | `True -> Ir.Cond_br { cond; if_true = check_label; if_false }
      | `False -> Ir.Cond_br { cond; if_true; if_false = check_label });
    ignore f;
    [ check_block; bad_block ]

let run reaction (m : Ir.modul) =
  Detect.ensure reaction m;
  let count = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if f.fname <> Detect.detected_fn then begin
        let fresh = Pass.fresh_for f in
        let defs = Pass.def_map f in
        let shadows = Hashtbl.create 8 in
        let original = f.blocks in
        let additions =
          List.concat_map
            (fun block ->
              match block.Ir.term with
              | Ir.Cond_br _ ->
                incr count;
                instrument_edge f fresh defs ~shadows ~block ~edge:`True
              | Ir.Br _ | Ir.Switch _ | Ir.Ret _ | Ir.Unreachable -> [])
            original
        in
        f.blocks <- f.blocks @ additions
      end)
    m.funcs;
  Pass.verify_or_fail "branches" m;
  { branches_instrumented = !count }
