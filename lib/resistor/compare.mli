(** Table VII: qualitative comparison of software-based glitching
    defenses. The matrix is reproduced from the paper's related-work
    analysis; GlitchResistor is the only row with every property. *)

type technique = {
  name : string;
  generic : bool;  (** not application-specific (e.g. not AES-only) *)
  extensible : bool;  (** new defenses can be added to the framework *)
  backward_compatible : bool;  (** applies to existing code unchanged *)
  constant_diversification : bool;
  data_integrity : bool;
  control_flow_hardening : bool;
  random_delay : bool;
}

val table : technique list
(** All prior techniques plus GlitchResistor, in the paper's order,
    extended with rows for the post-paper signature-CFI schemes the
    {!Sigcfi} (FIPAC-style) and {!Domains} (SCRAMBLE-CFI-style) passes
    model. *)

val glitch_resistor : technique

val render : unit -> string
(** The check/cross matrix as text. *)
