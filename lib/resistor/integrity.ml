type report = {
  protected : (string * string) list;
  checks_inserted : int;
}

let shadow_name g = g ^ "__integrity"

let mask32 = 0xFFFFFFFF

(* Rebuild a function so that every access to a protected global is
   paired with its shadow: stores write the complement too; loads
   verify and branch to the detector on mismatch. Verification needs
   control flow, so blocks are split at each protected load. *)
let instrument_function protected (f : Ir.func) =
  let fresh = Pass.fresh_for f in
  let checks = ref 0 in
  let new_blocks = ref [] in
  let emit_block b = new_blocks := b :: !new_blocks in
  List.iter
    (fun (b : Ir.block) ->
      (* current accumulating block *)
      let label = ref b.label in
      let acc = ref [] in
      let flush_with_check ~cont_label ~check_cond =
        (* end the current block with a conditional jump to a detector
           stub, then continue in a fresh block *)
        let detect_label = Pass.label fresh "integrity.bad" in
        emit_block
          { Ir.label = !label;
            instrs = List.rev !acc;
            term =
              Ir.Cond_br
                { cond = check_cond; if_true = detect_label; if_false = cont_label } };
        emit_block
          { Ir.label = detect_label;
            instrs = [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
            term = Ir.Br cont_label };
        label := cont_label;
        acc := []
      in
      let rec go (instrs : Ir.instr list) =
        match instrs with
        | [] -> ()
        | Ir.Store { dst = Ir.Global g; src; volatile } :: rest
          when List.mem g protected ->
          acc := Ir.Store { dst = Ir.Global g; src; volatile } :: !acc;
          let inv = Pass.temp fresh in
          acc := Ir.Binop { dst = inv; op = Ir.Xor; lhs = src; rhs = Ir.Const mask32 } :: !acc;
          acc :=
            Ir.Store
              { dst = Ir.Global (shadow_name g); src = Ir.Temp inv; volatile }
            :: !acc;
          go rest
        | Ir.Load { dst; src = Ir.Global g; volatile } :: rest
          when List.mem g protected ->
          incr checks;
          acc := Ir.Load { dst; src = Ir.Global g; volatile } :: !acc;
          (* Complement shadows an earlier pass captured for this load
             ([Pass.shadow_for] emits [xor dst, -1] immediately after
             the definition) must stay glued to it: letting the
             integrity check run in between would open a window where a
             corrupted check word can decode into a frame store that
             overwrites the loaded value {e before} its shadow is
             taken, forging both coherently. *)
          let rec take_shadows rest =
            match rest with
            | (Ir.Binop { op = Ir.Xor; lhs = Ir.Temp t; rhs = Ir.Const c; _ }
               as s)
              :: tl
              when t = dst && c = mask32 ->
              acc := s :: !acc;
              take_shadows tl
            | _ -> rest
          in
          let rest = take_shadows rest in
          let sh = Pass.temp fresh in
          acc :=
            Ir.Load { dst = sh; src = Ir.Global (shadow_name g); volatile }
            :: !acc;
          let x = Pass.temp fresh in
          acc :=
            Ir.Binop { dst = x; op = Ir.Xor; lhs = Ir.Temp dst; rhs = Ir.Temp sh }
            :: !acc;
          let bad = Pass.temp fresh in
          acc :=
            Ir.Icmp { dst = bad; op = Ir.Ne; lhs = Ir.Temp x; rhs = Ir.Const mask32 }
            :: !acc;
          flush_with_check
            ~cont_label:(Pass.label fresh "integrity.ok")
            ~check_cond:(Ir.Temp bad);
          go rest
        | ((Ir.Load _ | Ir.Store _ | Ir.Binop _ | Ir.Icmp _ | Ir.Call _) as i)
          :: rest ->
          acc := i :: !acc;
          go rest
      in
      go b.instrs;
      emit_block { Ir.label = !label; instrs = List.rev !acc; term = b.term })
    f.blocks;
  f.blocks <- List.rev !new_blocks;
  !checks

let run ~sensitive reaction (m : Ir.modul) =
  Detect.ensure reaction m;
  let protected =
    List.filter (fun g -> Ir.find_global m g <> None) sensitive
  in
  (* allocate shadows in a disjoint region: appended after all existing
     globals, so original and shadow are never adjacent *)
  List.iter
    (fun g ->
      let orig = Option.get (Ir.find_global m g) in
      if Ir.find_global m (shadow_name g) = None then
        m.globals <-
          m.globals
          @ [ { Ir.gname = shadow_name g;
                init = orig.init lxor mask32;
                volatile = orig.volatile;
                sensitive = false } ])
    protected;
  let checks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if f.fname <> Detect.detected_fn then
        checks := !checks + instrument_function protected f)
    m.funcs;
  Pass.verify_or_fail "integrity" m;
  { protected = List.map (fun g -> (g, shadow_name g)) protected;
    checks_inserted = !checks }
