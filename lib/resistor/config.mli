(** GlitchResistor configuration: which defenses to apply (they compose
    "a la carte", as evaluated in Tables IV and V), which globals are
    sensitive, where random delays go, and what to do on detection. *)

type delay_scope =
  | Delay_everywhere  (** every basic block ending in a branch *)
  | Delay_opt_in of string list  (** only the listed functions *)
  | Delay_opt_out of string list  (** everywhere except the listed functions *)

type reaction =
  | Spin  (** deny service: loop forever in the detector *)
  | Halt  (** stop the core (breakpoint) *)
  | Record  (** count and continue (evaluation harnesses) *)

type t = {
  enums : bool;  (** ENUM Rewriter (source-to-source) *)
  returns : bool;  (** non-trivial return codes *)
  integrity : bool;  (** sensitive-variable shadow complements *)
  branches : bool;  (** conditional-branch duplication *)
  loops : bool;  (** loop-guard duplication *)
  delay : bool;  (** random timing injection *)
  sigcfi : bool;  (** FIPAC-style keyed running-signature CFI (post-paper) *)
  domains : bool;  (** SCRAMBLE-CFI-style keyed function clusters (post-paper) *)
  delay_scope : delay_scope;
  sensitive : string list;  (** globals protected by the integrity pass *)
  reaction : reaction;
}

val none : t
(** Baseline: nothing enabled. *)

val all : ?sensitive:string list -> unit -> t
(** Every paper defense, delays everywhere, [Spin] reaction — the
    paper's "All" configuration. The post-paper CFI passes ([sigcfi],
    [domains]) stay off so the paper's rows are reproducible; enable
    them explicitly via {!only} or a record update. *)

val all_but_delay : ?sensitive:string list -> unit -> t
(** The paper's "All\Delay" configuration. *)

val only :
  ?enums:bool -> ?returns:bool -> ?integrity:bool -> ?branches:bool ->
  ?loops:bool -> ?delay:bool -> ?sigcfi:bool -> ?domains:bool ->
  ?sensitive:string list -> unit -> t
(** Single defenses for the a-la-carte overhead rows of Tables IV/V. *)

val name : t -> string
(** "None", "Branches", "All\\Delay", "All\\Delay+Sigcfi+Domains", ...
    for report rows. *)
