type delay_scope =
  | Delay_everywhere
  | Delay_opt_in of string list
  | Delay_opt_out of string list

type reaction = Spin | Halt | Record

type t = {
  enums : bool;
  returns : bool;
  integrity : bool;
  branches : bool;
  loops : bool;
  delay : bool;
  sigcfi : bool;
  domains : bool;
  delay_scope : delay_scope;
  sensitive : string list;
  reaction : reaction;
}

let none =
  { enums = false;
    returns = false;
    integrity = false;
    branches = false;
    loops = false;
    delay = false;
    sigcfi = false;
    domains = false;
    delay_scope = Delay_everywhere;
    sensitive = [];
    reaction = Spin }

let all ?(sensitive = []) () =
  { none with
    enums = true;
    returns = true;
    integrity = true;
    branches = true;
    loops = true;
    delay = true;
    sensitive }

let all_but_delay ?sensitive () = { (all ?sensitive ()) with delay = false }

let only ?(enums = false) ?(returns = false) ?(integrity = false)
    ?(branches = false) ?(loops = false) ?(delay = false) ?(sigcfi = false)
    ?(domains = false) ?(sensitive = []) () =
  { none with
    enums; returns; integrity; branches; loops; delay; sigcfi; domains;
    sensitive }

(* The paper's eight named configurations keep their historical names;
   the post-paper CFI passes show up as "+Sigcfi"/"+Domains" suffixes so
   every existing report row and golden is untouched. *)
let name t =
  let base =
    match (t.enums, t.returns, t.integrity, t.branches, t.loops, t.delay) with
    | false, false, false, false, false, false -> "None"
    | true, true, true, true, true, true -> "All"
    | true, true, true, true, true, false -> "All\\Delay"
    | _ ->
      let parts =
        List.filter_map
          (fun (on, label) -> if on then Some label else None)
          [ (t.enums, "Enums"); (t.returns, "Returns");
            (t.integrity, "Integrity"); (t.branches, "Branches");
            (t.loops, "Loops"); (t.delay, "Delay") ]
      in
      String.concat "+" parts
  in
  let extras =
    List.filter_map
      (fun (on, label) -> if on then Some label else None)
      [ (t.sigcfi, "Sigcfi"); (t.domains, "Domains") ]
  in
  match (base, extras) with
  | base, [] -> base
  | "None", extras -> String.concat "+" extras
  | base, extras -> base ^ "+" ^ String.concat "+" extras
