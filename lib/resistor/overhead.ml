type row = {
  label : string;
  boot_cycles : int;
  text_bytes : int;
  data_bytes : int;
  bss_bytes : int;
  total_bytes : int;
}

let sensitive = [ "tick" ]

(* The paper's eight rows first (their order is pinned by goldens),
   then the post-paper CFI rows the paper doesn't have. *)
let paper_configurations =
  [ ("None", Config.none);
    ("Branches", Config.only ~branches:true ());
    ("Delay", Config.only ~delay:true ());
    ("Integrity", Config.only ~integrity:true ~sensitive ());
    ("Loops", Config.only ~loops:true ());
    ("Returns", Config.only ~returns:true ~enums:true ());
    ("All\\Delay", Config.all_but_delay ~sensitive ());
    ("All", Config.all ~sensitive ()) ]

let cfi_configurations =
  [ ("Sigcfi", Config.only ~sigcfi:true ());
    ("Domains", Config.only ~domains:true ());
    ("All\\Delay+Sigcfi+Domains",
     { (Config.all_but_delay ~sensitive ()) with sigcfi = true; domains = true })
  ]

let configurations = paper_configurations @ cfi_configurations

let flash_commit_cycles =
  (* subs + taken-branch per iteration, plus entry/exit *)
  4 * Lower.Runtime.flash_commit_iterations

let measure config ~label =
  let compiled = Driver.compile config Firmware.boot_tick in
  let board = Hw.Board.create (Hw.Board.Image compiled.image) in
  let boot_cycles =
    if Hw.Board.run_until_trigger ~max_cycles:2_000_000 board then
      match Hw.Board.trigger_edges board with
      | edge :: _ -> edge
      | [] -> invalid_arg "Overhead.measure: trigger lost"
    else invalid_arg ("Overhead.measure: " ^ label ^ " never finished booting")
  in
  let sizes = Lower.Layout.size_report compiled.image in
  { label;
    boot_cycles;
    text_bytes = List.assoc "text" sizes;
    data_bytes = List.assoc "data" sizes;
    bss_bytes = List.assoc "bss" sizes;
    total_bytes = List.assoc "total" sizes }

let all_rows () =
  List.map (fun (label, config) -> measure config ~label) configurations
