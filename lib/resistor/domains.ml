(* SCRAMBLE-CFI-flavoured scramble domains (post-paper; SCRAMBLE-CFI,
   arXiv:2303.03711).

   SCRAMBLE-CFI encrypts each function cluster with its own key so
   control flow escaping its cluster decodes to garbage. The IR-level
   analog here: functions are partitioned into keyed clusters, and a
   volatile domain register ({!domain_global}) must hold the current
   cluster's key.

   - every function entry (and every return) checks the register
     against its own cluster key and calls the {!Detect} handler on
     mismatch;
   - a *cross-domain* call is bracketed with XOR bridges:
     [D := D xor (key_src xor key_dst)] immediately before the call
     (so the callee's entry check sees its own key — but only when the
     call really came from [key_src]) and again after it returns.

   A glitch that diverts control into another cluster skips the bridge,
   so the register still holds the old cluster's key and the very next
   check in the new cluster fires. Cluster keys are distinct nonzero
   GF(2^8) elements derived from the master key, so every bridge
   constant is nonzero — there is no identity bridge to land on. *)

type report = {
  domains : (string * int) list;  (** function -> cluster index *)
  clusters : int;
  bridges : int;  (** cross-domain call sites bracketed *)
  checks_inserted : int;  (** entry + return checks *)
  key : int;
}

let domain_global = "__domains_D"
let default_key = 0xC3

(* Negative-control hook for the lint smoke: skip the entry/return
   checks (bridges stay), so the domain audit must flag every
   instrumented function. *)
let disable_checks = ref false

(* Distinct nonzero per-cluster keys: master * alpha^(d+1). *)
let cluster_key ~key d = Reedsolomon.Gf256.mul key (Reedsolomon.Gf256.exp (d + 1))

let bridge_fn = "__gr_domains_xor"

(* Runtime helpers ("__gr_" prefix) live outside the clusters: they are
   never partitioned, bridged or checked. *)
let is_runtime_helper fname =
  String.length fname >= 4 && String.sub fname 0 4 = "__gr"

(* Out-of-line [D := D xor b] so each bridge half is a single call with
   a compile-time constant instead of a 2-temp load/xor/store sequence
   (IR temps are single-assignment stack slots; frames are capped at
   255 slots in codegen). *)
let ensure_bridge_fn (m : Ir.modul) =
  if Ir.find_func m bridge_fn = None then begin
    let bld =
      Ir.Builder.create ~fname:bridge_fn ~params:[ "b" ] ~returns_value:false
    in
    let d = Ir.Builder.load ~volatile:true bld (Ir.Global domain_global) in
    let b = Ir.Builder.load bld (Ir.Local "b") in
    let next = Ir.Builder.binop bld Ir.Xor d b in
    Ir.Builder.store ~volatile:true bld (Ir.Global domain_global) next;
    Ir.Builder.ret bld None;
    m.funcs <- m.funcs @ [ Ir.Builder.func bld ]
  end

(* Deterministic keyed partition: [main] anchors cluster 0, everything
   else lands by a key-mixed name hash. Cluster count scales with the
   module so small firmware still exercises cross-domain edges. *)
let partition ~key (m : Ir.modul) =
  let named =
    List.filter (fun (f : Ir.func) -> not (is_runtime_helper f.fname)) m.funcs
  in
  let n = List.length named in
  let clusters = if n <= 1 then max n 1 else min 4 ((n + 1) / 2) in
  let hash name =
    let h = ref key in
    String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFFFF) name;
    !h
  in
  let assign (f : Ir.func) =
    if f.fname = "main" then (f.fname, 0)
    else (f.fname, hash f.fname mod clusters)
  in
  (List.map assign named, clusters)

let instrument_function ~key domains (f : Ir.func) =
  let own = List.assoc f.fname domains in
  let own_key = cluster_key ~key own in
  let fresh = Pass.fresh_for f in
  let bridges = ref 0 and checks = ref 0 in
  (* Split-off return blocks are spliced in right after the Ret block
     they serve (appending at the end stretches branch spans and costs
     codegen relaxation stubs on big functions). *)
  let added : (string, Ir.block list) Hashtbl.t = Hashtbl.create 4 in
  let original = List.map (fun (b : Ir.block) -> b.label) f.blocks in
  let splice blocks =
    List.concat_map
      (fun (b : Ir.block) ->
        b :: (match Hashtbl.find_opt added b.Ir.label with Some l -> l | None -> []))
      blocks
  in
  (* 1. XOR bridges around cross-domain calls *)
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.concat_map
          (fun i ->
            match i with
            | Ir.Call { callee; _ } -> (
              match List.assoc_opt callee domains with
              | Some target when target <> own ->
                incr bridges;
                let bridge = own_key lxor cluster_key ~key target in
                let hop =
                  Ir.Call
                    { dst = None; callee = bridge_fn; args = [ Ir.Const bridge ] }
                in
                [ hop; i; hop ]
              | Some _ | None -> [ i ])
            | _ -> [ i ])
          b.instrs)
    f.blocks;
  if not !disable_checks then begin
    (* 2. return checks, split off the Ret like a sink *)
    List.iter
      (fun (b : Ir.block) ->
        match b.term with
        | Ir.Ret _ when List.mem b.Ir.label original ->
          incr checks;
          let ret_label = Pass.label fresh "domains.ret" in
          let bad_label = Pass.label fresh "domains.bad" in
          let t = Pass.temp fresh and v = Pass.temp fresh in
          Hashtbl.replace added b.Ir.label
            [ { Ir.label = ret_label; instrs = []; term = b.term };
              { Ir.label = bad_label;
                instrs =
                  [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
                term = Ir.Br ret_label } ];
          b.instrs <-
            b.instrs
            @ [ Ir.Load { dst = t; src = Ir.Global domain_global; volatile = true };
                Ir.Icmp
                  { dst = v; op = Ir.Eq; lhs = Ir.Temp t; rhs = Ir.Const own_key } ];
          b.term <-
            Ir.Cond_br { cond = Ir.Temp v; if_true = ret_label; if_false = bad_label }
        | _ -> ())
      f.blocks;
    (* 3. entry check becomes the new first block *)
    match f.blocks with
    | [] -> ()
    | entry :: _ ->
      incr checks;
      let check_label = Pass.label fresh "domains.entry" in
      let bad_label = Pass.label fresh "domains.bad" in
      let t = Pass.temp fresh and v = Pass.temp fresh in
      let check =
        { Ir.label = check_label;
          instrs =
            [ Ir.Load { dst = t; src = Ir.Global domain_global; volatile = true };
              Ir.Icmp
                { dst = v; op = Ir.Eq; lhs = Ir.Temp t; rhs = Ir.Const own_key } ];
          term =
            Ir.Cond_br
              { cond = Ir.Temp v; if_true = entry.Ir.label; if_false = bad_label } }
      in
      let bad =
        { Ir.label = bad_label;
          instrs =
            [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
          term = Ir.Br entry.Ir.label }
      in
      f.blocks <- check :: bad :: splice f.blocks;
      Hashtbl.reset added
  end;
  f.blocks <- splice f.blocks;
  (!bridges, !checks)

let run ?(key = default_key) reaction (m : Ir.modul) =
  if key <= 0 || key > 0xFF then invalid_arg "Domains.run: key must be in 1..255";
  Detect.ensure reaction m;
  let domains, clusters = partition ~key m in
  let init =
    match List.assoc_opt "main" domains with
    | Some d -> cluster_key ~key d
    | None -> cluster_key ~key 0
  in
  (match Ir.find_global m domain_global with
  | Some _ -> ()
  | None ->
    m.globals <-
      m.globals
      @ [ { Ir.gname = domain_global; init; volatile = true; sensitive = false } ]);
  ensure_bridge_fn m;
  let bridges = ref 0 and checks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if not (is_runtime_helper f.fname) then begin
        let b, c = instrument_function ~key domains f in
        bridges := !bridges + b;
        checks := !checks + c
      end)
    m.funcs;
  Pass.verify_or_fail "domains" m;
  { domains; clusters; bridges = !bridges; checks_inserted = !checks; key }
