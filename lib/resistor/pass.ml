type fresh = { mutable next_temp : int; mutable next_label : int }

(* Labels already added by earlier passes look like "gr.<hint>.<n>";
   resume the counter above any existing suffix so passes compose. *)
let next_free_label_index (f : Ir.func) =
  List.fold_left
    (fun acc (b : Ir.block) ->
      match String.rindex_opt b.label '.' with
      | Some i when String.length b.label > 3 && String.sub b.label 0 3 = "gr." -> (
        match
          int_of_string_opt
            (String.sub b.label (i + 1) (String.length b.label - i - 1))
        with
        | Some n -> max acc (n + 1)
        | None -> acc)
      | Some _ | None -> acc)
    0 f.blocks

let fresh_for (f : Ir.func) =
  { next_temp = Ir.max_temp f + 1; next_label = next_free_label_index f }

let temp fresh =
  let t = fresh.next_temp in
  fresh.next_temp <- t + 1;
  t

let label fresh hint =
  let n = fresh.next_label in
  fresh.next_label <- n + 1;
  Printf.sprintf "gr.%s.%d" hint n

let def_map (f : Ir.func) =
  let defs = Hashtbl.create 64 in
  Ir.iter_instrs f (fun _ i ->
      match i with
      | Ir.Load { dst; _ } | Ir.Binop { dst; _ } | Ir.Icmp { dst; _ }
      | Ir.Call { dst = Some dst; _ } -> Hashtbl.replace defs dst i
      | Ir.Store _ | Ir.Call { dst = None; _ } -> ());
  defs

type clone_result = {
  instrs : Ir.instr list;
  value : Ir.value;
  replicated : bool;
  reused : int list;
      (** temps reused verbatim because their computation cannot be
          replicated (volatile loads, call results, parameters); a
          consumer that must not trust a single spilled slot has to
          cross-validate these against a shadow *)
}

let max_clone_depth = 12

let clone_chain fresh defs root =
  let instrs = ref [] in
  let fully = ref true in
  let reused = ref [] in
  let reuse t =
    fully := false;
    if not (List.mem t !reused) then reused := t :: !reused;
    Ir.Temp t
  in
  let rec go depth (v : Ir.value) : Ir.value =
    match v with
    | Ir.Const _ -> v
    | Ir.Temp t -> (
      if depth > max_clone_depth then reuse t
      else
        match Hashtbl.find_opt defs t with
        | Some (Ir.Load { src; volatile = false; _ }) ->
          let dst = temp fresh in
          instrs := Ir.Load { dst; src; volatile = false } :: !instrs;
          Ir.Temp dst
        | Some (Ir.Binop { op; lhs; rhs; _ }) ->
          let lhs = go (depth + 1) lhs in
          let rhs = go (depth + 1) rhs in
          let dst = temp fresh in
          instrs := Ir.Binop { dst; op; lhs; rhs } :: !instrs;
          Ir.Temp dst
        | Some (Ir.Icmp { op; lhs; rhs; _ }) ->
          let lhs = go (depth + 1) lhs in
          let rhs = go (depth + 1) rhs in
          let dst = temp fresh in
          instrs := Ir.Icmp { dst; op; lhs; rhs } :: !instrs;
          Ir.Temp dst
        | Some (Ir.Load { volatile = true; _ })
        | Some (Ir.Call _)
        | Some (Ir.Store _)
        | None ->
          (* volatile data, side effects, or parameters-by-convention:
             reuse the already-computed value *)
          reuse t)
  in
  let value = go 0 root in
  { instrs = List.rev !instrs; value; replicated = !fully;
    reused = List.rev !reused }

(* Complemented shadow of a temp the cloner reused verbatim,
   materialized immediately after the temp's defining instruction so it
   is live wherever the temp is. A check block that reuses t can then
   verify [t lxor shadow = 0xFFFFFFFF] before trusting t's spilled
   slot: a single corrupted word that decodes into a frame store can
   overwrite one of the two slots, but cannot keep the pair
   complementary. Memoized in [shadows] so every edge instrumented over
   the same operand shares one shadow. Returns [None] for temps with no
   defining instruction (parameters-by-convention). *)
let shadow_for (f : Ir.func) fresh defs shadows t =
  match Hashtbl.find_opt shadows t with
  | Some sh -> Some sh
  | None -> (
    match Hashtbl.find_opt defs t with
    | None -> None
    | Some def ->
      let sh = temp fresh in
      let ins =
        Ir.Binop
          { dst = sh; op = Ir.Xor; lhs = Ir.Temp t; rhs = Ir.Const 0xFFFFFFFF }
      in
      let placed = ref false in
      List.iter
        (fun (b : Ir.block) ->
          if (not !placed) && List.memq def b.instrs then begin
            b.instrs <-
              List.concat_map
                (fun i -> if i == def then [ i; ins ] else [ i ])
                b.instrs;
            placed := true
          end)
        f.blocks;
      if !placed then begin
        Hashtbl.replace shadows t sh;
        Some sh
      end
      else None)

(* Non-fatal verifier findings (Ir.Verify.lint) accumulated across the
   passes of one compile; the driver drains them into its reports. *)
let pending_warnings : (string * Ir.Verify.violation) list ref = ref []

let reset_warnings () = pending_warnings := []
let drain_warnings () =
  let ws = List.rev !pending_warnings in
  pending_warnings := [];
  ws

let collect_warnings pass_name m =
  List.iter
    (fun (v : Ir.Verify.violation) ->
      let seen =
        List.exists
          (fun (_, (v' : Ir.Verify.violation)) ->
            v'.func = v.func && v'.message = v.message)
          !pending_warnings
      in
      if not seen then pending_warnings := (pass_name, v) :: !pending_warnings)
    (Ir.Verify.lint m)

let verify_or_fail pass_name m =
  (match Ir.Verify.modul m with
  | [] -> ()
  | violations ->
    invalid_arg
      (Fmt.str "GlitchResistor pass %s broke the module:@ %a" pass_name
         Fmt.(list ~sep:cut Ir.Verify.pp_violation)
         violations));
  collect_warnings pass_name m
