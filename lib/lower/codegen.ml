module I = Thumb.Instr
module R = Thumb.Reg

type compiled = {
  name : string;
  words : int array;
  exports : (string * int) list;
  bl_relocs : (int * string) list;
  word_relocs : (int * string) list;
}

type error = { func : string; message : string }

exception Error of error

let pp_error ppf { func; message } = Fmt.pf ppf "%s: %s" func message

let gpio_trigger_address = 0x48000028

let intrinsics = [ "__halt"; "__trigger_high"; "__trigger_low" ]

type lit = Lconst of int | Lglobal of string

type item =
  | Ins of I.t
  | Label of string
  | Bcond of I.cond * string
  | Bto of string
  | Bl_sym of string
  | Load_lit of R.t * lit
  | Pool of lit list
      (** a literal-pool island; padded to word alignment when placed *)

(* [Pool] length excludes the alignment pad, which depends on where the
   island lands — the offset fold in [resolve] accounts for it. *)
let item_halfwords = function
  | Ins _ | Bcond _ | Bto _ | Load_lit _ -> 1
  | Label _ -> 0
  | Bl_sym _ -> 2
  | Pool lits -> 2 * List.length lits

type ctx = {
  fn : Ir.func;
  mutable items : item list;  (** reversed *)
  slot_of_local : (string, int) Hashtbl.t;
  temp_base : int;  (** slot index of temp 0 *)
  nslots : int;
  mutable next_label : int;
}

let fail ctx fmt =
  Fmt.kstr (fun message -> raise (Error { func = ctx.fn.Ir.fname; message })) fmt

let emit ctx item = ctx.items <- item :: ctx.items
let ins ctx i = emit ctx (Ins i)

let local_label ctx hint =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf ".%s.%s.%d" ctx.fn.Ir.fname hint n

let block_label ctx l = Printf.sprintf ".%s.%s" ctx.fn.Ir.fname l

let slot_of_temp ctx t = ctx.temp_base + t

let slot_offset ctx slot =
  if slot < 0 || slot > 255 then fail ctx "stack frame too large (slot %d)" slot;
  slot

(* ldr/str rd, [sp, #4*slot] *)
let load_slot ctx rd slot =
  ins ctx (I.Mem_sp { load = true; rd; imm = slot_offset ctx slot })

let store_slot ctx rd slot =
  ins ctx (I.Mem_sp { load = false; rd; imm = slot_offset ctx slot })

(* Materialise a 32-bit constant into rd. *)
let load_const ctx rd v =
  let v = Ir.mask32 v in
  if v <= 255 then ins ctx (I.Imm (I.MOVi, rd, v))
  else if Ir.mask32 (lnot v) <= 255 then begin
    (* small negated constants: movs + mvns *)
    ins ctx (I.Imm (I.MOVi, rd, Ir.mask32 (lnot v)));
    ins ctx (I.Alu (I.MVN, rd, rd))
  end
  else emit ctx (Load_lit (rd, Lconst v))

(* Load an IR value into rd. *)
let load_value ctx rd (v : Ir.value) =
  match v with
  | Ir.Const c -> load_const ctx rd c
  | Ir.Temp t -> load_slot ctx rd (slot_of_temp ctx t)

let global_addr ctx rd name = emit ctx (Load_lit (rd, Lglobal name))

let cond_of_icmp (op : Ir.icmp) : I.cond =
  match op with
  | Ir.Eq -> I.EQ
  | Ir.Ne -> I.NE
  | Ir.Slt -> I.LT
  | Ir.Sle -> I.LE
  | Ir.Sgt -> I.GT
  | Ir.Sge -> I.GE
  | Ir.Ult -> I.CC
  | Ir.Ule -> I.LS
  | Ir.Ugt -> I.HI
  | Ir.Uge -> I.CS

let select_instr ctx (i : Ir.instr) =
  match i with
  | Ir.Load { dst; src = Ir.Local name; _ } ->
    load_slot ctx R.r2 (Hashtbl.find ctx.slot_of_local name);
    store_slot ctx R.r2 (slot_of_temp ctx dst)
  | Ir.Load { dst; src = Ir.Global g; _ } ->
    global_addr ctx R.r3 g;
    ins ctx (I.Mem_imm { load = true; byte = false; rd = R.r2; rb = R.r3; imm = 0 });
    store_slot ctx R.r2 (slot_of_temp ctx dst)
  | Ir.Store { dst = Ir.Local name; src; _ } ->
    load_value ctx R.r2 src;
    store_slot ctx R.r2 (Hashtbl.find ctx.slot_of_local name)
  | Ir.Store { dst = Ir.Global g; src; _ } ->
    load_value ctx R.r2 src;
    global_addr ctx R.r3 g;
    ins ctx (I.Mem_imm { load = false; byte = false; rd = R.r2; rb = R.r3; imm = 0 })
  | Ir.Binop { dst; op = Ir.Sdiv | Ir.Srem as op; lhs; rhs } ->
    load_value ctx R.r0 lhs;
    load_value ctx R.r1 rhs;
    emit ctx (Bl_sym (if op = Ir.Sdiv then "__idiv" else "__irem"));
    store_slot ctx R.r0 (slot_of_temp ctx dst)
  | Ir.Binop { dst; op; lhs; rhs } ->
    load_value ctx R.r2 lhs;
    load_value ctx R.r3 rhs;
    (match op with
    | Ir.Add ->
      ins ctx
        (I.Add_sub { sub = false; imm = false; rd = R.r2; rs = R.r2;
                     operand = R.to_int R.r3 })
    | Ir.Sub ->
      ins ctx
        (I.Add_sub { sub = true; imm = false; rd = R.r2; rs = R.r2;
                     operand = R.to_int R.r3 })
    | Ir.Mul -> ins ctx (I.Alu (I.MUL, R.r2, R.r3))
    | Ir.And -> ins ctx (I.Alu (I.AND, R.r2, R.r3))
    | Ir.Or -> ins ctx (I.Alu (I.ORR, R.r2, R.r3))
    | Ir.Xor -> ins ctx (I.Alu (I.EOR, R.r2, R.r3))
    | Ir.Shl -> ins ctx (I.Alu (I.LSLr, R.r2, R.r3))
    | Ir.Lshr -> ins ctx (I.Alu (I.LSRr, R.r2, R.r3))
    | Ir.Ashr -> ins ctx (I.Alu (I.ASRr, R.r2, R.r3))
    | Ir.Sdiv | Ir.Srem -> assert false);
    store_slot ctx R.r2 (slot_of_temp ctx dst)
  | Ir.Icmp { dst; op; lhs; rhs } ->
    load_value ctx R.r2 lhs;
    load_value ctx R.r3 rhs;
    ins ctx (I.Alu (I.CMPr, R.r2, R.r3));
    let l_true = local_label ctx "true" in
    let l_done = local_label ctx "done" in
    emit ctx (Bcond (cond_of_icmp op, l_true));
    ins ctx (I.Imm (I.MOVi, R.r2, 0));
    emit ctx (Bto l_done);
    emit ctx (Label l_true);
    ins ctx (I.Imm (I.MOVi, R.r2, 1));
    emit ctx (Label l_done);
    store_slot ctx R.r2 (slot_of_temp ctx dst)
  | Ir.Call { dst; callee = "__halt"; args = [] } ->
    ins ctx (I.Bkpt 0);
    ignore dst
  | Ir.Call { dst = _; callee = "__trigger_high"; args = [] } ->
    global_addr ctx R.r3 "__gpio";
    ins ctx (I.Imm (I.MOVi, R.r2, 1));
    ins ctx (I.Mem_imm { load = false; byte = false; rd = R.r2; rb = R.r3; imm = 0 })
  | Ir.Call { dst = _; callee = "__trigger_low"; args = [] } ->
    global_addr ctx R.r3 "__gpio";
    ins ctx (I.Imm (I.MOVi, R.r2, 0));
    ins ctx (I.Mem_imm { load = false; byte = false; rd = R.r2; rb = R.r3; imm = 0 })
  | Ir.Call { dst; callee; args } ->
    if List.length args > 4 then
      fail ctx "call to %s: more than 4 arguments" callee;
    List.iteri (fun idx arg -> load_value ctx (R.of_int idx) arg) args;
    emit ctx (Bl_sym callee);
    (match dst with
    | Some d -> store_slot ctx R.r0 (slot_of_temp ctx d)
    | None -> ())

let select_terminator ctx epilogue (t : Ir.terminator) =
  match t with
  | Ir.Br l -> emit ctx (Bto (block_label ctx l))
  | Ir.Cond_br { cond; if_true; if_false } ->
    (* The conditional branch only hops over the unconditional one, so
       it can never go out of the 8-bit range no matter how large the
       (defense-instrumented) function grows. *)
    load_value ctx R.r2 cond;
    ins ctx (I.Imm (I.CMPi, R.r2, 0));
    let skip = local_label ctx "condbr" in
    emit ctx (Bcond (I.EQ, skip));
    emit ctx (Bto (block_label ctx if_true));
    emit ctx (Label skip);
    emit ctx (Bto (block_label ctx if_false))
  | Ir.Switch { value; cases; default } ->
    (* compare-and-branch chain (a jump table needs writable literal
       pools per case; the chain keeps codegen simple and the timing
       model honest) *)
    load_value ctx R.r2 value;
    List.iter
      (fun (k, label) ->
        load_const ctx R.r3 k;
        ins ctx (I.Alu (I.CMPr, R.r2, R.r3));
        let skip = local_label ctx "case" in
        emit ctx (Bcond (I.NE, skip));
        emit ctx (Bto (block_label ctx label));
        emit ctx (Label skip))
      cases;
    emit ctx (Bto (block_label ctx default))
  | Ir.Ret v ->
    Option.iter (fun v -> load_value ctx R.r0 v) v;
    emit ctx (Bto epilogue)
  | Ir.Unreachable -> ins ctx (I.Bkpt 0xFF)

(* Stack adjustments larger than the 7-bit immediate are split. *)
let sp_adjust ctx words =
  let rec go remaining =
    if remaining <> 0 then begin
      let step = if remaining > 0 then min remaining 127 else max remaining (-127) in
      ins ctx (I.Sp_adjust step);
      go (remaining - step)
    end
  in
  go words

(* --- resolution: items -> words ------------------------------------------ *)

(* [ldr rd, [pc, #imm]] reaches at most 1020 bytes forward, so a single
   end-of-function pool breaks once a function outgrows ~1KB — which
   defense instrumentation makes routine (randomized differential
   testing first hit the limit on a Branches+Loops+Integrity build).
   Pending literals are therefore flushed into mid-function islands at
   any point no conditional hop spans: after an unconditional branch
   the island sits in dead space, anywhere else a branch over it is
   emitted first. The trigger charges the island's own size against
   the 510-halfword reach, so the oldest use still reaches the last
   entry. Functions whose every load stays within reach of the final
   pool keep the old single-pool layout bit for bit. *)
let flush_limit = 450 (* halfwords: use-to-flush distance + island size *)

let insert_pools ctx items =
  let out = ref [] in
  let off = ref 0 in
  let pending = ref [] in (* literals in first-use order *)
  let first_use = ref 0 in
  let open_bconds = ref [] in
  let prev_bto = ref true (* nothing falls into the function head *) in
  let flush () =
    if !pending <> [] then begin
      if not !prev_bto then begin
        let skip = local_label ctx "pool" in
        out := Pool !pending :: Bto skip :: !out;
        off := !off + 1;
        out := Label skip :: !out
      end
      else out := Pool !pending :: !out;
      off := !off + (!off land 1) + (2 * List.length !pending);
      pending := []
    end
  in
  List.iter
    (fun item ->
      if
        !open_bconds = []
        && !off - !first_use + (2 * List.length !pending) > flush_limit
      then flush ();
      (match item with
      | Bcond (_, l) -> open_bconds := l :: !open_bconds
      | Label l -> open_bconds := List.filter (fun l' -> l' <> l) !open_bconds
      | Load_lit (_, lit) ->
        if not (List.mem lit !pending) then begin
          if !pending = [] then first_use := !off;
          pending := !pending @ [ lit ]
        end
      | Ins _ | Bto _ | Bl_sym _ | Pool _ -> ());
      prev_bto := (match item with Bto _ -> true | _ -> false);
      out := item :: !out;
      off := !off + item_halfwords item)
    items;
  prev_bto := true (* past the epilogue: nothing falls through *);
  flush ();
  List.rev !out

(* halfword offset after placing [item] at [off] (pools pad to words) *)
let advance off = function
  | Pool lits -> off + (off land 1) + (2 * List.length lits)
  | item -> off + item_halfwords item

let resolve ctx =
  let layout items =
    let offsets = Hashtbl.create 64 in
    let islands = ref [] in (* (lit, entry halfword offset) in image order *)
    let total_len =
      List.fold_left
        (fun off item ->
          match item with
          | Label l ->
            if Hashtbl.mem offsets l then fail ctx "duplicate label %s" l;
            Hashtbl.add offsets l off;
            off
          | Pool lits ->
            let start = off + (off land 1) in
            List.iteri
              (fun i lit -> islands := (lit, start + (2 * i)) :: !islands)
              lits;
            start + (2 * List.length lits)
          | Ins _ | Bcond _ | Bto _ | Bl_sym _ | Load_lit _ ->
            off + item_halfwords item)
        0 items
    in
    (offsets, List.rev !islands, total_len)
  in
  (* Branch relaxation: the unconditional B reaches ±1024 halfwords, and
     an instrumented function can outgrow that (found, like the pool
     limit, by randomized differential testing).  An out-of-range branch
     is split through a trampoline stub placed at a no-fallthrough point
     inside the span, iterating until every branch is in range. *)
  let stubs = ref 0 in
  let rec relax items attempt =
    let offsets, islands, total_len = layout items in
    let target l =
      match Hashtbl.find_opt offsets l with
      | Some off -> off
      | None -> fail ctx "unresolved label %s" l
    in
    let bad = ref None in
    let off = ref 0 in
    List.iteri
      (fun i item ->
        (match item with
        | Bto l when !bad = None ->
          let d = target l - (!off + 2) in
          if d < -1024 || d > 1023 then bad := Some (i, !off, l, target l)
        | _ -> ());
        off := advance !off item)
      items;
    match !bad with
    | None -> (items, offsets, islands, total_len)
    | Some (bad_idx, boff, l, toff) ->
      (* Every out-of-range branch may need its own stub (and a stub's
         own branch may need one more), so the give-up cap scales with
         the branch count instead of a flat constant — a heavily
         instrumented function can legitimately need hundreds. *)
      let cap =
        64
        + 2
          * List.length
              (List.filter (function Bto _ -> true | _ -> false) items)
      in
      if attempt >= cap then
        fail ctx "branch to %s out of range (%d halfwords, unable to relax)" l
          (toff - (boff + 2));
      let lo = min boff toff and hi = max boff toff in
      let mid = (boff + toff) / 2 in
      (* candidate stub sites: after an unconditional branch, no
         conditional hop spanning the point, strictly inside the span *)
      let best = ref None in
      let off = ref 0 in
      let open_bconds = ref [] in
      let prev_bto = ref false in
      List.iteri
        (fun i item ->
          if !prev_bto && !open_bconds = [] && !off > lo && !off < hi then begin
            let better =
              match !best with
              | None -> true
              | Some (_, o) -> abs (!off - mid) < abs (o - mid)
            in
            if better then best := Some (i, !off)
          end;
          (match item with
          | Bcond (_, l') -> open_bconds := l' :: !open_bconds
          | Label l' -> open_bconds := List.filter (fun x -> x <> l') !open_bconds
          | Ins _ | Bto _ | Bl_sym _ | Load_lit _ | Pool _ -> ());
          prev_bto := (match item with Bto _ -> true | _ -> false);
          off := advance !off item)
        items;
      (match !best with
      | None ->
        fail ctx "branch to %s out of range (%d halfwords)" l (toff - (boff + 2))
      | Some (ins_idx, _) ->
        incr stubs;
        let sl = Printf.sprintf ".%s.stub.%d" ctx.fn.Ir.fname !stubs in
        let items =
          List.concat
            (List.mapi
               (fun i item ->
                 if i = bad_idx then [ Bto sl ]
                 else if i = ins_idx then [ Label sl; Bto l; item ]
                 else [ item ])
               items)
        in
        relax items (attempt + 1))
  in
  let items, offsets, islands, total_len =
    relax (insert_pools ctx (List.rev ctx.items)) 0
  in
  let words = Array.make total_len 0 in
  let bl_relocs = ref [] and word_relocs = ref [] in
  let target l =
    match Hashtbl.find_opt offsets l with
    | Some off -> off
    | None -> fail ctx "unresolved label %s" l
  in
  let cursor = ref 0 in
  let put i =
    words.(!cursor) <- Thumb.Encode.instr i;
    incr cursor
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Ins i -> put i
      | Bcond (cond, l) ->
        let off = target l - (!cursor + 2) in
        if off < -128 || off > 127 then
          fail ctx "conditional branch to %s out of range (%d halfwords)" l off;
        put (I.B_cond (cond, off))
      | Bto l ->
        let off = target l - (!cursor + 2) in
        if off < -1024 || off > 1023 then
          fail ctx "branch to %s out of range (%d halfwords)" l off;
        put (I.B off)
      | Bl_sym sym ->
        bl_relocs := (!cursor, sym) :: !bl_relocs;
        put (I.Bl_hi 0);
        put (I.Bl_lo 0)
      | Load_lit (rd, lit) ->
        let entry =
          match
            List.find_opt (fun (l, e) -> l = lit && e > !cursor) islands
          with
          | Some (_, e) -> e
          | None -> fail ctx "no literal pool entry after offset %d" !cursor
        in
        (* ldr rd, [pc, #imm]: base = (pc + 4) & ~3, pc = 2 * !cursor *)
        let base = ((2 * !cursor) + 4) land lnot 3 in
        let delta = (2 * entry) - base in
        if delta < 0 || delta > 1020 || delta land 3 <> 0 then
          fail ctx "literal pool out of range (delta %d)" delta;
        put (I.Ldr_pc (rd, delta / 4))
      | Pool lits ->
        if !cursor land 1 = 1 then incr cursor (* alignment pad stays zero *);
        List.iter
          (fun lit ->
            (match lit with
            | Lconst v ->
              words.(!cursor) <- v land 0xFFFF;
              words.(!cursor + 1) <- (v lsr 16) land 0xFFFF
            | Lglobal g -> word_relocs := (!cursor, g) :: !word_relocs);
            cursor := !cursor + 2)
          lits)
    items;
  (words, List.rev !bl_relocs, List.rev !word_relocs)

let func (m : Ir.modul) (f : Ir.func) =
  ignore m;
  let slot_of_local = Hashtbl.create 16 in
  List.iteri (fun idx name -> Hashtbl.replace slot_of_local name idx) f.Ir.locals;
  let nlocals = List.length f.Ir.locals in
  let ntemps = Ir.max_temp f + 1 in
  let ctx =
    { fn = f; items = []; slot_of_local; temp_base = nlocals;
      nslots = nlocals + ntemps; next_label = 0 }
  in
  if ctx.nslots > 255 then fail ctx "too many stack slots (%d)" ctx.nslots;
  let epilogue = local_label ctx "epilogue" in
  (* prologue *)
  ins ctx (I.Push { rlist = 1 lsl R.to_int R.r7; lr = true });
  sp_adjust ctx (-ctx.nslots);
  List.iteri
    (fun idx param ->
      if idx > 3 then fail ctx "more than 4 parameters";
      store_slot ctx (R.of_int idx) (Hashtbl.find slot_of_local param))
    f.Ir.params;
  (* body *)
  List.iter
    (fun (b : Ir.block) ->
      emit ctx (Label (block_label ctx b.label));
      List.iter (select_instr ctx) b.instrs;
      select_terminator ctx epilogue b.term)
    f.Ir.blocks;
  (* epilogue *)
  emit ctx (Label epilogue);
  sp_adjust ctx ctx.nslots;
  ins ctx (I.Pop { rlist = 1 lsl R.to_int R.r7; pc = true });
  let words, bl_relocs, word_relocs = resolve ctx in
  { name = f.Ir.fname;
    words;
    exports = [ (f.Ir.fname, 0) ];
    bl_relocs;
    word_relocs }
