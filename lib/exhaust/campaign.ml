open Machine

(* The trace-wide exhaustive fault injector (ARMORY-style): every
   (cycle, fault model, mask) along a firmware execution is an
   injection point. The snapshot-replay idea from the hardware leg
   generalizes: run the pristine baseline once, then at each cycle
   perturb the fetched word, run the consequences, and rewind. Pruning
   lifts the per-word sweep memo to whole-machine states: the verdict
   of a continuation is a pure function of the machine state right
   after the faulted fetch executes (plus the fixed settle budget), so
   identical post-fault states share one continuation through a
   Runtime.Keymap keyed on canonical State keys. *)

(* --- verdicts ----------------------------------------------------------- *)

type verdict =
  | No_effect  (** indistinguishable from the pristine baseline *)
  | Detected  (** the firmware's detection counter fired *)
  | Silent  (** terminated, but with divergent final state *)
  | Hang  (** still running after the settle budget; baseline finished *)
  | Trap
  | Bad_read
  | Bad_write
  | Bad_fetch
  | Invalid  (** the perturbed word faulted at the injected fetch *)

let verdicts =
  [ No_effect; Detected; Silent; Hang; Trap; Bad_read; Bad_write; Bad_fetch;
    Invalid ]

let verdict_name = function
  | No_effect -> "No Effect"
  | Detected -> "Detected"
  | Silent -> "Silent Corruption"
  | Hang -> "Hang"
  | Trap -> "Trap"
  | Bad_read -> "Bad Read"
  | Bad_write -> "Bad Write"
  | Bad_fetch -> "Bad Fetch"
  | Invalid -> "Invalid Instruction"

let verdict_index = function
  | No_effect -> 0
  | Detected -> 1
  | Silent -> 2
  | Hang -> 3
  | Trap -> 4
  | Bad_read -> 5
  | Bad_write -> 6
  | Bad_fetch -> 7
  | Invalid -> 8

(* Verdict tables are 16 wide so a custom classifier (e.g. the Campaign
   category space in the differential tests) fits without resizing. *)
let nverdicts = 16

(* --- targets ------------------------------------------------------------ *)

type spec = {
  name : string;
  code : bytes;  (** flash contents, loaded at [flash_base] *)
  flash_base : int;
  flash_size : int;
  rams : (int * int) list;  (** additional RAM regions: (base, size) *)
  data_init : (int * int) list;  (** word address, initial value *)
  entry : int;
  stack_top : int;
  symbols : (string * int) list;  (** function symbol -> byte address *)
  detect_addr : int option;  (** the firmware's detection counter, if any *)
}

let detect_counter_global = "__gr_detect_count"

let bytes_of_words words =
  let b = Bytes.create (2 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_uint16_le b (2 * i) (w land 0xFFFF)) words;
  b

(* The full STM32 shape the hardware leg boots: 128K flash, 16K SRAM,
   plus a plain RAM page standing in for the GPIO block so firmware
   calling __trigger_high() stores instead of faulting (a plain page,
   unlike Hw.Board's device, keeps every store journal-visible). *)
let gpio_base = 0x48000000

let spec_of_image ?(name = "image") (image : Lower.Layout.image) =
  { name;
    code = bytes_of_words image.words;
    flash_base = Lower.Layout.text_base;
    flash_size = 0x20000;
    rams = [ (Lower.Layout.sram_base, Lower.Layout.sram_size); (gpio_base, 0x1000) ];
    data_init = image.data_init;
    entry = image.entry;
    stack_top = image.stack_top;
    symbols = image.symbols;
    detect_addr = List.assoc_opt detect_counter_global image.global_addrs }

(* The Campaign-compatible snippet shape: tiny flash and SRAM, stack at
   the top — identical constants to Glitch_emu.Campaign so differential
   tests can compare bit-for-bit. *)
let spec_of_case (case : Glitch_emu.Testcase.t) =
  let flash_base = 0x08000000 and sram_base = 0x20000000 in
  { name = case.name;
    code = Thumb.Encode.to_bytes case.instrs;
    flash_base;
    flash_size = 0x400;
    rams = [ (sram_base, 0x400) ];
    data_init = [];
    entry = flash_base;
    stack_top = sram_base + 0x400 - 16;
    symbols = [ (case.name, flash_base) ];
    detect_addr = None }

let make_rig spec =
  let mem = Memory.create () in
  Memory.map mem ~addr:spec.flash_base ~size:spec.flash_size;
  List.iter (fun (addr, size) -> Memory.map mem ~addr ~size) spec.rams;
  Memory.load_bytes mem ~addr:spec.flash_base spec.code;
  List.iter (fun (addr, v) -> Memory.write_u32_exn mem addr v) spec.data_init;
  let cpu = Cpu.create ~sp:spec.stack_top ~pc:spec.entry () in
  State.seal ~mem ~cpu

(* --- configuration ------------------------------------------------------ *)

type mode = Transient | Persistent

type config = {
  models : Glitch_emu.Fault_model.flip list;
  weights : int list;  (** bit-flip weights per model *)
  mode : mode;
  zero_is_invalid : bool;
  max_trace : int;  (** baseline budget = the injection window *)
  settle_steps : int option;  (** continuation budget; [None] = auto *)
  cycles : (int * int) option;  (** restrict injection to [lo, hi) *)
  classify : (Cpu.t -> Exec.stop -> int) option;
      (** override the built-in taxonomy; must return values in
          [0, nverdicts) and be a pure function of the final machine
          state (it participates in state sharing) *)
  prune : bool;  (** [false] = the unpruned reference oracle *)
  static_prune : bool;
      (** prove continuations statically (Absint.Prune) before running
          or sharing them; transient mode, built-in classifier only *)
  keep_points : bool;  (** retain the per-point verdict array *)
}

let default_config () =
  { models = Glitch_emu.Fault_model.[ And; Or; Xor ];
    weights = [ 1; 2 ];
    mode = Transient;
    zero_is_invalid = false;
    max_trace = 2048;
    settle_steps = None;
    cycles = None;
    classify = None;
    prune = true;
    static_prune = false;
    keep_points = false }

let mode_name = function Transient -> "transient" | Persistent -> "persistent"

(* The per-cycle point list: (model, flipped bit-set, model mask), in a
   fixed order (models, then weights, then bit-sets ascending) shared
   by the verdict array and the counters. For And the mask that flips
   bit-set [s] is its complement (And clears the de-selected bits), so
   weights enumerate actual flip widths uniformly across models. *)
let enum_points config =
  List.concat_map
    (fun model ->
      List.concat_map
        (fun weight ->
          Glitch_emu.Bitmask.of_weight ~width:16 ~weight
          |> List.map (fun bits ->
                 let mask =
                   match model with
                   | Glitch_emu.Fault_model.And -> lnot bits land 0xFFFF
                   | Glitch_emu.Fault_model.Or | Glitch_emu.Fault_model.Xor ->
                     bits
                 in
                 (model, bits, mask)))
        config.weights)
    config.models
  |> Array.of_list

(* --- baseline ----------------------------------------------------------- *)

(* One pristine step: Campaign.run_to_stop's body (fetch through the
   unboxed path and the shared pre-decoded table, optional fetched-zero
   trap), as a single reusable step. *)
let exec_step ~zero_is_invalid mem cpu =
  match Memory.read_u16_exn mem (Cpu.pc cpu) with
  | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
    Exec.Stopped (Exec.Bad_fetch a)
  | 0 when zero_is_invalid -> Exec.Stopped (Exec.Invalid_instruction 0)
  | w -> Exec.execute mem cpu Thumb.Decode.table.(w)

type trace = {
  steps : (int * int) array;  (** (pc, fetched word) per executed cycle *)
  baseline_stop : Exec.stop option;  (** [None]: still running at max_trace *)
  final_key : string;  (** state key at the stop (terminating only) *)
  final_det : int;  (** detection count at the end of the trace *)
  state_keys : string array;  (** key of S_(k+1) after each cycle k *)
  settle : int;
}

let read_det mem = function
  | None -> 0
  | Some a -> ( match Memory.read_u32 mem a with Ok v -> v | Error _ -> 0)

(* Run the pristine baseline once, recording each cycle's (pc, word)
   and the canonical state key after it. The keys seed the shared map
   (below) and anchor the parallel workers' fast-forward. *)
let run_baseline spec config =
  let rig = make_rig spec in
  let mem = State.mem rig and cpu = State.cpu rig in
  let steps = ref [] and keys = ref [] and n = ref 0 in
  let stop = ref None in
  while !n < config.max_trace && !stop = None do
    let pc = Cpu.pc cpu in
    match Memory.read_u16_exn mem pc with
    | exception Memory.Fault (Memory.Unmapped a | Memory.Unaligned a) ->
      stop := Some (Exec.Bad_fetch a)
    | 0 when config.zero_is_invalid ->
      stop := Some (Exec.Invalid_instruction 0)
    | w ->
      steps := (pc, w) :: !steps;
      incr n;
      (match Exec.execute mem cpu Thumb.Decode.table.(w) with
      | Exec.Running -> ()
      | Exec.Stopped s -> stop := Some s);
      keys := State.key rig :: !keys
  done;
  let nsteps = !n in
  let settle =
    match config.settle_steps with
    | Some s -> s
    | None -> (
      match !stop with
      | Some _ -> nsteps + 64  (* enough for any rejoin to finish *)
      | None -> min 2048 config.max_trace)
  in
  ( rig,
    { steps = Array.of_list (List.rev !steps);
      baseline_stop = !stop;
      final_key = (match !stop with Some _ -> State.key rig | None -> "");
      final_det = read_det mem spec.detect_addr;
      state_keys = Array.of_list (List.rev !keys);
      settle } )

(* --- classification ----------------------------------------------------- *)

(* The built-in taxonomy compares the settled continuation against the
   baseline: a crash classifies by its stop; otherwise detection wins;
   otherwise the run is No_effect exactly when it reproduces the
   baseline's behaviour (same stop and same final state for a
   terminating baseline; still running, like the baseline, for a
   non-terminating one). Everything here is a function of the final
   machine state and the per-run constants, which is what state sharing
   requires. *)
let classify_end tr detect_addr classify rig (s : Exec.stop) =
  match classify with
  | Some f -> f (State.cpu rig) s
  | None ->
    verdict_index
      (match s with
      | Exec.Swi_trap _ -> Trap
      | Exec.Bad_read _ -> Bad_read
      | Exec.Bad_write _ -> Bad_write
      | Exec.Bad_fetch _ -> Bad_fetch
      | Exec.Invalid_instruction _ -> Invalid
      | Exec.Breakpoint _ | Exec.Step_limit -> (
        if read_det (State.mem rig) detect_addr > 0 then Detected
        else
          match tr.baseline_stop with
          | Some bs ->
            if Exec.stop_equal s bs && String.equal (State.key rig) tr.final_key
            then No_effect
            else if s = Exec.Step_limit then Hang
            else Silent
          | None -> if s = Exec.Step_limit then No_effect else Silent))

(* Baseline-state seeding: the post-fault state of a do-nothing
   perturbation (and of any perturbation whose damage cancels) is a
   baseline state S_(k+1), whose continuation verdict we already know
   without running it — provided the settle budget provably covers it:
   - terminating baseline: the continuation rejoins and finishes like
     the baseline iff settle >= remaining steps; its verdict is the
     baseline end's own classification;
   - non-terminating baseline: if k+1+settle stays inside the traced
     window the continuation is a baseline replay that is still running
     at its budget, i.e. No_effect — but only for the built-in
     classifier (a custom one would need the state at k+1+settle) and
     only when the baseline never fired a detection. *)
let seed_baseline_states keymap tr detect_addr classify rig =
  let n = Array.length tr.state_keys in
  match tr.baseline_stop with
  | Some s ->
    let v = classify_end tr detect_addr classify rig s in
    for k = 0 to n - 1 do
      if tr.settle >= n - (k + 1) then Runtime.Keymap.add keymap tr.state_keys.(k) v
    done
  | None ->
    if classify = None && tr.final_det = 0 then
      for k = 0 to n - 1 do
        if k + 1 + tr.settle <= n then
          Runtime.Keymap.add keymap tr.state_keys.(k) (verdict_index No_effect)
      done

(* --- results ------------------------------------------------------------ *)

type row = { fname : string; faddr : int; counts : int array }

type result = {
  spec_name : string;
  mode : mode;
  trace_steps : int;
  baseline_stop : Exec.stop option;
  settle : int;
  cycle_lo : int;
  cycle_hi : int;
  points : int;
  faulted : int;  (** stopped at the injected step itself *)
  pruned : int;  (** continuations served by state-equivalence sharing *)
  executed : int;  (** continuations actually run *)
  static_pruned : int;
      (** continuations proven by the abstract fault-flow interpreter *)
  states : int;  (** distinct post-fault states (including seeds) *)
  rows : row list;  (** per-function verdict tables, address order *)
  totals : int array;
  verdicts : Bytes.t option;  (** per-point verdicts when [keep_points] *)
}

let prune_rate r =
  let den = r.pruned + r.executed in
  if den = 0 then 0. else float_of_int r.pruned /. float_of_int den

let baseline spec config =
  let _rig, tr = run_baseline spec config in
  (tr.steps, tr.baseline_stop)

let to_json r =
  let ints a =
    "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"
  in
  let row_json row =
    Printf.sprintf {|{"fname":"%s","faddr":%d,"counts":%s}|}
      (String.escaped row.fname) row.faddr (ints row.counts)
  in
  Printf.sprintf
    {|{"spec":"%s","mode":"%s","trace_steps":%d,"baseline_stop":%s,"settle":%d,"cycle_lo":%d,"cycle_hi":%d,"points":%d,"faulted":%d,"pruned":%d,"executed":%d,"static_pruned":%d,"states":%d,"prune_rate":%.6f,"verdict_names":[%s],"totals":%s,"rows":[%s]}|}
    (String.escaped r.spec_name) (mode_name r.mode) r.trace_steps
    (match r.baseline_stop with
    | None -> "null"
    | Some s -> Printf.sprintf "%S" (Fmt.str "%a" Exec.pp_stop s))
    r.settle r.cycle_lo r.cycle_hi r.points r.faulted r.pruned r.executed
    r.static_pruned r.states (prune_rate r)
    (String.concat ","
       (List.map (fun v -> "\"" ^ verdict_name v ^ "\"") verdicts))
    (ints r.totals)
    (String.concat "," (List.map row_json r.rows))

(* --- the injector ------------------------------------------------------- *)

type shared = {
  spec : spec;
  config : config;
  tr : trace;
  points_per_cycle : (Glitch_emu.Fault_model.flip * int * int) array;
  keymap : Runtime.Keymap.t;
  static_ctx : Absint.Prune.ctx option;
  sym_addrs : int array;  (** ascending *)
  sym_names : string array;
  cycle_lo : int;
  cycle_hi : int;
  verdicts : Bytes.t option;
}

let owner_index sh pc =
  (* nearest symbol at or below pc; 0 when below every symbol *)
  let lo = ref 0 and hi = ref (Array.length sh.sym_addrs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sh.sym_addrs.(mid) <= pc then lo := mid + 1 else hi := mid
  done;
  max 0 (!lo - 1)

type tally = {
  by_func : int array array;
  totals : int array;
  mutable faulted : int;
  mutable pruned : int;
  mutable executed : int;
  mutable static_pruned : int;
}

let make_tally sh =
  { by_func =
      Array.init (Array.length sh.sym_addrs) (fun _ -> Array.make nverdicts 0);
    totals = Array.make nverdicts 0;
    faulted = 0;
    pruned = 0;
    executed = 0;
    static_pruned = 0 }

let merge_tally dst src =
  Array.iteri
    (fun f row -> Array.iteri (fun v n -> row.(v) <- row.(v) + n) src.by_func.(f))
    dst.by_func;
  Array.iteri (fun v n -> dst.totals.(v) <- dst.totals.(v) + n) src.totals;
  dst.faulted <- dst.faulted + src.faulted;
  dst.pruned <- dst.pruned + src.pruned;
  dst.executed <- dst.executed + src.executed;
  dst.static_pruned <- dst.static_pruned + src.static_pruned

(* Run the continuation after an injected step until it stops or the
   settle budget runs out. *)
let settle_run ~zero_is_invalid ~settle mem cpu =
  let rec go remaining =
    if remaining = 0 then Exec.Step_limit
    else
      match exec_step ~zero_is_invalid mem cpu with
      | Exec.Running -> go (remaining - 1)
      | Exec.Stopped s -> s
  in
  go settle

(* Process every injection point of one cycle. [rig] must hold the
   baseline state S_k; it is returned in that same state. *)
let run_cycle sh tally rig scratch k =
  let config = sh.config in
  let zero_is_invalid = config.zero_is_invalid in
  let mem = State.mem rig and cpu = State.cpu rig in
  let pc, w = sh.tr.steps.(k) in
  let fidx = owner_index sh pc in
  let frow = tally.by_func.(fidx) in
  let m0 = State.mark rig in
  let flags = State.save_regs rig scratch in
  (* Same cycle + same perturbed word => same post-fault state: a
     per-cycle word table is the cheap front of the state-equivalence
     memo (it never reaches the machine at all). It remembers how the
     first occurrence was served — immediate fault (0), continuation
     (1), or static proof (2) — so the counters stay truthful. *)
  let word_memo : (int, int * int) Hashtbl.t = Hashtbl.create 128 in
  let memo_on = config.prune || config.static_prune in
  let npoints = Array.length sh.points_per_cycle in
  let base_index =
    match sh.verdicts with Some _ -> (k - sh.cycle_lo) * npoints | None -> 0
  in
  for p = 0 to npoints - 1 do
    let model, _bits, mask = sh.points_per_cycle.(p) in
    let w' = Glitch_emu.Fault_model.apply model ~mask w in
    let v =
      match if memo_on then Hashtbl.find_opt word_memo w' else None with
      | Some (v, kind) ->
        (if kind = 1 then tally.pruned <- tally.pruned + 1
         else if kind = 0 then tally.faulted <- tally.faulted + 1
         else tally.static_pruned <- tally.static_pruned + 1);
        v
      | None ->
        (* inject: execute w' in place of the fetched word *)
        let step =
          match config.mode with
          | Transient ->
            if w' = 0 && zero_is_invalid then
              Exec.Stopped (Exec.Invalid_instruction 0)
            else Exec.execute mem cpu Thumb.Decode.table.(w')
          | Persistent ->
            (* write the corruption to flash (journaled), then fetch it
               back: it persists for the continuation *)
            Memory.write_u16_exn mem pc w';
            exec_step ~zero_is_invalid mem cpu
        in
        let v, kind =
          match step with
          | Exec.Stopped s ->
            (* the injected step itself faulted; no continuation *)
            tally.faulted <- tally.faulted + 1;
            (classify_end sh.tr sh.spec.detect_addr config.classify rig s, 0)
          | Exec.Running -> (
            let static_v =
              match sh.static_ctx with
              | Some ctx ->
                Absint.Prune.prove ctx ~cycle:k ~base_key:sh.tr.state_keys.(k)
                  ~fault_key:(State.key rig)
              | None -> None
            in
            match static_v with
            | Some v ->
              tally.static_pruned <- tally.static_pruned + 1;
              (v, 2)
            | None ->
              if config.prune then begin
                let key = State.key rig in
                match Runtime.Keymap.find sh.keymap key with
                | Some v ->
                  tally.pruned <- tally.pruned + 1;
                  (v, 1)
                | None ->
                  let s =
                    settle_run ~zero_is_invalid ~settle:sh.tr.settle mem cpu
                  in
                  let v =
                    classify_end sh.tr sh.spec.detect_addr config.classify rig s
                  in
                  Runtime.Keymap.add sh.keymap key v;
                  tally.executed <- tally.executed + 1;
                  (v, 1)
              end
              else begin
                let s =
                  settle_run ~zero_is_invalid ~settle:sh.tr.settle mem cpu
                in
                tally.executed <- tally.executed + 1;
                ( classify_end sh.tr sh.spec.detect_addr config.classify rig s,
                  1 )
              end)
        in
        State.undo_to rig m0;
        State.restore_regs rig scratch flags;
        if memo_on then Hashtbl.replace word_memo w' (v, kind);
        v
    in
    frow.(v) <- frow.(v) + 1;
    tally.totals.(v) <- tally.totals.(v) + 1;
    match sh.verdicts with
    | Some b -> Bytes.set_uint8 b (base_index + p) v
    | None -> ()
  done

(* Drain a contiguous cycle chunk with a private rig: replay the
   pristine baseline to the chunk start, then alternate inject-and-scan
   with one pristine step. *)
let run_chunk sh tally (lo, hi) =
  let rig = make_rig sh.spec in
  let mem = State.mem rig and cpu = State.cpu rig in
  let scratch = Array.make 16 0 in
  for k = 0 to lo - 1 do
    let _, w = sh.tr.steps.(k) in
    ignore (Exec.execute mem cpu Thumb.Decode.table.(w))
  done;
  for k = lo to hi - 1 do
    run_cycle sh tally rig scratch k;
    let _, w = sh.tr.steps.(k) in
    ignore (Exec.execute mem cpu Thumb.Decode.table.(w))
  done

let run ?pool spec config =
  let rig, tr = run_baseline spec config in
  let nsteps = Array.length tr.steps in
  let cycle_lo, cycle_hi =
    match config.cycles with
    | None -> (0, nsteps)
    | Some (lo, hi) -> (max 0 lo, min nsteps hi)
  in
  let cycle_hi = max cycle_lo cycle_hi in
  let points_per_cycle = enum_points config in
  let npoints = Array.length points_per_cycle in
  let keymap = Runtime.Keymap.create () in
  if config.prune then
    seed_baseline_states keymap tr spec.detect_addr config.classify rig;
  (* The static pre-pruner needs the built-in classifier (it reasons
     about its verdicts) and transient injection (persistent corruption
     invalidates the decoded baseline instructions). *)
  let static_ctx =
    if config.static_prune && config.mode = Transient && config.classify = None
    then
      Some
        (Absint.Prune.create ~steps:tr.steps
           ~terminating:(tr.baseline_stop <> None)
           ~settle:tr.settle
           ~end_verdict:
             (match tr.baseline_stop with
             | Some s -> classify_end tr spec.detect_addr None rig s
             | None -> 0)
           ~no_effect_ok:(tr.final_det = 0)
           ~no_effect_verdict:(verdict_index No_effect) ())
    else None
  in
  let symbols =
    match List.sort (fun (_, a) (_, b) -> compare a b) spec.symbols with
    | [] -> [ (spec.name, spec.flash_base) ]
    | syms -> syms
  in
  let sh =
    { spec;
      config;
      tr;
      points_per_cycle;
      keymap;
      static_ctx;
      sym_addrs = Array.of_list (List.map snd symbols);
      sym_names = Array.of_list (List.map fst symbols);
      cycle_lo;
      cycle_hi;
      verdicts =
        (if config.keep_points then
           Some (Bytes.make ((cycle_hi - cycle_lo) * npoints) '\255')
         else None) }
  in
  let tally = make_tally sh in
  (match pool with
  | Some pool when Runtime.Pool.jobs pool > 1 && cycle_hi > cycle_lo ->
    let q =
      Runtime.Chunk.queue ~lo:cycle_lo ~hi:cycle_hi
        ~jobs:(Runtime.Pool.jobs pool) ()
    in
    let parts =
      Runtime.Pool.map_workers pool (fun _wid ->
          let t = make_tally sh in
          let rec drain () =
            match Runtime.Chunk.take q with
            | None -> ()
            | Some chunk ->
              run_chunk sh t chunk;
              drain ()
          in
          drain ();
          t)
    in
    List.iter (merge_tally tally) parts
  | _ -> if cycle_hi > cycle_lo then run_chunk sh tally (cycle_lo, cycle_hi));
  let rows =
    List.filteri
      (fun i _ -> Array.exists (fun n -> n > 0) tally.by_func.(i))
      (Array.to_list
         (Array.mapi
            (fun i counts ->
              { fname = sh.sym_names.(i); faddr = sh.sym_addrs.(i); counts })
            tally.by_func))
  in
  { spec_name = spec.name;
    mode = config.mode;
    trace_steps = nsteps;
    baseline_stop = tr.baseline_stop;
    settle = tr.settle;
    cycle_lo;
    cycle_hi;
    points = (cycle_hi - cycle_lo) * npoints;
    faulted = tally.faulted;
    pruned = tally.pruned;
    executed = tally.executed;
    static_pruned = tally.static_pruned;
    states = Runtime.Keymap.count keymap;
    rows;
    totals = tally.totals;
    verdicts = sh.verdicts }

(* --- persistence -------------------------------------------------------- *)

let code_version = "exhaust-v2"

let config_key_parts config =
  [ String.concat ","
      (List.map Glitch_emu.Fault_model.name config.models);
    String.concat "," (List.map string_of_int config.weights);
    mode_name config.mode;
    string_of_bool config.zero_is_invalid;
    string_of_int config.max_trace;
    (match config.settle_steps with None -> "auto" | Some s -> string_of_int s);
    (match config.cycles with
    | None -> "full"
    | Some (lo, hi) -> Printf.sprintf "%d-%d" lo hi);
    string_of_bool config.static_prune ]

let cacheable config = config.classify = None && not config.keep_points

let cache_key spec config =
  Cache.key
    ~parts:
      (code_version :: spec.name :: Bytes.to_string spec.code
      :: string_of_int spec.entry :: string_of_int spec.stack_top
      :: (match spec.detect_addr with
         | None -> "nodet"
         | Some a -> string_of_int a)
      :: String.concat ";"
           (List.map
              (fun (a, v) -> Printf.sprintf "%x:%x" a v)
              spec.data_init)
      :: String.concat ";"
           (List.map (fun (s, a) -> Printf.sprintf "%s:%x" s a) spec.symbols)
      :: config_key_parts config)

let stop_code = function
  | None -> "running"
  | Some (Exec.Breakpoint i) -> Printf.sprintf "bkpt:%d" i
  | Some (Exec.Swi_trap i) -> Printf.sprintf "swi:%d" i
  | Some (Exec.Bad_read a) -> Printf.sprintf "badread:%d" a
  | Some (Exec.Bad_write a) -> Printf.sprintf "badwrite:%d" a
  | Some (Exec.Bad_fetch a) -> Printf.sprintf "badfetch:%d" a
  | Some (Exec.Invalid_instruction w) -> Printf.sprintf "invalid:%d" w
  | Some Exec.Step_limit -> "steplimit"

let stop_of_code s =
  match String.split_on_char ':' s with
  | [ "running" ] -> Some None
  | [ "steplimit" ] -> Some (Some Exec.Step_limit)
  | [ tag; n ] -> (
    match (tag, int_of_string_opt n) with
    | _, None -> None
    | "bkpt", Some i -> Some (Some (Exec.Breakpoint i))
    | "swi", Some i -> Some (Some (Exec.Swi_trap i))
    | "badread", Some a -> Some (Some (Exec.Bad_read a))
    | "badwrite", Some a -> Some (Some (Exec.Bad_write a))
    | "badfetch", Some a -> Some (Some (Exec.Bad_fetch a))
    | "invalid", Some w -> Some (Some (Exec.Invalid_instruction w))
    | _ -> None)
  | _ -> None

let counts_line counts =
  String.concat "," (List.map string_of_int (Array.to_list counts))

let counts_of_line line =
  let parts = String.split_on_char ',' line in
  if List.length parts <> nverdicts then None
  else
    let arr = Array.make nverdicts 0 in
    let ok = ref true in
    List.iteri
      (fun i p ->
        match int_of_string_opt p with
        | Some v when v >= 0 -> arr.(i) <- v
        | Some _ | None -> ok := false)
      parts;
    if !ok then Some arr else None

let encode_result r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "exhaust2 %s %d %d %d %d %d %d %d %d %d %s\n"
       (mode_name r.mode) r.trace_steps r.settle r.cycle_lo r.cycle_hi
       r.points r.faulted r.pruned r.executed r.static_pruned
       (stop_code r.baseline_stop));
  Buffer.add_string b (Printf.sprintf "states %d\n" r.states);
  Buffer.add_string b (Printf.sprintf "totals %s\n" (counts_line r.totals));
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "func %s %d %s\n" row.fname row.faddr
           (counts_line row.counts)))
    r.rows;
  Buffer.contents b

(* Decode and re-validate a cached payload: malformed or inconsistent
   data (counter identity, totals = sum of rows) is a miss, never an
   exception — same contract as the service codec. *)
let decode_result (spec : spec) (config : config) payload =
  let ( let* ) = Option.bind in
  match String.split_on_char '\n' payload with
  | header :: states_line :: totals_line :: rest -> (
    match String.split_on_char ' ' header with
    | [ "exhaust2"; mode; steps; settle; lo; hi; points; faulted; pruned;
        executed; static_pruned; stop ] -> (
      let num = int_of_string_opt in
      let* steps = num steps in
      let* settle = num settle in
      let* lo = num lo in
      let* hi = num hi in
      let* points = num points in
      let* faulted = num faulted in
      let* pruned = num pruned in
      let* executed = num executed in
      let* static_pruned = num static_pruned in
      let* baseline_stop = stop_of_code stop in
      let* () =
        if mode = mode_name config.mode then Some () else None
      in
      let* () =
        if faulted + pruned + executed + static_pruned = points then Some ()
        else None
      in
      let* states =
        match String.split_on_char ' ' states_line with
        | [ "states"; n ] -> num n
        | _ -> None
      in
      let* totals =
        match String.split_on_char ' ' totals_line with
        | [ "totals"; line ] -> counts_of_line line
        | _ -> None
      in
      let* rows =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            if line = "" then Some acc
            else
              match String.split_on_char ' ' line with
              | [ "func"; fname; faddr; counts ] ->
                let* faddr = num faddr in
                let* counts = counts_of_line counts in
                Some ({ fname; faddr; counts } :: acc)
              | _ -> None)
          (Some []) rest
      in
      let rows = List.rev rows in
      let sum = Array.make nverdicts 0 in
      List.iter
        (fun row -> Array.iteri (fun i n -> sum.(i) <- sum.(i) + n) row.counts)
        rows;
      let* () = if sum = totals then Some () else None in
      let* () =
        if Array.fold_left ( + ) 0 totals = points then Some () else None
      in
      Some
        { spec_name = spec.name;
          mode = config.mode;
          trace_steps = steps;
          baseline_stop;
          settle;
          cycle_lo = lo;
          cycle_hi = hi;
          points;
          faulted;
          pruned = pruned + executed;  (* a cached result re-executes nothing *)
          executed = 0;
          static_pruned;
          states;
          rows;
          totals;
          verdicts = None })
    | _ -> None)
  | _ -> None

let run_cached ?pool ?cache spec config =
  match cache with
  | Some cache when cacheable config -> (
    let key = cache_key spec config in
    match Option.bind (Cache.load cache ~key) (decode_result spec config) with
    | Some r -> (r, true)
    | None ->
      let r = run ?pool spec config in
      Cache.store cache ~key (encode_result r);
      (r, false))
  | _ -> (run ?pool spec config, false)
