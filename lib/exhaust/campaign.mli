(** Trace-wide exhaustive fault campaigns with state-hash pruning.

    Generalizes the snapshot-replay kernel from per-guard trigger edges
    (Hw.Attack) and the per-word sweep memo (Glitch_emu.Campaign) to
    entire firmware executions: every (cycle, fault model, mask) along
    the pristine baseline is an injection point. The perturbed word is
    executed in place of the fetched one (or written to flash in
    {!Persistent} mode), the machine runs a fixed settle budget, and
    the outcome is classified against the baseline.

    Pruning: the verdict is a pure function of the machine state right
    after the injected step (the classifier reads only the final state
    and per-run constants, and the settle budget is one per-run
    constant), so identical post-fault states share one continuation
    through a {!Runtime.Keymap} keyed on canonical {!State} keys —
    exact serializations, so sharing can never merge distinct states.
    Baseline states are pre-seeded when their verdict is provable
    without running. All sharing flows through the one shared map, so
    verdict tables are bit-identical at any [--jobs]. *)

type verdict =
  | No_effect
  | Detected
  | Silent
  | Hang
  | Trap
  | Bad_read
  | Bad_write
  | Bad_fetch
  | Invalid

val verdicts : verdict list
val verdict_name : verdict -> string
val verdict_index : verdict -> int

val nverdicts : int
(** Width of every verdict-count table (16: the built-in taxonomy plus
    headroom for custom classifiers). *)

type spec = {
  name : string;
  code : bytes;
  flash_base : int;
  flash_size : int;
  rams : (int * int) list;
  data_init : (int * int) list;
  entry : int;
  stack_top : int;
  symbols : (string * int) list;
  detect_addr : int option;
}

val detect_counter_global : string
(** ["__gr_detect_count"] — the GlitchResistor detection counter
    {!spec_of_image} resolves for the {!Detected} verdict. *)

val spec_of_image : ?name:string -> Lower.Layout.image -> spec
(** The full STM32 shape (128K flash, 16K SRAM, a plain RAM page at the
    GPIO block so trigger stores are journaled instead of faulting). *)

val spec_of_case : Glitch_emu.Testcase.t -> spec
(** The Glitch_emu.Campaign snippet shape, constant-for-constant, for
    differential tests. *)

type mode = Transient | Persistent

val mode_name : mode -> string

type config = {
  models : Glitch_emu.Fault_model.flip list;
  weights : int list;
  mode : mode;
  zero_is_invalid : bool;
  max_trace : int;
  settle_steps : int option;
  cycles : (int * int) option;
  classify : (Machine.Cpu.t -> Machine.Exec.stop -> int) option;
  prune : bool;
  static_prune : bool;
      (** Prove continuations with the abstract fault-flow interpreter
          ({!Absint.Prune}) before running or sharing them. Only active
          in transient mode with the built-in classifier; sound — a
          proven point's verdict equals what execution would produce. *)
  keep_points : bool;
}

val default_config : unit -> config
(** All three fault models, 1- and 2-bit flips, transient mode, a
    2048-cycle window, auto settle, pruning on. *)

val enum_points :
  config -> (Glitch_emu.Fault_model.flip * int * int) array
(** The per-cycle point list [(model, flipped bit-set, model mask)] in
    the fixed enumeration order (models, then weights, then bit-sets
    ascending) that {!result}[.verdicts] follows. *)

type row = { fname : string; faddr : int; counts : int array }

type result = {
  spec_name : string;
  mode : mode;
  trace_steps : int;
  baseline_stop : Machine.Exec.stop option;
  settle : int;
  cycle_lo : int;
  cycle_hi : int;
  points : int;
  faulted : int;
  pruned : int;
  executed : int;
  static_pruned : int;
      (** continuations proven by the abstract fault-flow interpreter *)
  states : int;
  rows : row list;
  totals : int array;
  verdicts : Bytes.t option;
}

val prune_rate : result -> float
(** [pruned / (pruned + executed)] — the fraction of continuations
    served by state-equivalence sharing. Immediate faults at the
    injected step ([faulted]) are excluded from both sides. *)

val baseline :
  spec -> config -> (int * int) array * Machine.Exec.stop option
(** The recorded pristine trace — [(pc, fetched word)] per cycle — and
    how it stopped ([None]: still running at [max_trace]). Tests use it
    to locate the cycle at which a given flash word is fetched. *)

val to_json : result -> string

val run : ?pool:Runtime.Pool.t -> spec -> config -> result
(** Run the campaign. [rows], [totals], [points], [faulted],
    [static_pruned], [states] and (with [keep_points]) [verdicts] are
    bit-identical at any job count; only the [pruned]/[executed] split
    is schedule-dependent (two workers racing a cold state both
    execute). *)

(** {2 Persistence} *)

val code_version : string
val cacheable : config -> bool
(** Results with a custom classifier or retained points are not
    cacheable. *)

val cache_key : spec -> config -> string
val encode_result : result -> string

val decode_result : spec -> config -> string -> result option
(** Re-validated decode (counter identity, totals = sum of rows); any
    inconsistency is [None]. Decoded results report [executed = 0]. *)

val run_cached :
  ?pool:Runtime.Pool.t -> ?cache:Cache.t -> spec -> config -> result * bool
(** [run] through the persistent cache; the flag is [true] on a cache
    hit. *)
