(** Static-vs-dynamic agreement report: {!Analysis.Surface} scores next
    to exhaustive-campaign ground truth, per function. *)

type row = {
  fname : string;
  static_control : float;
  static_fault : float;
  dyn_effect : float;
  dyn_fault : float;
  points : int;
}

type t = {
  rows : row list;
  concordance : float;
  disagreements : string list;
}

val of_result : Analysis.Surface.t -> Campaign.result -> t
(** Join the two per-function views (functions present in both; the
    campaign must have run with the built-in classifier). *)

val pp : t Fmt.t
val to_json : t -> string
