(** Static-vs-dynamic agreement report: {!Analysis.Surface} scores next
    to exhaustive-campaign ground truth, per function. *)

type row = {
  fname : string;
  static_control : float;
  static_fault : float;
  static_control_reached : float;
      (** static score restricted to baseline-fetched instructions;
          equals [static_control] when no trace was supplied *)
  reached_insns : int;
  dyn_effect : float;
  dyn_fault : float;
  points : int;
}

type t = {
  rows : row list;
  weighted : bool;
  concordance : float;
      (** rank concordance over [static_control_reached] — the
          headline number *)
  concordance_unweighted : float;
  disagreements : string list;
}

val of_result :
  ?baseline:(int * int) array -> Analysis.Surface.t -> Campaign.result -> t
(** Join the two per-function views (functions present in both; the
    campaign must have run with the built-in classifier). [baseline] is
    the pristine [(pc, word)] trace from {!Campaign.baseline}: when
    supplied, the static column is additionally restricted to fetched
    instructions, which removes the cold-code handicap the unrestricted
    score carries against dynamic ground truth. *)

val pp : t Fmt.t
val to_json : t -> string
