open Machine

(* Whole-machine state keys for the exhaustive injector.

   A rig wraps one machine with a write journal. The journal's
   pre-images tell us, for every address ever stored to since the rig
   was sealed, what its pristine (post-load) byte was; the sorted set
   of those addresses is the only memory that can differ from the
   pristine image. A state key is therefore exact by construction:

     key = r0..r15 (raw, 4 bytes LE each)
         . NZCV flag byte
         . for each ever-touched address, ascending:
             addr (4 bytes LE) . current byte   — only when it differs
                                                   from pristine

   Two rigs over the same sealed image produce equal keys iff their
   machine states are equal: registers and flags are compared in full,
   untouched memory equals the shared pristine image on both sides, and
   a touched byte that has returned to its pristine value is excluded
   on both sides regardless of which rig's journal happened to touch
   it. Equal key <=> equal state — there is no lossy hashing here, so
   "hash collisions" cannot merge distinct states (the shared map also
   stores full keys; see Runtime.Keymap). *)

type t = {
  mem : Memory.t;
  cpu : Cpu.t;
  journal : Memory.journal;
  pristine : (int, int) Hashtbl.t;  (* ever-touched addr -> pristine byte *)
  mutable touched : int array;  (* those addrs, ascending *)
  mutable ntouched : int;
  mutable scanned : int;  (* journal entries already absorbed *)
  buf : Buffer.t;
}

let seal ~mem ~cpu =
  let journal = Memory.journal_create () in
  Memory.attach_journal mem journal;
  { mem; cpu; journal; pristine = Hashtbl.create 256;
    touched = Array.make 64 0; ntouched = 0; scanned = 0;
    buf = Buffer.create 256 }

let mem t = t.mem
let cpu t = t.cpu

let insert_touched t addr =
  (* binary search for the insertion point; the set is ascending *)
  let lo = ref 0 and hi = ref t.ntouched in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.touched.(mid) < addr then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  if t.ntouched = Array.length t.touched then begin
    let bigger = Array.make (2 * t.ntouched) 0 in
    Array.blit t.touched 0 bigger 0 t.ntouched;
    t.touched <- bigger
  end;
  Array.blit t.touched pos t.touched (pos + 1) (t.ntouched - pos);
  t.touched.(pos) <- addr;
  t.ntouched <- t.ntouched + 1

(* Absorb journal entries written since the last call: the FIRST entry
   for an address carries its pristine byte (entries are appended in
   write order and scanned oldest-first). *)
let absorb t =
  let n = Memory.journal_length t.journal in
  for i = t.scanned to n - 1 do
    let addr, old = Memory.journal_entry t.journal i in
    if not (Hashtbl.mem t.pristine addr) then begin
      Hashtbl.add t.pristine addr old;
      insert_touched t addr
    end
  done;
  t.scanned <- n

let mark t = Memory.journal_length t.journal

let undo_to t m =
  absorb t;  (* pristine bytes must be harvested before truncation *)
  Memory.undo_to t.mem t.journal m;
  t.scanned <- m

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let key t =
  absorb t;
  let b = t.buf in
  Buffer.clear b;
  let regs = t.cpu.Cpu.regs in
  for i = 0 to 15 do
    add_u32 b regs.(i)
  done;
  let flags =
    (if t.cpu.Cpu.n then 8 else 0)
    lor (if t.cpu.Cpu.z then 4 else 0)
    lor (if t.cpu.Cpu.c then 2 else 0)
    lor if t.cpu.Cpu.v then 1 else 0
  in
  Buffer.add_char b (Char.chr flags);
  for i = 0 to t.ntouched - 1 do
    let addr = t.touched.(i) in
    let cur = Memory.read_u8_exn t.mem addr in
    if cur <> Hashtbl.find t.pristine addr then begin
      add_u32 b addr;
      Buffer.add_char b (Char.chr cur)
    end
  done;
  Buffer.contents b

let save_regs t dst =
  Array.blit t.cpu.Cpu.regs 0 dst 0 16;
  (if t.cpu.Cpu.n then 8 else 0)
  lor (if t.cpu.Cpu.z then 4 else 0)
  lor (if t.cpu.Cpu.c then 2 else 0)
  lor if t.cpu.Cpu.v then 1 else 0

let restore_regs t src flags =
  Array.blit src 0 t.cpu.Cpu.regs 0 16;
  t.cpu.Cpu.n <- flags land 8 <> 0;
  t.cpu.Cpu.z <- flags land 4 <> 0;
  t.cpu.Cpu.c <- flags land 2 <> 0;
  t.cpu.Cpu.v <- flags land 1 <> 0

let touched_bytes t =
  absorb t;
  t.ntouched
