(** Canonical whole-machine state keys over a journaled rig.

    [seal] attaches a write journal to a loaded machine; from then on
    the rig can compute an exact canonical key for its current state
    ({!key}), and rewind memory to any earlier {!mark} in time
    proportional to the bytes dirtied since ({!undo_to}).

    The key encodes r0–r15, the NZCV flags, and every ever-touched
    memory byte that currently differs from its pristine (seal-time)
    value, in ascending address order. Two rigs sealed over the same
    image produce equal keys {e iff} their machine states are equal —
    the key is a faithful serialization, not a lossy hash, so state
    "hash" sharing keyed on it can never merge distinct states. *)

type t

val seal : mem:Machine.Memory.t -> cpu:Machine.Cpu.t -> t
(** Attach a fresh journal and start tracking. The machine's current
    contents become the pristine baseline that keys are expressed
    against; callers must finish loading the image first. *)

val mem : t -> Machine.Memory.t
val cpu : t -> Machine.Cpu.t

val mark : t -> int
(** A rewind point for {!undo_to}. *)

val undo_to : t -> int -> unit
(** Rewind memory (not registers) to a previous {!mark}. *)

val key : t -> string
(** The canonical state key for the current machine state. *)

val save_regs : t -> int array -> int
(** Copy r0–r15 into the 16-slot scratch array; returns the packed
    NZCV flags. Together with a memory {!mark}, a full state
    checkpoint. *)

val restore_regs : t -> int array -> int -> unit
(** Restore registers and flags saved by {!save_regs}. *)

val touched_bytes : t -> int
(** Distinct memory addresses written since [seal] — the key's
    worst-case memory footprint, reported in campaign stats. *)
