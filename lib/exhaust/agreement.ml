(* Static-vs-dynamic agreement: Analysis.Surface scores every function
   by the fraction of 1/2-bit perturbations it classifies Control,
   with no execution at all; the exhaustive campaign measures, for the
   same image, how often a perturbation observably diverts the actual
   run. This report puts the two per-function columns side by side so
   `glitchctl lint` can be judged against dynamic ground truth. *)

type row = {
  fname : string;
  static_control : float;  (** Surface score: Control fraction of flips *)
  static_fault : float;  (** Surface: undecodable fraction of flips *)
  dyn_effect : float;
      (** campaign: fraction of executed points with any observable
          divergence (everything but No_effect and Invalid) *)
  dyn_fault : float;  (** campaign: Invalid fraction *)
  points : int;
}

type t = {
  rows : row list;
  concordance : float;
      (** fraction of function pairs ranked the same way by
          [static_control] and [dyn_effect] (ties concordant) *)
  disagreements : string list;
}

let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let of_result (surface : Analysis.Surface.t) (r : Campaign.result) =
  let static_of fname =
    List.find_opt
      (fun (f : Analysis.Surface.func_surface) -> f.fname = fname)
      surface.funcs
  in
  let rows =
    List.filter_map
      (fun (row : Campaign.row) ->
        match static_of row.fname with
        | None -> None
        | Some f ->
          let points = Array.fold_left ( + ) 0 row.counts in
          let no_effect = row.counts.(Campaign.verdict_index No_effect) in
          let invalid = row.counts.(Campaign.verdict_index Invalid) in
          let flips = f.insns * (Analysis.Surface.flips1 + Analysis.Surface.flips2) in
          Some
            { fname = row.fname;
              static_control = f.score;
              static_fault = frac (f.fault1 + f.fault2) flips;
              dyn_effect = frac (points - no_effect - invalid) points;
              dyn_fault = frac invalid points;
              points })
      r.rows
  in
  let pairs = ref 0 and concordant = ref 0 in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then begin
            incr pairs;
            if
              (a.static_control -. b.static_control)
              *. (a.dyn_effect -. b.dyn_effect)
              >= 0.
            then incr concordant
          end)
        rows)
    rows;
  let disagreements =
    List.filter_map
      (fun row ->
        if row.static_control < 0.05 && row.dyn_effect > 0.25 then
          Some
            (Printf.sprintf
               "%s: static control %.1f%% but dynamic effect %.1f%%"
               row.fname
               (100. *. row.static_control)
               (100. *. row.dyn_effect))
        else if row.static_control > 0.5 && row.dyn_effect = 0. && row.points > 0
        then
          Some
            (Printf.sprintf
               "%s: static control %.1f%% but no dynamic effect over %d points"
               row.fname
               (100. *. row.static_control)
               row.points)
        else None)
      rows
  in
  { rows;
    concordance = (if !pairs = 0 then 1. else frac !concordant !pairs);
    disagreements }

let pp ppf t =
  Fmt.pf ppf "static vs dynamic glitch surface (per function):@.";
  Fmt.pf ppf "  %-24s %9s %9s %9s %9s %8s@." "function" "st.ctrl" "st.fault"
    "dyn.eff" "dyn.fault" "points";
  List.iter
    (fun row ->
      Fmt.pf ppf "  %-24s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8d@." row.fname
        (100. *. row.static_control)
        (100. *. row.static_fault)
        (100. *. row.dyn_effect)
        (100. *. row.dyn_fault)
        row.points)
    t.rows;
  Fmt.pf ppf "  rank concordance: %.0f%%@." (100. *. t.concordance);
  List.iter (fun d -> Fmt.pf ppf "  disagreement: %s@." d) t.disagreements

let to_json t =
  let row_json row =
    Printf.sprintf
      {|{"fname":"%s","static_control":%.6f,"static_fault":%.6f,"dyn_effect":%.6f,"dyn_fault":%.6f,"points":%d}|}
      (String.escaped row.fname) row.static_control row.static_fault
      row.dyn_effect row.dyn_fault row.points
  in
  Printf.sprintf {|{"rows":[%s],"concordance":%.6f,"disagreements":[%s]}|}
    (String.concat "," (List.map row_json t.rows))
    t.concordance
    (String.concat ","
       (List.map (fun d -> "\"" ^ String.escaped d ^ "\"") t.disagreements))
