(* Static-vs-dynamic agreement: Analysis.Surface scores every function
   by the fraction of 1/2-bit perturbations it classifies Control,
   with no execution at all; the exhaustive campaign measures, for the
   same image, how often a perturbation observably diverts the actual
   run. This report puts the two per-function columns side by side so
   `glitchctl lint` can be judged against dynamic ground truth.

   The static column has a structural handicap in that comparison: it
   scores every reachable instruction of a function, while the dynamic
   column only ever samples instructions the baseline trace fetches.
   A function whose hot loop is benign but whose cold error path is
   branch-heavy gets a high static score and a near-zero dynamic one.
   When the caller supplies the baseline trace, [static_control_reached]
   restricts the static tally to fetched instructions, and the headline
   concordance is computed over that column instead. *)

type row = {
  fname : string;
  static_control : float;  (** Surface score: Control fraction of flips *)
  static_fault : float;  (** Surface: undecodable fraction of flips *)
  static_control_reached : float;
      (** Surface score restricted to instructions the baseline trace
          fetched; equals [static_control] when no trace was supplied *)
  reached_insns : int;
      (** instructions of this function on the baseline trace (equals
          the full instruction count when no trace was supplied) *)
  dyn_effect : float;
      (** campaign: fraction of executed points with any observable
          divergence (everything but No_effect and Invalid) *)
  dyn_fault : float;  (** campaign: Invalid fraction *)
  points : int;
}

type t = {
  rows : row list;
  weighted : bool;  (** a baseline trace restricted the static column *)
  concordance : float;
      (** fraction of function pairs ranked the same way by
          [static_control_reached] and [dyn_effect] (ties concordant) *)
  concordance_unweighted : float;
      (** same, over the unrestricted [static_control] column *)
  disagreements : string list;
}

let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(* Rank concordance between a static column and the dynamic one: the
   fraction of function pairs ordered the same way (ties concordant). *)
let concordance_over rows static_of =
  let pairs = ref 0 and concordant = ref 0 in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then begin
            incr pairs;
            if
              (static_of a -. static_of b) *. (a.dyn_effect -. b.dyn_effect)
              >= 0.
            then incr concordant
          end)
        rows)
    rows;
  if !pairs = 0 then 1. else frac !concordant !pairs

let of_result ?baseline (surface : Analysis.Surface.t) (r : Campaign.result) =
  let static_of fname =
    List.find_opt
      (fun (f : Analysis.Surface.func_surface) -> f.fname = fname)
      surface.funcs
  in
  (* Owner of a baseline pc: the campaign row with the greatest entry
     address at or below it. Rows exist exactly for functions with
     injection points — i.e. functions the trace fetched — so every
     trace pc resolves to its true owner; an unreached function can
     never sit between a reached function's entry and a traced pc. *)
  let row_entries =
    List.map (fun (row : Campaign.row) -> (row.faddr, row.fname)) r.rows
  in
  let owner addr =
    List.fold_left
      (fun acc (faddr, fname) -> if faddr <= addr then Some fname else acc)
      None row_entries
  in
  let reached_set =
    Option.map
      (fun trace ->
        let set = Hashtbl.create 1024 in
        Array.iter (fun (pc, _word) -> Hashtbl.replace set pc ()) trace;
        set)
      baseline
  in
  let flips = Analysis.Surface.flips1 + Analysis.Surface.flips2 in
  let reached_stats fname (f : Analysis.Surface.func_surface) =
    match reached_set with
    | None -> (f.insns, f.score)
    | Some set ->
      let insns = ref 0 and control = ref 0 in
      List.iter
        (fun (p : Analysis.Surface.profile) ->
          if Hashtbl.mem set p.addr && owner p.addr = Some fname then begin
            incr insns;
            control := !control + p.control1 + p.control2
          end)
        surface.profiles;
      (!insns, frac !control (!insns * flips))
  in
  let rows =
    List.filter_map
      (fun (row : Campaign.row) ->
        match static_of row.fname with
        | None -> None
        | Some f ->
          let points = Array.fold_left ( + ) 0 row.counts in
          let no_effect = row.counts.(Campaign.verdict_index No_effect) in
          let invalid = row.counts.(Campaign.verdict_index Invalid) in
          let flips_total = f.insns * flips in
          let reached_insns, reached_score = reached_stats row.fname f in
          Some
            { fname = row.fname;
              static_control = f.score;
              static_fault = frac (f.fault1 + f.fault2) flips_total;
              static_control_reached = reached_score;
              reached_insns;
              dyn_effect = frac (points - no_effect - invalid) points;
              dyn_fault = frac invalid points;
              points })
      r.rows
  in
  let concordance = concordance_over rows (fun a -> a.static_control_reached) in
  let concordance_unweighted =
    concordance_over rows (fun a -> a.static_control)
  in
  let disagreements =
    List.filter_map
      (fun row ->
        if row.static_control_reached < 0.05 && row.dyn_effect > 0.25 then
          Some
            (Printf.sprintf
               "%s: static control %.1f%% but dynamic effect %.1f%%"
               row.fname
               (100. *. row.static_control_reached)
               (100. *. row.dyn_effect))
        else if
          row.static_control_reached > 0.5
          && row.dyn_effect = 0. && row.points > 0
        then
          Some
            (Printf.sprintf
               "%s: static control %.1f%% but no dynamic effect over %d points"
               row.fname
               (100. *. row.static_control_reached)
               row.points)
        else None)
      rows
  in
  { rows;
    weighted = reached_set <> None;
    concordance;
    concordance_unweighted;
    disagreements }

let pp ppf t =
  Fmt.pf ppf "static vs dynamic glitch surface (per function):@.";
  Fmt.pf ppf "  %-24s %9s %9s %9s %9s %9s %8s@." "function" "st.ctrl"
    "st.ctrl@R" "st.fault" "dyn.eff" "dyn.fault" "points";
  List.iter
    (fun row ->
      Fmt.pf ppf "  %-24s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8d@."
        row.fname
        (100. *. row.static_control)
        (100. *. row.static_control_reached)
        (100. *. row.static_fault)
        (100. *. row.dyn_effect)
        (100. *. row.dyn_fault)
        row.points)
    t.rows;
  if t.weighted then
    Fmt.pf ppf "  rank concordance: %.0f%% (unweighted %.0f%%)@."
      (100. *. t.concordance)
      (100. *. t.concordance_unweighted)
  else Fmt.pf ppf "  rank concordance: %.0f%%@." (100. *. t.concordance);
  List.iter (fun d -> Fmt.pf ppf "  disagreement: %s@." d) t.disagreements

let to_json t =
  let row_json row =
    Printf.sprintf
      {|{"fname":"%s","static_control":%.6f,"static_fault":%.6f,"static_control_reached":%.6f,"reached_insns":%d,"dyn_effect":%.6f,"dyn_fault":%.6f,"points":%d}|}
      (String.escaped row.fname) row.static_control row.static_fault
      row.static_control_reached row.reached_insns row.dyn_effect row.dyn_fault
      row.points
  in
  Printf.sprintf
    {|{"rows":[%s],"weighted":%b,"concordance":%.6f,"concordance_unweighted":%.6f,"disagreements":[%s]}|}
    (String.concat "," (List.map row_json t.rows))
    t.weighted t.concordance t.concordance_unweighted
    (String.concat ","
       (List.map (fun d -> "\"" ^ String.escaped d ^ "\"") t.disagreements))
