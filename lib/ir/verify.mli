(** Structural well-formedness checks, run after lowering and after
    every GlitchResistor pass (like LLVM's verifier): branch targets
    exist, labels and temps are unique, locals/globals/callees are
    declared, and value-returning functions do not [ret void]. *)

type violation = { func : string; message : string }

val pp_violation : violation Fmt.t

val func : Types.modul -> Types.func -> violation list
val modul : Types.modul -> violation list

val check_exn : Types.modul -> unit
(** @raise Invalid_argument listing all violations, if any. *)

val lint_func : Types.func -> violation list
val lint : Types.modul -> violation list
(** Non-fatal, path-sensitive diagnostics: blocks unreachable from the
    entry, and temps that some path can use before any definition
    (forward must-define dataflow, IN\[b\] = intersection of OUT over
    predecessors).  These are warnings, not errors — a pass may leave a
    dead block behind legitimately — and are surfaced through
    [Resistor.Driver]'s after-every-pass verification and the
    [glitchctl lint] auditor. *)
