(** Reference interpreter for the IR. Used to check that lowering and
    the GlitchResistor passes preserve semantics: a defended module must
    behave identically to the original in the absence of glitches, and
    the code generator must agree with this interpreter on every test
    program. *)

type outcome = {
  ret : int option;
  globals : (string * int) list;  (** final global values *)
}

type builtin = int list -> int
(** Handler for an extern callee; void-returning builtins return 0. *)

type event =
  | Obs_load of { name : string; value : int; volatile : bool }
  | Obs_store of { name : string; value : int; volatile : bool }
  | Obs_call of { callee : string; args : int list }
      (** Observable actions in program order: accesses to module
          globals (with the IR volatile flag, so an observer can keep
          just the volatile I/O trace) and calls that resolve to a
          builtin — the source-level counterpart of the board's
          MMIO/trigger activity. Local slots and temps are not
          reported. *)

val run :
  ?fuel:int ->
  ?builtins:(string * builtin) list ->
  ?observer:(event -> unit) ->
  Types.modul ->
  entry:string ->
  args:int list ->
  (outcome, string) result
(** Execute [entry] with the given arguments. [fuel] (default 1,000,000
    executed instructions) bounds runaway loops; exhaustion, unknown
    callees, or a fall into [Unreachable] produce [Error]. [observer]
    is invoked synchronously on every {!event}. *)
