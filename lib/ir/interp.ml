type outcome = { ret : int option; globals : (string * int) list }

type builtin = int list -> int

type event =
  | Obs_load of { name : string; value : int; volatile : bool }
  | Obs_store of { name : string; value : int; volatile : bool }
  | Obs_call of { callee : string; args : int list }

exception Trap of string

let trap fmt = Fmt.kstr (fun m -> raise (Trap m)) fmt

type state = {
  modul : Types.modul;
  globals : (string, int) Hashtbl.t;
  builtins : (string * builtin) list;
  observer : (event -> unit) option;
  mutable fuel : int;
}

let observe st ev = match st.observer with Some f -> f ev | None -> ()

let value_of frame (v : Types.value) =
  match v with
  | Types.Const c -> Types.mask32 c
  | Types.Temp t -> (
    match Hashtbl.find_opt frame t with
    | Some v -> v
    | None -> trap "temp t%d has no value" t)

let read_var st locals = function
  | Types.Global name -> (
    match Hashtbl.find_opt st.globals name with
    | Some v -> v
    | None -> trap "global %s not found" name)
  | Types.Local name -> (
    match Hashtbl.find_opt locals name with
    | Some v -> v
    | None -> trap "local %s not initialised" name)

let write_var st locals var v =
  match var with
  | Types.Global name ->
    if not (Hashtbl.mem st.globals name) then trap "global %s not found" name;
    Hashtbl.replace st.globals name (Types.mask32 v)
  | Types.Local name -> Hashtbl.replace locals name (Types.mask32 v)

let rec call_function st (f : Types.func) args =
  if List.length args <> List.length f.params then
    trap "%s: arity mismatch" f.fname;
  let locals = Hashtbl.create 16 in
  List.iter2 (fun p a -> Hashtbl.replace locals p (Types.mask32 a)) f.params args;
  let frame = Hashtbl.create 32 in
  let entry =
    match f.blocks with
    | b :: _ -> b
    | [] -> trap "%s: no entry block" f.fname
  in
  exec_block st f locals frame entry

and exec_block st f locals frame (b : Types.block) =
  List.iter (exec_instr st f locals frame) b.instrs;
  if st.fuel <= 0 then trap "out of fuel in %s" f.fname;
  st.fuel <- st.fuel - 1;
  match b.term with
  | Types.Br label -> exec_block st f locals frame (resolve f label)
  | Types.Cond_br { cond; if_true; if_false } ->
    let target = if value_of frame cond <> 0 then if_true else if_false in
    exec_block st f locals frame (resolve f target)
  | Types.Switch { value; cases; default } ->
    let v = value_of frame value in
    let target =
      match List.assoc_opt v cases with Some l -> l | None -> default
    in
    exec_block st f locals frame (resolve f target)
  | Types.Ret v -> Option.map (value_of frame) v
  | Types.Unreachable -> trap "%s: reached unreachable" f.fname

and resolve f label =
  match Types.find_block f label with
  | Some b -> b
  | None -> trap "%s: no block %s" f.fname label

and exec_instr st f locals frame (i : Types.instr) =
  if st.fuel <= 0 then trap "out of fuel in %s" f.fname;
  st.fuel <- st.fuel - 1;
  match i with
  | Types.Load { dst; src; volatile } ->
    let v = read_var st locals src in
    (match src with
    | Types.Global name -> observe st (Obs_load { name; value = v; volatile })
    | Types.Local _ -> ());
    Hashtbl.replace frame dst v
  | Types.Store { dst; src; volatile } ->
    let v = value_of frame src in
    (match dst with
    | Types.Global name ->
      observe st (Obs_store { name; value = Types.mask32 v; volatile })
    | Types.Local _ -> ());
    write_var st locals dst v
  | Types.Binop { dst; op; lhs; rhs } ->
    Hashtbl.replace frame dst
      (Types.eval_binop op (value_of frame lhs) (value_of frame rhs))
  | Types.Icmp { dst; op; lhs; rhs } ->
    Hashtbl.replace frame dst
      (Types.eval_icmp op (value_of frame lhs) (value_of frame rhs))
  | Types.Call { dst; callee; args } -> (
    let argv = List.map (value_of frame) args in
    match Types.find_func st.modul callee with
    | Some g ->
      let r = call_function st g argv in
      Option.iter
        (fun d ->
          match r with
          | Some v -> Hashtbl.replace frame d v
          | None -> trap "%s returned void but result expected" callee)
        dst
    | None -> (
      match List.assoc_opt callee st.builtins with
      | Some fn ->
        observe st (Obs_call { callee; args = argv });
        let r = fn argv in
        Option.iter (fun d -> Hashtbl.replace frame d (Types.mask32 r)) dst
      | None -> trap "no definition for %s" callee))

let run ?(fuel = 1_000_000) ?(builtins = []) ?observer modul ~entry ~args =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Types.global) -> Hashtbl.replace globals g.gname (Types.mask32 g.init))
    modul.Types.globals;
  let st = { modul; globals; builtins; observer; fuel } in
  match Types.find_func modul entry with
  | None -> Error (Printf.sprintf "no function %s" entry)
  | Some f -> (
    match call_function st f args with
    | ret ->
      let final =
        List.map
          (fun (g : Types.global) -> (g.gname, Hashtbl.find globals g.gname))
          modul.Types.globals
      in
      Ok { ret; globals = final }
    | exception Trap message -> Error message)
