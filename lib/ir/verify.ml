type violation = { func : string; message : string }

let pp_violation ppf { func; message } = Fmt.pf ppf "%s: %s" func message

let func (m : Types.modul) (f : Types.func) =
  let bad = ref [] in
  let report fmt =
    Fmt.kstr (fun message -> bad := { func = f.fname; message } :: !bad) fmt
  in
  (* unique labels *)
  let labels = List.map (fun (b : Types.block) -> b.label) f.blocks in
  List.iteri
    (fun i l ->
      if List.exists (fun l' -> l' = l) (List.filteri (fun j _ -> j < i) labels)
      then report "duplicate label %s" l)
    labels;
  if f.blocks = [] then report "no blocks";
  (* defined names *)
  let known_var = function
    | Types.Local name ->
      if not (List.mem name f.locals) then report "undeclared local %s" name
    | Types.Global name ->
      if Types.find_global m name = None then report "undeclared global %s" name
  in
  let callees =
    List.map (fun (g : Types.func) -> g.fname) m.funcs @ m.externs
  in
  (* single-assignment temps, defined before use in block order *)
  let defined = Hashtbl.create 64 in
  let define t =
    if Hashtbl.mem defined t then report "temp t%d assigned twice" t
    else Hashtbl.add defined t ()
  in
  let use = function
    | Types.Const _ -> ()
    | Types.Temp t -> if not (Hashtbl.mem defined t) then report "t%d used before definition" t
  in
  List.iter
    (fun (b : Types.block) ->
      List.iter
        (fun i ->
          match i with
          | Types.Load { dst; src; _ } ->
            known_var src;
            define dst
          | Types.Store { dst; src; _ } ->
            known_var dst;
            use src
          | Types.Binop { dst; lhs; rhs; _ } | Types.Icmp { dst; lhs; rhs; _ } ->
            use lhs;
            use rhs;
            define dst
          | Types.Call { dst; callee; args } ->
            List.iter use args;
            if not (List.mem callee callees) then
              report "call to unknown function %s" callee;
            Option.iter define dst)
        b.instrs;
      match b.term with
      | Types.Br l ->
        if not (List.mem l labels) then report "branch to unknown label %s" l
      | Types.Cond_br { cond; if_true; if_false } ->
        use cond;
        List.iter
          (fun l ->
            if not (List.mem l labels) then report "branch to unknown label %s" l)
          [ if_true; if_false ]
      | Types.Switch { value; cases; default } ->
        use value;
        List.iter
          (fun l ->
            if not (List.mem l labels) then report "branch to unknown label %s" l)
          (default :: List.map snd cases);
        let case_values = List.map fst cases in
        if List.length (List.sort_uniq compare case_values) <> List.length case_values
        then report "duplicate switch case values"
      | Types.Ret (Some v) ->
        use v;
        if not f.returns_value then report "ret value in void function"
      | Types.Ret None ->
        if f.returns_value then report "ret void in value-returning function"
      | Types.Unreachable -> ())
    f.blocks;
  List.rev !bad

let modul (m : Types.modul) =
  let dup_globals =
    List.filteri
      (fun i (g : Types.global) ->
        List.exists
          (fun (g' : Types.global) -> g'.gname = g.gname)
          (List.filteri (fun j _ -> j < i) m.globals))
      m.globals
  in
  let global_violations =
    List.map
      (fun (g : Types.global) ->
        { func = "<module>"; message = "duplicate global " ^ g.gname })
      dup_globals
  in
  global_violations @ List.concat_map (func m) m.funcs

(* ------------------------------------------------------------------ *)
(* Non-fatal lint: path-sensitive checks that a pass may legitimately
   leave behind (e.g. dead blocks after edge redirection) but that a
   human should see.  Kept separate from [func]/[modul] so check_exn
   stays a hard wall while these surface as warnings. *)

module Int_set = Set.Make (Int)
module String_set = Set.Make (String)

let block_defs (b : Types.block) =
  List.fold_left
    (fun acc i ->
      match i with
      | Types.Load { dst; _ } | Types.Binop { dst; _ } | Types.Icmp { dst; _ }
      | Types.Call { dst = Some dst; _ } -> Int_set.add dst acc
      | Types.Store _ | Types.Call { dst = None; _ } -> acc)
    Int_set.empty b.instrs

let lint_func (f : Types.func) =
  let bad = ref [] in
  let report fmt =
    Fmt.kstr (fun message -> bad := { func = f.fname; message } :: !bad) fmt
  in
  match f.blocks with
  | [] -> []
  | entry :: _ ->
    let find l =
      List.find_opt (fun (b : Types.block) -> b.label = l) f.blocks
    in
    (* Reachability: BFS over terminator successors from the entry. *)
    let reachable = ref (String_set.singleton entry.label) in
    let queue = Queue.create () in
    Queue.add entry queue;
    while not (Queue.is_empty queue) do
      let b = Queue.pop queue in
      List.iter
        (fun l ->
          if not (String_set.mem l !reachable) then begin
            reachable := String_set.add l !reachable;
            Option.iter (fun b' -> Queue.add b' queue) (find l)
          end)
        (Types.successors b.term)
    done;
    List.iter
      (fun (b : Types.block) ->
        if not (String_set.mem b.label !reachable) then
          report "block %s is unreachable from entry" b.label)
      f.blocks;
    (* Maybe-undefined temps: forward must-define dataflow over the
       reachable subgraph.  IN[b] = intersection of OUT[preds]; a use
       not covered by IN plus the defs so far in the block may read an
       undefined temp on some path. *)
    let reachable_blocks =
      List.filter
        (fun (b : Types.block) -> String_set.mem b.label !reachable)
        f.blocks
    in
    let all_defs =
      List.fold_left
        (fun acc b -> Int_set.union acc (block_defs b))
        Int_set.empty reachable_blocks
    in
    let preds = Hashtbl.create 16 in
    List.iter
      (fun (b : Types.block) ->
        List.iter
          (fun l ->
            Hashtbl.replace preds l (b.label :: Option.value ~default:[] (Hashtbl.find_opt preds l)))
          (Types.successors b.term))
      reachable_blocks;
    let out = Hashtbl.create 16 in
    List.iter
      (fun (b : Types.block) ->
        Hashtbl.replace out b.label
          (if b.label = entry.label then block_defs b else all_defs))
      reachable_blocks;
    let in_set (b : Types.block) =
      if b.label = entry.label then Int_set.empty
      else
        match Hashtbl.find_opt preds b.label with
        | None | Some [] -> Int_set.empty
        | Some ps ->
          List.fold_left
            (fun acc p ->
              match Hashtbl.find_opt out p with
              | Some s -> Int_set.inter acc s
              | None -> acc)
            all_defs ps
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Types.block) ->
          let next = Int_set.union (in_set b) (block_defs b) in
          if not (Int_set.equal next (Hashtbl.find out b.label)) then begin
            Hashtbl.replace out b.label next;
            changed := true
          end)
        reachable_blocks
    done;
    let flagged = ref Int_set.empty in
    List.iter
      (fun (b : Types.block) ->
        let avail = ref (in_set b) in
        let use where = function
          | Types.Const _ -> ()
          | Types.Temp t ->
            if (not (Int_set.mem t !avail)) && not (Int_set.mem t !flagged)
            then begin
              flagged := Int_set.add t !flagged;
              report "t%d may be used before definition (%s, block %s)" t
                where b.label
            end
        in
        List.iter
          (fun i ->
            (match i with
            | Types.Load _ -> ()
            | Types.Store { src; _ } -> use "store" src
            | Types.Binop { lhs; rhs; _ } | Types.Icmp { lhs; rhs; _ } ->
              use "operand" lhs;
              use "operand" rhs
            | Types.Call { args; _ } -> List.iter (use "argument") args);
            match i with
            | Types.Load { dst; _ } | Types.Binop { dst; _ }
            | Types.Icmp { dst; _ } | Types.Call { dst = Some dst; _ } ->
              avail := Int_set.add dst !avail
            | Types.Store _ | Types.Call { dst = None; _ } -> ())
          b.instrs;
        match b.term with
        | Types.Cond_br { cond; _ } -> use "branch condition" cond
        | Types.Switch { value; _ } -> use "switch value" value
        | Types.Ret (Some v) -> use "return value" v
        | Types.Br _ | Types.Ret None | Types.Unreachable -> ())
      reachable_blocks;
    List.rev !bad

let lint (m : Types.modul) = List.concat_map lint_func m.funcs

let check_exn m =
  match modul m with
  | [] -> ()
  | violations ->
    invalid_arg
      (Fmt.str "IR verification failed:@ %a"
         Fmt.(list ~sep:cut pp_violation)
         violations)
