(** The Figure 2 experiment ported to RV32I — the cross-ISA study the
    paper could not run without fabricating silicon.

    32-bit encodings make exhaustive mask enumeration infeasible
    (2^32 per instruction), so a weight is enumerated exhaustively
    whenever its whole population C(32,k) fits the per-weight sampling
    budget (weights 0-2 and 30-32 at the default 600) and sampled
    deterministically without replacement-correction otherwise; rates
    are reported per weight exactly as for Thumb. Outcome categories are
    shared with {!Glitch_emu.Campaign} so the two ISAs classify runs
    identically.

    Note a structural difference that matters to the paper's
    hypothesis: RV32I's all-zero word is architecturally an illegal
    instruction (as is all-ones), i.e. RISC-V ships the "make 0x0000
    invalid" ISA hardening of Figure 2(c) by construction. *)

type config = {
  flip : Glitch_emu.Fault_model.flip;
  samples_per_weight : int;  (** for weights whose C(32,k) exceeds it *)
  seed : int;
  max_steps : int;
}

val default_config : Glitch_emu.Fault_model.flip -> config

type testcase = {
  name : string;
  instrs : Instr.t list;
  target_index : int;
}

val conditional_branch : Instr.branch_cond -> testcase
val all_conditional_branches : testcase list

val run_one :
  config -> testcase -> mask:int -> Glitch_emu.Campaign.category

type result = {
  case : testcase;
  config : config;
  by_weight : (int * int array) list;
      (** (attempted masks, per-category counts) indexed by weight 0-32 *)
  totals : int array;
}

val run_case : config -> testcase -> result

val success_percent : result -> float
(** Share of modified-mask runs that skipped the branch. *)

val category_percent : result -> Glitch_emu.Campaign.category -> float
