type config = {
  flip : Glitch_emu.Fault_model.flip;
  samples_per_weight : int;
  seed : int;
  max_steps : int;
}

let default_config flip =
  { flip; samples_per_weight = 600; seed = 0x155C_5EED; max_steps = 200 }

type testcase = { name : string; instrs : Instr.t list; target_index : int }

let skip_reg = 5
let skip_marker = 0xAD
let normal_marker = 0xAA

(* Register values that make each condition hold, so the branch is
   taken and the skip marker is dead code unglitched. *)
let setup_for (cond : Instr.branch_cond) =
  match cond with
  | BEQ -> (4, 4)
  | BNE -> (1, 0)
  | BLT -> (-1, 0)
  | BGE -> (1, 0)
  | BLTU -> (0, 1)
  | BGEU -> (1, 0)

let conditional_branch cond =
  let a, b = setup_for cond in
  { name = String.uppercase_ascii (Instr.branch_cond_name cond);
    instrs =
      [ Instr.Op_imm (ADDI, 10, 0, a);
        Instr.Op_imm (ADDI, 11, 0, b);
        Instr.Branch (cond, 10, 11, 8);
        Instr.Op_imm (ADDI, skip_reg, 0, skip_marker);
        Instr.Op_imm (ADDI, 6, 0, normal_marker);
        Instr.Ebreak ];
    target_index = 2 }

let all_conditional_branches = List.map conditional_branch Instr.branch_conds

(* --- rig ------------------------------------------------------------------ *)

let flash_base = 0x08000000
let flash_size = 0x400
let sram_base = 0x20000000
let sram_size = 0x400

type rig = { mem : Machine.Memory.t; words : int array }

let make_rig case =
  let mem = Machine.Memory.create () in
  Machine.Memory.map mem ~addr:flash_base ~size:flash_size;
  Machine.Memory.map mem ~addr:sram_base ~size:sram_size;
  { mem; words = Array.of_list (Codec.encode_program case.instrs) }

let write_program rig ~target_word case =
  Machine.Memory.clear rig.mem;
  Array.iteri
    (fun i w ->
      let w = if i = case.target_index then target_word else w in
      match Machine.Memory.write_u32 rig.mem (flash_base + (4 * i)) w with
      | Ok () -> ()
      | Error _ -> assert false)
    rig.words

let classify cpu (stop : Exec.stop) : Glitch_emu.Campaign.category =
  match stop with
  | Exec.Ebreak_hit ->
    if Exec.get cpu skip_reg = skip_marker then Glitch_emu.Campaign.Success
    else Glitch_emu.Campaign.No_effect
  | Exec.Bad_read _ | Exec.Bad_write _ -> Glitch_emu.Campaign.Bad_read
  | Exec.Bad_fetch _ -> Glitch_emu.Campaign.Bad_fetch
  | Exec.Invalid_instruction _ -> Glitch_emu.Campaign.Invalid_instruction
  | Exec.Ecall_trap | Exec.Step_limit -> Glitch_emu.Campaign.Failed

let run_mask config rig case ~mask =
  let word =
    Glitch_emu.Fault_model.apply config.flip ~mask
      rig.words.(case.target_index)
    land 0xFFFFFFFF
  in
  write_program rig ~target_word:word case;
  let cpu = Exec.create_cpu ~sp:(sram_base + sram_size - 16) ~pc:flash_base () in
  let stop = Exec.run ~max_steps:config.max_steps rig.mem cpu in
  classify cpu stop

let run_one config case ~mask = run_mask config (make_rig case) case ~mask

(* xorshift-based deterministic mask sampling for high weights *)
let sample_mask state ~weight =
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3FFFFFFFFFFFFFFF in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land 0x3FFFFFFFFFFFFFFF in
    state := x;
    x
  in
  (* choose [weight] distinct bit positions *)
  let chosen = Array.make 32 false in
  let placed = ref 0 in
  while !placed < weight do
    let bit = next () land 31 in
    if not chosen.(bit) then begin
      chosen.(bit) <- true;
      incr placed
    end
  done;
  Array.to_seqi chosen
  |> Seq.fold_left (fun acc (i, on) -> if on then acc lor (1 lsl i) else acc) 0

type result = {
  case : testcase;
  config : config;
  by_weight : (int * int array) list;
  totals : int array;
}

let ncat = List.length Glitch_emu.Campaign.categories

let run_case config case =
  let rig = make_rig case in
  let totals = Array.make ncat 0 in
  let state = ref (config.seed lor 1) in
  let by_weight =
    List.init 33 (fun weight ->
        let counts = Array.make ncat 0 in
        let record mask =
          let cat = run_mask config rig case ~mask in
          let idx = Glitch_emu.Campaign.category_index cat in
          counts.(idx) <- counts.(idx) + 1;
          if weight > 0 then totals.(idx) <- totals.(idx) + 1
        in
        (* Enumerate whenever the whole population fits the sampling
           budget: drawing with replacement from a population smaller
           than the budget (weight 31: C(32,31) = 32 masks for 600
           draws) would count duplicate masks as independent trials. *)
        let exhaustive = Glitch_emu.Bitmask.choose 32 weight in
        if weight <= 2 || exhaustive <= config.samples_per_weight then
          Glitch_emu.Bitmask.iter_of_weight ~width:32 ~weight record
        else
          for _ = 1 to config.samples_per_weight do
            record (sample_mask state ~weight)
          done;
        (Array.fold_left ( + ) 0 counts, counts))
  in
  { case; config; by_weight; totals }

let success_percent r =
  let num = r.totals.(Glitch_emu.Campaign.category_index Glitch_emu.Campaign.Success) in
  let den = Array.fold_left ( + ) 0 r.totals in
  Stats.Rate.pct ~num ~den

let category_percent r cat =
  let num = r.totals.(Glitch_emu.Campaign.category_index cat) in
  let den = Array.fold_left ( + ) 0 r.totals in
  Stats.Rate.pct ~num ~den
