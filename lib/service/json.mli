(** A minimal JSON codec for the audit service's line protocol — the
    dependency set has no JSON library. Covers all of JSON except that
    numbers are split into [Int] (exact 63-bit integers) and [Float],
    and [\u]-escapes outside the BMP are not recombined into surrogate
    pairs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; anything but trailing whitespace
    after it is an error. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val string_value : t -> string option
val int_value : t -> int option
val bool_value : t -> bool option
