(* A minimal JSON codec for the audit service: the dependency set has
   no JSON library, and the protocol only needs objects, arrays,
   strings, booleans, null and numbers. The parser is a plain
   recursive descent over the input string; errors carry the byte
   offset. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_literal f)
  | String s -> escape_string b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Parse of int * string

let fail pos msg = raise (Parse (pos, msg))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c.pos "truncated \\u escape";
  let s = String.sub c.src c.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | Some v ->
    c.pos <- c.pos + 4;
    v
  | None -> fail c.pos (Printf.sprintf "bad \\u escape %S" s)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' -> utf8_of_code b (parse_hex4 c)
        | e -> fail (c.pos - 1) (Printf.sprintf "bad escape \\%c" e));
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail start (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List (List.rev (v :: acc))
        | _ -> fail c.pos "expected ',' or ']'"
      in
      items []
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev (kv :: acc))
        | _ -> fail c.pos "expected ',' or '}'"
      in
      fields []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing input at byte %d" c.pos)
    else Ok v
  | exception Parse (pos, msg) ->
    Error (Printf.sprintf "%s at byte %d" msg pos)

(* --- accessors -------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None
let bool_value = function Bool b -> Some b | _ -> None
