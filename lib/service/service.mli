(** The batch audit service behind [glitchctl serve]: one shared
    domain pool, one set of in-session shared memo stores, and one
    persistent result cache, amortized across many audit requests.

    Three temperature levels for a request:
    - {b hit} — the persistent cache holds an intact entry for the
      exact (case image, fault model, config, code version) key; the
      result is decoded with {e zero} sweep cases executed.
    - {b warm} — no cache entry, but this session already swept the
      same key, so the shared {!Runtime.Store} serves every word and
      again nothing is executed.
    - {b miss} — a real sweep runs (on the pool if one was given) and
      the result is persisted for next time. *)

module Json = Json
(** The line protocol's JSON codec, re-exported for clients and tests. *)

val code_version : string
(** Participates in every cache key; bump on any change to sweep
    semantics so old entries stop being addressable. *)

val cache_key : Glitch_emu.Campaign.config -> Glitch_emu.Testcase.t -> string
(** The persistent-cache key: assembled case image bytes x target
    index x fault model x config x {!code_version}. *)

val encode_result : Glitch_emu.Campaign.result -> string
(** Serialize a result's tables for {!Cache.store}. *)

val decode_result :
  Glitch_emu.Campaign.config ->
  Glitch_emu.Testcase.t ->
  string ->
  Glitch_emu.Campaign.result option
(** Decode and re-validate (counts sum to [2^16], totals re-derivable
    from the by-weight rows); any inconsistency is [None], i.e. a
    cache miss. Decoded results carry
    [stats = { executed = 0; memoized = 65536 }]. *)

type status = Hit | Warm | Miss

val status_name : status -> string
(** ["hit"], ["warm"], ["miss"]. *)

type t

val create : ?pool:Runtime.Pool.t -> ?cache:Cache.t -> unit -> t
(** A service sharing [pool] and [cache] across all subsequent
    requests. Omitting [cache] disables persistence (statuses are then
    only ever [Warm] or [Miss]); omitting [pool] sweeps sequentially. *)

val run_case :
  t ->
  Glitch_emu.Campaign.config ->
  Glitch_emu.Testcase.t ->
  Glitch_emu.Campaign.result * status
(** Serve one audit, from the cache when possible. Miss results are
    persisted before returning. *)

val handle_line : t -> string -> string
(** One line of the JSON protocol: parse a request object
    ([{"id": any, "case": "beq", "model": "and",
    "zero_is_invalid": false, "max_steps": 200}] — all fields but
    ["case"] optional), serve it, and render the response object (its
    ["cache"] field is the {!status_name}; ["executed"] is the number
    of sweep cases actually emulated). Malformed lines produce an
    [{"ok": false}] response rather than an exception — a bad request
    must not take the server down. *)

val find_case : string -> Glitch_emu.Testcase.t option
(** Case lookup by (case-insensitive) name, over the conditional
    branches and the non-branch snippets. *)
