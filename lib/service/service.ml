open Glitch_emu

(* Re-exported so protocol clients (and tests) can parse request and
   response lines with the same codec the server uses. *)
module Json = Json

(* Bump whenever the sweep semantics change (taxonomy, rig geometry,
   classification rules): cache entries written by a different code
   version must never be served. The version participates in every
   cache key, so stale entries simply stop being addressable. *)
let code_version = "campaign-v1"

let width = 16
let nmasks = 1 lsl width
let ncat = List.length Campaign.categories

let cache_key (config : Campaign.config) (case : Testcase.t) =
  Cache.key
    ~parts:
      [ "campaign";
        code_version;
        Bytes.to_string (Thumb.Encode.to_bytes case.instrs);
        string_of_int case.target_index;
        Glitch_emu.Fault_model.name config.flip;
        string_of_bool config.zero_is_invalid;
        string_of_int config.max_steps ]

(* --- result payload codec --------------------------------------------- *)

(* 17 by-weight rows of 6 counts, then the 6 totals, space-separated.
   Decoding re-validates the campaign invariants (counts sum to 2^16,
   totals re-derivable from the rows), so a payload that passed the
   cache's integrity digest but was written by a buggy producer still
   loads as a miss rather than as a wrong table. *)
let encode_result (r : Campaign.result) =
  let b = Buffer.create 1024 in
  let row counts =
    Array.iter
      (fun n ->
        Buffer.add_string b (string_of_int n);
        Buffer.add_char b ' ')
      counts
  in
  Array.iter row r.by_weight;
  row r.totals;
  Buffer.contents b

let decode_result (config : Campaign.config) (case : Testcase.t) payload =
  let fields =
    String.split_on_char ' ' payload |> List.filter (fun s -> s <> "")
  in
  let expected = ((width + 1) * ncat) + ncat in
  match List.map int_of_string_opt fields with
  | ints when List.length ints = expected && List.for_all (fun i -> i <> None) ints
    ->
    let ints = Array.of_list (List.map Option.get ints) in
    if Array.exists (fun n -> n < 0) ints then None
    else
      let by_weight =
        Array.init (width + 1) (fun w ->
            Array.init ncat (fun i -> ints.((w * ncat) + i)))
      in
      let totals = Array.init ncat (fun i -> ints.(((width + 1) * ncat) + i)) in
      let total_masks =
        Array.fold_left
          (fun acc row -> acc + Array.fold_left ( + ) 0 row)
          0 by_weight
      in
      let rederived i =
        let sum = ref 0 in
        for w = 1 to width do
          sum := !sum + by_weight.(w).(i)
        done;
        !sum
      in
      let consistent =
        total_masks = nmasks
        && Array.for_all Fun.id (Array.init ncat (fun i -> totals.(i) = rederived i))
      in
      if not consistent then None
      else
        Some
          { Campaign.case;
            config;
            by_weight;
            totals;
            stats = { executed = 0; memoized = nmasks } }
  | _ -> None

(* --- the service ------------------------------------------------------- *)

type status = Hit | Warm | Miss

let status_name = function Hit -> "hit" | Warm -> "warm" | Miss -> "miss"

type t = {
  pool : Runtime.Pool.t option;
  cache : Cache.t option;
  stores : (string, Runtime.Store.t) Hashtbl.t;
      (* in-session shared memo stores, keyed by the same cache key so
         a store is never reused across (config, case) pairs *)
}

let create ?pool ?cache () = { pool; cache; stores = Hashtbl.create 16 }

let run_case t config case =
  let key = cache_key config case in
  let cached =
    match t.cache with
    | None -> None
    | Some c ->
      Option.bind (Cache.load c ~key) (decode_result config case)
  in
  match cached with
  | Some r -> (r, Hit)
  | None ->
    let store =
      match Hashtbl.find_opt t.stores key with
      | Some s -> s
      | None ->
        let s = Campaign.make_store () in
        Hashtbl.add t.stores key s;
        s
    in
    let r = Campaign.run_case ?pool:t.pool ~store config case in
    Option.iter (fun c -> Cache.store c ~key (encode_result r)) t.cache;
    (r, if r.Campaign.stats.executed = 0 then Warm else Miss)

(* --- the line protocol -------------------------------------------------- *)

let all_cases = Testcase.all_conditional_branches @ Testcase.non_branch_cases

let find_case name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun (c : Testcase.t) -> String.lowercase_ascii c.name = needle)
    all_cases

let model_of_string s =
  match String.lowercase_ascii s with
  | "and" -> Some Glitch_emu.Fault_model.And
  | "or" -> Some Glitch_emu.Fault_model.Or
  | "xor" -> Some Glitch_emu.Fault_model.Xor
  | _ -> None

type request = {
  req_id : Json.t;
  req_case : Testcase.t;
  req_config : Campaign.config;
}

let parse_request json =
  let id = Option.value ~default:Json.Null (Json.member "id" json) in
  let str name = Option.bind (Json.member name json) Json.string_value in
  match str "case" with
  | None -> Error (id, "missing required string field \"case\"")
  | Some case_name -> (
    match find_case case_name with
    | None -> Error (id, Printf.sprintf "unknown case %S" case_name)
    | Some case -> (
      match
        Option.value ~default:(Some Glitch_emu.Fault_model.And)
          (Option.map model_of_string (str "model"))
      with
      | None -> Error (id, "unknown model (expected and, or, xor)")
      | Some model ->
        let config = Campaign.default_config model in
        let config =
          match Option.bind (Json.member "zero_is_invalid" json) Json.bool_value
          with
          | Some z -> { config with Campaign.zero_is_invalid = z }
          | None -> config
        in
        let config =
          match Option.bind (Json.member "max_steps" json) Json.int_value with
          | Some n when n > 0 -> { config with Campaign.max_steps = n }
          | Some _ | None -> config
        in
        Ok { req_id = id; req_case = case; req_config = config }))

let error_response id msg =
  Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.String msg) ]

let response req (r : Campaign.result) status elapsed_s =
  let totals =
    List.map
      (fun cat ->
        ( Campaign.category_name cat,
          Json.Int r.totals.(Campaign.category_index cat) ))
      Campaign.categories
  in
  let by_weight =
    Array.to_list r.by_weight
    |> List.map (fun row ->
           Json.List (Array.to_list row |> List.map (fun n -> Json.Int n)))
  in
  Json.Obj
    [ ("id", req.req_id);
      ("ok", Json.Bool true);
      ("case", Json.String req.req_case.name);
      ("model", Json.String (Glitch_emu.Fault_model.name req.req_config.flip));
      ("cache", Json.String (status_name status));
      ("executed", Json.Int r.stats.executed);
      ("memoized", Json.Int r.stats.memoized);
      ("elapsed_s", Json.Float elapsed_s);
      ("totals", Json.Obj totals);
      ("by_weight", Json.List by_weight) ]

let handle_request t json =
  match parse_request json with
  | Error (id, msg) -> error_response id msg
  | Ok req ->
    let t0 = Unix.gettimeofday () in
    let r, status = run_case t req.req_config req.req_case in
    response req r status (Unix.gettimeofday () -. t0)

let handle_line t line =
  let response =
    match Json.of_string line with
    | Error msg -> error_response Json.Null ("invalid JSON: " ^ msg)
    | Ok json -> handle_request t json
  in
  Json.to_string response
