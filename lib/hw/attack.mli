(** Experiment drivers for the real-world glitching study (Section V):
    the three branch guards of Table I, the back-to-back multi-glitch
    loops of Table II, and the long-glitch sweep of Table III, plus the
    generic full-parameter sweep the defended-firmware evaluation
    (Table VI) reuses.

    Each attempt rewinds the board to a snapshot taken at the firmware's
    first trigger edge, arms the glitch, and classifies the run. The
    rewind is observationally identical to the ChipWhisperer workflow of
    power-cycling before every attempt (the boot up to the trigger is
    deterministic and no glitch window can arm before the first edge
    exists), but skips re-emulating it 9,801 times per sweep. *)

type guard =
  | While_not_a  (** [while (!a)], a = 0 — the paper's most glitchable *)
  | While_a  (** [while (a)], a = 1 *)
  | While_ne_const  (** [while (a != 0xD3B9AEC6)], large Hamming distance *)

val all_guards : guard list
val guard_name : guard -> string

val single_loop_program : guard -> string
(** Trigger + one infinite guard loop; escaping puts [0xAA] in [r0] and
    hits a breakpoint. Instruction sequences match Table I's listings
    (8 cycles per iteration). *)

val double_loop_program : guard -> string
(** Trigger + loop, trigger reset/re-raise + identical second loop
    (Table II's setup). [r4] records progress: 1 after the first loop,
    and [r0 = 0xAA] after both. *)

val long_glitch_program : guard -> string
(** Table III's target: both loops back-to-back under a single trigger
    with minimal glue, so a 10-20 cycle window reaches into the second
    loop. *)

val comparator : guard -> int
(** Register number holding the compared value ([r3], [r3], [r2]). *)

val loop_cycles : int
(** 8 — each guard iteration's cycle count, bounding [ext_offset]. *)

type rig
(** A booted target: a board run glitch-free to its first trigger edge,
    the snapshot taken there, and the recorded unglitched continuation
    ({!Glitcher.baseline}). All sweep attempts start from the snapshot
    instead of a power-on reset. *)

val boot_rig : ?max_cycles:int -> string -> rig
(** Assemble the program, boot it to its trigger edge, snapshot, and
    record the baseline. [max_cycles] (default 300) is the per-attempt
    cycle budget every subsequent sweep on this rig runs under.
    [Invalid_argument] if the program never raises the trigger.
    Equivalent to [rig_of_boot (boot_once program)] but reuses the
    booted board. *)

type boot
(** The shareable product of booting: trigger snapshot, unglitched
    baseline, and boot metadata. Snapshot and baseline are deep copies
    that are only read afterwards, so one [boot] may back rigs on many
    worker domains concurrently — the boot emulation and baseline
    recording happen once per table instead of once per worker. *)

val boot_once : ?max_cycles:int -> string -> boot
(** Boot the program once, as {!boot_rig} does, keeping the shareable
    parts. *)

val rig_of_boot : boot -> rig
(** A rig on a {e fresh} private board (assemble + load only — no
    emulation) backed by the shared snapshot/baseline. Sound because
    every {!attempt} restores the snapshot before executing. *)

val attempt :
  ?config:Susceptibility.config ->
  ?nonce:int ->
  rig ->
  Glitcher.params list ->
  Glitcher.observation
(** One glitch attempt from the rig's trigger snapshot, with its
    dead-schedule baseline armed. *)

val boot_cycles : rig -> int
(** Cycles the boot to the trigger edge consumed (emulated once,
    replayed by every attempt). *)

val rig_board : rig -> Board.t
(** The rig's board, for post-mortem inspection after {!attempt}. *)

(** What a sweep cost: attempts issued, cycles actually emulated,
    cycles served by snapshot restore (boot replay + dead-schedule
    cutoff) that the reset-per-attempt workflow would have emulated,
    and boots performed (1 per table since the boot is shared across
    workers; it was once per worker before). *)
type sweep = {
  attempts : int;
  emulated_cycles : int;
  replayed_cycles : int;
  boots : int;
}

val sweep_zero : sweep
val sweep_add : sweep -> sweep -> sweep

(** One Table I cell: successes at a given cycle with the post-mortem
    comparator histogram. *)
type cycle_stats = { successes : int; values : (int * int) list }

type table1 = {
  guard : guard;
  per_cycle : cycle_stats array;  (** index = clock cycle 0-7 *)
  attempts_per_cycle : int;  (** derived from the sweep: 9,801 *)
  sweep1 : sweep;
}

val run_table1 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard -> table1
(** With [pool], the 8 per-cycle sweeps run on worker domains, each
    against a private board backed by the one shared {!boot}; every
    attempt restores the same trigger snapshot, so the table is
    bit-identical to the sequential run. Likewise for {!run_table2}
    and {!run_table3}. *)

type table2 = {
  guard2 : guard;
  partial : int array;  (** first glitch only, per cycle *)
  full : int array;  (** both glitches, per cycle *)
  attempts2 : int;  (** derived: total attempts across the 8 cycles *)
  sweep2 : sweep;
}

val run_table2 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard -> table2

type table3 = {
  guard3 : guard;
  windows : (int * int) list;
      (** [(last_cycle, successes)] for glitches covering cycles 0-10
          through 0-20 *)
  attempts_per_window : int;  (** derived from the sweep: 9,801 *)
  sweep3 : sweep;
}

val run_table3 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard -> table3

val full_parameter_sweep :
  ?config:Susceptibility.config ->
  rig ->
  make_schedule:(width:int -> offset:int -> Glitcher.params list) ->
  classify:(Board.t -> Glitcher.observation -> unit) ->
  sweep
(** Run one attempt per (width, offset) in [-49, 49]^2 from the rig's
    trigger snapshot. [classify] sees the post-mortem board. *)

val escaped : Board.t -> Glitcher.observation -> bool
(** Did the run reach the escape marker ([r0 = 0xAA] at a breakpoint)? *)
