(** Experiment drivers for the real-world glitching study (Section V):
    the three branch guards of Table I, the back-to-back multi-glitch
    loops of Table II, and the long-glitch sweep of Table III, plus the
    generic full-parameter sweep the defended-firmware evaluation
    (Table VI) reuses.

    Each attempt resets the board, waits for the firmware's trigger,
    arms the glitch, and classifies the run — exactly the
    ChipWhisperer workflow. *)

type guard =
  | While_not_a  (** [while (!a)], a = 0 — the paper's most glitchable *)
  | While_a  (** [while (a)], a = 1 *)
  | While_ne_const  (** [while (a != 0xD3B9AEC6)], large Hamming distance *)

val all_guards : guard list
val guard_name : guard -> string

val single_loop_program : guard -> string
(** Trigger + one infinite guard loop; escaping puts [0xAA] in [r0] and
    hits a breakpoint. Instruction sequences match Table I's listings
    (8 cycles per iteration). *)

val double_loop_program : guard -> string
(** Trigger + loop, trigger reset/re-raise + identical second loop
    (Table II's setup). [r4] records progress: 1 after the first loop,
    and [r0 = 0xAA] after both. *)

val long_glitch_program : guard -> string
(** Table III's target: both loops back-to-back under a single trigger
    with minimal glue, so a 10-20 cycle window reaches into the second
    loop. *)

val comparator : guard -> int
(** Register number holding the compared value ([r3], [r3], [r2]). *)

val loop_cycles : int
(** 8 — each guard iteration's cycle count, bounding [ext_offset]. *)

(** One Table I cell: successes at a given cycle with the post-mortem
    comparator histogram. *)
type cycle_stats = { successes : int; values : (int * int) list }

type table1 = {
  guard : guard;
  per_cycle : cycle_stats array;  (** index = clock cycle 0-7 *)
  attempts_per_cycle : int;  (** 9,801 *)
}

val run_table1 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard -> table1
(** With [pool], the 8 per-cycle sweeps run on worker domains, each
    against a private board; every attempt restores power-on state, so
    the table is bit-identical to the sequential run. Likewise for
    {!run_table2} and {!run_table3}. *)

type table2 = {
  guard2 : guard;
  partial : int array;  (** first glitch only, per cycle *)
  full : int array;  (** both glitches, per cycle *)
  attempts2 : int;
}

val run_table2 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard -> table2

val run_table3 :
  ?pool:Runtime.Pool.t -> ?config:Susceptibility.config -> guard ->
  (int * int) list
(** [(last_cycle, successes)] for glitches covering cycles 0-10 through
    0-20, 9,801 attempts each. *)

val full_parameter_sweep :
  ?config:Susceptibility.config ->
  ?max_cycles:int ->
  Board.t ->
  make_schedule:(width:int -> offset:int -> Glitcher.params list) ->
  classify:(Board.t -> Glitcher.observation -> unit) ->
  int
(** Run one attempt per (width, offset) in [-49, 49]^2; returns the
    attempt count (9,801). [classify] sees the post-mortem board. *)

val escaped : Board.t -> Glitcher.observation -> bool
(** Did the run reach the escape marker ([r0 = 0xAA] at a breakpoint)? *)
