(** The simulated target board: an STM32F0-class Cortex-M0 with flash,
    SRAM, a cycle counter (the DWT role), and a GPIO port whose pin the
    firmware raises as the glitcher's trigger — the paper's experimental
    setup, with the ChipWhisperer replaced by {!Glitcher}.

    A board is created once per experiment and [reset] between attempts
    (cheap: memory is cleared and the image rewritten), exactly like
    power-cycling the real target between glitch attempts. *)

type program =
  | Asm of string  (** hand-written guard loops (Tables I-III) *)
  | Image of Lower.Layout.image  (** linked firmware (Tables IV-VI) *)

type t

val gpio_base : int
(** [0x48000000]; the trigger data register lives at offset [0x28]. *)

val create : ?stack_top:int -> ?stack_fill:bool -> program -> t
(** [stack_top] defaults to [0x20003FE8] (the SP the paper reports).
    [stack_fill] (default true) pre-fills the stack area with a
    deterministic non-zero byte pattern, standing in for the boot
    garbage a real SRAM holds — corrupted address loads then return
    varied values, as observed in Table I. *)

val reset : t -> unit
(** Back to power-on state: zeroed RAM (plus stack fill), reloaded
    image, PC at the entry point, cycle counter and trigger log
    cleared. *)

val cycles : t -> int
val pc : t -> int
val reg : t -> int -> int
val flags_z : t -> bool

val trigger_edges : t -> int list
(** Cycle stamps of rising edges on the trigger pin, oldest first. Each
    stamp is the cycle at which the instruction after the store begins,
    i.e. the paper's "trigger exactly 1 clock cycle before the targeted
    instruction". *)

val read_global : t -> string -> int option
(** For [Image] programs: current value of a firmware global. *)

val symbol : t -> string -> int option
(** For [Image] programs: address of a function symbol. *)

(** Fault applied to a single step, already concretised by the glitcher. *)
type applied =
  | Normal
  | As_nop  (** instruction replaced by a NOP *)
  | Fetch_word of int  (** this encoding executes instead *)
  | Load_value of int  (** load executes; destination forced to value *)
  | Load_mangle of (int -> int)  (** destination passed through a corruption *)
  | Z_flip  (** Z inverted after the instruction *)
  | Pc_set of int  (** program counter latch overwritten *)

val peek : t -> (Thumb.Instr.t, Machine.Exec.stop) result
(** Decode the next instruction without executing. *)

val word_at : t -> int -> int option
(** Raw halfword at an address (pipeline decode/fetch stage contents). *)

val instr_duration : t -> Thumb.Instr.t -> int
(** Cycles the instruction will consume if stepped unglitched from the
    current state: conditional branches are resolved against the live
    flags, so a not-taken branch counts 1 cycle, not 3. Agrees exactly
    with the cycle counter's post-hoc accounting; the glitcher uses it
    to test window overlap against cycles that actually elapse. *)

val step : ?applied:applied -> t -> Machine.Exec.step_result
(** Execute one instruction under the given fault, advancing the cycle
    counter by the Cortex-M0 cost of what actually executed. *)

val run_plain : ?max_cycles:int -> t -> [ `Stopped of Machine.Exec.stop | `Timeout ]
(** Glitch-free execution (baseline measurements, Table IV). *)

val run_until_trigger : ?max_cycles:int -> t -> bool
(** Run glitch-free until the first trigger edge fires; true on
    success. Used to fast-forward through (expensive, deterministic)
    boot code before snapshotting. *)

type snapshot

val snapshot : t -> snapshot
(** Full board state: RAM, registers, cycle counter, trigger log. *)

val restore : t -> snapshot -> unit
(** Rewind to a snapshot — the fast equivalent of a power cycle plus
    deterministic re-run for attack campaigns whose pre-trigger boot
    takes hundreds of thousands of cycles (flash-commit in the delay
    defense). *)
