type program = Asm of string | Image of Lower.Layout.image

let gpio_base = 0x48000000
let flash_base = 0x08000000
let sram_base = 0x20000000
let sram_size = 16 * 1024

type t = {
  mem : Machine.Memory.t;
  mutable cpu : Machine.Cpu.t;
  mutable cycles : int;
  mutable edges : int list;  (* newest first *)
  edge_pending : bool ref;
  gpio_state : int ref;
  program : program;
  text : bytes;  (* encoded program image *)
  data_init : (int * int) list;
  entry : int;
  stack_top : int;
  stack_fill : bool;
}

let text_of_program = function
  | Asm source -> Thumb.Encode.to_bytes (Thumb.Asm.assemble source)
  | Image image ->
    let b = Bytes.create (2 * Array.length image.Lower.Layout.words) in
    Array.iteri
      (fun i w ->
        Bytes.set_uint8 b (2 * i) (w land 0xFF);
        Bytes.set_uint8 b ((2 * i) + 1) ((w lsr 8) land 0xFF))
      image.Lower.Layout.words;
    b

(* Deterministic "boot garbage" for the stack area: a real SRAM powers
   up with residual values; corrupted address computations then load
   varied small bytes (Table I's 0x55 / 0x68 / 0xFF comparator values). *)
let fill_stack mem ~stack_top =
  let pattern = [| 0x55; 0x00; 0x68; 0xFF; 0x08; 0x00; 0x55; 0x01 |] in
  for i = 0 to 255 do
    let addr = stack_top - 256 + i in
    match Machine.Memory.write_u8 mem addr pattern.(i land 7) with
    | Ok () -> ()
    | Error _ -> ()
  done

let load_image t =
  Machine.Memory.clear t.mem;
  Machine.Memory.load_bytes t.mem ~addr:flash_base t.text;
  List.iter
    (fun (addr, v) ->
      match Machine.Memory.write_u32 t.mem addr v with
      | Ok () -> ()
      | Error _ -> invalid_arg "Board: data init outside RAM")
    t.data_init;
  if t.stack_fill then fill_stack t.mem ~stack_top:t.stack_top

let reset t =
  load_image t;
  t.cpu <- Machine.Cpu.create ~sp:t.stack_top ~pc:t.entry ();
  t.cycles <- 0;
  t.edges <- [];
  t.edge_pending := false;
  t.gpio_state := 0

let create ?(stack_top = 0x20003FE8) ?(stack_fill = true) program =
  let mem = Machine.Memory.create () in
  Machine.Memory.map mem ~addr:flash_base ~size:(128 * 1024);
  Machine.Memory.map mem ~addr:sram_base ~size:sram_size;
  let edge_pending = ref false in
  let gpio_state = ref 0 in
  Machine.Memory.add_device mem ~addr:gpio_base ~size:0x100
    ~read:(fun off -> if off = 0x28 then !gpio_state else 0)
    ~write:(fun off v ->
      if off = 0x28 then begin
        let bit = v land 1 in
        if bit = 1 && !gpio_state = 0 then edge_pending := true;
        gpio_state := bit
      end);
  let data_init, entry =
    match program with
    | Asm _ -> ([], flash_base)
    | Image image -> (image.Lower.Layout.data_init, image.Lower.Layout.entry)
  in
  let t =
    { mem;
      cpu = Machine.Cpu.create ();
      cycles = 0;
      edges = [];
      edge_pending;
      gpio_state;
      program;
      text = text_of_program program;
      data_init;
      entry;
      stack_top;
      stack_fill }
  in
  reset t;
  t

let cycles t = t.cycles
let pc t = Machine.Cpu.pc t.cpu
let reg t n = Machine.Cpu.get t.cpu (Thumb.Reg.of_int n)
let flags_z t = t.cpu.Machine.Cpu.z
let trigger_edges t = List.rev t.edges

let read_global t name =
  match t.program with
  | Asm _ -> None
  | Image image -> (
    match List.assoc_opt name image.Lower.Layout.global_addrs with
    | None -> None
    | Some addr -> (
      match Machine.Memory.read_u32 t.mem addr with
      | Ok v -> Some v
      | Error _ -> None))

let symbol t name =
  match t.program with
  | Asm _ -> None
  | Image image -> List.assoc_opt name image.Lower.Layout.symbols

type applied =
  | Normal
  | As_nop
  | Fetch_word of int
  | Load_value of int
  | Load_mangle of (int -> int)
  | Z_flip
  | Pc_set of int

let word_at t addr =
  match Machine.Memory.read_u16 t.mem addr with Ok w -> Some w | Error _ -> None

let peek t =
  match Machine.Memory.read_u16 t.mem (pc t) with
  | Error (Machine.Memory.Unmapped a | Machine.Memory.Unaligned a) ->
    Error (Machine.Exec.Bad_fetch a)
  | Ok w -> Ok (Thumb.Decode.of_word w)

let load_destination (i : Thumb.Instr.t) : Thumb.Reg.t option =
  match i with
  | Ldr_pc (rd, _) -> Some rd
  | Mem_reg { load = true; rd; _ }
  | Mem_imm { load = true; rd; _ }
  | Mem_half { load = true; rd; _ }
  | Mem_sp { load = true; rd; _ } -> Some rd
  | Mem_sign { op = LDSB | LDRH | LDSH; rd; _ } -> Some rd
  | Mem_sign { op = STRH; _ } | Mem_reg _ | Mem_imm _ | Mem_half _ | Mem_sp _
  | Shift _ | Add_sub _ | Imm _ | Alu _ | Hi_add _ | Hi_cmp _ | Hi_mov _
  | Bx _ | Load_addr _ | Sp_adjust _ | Push _ | Pop _ | Stmia _ | Ldmia _
  | B_cond _ | Swi _ | B _ | Bl_hi _ | Bl_lo _ | Bkpt _ | Undefined _ -> None

let finish_step t ~duration result =
  t.cycles <- t.cycles + duration;
  if !(t.edge_pending) then begin
    t.edges <- t.cycles :: t.edges;
    t.edge_pending := false
  end;
  result

let execute_counted t instr =
  let pc_before = pc t in
  let result = Machine.Exec.execute t.mem t.cpu instr in
  let taken =
    match result with
    | Machine.Exec.Running -> pc t <> pc_before + 2
    | Machine.Exec.Stopped _ -> false
  in
  (result, Thumb.Cycles.of_instr ~taken instr)

(* Predict, before executing, how many cycles [instr] will consume if it
   runs unglitched: the branch direction is decided by the current flags.
   Must agree with [execute_counted]'s post-hoc accounting — including
   the degenerate branch-to-next-instruction case, which the counter sees
   as not taken because the PC ends up at [pc + 2] either way. *)
let instr_duration t (instr : Thumb.Instr.t) =
  let taken =
    match instr with
    | Thumb.Instr.B_cond (cond, off) ->
      off <> -1 && Machine.Cpu.condition_holds t.cpu cond
    | _ -> true
  in
  Thumb.Cycles.of_instr ~taken instr

let step ?(applied = Normal) t =
  match peek t with
  | Error stop -> Machine.Exec.Stopped stop
  | Ok instr -> (
    match applied with
    | Normal ->
      let result, duration = execute_counted t instr in
      finish_step t ~duration result
    | As_nop ->
      Machine.Cpu.set_pc t.cpu (pc t + 2);
      finish_step t ~duration:1 Machine.Exec.Running
    | Fetch_word w ->
      let result, duration = execute_counted t (Thumb.Decode.of_word w) in
      finish_step t ~duration result
    | Load_value v ->
      let result, duration = execute_counted t instr in
      (match (result, load_destination instr) with
      | Machine.Exec.Running, Some rd -> Machine.Cpu.set t.cpu rd v
      | (Machine.Exec.Running | Machine.Exec.Stopped _), _ -> ());
      finish_step t ~duration result
    | Load_mangle f ->
      let result, duration = execute_counted t instr in
      (match (result, load_destination instr) with
      | Machine.Exec.Running, Some rd ->
        Machine.Cpu.set t.cpu rd (f (Machine.Cpu.get t.cpu rd))
      | (Machine.Exec.Running | Machine.Exec.Stopped _), _ -> ());
      finish_step t ~duration result
    | Z_flip ->
      let result, duration = execute_counted t instr in
      (match result with
      | Machine.Exec.Running -> t.cpu.Machine.Cpu.z <- not t.cpu.Machine.Cpu.z
      | Machine.Exec.Stopped _ -> ());
      finish_step t ~duration result
    | Pc_set target ->
      Machine.Cpu.set_pc t.cpu target;
      finish_step t ~duration:1 Machine.Exec.Running)

let run_plain ?(max_cycles = 1_000_000) t =
  let rec go () =
    if t.cycles >= max_cycles then `Timeout
    else
      match step t with
      | Machine.Exec.Running -> go ()
      | Machine.Exec.Stopped s -> `Stopped s
  in
  go ()

let run_until_trigger ?(max_cycles = 1_000_000) t =
  let rec go () =
    if t.cycles >= max_cycles then false
    else if t.edges <> [] then true
    else
      match step t with
      | Machine.Exec.Running -> go ()
      | Machine.Exec.Stopped _ -> false
  in
  go ()

type snapshot = {
  s_mem : Machine.Memory.snapshot;
  s_cpu : Machine.Cpu.t;
  s_cycles : int;
  s_edges : int list;
  s_pending : bool;
  s_gpio : int;
}

let snapshot t =
  { s_mem = Machine.Memory.snapshot t.mem;
    s_cpu = Machine.Cpu.copy t.cpu;
    s_cycles = t.cycles;
    s_edges = t.edges;
    s_pending = !(t.edge_pending);
    s_gpio = !(t.gpio_state) }

let restore t snap =
  Machine.Memory.restore t.mem snap.s_mem;
  t.cpu <- Machine.Cpu.copy snap.s_cpu;
  t.cycles <- snap.s_cycles;
  t.edges <- snap.s_edges;
  t.edge_pending := snap.s_pending;
  t.gpio_state := snap.s_gpio
