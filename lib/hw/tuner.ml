type result = {
  found : (int * int * int) option;
  attempts : int;
  successes : int;
  seconds : float;
  emulated_cycles : int;
  replayed_cycles : int;
}

let per_attempt_s = 0.095

let search ?(config = Susceptibility.default) ?(coarse_step = 2) guard =
  let rig = Attack.boot_rig (Attack.single_loop_program guard) in
  let attempts = ref 0 and successes = ref 0 in
  let emulated = ref 0 and replayed = ref 0 in
  let try_once ~width ~offset ~ext_offset ~repeat ~nonce =
    incr attempts;
    let schedule =
      [ Glitcher.with_repeat (Glitcher.single ~width ~offset ~ext_offset) repeat ]
    in
    let obs = Attack.attempt ~config ~nonce rig schedule in
    emulated := !emulated + (obs.Glitcher.cycles - obs.Glitcher.replayed_cycles);
    replayed := !replayed + obs.Glitcher.replayed_cycles;
    let ok = Attack.escaped (Attack.rig_board rig) obs in
    if ok then incr successes;
    ok
  in
  (* Phase 1: coarse scan with a glitch blanketing the whole loop. *)
  let candidates = ref [] in
  let width = ref (-49) in
  while !width <= 49 do
    let offset = ref (-49) in
    while !offset <= 49 do
      if try_once ~width:!width ~offset:!offset ~ext_offset:0
           ~repeat:Attack.loop_cycles ~nonce:0
      then candidates := (!width, !offset) :: !candidates;
      offset := !offset + coarse_step
    done;
    width := !width + coarse_step
  done;
  (* Phase 2: around each candidate, increase precision — explore the
     neighbourhood at full resolution, narrow to single cycles, and
     demand 10 consecutive successes (the paper's 10-out-of-10
     criterion). Failures abort a point early, so most probes cost one
     or two attempts. *)
  let in_range v = v >= -49 && v <= 49 in
  let ten_of_ten ~width ~offset ~ext_offset =
    let rec go nonce =
      if nonce > 10 then true
      else if try_once ~width ~offset ~ext_offset ~repeat:1 ~nonce then
        go (nonce + 1)
      else false
    in
    go 1
  in
  let rec refine = function
    | [] -> None
    | (w, o) :: rest ->
      let result = ref None in
      let dw = ref (-2) in
      while !result = None && !dw <= 2 do
        let doff = ref (-2) in
        while !result = None && !doff <= 2 do
          let width = w + !dw and offset = o + !doff in
          if in_range width && in_range offset then begin
            let cycle = ref 0 in
            while !result = None && !cycle < Attack.loop_cycles do
              if ten_of_ten ~width ~offset ~ext_offset:!cycle then
                result := Some (width, offset, !cycle);
              incr cycle
            done
          end;
          incr doff
        done;
        incr dw
      done;
      (match !result with Some triple -> Some triple | None -> refine rest)
  in
  let found = refine (List.rev !candidates) in
  { found;
    attempts = !attempts;
    successes = !successes;
    seconds = float_of_int !attempts *. per_attempt_s;
    emulated_cycles = !emulated;
    replayed_cycles = !replayed }
