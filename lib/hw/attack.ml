type guard = While_not_a | While_a | While_ne_const

let all_guards = [ While_not_a; While_a; While_ne_const ]

let guard_name = function
  | While_not_a -> "while(!a)"
  | While_a -> "while(a)"
  | While_ne_const -> "while(a!=0xD3B9AEC6)"

let loop_cycles = 8

(* Raise the trigger pin: r1 holds the GPIO data-register address
   afterwards (0x48000028). *)
let trigger_preamble =
  {|
  movs r1, #0x48
  lsls r1, r1, #24
  adds r1, #0x28
  movs r2, #1
  str  r2, [r1, #0]
|}

let retrigger = {|
  movs r2, #0
  str  r2, [r1, #0]
  movs r2, #1
  str  r2, [r1, #0]
|}

(* The guard loops match Table I's instruction listings: 8 cycles per
   iteration (MOV 1, ADDS 1, LDRB 2, CMP 1, B<cond> 3). *)
let simple_loop ~label ~branch =
  Printf.sprintf
    {|
%s:
  mov  r3, sp
  adds r3, #7
  ldrb r3, [r3]
  cmp  r3, #0
  %s   %s
|}
    label branch label

(* a lives in the byte at [sp+7]. *)
let store_a value =
  Printf.sprintf "  movs r2, #%d\n  mov  r3, sp\n  strb r2, [r3, #7]\n" value

(* while (a != 0xD3B9AEC6): a is the word at [sp+16], the constant comes
   from a literal pool (LDR Rd, =imm), as compiled code does. The pool
   offsets below are fixed by the program layout and checked by the
   dedicated unit test. *)
let ne_const_single =
  {|
  movs r1, #0x48
  lsls r1, r1, #24
  adds r1, #0x28
  ldr  r2, [pc, #20]
  str  r2, [sp, #16]
  movs r2, #1
  str  r2, [r1, #0]
loop:
  ldr  r2, [sp, #16]
  ldr  r3, [pc, #12]
  cmp  r2, r3
  bne  loop
  movs r0, #0xAA
  bkpt #0
  nop
lit0:
  .word 0xE7D25763
lit1:
  .word 0xD3B9AEC6
|}

let ne_const_double =
  {|
  movs r1, #0x48
  lsls r1, r1, #24
  adds r1, #0x28
  ldr  r2, [pc, #40]
  str  r2, [sp, #16]
  movs r2, #1
  str  r2, [r1, #0]
loop1:
  ldr  r2, [sp, #16]
  ldr  r3, [pc, #32]
  cmp  r2, r3
  bne  loop1
  movs r4, #1
  movs r2, #0
  str  r2, [r1, #0]
  movs r2, #1
  str  r2, [r1, #0]
loop2:
  ldr  r2, [sp, #16]
  ldr  r3, [pc, #16]
  cmp  r2, r3
  bne  loop2
  movs r0, #0xAA
  bkpt #0
  nop
  nop
lit0:
  .word 0xE7D25763
lit1:
  .word 0xD3B9AEC6
|}

let single_loop_program = function
  | While_not_a ->
    store_a 0 ^ trigger_preamble
    ^ simple_loop ~label:"loop" ~branch:"beq"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_a ->
    store_a 1 ^ trigger_preamble
    ^ simple_loop ~label:"loop" ~branch:"bne"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_ne_const -> ne_const_single

(* Table III's target: the same two loops but back-to-back under a
   single trigger, so a glitch stretched over 10-20 cycles can reach
   into the second loop (the paper's long-glitch setup). *)
let ne_const_long =
  {|
  movs r1, #0x48
  lsls r1, r1, #24
  adds r1, #0x28
  ldr  r2, [pc, #28]
  str  r2, [sp, #16]
  movs r2, #1
  str  r2, [r1, #0]
loop1:
  ldr  r2, [sp, #16]
  ldr  r3, [pc, #20]
  cmp  r2, r3
  bne  loop1
  movs r4, #1
loop2:
  ldr  r2, [sp, #16]
  ldr  r3, [pc, #12]
  cmp  r2, r3
  bne  loop2
  movs r0, #0xAA
  bkpt #0
lit0:
  .word 0xE7D25763
lit1:
  .word 0xD3B9AEC6
|}

let long_glitch_program = function
  | While_not_a ->
    store_a 0 ^ trigger_preamble
    ^ simple_loop ~label:"loop1" ~branch:"beq"
    ^ "  movs r4, #1\n"
    ^ simple_loop ~label:"loop2" ~branch:"beq"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_a ->
    store_a 1 ^ trigger_preamble
    ^ simple_loop ~label:"loop1" ~branch:"bne"
    ^ "  movs r4, #1\n"
    ^ simple_loop ~label:"loop2" ~branch:"bne"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_ne_const -> ne_const_long

let double_loop_program = function
  | While_not_a ->
    store_a 0 ^ trigger_preamble
    ^ simple_loop ~label:"loop1" ~branch:"beq"
    ^ "  movs r4, #1\n" ^ retrigger
    ^ simple_loop ~label:"loop2" ~branch:"beq"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_a ->
    store_a 1 ^ trigger_preamble
    ^ simple_loop ~label:"loop1" ~branch:"bne"
    ^ "  movs r4, #1\n" ^ retrigger
    ^ simple_loop ~label:"loop2" ~branch:"bne"
    ^ "  movs r0, #0xAA\n  bkpt #0\n"
  | While_ne_const -> ne_const_double

let comparator = function
  | While_not_a | While_a -> 3
  | While_ne_const -> 2

let escaped board (obs : Glitcher.observation) =
  match obs.stop with
  | `Stopped (Machine.Exec.Breakpoint 0) -> Board.reg board 0 = 0xAA
  | `Stopped
      (Machine.Exec.Breakpoint _ | Machine.Exec.Swi_trap _
      | Machine.Exec.Bad_read _ | Machine.Exec.Bad_write _
      | Machine.Exec.Bad_fetch _ | Machine.Exec.Invalid_instruction _
      | Machine.Exec.Step_limit)
  | `Timeout -> false

(* --- the sweep kernel ------------------------------------------------------- *)

(* A booted target, ready for snapshot-replay attacks: the board has run
   glitch-free to its first trigger edge (the deterministic "boot"), the
   state at that edge is snapshotted, and the unglitched continuation is
   recorded as a baseline. Every attempt then starts from the snapshot
   instead of a power-on reset — sound because no glitch window can arm
   before the first trigger edge exists — and ends via the baseline the
   moment its schedule is provably dead. *)
type rig = {
  rig_board : Board.t;
  rig_snap : Board.snapshot;
  rig_baseline : Glitcher.baseline;
  rig_max_cycles : int;
  boot_cycles : int;
}

(* The boot, separated from the rig so it can be shared: the snapshot
   and baseline are deep copies ([Memory.snapshot] copies every region,
   [Cpu.copy] the registers) that are only ever read afterwards —
   [Board.restore] and baseline validity checks blit/compare FROM them
   — so handing the same boot to several worker domains is sound. Each
   worker still needs a private [Board.t] (boards mutate on every
   attempt), but materializing one is an assemble-and-load, not the
   boot emulation plus up-to-[max_cycles] baseline recording that
   booting per worker used to cost. *)
type boot = {
  b_program : string;
  b_snap : Board.snapshot;
  b_baseline : Glitcher.baseline;
  b_max_cycles : int;
  b_boot_cycles : int;
  b_board : Board.t;  (* the board that booted; claimable by one rig *)
}

let boot_once ?(max_cycles = 300) program =
  let board = Board.create (Board.Asm program) in
  if not (Board.run_until_trigger board ~max_cycles) then
    invalid_arg "Attack.boot_once: program never raises its trigger";
  let snap = Board.snapshot board in
  let boot_cycles = Board.cycles board in
  let baseline = Glitcher.baseline ~max_cycles board ~from:snap in
  { b_program = program;
    b_snap = snap;
    b_baseline = baseline;
    b_max_cycles = max_cycles;
    b_boot_cycles = boot_cycles;
    b_board = board }

(* A fresh board for the shared boot. Attempts restore the snapshot
   before executing anything, so the board only has to have the same
   memory map as the booted one — which [Board.create] on the same
   program guarantees. *)
let rig_of_boot boot =
  { rig_board = Board.create (Board.Asm boot.b_program);
    rig_snap = boot.b_snap;
    rig_baseline = boot.b_baseline;
    rig_max_cycles = boot.b_max_cycles;
    boot_cycles = boot.b_boot_cycles }

let boot_rig ?max_cycles program =
  let boot = boot_once ?max_cycles program in
  { rig_board = boot.b_board;
    rig_snap = boot.b_snap;
    rig_baseline = boot.b_baseline;
    rig_max_cycles = boot.b_max_cycles;
    boot_cycles = boot.b_boot_cycles }

let boot_cycles rig = rig.boot_cycles
let rig_board rig = rig.rig_board

let attempt ?config ?nonce rig schedule =
  Glitcher.run ?config ~max_cycles:rig.rig_max_cycles ?nonce
    ~from:rig.rig_snap ~baseline:rig.rig_baseline rig.rig_board schedule

type sweep = {
  attempts : int;
  emulated_cycles : int;
  replayed_cycles : int;
  boots : int;
}

let sweep_zero =
  { attempts = 0; emulated_cycles = 0; replayed_cycles = 0; boots = 0 }

let sweep_add a b =
  { attempts = a.attempts + b.attempts;
    emulated_cycles = a.emulated_cycles + b.emulated_cycles;
    replayed_cycles = a.replayed_cycles + b.replayed_cycles;
    boots = a.boots + b.boots }

let full_parameter_sweep ?config rig ~make_schedule ~classify =
  let attempts = ref 0 and emulated = ref 0 and replayed = ref 0 in
  for width = -49 to 49 do
    for offset = -49 to 49 do
      incr attempts;
      let schedule = make_schedule ~width ~offset in
      let obs = attempt ?config rig schedule in
      emulated := !emulated + (obs.Glitcher.cycles - obs.Glitcher.replayed_cycles);
      replayed := !replayed + obs.Glitcher.replayed_cycles;
      classify rig.rig_board obs
    done
  done;
  { attempts = !attempts;
    emulated_cycles = !emulated;
    replayed_cycles = !replayed;
    boots = 0 }

(* --- Table I ---------------------------------------------------------------- *)

type cycle_stats = { successes : int; values : (int * int) list }

type table1 = {
  guard : guard;
  per_cycle : cycle_stats array;
  attempts_per_cycle : int;
  sweep1 : sweep;
}

(* Every attempt rewinds the board to the same trigger snapshot, so a
   cycle's statistics depend only on (program, cycle, fault config) —
   never on which board object ran it or in what order. The parallel
   paths exploit this: the boot happens ONCE, each work item gets a
   private board sharing the boot's snapshot/baseline (see [boot]),
   and per-item results are reassembled by index, bit-identical to
   the sequential sweep. *)
let map_cycles ?pool ~boot f =
  match pool with
  | Some pool when Runtime.Pool.jobs pool > 1 ->
    Runtime.Pool.map_array pool
      (fun cycle -> f (rig_of_boot boot) cycle)
      (Array.init loop_cycles Fun.id)
  | Some _ | None ->
    let rig = rig_of_boot boot in
    Array.init loop_cycles (f rig)

let run_table1 ?pool ?config guard =
  let cmp_reg = comparator guard in
  let run_cycle rig cycle =
    let successes = ref 0 in
    let values : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let sweep =
      full_parameter_sweep ?config rig
        ~make_schedule:(fun ~width ~offset ->
          [ Glitcher.single ~width ~offset ~ext_offset:cycle ])
        ~classify:(fun board obs ->
          if escaped board obs then begin
            incr successes;
            let v = Board.reg board cmp_reg in
            Hashtbl.replace values v
              (1 + Option.value ~default:0 (Hashtbl.find_opt values v))
          end)
    in
    ( { successes = !successes;
        values =
          Hashtbl.fold (fun v c acc -> (v, c) :: acc) values []
          |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1) },
      sweep )
  in
  let boot = boot_once (single_loop_program guard) in
  let cells = map_cycles ?pool ~boot run_cycle in
  let sweep = Array.fold_left (fun acc (_, s) -> sweep_add acc s) sweep_zero cells in
  let sweep = { sweep with boots = 1 } in
  { guard;
    per_cycle = Array.map fst cells;
    attempts_per_cycle = sweep.attempts / loop_cycles;
    sweep1 = sweep }

(* --- Table II ---------------------------------------------------------------- *)

type table2 = {
  guard2 : guard;
  partial : int array;
  full : int array;
  attempts2 : int;
  sweep2 : sweep;
}

let run_table2 ?pool ?config guard =
  let run_cycle rig cycle =
    let partial = ref 0 and full = ref 0 in
    let sweep =
      full_parameter_sweep ?config rig
        ~make_schedule:(fun ~width ~offset ->
          [ Glitcher.single ~width ~offset ~ext_offset:cycle;
            { (Glitcher.single ~width ~offset ~ext_offset:cycle) with
              trigger_index = 1 } ])
        ~classify:(fun board obs ->
          if escaped board obs then incr full
          else if Board.reg board 4 = 1 then incr partial)
    in
    (!partial, !full, sweep)
  in
  let boot = boot_once ~max_cycles:500 (double_loop_program guard) in
  let cells = map_cycles ?pool ~boot run_cycle in
  let sweep =
    Array.fold_left (fun acc (_, _, s) -> sweep_add acc s) sweep_zero cells
  in
  let sweep = { sweep with boots = 1 } in
  { guard2 = guard;
    partial = Array.map (fun (p, _, _) -> p) cells;
    full = Array.map (fun (_, f, _) -> f) cells;
    attempts2 = sweep.attempts;
    sweep2 = sweep }

(* --- Table III ---------------------------------------------------------------- *)

type table3 = {
  guard3 : guard;
  windows : (int * int) list;
  attempts_per_window : int;
  sweep3 : sweep;
}

let run_table3 ?pool ?config guard =
  let run_window rig last_cycle =
    let successes = ref 0 in
    let sweep =
      full_parameter_sweep ?config rig
        ~make_schedule:(fun ~width ~offset ->
          [ Glitcher.with_repeat
              (Glitcher.single ~width ~offset ~ext_offset:0)
              (last_cycle + 1) ])
        ~classify:(fun board obs -> if escaped board obs then incr successes)
    in
    (last_cycle, !successes, sweep)
  in
  let boot = boot_once ~max_cycles:800 (long_glitch_program guard) in
  let windows = [| 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 |] in
  let rows =
    match pool with
    | Some pool when Runtime.Pool.jobs pool > 1 ->
      Runtime.Pool.map_array pool
        (fun last_cycle -> run_window (rig_of_boot boot) last_cycle)
        windows
    | Some _ | None ->
      let rig = rig_of_boot boot in
      Array.map (run_window rig) windows
  in
  let sweep =
    Array.fold_left (fun acc (_, _, s) -> sweep_add acc s) sweep_zero rows
  in
  let sweep = { sweep with boots = 1 } in
  { guard3 = guard;
    windows = Array.to_list rows |> List.map (fun (w, s, _) -> (w, s));
    attempts_per_window = sweep.attempts / Array.length windows;
    sweep3 = sweep }
