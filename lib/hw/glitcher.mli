(** The ChipWhisperer stand-in: drives the target's clock and inserts
    glitches at programmed points relative to the trigger pin.

    Parameters mirror the real tool: [ext_offset] counts clock cycles
    from a trigger edge, [width] and [offset] shape the inserted clock
    edge as percentages in [-49, +49] (Figure 1), and [repeat] stretches
    the glitch over multiple consecutive cycles (the long-glitch attack
    of Table III). A schedule may arm several glitches, each on its own
    trigger edge — the multi-glitch attack of Table II uses two entries
    with identical parameters on triggers 0 and 1. *)

type params = {
  width : int;  (** [-49, 49] *)
  offset : int;  (** [-49, 49] *)
  ext_offset : int;  (** cycles after the trigger edge *)
  repeat : int;  (** number of consecutive glitched cycles, >= 1 *)
  trigger_index : int;  (** which rising edge arms this glitch (0-based) *)
}

val single : width:int -> offset:int -> ext_offset:int -> params
val with_repeat : params -> int -> params

type observation = {
  stop : [ `Stopped of Machine.Exec.stop | `Timeout ];
  cycles : int;  (** total cycles on the board at stop *)
  fired : int;  (** glitched cycles that actually produced a fault *)
  glitched_cycles : int;  (** cycles that fell inside an armed window *)
  replayed_cycles : int;
      (** of [cycles], how many were served by snapshot restore (the
          pre-trigger boot when running [~from], plus the dead-schedule
          tail when a [baseline] cut the attempt short) rather than
          emulated instruction by instruction *)
}

val active_window :
  params list -> int list -> start:int -> duration:int -> (params * int) option
(** Does any armed window overlap cycles [start, start + duration)?
    [edges] are the trigger-edge cycle stamps, oldest first. Returns the
    window containing the earliest overlapping {e absolute} cycle plus
    that cycle's position relative to the window's own trigger edge.
    Exposed for the multi-trigger tie-break regression test. *)

type baseline
(** The unglitched continuation from a trigger snapshot: end state, stop
    reason, final cycle count, and how many trigger edges ever fire.
    Lets {!run} cut an attempt short the moment its schedule is provably
    dead — no fault applied, nothing pending, every window closed or
    waiting on an edge that never comes — by restoring the recorded end
    state, which is bit-identical to emulating the rest. *)

val baseline : ?max_cycles:int -> Board.t -> from:Board.snapshot -> baseline
(** Run the board glitch-free from the snapshot to completion (or
    [max_cycles], default 3,000) and record the outcome. The resulting
    baseline is only valid for {!run} calls with the same [from] and the
    same [max_cycles] (checked; [Invalid_argument] otherwise). *)

val run :
  ?config:Susceptibility.config ->
  ?max_cycles:int ->
  ?nonce:int ->
  ?from:Board.snapshot ->
  ?baseline:baseline ->
  Board.t ->
  params list ->
  observation
(** Reset the board (or rewind it to [from]) and run it to completion
    (or [max_cycles] total board cycles, default 3,000) with the
    schedule armed. [nonce] separates repeated attempts with identical
    parameters (attempt-level noise). The board is left un-reset for
    post-mortem inspection.

    [baseline] enables the dead-schedule cutoff: once execution is
    provably identical to the unglitched run forever after, the recorded
    end state is restored instead of emulated. Observations (and the
    post-mortem board) are bit-identical with or without it; only
    [replayed_cycles] reflects the shortcut. *)
