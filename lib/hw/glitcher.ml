type params = {
  width : int;
  offset : int;
  ext_offset : int;
  repeat : int;
  trigger_index : int;
}

let single ~width ~offset ~ext_offset =
  { width; offset; ext_offset; repeat = 1; trigger_index = 0 }

let with_repeat p repeat = { p with repeat }

type observation = {
  stop : [ `Stopped of Machine.Exec.stop | `Timeout ];
  cycles : int;
  fired : int;
  glitched_cycles : int;
  replayed_cycles : int;
}

(* Does any armed window overlap [start, start+duration)? If so, return
   (params, relative_cycle) for the earliest *absolute* overlapping
   cycle. Ties between windows anchored to different trigger edges must
   compare absolute cycles: comparing [lo - edge] across edges (as an
   earlier version did) could resolve a multi-trigger schedule to the
   later window just because its own trigger fired more recently. *)
let active_window schedule edges ~start ~duration =
  let best =
    List.fold_left
      (fun acc p ->
        match List.nth_opt edges p.trigger_index with
        | None -> acc
        | Some edge ->
          let w_lo = edge + p.ext_offset in
          let w_hi = w_lo + p.repeat in
          let lo = max w_lo start and hi = min w_hi (start + duration) in
          if lo < hi then
            match acc with
            | Some (_, _, best_abs) when best_abs <= lo -> acc
            | Some _ | None -> Some (p, lo - edge, lo)
          else acc)
      None schedule
  in
  Option.map (fun (p, rel, _) -> (p, rel)) best

let concretise config ~salt (instr : Thumb.Instr.t)
    (effect : Susceptibility.effect) : Board.applied * bool =
  match effect with
  | Susceptibility.No_fault -> (Board.Normal, false)
  | Susceptibility.Skip -> (Board.As_nop, true)
  | Susceptibility.Corrupt_fetch ->
    let word = Thumb.Encode.instr instr in
    let word' = Susceptibility.corrupt_word config ~salt word in
    if word' = word then (Board.Normal, false) else (Board.Fetch_word word', true)
  | Susceptibility.Load_residue v -> (Board.Load_value v, true)
  | Susceptibility.Load_bitflip ->
    (Board.Load_mangle (fun v -> Susceptibility.corrupt_value32 config ~salt v), true)
  | Susceptibility.Flip_z -> (Board.Z_flip, true)
  | Susceptibility.Pc_corrupt ->
    (* corrupting the prefetch address sends the core into unmapped or
       unintended memory; derive a deterministic bogus target *)
    let bogus =
      0x1000 + (2 * Hashrand.bits ~seed:config.seed (8 :: salt) ~width:16)
    in
    (Board.Pc_set bogus, true)

(* Susceptibility of the decode and fetch latches: encoding corruption
   there applies to whatever instruction occupies the stage, regardless
   of its class — it is the latch being disturbed, not the ALU. *)
let back_stage_factor = 0.55

(* --- pristine-continuation baseline ---------------------------------------

   A replayed attempt whose every window has closed without applying a
   fault is, from that cycle on, exactly the unglitched run: the board
   state equals what a glitch-free run reaches at the same cycle, every
   future stochastic decision needs a window, and no window can open
   again. The baseline captures that unglitched continuation once — end
   state, stop reason, and how many trigger edges ever appear — so the
   sweep kernel can cut such attempts short and restore the recorded end
   state instead of emulating hundreds of dead spin cycles. *)

type baseline = {
  b_max_cycles : int;
  b_from_cycles : int;  (* cycle stamp of the snapshot the run starts from *)
  b_stop : [ `Stopped of Machine.Exec.stop | `Timeout ];
  b_end : Board.snapshot;
  b_cycles : int;
  b_edges : int;  (* trigger edges ever raised by the unglitched run *)
}

let baseline ?(max_cycles = 3_000) board ~from =
  Board.restore board from;
  let from_cycles = Board.cycles board in
  let stop =
    let rec go () =
      if Board.cycles board >= max_cycles then `Timeout
      else
        match Board.step board with
        | Machine.Exec.Running -> go ()
        | Machine.Exec.Stopped s -> `Stopped s
    in
    go ()
  in
  { b_max_cycles = max_cycles;
    b_from_cycles = from_cycles;
    b_stop = stop;
    b_end = Board.snapshot board;
    b_cycles = Board.cycles board;
    b_edges = List.length (Board.trigger_edges board) }

(* Every window is dead: anchored to a seen edge and entirely in the
   past, or anchored to an edge index the unglitched continuation never
   produces. A window waiting on an edge that *will* arrive unglitched
   (index < b_edges) may still open, so it blocks the cutoff. *)
let windows_dead schedule ~edges ~n_edges ~b_edges ~now =
  List.for_all
    (fun p ->
      if p.trigger_index < n_edges then
        match List.nth_opt edges p.trigger_index with
        | Some edge -> edge + p.ext_offset + p.repeat <= now
        | None -> false
      else p.trigger_index >= b_edges)
    schedule

let run ?(config = Susceptibility.default) ?(max_cycles = 3_000) ?(nonce = 0)
    ?from ?baseline board schedule =
  (match from with
  | Some snap -> Board.restore board snap
  | None -> Board.reset board);
  (* cycles already on the board at start were served by the snapshot
     restore, not emulated by this attempt *)
  let replayed = ref (Board.cycles board) in
  (match baseline with
  | Some b when b.b_max_cycles <> max_cycles ->
    invalid_arg "Glitcher.run: baseline built for a different max_cycles"
  | Some b when b.b_from_cycles <> Board.cycles board ->
    invalid_arg "Glitcher.run: baseline built from a different snapshot"
  | Some _ | None -> ());
  let fired = ref 0 and glitched = ref 0 in
  (* true while no fault has been applied to any step: the execution so
     far is bit-identical to the unglitched run *)
  let pristine = ref true in
  (* Corruption planted in the decode/fetch stages materialises when the
     victim address is reached. A branch in between flushes the pipeline
     and the planted corruption with it: the entry is simply never
     consumed (and is dropped at the next plant). *)
  let pending : (int, Board.applied) Hashtbl.t = Hashtbl.create 4 in
  let finish stop =
    { stop;
      cycles = Board.cycles board;
      fired = !fired;
      glitched_cycles = !glitched;
      replayed_cycles = !replayed }
  in
  let rec go () =
    if Board.cycles board >= max_cycles then finish `Timeout
    else
      let edges = Board.trigger_edges board in
      match baseline with
      | Some b
        when !pristine
             && Hashtbl.length pending = 0
             && windows_dead schedule ~edges ~n_edges:(List.length edges)
                  ~b_edges:b.b_edges ~now:(Board.cycles board) ->
        (* dead schedule on a pristine board: the continuation is the
           recorded unglitched run — replay its end state *)
        replayed := !replayed + (b.b_cycles - Board.cycles board);
        Board.restore board b.b_end;
        finish b.b_stop
      | Some _ | None -> (
        match Board.peek board with
        | Error stop -> finish (`Stopped stop)
        | Ok instr -> (
          let pc = Board.pc board in
          (* overlap is tested against the cycles the instruction will
             actually consume: a not-taken branch occupies 1 cycle, so a
             glitch must not fire in the 2 phantom cycles of the taken
             duration (they never elapse — Board.step advances by the
             actual cost) *)
          let duration = Board.instr_duration board instr in
          let applied =
            match Hashtbl.find_opt pending pc with
            | Some planted ->
              Hashtbl.remove pending pc;
              planted
            | None -> (
              match
                active_window schedule edges ~start:(Board.cycles board)
                  ~duration
              with
              | None -> Board.Normal
              | Some (p, rel_cycle) ->
                incr glitched;
                let point_salt = [ p.width; p.offset; rel_cycle ] in
                let attempt_nonce = (nonce * 31) + p.trigger_index in
                (* Which of the Cortex-M0's three pipeline stages does the
                   glitch disturb? Decode and fetch hold the next two
                   instructions. *)
                let stage_pick = Hashrand.u01 ~seed:config.seed (4 :: point_salt) in
                if stage_pick < 0.5 then begin
                  let effect =
                    Susceptibility.roll config ~sustained:(p.repeat > 4)
                      ~width:p.width ~offset:p.offset ~cycle:rel_cycle
                      ~nonce:attempt_nonce ~instr ~sp:(Board.reg board 13)
                  in
                  let applied, did_fire =
                    concretise config ~salt:point_salt instr effect
                  in
                  if did_fire then incr fired;
                  applied
                end
                else begin
                  let delta = if stage_pick < 0.8 then 2 else 4 in
                  let victim = pc + delta in
                  let gate =
                    Hashrand.u01 ~seed:config.seed
                      (5 :: p.width :: p.offset :: rel_cycle :: [ attempt_nonce ])
                  in
                  let e =
                    Susceptibility.landscape config ~width:p.width ~offset:p.offset
                  in
                  (if gate < e *. back_stage_factor then
                     match Board.word_at board victim with
                     | None -> ()
                     | Some victim_word ->
                       incr fired;
                       let planted =
                         if Hashrand.u01 ~seed:config.seed (6 :: point_salt) < 0.4
                         then Board.As_nop
                         else
                           Board.Fetch_word
                             (Susceptibility.corrupt_word config ~salt:point_salt
                                victim_word)
                       in
                       Hashtbl.replace pending victim planted);
                  Board.Normal
                end)
          in
          if applied <> Board.Normal then pristine := false;
          match Board.step ~applied board with
          | Machine.Exec.Running -> go ()
          | Machine.Exec.Stopped s -> finish (`Stopped s)))
  in
  go ()
