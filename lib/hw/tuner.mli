(** The paper's Section V-B parameter search: find glitch parameters
    with a 100% (10-out-of-10) success rate against an unprotected
    guard.

    The algorithm mirrors the paper: scan the (width, offset) plane with
    a 10-cycle glitch that blankets the whole loop; for each hit, narrow
    to individual clock cycles and re-test, recursively increasing
    precision until some (width, offset, ext_offset) triple survives 10
    consecutive attempts. *)

type result = {
  found : (int * int * int) option;  (** (width, offset, ext_offset) *)
  attempts : int;  (** total glitch attempts issued *)
  successes : int;  (** successful glitches observed along the way *)
  seconds : float;  (** simulated wall-clock, at [per_attempt_s] each *)
  emulated_cycles : int;  (** board cycles actually emulated *)
  replayed_cycles : int;  (** cycles served by trigger-snapshot replay *)
}

val per_attempt_s : float
(** 0.095 s — reset, arm, run, check; calibrated so an unprotected
    search lands in the paper's "minutes, not hours" regime. *)

val search :
  ?config:Susceptibility.config ->
  ?coarse_step:int ->
  Attack.guard ->
  result
(** [coarse_step] (default 2) is the stride of the initial plane scan. *)
