(** A persistent content-addressed result cache.

    Keys are hex digests derived from the parts that determine a
    result (image bytes, fault model, sweep parameters, code version —
    see {!key}); values are opaque payload strings. Entries carry an
    integrity digest and are written atomically (temp file + rename),
    and {e any} load problem — missing, truncated, bit-flipped,
    malformed — is a miss, never an exception: corrupting the cache
    directory must not be able to crash or mislead the tools. *)

type t

val open_dir : string -> t
(** Open (creating if needed, like [mkdir -p]) a cache rooted at the
    given directory. *)

val dir : t -> string

val key : parts:string list -> string
(** The cache key for a list of determining parts: a hex digest over
    the NUL-joined parts. Callers must include a code-version part so
    that semantically incompatible toolkit revisions never share
    entries. *)

val store : t -> key:string -> string -> unit
(** Atomically persist a payload under a key (overwriting any previous
    entry). Raises on I/O errors — failing to {e write} the cache is a
    real error, unlike failing to read it. [Invalid_argument] if [key]
    did not come from {!key}. *)

val load : t -> key:string -> string option
(** The payload stored under the key, or [None] on a miss — including
    every corruption case. [Invalid_argument] if [key] did not come
    from {!key}. *)

val mem : t -> key:string -> bool
(** Whether {!load} would hit (entry present {e and} intact). *)
