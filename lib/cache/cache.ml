(* A persistent content-addressed result cache.

   Entries are files named by the hex digest of their key under a
   two-character fan-out directory (aa/aabbcc...), in the format

     glitch-cache <format_version>
     <payload bytes, verbatim>
     DIGEST <md5 hex of the payload>

   The trailing digest makes corruption detectable: a truncated file
   loses the DIGEST line, a bit-flipped payload no longer matches it.
   Every load failure — missing file, bad header, bad or absent
   digest, unreadable entry — is reported as a miss, never an
   exception: a cache must not be able to take the tool down.

   Writes go through a temp file in the same directory followed by
   [Sys.rename], so readers (including concurrent processes) only ever
   see complete entries. *)

type t = { dir : string }

let format_version = 1
let magic = "glitch-cache"

let mkdir_p dir =
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let open_dir dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

let key ~parts =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let is_hex_key k =
  String.length k = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k

let path t ~key =
  if not (is_hex_key key) then invalid_arg "Cache.path: not a cache key";
  Filename.concat (Filename.concat t.dir (String.sub key 0 2)) key

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let header = Printf.sprintf "%s %d\n" magic format_version
let digest_prefix = "DIGEST "

(* Split "header \n payload \n DIGEST hex\n" back into the payload,
   verifying both ends. The payload's own trailing newline (if any) is
   part of the payload: we search for the last "\nDIGEST " boundary. *)
let parse_entry raw =
  let hlen = String.length header in
  if String.length raw < hlen || String.sub raw 0 hlen <> header then None
  else
    let body = String.sub raw hlen (String.length raw - hlen) in
    match String.rindex_opt body '\n' with
    | None -> None
    | Some _ ->
      (* the digest line is the final line of the file *)
      let body_len = String.length body in
      let last_line_start =
        match String.rindex_from_opt body (body_len - 2) '\n' with
        | Some i when body_len >= 2 -> i + 1
        | _ -> 0
      in
      if body_len = 0 || body.[body_len - 1] <> '\n' then None
      else
        let last_line =
          String.sub body last_line_start (body_len - last_line_start - 1)
        in
        let plen = String.length digest_prefix in
        if
          String.length last_line <= plen
          || String.sub last_line 0 plen <> digest_prefix
        then None
        else
          let stored = String.sub last_line plen (String.length last_line - plen) in
          let payload =
            (* drop the '\n' that separates payload from the digest line *)
            if last_line_start = 0 then None
            else Some (String.sub body 0 (last_line_start - 1))
          in
          match payload with
          | None -> None
          | Some payload ->
            if String.equal stored (Digest.to_hex (Digest.string payload)) then
              Some payload
            else None

let load t ~key =
  (* validate the key outside the catch-all: a malformed key is caller
     error, not cache corruption *)
  let p = path t ~key in
  match read_file p with
  | raw -> parse_entry raw
  | exception _ -> None

let store t ~key payload =
  let final = path t ~key in
  mkdir_p (Filename.dirname final);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ()) (Hashtbl.hash key)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc header;
     output_string oc payload;
     output_char oc '\n';
     output_string oc digest_prefix;
     output_string oc (Digest.to_hex (Digest.string payload));
     output_char oc '\n';
     close_out oc;
     Sys.rename tmp final
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with _ -> ());
     raise e)

let mem t ~key = load t ~key <> None
