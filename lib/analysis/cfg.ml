(* Recursive-traversal CFG recovery over a linked Thumb image.

   Linear-sweep disassembly would misread literal pools as code (every
   function's constants live in .text right after its epilogue), so we
   walk only what is reachable: start from the function symbols and the
   image entry, follow branch/fall-through/call edges, and mark the
   words referenced by reachable [ldr rd, [pc, #imm]] as data.  What is
   left over — never reached, not a literal, not zero padding — is
   flagged as an anomaly rather than silently decoded. *)

type term_kind =
  | Fallthrough  (* split by a leader; control continues linearly *)
  | Jump
  | Cond
  | Return  (* bx lr / pop {..., pc} *)
  | Computed  (* bx rm, mov/add pc, lone bl suffix: target not static *)
  | Call_noreturn  (* dangling bl prefix at the end of a block *)
  | Halt  (* bkpt *)
  | Trap  (* swi *)
  | Invalid  (* reachable undefined encoding *)

type insn = { addr : int; word : int; instr : Thumb.Instr.t }

type block = {
  start : int;
  insns : insn list;
  succs : int list;
  calls : int list;
  term : term_kind;
}

type anomaly =
  | Unreachable_code of { addr : int; halfwords : int }
  | Fallthrough_off of { addr : int }
  | Computed_target of { addr : int }
  | Target_outside of { addr : int; target : int }
  | Dangling_bl of { addr : int }
  | Undecodable of { addr : int; word : int }

type fn = { name : string; entry : int; finish : int; block_addrs : int list }

type t = {
  image : Lower.Layout.image;
  blocks : block list;
  funcs : fn list;
  anomalies : anomaly list;
  code_halfwords : int;
  data_halfwords : int;
}

let anomaly_addr = function
  | Unreachable_code { addr; _ }
  | Fallthrough_off { addr }
  | Computed_target { addr }
  | Target_outside { addr; _ }
  | Dangling_bl { addr }
  | Undecodable { addr; _ } -> addr

let pp_anomaly ppf = function
  | Unreachable_code { addr; halfwords } ->
    Fmt.pf ppf "0x%08x: %d halfword(s) of unreachable non-pool code" addr
      halfwords
  | Fallthrough_off { addr } ->
    Fmt.pf ppf "0x%08x: execution can fall through off the image" addr
  | Computed_target { addr } ->
    Fmt.pf ppf "0x%08x: computed branch target (not statically resolved)" addr
  | Target_outside { addr; target } ->
    Fmt.pf ppf "0x%08x: branch target 0x%08x outside .text" addr target
  | Dangling_bl { addr } ->
    Fmt.pf ppf "0x%08x: unpaired BL half" addr
  | Undecodable { addr; word } ->
    Fmt.pf ppf "0x%08x: reachable undefined encoding 0x%04x" addr word

let of_image (image : Lower.Layout.image) =
  let words = image.words in
  let n = Array.length words in
  let base = image.text.base in
  let addr_of i = base + (2 * i) in
  let in_text i = i >= 0 && i < n in
  let decode i = Thumb.Decode.table.(words.(i) land 0xffff) in
  let covered = Array.make (max n 1) false in
  let is_data = Array.make (max n 1) false in
  let leaders = Hashtbl.create 64 in
  let calls : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let anomalies = ref [] in
  let anom a = anomalies := a :: !anomalies in
  let worklist = Queue.create () in
  let leader i = if in_text i then Hashtbl.replace leaders i () in
  let enqueue i =
    leader i;
    if in_text i then Queue.add i worklist
  in
  let branch_to src target =
    if in_text target then enqueue target
    else anom (Target_outside { addr = addr_of src; target = addr_of target })
  in
  (* Walk one straight-line run from [i] until a terminator or
     already-covered code. *)
  let rec walk i =
    if in_text i && not covered.(i) then begin
      covered.(i) <- true;
      let a = addr_of i in
      let fallthrough () =
        if in_text (i + 1) then walk (i + 1)
        else anom (Fallthrough_off { addr = a })
      in
      match decode i with
      | Thumb.Instr.B off -> branch_to i (i + 2 + off)
      | Thumb.Instr.B_cond (_, off) ->
        branch_to i (i + 2 + off);
        leader (i + 1);
        fallthrough ()
      | Thumb.Instr.Bl_hi hi
        when in_text (i + 1)
             && (match decode (i + 1) with
                | Thumb.Instr.Bl_lo _ -> true
                | _ -> false) ->
        let lo =
          match decode (i + 1) with Thumb.Instr.Bl_lo lo -> lo | _ -> 0
        in
        covered.(i + 1) <- true;
        let target = i + 2 + (hi lsl 11) + lo in
        if in_text target then begin
          Hashtbl.replace calls i target;
          enqueue target
        end
        else
          anom (Target_outside { addr = a; target = addr_of target });
        if in_text (i + 2) then walk (i + 2)
        else anom (Fallthrough_off { addr = a })
      | Thumb.Instr.Bl_hi _ ->
        anom (Dangling_bl { addr = a });
        fallthrough ()
      | Thumb.Instr.Bl_lo _ ->
        (* a lone suffix branches to an LR-derived address *)
        anom (Dangling_bl { addr = a })
      | Thumb.Instr.Bx rm ->
        if not (Thumb.Reg.equal rm Thumb.Reg.lr) then
          anom (Computed_target { addr = a })
      | Thumb.Instr.Hi_mov (rd, _) | Thumb.Instr.Hi_add (rd, _)
        when Thumb.Reg.equal rd Thumb.Reg.pc ->
        anom (Computed_target { addr = a })
      | Thumb.Instr.Pop { pc = true; _ } -> ()
      | Thumb.Instr.Bkpt _ | Thumb.Instr.Swi _ -> ()
      | Thumb.Instr.Undefined w ->
        anom (Undecodable { addr = a; word = w })
      | Thumb.Instr.Ldr_pc (_, imm) ->
        let lit = (a + 4) land lnot 3 in
        let li = ((lit - base) / 2) + (imm * 2) in
        if in_text li then is_data.(li) <- true;
        if in_text (li + 1) then is_data.(li + 1) <- true;
        fallthrough ()
      | _ -> fallthrough ()
    end
  in
  List.iter (fun (_, addr) -> enqueue ((addr - base) / 2)) image.symbols;
  enqueue ((image.entry - base) / 2);
  while not (Queue.is_empty worklist) do
    walk (Queue.pop worklist)
  done;
  (* Literal words reachable as both code and data stay code. *)
  for i = 0 to n - 1 do
    if covered.(i) then is_data.(i) <- false
  done;
  (* Unreachable non-pool, non-padding runs. *)
  let run_start = ref (-1) in
  for i = 0 to n do
    let gap = i < n && (not covered.(i)) && (not is_data.(i)) && words.(i) <> 0 in
    if gap && !run_start < 0 then run_start := i;
    if (not gap) && !run_start >= 0 then begin
      anom
        (Unreachable_code
           { addr = addr_of !run_start; halfwords = i - !run_start });
      run_start := -1
    end
  done;
  (* Block partition: a new block starts at every leader and after every
     terminator; coverage gaps end blocks too. *)
  let is_term i =
    match decode i with
    | Thumb.Instr.B _ | Thumb.Instr.Bx _ | Thumb.Instr.Bkpt _
    | Thumb.Instr.Swi _ | Thumb.Instr.Undefined _ | Thumb.Instr.Bl_lo _
    | Thumb.Instr.Pop { pc = true; _ } -> true
    | Thumb.Instr.B_cond _ -> true
    | Thumb.Instr.Hi_mov (rd, _) | Thumb.Instr.Hi_add (rd, _) ->
      Thumb.Reg.equal rd Thumb.Reg.pc
    | _ -> false
  in
  let blocks = ref [] in
  let flush start last =
    (* [start..last] inclusive, all covered *)
    let insns = ref [] in
    let block_calls = ref [] in
    let i = ref start in
    while !i <= last do
      let instr = decode !i in
      insns := { addr = addr_of !i; word = words.(!i); instr } :: !insns;
      (match Hashtbl.find_opt calls !i with
      | Some t ->
        block_calls := addr_of t :: !block_calls;
        incr i (* skip the BL suffix halfword *)
      | None -> ());
      incr i
    done;
    let insns = List.rev !insns in
    let fallthrough_term () =
      if in_text (last + 1) && covered.(last + 1) then
        (Fallthrough, [ addr_of (last + 1) ])
      else (Fallthrough, [])
    in
    let term, succs =
      if last > 0 && Hashtbl.mem calls (last - 1) then
        (* the block ends with a complete BL pair: the call returns *)
        fallthrough_term ()
      else
      match decode last with
      | Thumb.Instr.B off -> (Jump, [ addr_of (last + 2 + off) ])
      | Thumb.Instr.B_cond (_, off) ->
        (Cond, [ addr_of (last + 2 + off); addr_of (last + 1) ])
      | Thumb.Instr.Bx rm ->
        if Thumb.Reg.equal rm Thumb.Reg.lr then (Return, [])
        else (Computed, [])
      | Thumb.Instr.Pop { pc = true; _ } -> (Return, [])
      | Thumb.Instr.Hi_mov (rd, _) | Thumb.Instr.Hi_add (rd, _)
        when Thumb.Reg.equal rd Thumb.Reg.pc -> (Computed, [])
      | Thumb.Instr.Bkpt _ -> (Halt, [])
      | Thumb.Instr.Swi _ -> (Trap, [])
      | Thumb.Instr.Undefined _ -> (Invalid, [])
      | Thumb.Instr.Bl_lo _ -> (Computed, [])
      | Thumb.Instr.Bl_hi _ -> (Call_noreturn, [])
      | _ -> fallthrough_term ()
    in
    let succs = List.filter (fun a -> in_text ((a - base) / 2)) succs in
    blocks :=
      { start = addr_of start;
        insns;
        succs;
        calls = List.rev !block_calls;
        term }
      :: !blocks
  in
  let start = ref (-1) in
  for i = 0 to n do
    let here = i < n && covered.(i) in
    if here && !start >= 0 && Hashtbl.mem leaders i then begin
      flush !start (i - 1);
      start := i
    end
    else if here && !start < 0 then start := i;
    let consumed_suffix = i > 0 && Hashtbl.mem calls (i - 1) in
    if !start >= 0 && i < n && covered.(i) && is_term i && not consumed_suffix
    then begin
      flush !start i;
      start := -1
    end
    else if (not here) && !start >= 0 then begin
      flush !start (i - 1);
      start := -1
    end
  done;
  let blocks =
    List.sort (fun a b -> compare a.start b.start) (List.rev !blocks)
  in
  (* Function spans from the symbol table. *)
  let syms =
    List.sort (fun (_, a) (_, b) -> compare a b) image.symbols
  in
  let funcs =
    let rec spans = function
      | [] -> []
      | (name, entry) :: rest ->
        let finish =
          match rest with
          | (_, next) :: _ -> next
          | [] -> base + (2 * n)
        in
        let block_addrs =
          List.filter_map
            (fun b ->
              if b.start >= entry && b.start < finish then Some b.start
              else None)
            blocks
        in
        { name; entry; finish; block_addrs } :: spans rest
    in
    spans syms
  in
  let code_halfwords =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 covered
  in
  let data_halfwords =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 is_data
  in
  { image;
    blocks;
    funcs;
    anomalies =
      List.sort (fun a b -> compare (anomaly_addr a) (anomaly_addr b))
        !anomalies;
    code_halfwords;
    data_halfwords }

let owner t addr =
  List.fold_left
    (fun acc (f : fn) -> if f.entry <= addr then Some f.name else acc)
    None
    (List.sort (fun (a : fn) b -> compare a.entry b.entry) t.funcs)

let find_fn t name = List.find_opt (fun (f : fn) -> f.name = name) t.funcs
let block_at t addr = List.find_opt (fun b -> b.start = addr) t.blocks

let reachable_insns t = List.concat_map (fun b -> b.insns) t.blocks

let conditionals t =
  List.filter_map
    (fun b ->
      match List.rev b.insns with
      | ({ instr = Thumb.Instr.B_cond _; _ } as i) :: _ -> Some i
      | _ -> None)
    t.blocks

let pp ppf t =
  Fmt.pf ppf "@[<v>%d block(s), %d function(s), %d code halfword(s), %d literal halfword(s)"
    (List.length t.blocks) (List.length t.funcs) t.code_halfwords
    t.data_halfwords;
  List.iter (fun a -> Fmt.pf ppf "@,anomaly: %a" pp_anomaly a) t.anomalies;
  Fmt.pf ppf "@]"
