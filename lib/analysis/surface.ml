(* Static counterpart of the Figure-2 taxonomy: enumerate every 1- and
   2-bit perturbation of each fetched word purely through the decoder
   plus an abstract control-flow semantics.  The dynamic campaign runs
   65,536 masks per instruction; here a verdict is a pure function of
   (old word, new word), so the whole image is characterised without
   executing anything. *)

type verdict = Control | Fault | Benign

let verdict_name = function
  | Control -> "control"
  | Fault -> "fault"
  | Benign -> "benign"

(* Does the instruction write the PC (architecturally transfer
   control)?  Bl_hi only poisons LR, but a perturbed return address is
   a control-flow corruption in the same sense, so it counts. *)
let writes_pc (i : Thumb.Instr.t) =
  match i with
  | Thumb.Instr.B _ | Thumb.Instr.B_cond _ | Thumb.Instr.Bx _
  | Thumb.Instr.Bl_lo _ | Thumb.Instr.Bl_hi _ -> true
  | Thumb.Instr.Pop { pc; _ } -> pc
  | Thumb.Instr.Hi_mov (rd, _) | Thumb.Instr.Hi_add (rd, _) ->
    Thumb.Reg.equal rd Thumb.Reg.pc
  | _ -> false

(* Control diversion in the wider sense: PC writes plus traps and
   halts, which also keep straight-line execution from continuing. *)
let diverts (i : Thumb.Instr.t) =
  writes_pc i
  ||
  match i with
  | Thumb.Instr.Swi _ | Thumb.Instr.Bkpt _ | Thumb.Instr.Undefined _ -> true
  | _ -> false

let decode w = Thumb.Decode.table.(w land 0xffff)

let classify ~old_word new_word =
  match decode new_word with
  | Thumb.Instr.Undefined _ -> Fault
  | ni ->
    if diverts (decode old_word) || diverts ni then Control else Benign

(* The XOR sweep above toggles bits; real glitch characterisations are
   mostly unidirectional (clock/voltage glitches clear bits — the And
   model — while some technologies set them — Or). [classify_flip]
   routes the perturbation through {!Glitch_emu.Fault_model.apply}, so
   the same taxonomy covers all three models. A mask that leaves the
   encoding unchanged (clearing zeros, setting ones) is Benign
   outright: the fetched word is bit-for-bit the pristine one, and no
   sweep can distinguish the run from the baseline. *)
let classify_flip model ~mask ~old_word =
  let old_word = old_word land 0xffff in
  let new_word =
    Glitch_emu.Fault_model.apply model ~mask old_word land 0xffff
  in
  if new_word = old_word then Benign else classify ~old_word new_word

(* The weight-w bit-selections of a model are its identity mask with w
   positions inverted: for And that clears the selected bits, for
   Or/Xor it sets/toggles them — matching the x-axis convention of
   {!Glitch_emu.Fault_model.flipped_bits}. *)
let mask_of_bits model bits =
  Glitch_emu.Fault_model.identity_mask model ~width:16 lxor bits

type flip_tally = {
  f_control : int;
  f_fault : int;
  f_benign : int;
  f_identity : int;
      (** selections whose application left the word unchanged — a
          subset of [f_benign] *)
}

let flip_surface model word =
  let word = word land 0xffff in
  let control = ref 0 and fault = ref 0 and benign = ref 0 in
  let identity = ref 0 in
  let consider bits =
    let mask = mask_of_bits model bits in
    if Glitch_emu.Fault_model.apply model ~mask word land 0xffff = word then
      incr identity;
    match classify_flip model ~mask ~old_word:word with
    | Control -> incr control
    | Fault -> incr fault
    | Benign -> incr benign
  in
  for b = 0 to 15 do
    consider (1 lsl b)
  done;
  for b1 = 0 to 14 do
    for b2 = b1 + 1 to 15 do
      consider ((1 lsl b1) lor (1 lsl b2))
    done
  done;
  { f_control = !control;
    f_fault = !fault;
    f_benign = !benign;
    f_identity = !identity }

type tally = { mutable control : int; mutable fault : int; mutable benign : int }

let tally () = { control = 0; fault = 0; benign = 0 }

let bump t = function
  | Control -> t.control <- t.control + 1
  | Fault -> t.fault <- t.fault + 1
  | Benign -> t.benign <- t.benign + 1

type profile = {
  addr : int;
  word : int;
  control1 : int;
  fault1 : int;
  benign1 : int;
  control2 : int;
  fault2 : int;
  benign2 : int;
  direction_masks : int list;
  escape_masks : int list;
}

let flips1 = 16
let flips2 = 16 * 15 / 2

let profile_word ?(addr = 0) word =
  let word = word land 0xffff in
  let t1 = tally () and t2 = tally () in
  let direction = ref [] and escape = ref [] in
  let old_instr = decode word in
  for b = 0 to 15 do
    let mask = 1 lsl b in
    let w' = word lxor mask in
    bump t1 (classify ~old_word:word w');
    (match (old_instr, decode w') with
    | Thumb.Instr.B_cond (c, off), Thumb.Instr.B_cond (c', off')
      when off' = off
           && Thumb.Instr.cond_to_int c' = Thumb.Instr.cond_to_int c lxor 1 ->
      (* the complemented condition: same comparison, inverted outcome *)
      direction := mask :: !direction
    | Thumb.Instr.B_cond _, ni when not (diverts ni) ->
      (* the guard degrades to a straight-line instruction: the branch
         is never taken, whatever the flags say *)
      escape := mask :: !escape
    | _ -> ())
  done;
  for b1 = 0 to 14 do
    for b2 = b1 + 1 to 15 do
      let w' = word lxor ((1 lsl b1) lor (1 lsl b2)) in
      bump t2 (classify ~old_word:word w')
    done
  done;
  { addr;
    word;
    control1 = t1.control;
    fault1 = t1.fault;
    benign1 = t1.benign;
    control2 = t2.control;
    fault2 = t2.fault;
    benign2 = t2.benign;
    direction_masks = List.rev !direction;
    escape_masks = List.rev !escape }

let susceptibility p =
  float_of_int (p.control1 + p.control2) /. float_of_int (flips1 + flips2)

type func_surface = {
  fname : string;
  insns : int;
  control1 : int;
  fault1 : int;
  benign1 : int;
  control2 : int;
  fault2 : int;
  benign2 : int;
  score : float;  (** fraction of 1/2-bit perturbations that are Control *)
}

type t = {
  profiles : profile list;
  funcs : func_surface list;
  image_score : float;
  total_flips : int;
}

let analyze (cfg : Cfg.t) =
  let profiles =
    List.map
      (fun (i : Cfg.insn) -> profile_word ~addr:i.addr i.word)
      (Cfg.reachable_insns cfg)
  in
  let by_func = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let fname =
        Option.value ~default:"<orphan>" (Cfg.owner cfg p.addr)
      in
      let acc =
        match Hashtbl.find_opt by_func fname with
        | Some acc -> acc
        | None ->
          let acc = ref [] in
          Hashtbl.add by_func fname acc;
          acc
      in
      acc := p :: !acc)
    profiles;
  let funcs =
    List.filter_map
      (fun (fn : Cfg.fn) ->
        match Hashtbl.find_opt by_func fn.name with
        | None -> None
        | Some ps ->
          let ps : profile list = !ps in
          let sum f = List.fold_left (fun a p -> a + f p) 0 ps in
          let control1 = sum (fun p -> p.control1)
          and fault1 = sum (fun p -> p.fault1)
          and benign1 = sum (fun p -> p.benign1)
          and control2 = sum (fun p -> p.control2)
          and fault2 = sum (fun p -> p.fault2)
          and benign2 = sum (fun p -> p.benign2) in
          let insns = List.length ps in
          Some
            { fname = fn.name;
              insns;
              control1;
              fault1;
              benign1;
              control2;
              fault2;
              benign2;
              score =
                (if insns = 0 then 0.
                 else
                   float_of_int (control1 + control2)
                   /. float_of_int (insns * (flips1 + flips2))) })
      cfg.funcs
  in
  let insns = List.length profiles in
  let control =
    List.fold_left (fun a (p : profile) -> a + p.control1 + p.control2) 0 profiles
  in
  let total_flips = insns * (flips1 + flips2) in
  { profiles;
    funcs;
    image_score =
      (if total_flips = 0 then 0.
       else float_of_int control /. float_of_int total_flips);
    total_flips }

(* ------------------------------------------------------------------ *)
(* Predicted dynamic outcomes: which Campaign categories a perturbed
   word can produce when it replaces the taken branch of a
   [Glitch_emu.Testcase.conditional_branch] snippet.  The abstract
   semantics here is what the QCheck differential pins against the real
   emulator: [run_one]'s category must be a member of this set, and
   Fault must coincide exactly with Invalid_instruction. *)

let in_flash a =
  a >= Glitch_emu.Campaign.flash_base
  && a < Glitch_emu.Campaign.flash_base + Glitch_emu.Campaign.flash_size

(* A branch that stays inside flash lands in the snippet or its
   zero-filled tail (a MOVS nop sled): marker semantics decide between
   Success/No_effect, the sled can hit the step limit (Failed) or run
   off the end (Bad_fetch). *)
let inside_branch_outcomes =
  Glitch_emu.Campaign.[ Success; No_effect; Failed; Bad_fetch ]

let predicted_outcomes ~addr word =
  let open Glitch_emu.Campaign in
  match decode word with
  | Thumb.Instr.Undefined _ -> [ Invalid_instruction ]
  | Thumb.Instr.B off ->
    let target = addr + 4 + (2 * off) in
    if in_flash target then inside_branch_outcomes else [ Bad_fetch ]
  | Thumb.Instr.B_cond (_, off) ->
    (* the new condition may or may not hold under the rig's flags *)
    let target = addr + 4 + (2 * off) in
    Success :: (if in_flash target then inside_branch_outcomes else [ Bad_fetch ])
  | Thumb.Instr.Bl_hi _ ->
    (* only poisons LR, then falls through to the skip marker *)
    [ Success ]
  | Thumb.Instr.Bl_lo _ ->
    (* branches to an LR-derived address; LR is 0 in the rig *)
    [ Bad_fetch ]
  | Thumb.Instr.Bx _ ->
    (* register-dependent: odd value → Thumb fetch, even → invalid
       interworking, unmapped → fetch fault *)
    [ Success; No_effect; Failed; Bad_fetch; Invalid_instruction ]
  | Thumb.Instr.Pop { pc = true; _ } ->
    (* PC from a zeroed stack (→ fetch at 0) or a read past SRAM *)
    [ Bad_fetch; Bad_read ]
  | Thumb.Instr.Hi_mov (rd, _) | Thumb.Instr.Hi_add (rd, _)
    when Thumb.Reg.equal rd Thumb.Reg.pc ->
    inside_branch_outcomes
  | Thumb.Instr.Swi _ -> [ Failed ]
  | Thumb.Instr.Bkpt _ ->
    (* immediate halt before the skip marker is written *)
    [ No_effect ]
  | i when Thumb.Instr.is_load i || Thumb.Instr.is_store i ->
    (* the access may fault; otherwise execution falls through to the
       skip marker *)
    [ Success; Bad_read ]
  | _ ->
    (* a pure register/flags operation, then the skip marker *)
    [ Success ]
