(** Control-flow-graph recovery over a linked Thumb image.

    A recursive-traversal disassembler (in the ARMORY style): start at
    the function symbols and the entry point, follow fall-through,
    branch and BL edges through the shared {!Thumb.Decode.table}, and
    mark the words referenced by reachable PC-relative loads as literal
    data.  Linear sweep would decode literal pools as code; traversal
    instead reports anything it could not reach or explain as an
    {!anomaly}. *)

type term_kind =
  | Fallthrough  (** split by a leader; control continues linearly *)
  | Jump  (** [b label] *)
  | Cond  (** [b<cc> label] — taken successor listed first *)
  | Return  (** [bx lr] or [pop {..., pc}] *)
  | Computed  (** [bx rm], writes to PC, lone BL suffix *)
  | Call_noreturn  (** dangling BL prefix ending the block *)
  | Halt  (** [bkpt] *)
  | Trap  (** [swi] *)
  | Invalid  (** reachable undefined encoding *)

type insn = { addr : int; word : int; instr : Thumb.Instr.t }

type block = {
  start : int;  (** byte address of the first instruction *)
  insns : insn list;
  succs : int list;  (** successor block addresses (taken edge first) *)
  calls : int list;  (** resolved BL targets inside this block *)
  term : term_kind;
}

type anomaly =
  | Unreachable_code of { addr : int; halfwords : int }
      (** covered by no traversal path and not a literal pool *)
  | Fallthrough_off of { addr : int }
      (** straight-line execution runs off the mapped image *)
  | Computed_target of { addr : int }
      (** an indirect transfer the static analysis cannot resolve *)
  | Target_outside of { addr : int; target : int }
  | Dangling_bl of { addr : int }  (** an unpaired BL half *)
  | Undecodable of { addr : int; word : int }
      (** reachable word with no Thumb-16 decoding *)

type fn = {
  name : string;
  entry : int;
  finish : int;  (** exclusive: next symbol or end of .text *)
  block_addrs : int list;
}

type t = {
  image : Lower.Layout.image;
  blocks : block list;  (** sorted by start address *)
  funcs : fn list;  (** sorted by entry address *)
  anomalies : anomaly list;  (** sorted by address *)
  code_halfwords : int;  (** reachable code *)
  data_halfwords : int;  (** literal-pool words *)
}

val of_image : Lower.Layout.image -> t

val owner : t -> int -> string option
(** Function owning an address: nearest symbol at or below it. *)

val find_fn : t -> string -> fn option
val block_at : t -> int -> block option

val reachable_insns : t -> insn list
(** Every reachable instruction, in address order. *)

val conditionals : t -> insn list
(** The conditional branches terminating blocks — the guard
    instructions the glitch-surface and lint layers reason about. *)

val anomaly_addr : anomaly -> int
val pp_anomaly : anomaly Fmt.t
val pp : t Fmt.t
