(* The defense auditor: structural lint rules that verify
   GlitchResistor postconditions in the artifact (image + IR) instead
   of trusting that the passes ran.  Severity encodes the contract:

   - Error: a defense the configuration promises is missing, or the
     artifact has a control-flow hazard nothing re-checks (an
     unprotected single-bit-flippable guard);
   - Warning: suspicious but not provably wrong (image-only lint with
     no IR to consult, unpaired BL halves, verifier lint findings);
   - Info: expected residue worth surfacing (protected guards, runtime
     support outside the defense scope, computed targets). *)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type diag = {
  rule : string;
  severity : severity;
  func : string;
  addr : int;
  message : string;
}

type target = {
  image : Lower.Layout.image;
  modul : Ir.modul option;
  config : Resistor.Config.t option;
  reports : Resistor.Driver.reports option;
  cfcss : Resistor.Cfcss.report option;
}

type report = {
  cfg : Cfg.t;
  surface : Surface.t;
  diags : diag list;
}

let of_image image =
  { image; modul = None; config = None; reports = None; cfcss = None }

let of_compiled (c : Resistor.Driver.compiled) =
  { image = c.image;
    modul = Some c.modul;
    config = Some c.config;
    reports = Some c.reports;
    cfcss = None }

let of_instrs instrs =
  let words = Array.of_list (List.map Thumb.Encode.instr instrs) in
  let base = Lower.Layout.text_base in
  let image : Lower.Layout.image =
    { words;
      text = { base; size = 2 * Array.length words };
      data = { base = Lower.Layout.sram_base; size = 0 };
      bss = { base = Lower.Layout.sram_base; size = 0 };
      data_init = [];
      symbols = [ ("snippet", base) ];
      global_addrs = [];
      entry = base;
      stack_top = Lower.Layout.sram_base + Lower.Layout.sram_size - 16 }
  in
  of_image image

(* ------------------------------------------------------------------ *)
(* IR structure: recognising the shapes the passes leave behind.      *)

let detector_labels (f : Ir.func) =
  List.filter_map
    (fun (b : Ir.block) ->
      if
        List.exists
          (function
            | Ir.Call { callee; _ } ->
              callee = Resistor.Detect.detected_fn
            | _ -> false)
          b.instrs
      then Some b.label
      else None)
    f.blocks

(* CFI edge-splitting (the Sigcfi glue) runs after the other passes and
   inserts a pass-through block on every edge: a forwarder whose only
   instructions are runtime-helper calls (and that is not itself a
   detector arm) is transparent to the structural audit. *)
let is_forwarder (b : Ir.block) =
  (match b.term with Ir.Br _ -> true | _ -> false)
  && List.for_all
       (function
         | Ir.Call { callee; _ } ->
           callee <> Resistor.Detect.detected_fn
           && String.length callee >= 4
           && String.sub callee 0 4 = "__gr"
         | _ -> false)
       b.instrs

let rec resolve_label (f : Ir.func) ?(depth = 4) l =
  if depth = 0 then l
  else
    match Ir.find_block f l with
    | Some ({ Ir.term = Ir.Br next; _ } as b) when is_forwarder b ->
      resolve_label f ~depth:(depth - 1) next
    | _ -> l

let is_check_block f dets (b : Ir.block) =
  match b.term with
  | Ir.Cond_br { if_true; if_false; _ } ->
    List.mem (resolve_label f if_true) dets
    || List.mem (resolve_label f if_false) dets
  | _ -> false

type protection =
  | Protected  (** every guard edge re-checked by a complemented copy *)
  | Unguarded of { branches : int; loops : int }
  | No_conditionals

(* Loops on the *final* IR.  Source-level notions like "back-edge
   target" stop working once the passes split blocks (Integrity moves
   the loop condition out of the original header), so we use the
   topological definition: a loop is a non-trivial SCC, and a
   loop-exit guard is a conditional block inside a cycle with a
   successor outside its SCC.  That escaping edge is what the Loops
   pass must route through a complemented re-check. *)
let sccs (f : Ir.func) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace index b.label i) blocks;
  let succs v =
    List.filter_map
      (fun l -> Hashtbl.find_opt index l)
      (Ir.successors blocks.(v).Ir.term)
  in
  let comp = Array.make n (-1) in
  let num = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let rec strong v =
    num.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if num.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) num.(w))
      (succs v);
    if low.(v) = num.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if num.(v) < 0 then strong v
  done;
  (blocks, comp, succs)

(* Loop-exit guards paired with their escaping successor labels. *)
let loop_exit_guards dets (f : Ir.func) =
  let blocks, comp, succs = sccs f in
  let n = Array.length blocks in
  let size = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      Hashtbl.replace size c
        (1 + Option.value ~default:0 (Hashtbl.find_opt size c)))
    comp;
  let in_cycle v =
    Hashtbl.find size comp.(v) > 1 || List.mem v (succs v)
  in
  let guards = ref [] in
  for v = 0 to n - 1 do
    let b = blocks.(v) in
    match b.Ir.term with
    | Ir.Cond_br _ when in_cycle v && not (is_check_block f dets b) ->
      let exits =
        List.filter_map
          (fun w ->
            if comp.(w) <> comp.(v) then Some blocks.(w).Ir.label else None)
          (succs v)
      in
      if exits <> [] then guards := (b.Ir.label, exits) :: !guards
    | _ -> ()
  done;
  List.rev !guards

let audit_func (f : Ir.func) =
  let dets = detector_labels f in
  let is_check l =
    match Ir.find_block f (resolve_label f l) with
    | Some b -> is_check_block f dets b
    | None -> false
  in
  let cond_blocks =
    List.filter
      (fun (b : Ir.block) ->
        (match b.term with Ir.Cond_br _ -> true | _ -> false)
        && not (is_check_block f dets b))
      f.blocks
  in
  if cond_blocks = [] then No_conditionals
  else begin
    let unguarded_branches =
      List.length
        (List.filter
           (fun (b : Ir.block) ->
             match b.term with
             | Ir.Cond_br { if_true; _ } -> not (is_check if_true)
             | _ -> false)
           cond_blocks)
    in
    let unguarded_loops =
      List.length
        (List.filter
           (fun (_, exits) -> List.exists (fun l -> not (is_check l)) exits)
           (loop_exit_guards dets f))
    in
    if unguarded_branches = 0 && unguarded_loops = 0 then Protected
    else Unguarded { branches = unguarded_branches; loops = unguarded_loops }
  end

let loop_header_count (f : Ir.func) =
  List.length (loop_exit_guards (detector_labels f) f)

(* ------------------------------------------------------------------ *)

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 (v land 0xFFFFFFFF)

let hamming a b = popcount (a lxor b)

let min_pairwise values =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | v :: rest ->
      let acc =
        List.fold_left (fun acc w -> min acc (hamming v w)) acc rest
      in
      go acc rest
  in
  go max_int values

(* A 32-bit constant is materialised either in a literal pool (two
   consecutive halfwords, low first) or as a global initialiser. *)
let constant_in_image (image : Lower.Layout.image) v =
  let v = v land 0xFFFFFFFF in
  let words = image.words in
  let n = Array.length words in
  let rec scan i =
    i + 1 < n
    && (words.(i) lor (words.(i + 1) lsl 16) = v || scan (i + 1))
  in
  scan 0 || List.exists (fun (_, init) -> init land 0xFFFFFFFF = v) image.data_init

let fn_addr (image : Lower.Layout.image) name =
  Option.value ~default:0 (List.assoc_opt name image.symbols)

(* ------------------------------------------------------------------ *)

let run (t : target) =
  let cfg = Cfg.of_image t.image in
  let surface = Surface.analyze cfg in
  let diags = ref [] in
  let diag rule severity func addr fmt =
    Fmt.kstr
      (fun message ->
        diags := { rule; severity; func; addr; message } :: !diags)
      fmt
  in
  let owner addr = Option.value ~default:"?" (Cfg.owner cfg addr) in

  (* --- CFG recovery anomalies ------------------------------------ *)
  List.iter
    (fun a ->
      let addr = Cfg.anomaly_addr a in
      let func = owner addr in
      match a with
      | Cfg.Fallthrough_off _ ->
        diag "cfg-fallthrough" Error func addr "%a" Cfg.pp_anomaly a
      | Cfg.Target_outside _ ->
        diag "cfg-target" Error func addr "%a" Cfg.pp_anomaly a
      | Cfg.Undecodable _ ->
        diag "cfg-undecodable" Warning func addr "%a" Cfg.pp_anomaly a
      | Cfg.Dangling_bl _ ->
        diag "cfg-dangling-bl" Warning func addr "%a" Cfg.pp_anomaly a
      | Cfg.Computed_target _ ->
        diag "cfg-computed" Info func addr "%a" Cfg.pp_anomaly a
      | Cfg.Unreachable_code _ ->
        diag "cfg-unreachable" Info func addr "%a" Cfg.pp_anomaly a)
    cfg.anomalies;

  (* --- guard flippability ----------------------------------------- *)
  let audits = Hashtbl.create 16 in
  let audit name =
    match Hashtbl.find_opt audits name with
    | Some a -> a
    | None ->
      let a =
        Option.bind t.modul (fun m ->
            Option.map audit_func (Ir.find_func m name))
      in
      Hashtbl.add audits name a;
      a
  in
  List.iter
    (fun (i : Cfg.insn) ->
      let p = Surface.profile_word ~addr:i.addr i.word in
      let fname = owner i.addr in
      let flips =
        Fmt.str "%a: direction flip via %d one-bit mask(s)%s, escape via %d"
          Thumb.Instr.pp i.instr
          (List.length p.direction_masks)
          (match p.direction_masks with
          | m :: _ -> Fmt.str " (e.g. 0x%04x)" m
          | [] -> "")
          (List.length p.escape_masks)
      in
      match audit fname with
      | None when t.modul = None ->
        diag "guard-flippable" Warning fname i.addr
          "%s; no IR available, assuming unprotected" flips
      | None ->
        diag "guard-flippable" Info fname i.addr
          "%s; runtime support, outside the defense scope" flips
      | Some Protected ->
        diag "guard-flippable" Info fname i.addr
          "%s; re-checked by a complemented duplicate" flips
      | Some No_conditionals ->
        diag "guard-flippable" Info fname i.addr
          "%s; materialised comparison, not a guard" flips
      | Some (Unguarded _) ->
        diag "guard-flippable" Error fname i.addr
          "single-bit flippable guard with no duplicate: %s" flips)
    (Cfg.conditionals cfg);

  (* --- pass postconditions (configuration promises) ---------------- *)
  (match (t.modul, t.config) with
  | Some m, Some config ->
    List.iter
      (fun (f : Ir.func) ->
        let addr = fn_addr t.image f.fname in
        (match audit_func f with
        | Unguarded { branches; _ } when config.branches && branches > 0 ->
          diag "branch-duplication" Error f.fname addr
            "%d conditional branch(es) lack the complemented re-check \
             promised by the Branches pass"
            branches
        | Unguarded { loops; _ } when config.loops && loops > 0 ->
          diag "loop-false-edge" Error f.fname addr
            "%d loop header(s) can escape on an unchecked false edge \
             despite the Loops pass"
            loops
        | _ -> ());
        if
          config.branches && (not config.loops) && loop_header_count f > 0
        then
          diag "loop-false-edge" Warning f.fname addr
            "loop guards re-checked only on the taken edge (Branches \
             without Loops): a direction flip still escapes the loop")
      m.funcs
  | _ -> ());

  (* --- diversified constants at the binary level ------------------- *)
  (match t.reports with
  | Some { enum_report = Some er; _ } ->
    List.iter
      (fun (ename, members) ->
        let values = List.map snd members in
        let d = min_pairwise values in
        let missing =
          List.filter (fun (_, v) -> not (constant_in_image t.image v)) members
        in
        List.iter
          (fun (mname, v) ->
            diag "enum-hamming" Warning "<image>" 0
              "enum %s member %s = 0x%08x not found in the image (dead \
               code or re-encoded)"
              ename mname v)
          missing;
        if d < 8 && List.length values > 1 then
          diag "enum-hamming" Error "<image>" 0
            "enum %s: min pairwise Hamming distance %d < 8" ename d
        else
          diag "enum-hamming" Info "<image>" 0
            "enum %s: %d member(s), min pairwise Hamming distance %d"
            ename (List.length values)
            (if values = [] then 0 else d))
      er.rewritten
  | _ -> ());
  (match t.reports with
  | Some { returns_report = Some rr; _ } ->
    List.iter
      (fun (fname, pairs) ->
        let news = List.map snd pairs in
        let d = min_pairwise news in
        let addr = fn_addr t.image fname in
        List.iter
          (fun (_, v) ->
            if not (constant_in_image t.image v) then
              diag "return-hamming" Warning fname addr
                "diversified return code 0x%08x not found in the image" v)
          pairs;
        if List.length news > 1 && d < 8 then
          diag "return-hamming" Error fname addr
            "return codes at min pairwise Hamming distance %d < 8" d
        else
          diag "return-hamming" Info fname addr
            "%d diversified return code(s)%s" (List.length news)
            (if List.length news > 1 then Fmt.str ", min distance %d" d
             else ""))
      rr.instrumented
  | _ -> ());

  (* --- integrity shadows ------------------------------------------- *)
  (match (t.modul, t.reports) with
  | Some m, Some { integrity_report = Some ir; _ } ->
    List.iter
      (fun (g, shadow) ->
        if not (List.mem_assoc shadow t.image.global_addrs) then
          diag "integrity-shadow" Error "<image>" 0
            "shadow global %s for %s missing from the image" shadow g;
        List.iter
          (fun (f : Ir.func) ->
            let addr = fn_addr t.image f.fname in
            List.iter
              (fun (b : Ir.block) ->
                let rec check = function
                  | [] -> ()
                  | Ir.Store { dst = Ir.Global name; _ } :: rest
                    when name = g ->
                    if
                      not
                        (List.exists
                           (function
                             | Ir.Store
                                 { dst = Ir.Global s; _ } ->
                               s = shadow
                             | _ -> false)
                           rest)
                    then
                      diag "integrity-shadow" Error f.fname addr
                        "store to %s in block %s has no complement store \
                         to %s"
                        g b.label shadow;
                    check rest
                  | Ir.Load { src = Ir.Global name; _ } :: rest
                    when name = g ->
                    if
                      not
                        (List.exists
                           (function
                             | Ir.Load { src = Ir.Global s; _ }
                               ->
                               s = shadow
                             | _ -> false)
                           rest)
                    then
                      diag "integrity-shadow" Error f.fname addr
                        "load of %s in block %s is not cross-checked \
                         against %s"
                        g b.label shadow;
                    check rest
                  | _ :: rest -> check rest
                in
                check b.instrs)
              f.blocks)
          m.funcs)
      ir.protected
  | _ -> ());

  (* --- CFCSS signatures (and the Table VII witness) ----------------- *)
  (match (t.modul, t.cfcss) with
  | Some m, Some cr ->
    let sig_global = Resistor.Cfcss.signature_global in
    if not (List.mem_assoc sig_global t.image.global_addrs) then
      diag "cfcss-signature" Error "<image>" 0
        "signature variable %s missing from the image" sig_global;
    let unchecked = ref 0 in
    List.iter
      (fun (f : Ir.func) ->
        let addr = fn_addr t.image f.fname in
        let preds = Hashtbl.create 16 in
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun l ->
                Hashtbl.replace preds l
                  (b.label
                  :: Option.value ~default:[] (Hashtbl.find_opt preds l)))
              (Ir.successors b.term))
          f.blocks;
        let guards_entry (b : Ir.block) =
          List.exists
            (function
              | Ir.Load { src = Ir.Global s; _ } ->
                s = sig_global
              | Ir.Icmp { rhs = Ir.Const _; _ }
              | Ir.Icmp { lhs = Ir.Const _; _ } -> true
              | Ir.Call { callee; _ } ->
                callee = Resistor.Detect.detected_fn
              | _ -> false)
            b.instrs
        in
        List.iter
          (fun (b : Ir.block) ->
            let signed =
              match b.instrs with
              | Ir.Store { dst = Ir.Global s; _ } :: _ ->
                s = sig_global
              | _ -> false
            in
            if signed then
              match Hashtbl.find_opt preds b.label with
              | None | Some [] -> ()
              | Some ps ->
                List.iter
                  (fun p ->
                    match Ir.find_block f p with
                    | Some pb when not (guards_entry pb) ->
                      incr unchecked;
                      diag "cfcss-signature" Error f.fname addr
                        "signed block %s entered from %s without a \
                         signature check"
                        b.label p
                    | _ -> ())
                  ps)
          f.blocks)
      m.funcs;
    if !unchecked = 0 then
      diag "cfcss-signature" Info "<module>" 0
        "CFCSS audit clean: %d block(s) signed, %d check(s) inserted — \
         yet every guard below remains direction-flippable along legal \
         edges (the Table VII limitation)"
        cr.blocks_signed cr.checks_inserted
  | _ -> ());

  (* --- sigcfi running signatures ------------------------------------ *)
  (match (t.modul, t.reports) with
  | Some m, Some { sigcfi_report = Some sr; _ } ->
    let state = Resistor.Sigcfi.state_global in
    if not (List.mem_assoc state t.image.global_addrs) then
      diag "sigcfi-state" Error "<image>" 0
        "state accumulator %s missing from the image" state;
    if Ir.find_func m Resistor.Sigcfi.step_fn = None then
      diag "sigcfi-state" Error "<module>" 0
        "update helper %s missing from the module" Resistor.Sigcfi.step_fn;
    let is_helper f =
      String.length f >= 4 && String.sub f 0 4 = "__gr"
    in
    let bad = ref 0 in
    List.iter
      (fun (f : Ir.func) ->
        if not (is_helper f.fname) then begin
          let addr = fn_addr t.image f.fname in
          (* the entry must re-seed the accumulator before anything else *)
          (match f.blocks with
          | { Ir.instrs = Ir.Store { dst = Ir.Global s; src = Ir.Const _; _ } :: _;
              _ }
            :: _
            when s = state ->
            ()
          | _ ->
            incr bad;
            diag "sigcfi-seed" Error f.fname addr
              "entry does not seed the running signature");
          (* every return must be dominated by a signature check: all its
             predecessors either load-and-compare the state or are the
             detector-calling bad arm of such a check *)
          let preds = Hashtbl.create 16 in
          List.iter
            (fun (b : Ir.block) ->
              List.iter
                (fun l ->
                  Hashtbl.replace preds l
                    (b.label
                    :: Option.value ~default:[] (Hashtbl.find_opt preds l)))
                (Ir.successors b.term))
            f.blocks;
          let checks_state (b : Ir.block) =
            List.exists
              (function
                | Ir.Load { src = Ir.Global s; _ } -> s = state
                | _ -> false)
              b.instrs
            && List.exists (function Ir.Icmp _ -> true | _ -> false) b.instrs
          in
          let is_detect_arm (b : Ir.block) =
            List.exists
              (function
                | Ir.Call { callee; _ } -> callee = Resistor.Detect.detected_fn
                | _ -> false)
              b.instrs
          in
          List.iter
            (fun (b : Ir.block) ->
              match b.term with
              | Ir.Ret _ ->
                let ps = Option.value ~default:[] (Hashtbl.find_opt preds b.label) in
                let guarded p =
                  match Ir.find_block f p with
                  | Some pb -> checks_state pb || is_detect_arm pb
                  | None -> false
                in
                if ps = [] || not (List.for_all guarded ps) then begin
                  incr bad;
                  diag "sigcfi-sink" Error f.fname addr
                    "return in block %s is not dominated by a signature check"
                    b.label
                end
              | _ -> ())
            f.blocks
        end)
      m.funcs;
    if !bad = 0 then
      diag "sigcfi-sink" Info "<module>" 0
        "Sigcfi audit clean: %d block(s) signed, %d edge update(s), %d sink \
         check(s) — an illegal edge still passes a sink with p~1/256 (8-bit \
         state) and legal-edge direction flips stay invisible (the Table VII \
         limitation)"
        sr.blocks_signed sr.updates_inserted sr.checks_inserted
  | _ -> ());

  (* --- scramble domains --------------------------------------------- *)
  (match (t.modul, t.reports) with
  | Some m, Some { domains_report = Some dr; _ } ->
    let reg = Resistor.Domains.domain_global in
    if not (List.mem_assoc reg t.image.global_addrs) then
      diag "domains-check" Error "<image>" 0
        "domain register %s missing from the image" reg;
    if Ir.find_func m Resistor.Domains.bridge_fn = None then
      diag "domains-check" Error "<module>" 0
        "bridge helper %s missing from the module" Resistor.Domains.bridge_fn;
    let bad = ref 0 in
    List.iter
      (fun (fname, _cluster) ->
        match Ir.find_func m fname with
        | None ->
          incr bad;
          diag "domains-check" Error fname 0
            "partitioned function disappeared from the module"
        | Some f ->
          let addr = fn_addr t.image fname in
          let entry_checks =
            match f.blocks with
            | b :: _ ->
              List.exists
                (function
                  | Ir.Load { src = Ir.Global s; _ } -> s = reg
                  | _ -> false)
                b.instrs
              && List.exists (function Ir.Icmp _ -> true | _ -> false) b.instrs
            | [] -> false
          in
          if not entry_checks then begin
            incr bad;
            diag "domains-check" Error fname addr
              "entry does not compare %s against the cluster key" reg
          end)
      dr.domains;
    if !bad = 0 then
      diag "domains-check" Info "<module>" 0
        "Domains audit clean: %d function(s) in %d cluster(s), %d bridge(s), \
         %d check(s) — flow that stays inside its cluster is invisible to the \
         domain register (Table VII-style residue)"
        (List.length dr.domains) dr.clusters dr.bridges dr.checks_inserted
  | _ -> ());

  (* --- verifier lint findings -------------------------------------- *)
  (match t.reports with
  | Some r ->
    List.iter
      (fun (pass, (v : Ir.Verify.violation)) ->
        diag "verify-warning" Warning v.func (fn_addr t.image v.func)
          "after pass %s: %s" pass v.message)
      r.verify_warnings
  | None -> ());

  let diags =
    List.sort
      (fun a b ->
        match compare (severity_rank a.severity) (severity_rank b.severity) with
        | 0 -> (
          match compare a.rule b.rule with
          | 0 -> compare a.addr b.addr
          | c -> c)
        | c -> c)
      (List.rev !diags)
  in
  { cfg; surface; diags }

let errors r = List.filter (fun d -> d.severity = Error) r.diags
let warnings r = List.filter (fun d -> d.severity = Warning) r.diags

let count sev r =
  List.length (List.filter (fun d -> d.severity = sev) r.diags)

(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"image_score\":%.4f,\"diags\":["
       (count Error r) (count Warning r) (count Info r)
       r.surface.image_score);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"func\":\"%s\",\"addr\":\"0x%08x\",\"message\":\"%s\"}"
           (json_escape d.rule)
           (severity_name d.severity)
           (json_escape d.func) d.addr (json_escape d.message)))
    r.diags;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp_diag ppf d =
  Fmt.pf ppf "%-7s %-18s %-14s 0x%08x  %s"
    (severity_name d.severity)
    d.rule d.func d.addr d.message

let pp ppf r =
  Fmt.pf ppf
    "@[<v>lint: %d error(s), %d warning(s), %d info(s); image \
     susceptibility %.1f%% (%d instruction(s), %d perturbations)"
    (count Error r) (count Warning r) (count Info r)
    (100. *. r.surface.image_score)
    (List.length r.surface.profiles)
    r.surface.total_flips;
  List.iter (fun d -> Fmt.pf ppf "@,%a" pp_diag d) r.diags;
  Fmt.pf ppf "@]"
