(** Static glitch-surface analysis: a campaign-free counterpart of the
    Figure-2 taxonomy.

    For every reachable fetched word, all 1-bit (16) and 2-bit (120)
    XOR perturbations are pushed through {!Thumb.Decode.table} and an
    abstract control-flow semantics, and classified:

    - {!Fault}: the perturbed word has no decoding (the dynamic sweep
      would report Invalid Instruction);
    - {!Control}: the original or perturbed instruction diverts control
      (PC write, call, trap, halt) — the flip changes where execution
      goes;
    - {!Benign}: a data perturbation on a straight-line instruction.

    The classification is a pure function of (old word, new word); the
    QCheck differential in [test/test_analysis.ml] pins it against
    {!Glitch_emu.Campaign.run_one} on the conditional-branch rigs. *)

type verdict = Control | Fault | Benign

val verdict_name : verdict -> string

val writes_pc : Thumb.Instr.t -> bool
val diverts : Thumb.Instr.t -> bool
(** [writes_pc] plus traps ([swi]), halts ([bkpt]) and undefined
    encodings — anything that keeps execution from continuing
    linearly. *)

val classify : old_word:int -> int -> verdict

val classify_flip :
  Glitch_emu.Fault_model.flip -> mask:int -> old_word:int -> verdict
(** {!classify} generalized beyond XOR: the perturbed word is
    [Fault_model.apply model ~mask old_word]. A selection that leaves
    the encoding unchanged (And clearing zeros, Or setting ones) is
    [Benign] outright — the dynamic sweep cannot distinguish such a run
    from the baseline. The QCheck differential in
    [test/test_analysis.ml] pins this against
    {!Glitch_emu.Campaign.run_one} under all three models. *)

val mask_of_bits : Glitch_emu.Fault_model.flip -> int -> int
(** The model mask selecting exactly [bits] as the positions that can
    change: the model's identity mask with those positions inverted. *)

type flip_tally = {
  f_control : int;
  f_fault : int;
  f_benign : int;
  f_identity : int;
}

val flip_surface : Glitch_emu.Fault_model.flip -> int -> flip_tally
(** Verdict counts for one word over the 16 weight-1 and 120 weight-2
    bit-selections of the model (the XOR column reproduces
    {!profile_word}'s tallies). *)

type profile = {
  addr : int;
  word : int;
  control1 : int;
  fault1 : int;
  benign1 : int;  (** verdict counts over the 16 one-bit flips *)
  control2 : int;
  fault2 : int;
  benign2 : int;  (** verdict counts over the 120 two-bit flips *)
  direction_masks : int list;
      (** one-bit masks turning a conditional branch into its
          complemented condition with the same offset — the classic
          direction flip of Section III *)
  escape_masks : int list;
      (** one-bit masks degrading a conditional branch into a
          straight-line instruction: the guard is silently never
          taken *)
}

val flips1 : int
val flips2 : int

val profile_word : ?addr:int -> int -> profile
val susceptibility : profile -> float
(** Fraction of all 1/2-bit perturbations classified [Control]. *)

type func_surface = {
  fname : string;
  insns : int;
  control1 : int;
  fault1 : int;
  benign1 : int;
  control2 : int;
  fault2 : int;
  benign2 : int;
  score : float;
}

type t = {
  profiles : profile list;  (** one per reachable instruction *)
  funcs : func_surface list;
  image_score : float;  (** control fraction over the whole image *)
  total_flips : int;
}

val analyze : Cfg.t -> t

val predicted_outcomes :
  addr:int -> int -> Glitch_emu.Campaign.category list
(** The dynamic categories a perturbed [word] fetched at flash address
    [addr] can produce when it replaces the taken branch of a
    {!Glitch_emu.Testcase.conditional_branch} snippet.  Sound
    over-approximation: the differential property asserts membership
    for every sampled mask, and that a {!Fault} (undecodable) verdict
    always surfaces as [Invalid_instruction].  The converse does not
    hold — a decodable [bx] to a non-Thumb address also raises
    [Invalid_instruction] at execution time. *)
