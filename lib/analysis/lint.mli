(** The defense auditor: lint rules that verify GlitchResistor
    postconditions in the artifact rather than trusting the compiler
    (the SCRAMBLE-CFI argument).

    Rules and severities:

    - [cfg-fallthrough], [cfg-target] (Error): recovered control flow
      leaves the image;
    - [guard-flippable] (Error when the owning function has guards with
      no complemented duplicate, Info when protected or runtime
      support, Warning without IR): every conditional branch is one
      bit-flip away from its complement — the severity says whether
      anything re-checks it;
    - [branch-duplication], [loop-false-edge] (Error): a configured
      Branches/Loops pass left an edge unchecked; [loop-false-edge] is
      a Warning when Branches ran without Loops (the ablation gap);
    - [enum-hamming], [return-hamming]: diversified constants checked
      at the binary level — pairwise Hamming distance >= 8 and actual
      presence in the image;
    - [integrity-shadow] (Error): stores/loads of a protected global
      must pair with its complement shadow in the same block;
    - [cfcss-signature] (Error per unchecked entry): signed blocks must
      be entered through a signature check; the clean-audit Info spells
      out the Table VII limitation — legal-edge direction flips remain
      invisible, so CFCSS-only firmware still carries [guard-flippable]
      errors;
    - [verify-warning] (Warning): {!Ir.Verify.lint} findings collected
      after each pass;
    - [cfg-unreachable], [cfg-computed] (Info), [cfg-undecodable],
      [cfg-dangling-bl] (Warning): disassembly anomalies. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  rule : string;
  severity : severity;
  func : string;
  addr : int;
  message : string;
}

type target = {
  image : Lower.Layout.image;
  modul : Ir.modul option;
  config : Resistor.Config.t option;
  reports : Resistor.Driver.reports option;
  cfcss : Resistor.Cfcss.report option;
}

type report = {
  cfg : Cfg.t;
  surface : Surface.t;
  diags : diag list;  (** sorted: errors first, then rule, then addr *)
}

val of_image : Lower.Layout.image -> target
(** Image-only lint: no IR to consult, so guard findings degrade to
    warnings. *)

val of_compiled : Resistor.Driver.compiled -> target
val of_instrs : Thumb.Instr.t list -> target
(** Wrap an assembled snippet as a one-symbol image. *)

val run : target -> report

val errors : report -> diag list
val warnings : report -> diag list
val count : severity -> report -> int

val to_json : report -> string
val pp_diag : diag Fmt.t
val pp : report Fmt.t

(**/**)

(* exposed for tests *)
type protection =
  | Protected
  | Unguarded of { branches : int; loops : int }
  | No_conditionals

val audit_func : Ir.func -> protection
val min_pairwise : int list -> int
val constant_in_image : Lower.Layout.image -> int -> bool
