type error = { line : int; message : string }

exception Error of error

let pp_error ppf { line; message } = Fmt.pf ppf "line %d: %s" line message

let fail line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

type state = { toks : (Lexer.token * int) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let peek2 st = if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1) else Lexer.Teof
let line st = snd st.toks.(st.cur)
let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let expect_punct st p =
  match peek st with
  | Lexer.Tpunct q when q = p -> advance st
  | tok -> fail (line st) "expected %S, found %S" p (Lexer.token_to_string tok)

let expect_keyword st k =
  match peek st with
  | Lexer.Tkeyword q when q = k -> advance st
  | tok -> fail (line st) "expected %S, found %S" k (Lexer.token_to_string tok)

let expect_ident st =
  match peek st with
  | Lexer.Tident name ->
    advance st;
    name
  | tok -> fail (line st) "expected identifier, found %S" (Lexer.token_to_string tok)

let eat_punct st p =
  match peek st with
  | Lexer.Tpunct q when q = p ->
    advance st;
    true
  | _ -> false

let eat_keyword st k =
  match peek st with
  | Lexer.Tkeyword q when q = k ->
    advance st;
    true
  | _ -> false

(* --- types -------------------------------------------------------------- *)

let is_type_start st =
  match peek st with
  | Lexer.Tkeyword ("int" | "unsigned" | "void" | "enum" | "volatile") -> true
  | Lexer.Tkeyword _ | Lexer.Tint_lit _ | Lexer.Tident _ | Lexer.Tpunct _
  | Lexer.Teof -> false

let parse_type st : Ast.ty =
  match peek st with
  | Lexer.Tkeyword "int" ->
    advance st;
    Ast.Tint
  | Lexer.Tkeyword "unsigned" ->
    advance st;
    ignore (eat_keyword st "int");
    Ast.Tuint
  | Lexer.Tkeyword "void" ->
    advance st;
    Ast.Tvoid
  | Lexer.Tkeyword "enum" ->
    advance st;
    Ast.Tenum (expect_ident st)
  | tok -> fail (line st) "expected a type, found %S" (Lexer.token_to_string tok)

(* --- expressions --------------------------------------------------------- *)

let rec parse_expr st = parse_lor st

and parse_lor st =
  let lhs = ref (parse_land st) in
  while eat_punct st "||" do
    lhs := Ast.Binop (Ast.Lor, !lhs, parse_land st)
  done;
  !lhs

and parse_land st =
  let lhs = ref (parse_bor st) in
  while eat_punct st "&&" do
    lhs := Ast.Binop (Ast.Land, !lhs, parse_bor st)
  done;
  !lhs

and parse_bor st =
  let lhs = ref (parse_bxor st) in
  while eat_punct st "|" do
    lhs := Ast.Binop (Ast.Bor, !lhs, parse_bxor st)
  done;
  !lhs

and parse_bxor st =
  let lhs = ref (parse_band st) in
  while eat_punct st "^" do
    lhs := Ast.Binop (Ast.Bxor, !lhs, parse_band st)
  done;
  !lhs

and parse_band st =
  let lhs = ref (parse_equality st) in
  while eat_punct st "&" do
    lhs := Ast.Binop (Ast.Band, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "==" then
      lhs := Ast.Binop (Ast.Eq, !lhs, parse_relational st)
    else if eat_punct st "!=" then
      lhs := Ast.Binop (Ast.Ne, !lhs, parse_relational st)
    else continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_shift st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "<=" then lhs := Ast.Binop (Ast.Le, !lhs, parse_shift st)
    else if eat_punct st ">=" then lhs := Ast.Binop (Ast.Ge, !lhs, parse_shift st)
    else if eat_punct st "<" then lhs := Ast.Binop (Ast.Lt, !lhs, parse_shift st)
    else if eat_punct st ">" then lhs := Ast.Binop (Ast.Gt, !lhs, parse_shift st)
    else continue := false
  done;
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "<<" then lhs := Ast.Binop (Ast.Shl, !lhs, parse_additive st)
    else if eat_punct st ">>" then
      lhs := Ast.Binop (Ast.Shr, !lhs, parse_additive st)
    else continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "+" then
      lhs := Ast.Binop (Ast.Add, !lhs, parse_multiplicative st)
    else if eat_punct st "-" then
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "*" then lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st)
    else if eat_punct st "/" then lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st)
    else if eat_punct st "%" then lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if eat_punct st "-" then (
    (* Fold negated literals so [Int (-5)] is the canonical AST for
       "-5": the printer emits negative constants with "%d" and the
       round-trip property needs reparsing to reproduce them exactly. *)
    match parse_unary st with
    | Ast.Int v -> Ast.Int (-v)
    | e -> Ast.Unop (Ast.Neg, e))
  else if eat_punct st "!" then Ast.Unop (Ast.Lnot, parse_unary st)
  else if eat_punct st "~" then Ast.Unop (Ast.Bnot, parse_unary st)
  else if eat_punct st "+" then parse_unary st
  else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Tint_lit v ->
    advance st;
    Ast.Int v
  | Lexer.Tident name -> (
    advance st;
    match peek st with
    | Lexer.Tpunct "(" ->
      advance st;
      let args = ref [] in
      if not (eat_punct st ")") then begin
        args := [ parse_expr st ];
        while eat_punct st "," do
          args := parse_expr st :: !args
        done;
        expect_punct st ")"
      end;
      Ast.Call (name, List.rev !args)
    | _ -> Ast.Ident name)
  | Lexer.Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | tok -> fail (line st) "expected expression, found %S" (Lexer.token_to_string tok)

(* --- statements ------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.Tpunct "{" -> Ast.Sblock (parse_block st)
  | Lexer.Tpunct ";" ->
    advance st;
    Ast.Sblock []
  | Lexer.Tkeyword "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_stmt_as_block st in
    let else_ = if eat_keyword st "else" then Some (parse_stmt_as_block st) else None in
    Ast.Sif (cond, then_, else_)
  | Lexer.Tkeyword "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    Ast.Swhile (cond, parse_stmt_as_block st)
  | Lexer.Tkeyword "do" ->
    advance st;
    let body = parse_stmt_as_block st in
    expect_keyword st "while";
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    Ast.Sdo_while (body, cond)
  | Lexer.Tkeyword "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if eat_punct st ";" then None
      else begin
        let s =
          if is_type_start st then parse_decl_stmt st else parse_simple_stmt st
        in
        expect_punct st ";";
        Some s
      end
    in
    let cond = if eat_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    let step =
      if eat_punct st ")" then None
      else begin
        let s = parse_simple_stmt st in
        expect_punct st ")";
        Some s
      end
    in
    Ast.Sfor (init, cond, step, parse_stmt_as_block st)
  | Lexer.Tkeyword "switch" ->
    advance st;
    expect_punct st "(";
    let scrutinee = parse_expr st in
    expect_punct st ")";
    expect_punct st "{";
    let arms = ref [] in
    while not (eat_punct st "}") do
      (* one arm: one or more case/default labels, then statements *)
      let labels = ref [] in
      let rec collect_labels () =
        match peek st with
        | Lexer.Tkeyword "case" ->
          advance st;
          let v = parse_expr st in
          expect_punct st ":";
          labels := Some v :: !labels;
          collect_labels ()
        | Lexer.Tkeyword "default" ->
          advance st;
          expect_punct st ":";
          labels := None :: !labels;
          collect_labels ()
        | _ -> ()
      in
      collect_labels ();
      if !labels = [] then
        fail (line st) "expected 'case' or 'default' in switch body";
      let body = ref [] in
      let rec collect_body () =
        match peek st with
        | Lexer.Tkeyword ("case" | "default") | Lexer.Tpunct "}" -> ()
        | Lexer.Teof -> fail (line st) "unterminated switch"
        | _ ->
          body := parse_stmt st :: !body;
          collect_body ()
      in
      collect_body ();
      arms :=
        { Ast.arm_cases = List.rev !labels; arm_body = List.rev !body } :: !arms
    done;
    Ast.Sswitch (scrutinee, List.rev !arms)
  | Lexer.Tkeyword "return" ->
    advance st;
    if eat_punct st ";" then Ast.Sreturn None
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Sreturn (Some e)
    end
  | Lexer.Tkeyword "break" ->
    advance st;
    expect_punct st ";";
    Ast.Sbreak
  | Lexer.Tkeyword "continue" ->
    advance st;
    expect_punct st ";";
    Ast.Scontinue
  | Lexer.Tkeyword ("int" | "unsigned" | "void" | "enum" | "volatile") ->
    let s = parse_decl_stmt st in
    expect_punct st ";";
    s
  | Lexer.Tkeyword _ | Lexer.Tint_lit _ | Lexer.Tident _ | Lexer.Tpunct _
  | Lexer.Teof ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

and parse_decl_stmt st : Ast.stmt =
  let dvolatile = eat_keyword st "volatile" in
  let dty = parse_type st in
  let dvolatile = dvolatile || eat_keyword st "volatile" in
  let dname = expect_ident st in
  let dinit = if eat_punct st "=" then Some (parse_expr st) else None in
  Ast.Sdecl { dname; dty; dvolatile; dinit }

and parse_simple_stmt st : Ast.stmt =
  match (peek st, peek2 st) with
  | Lexer.Tident name, Lexer.Tpunct "=" ->
    advance st;
    advance st;
    Ast.Sassign (name, parse_expr st)
  | _ -> Ast.Sexpr (parse_expr st)

and parse_stmt_as_block st : Ast.block =
  match parse_stmt st with Ast.Sblock b -> b | s -> [ s ]

and parse_block st : Ast.block =
  expect_punct st "{";
  let stmts = ref [] in
  while not (eat_punct st "}") do
    if peek st = Lexer.Teof then fail (line st) "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

(* --- top level ---------------------------------------------------------------- *)

let parse_enum_decl st : Ast.enum_decl =
  expect_keyword st "enum";
  let ename = expect_ident st in
  expect_punct st "{";
  let members = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.Tpunct "}" ->
      advance st;
      continue := false
    | _ ->
      let name = expect_ident st in
      let init = if eat_punct st "=" then Some (parse_expr st) else None in
      members := (name, init) :: !members;
      if not (eat_punct st ",") then begin
        expect_punct st "}";
        continue := false
      end
  done;
  expect_punct st ";";
  { ename; members = List.rev !members }

let parse_item st : Ast.item =
  match (peek st, peek2 st) with
  | Lexer.Tkeyword "enum", Lexer.Tident _
    when (match fst st.toks.(st.cur + 2) with
         | Lexer.Tpunct "{" -> true
         | _ -> false) ->
    Ast.Ienum (parse_enum_decl st)
  | _ ->
    let gvolatile = eat_keyword st "volatile" in
    let ty = parse_type st in
    let gvolatile = gvolatile || eat_keyword st "volatile" in
    let name = expect_ident st in
    if eat_punct st "(" then begin
      (* function definition *)
      let params = ref [] in
      if not (eat_punct st ")") then begin
        if peek st = Lexer.Tkeyword "void" && peek2 st = Lexer.Tpunct ")" then begin
          advance st;
          advance st
        end
        else begin
          let parse_param () =
            let pty = parse_type st in
            let pname = expect_ident st in
            params := (pname, pty) :: !params
          in
          parse_param ();
          while eat_punct st "," do
            parse_param ()
          done;
          expect_punct st ")"
        end
      end;
      let body = parse_block st in
      Ast.Ifunc { fname = name; fret = ty; fparams = List.rev !params; fbody = body }
    end
    else begin
      let ginit = if eat_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      Ast.Iglobal { gname = name; gty = ty; gvolatile; ginit }
    end

let make_state src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { line; message } -> raise (Error { line; message })
  in
  { toks = Array.of_list toks; cur = 0 }

let program src =
  let st = make_state src in
  let items = ref [] in
  while peek st <> Lexer.Teof do
    items := parse_item st :: !items
  done;
  List.rev !items

let expr src =
  let st = make_state src in
  let e = parse_expr st in
  (match peek st with
  | Lexer.Teof -> ()
  | tok -> fail (line st) "trailing input %S" (Lexer.token_to_string tok));
  e
