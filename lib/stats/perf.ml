type t = { label : string; jobs : int; items : int; elapsed_s : float }

let time ~label ~jobs ~items f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (v, { label; jobs; items; elapsed_s })

let throughput t =
  if t.elapsed_s <= 0. then 0. else float_of_int t.items /. t.elapsed_s

let machine_line t =
  Printf.sprintf "PERF experiment=%s jobs=%d items=%d seconds=%.3f rate=%.1f"
    t.label t.jobs t.items t.elapsed_s (throughput t)

let pp ppf t =
  Fmt.pf ppf "%s: %d items in %.2fs (%.0f items/s, %d job%s)" t.label t.items
    t.elapsed_s (throughput t) t.jobs
    (if t.jobs = 1 then "" else "s")
