type t = {
  label : string;
  jobs : int;
  items : int;
  elapsed_s : float;
  executed : int;
  memoized : int;
  pruned : int;
  static_pruned : int;
  booted_cycles : int;
  replayed_cycles : int;
  wait_s : float;
  utilization : float;
}

let time ~label ~jobs ~items f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  ( v,
    { label;
      jobs;
      items;
      elapsed_s;
      executed = items;
      memoized = 0;
      pruned = 0;
      static_pruned = 0;
      booted_cycles = 0;
      replayed_cycles = 0;
      wait_s = 0.;
      utilization = 1. } )

let with_memo ~executed ~memoized t = { t with executed; memoized }

let with_pruned ?(static_pruned = 0) ~executed ~pruned t =
  { t with executed; pruned; static_pruned }

let with_cycles ~booted ~replayed t =
  { t with booted_cycles = booted; replayed_cycles = replayed }

let with_pool_stats ~wait_s ~utilization t = { t with wait_s; utilization }

let throughput t =
  if t.elapsed_s <= 0. then 0. else float_of_int t.items /. t.elapsed_s

let hit_rate t =
  let total = t.executed + t.memoized in
  if total = 0 then 0. else float_of_int t.memoized /. float_of_int total

let replay_rate t =
  let total = t.booted_cycles + t.replayed_cycles in
  if total = 0 then 0. else float_of_int t.replayed_cycles /. float_of_int total

let prune_rate t =
  let total = t.executed + t.pruned in
  if total = 0 then 0. else float_of_int t.pruned /. float_of_int total

let machine_line t =
  let base =
    Printf.sprintf
      "PERF experiment=%s jobs=%d items=%d seconds=%.3f rate=%.1f executed=%d \
       memoized=%d hit_rate=%.4f"
      t.label t.jobs t.items t.elapsed_s (throughput t) t.executed t.memoized
      (hit_rate t)
  in
  let base =
    if t.pruned = 0 then base
    else
      Printf.sprintf "%s pruned=%d prune_rate=%.4f" base t.pruned (prune_rate t)
  in
  let base =
    if t.static_pruned = 0 then base
    else Printf.sprintf "%s static_pruned=%d" base t.static_pruned
  in
  let base =
    if t.booted_cycles = 0 && t.replayed_cycles = 0 then base
    else
      Printf.sprintf "%s booted_cycles=%d replayed_cycles=%d replay_rate=%.4f"
        base t.booted_cycles t.replayed_cycles (replay_rate t)
  in
  if t.wait_s = 0. && t.utilization = 1. then base
  else
    Printf.sprintf "%s wait_s=%.3f utilization=%.4f" base t.wait_s
      t.utilization

let to_json t =
  Printf.sprintf
    {|{"label":"%s","jobs":%d,"items":%d,"seconds":%.6f,"rate":%.1f,"executed":%d,"memoized":%d,"hit_rate":%.6f,"pruned":%d,"prune_rate":%.6f,"static_pruned":%d,"booted_cycles":%d,"replayed_cycles":%d,"replay_rate":%.6f,"wait_s":%.6f,"utilization":%.6f}|}
    (String.escaped t.label)
    t.jobs t.items t.elapsed_s (throughput t) t.executed t.memoized
    (hit_rate t) t.pruned (prune_rate t) t.static_pruned t.booted_cycles
    t.replayed_cycles (replay_rate t) t.wait_s t.utilization

let pp ppf t =
  Fmt.pf ppf "%s: %d items in %.2fs (%.0f items/s, %d job%s" t.label t.items
    t.elapsed_s (throughput t) t.jobs
    (if t.jobs = 1 then "" else "s");
  if t.memoized > 0 then
    Fmt.pf ppf ", %d executed / %d memoized = %.1f%% memo hits" t.executed
      t.memoized
      (100. *. hit_rate t);
  if t.pruned > 0 then
    Fmt.pf ppf ", %d executed / %d pruned = %.1f%% pruned" t.executed t.pruned
      (100. *. prune_rate t);
  if t.static_pruned > 0 then
    Fmt.pf ppf ", %d statically proven" t.static_pruned;
  if t.booted_cycles > 0 || t.replayed_cycles > 0 then
    Fmt.pf ppf ", %d cycles emulated / %d replayed = %.1f%% replay"
      t.booted_cycles t.replayed_cycles
      (100. *. replay_rate t);
  if t.wait_s > 0. || t.utilization < 1. then
    Fmt.pf ppf ", %.2fs wait, %.0f%% utilization" t.wait_s
      (100. *. t.utilization);
  Fmt.pf ppf ")"
