(** Wall-clock timing and throughput counters for campaign sweeps.

    Each parallel campaign wraps its hot loop in {!time} and emits the
    result both human-readably ({!pp}) and as a single machine-readable
    [PERF] line ({!machine_line}) that the bench trajectory greps for,
    e.g.:

    {v PERF experiment=fig2 jobs=4 items=4456448 seconds=3.271 rate=1362411.5 executed=51240 memoized=4405208 hit_rate=0.9885 v}

    Sweeps backed by the per-word outcome memo additionally record how
    many items were actually emulated versus replayed from the memo
    ({!with_memo}); {!to_json} serialises a record for the
    [BENCH_*.json] artifacts. *)

type t = {
  label : string;  (** experiment name; keep it shell-token safe *)
  jobs : int;  (** worker domains used *)
  items : int;  (** work units processed (masks, attempts, ...) *)
  elapsed_s : float;  (** wall-clock seconds *)
  executed : int;  (** items that did real work (default: [items]) *)
  memoized : int;  (** items served from a memo (default: 0) *)
  pruned : int;
      (** items whose outcome was proven equal to an already-executed
          one — state-hash equivalence or dead-schedule cutoffs in the
          exhaustive campaigns (default: 0) *)
  static_pruned : int;
      (** items proven outright by the abstract fault-flow interpreter —
          never emulated, never shared (default: 0) *)
  booted_cycles : int;  (** board cycles emulated step by step (default: 0) *)
  replayed_cycles : int;
      (** board cycles served by snapshot replay — pre-trigger boots and
          dead-schedule tails the hardware sweeps no longer emulate
          (default: 0) *)
  wait_s : float;
      (** worker-seconds of pool capacity spent waiting on the work
          queue or region barriers rather than in job functions
          (default: 0) *)
  utilization : float;
      (** fraction of [jobs * wall] spent inside job functions, in
          [0, 1] (default: 1) *)
}

val time : label:string -> jobs:int -> items:int -> (unit -> 'a) -> 'a * t
(** Run the thunk and measure its wall-clock time (monotonic across
    domains, unlike [Sys.time] which sums CPU time). The returned record
    assumes every item was executed; adjust with {!with_memo}. *)

val with_memo : executed:int -> memoized:int -> t -> t
(** Attach memoization counters after the fact. *)

val with_pruned : ?static_pruned:int -> executed:int -> pruned:int -> t -> t
(** Attach exhaustive-campaign pruning counters after the fact;
    [static_pruned] counts points the abstract interpreter proved
    without any emulation. *)

val with_cycles : booted:int -> replayed:int -> t -> t
(** Attach booted-vs-replayed board-cycle counters after the fact (the
    hardware-leg analogue of {!with_memo}). *)

val with_pool_stats : wait_s:float -> utilization:float -> t -> t
(** Attach pool-overhead counters after the fact; compute them from
    {!Runtime.Pool.stats} with [Pool.stats_wait] /
    [Pool.stats_utilization]. *)

val replay_rate : t -> float
(** [replayed / (booted + replayed)] in [0, 1]; 0 when no cycles were
    recorded. *)

val throughput : t -> float
(** Items per second; 0 for a degenerate zero-length interval. *)

val hit_rate : t -> float
(** [memoized / (executed + memoized)] in [0, 1]; 0 when no items. *)

val prune_rate : t -> float
(** [pruned / (executed + pruned)] in [0, 1]; 0 when no items. *)

val machine_line : t -> string
(** One [PERF key=value ...] line, no trailing newline. *)

val to_json : t -> string
(** One JSON object (no trailing newline), suitable for assembling into
    a [BENCH_*.json] array. *)

val pp : t Fmt.t
(** Human-readable summary, e.g.
    ["fig2: 4456448 items in 3.27s (1362411 items/s, 4 jobs)"]. *)
