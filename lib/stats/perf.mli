(** Wall-clock timing and throughput counters for campaign sweeps.

    Each parallel campaign wraps its hot loop in {!time} and emits the
    result both human-readably ({!pp}) and as a single machine-readable
    [PERF] line ({!machine_line}) that the bench trajectory greps for,
    e.g.:

    {v PERF experiment=fig2 jobs=4 items=4456448 seconds=3.271 rate=1362411.5 v} *)

type t = {
  label : string;  (** experiment name; keep it shell-token safe *)
  jobs : int;  (** worker domains used *)
  items : int;  (** work units processed (masks, attempts, ...) *)
  elapsed_s : float;  (** wall-clock seconds *)
}

val time : label:string -> jobs:int -> items:int -> (unit -> 'a) -> 'a * t
(** Run the thunk and measure its wall-clock time (monotonic across
    domains, unlike [Sys.time] which sums CPU time). *)

val throughput : t -> float
(** Items per second; 0 for a degenerate zero-length interval. *)

val machine_line : t -> string
(** One [PERF key=value ...] line, no trailing newline. *)

val pp : t Fmt.t
(** Human-readable summary, e.g. ["fig2: 4456448 items in 3.27s (1362411 items/s, 4 jobs)"]. *)
