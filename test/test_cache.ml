(* Tests for the persistent content-addressed result cache: round-trips,
   atomic overwrite, and — the load-bearing property — that every kind
   of on-disk corruption reads back as a miss, never as an exception or
   a wrong payload. *)

let counter = ref 0

let fresh_dir () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "glitch-cache-test.%d.%d" (Unix.getpid ()) !counter)

(* The on-disk layout is part of the format contract (two-character
   fan-out, file named by the key), so the corruption tests may address
   entries directly. *)
let entry_path cache key =
  Filename.concat
    (Filename.concat (Cache.dir cache) (String.sub key 0 2))
    key

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

(* --- keys ----------------------------------------------------------------- *)

let key_shape_and_boundaries () =
  let k = Cache.key ~parts:[ "a"; "b" ] in
  Alcotest.(check int) "32 hex chars" 32 (String.length k);
  Alcotest.(check bool) "hex alphabet" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k);
  Alcotest.(check string) "deterministic" k (Cache.key ~parts:[ "a"; "b" ]);
  Alcotest.(check bool) "part boundaries matter" true
    (Cache.key ~parts:[ "ab"; "c" ] <> Cache.key ~parts:[ "a"; "bc" ]);
  Alcotest.(check bool) "content matters" true
    (Cache.key ~parts:[ "a" ] <> Cache.key ~parts:[ "b" ])

let bad_keys_rejected () =
  let c = Cache.open_dir (fresh_dir ()) in
  List.iter
    (fun k ->
      Alcotest.check_raises
        (Printf.sprintf "key %S" k)
        (Invalid_argument "Cache.path: not a cache key")
        (fun () -> ignore (Cache.load c ~key:k)))
    [ ""; "abc"; "../../../../etc/passwd";
      String.make 32 'G'; String.make 31 'a'; String.make 33 'a' ]

(* --- round trips ---------------------------------------------------------- *)

let roundtrip_payloads () =
  let c = Cache.open_dir (fresh_dir ()) in
  List.iteri
    (fun i payload ->
      let key = Cache.key ~parts:[ "roundtrip"; string_of_int i ] in
      Alcotest.(check (option string))
        "miss before store" None (Cache.load c ~key);
      Alcotest.(check bool) "mem before store" false (Cache.mem c ~key);
      Cache.store c ~key payload;
      Alcotest.(check (option string))
        "hit after store" (Some payload) (Cache.load c ~key);
      Alcotest.(check bool) "mem after store" true (Cache.mem c ~key))
    [ "";
      "hello";
      "1 2 3 4 5 ";
      "line one\nline two\n";
      "\x00\x01\xff binary \x0a\x0d bytes";
      (* adversarial: a payload that ends in something shaped like the
         trailer must still round-trip verbatim *)
      "counts\nDIGEST deadbeefdeadbeefdeadbeefdeadbeef";
      String.make 100_000 'x' ]

let overwrite_replaces_payload () =
  let c = Cache.open_dir (fresh_dir ()) in
  let key = Cache.key ~parts:[ "overwrite" ] in
  Cache.store c ~key "first";
  Cache.store c ~key "second";
  Alcotest.(check (option string)) "last store wins" (Some "second")
    (Cache.load c ~key)

let cache_survives_reopen () =
  let dir = fresh_dir () in
  let key = Cache.key ~parts:[ "persist" ] in
  Cache.store (Cache.open_dir dir) ~key "persisted payload";
  Alcotest.(check (option string))
    "visible from a fresh handle" (Some "persisted payload")
    (Cache.load (Cache.open_dir dir) ~key)

(* --- corruption tolerance ------------------------------------------------- *)

let truncation_is_a_miss () =
  let c = Cache.open_dir (fresh_dir ()) in
  let key = Cache.key ~parts:[ "truncate" ] in
  Cache.store c ~key "0 1 2 3 4 5 6 7 8 9";
  let p = entry_path c key in
  let intact = read_file p in
  for len = 0 to String.length intact - 1 do
    write_file p (String.sub intact 0 len);
    Alcotest.(check (option string))
      (Printf.sprintf "truncated to %d bytes" len)
      None (Cache.load c ~key)
  done;
  write_file p intact;
  Alcotest.(check bool) "intact file still hits" true (Cache.mem c ~key)

let bit_flips_are_misses () =
  let c = Cache.open_dir (fresh_dir ()) in
  let key = Cache.key ~parts:[ "bitflip" ] in
  Cache.store c ~key "42 17 65536 totals";
  let p = entry_path c key in
  let intact = read_file p in
  (* Flip one bit at every byte position — header, payload, separator
     and digest line alike — and demand a miss each time. *)
  String.iteri
    (fun i _ ->
      let corrupt = Bytes.of_string intact in
      Bytes.set corrupt i (Char.chr (Char.code intact.[i] lxor 0x04));
      write_file p (Bytes.to_string corrupt);
      Alcotest.(check (option string))
        (Printf.sprintf "bit flipped at byte %d" i)
        None (Cache.load c ~key))
    intact;
  write_file p intact;
  Alcotest.(check bool) "intact file still hits" true (Cache.mem c ~key)

let garbage_files_are_misses () =
  let c = Cache.open_dir (fresh_dir ()) in
  let key = Cache.key ~parts:[ "garbage" ] in
  Cache.store c ~key "payload";
  let p = entry_path c key in
  List.iter
    (fun junk ->
      write_file p junk;
      Alcotest.(check (option string))
        (Printf.sprintf "junk %S" (String.sub junk 0 (min 20 (String.length junk))))
        None (Cache.load c ~key))
    [ ""; "\n"; "not a cache entry at all";
      "glitch-cache 999\npayload\nDIGEST 0123456789abcdef0123456789abcdef\n";
      "glitch-cache 1\n"; "glitch-cache 1\npayload with no digest line\n";
      "glitch-cache 1\npayload\nDIGEST not-a-digest\n" ]

let entry_is_a_directory () =
  (* Even a directory squatting on the entry path must read as a miss. *)
  let c = Cache.open_dir (fresh_dir ()) in
  let key = Cache.key ~parts:[ "dir-squat" ] in
  let p = entry_path c key in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  mkdir_p p;
  Alcotest.(check (option string)) "directory entry" None (Cache.load c ~key)

let () =
  Alcotest.run "cache"
    [ ("keys",
       [ Alcotest.test_case "shape and boundaries" `Quick
           key_shape_and_boundaries;
         Alcotest.test_case "bad keys rejected" `Quick bad_keys_rejected ]);
      ("roundtrip",
       [ Alcotest.test_case "payload round trips" `Quick roundtrip_payloads;
         Alcotest.test_case "overwrite replaces" `Quick
           overwrite_replaces_payload;
         Alcotest.test_case "survives reopen" `Quick cache_survives_reopen ]);
      ("corruption",
       [ Alcotest.test_case "every truncation misses" `Quick
           truncation_is_a_miss;
         Alcotest.test_case "every bit flip misses" `Quick bit_flips_are_misses;
         Alcotest.test_case "garbage files miss" `Quick
           garbage_files_are_misses;
         Alcotest.test_case "directory squatting misses" `Quick
           entry_is_a_directory ]) ]
