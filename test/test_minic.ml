(* Tests for the Mini-C front end: lexer, parser precedence, printer
   round-trips, and semantic analysis (enum resolution in particular,
   since the ENUM Rewriter depends on it). *)

open Minic

let parse = Parser.program
let parse_expr = Parser.expr

(* --- lexer ----------------------------------------------------------------- *)

let lexer_basics () =
  let toks = Lexer.tokenize "int x = 0x2A; // comment\nx = x + 1;" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "hex literal" true
    (List.mem (Lexer.Tint_lit 42) kinds);
  Alcotest.(check bool) "keyword" true (List.mem (Lexer.Tkeyword "int") kinds);
  Alcotest.(check bool) "comment skipped" true
    (not (List.exists (function Lexer.Tident "comment" -> true | _ -> false) kinds))

let lexer_block_comment () =
  let toks = Lexer.tokenize "a /* b\nc */ d" in
  Alcotest.(check int) "two idents + eof" 3 (List.length toks);
  match toks with
  | [ (Lexer.Tident "a", 1); (Lexer.Tident "d", 2); (Lexer.Teof, _) ] -> ()
  | _ -> Alcotest.fail "unexpected tokens/lines"

let lexer_two_char_ops () =
  let toks = Lexer.tokenize "a <= b << c == d && e" in
  let puncts =
    List.filter_map (function Lexer.Tpunct p, _ -> Some p | _ -> None) toks
  in
  Alcotest.(check (list string)) "ops" [ "<="; "<<"; "=="; "&&" ] puncts

let lexer_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected lexer error for %S" src)
  in
  expect_error "int $x;";
  expect_error "/* unterminated";
  expect_error "0x";
  expect_error "123abc"

(* --- parser ------------------------------------------------------------------ *)

let precedence () =
  let open Ast in
  Alcotest.(check bool) "mul over add" true
    (equal_expr (parse_expr "1 + 2 * 3")
       (Binop (Add, Int 1, Binop (Mul, Int 2, Int 3))));
  Alcotest.(check bool) "shift over compare" true
    (equal_expr (parse_expr "a << 1 < b")
       (Binop (Lt, Binop (Shl, Ident "a", Int 1), Ident "b")));
  Alcotest.(check bool) "and over or" true
    (equal_expr (parse_expr "a || b && c")
       (Binop (Lor, Ident "a", Binop (Land, Ident "b", Ident "c"))));
  Alcotest.(check bool) "unary binds tight" true
    (equal_expr (parse_expr "!a == 0")
       (Binop (Eq, Unop (Lnot, Ident "a"), Int 0)));
  Alcotest.(check bool) "parens" true
    (equal_expr (parse_expr "(1 + 2) * 3")
       (Binop (Mul, Binop (Add, Int 1, Int 2), Int 3)))

let left_associativity () =
  let open Ast in
  Alcotest.(check bool) "a - b - c" true
    (equal_expr (parse_expr "a - b - c")
       (Binop (Sub, Binop (Sub, Ident "a", Ident "b"), Ident "c")))

let paper_guards_parse () =
  (* The three guard expressions from Table I. *)
  let prog =
    parse
      {|
        volatile unsigned a = 0;
        int main(void) {
          while (!a) { }
          while (a) { }
          while (a != 0xD3B9AEC6) { }
          return 0;
        }
      |}
  in
  match prog with
  | [ Ast.Iglobal g; Ast.Ifunc f ] ->
    Alcotest.(check bool) "volatile" true g.gvolatile;
    Alcotest.(check int) "three loops + return" 4 (List.length f.fbody)
  | _ -> Alcotest.fail "unexpected program shape"

let enum_and_functions_parse () =
  let prog =
    parse
      {|
        enum status { SUCCESS, FAILURE, PENDING };
        enum fixed { A = 1, B = 2 };
        int check(int tick) {
          if (tick == 0) { return SUCCESS; }
          return FAILURE;
        }
      |}
  in
  match prog with
  | [ Ast.Ienum e1; Ast.Ienum e2; Ast.Ifunc f ] ->
    Alcotest.(check int) "members" 3 (List.length e1.members);
    Alcotest.(check bool) "uninitialized" true
      (List.for_all (fun (_, i) -> i = None) e1.members);
    Alcotest.(check bool) "initialized" true
      (List.for_all (fun (_, i) -> i <> None) e2.members);
    Alcotest.(check string) "name" "check" f.fname
  | _ -> Alcotest.fail "unexpected program shape"

let statements_parse () =
  let prog =
    parse
      {|
        int f(int n) {
          int acc = 0;
          for (int i = 0; i < n; i = i + 1) {
            if (i % 2 == 0) { continue; }
            acc = acc + i;
            if (acc > 100) { break; }
          }
          do { acc = acc - 1; } while (acc > 50);
          return acc;
        }
      |}
  in
  Alcotest.(check int) "one item" 1 (List.length prog)

let switch_parses () =
  let prog =
    parse
      {|
        int f(int v) {
          int r = 0;
          switch (v) {
            case 1:
            case 2:
              r = 10;
              break;
            case 3:
              r = 20;
            default:
              r = r + 1;
              break;
          }
          return r;
        }
      |}
  in
  match prog with
  | [ Ast.Ifunc f ] -> (
    match List.nth f.fbody 1 with
    | Ast.Sswitch (_, arms) ->
      Alcotest.(check int) "three arms" 3 (List.length arms);
      let first = List.nth arms 0 in
      Alcotest.(check int) "two labels on first arm" 2
        (List.length first.arm_cases);
      let last = List.nth arms 2 in
      Alcotest.(check bool) "default label" true
        (List.mem None last.arm_cases)
    | _ -> Alcotest.fail "expected a switch statement")
  | _ -> Alcotest.fail "unexpected program shape"

let switch_sema_errors () =
  let expect_error src =
    match Sema.check (parse src) with
    | exception Sema.Error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected semantic error for %S" src)
  in
  expect_error "int f(int v) { switch (v) { case 1: break; case 1: break; } return 0; }";
  expect_error
    "int f(int v) { switch (v) { default: break; default: break; } return 0; }";
  expect_error "int f(int v) { switch (v) { case v: break; } return 0; }"

let switch_break_allowed_continue_not () =
  (* break is legal in a switch; continue still needs a loop *)
  ignore (Sema.check (parse "int f(int v) { switch (v) { case 1: break; } return 0; }"));
  (match
     Sema.check (parse "int f(int v) { switch (v) { case 1: continue; } return 0; }")
   with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.fail "continue inside switch must be rejected");
  (* ... unless the switch is inside a loop *)
  ignore
    (Sema.check
       (parse
          "int f(int v) { while (v) { switch (v) { case 1: continue; } v = v - 1; } return 0; }"))

let switch_roundtrip () =
  let src =
    "int f(int v) { switch (v) { case 1: return 10; case 2: default: return 20; } return 0; }"
  in
  let ast = parse src in
  let printed = Pretty.to_string ast in
  Alcotest.(check bool) "switch print/parse roundtrip" true
    (Ast.equal_program ast (parse printed))

let parser_errors () =
  let expect_error src =
    match parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" src)
  in
  expect_error "int f( { }";
  expect_error "int x";
  expect_error "enum e { };;";
  expect_error "int f(void) { return 1 }";
  expect_error "int f(void) { break }"

(* --- printer round-trip -------------------------------------------------------- *)

let roundtrip_programs () =
  let sources =
    [ "volatile unsigned a = 0;\nint main(void) { while (!a) { } return 0; }";
      "enum e { X, Y, Z };\nint f(int p, unsigned q) { return p + q; }";
      "int g(void) { int x = 1; do { x = x << 1; } while (x < 100); return x; }";
      "int h(int n) { for (int i = 0; i < n; i = i + 1) { n = n - 1; } return n; }";
      "int i(void) { if (1) { return 2; } else { return 3; } }" ]
  in
  List.iter
    (fun src ->
      let ast = parse src in
      let printed = Pretty.to_string ast in
      let reparsed =
        try parse printed
        with Parser.Error e ->
          Alcotest.fail (Fmt.str "reparse failed: %a\n%s" Parser.pp_error e printed)
      in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %S" src)
        true
        (Ast.equal_program ast reparsed))
    sources

(* Random expression generator for printer/parser agreement. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let binops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Band; Ast.Bor; Ast.Bxor;
      Ast.Shl; Ast.Shr; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge;
      Ast.Land; Ast.Lor ]
  in
  let unops = [ Ast.Neg; Ast.Lnot; Ast.Bnot ] in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun v -> Ast.Int v) (int_bound 1000);
            oneofl [ Ast.Ident "a"; Ast.Ident "b"; Ast.Ident "c" ] ]
      else
        frequency
          [ (2, map (fun v -> Ast.Int v) (int_bound 1000));
            (1, oneofl [ Ast.Ident "a"; Ast.Ident "b" ]);
            (2,
             map3
               (fun op l r -> Ast.Binop (op, l, r))
               (oneofl binops) (self (n / 2)) (self (n / 2)));
            (1,
             (* [Int (-v)] is the canonical AST for a negated literal:
                the parser folds [- 5] so that printed negative
                constants round-trip *)
             map2
               (fun op e ->
                 match (op, e) with
                 | Ast.Neg, Ast.Int v -> Ast.Int (-v)
                 | _ -> Ast.Unop (op, e))
               (oneofl unops) (self (n - 1)));
            (1,
             map
               (fun args -> Ast.Call ("f", args))
               (list_size (int_range 0 3) (self (n / 3)))) ])

let prop_expr_roundtrip =
  let arb = QCheck.make ~print:(Fmt.str "%a" Pretty.pp_expr) gen_expr in
  QCheck.Test.make ~name:"print/parse expression round-trip" ~count:500 arb
    (fun e ->
      let printed = Fmt.str "%a" Pretty.pp_expr e in
      Ast.equal_expr e (parse_expr printed))

(* --- sema ------------------------------------------------------------------------ *)

let sema_enum_defaults () =
  let t = Sema.check (parse "enum e { A, B, C };") in
  match t.enums with
  | [ info ] ->
    Alcotest.(check bool) "fully uninitialized" true info.fully_uninitialized;
    Alcotest.(check (list (pair string int)))
      "sequential" [ ("A", 0); ("B", 1); ("C", 2) ] info.values
  | _ -> Alcotest.fail "one enum expected"

let sema_enum_explicit () =
  let t = Sema.check (parse "enum e { A = 5, B, C = 2 + 3, D };") in
  match t.enums with
  | [ info ] ->
    Alcotest.(check bool) "not fully uninitialized" false info.fully_uninitialized;
    Alcotest.(check (list (pair string int)))
      "values" [ ("A", 5); ("B", 6); ("C", 5); ("D", 6) ] info.values
  | _ -> Alcotest.fail "one enum expected"

let sema_enum_reference () =
  (* Later enums may reference earlier constants. *)
  let t = Sema.check (parse "enum a { X = 3 };\nenum b { Y = X + 1 };") in
  Alcotest.(check int) "Y" 4 (List.assoc "Y" t.enum_constants)

let sema_errors () =
  let expect_error src =
    match Sema.check (parse src) with
    | exception Sema.Error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected semantic error for %S" src)
  in
  expect_error "int f(void) { return x; }";
  expect_error "int f(void) { g(); return 0; }";
  expect_error "int f(int a) { return f(a, a); }";
  expect_error "int x; int x;";
  expect_error "enum e { A }; enum f { A };";
  expect_error "int f(void) { int y = 1; int y = 2; return y; }";
  expect_error "enum e { A }; int f(void) { A = 3; return 0; }";
  expect_error "int g = h;"

let sema_const_eval () =
  let ev e = Sema.const_eval [ ("K", 7) ] (parse_expr e) in
  Alcotest.(check (option int)) "arith" (Some 14) (ev "K * 2");
  Alcotest.(check (option int)) "bitnot" (Some 0xFFFFFFFF) (ev "~0");
  Alcotest.(check (option int)) "logic" (Some 1) (ev "3 < 4 && 1");
  Alcotest.(check (option int)) "shift" (Some 0x80000000) (ev "1 << 31");
  Alcotest.(check (option int)) "wraps" (Some 0) (ev "(1 << 31) * 2");
  Alcotest.(check (option int)) "signed compare" (Some 1) (ev "0 - 1 < 0");
  Alcotest.(check (option int)) "non-const" None (ev "x + 1");
  Alcotest.(check (option int)) "call" None (ev "f()")

let lexer_line_numbers () =
  (* errors report the right line even past comments *)
  (match Parser.program "int x = 1;\n// c\nint f( { }" with
  | exception Parser.Error e -> Alcotest.(check int) "line" 3 e.line
  | _ -> Alcotest.fail "expected error")

let unary_precedence () =
  let open Ast in
  Alcotest.(check bool) "-a * b parses as (-a) * b" true
    (equal_expr (Parser.expr "-a * b")
       (Binop (Mul, Unop (Neg, Ident "a"), Ident "b")));
  Alcotest.(check bool) "~a & b" true
    (equal_expr (Parser.expr "~a & b")
       (Binop (Band, Unop (Bnot, Ident "a"), Ident "b")));
  Alcotest.(check bool) "double negation" true
    (equal_expr (Parser.expr "!!a") (Unop (Lnot, Unop (Lnot, Ident "a"))))

let volatile_placement () =
  (* volatile accepted before or after the type *)
  let p1 = Parser.program "volatile unsigned a;" in
  let p2 = Parser.program "unsigned volatile a;" in
  (match (p1, p2) with
  | [ Ast.Iglobal g1 ], [ Ast.Iglobal g2 ] ->
    Alcotest.(check bool) "both volatile" true (g1.gvolatile && g2.gvolatile)
  | _ -> Alcotest.fail "unexpected shape")

let sema_enum_of_member () =
  let t = Sema.check (parse "enum a { X };\nenum b { Y };") in
  (match Sema.enum_of_member t "Y" with
  | Some info -> Alcotest.(check string) "found b" "b" info.decl.ename
  | None -> Alcotest.fail "Y not found");
  Alcotest.(check bool) "missing" true (Sema.enum_of_member t "Z" = None)

let () =
  let props = List.map Qseed.to_alcotest [ prop_expr_roundtrip ] in
  Alcotest.run "minic"
    [ ("lexer",
       [ Alcotest.test_case "basics" `Quick lexer_basics;
         Alcotest.test_case "block comments" `Quick lexer_block_comment;
         Alcotest.test_case "two-char operators" `Quick lexer_two_char_ops;
         Alcotest.test_case "errors" `Quick lexer_errors ]);
      ("parser",
       [ Alcotest.test_case "precedence" `Quick precedence;
         Alcotest.test_case "left associativity" `Quick left_associativity;
         Alcotest.test_case "paper guards" `Quick paper_guards_parse;
         Alcotest.test_case "enums and functions" `Quick enum_and_functions_parse;
         Alcotest.test_case "statements" `Quick statements_parse;
         Alcotest.test_case "switch" `Quick switch_parses;
         Alcotest.test_case "switch sema errors" `Quick switch_sema_errors;
         Alcotest.test_case "switch break/continue" `Quick
           switch_break_allowed_continue_not;
         Alcotest.test_case "switch roundtrip" `Quick switch_roundtrip;
         Alcotest.test_case "errors" `Quick parser_errors ]);
      ("printer",
       (Alcotest.test_case "program round-trips" `Quick roundtrip_programs :: props));
      ("sema",
       [ Alcotest.test_case "enum defaults" `Quick sema_enum_defaults;
         Alcotest.test_case "enum explicit values" `Quick sema_enum_explicit;
         Alcotest.test_case "cross-enum reference" `Quick sema_enum_reference;
         Alcotest.test_case "errors" `Quick sema_errors;
         Alcotest.test_case "const eval" `Quick sema_const_eval;
         Alcotest.test_case "enum_of_member" `Quick sema_enum_of_member;
         Alcotest.test_case "error line numbers" `Quick lexer_line_numbers;
         Alcotest.test_case "unary precedence" `Quick unary_precedence;
         Alcotest.test_case "volatile placement" `Quick volatile_placement ]) ]
