(* The randomized differential-testing harness, tested the boring way:
   fixed corpus entries, fixed seeds, and the negative control that
   justifies trusting the green runs. *)

let marker = Resistor.Firmware.attack_marker_global

(* --- corpus entries round-trip through disk ------------------------------ *)

let sample_entry =
  { Gen.Corpus.property = "efficacy";
    seed = 1234;
    config =
      Resistor.Config.all_but_delay ~sensitive:[ "g0"; marker ] ();
    sabotage = true;
    message = "addr 0x8000092 mask 0x0100: silent\nsuccess";
    source =
      Printf.sprintf
        "volatile unsigned %s = 0;\n\nint main() {\n  return 0;\n}\n" marker }

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "corpus" "" in
  Sys.remove dir;
  let path = Gen.Corpus.save ~dir sample_entry in
  match Gen.Corpus.load path with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok e ->
    Alcotest.(check string) "property" "efficacy" e.Gen.Corpus.property;
    Alcotest.(check int) "seed" 1234 e.seed;
    Alcotest.(check bool) "sabotage" true e.sabotage;
    Alcotest.(check bool) "branches" true e.config.Resistor.Config.branches;
    Alcotest.(check bool) "loops" true e.config.Resistor.Config.loops;
    Alcotest.(check bool) "delay off" false e.config.Resistor.Config.delay;
    Alcotest.(check (list string))
      "sensitive" [ "g0"; marker ] e.config.Resistor.Config.sensitive;
    (* the message is flattened to one line so the header stays parseable *)
    Alcotest.(check bool) "message one line"
      false
      (String.contains e.message '\n');
    (* the saved file must itself be valid Mini-C: metadata is comments *)
    (match Minic.Parser.program e.source with
    | _ -> ()
    | exception _ -> Alcotest.fail "saved corpus file does not parse as Mini-C")

(* --- the committed sabotage counterexample ------------------------------- *)

(* [corpus/] holds the shrunk program on which a deliberately broken
   Branches/Loops pass (complemented re-check disabled) lets a 1-bit
   guard flip set the attack marker without tripping the detector.
   With the sabotage flag from its header the failure must reproduce;
   with the pass restored the same program must be defended. *)
(* Everything lives relative to _build/default/test, whatever the cwd. *)
let build_root = Filename.dirname (Filename.dirname Sys.executable_name)

let committed_counterexample =
  Filename.concat
    (Filename.concat build_root "corpus")
    "fuzz-efficacy-17f790fd.c"

let load_committed () =
  match Gen.Corpus.load committed_counterexample with
  | Ok e -> e
  | Error m -> Alcotest.failf "%s: %s" committed_counterexample m

let test_sabotage_still_fails () =
  let e = load_committed () in
  Alcotest.(check bool) "recorded as sabotaged" true e.Gen.Corpus.sabotage;
  match Gen.Fuzz.replay e with
  | Error m -> Alcotest.failf "replay: %s" m
  | Ok (Gen.Fuzz.Fail m) ->
    let has_silent =
      let needle = "silent" in
      let nl = String.length needle and ml = String.length m in
      let rec go i =
        i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) ("silent-success diagnostic in: " ^ m) true has_silent
  | Ok Gen.Fuzz.Pass ->
    Alcotest.fail "sabotaged pass no longer caught — negative control is dead"
  | Ok (Gen.Fuzz.Skip m) -> Alcotest.failf "precondition lost: %s" m

let test_fixed_pass_defends () =
  let e = load_committed () in
  match Gen.Fuzz.replay { e with Gen.Corpus.sabotage = false } with
  | Error m -> Alcotest.failf "replay: %s" m
  | Ok Gen.Fuzz.Pass -> ()
  | Ok (Gen.Fuzz.Fail m) ->
    Alcotest.failf "healthy Branches/Loops passes still leak: %s" m
  | Ok (Gen.Fuzz.Skip m) -> Alcotest.failf "precondition lost: %s" m

(* The 500-program acceptance run found a genuine single-glitch escape
   in the un-sabotaged defenses: the guard conditional word corrupts
   into [str rX, [sp, #imm]] aimed at the very slot the complemented
   re-check reads, so one fault both skips the primary test and forges
   the value the re-check validates. Fixed by pairing every reused
   operand with a complemented shadow captured at its definition (and
   keeping the shadow glued to the load when the integrity pass splits
   the block). The committed counterexample must now be defended under
   both swept configurations. *)
let test_spilled_slot_clobber_defended () =
  let path =
    Filename.concat
      (Filename.concat build_root "corpus")
      "fuzz-efficacy-2ee70427.c"
  in
  match Gen.Corpus.load path with
  | Error m -> Alcotest.failf "%s: %s" path m
  | Ok e -> (
    Alcotest.(check bool) "a real finding, not sabotage" false
      e.Gen.Corpus.sabotage;
    match Gen.Fuzz.replay e with
    | Error m -> Alcotest.failf "replay: %s" m
    | Ok Gen.Fuzz.Pass -> ()
    | Ok (Gen.Fuzz.Fail m) ->
      Alcotest.failf "spilled-slot clobber leaks again: %s" m
    | Ok (Gen.Fuzz.Skip m) -> Alcotest.failf "precondition lost: %s" m)

(* --- regressions the fuzzer flushed out ---------------------------------- *)

(* Negated literals: the parser folds [-99] to [Int (-99)], so the
   pretty-printer round trip must agree on programs that spell them
   either way. *)
let test_negative_literal_roundtrip () =
  let src = "int f() { return -99; }\nint main() { return f() + -1; }\n" in
  let prog = Minic.Parser.program src in
  let again = Minic.Parser.program (Minic.Pretty.to_string prog) in
  Alcotest.(check bool) "round trip" true (Minic.Ast.equal_program prog again)

(* Do-while: the back edge targets the body, not the conditional, so
   the original back-edge-target detector missed every do-while exit
   guard. *)
let test_do_while_loop_guard () =
  let src =
    "int main() {\n  int i;\n  i = 0;\n  do {\n    i = i + 1;\n  } while (i != \
     3);\n  return i;\n}\n"
  in
  let m, _ =
    Resistor.Driver.compile_modul Resistor.Config.none src
  in
  let main =
    List.find (fun (f : Ir.func) -> f.Ir.fname = "main") m.Ir.funcs
  in
  Alcotest.(check bool)
    "do-while exit guard found" true
    (Resistor.Loops.guard_edges main <> [])

(* Literal pools and long branches: heavy instrumentation outgrows both
   the 1020-byte [ldr pc] reach and the ±1024-halfword [b] reach;
   codegen must relax rather than reject. A straight-line function with
   hundreds of distinct word constants forces multiple pool islands. *)
let test_pool_islands_and_relaxation () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "volatile unsigned sink = 0;\nint main() {\n";
  for i = 0 to 299 do
    Buffer.add_string buf
      (Printf.sprintf "  sink = %d;\n" (0x10000 + (i * 7)))
  done;
  (* a loop whose body sits past the branch range without relaxation *)
  Buffer.add_string buf
    "  int i;\n  i = 0;\n  while (i < 2) {\n    i = i + 1;\n  }\n";
  Buffer.add_string buf "  return i;\n}\n";
  let c = Resistor.Driver.compile Resistor.Config.none (Buffer.contents buf) in
  let watch = [ "sink" ] in
  match Gen.Oracle.run_interp ~watch c.Resistor.Driver.modul with
  | Error m -> Alcotest.failf "interp: %s" m
  | Ok interp ->
    let arch =
      Gen.Oracle.run_board ~max_cycles:4_000_000 c.Resistor.Driver.modul
        c.Resistor.Driver.image
    in
    (match arch.Gen.Oracle.stop with
    | Some (Machine.Exec.Breakpoint _) -> ()
    | s ->
      Alcotest.failf "board stop: %s"
        (match s with None -> "timeout" | Some _ -> "abnormal"));
    Alcotest.(check (option int)) "exit code" (Some interp.Gen.Oracle.ret)
      arch.Gen.Oracle.exit_code

(* --- interpreter observer ------------------------------------------------- *)

let test_observer_trace () =
  let src =
    "volatile unsigned out = 0;\n\
     int main() {\n\
    \  __trigger_high();\n\
    \  out = 7;\n\
    \  out = out + 1;\n\
    \  __trigger_low();\n\
    \  return 0;\n\
     }\n"
  in
  let c = Resistor.Driver.compile Resistor.Config.none src in
  match Gen.Oracle.run_interp ~watch:[ "out" ] c.Resistor.Driver.modul with
  | Error m -> Alcotest.failf "interp: %s" m
  | Ok r ->
    Alcotest.(check int) "one rising edge" 1 r.Gen.Oracle.edges;
    let expected =
      [ Gen.Oracle.Tcall "__trigger_high";
        Gen.Oracle.Vstore ("out", 7);
        Gen.Oracle.Vload ("out", 7);
        Gen.Oracle.Vstore ("out", 8);
        Gen.Oracle.Tcall "__trigger_low" ]
    in
    Alcotest.(check (list string))
      "volatile trace"
      (List.map Gen.Oracle.obs_event_to_string expected)
      (List.map Gen.Oracle.obs_event_to_string r.Gen.Oracle.trace)

(* --- bounded fuzz smoke --------------------------------------------------- *)

(* One fixed-seed roundtrip batch; the full four-family sweep runs in CI
   through [glitchctl fuzz]. *)
let test_fuzz_smoke () =
  let summary =
    Gen.Fuzz.run ~families:[ Gen.Fuzz.Roundtrip ] ~count:50 ~seed:2024 ()
  in
  Alcotest.(check bool) "roundtrip family green" true (Gen.Fuzz.ok summary);
  match summary.Gen.Fuzz.runs with
  | [ r ] -> Alcotest.(check int) "all 50 checked" 50 r.Gen.Fuzz.checked
  | _ -> Alcotest.fail "expected exactly one family run"

(* --- skip accounting ------------------------------------------------------- *)

(* A program past the 255-slot frame budget is a precondition miss, not
   a pass: the semantics check must answer [Skip] (with the capacity
   diagnostic), never [Pass], so the skip counters see it. *)
let test_capacity_limit_skips () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "int main() {\n";
  for i = 0 to 299 do
    Buffer.add_string buf (Printf.sprintf "  int x%d;\n" i)
  done;
  for i = 0 to 299 do
    Buffer.add_string buf (Printf.sprintf "  x%d = %d;\n" i i)
  done;
  Buffer.add_string buf "  return x299;\n}\n";
  let prog = Minic.Parser.program (Buffer.contents buf) in
  let case = { Gen.Ast_gen.shape = Gen.Ast_gen.Terminating; prog } in
  match Gen.Fuzz.check Gen.Fuzz.Semantics case with
  | Gen.Fuzz.Skip m ->
    Alcotest.(check bool)
      ("capacity diagnostic in: " ^ m)
      true
      (Gen.Fuzz.capacity_message m)
  | Gen.Fuzz.Pass -> Alcotest.fail "over-capacity program silently passed"
  | Gen.Fuzz.Fail m -> Alcotest.failf "capacity miss reported as failure: %s" m

(* The rate arithmetic and the breach filter behind --max-skip-rate. *)
let test_skip_rate_budget () =
  let run family checked skipped =
    { Gen.Fuzz.family; checked; skipped; failure = None }
  in
  let quiet = run Gen.Fuzz.Roundtrip 100 2 in
  let desert = run Gen.Fuzz.Semantics 100 80 in
  let empty = run Gen.Fuzz.Efficacy 0 0 in
  let summary =
    { Gen.Fuzz.seed = 0; count = 100; sabotage = false;
      runs = [ quiet; desert; empty ] }
  in
  Alcotest.(check (float 1e-9)) "2% skip" 0.02 (Gen.Fuzz.skip_rate quiet);
  Alcotest.(check (float 1e-9)) "80% skip" 0.8 (Gen.Fuzz.skip_rate desert);
  Alcotest.(check (float 1e-9)) "empty run skips nothing" 0.
    (Gen.Fuzz.skip_rate empty);
  let breached max_skip_rate =
    Gen.Fuzz.skip_breaches ~max_skip_rate summary
    |> List.map (fun (r : Gen.Fuzz.family_run) -> Gen.Fuzz.family_name r.family)
  in
  Alcotest.(check (list string)) "half budget" [ "semantics" ] (breached 0.5);
  Alcotest.(check (list string)) "tight budget" [ "roundtrip"; "semantics" ]
    (breached 0.01);
  Alcotest.(check (list string)) "loose budget" [] (breached 0.9)

(* --- glitchctl exit-code matrix ------------------------------------------- *)

(* The documented contract: 0 on success, 2 on invalid input, 3 on
   findings — uniformly across subcommands, fuzz included. *)

let glitchctl =
  Filename.concat (Filename.concat build_root "bin") "glitchctl.exe"

let write_tmp suffix contents =
  let path = Filename.temp_file "glitchctl_test" suffix in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let exec args =
  Sys.command
    (Filename.quote_command glitchctl args ~stdout:Filename.null
       ~stderr:Filename.null)

let test_exit_codes () =
  if not (Sys.file_exists glitchctl) then
    Alcotest.failf "missing binary %s" glitchctl;
  let good =
    write_tmp ".c" "int main() { return 0; }\n"
  in
  let guarded =
    write_tmp ".c"
      (Printf.sprintf
         "volatile unsigned %s = 0;\nvolatile unsigned pin = 0;\n\n\
          int main() {\n  __trigger_high();\n  while (pin != 1) {\n  }\n  %s \
          = 170;\n  return 0;\n}\n"
         marker marker)
  in
  let bad = write_tmp ".c" "int main( {\n" in
  let bad_property =
    write_tmp ".c" "// property: bogus\nint main() { return 0; }\n"
  in
  let checks =
    [ ("compile ok", [ "compile"; good ], 0);
      ("compile parse error", [ "compile"; bad ], 2);
      ("lint clean", [ "lint"; good ], 0);
      ( "lint unguarded loop",
        [ "lint"; guarded; "--defenses=none" ],
        3 );
      ( "lint defended",
        [ "lint"; guarded; "--defenses=all-but-delay" ],
        0 );
      (* unknown defense sets are usage errors (2), not cmdliner's
         124 — and the CFI tokens must parse *)
      ("lint unknown defense", [ "lint"; good; "--defenses=bogus" ], 2);
      ("attack unknown defense", [ "attack"; good; "--defenses=bogus" ], 2);
      ("lint cfi token", [ "lint"; good; "--defenses=cfi" ], 0);
      ("lint all-cfi token", [ "lint"; guarded; "--defenses=all-cfi" ], 0);
      ( "lint sabotaged cfi flagged",
        [ "lint"; good; "--defenses=all-cfi"; "--sabotage-cfi" ],
        3 );
      ( "fuzz skip-rate breach",
        [ "fuzz"; "--count"; "5"; "--seed"; "11"; "--properties"; "roundtrip";
          "--max-skip-rate=-1";
          "--corpus"; Filename.get_temp_dir_name () ],
        3 );
      ( "fuzz roundtrip batch",
        [ "fuzz"; "--count"; "5"; "--seed"; "11"; "--properties"; "roundtrip";
          "--corpus"; Filename.get_temp_dir_name () ],
        0 );
      ( "fuzz unknown property",
        [ "fuzz"; "--properties"; "nonsense" ],
        2 );
      ("fuzz zero count", [ "fuzz"; "--count"; "0" ], 2);
      ( "fuzz replay unknown property",
        [ "fuzz"; "--replay"; bad_property ],
        2 );
      ( "fuzz replay sabotage counterexample",
        [ "fuzz"; "--replay"; committed_counterexample ],
        3 ) ]
  in
  List.iter
    (fun (name, args, expected) ->
      Alcotest.(check int) name expected (exec args))
    checks

let () =
  Alcotest.run "gen"
    [ ( "corpus",
        [ Alcotest.test_case "save/load round trip" `Quick
            test_corpus_roundtrip ] );
      ( "sabotage",
        [ Alcotest.test_case "counterexample still fails" `Quick
            test_sabotage_still_fails;
          Alcotest.test_case "fixed pass defends" `Quick
            test_fixed_pass_defends ] );
      ( "regressions",
        [ Alcotest.test_case "negative literal round trip" `Quick
            test_negative_literal_roundtrip;
          Alcotest.test_case "do-while loop guard" `Quick
            test_do_while_loop_guard;
          Alcotest.test_case "pool islands + branch relaxation" `Quick
            test_pool_islands_and_relaxation;
          Alcotest.test_case "spilled-slot clobber defended" `Quick
            test_spilled_slot_clobber_defended ] );
      ( "oracle",
        [ Alcotest.test_case "observer trace" `Quick test_observer_trace ] );
      ( "fuzz",
        [ Alcotest.test_case "fixed-seed smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "capacity limit skips, not passes" `Quick
            test_capacity_limit_skips;
          Alcotest.test_case "skip-rate budget" `Quick test_skip_rate_budget ] );
      ( "cli",
        [ Alcotest.test_case "exit-code matrix" `Quick test_exit_codes ] ) ]
