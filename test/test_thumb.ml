(* Tests for the Thumb-16 ISA substrate: bit-exact encodings against the
   ARM7TDMI TRM, totality of decoding, encode/decode round trips, the
   text assembler, and the cycle model. *)

open Thumb

let check_word = Alcotest.(check int)

let instr_testable = Alcotest.testable Instr.pp Instr.equal

(* --- known encodings (hand-checked against the ARM7TDMI TRM) ---------- *)

let known_encodings () =
  let cases =
    [ (* the paper's example: beq with imm8 = 0 is 0b1101_0000_0000_0000 *)
      (Instr.B_cond (EQ, 0), 0xD000);
      (Instr.B_cond (EQ, 1), 0xD001);
      (Instr.B_cond (NE, -2), 0xD1FE);
      (Instr.B_cond (LE, 100), 0xDD64);
      (* all-zero word is MOVS r0, r0 (LSL #0) *)
      (Instr.nop, 0x0000);
      (Instr.Shift (Lsl, Reg.r2, Reg.r1, 4), 0x010A);
      (Instr.Shift (Asr, Reg.r7, Reg.r0, 31), 0x17C7);
      (Instr.Add_sub { sub = false; imm = false; rd = Reg.r0; rs = Reg.r1; operand = 2 },
       0x1888);
      (Instr.Add_sub { sub = true; imm = true; rd = Reg.r3; rs = Reg.r3; operand = 1 },
       0x1E5B);
      (Instr.Imm (MOVi, Reg.r3, 7), 0x2307);
      (Instr.Imm (CMPi, Reg.r3, 0), 0x2B00);
      (Instr.Imm (ADDi, Reg.r3, 7), 0x3307);
      (Instr.Imm (SUBi, Reg.r0, 255), 0x38FF);
      (Instr.Alu (AND, Reg.r1, Reg.r2), 0x4011);
      (Instr.Alu (MVN, Reg.r0, Reg.r7), 0x43F8);
      (Instr.Alu (CMPr, Reg.r2, Reg.r3), 0x429A);
      (Instr.Hi_mov (Reg.r8, Reg.r8), 0x46C0) (* canonical Thumb NOP *);
      (Instr.Hi_add (Reg.r1, Reg.sp), 0x4469);
      (Instr.Bx Reg.lr, 0x4770);
      (Instr.Ldr_pc (Reg.r0, 4), 0x4804);
      (Instr.Mem_reg { load = true; byte = false; rd = Reg.r0; rb = Reg.r1; ro = Reg.r2 },
       0x5888);
      (Instr.Mem_reg { load = false; byte = true; rd = Reg.r5; rb = Reg.r4; ro = Reg.r3 },
       0x54E5);
      (Instr.Mem_sign { op = LDSH; rd = Reg.r0; rb = Reg.r1; ro = Reg.r2 }, 0x5E88);
      (Instr.Mem_imm { load = true; byte = false; rd = Reg.r3; rb = Reg.r3; imm = 0 },
       0x681B);
      (Instr.Mem_imm { load = true; byte = true; rd = Reg.r3; rb = Reg.r3; imm = 0 },
       0x781B);
      (Instr.Mem_half { load = false; rd = Reg.r1; rb = Reg.r2; imm = 3 }, 0x80D1);
      (Instr.Mem_sp { load = true; rd = Reg.r2; imm = 4 }, 0x9A04);
      (Instr.Load_addr { from_sp = true; rd = Reg.r3; imm = 1 }, 0xAB01);
      (Instr.Sp_adjust 4, 0xB004);
      (Instr.Sp_adjust (-4), 0xB084);
      (Instr.Push { rlist = 0b00010000; lr = true }, 0xB510);
      (Instr.Pop { rlist = 0b00010000; pc = true }, 0xBD10);
      (Instr.Stmia (Reg.r0, 0b0110), 0xC006);
      (Instr.Ldmia (Reg.r4, 0b0011), 0xCC03);
      (Instr.Swi 11, 0xDF0B);
      (Instr.B (-4), 0xE7FC);
      (Instr.Bkpt 0xAB, 0xBEAB) ]
  in
  List.iter
    (fun (i, expected) ->
      check_word (Instr.to_string i) expected (Encode.instr i);
      Alcotest.check instr_testable
        (Printf.sprintf "decode 0x%04x" expected)
        i (Decode.instr expected))
    cases

let branch_cond_order () =
  (* Condition codes occupy bits [11:8] in encoding order. *)
  List.iteri
    (fun idx cond ->
      check_word (Instr.cond_name cond)
        (0xD000 lor (idx lsl 8))
        (Encode.instr (Instr.B_cond (cond, 0))))
    Instr.all_conds

let decode_total () =
  for w = 0 to 0xFFFF do
    ignore (Decode.instr w)
  done

let decode_undefined_examples () =
  (* 32-bit Thumb-2 prefix space and the 0b1110 condition slot. *)
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "0x%04x undefined" w)
        true (Decode.is_undefined w))
    [ 0xE800; 0xEFFF; 0xDE00; 0xDEFF; 0xB100; 0xBFFF ]

(* Words whose decoding is defined re-encode to the identical word,
   except the single redundant "SUB SP, #-0" encoding. *)
let encode_decode_word_identity () =
  let mismatches = ref [] in
  for w = 0 to 0xFFFF do
    match Decode.instr w with
    | Instr.Undefined _ -> ()
    | i -> if Encode.instr i <> w then mismatches := w :: !mismatches
  done;
  Alcotest.(check (list int)) "only SUB SP, #-0 is non-canonical" [ 0xB080 ]
    !mismatches

(* --- qcheck generators -------------------------------------------------- *)

let gen_low = QCheck.Gen.(map Reg.of_int (int_range 0 7))
let gen_any_reg = QCheck.Gen.(map Reg.of_int (int_range 0 15))

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let shift_op = oneofl [ Instr.Lsl; Instr.Lsr; Instr.Asr ] in
  let alu_op =
    oneofl
      [ Instr.AND; Instr.EOR; Instr.LSLr; Instr.LSRr; Instr.ASRr; Instr.ADC;
        Instr.SBC; Instr.ROR; Instr.TST; Instr.NEG; Instr.CMPr; Instr.CMN;
        Instr.ORR; Instr.MUL; Instr.BIC; Instr.MVN ]
  in
  let imm_op = oneofl [ Instr.MOVi; Instr.CMPi; Instr.ADDi; Instr.SUBi ] in
  let sign_op = oneofl [ Instr.STRH; Instr.LDSB; Instr.LDRH; Instr.LDSH ] in
  oneof
    [ (let* op = shift_op and* rd = gen_low and* rs = gen_low
       and* imm = int_range 0 31 in
       return (Instr.Shift (op, rd, rs, imm)));
      (let* sub = bool and* imm = bool and* rd = gen_low and* rs = gen_low
       and* operand = int_range 0 7 in
       return (Instr.Add_sub { sub; imm; rd; rs; operand }));
      (let* op = imm_op and* rd = gen_low and* imm = int_range 0 255 in
       return (Instr.Imm (op, rd, imm)));
      (let* op = alu_op and* rd = gen_low and* rs = gen_low in
       return (Instr.Alu (op, rd, rs)));
      (let* rd = gen_any_reg and* rm = gen_any_reg in
       oneofl [ Instr.Hi_add (rd, rm); Instr.Hi_cmp (rd, rm); Instr.Hi_mov (rd, rm) ]);
      (let* rm = gen_any_reg in
       return (Instr.Bx rm));
      (let* rd = gen_low and* imm = int_range 0 255 in
       return (Instr.Ldr_pc (rd, imm)));
      (let* load = bool and* byte = bool and* rd = gen_low and* rb = gen_low
       and* ro = gen_low in
       return (Instr.Mem_reg { load; byte; rd; rb; ro }));
      (let* op = sign_op and* rd = gen_low and* rb = gen_low and* ro = gen_low in
       return (Instr.Mem_sign { op; rd; rb; ro }));
      (let* load = bool and* byte = bool and* rd = gen_low and* rb = gen_low
       and* imm = int_range 0 31 in
       return (Instr.Mem_imm { load; byte; rd; rb; imm }));
      (let* load = bool and* rd = gen_low and* rb = gen_low
       and* imm = int_range 0 31 in
       return (Instr.Mem_half { load; rd; rb; imm }));
      (let* load = bool and* rd = gen_low and* imm = int_range 0 255 in
       return (Instr.Mem_sp { load; rd; imm }));
      (let* from_sp = bool and* rd = gen_low and* imm = int_range 0 255 in
       return (Instr.Load_addr { from_sp; rd; imm }));
      (let* words = int_range (-127) 127 in
       return (Instr.Sp_adjust words));
      (let* rlist = int_range 0 255 and* lr = bool in
       return (Instr.Push { rlist; lr }));
      (let* rlist = int_range 0 255 and* pc = bool in
       return (Instr.Pop { rlist; pc }));
      (let* rb = gen_low and* rlist = int_range 0 255 in
       oneofl [ Instr.Stmia (rb, rlist); Instr.Ldmia (rb, rlist) ]);
      (let* cond = oneofl Instr.all_conds and* off = int_range (-128) 127 in
       return (Instr.B_cond (cond, off)));
      (let* imm = int_range 0 255 in
       oneofl [ Instr.Swi imm; Instr.Bkpt imm ]);
      (let* off = int_range (-1024) 1023 in
       oneofl [ Instr.B off; Instr.Bl_hi off ]);
      (let* off = int_range 0 2047 in
       return (Instr.Bl_lo off)) ]

let arb_instr = QCheck.make ~print:Instr.to_string gen_instr

(* BX ignores the low register bits; everything else round-trips as the
   identical constructor. *)
let roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arb_instr (fun i ->
      let i' = Decode.instr (Encode.instr i) in
      Instr.equal i i')

let encoding_in_range =
  QCheck.Test.make ~name:"encodings are 16-bit" ~count:2000 arb_instr (fun i ->
      let w = Encode.instr i in
      w >= 0 && w <= 0xFFFF)

(* --- assembler ---------------------------------------------------------- *)

let asm_paper_loop () =
  (* The exact while(!a) loop from Table I(a). *)
  let src =
    {|
      mov  r3, sp
      adds r3, #7
    loop:
      ldrb r3, [r3]
      cmp  r3, #0
      beq  loop
      movs r0, #0xAA
      bkpt #0
    |}
  in
  let instrs = Asm.assemble src in
  Alcotest.(check int) "instruction count" 7 (List.length instrs);
  let words = Encode.program instrs in
  (* beq loop: branch from halfword index 4 back to index 2: off = -4. *)
  Alcotest.(check int) "beq encodes backwards branch" 0xD0FC (List.nth words 4)

let asm_label_forward () =
  let words = Asm.assemble_words "beq done\nmovs r0, #1\ndone:\nbkpt #0" in
  (* beq at index 0, target index 2: off = 0. *)
  check_word "forward branch" 0xD000 (List.nth words 0)

let asm_mem_forms () =
  let instrs =
    Asm.assemble
      "ldr r0, [sp, #8]\nstr r1, [r2, #4]\nldrb r3, [r4, r5]\nstrh r6, [r7, #2]\nldr r2, [pc, #8]"
  in
  Alcotest.check instr_testable "sp load"
    (Instr.Mem_sp { load = true; rd = Reg.r0; imm = 2 })
    (List.nth instrs 0);
  Alcotest.check instr_testable "imm store"
    (Instr.Mem_imm { load = false; byte = false; rd = Reg.r1; rb = Reg.r2; imm = 1 })
    (List.nth instrs 1);
  Alcotest.check instr_testable "reg byte load"
    (Instr.Mem_reg { load = true; byte = true; rd = Reg.r3; rb = Reg.r4; ro = Reg.r5 })
    (List.nth instrs 2);
  Alcotest.check instr_testable "halfword store"
    (Instr.Mem_half { load = false; rd = Reg.r6; rb = Reg.r7; imm = 1 })
    (List.nth instrs 3);
  Alcotest.check instr_testable "pc-relative load"
    (Instr.Ldr_pc (Reg.r2, 2))
    (List.nth instrs 4)

let asm_bl_expands () =
  let instrs = Asm.assemble "bl target\nbkpt #0\ntarget:\nbx lr" in
  Alcotest.(check int) "bl is two halfwords" 4 (List.length instrs);
  (match (List.nth instrs 0, List.nth instrs 1) with
  | Instr.Bl_hi _, Instr.Bl_lo _ -> ()
  | _ -> Alcotest.fail "bl must expand to Bl_hi; Bl_lo")

let asm_push_pop () =
  let instrs = Asm.assemble "push {r4, r5, lr}\npop {r4, r5, pc}" in
  Alcotest.check instr_testable "push"
    (Instr.Push { rlist = 0b00110000; lr = true })
    (List.nth instrs 0);
  Alcotest.check instr_testable "pop"
    (Instr.Pop { rlist = 0b00110000; pc = true })
    (List.nth instrs 1)

(* Every supported mnemonic form assembles, and its encoding decodes
   back to an instruction that prints with the same mnemonic family. *)
let asm_mnemonic_coverage () =
  let forms =
    [ "nop"; "movs r0, #1"; "movs r0, r1"; "mov r8, r9"; "mov r3, sp";
      "cmp r0, #1"; "cmp r0, r1"; "cmp r8, r9"; "adds r0, #1";
      "adds r0, r1, #2"; "adds r0, r1, r2"; "subs r0, #1"; "subs r0, r1, #2";
      "subs r0, r1, r2"; "add r0, sp, #8"; "add r0, pc, #8"; "add sp, #8";
      "sub sp, #8"; "add r0, r8"; "lsls r0, r1, #2"; "lsls r0, r1";
      "lsrs r0, r1, #2"; "lsrs r0, r1"; "asrs r0, r1, #2"; "asrs r0, r1";
      "ands r0, r1"; "eors r0, r1"; "adcs r0, r1"; "sbcs r0, r1";
      "rors r0, r1"; "tst r0, r1"; "negs r0, r1"; "cmn r0, r1";
      "orrs r0, r1"; "muls r0, r1"; "bics r0, r1"; "mvns r0, r1";
      "ldr r0, [r1, #4]"; "ldr r0, [r1, r2]"; "ldr r0, [sp, #4]";
      "ldr r0, [pc, #4]"; "str r0, [r1, #4]"; "str r0, [r1, r2]";
      "str r0, [sp, #4]"; "ldrb r0, [r1, #1]"; "ldrb r0, [r1, r2]";
      "strb r0, [r1, #1]"; "strb r0, [r1, r2]"; "ldrh r0, [r1, #2]";
      "ldrh r0, [r1, r2]"; "strh r0, [r1, #2]"; "strh r0, [r1, r2]";
      "ldsb r0, [r1, r2]"; "ldsh r0, [r1, r2]"; "push {r0, r1, lr}";
      "pop {r0, r1, pc}"; "stmia r0!, {r1, r2}"; "ldmia r0!, {r1, r2}";
      "beq #4"; "bne #-4"; "b #8"; "bx lr"; "swi #5"; "bkpt #0";
      ".word 0x12345678" ]
  in
  List.iter
    (fun form ->
      match Asm.assemble form with
      | [] -> Alcotest.fail (form ^ ": assembled to nothing")
      | instrs ->
        (* encodings must be in range and decode without exception *)
        List.iter
          (fun i ->
            let w = Encode.instr i in
            Alcotest.(check bool) (form ^ " in range") true (w >= 0 && w <= 0xFFFF);
            ignore (Decode.instr w))
          instrs
      | exception Asm.Parse_error e ->
        Alcotest.fail (Fmt.str "%s: %a" form Asm.pp_error e))
    forms

let asm_errors () =
  let expect_error src =
    match Asm.assemble src with
    | exception Asm.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" src)
  in
  expect_error "movs r9, #1";
  expect_error "beq nowhere";
  expect_error "movs r0, #999";
  expect_error "frobnicate r0";
  expect_error "loop:\nloop:\nnop"

(* --- cycle model --------------------------------------------------------- *)

let cycle_model () =
  let check name expected instr taken =
    Alcotest.(check int) name expected (Cycles.of_instr ~taken instr)
  in
  check "alu" 1 (Instr.Alu (AND, Reg.r0, Reg.r1)) false;
  check "load" 2
    (Instr.Mem_imm { load = true; byte = false; rd = Reg.r0; rb = Reg.r1; imm = 0 })
    false;
  check "branch taken" 3 (Instr.B_cond (EQ, 0)) true;
  check "branch not taken" 1 (Instr.B_cond (EQ, 0)) false;
  check "push 2+lr" 4 (Instr.Push { rlist = 0b11; lr = true }) false;
  check "pop with pc" 5 (Instr.Pop { rlist = 0b1; pc = true }) false

let () =
  let qsuite = List.map Qseed.to_alcotest [ roundtrip; encoding_in_range ] in
  Alcotest.run "thumb"
    [ ("encodings",
       [ Alcotest.test_case "known encodings" `Quick known_encodings;
         Alcotest.test_case "condition code order" `Quick branch_cond_order ]);
      ("decode",
       [ Alcotest.test_case "total over 16-bit space" `Quick decode_total;
         Alcotest.test_case "undefined examples" `Quick decode_undefined_examples;
         Alcotest.test_case "word identity" `Quick encode_decode_word_identity ]);
      ("properties", qsuite);
      ("assembler",
       [ Alcotest.test_case "paper's while(!a) loop" `Quick asm_paper_loop;
         Alcotest.test_case "forward label" `Quick asm_label_forward;
         Alcotest.test_case "memory operand forms" `Quick asm_mem_forms;
         Alcotest.test_case "bl expansion" `Quick asm_bl_expands;
         Alcotest.test_case "push/pop lists" `Quick asm_push_pop;
         Alcotest.test_case "mnemonic coverage" `Quick asm_mnemonic_coverage;
         Alcotest.test_case "rejects bad input" `Quick asm_errors ]);
      ("cycles", [ Alcotest.test_case "cortex-m0 timing" `Quick cycle_model ]) ]
