(* Deterministic seeding for every QCheck property in the suite.

   Each test binary picks one seed — from the QCHECK_SEED environment
   variable when set, otherwise freshly — and prints it up front, so
   any property failure in CI can be replayed bit for bit with

     QCHECK_SEED=<n> dune runtest

   Route properties through {!to_alcotest} rather than calling
   [QCheck_alcotest.to_alcotest] directly: the latter falls back to an
   unannounced global random state, which makes failures one-shot. *)

let seed =
  lazy
    (let chosen =
       match Sys.getenv_opt "QCHECK_SEED" with
       | Some v -> (
         match int_of_string_opt (String.trim v) with
         | Some n -> n
         | None ->
           Printf.eprintf "qseed: unparseable QCHECK_SEED=%S, picking one\n%!" v;
           Random.self_init ();
           Random.bits ())
       | None ->
         Random.self_init ();
         Random.bits ()
     in
     Printf.printf "qcheck: seed %d (replay with QCHECK_SEED=%d)\n%!" chosen
       chosen;
     chosen)

(* A fresh state per property: tests stay independent of suite order. *)
let rand () = Random.State.make [| Lazy.force seed |]

let to_alcotest ?verbose ?long test =
  QCheck_alcotest.to_alcotest ?verbose ?long ~rand:(rand ()) test
