(* Tests for the IR: builder ergonomics, verifier diagnostics, and
   interpreter semantics (including the 32-bit arithmetic the codegen
   must agree with). *)

let empty_modul () : Ir.modul = { globals = []; funcs = []; externs = [] }

(* Build: int add2(a, b) { return a + b + 2; } *)
let build_add2 () =
  let b = Ir.Builder.create ~fname:"add2" ~params:[ "a"; "b" ] ~returns_value:true in
  let va = Ir.Builder.load b (Ir.Local "a") in
  let vb = Ir.Builder.load b (Ir.Local "b") in
  let sum = Ir.Builder.binop b Ir.Add va vb in
  let sum2 = Ir.Builder.binop b Ir.Add sum (Ir.Const 2) in
  Ir.Builder.ret b (Some sum2);
  Ir.Builder.func b

(* Build: int countdown(n) { while (n != 0) n = n - 1; return n; }
   with n spilled through a local, exercising loops. *)
let build_countdown () =
  let b = Ir.Builder.create ~fname:"countdown" ~params:[ "n" ] ~returns_value:true in
  Ir.Builder.br b "head";
  let head = Ir.Builder.new_block b "head" in
  let n = Ir.Builder.load b (Ir.Local "n") in
  let cond = Ir.Builder.icmp b Ir.Ne n (Ir.Const 0) in
  Ir.Builder.cond_br b cond ~if_true:"body" ~if_false:"exit";
  let _body = Ir.Builder.new_block b "body" in
  let n2 = Ir.Builder.load b (Ir.Local "n") in
  let dec = Ir.Builder.binop b Ir.Sub n2 (Ir.Const 1) in
  Ir.Builder.store b (Ir.Local "n") dec;
  Ir.Builder.br b "head";
  let _exit = Ir.Builder.new_block b "exit" in
  let out = Ir.Builder.load b (Ir.Local "n") in
  Ir.Builder.ret b (Some out);
  ignore head;
  Ir.Builder.func b

let run_ok ?builtins m ~entry ~args =
  match Ir.Interp.run ?builtins m ~entry ~args with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail ("interp error: " ^ e)

let builder_and_interp () =
  let m = empty_modul () in
  m.funcs <- [ build_add2 () ];
  Ir.Verify.check_exn m;
  let out = run_ok m ~entry:"add2" ~args:[ 40; 0 ] in
  Alcotest.(check (option int)) "40+0+2" (Some 42) out.ret

let loop_semantics () =
  let m = empty_modul () in
  m.funcs <- [ build_countdown () ];
  Ir.Verify.check_exn m;
  let out = run_ok m ~entry:"countdown" ~args:[ 1000 ] in
  Alcotest.(check (option int)) "terminates at zero" (Some 0) out.ret

let globals_and_calls () =
  let m = empty_modul () in
  m.globals <-
    [ { Ir.gname = "counter"; init = 5; volatile = false; sensitive = false } ];
  let b = Ir.Builder.create ~fname:"bump" ~params:[] ~returns_value:true in
  let v = Ir.Builder.load b (Ir.Global "counter") in
  let v' = Ir.Builder.binop b Ir.Add v (Ir.Const 1) in
  Ir.Builder.store b (Ir.Global "counter") v';
  Ir.Builder.ret b (Some v');
  let bump = Ir.Builder.func b in
  let b2 = Ir.Builder.create ~fname:"main" ~params:[] ~returns_value:true in
  let r1 = Option.get (Ir.Builder.call b2 ~dst:true "bump" []) in
  let _r2 = Option.get (Ir.Builder.call b2 ~dst:true "bump" []) in
  ignore r1;
  let final = Ir.Builder.load b2 (Ir.Global "counter") in
  Ir.Builder.ret b2 (Some final);
  m.funcs <- [ bump; Ir.Builder.func b2 ];
  Ir.Verify.check_exn m;
  let out = run_ok m ~entry:"main" ~args:[] in
  Alcotest.(check (option int)) "two bumps" (Some 7) out.ret;
  Alcotest.(check (list (pair string int))) "global state" [ ("counter", 7) ]
    out.globals

let builtins_dispatch () =
  let m = empty_modul () in
  m.externs <- [ "magic" ];
  let b = Ir.Builder.create ~fname:"main" ~params:[] ~returns_value:true in
  let r = Option.get (Ir.Builder.call b ~dst:true "magic" [ Ir.Const 10 ]) in
  Ir.Builder.ret b (Some r);
  m.funcs <- [ Ir.Builder.func b ];
  Ir.Verify.check_exn m;
  let out =
    run_ok m ~entry:"main" ~args:[]
      ~builtins:[ ("magic", fun args -> List.hd args * 3) ]
  in
  Alcotest.(check (option int)) "builtin result" (Some 30) out.ret

let fuel_bounds_runaway () =
  let b = Ir.Builder.create ~fname:"spin" ~params:[] ~returns_value:false in
  Ir.Builder.br b "entry";
  let m = empty_modul () in
  m.funcs <- [ Ir.Builder.func b ];
  match Ir.Interp.run ~fuel:1000 m ~entry:"spin" ~args:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infinite loop must exhaust fuel"

let arithmetic_32bit () =
  let check_binop name op a b expected =
    Alcotest.(check int) name expected (Ir.eval_binop op a b)
  in
  check_binop "wraparound add" Ir.Add 0xFFFFFFFF 1 0;
  check_binop "signed div" Ir.Sdiv 0xFFFFFFFE 2 0xFFFFFFFF (* -2/2 = -1 *);
  check_binop "div by zero" Ir.Sdiv 5 0 0;
  check_binop "ashr sign" Ir.Ashr 0x80000000 31 0xFFFFFFFF;
  check_binop "lshr" Ir.Lshr 0x80000000 31 1;
  check_binop "shl masks amount" Ir.Shl 1 32 1;
  Alcotest.(check int) "signed lt" 1 (Ir.eval_icmp Ir.Slt 0xFFFFFFFF 0);
  Alcotest.(check int) "unsigned lt" 0 (Ir.eval_icmp Ir.Ult 0xFFFFFFFF 0)

let negate_icmp_involution () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "involution" true
        (Ir.negate_icmp (Ir.negate_icmp op) = op);
      (* negation complements the outcome on all inputs we try *)
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool) "complement" true
            (Ir.eval_icmp op a b <> Ir.eval_icmp (Ir.negate_icmp op) a b))
        [ (0, 0); (1, 0); (0, 1); (0xFFFFFFFF, 1); (5, 5) ])
    [ Ir.Eq; Ir.Ne; Ir.Slt; Ir.Sle; Ir.Sgt; Ir.Sge; Ir.Ult; Ir.Ule; Ir.Ugt; Ir.Uge ]

let switch_interp () =
  let b = Ir.Builder.create ~fname:"pick" ~params:[ "v" ] ~returns_value:true in
  let v = Ir.Builder.load b (Ir.Local "v") in
  Ir.Builder.switch b v
    ~cases:[ (1, "one"); (2, "two") ]
    ~default:"other";
  let _ = Ir.Builder.new_block b "one" in
  Ir.Builder.ret b (Some (Ir.Const 10));
  let _ = Ir.Builder.new_block b "two" in
  Ir.Builder.ret b (Some (Ir.Const 20));
  let _ = Ir.Builder.new_block b "other" in
  Ir.Builder.ret b (Some (Ir.Const 99));
  let m = empty_modul () in
  m.funcs <- [ Ir.Builder.func b ];
  Ir.Verify.check_exn m;
  List.iter
    (fun (arg, expected) ->
      let out = run_ok m ~entry:"pick" ~args:[ arg ] in
      Alcotest.(check (option int))
        (Printf.sprintf "pick %d" arg)
        (Some expected) out.ret)
    [ (1, 10); (2, 20); (3, 99); (0, 99) ]

let switch_verifier () =
  let bad_switch cases =
    let b = Ir.Builder.create ~fname:"f" ~params:[] ~returns_value:false in
    Ir.Builder.switch b (Ir.Const 0) ~cases ~default:"entry";
    let m = empty_modul () in
    m.funcs <- [ Ir.Builder.func b ];
    Ir.Verify.modul m
  in
  Alcotest.(check bool) "duplicate cases rejected" true
    (bad_switch [ (1, "entry"); (1, "entry") ] <> []);
  Alcotest.(check bool) "unknown target rejected" true
    (bad_switch [ (1, "ghost") ] <> []);
  Alcotest.(check bool) "well-formed accepted" true
    (bad_switch [ (1, "entry"); (2, "entry") ] = [])

let verifier_catches () =
  let expect_violation build =
    let m = empty_modul () in
    build m;
    match Ir.Verify.modul m with
    | [] -> Alcotest.fail "expected a verifier violation"
    | _ -> ()
  in
  (* branch to unknown label *)
  expect_violation (fun m ->
      let b = Ir.Builder.create ~fname:"f" ~params:[] ~returns_value:false in
      Ir.Builder.br b "nowhere";
      m.funcs <- [ Ir.Builder.func b ]);
  (* undeclared global *)
  expect_violation (fun m ->
      let b = Ir.Builder.create ~fname:"f" ~params:[] ~returns_value:false in
      let _ = Ir.Builder.load b (Ir.Global "ghost") in
      Ir.Builder.ret b None;
      m.funcs <- [ Ir.Builder.func b ]);
  (* call to unknown function *)
  expect_violation (fun m ->
      let b = Ir.Builder.create ~fname:"f" ~params:[] ~returns_value:false in
      let _ = Ir.Builder.call b "ghost" [] in
      Ir.Builder.ret b None;
      m.funcs <- [ Ir.Builder.func b ]);
  (* ret void from value-returning function *)
  expect_violation (fun m ->
      let b = Ir.Builder.create ~fname:"f" ~params:[] ~returns_value:true in
      Ir.Builder.ret b None;
      m.funcs <- [ Ir.Builder.func b ]);
  (* double assignment of a temp *)
  expect_violation (fun m ->
      let f : Ir.func =
        { fname = "f"; params = []; returns_value = false; locals = [ "x" ];
          blocks =
            [ { label = "entry";
                instrs =
                  [ Ir.Load { dst = 0; src = Ir.Local "x"; volatile = false };
                    Ir.Load { dst = 0; src = Ir.Local "x"; volatile = false } ];
                term = Ir.Ret None } ] }
      in
      m.funcs <- [ f ])

let verifier_accepts_good () =
  let m = empty_modul () in
  m.funcs <- [ build_add2 (); build_countdown () ];
  Alcotest.(check int) "no violations" 0 (List.length (Ir.Verify.modul m))

let max_temp_tracking () =
  let f = build_add2 () in
  Alcotest.(check int) "max temp" 3 (Ir.max_temp f)

(* --- Verify.lint: reachability and must-define dataflow ------------------- *)

let contains s ~affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let lint_clean () =
  Alcotest.(check int) "clean function" 0
    (List.length (Ir.Verify.lint_func (build_countdown ())))

let lint_unreachable_block () =
  let f = build_add2 () in
  f.blocks <-
    f.blocks
    @ [ { Ir.label = "orphan"; instrs = []; term = Ir.Ret (Some (Ir.Const 1)) } ];
  Ir.Verify.check_exn { globals = []; funcs = [ f ]; externs = [] };
  match Ir.Verify.lint_func f with
  | [ v ] ->
    Alcotest.(check string) "names the function" "add2" v.func;
    Alcotest.(check bool) "names the block" true
      (contains v.message ~affix:"orphan")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let lint_maybe_undefined () =
  (* t defined only on the then-path, used at the join *)
  let b = Ir.Builder.create ~fname:"half" ~params:[ "x" ] ~returns_value:true in
  let x = Ir.Builder.load b (Ir.Local "x") in
  let c = Ir.Builder.icmp b Ir.Ne x (Ir.Const 0) in
  Ir.Builder.cond_br b c ~if_true:"then" ~if_false:"join";
  let _ = Ir.Builder.new_block b "then" in
  let t = Ir.Builder.binop b Ir.Add x (Ir.Const 1) in
  Ir.Builder.br b "join";
  let _ = Ir.Builder.new_block b "join" in
  let s = Ir.Builder.binop b Ir.Add t (Ir.Const 0) in
  Ir.Builder.ret b (Some s);
  let f = Ir.Builder.func b in
  Alcotest.(check bool) "flags the maybe-undefined temp" true
    (List.exists
       (fun (v : Ir.Verify.violation) ->
         contains v.message ~affix:"before definition")
       (Ir.Verify.lint_func f));
  (* fully-defined variant is quiet: define t on both paths *)
  Alcotest.(check int) "countdown is clean" 0
    (List.length (Ir.Verify.lint_func (build_countdown ())))

let lint_surfaces_through_driver () =
  (* dead blocks produced by lowering surface as pass-tagged warnings in
     the driver reports *)
  let c =
    Resistor.Driver.compile
      (Resistor.Config.all ~sensitive:[ "a" ] ())
      Resistor.Firmware.guard_loop
  in
  Alcotest.(check bool) "driver collected lint warnings" true
    (List.exists
       (fun (pass, (v : Ir.Verify.violation)) ->
         pass <> "" && contains v.message ~affix:"unreachable")
       c.reports.verify_warnings)

let () =
  Alcotest.run "ir"
    [ ("interp",
       [ Alcotest.test_case "builder + interp" `Quick builder_and_interp;
         Alcotest.test_case "loops" `Quick loop_semantics;
         Alcotest.test_case "globals and calls" `Quick globals_and_calls;
         Alcotest.test_case "builtins" `Quick builtins_dispatch;
         Alcotest.test_case "fuel" `Quick fuel_bounds_runaway ]);
      ("semantics",
       [ Alcotest.test_case "32-bit arithmetic" `Quick arithmetic_32bit;
         Alcotest.test_case "icmp negation" `Quick negate_icmp_involution ]);
      ("switch",
       [ Alcotest.test_case "interp dispatch" `Quick switch_interp;
         Alcotest.test_case "verifier" `Quick switch_verifier ]);
      ("verify",
       [ Alcotest.test_case "catches violations" `Quick verifier_catches;
         Alcotest.test_case "accepts good modules" `Quick verifier_accepts_good;
         Alcotest.test_case "max_temp" `Quick max_temp_tracking ]);
      ("lint",
       [ Alcotest.test_case "clean function" `Quick lint_clean;
         Alcotest.test_case "unreachable block" `Quick lint_unreachable_block;
         Alcotest.test_case "maybe-undefined temp" `Quick lint_maybe_undefined;
         Alcotest.test_case "surfaces through driver" `Quick
           lint_surfaces_through_driver ]) ]
