(* The abstract fault-flow interpreter, tested three ways:

   - lattice laws for the value-set domain (join commutative,
     idempotent, associative; widening monotone and terminating), the
     algebra every fixpoint argument leans on;
   - totality of the per-instruction effect tables: all 65,536 Thumb
     decodings map to an Effects.t without raising, and the tables
     agree with spot-checked concrete semantics;
   - soundness of the static pre-pruner against the dynamic engine: on
     the guard-loop firmware and on generated programs, a campaign with
     [static_prune] produces bit-identical verdict tables and per-point
     verdicts to the unpruned oracle — and the sabotaged transfer
     function (taint never propagates) is caught by the same
     differential. *)

let vset_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Absint.Dom.top);
        (8,
         map Absint.Dom.of_list
           (list_size (int_bound 11) (int_bound 0xFFFF))) ])

let arb_vset =
  QCheck.make vset_gen ~print:(fun v -> Fmt.str "%a" Absint.Dom.pp v)

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:200
    (QCheck.pair arb_vset arb_vset) (fun (a, b) ->
      Absint.Dom.equal (Absint.Dom.join a b) (Absint.Dom.join b a))

let prop_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:200 arb_vset (fun a ->
      Absint.Dom.equal (Absint.Dom.join a a) a)

let prop_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:200
    (QCheck.triple arb_vset arb_vset arb_vset) (fun (a, b, c) ->
      Absint.Dom.equal
        (Absint.Dom.join a (Absint.Dom.join b c))
        (Absint.Dom.join (Absint.Dom.join a b) c))

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:200
    (QCheck.pair arb_vset arb_vset) (fun (a, b) ->
      let j = Absint.Dom.join a b in
      Absint.Dom.subset a j && Absint.Dom.subset b j)

(* Widening termination: any chain a0, widen a0 b1, widen a1 b2, ...
   stabilises — each step either keeps the accumulator or grows it, and
   it can grow at most [max_card] times before collapsing to Top. *)
let prop_widening_terminates =
  QCheck.Test.make ~name:"widening stabilises on any chain" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) arb_vset) (fun chain ->
      let steps = ref 0 in
      let acc =
        List.fold_left
          (fun acc b ->
            let acc' = Absint.Dom.widen acc b in
            if not (Absint.Dom.equal acc acc') then incr steps;
            acc')
          (Absint.Dom.of_list []) chain
      in
      (* every element is below the stabilised accumulator, and the
         accumulator grew a bounded number of times *)
      List.for_all (fun b -> Absint.Dom.subset b acc) chain
      && !steps <= 9)

let prop_lift2_sound =
  QCheck.Test.make ~name:"lift2 over-approximates pointwise application"
    ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_bound 5)
          (QCheck.int_bound 0xFFFF))
       (QCheck.list_of_size (QCheck.Gen.int_bound 5)
          (QCheck.int_bound 0xFFFF)))
    (fun (xs, ys) ->
      let a = Absint.Dom.of_list xs and b = Absint.Dom.of_list ys in
      let r = Absint.Dom.lift2 (fun x y -> (x + y) land 0xFFFFFFFF) a b in
      List.for_all
        (fun x ->
          List.for_all
            (fun y -> Absint.Dom.mem ((x + y) land 0xFFFFFFFF) r)
            ys)
        xs)

(* --- effects: total over the decode table -------------------------------- *)

let test_effects_total () =
  for w = 0 to 0xFFFF do
    let e = Absint.Effects.of_instr Thumb.Decode.table.(w) in
    (* register masks stay in the 16-bit register space *)
    Alcotest.(check bool)
      (Printf.sprintf "word %04x: masks well-formed" w)
      true
      (e.Absint.Effects.reads land lnot 0xFFFF = 0
      && e.writes land lnot 0xFFFF = 0
      && e.flag_reads land lnot 0xF = 0
      && e.flag_writes land lnot 0xF = 0)
  done

let test_effects_spot_checks () =
  let e word = Absint.Effects.of_instr Thumb.Decode.table.(word) in
  (* movs r0, #1: no reads, writes r0, NZ *)
  let m = e 0x2001 in
  Alcotest.(check int) "movs reads nothing" 0 m.Absint.Effects.reads;
  Alcotest.(check int) "movs writes r0" 1 m.writes;
  Alcotest.(check int) "movs writes NZ" 0xC m.flag_writes;
  (* beq: reads Z, Cond *)
  let b = e 0xD000 in
  Alcotest.(check int) "beq reads Z" 4 b.Absint.Effects.flag_reads;
  Alcotest.(check bool) "beq is conditional" true
    (match b.ctrl with Absint.Effects.Cond Thumb.Instr.EQ -> true | _ -> false);
  (* bkpt: diverts, reads nothing *)
  let k = e 0xBE00 in
  Alcotest.(check bool) "bkpt diverts" true
    (k.Absint.Effects.ctrl = Absint.Effects.Diverts);
  (* adcs r1, r2 reads C *)
  let a = e 0x4151 in
  Alcotest.(check int) "adc reads C" 2 a.Absint.Effects.flag_reads;
  (* str r0, [r1, r2]: store reading all three *)
  let s = e 0x5088 in
  Alcotest.(check bool) "str is a store" true
    (s.Absint.Effects.mem = Absint.Effects.Store);
  Alcotest.(check int) "str reads r0,r1,r2" 0b111 s.reads

(* --- the static pre-pruner vs the dynamic engine -------------------------- *)

let static_equals_oracle ?pool spec config label =
  let config =
    { config with
      Exhaust.Campaign.prune = true;
      static_prune = true;
      keep_points = true }
  in
  let static = Exhaust.Campaign.run ?pool spec config in
  let oracle =
    Exhaust.Campaign.run spec
      { config with Exhaust.Campaign.prune = false; static_prune = false }
  in
  Alcotest.(check bool)
    (label ^ ": totals bit-identical to the unpruned oracle")
    true
    (static.Exhaust.Campaign.totals = oracle.Exhaust.Campaign.totals);
  Alcotest.(check bool)
    (label ^ ": rows bit-identical")
    true
    (static.Exhaust.Campaign.rows = oracle.Exhaust.Campaign.rows);
  Alcotest.(check bool)
    (label ^ ": per-point verdicts bit-identical")
    true
    (static.Exhaust.Campaign.verdicts = oracle.Exhaust.Campaign.verdicts);
  Alcotest.(check int)
    (label ^ ": counters partition the points")
    static.Exhaust.Campaign.points
    (static.faulted + static.pruned + static.executed + static.static_pruned);
  static

let guard_loop_spec defenses =
  let compiled = Resistor.Driver.compile defenses Resistor.Firmware.guard_loop in
  Exhaust.Campaign.spec_of_image ~name:"guard_loop"
    compiled.Resistor.Driver.image

let guard_loop_config () =
  { (Exhaust.Campaign.default_config ()) with
    Exhaust.Campaign.max_trace = 256;
    settle_steps = Some 64 }

let test_guard_loop_static_floor () =
  let spec = guard_loop_spec Resistor.Config.none in
  let r = static_equals_oracle spec (guard_loop_config ()) "guard_loop" in
  Alcotest.(check bool)
    (Printf.sprintf "static_pruned %d > 0" r.Exhaust.Campaign.static_pruned)
    true
    (r.Exhaust.Campaign.static_pruned > 0)

let test_guard_loop_static_defended () =
  let spec =
    guard_loop_spec
      (Resistor.Config.only ~branches:true ~loops:true ~integrity:true
         ~sensitive:[ "a" ] ())
  in
  let r = static_equals_oracle spec (guard_loop_config ()) "guard_loop/defended" in
  Alcotest.(check bool)
    (Printf.sprintf "static_pruned %d > 0" r.Exhaust.Campaign.static_pruned)
    true
    (r.Exhaust.Campaign.static_pruned > 0)

let test_guard_loop_static_jobs_parity () =
  let spec = guard_loop_spec Resistor.Config.none in
  let config =
    { (guard_loop_config ()) with
      Exhaust.Campaign.static_prune = true;
      keep_points = true }
  in
  let seq = Exhaust.Campaign.run spec config in
  let par =
    Runtime.Pool.with_pool ~jobs:4 (fun pool ->
        Exhaust.Campaign.run ~pool spec config)
  in
  Alcotest.(check bool) "rows bit-identical at jobs 4" true
    (seq.Exhaust.Campaign.rows = par.Exhaust.Campaign.rows);
  Alcotest.(check bool) "verdicts bit-identical at jobs 4" true
    (seq.Exhaust.Campaign.verdicts = par.Exhaust.Campaign.verdicts);
  Alcotest.(check int) "static_pruned identical at jobs 4"
    seq.Exhaust.Campaign.static_pruned par.Exhaust.Campaign.static_pruned

(* A terminating baseline exercises the rejoin path of the prover (the
   end verdict is the baseline end's own classification). *)
let test_terminating_static_sound () =
  let case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let spec = Exhaust.Campaign.spec_of_case case in
  let config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.max_trace = 64 }
  in
  ignore (static_equals_oracle spec config "beq case")

(* Soundness on generated firmware: whatever `lib/gen` produces, no
   point the interpreter proves may disagree with the oracle that
   executes every continuation. *)
let prop_static_sound_on_generated =
  QCheck.Test.make ~name:"static pre-pruner sound on generated firmware"
    ~count:8 Gen.Ast_gen.arb_any (fun case ->
      match
        Resistor.Driver.compile Resistor.Config.none
          (Gen.Ast_gen.source_of_case case)
      with
      | exception _ -> QCheck.assume_fail ()
      | compiled ->
        let spec =
          Exhaust.Campaign.spec_of_image compiled.Resistor.Driver.image
        in
        let config =
          { (Exhaust.Campaign.default_config ()) with
            Exhaust.Campaign.weights = [ 1 ];
            max_trace = 96;
            settle_steps = Some 24;
            prune = true;
            static_prune = true;
            keep_points = true }
        in
        let static = Exhaust.Campaign.run spec config in
        let oracle =
          Exhaust.Campaign.run spec
            { config with Exhaust.Campaign.prune = false; static_prune = false }
        in
        static.Exhaust.Campaign.totals = oracle.Exhaust.Campaign.totals
        && static.rows = oracle.rows
        && static.verdicts = oracle.verdicts
        && static.faulted = oracle.faulted)

(* The negative control: with the transfer function sabotaged (taint
   never propagates), the same differential must trip — otherwise the
   soundness gate is vacuous. *)
let test_sabotage_trips () =
  let spec = guard_loop_spec Resistor.Config.none in
  let config =
    { (guard_loop_config ()) with
      Exhaust.Campaign.static_prune = true;
      keep_points = true }
  in
  let honest = Exhaust.Campaign.run spec config in
  Absint.Prune.unsound := true;
  let sabotaged =
    Fun.protect
      ~finally:(fun () -> Absint.Prune.unsound := false)
      (fun () -> Exhaust.Campaign.run spec config)
  in
  Alcotest.(check bool) "sabotage proves more points" true
    (sabotaged.Exhaust.Campaign.static_pruned
    > honest.Exhaust.Campaign.static_pruned);
  Alcotest.(check bool) "sabotaged verdicts diverge from the honest run" false
    (sabotaged.Exhaust.Campaign.verdicts = honest.Exhaust.Campaign.verdicts)

(* --- prover ---------------------------------------------------------------- *)

let prove defenses =
  let compiled = Resistor.Driver.compile defenses Resistor.Firmware.guard_loop in
  Absint.Prove.run ~config:compiled.Resistor.Driver.config
    ~reports:compiled.Resistor.Driver.reports
    ~modul:compiled.Resistor.Driver.modul compiled.Resistor.Driver.image

let test_prove_undefended_escapes () =
  let r = prove Resistor.Config.none in
  Alcotest.(check bool) "at least one escaping guard" true (r.escapes >= 1);
  let errs = Absint.Prove.errors r in
  Alcotest.(check bool) "escapes surface as errors" true (errs <> []);
  List.iter
    (fun (d : Analysis.Lint.diag) ->
      Alcotest.(check string) "error rule" "fault-flow-escape" d.rule;
      Alcotest.(check string) "user code, not runtime support" "main" d.func)
    errs

let test_prove_defended_clean () =
  let r = prove (Resistor.Config.all_but_delay ~sensitive:[ "a" ] ()) in
  Alcotest.(check (list string)) "no errors on the defended build" []
    (List.map
       (fun (d : Analysis.Lint.diag) -> d.message)
       (Absint.Prove.errors r));
  Alcotest.(check bool) "at least one guard semantically proven" true
    (r.proven >= 1);
  Alcotest.(check int) "every reached guard verdicted" r.guards_reached
    (r.proven + r.escapes + r.unproven)

(* refine_lint re-grades structural findings by the semantic verdict;
   the two interesting rewrites are pinned on synthetic diags so the
   test does not depend on finding a firmware that exhibits them. *)
let test_refine_lint_regrades () =
  let diag rule severity addr message =
    { Analysis.Lint.rule; severity; func = "main"; addr; message }
  in
  let structural report diags = { report with Analysis.Lint.diags } in
  let base = prove Resistor.Config.none in
  let with_diags ds = { base with Absint.Prove.diags = ds } in
  let compiled =
    Resistor.Driver.compile Resistor.Config.none Resistor.Firmware.guard_loop
  in
  let lint =
    Analysis.Lint.run (Analysis.Lint.of_compiled compiled)
  in
  (* downgrade: structural Error + semantic proof -> Info *)
  let refined =
    Absint.Prove.refine_lint
      (structural lint
         [ diag "guard-flippable" Analysis.Lint.Error 0x100 "no duplicate" ])
      (with_diags
         [ diag "fault-flow-proven" Analysis.Lint.Info 0x100 "proven" ])
  in
  let guard =
    List.find
      (fun (d : Analysis.Lint.diag) -> d.rule = "guard-flippable")
      refined
  in
  Alcotest.(check bool) "proven guard downgraded to Info" true
    (guard.severity = Analysis.Lint.Info);
  (* upgrade: structural Info + deterministic semantic escape -> Error *)
  let refined =
    Absint.Prove.refine_lint
      (structural lint
         [ diag "guard-flippable" Analysis.Lint.Info 0x100 "re-checked" ])
      (with_diags
         [ diag "fault-flow-escape" Analysis.Lint.Error 0x100 "escape" ])
  in
  let guard =
    List.find
      (fun (d : Analysis.Lint.diag) -> d.rule = "guard-flippable")
      refined
  in
  Alcotest.(check bool) "escaping guard upgraded to Error" true
    (guard.severity = Analysis.Lint.Error);
  (* a speculative (Warning) escape must not upgrade, and other rules
     pass through untouched *)
  let refined =
    Absint.Prove.refine_lint
      (structural lint
         [ diag "guard-flippable" Analysis.Lint.Info 0x100 "re-checked";
           diag "cfg-unreachable" Analysis.Lint.Info 0x200 "dead code" ])
      (with_diags
         [ diag "fault-flow-escape" Analysis.Lint.Warning 0x100 "maybe" ])
  in
  List.iter
    (fun (d : Analysis.Lint.diag) ->
      if d.rule = "guard-flippable" || d.rule = "cfg-unreachable" then
        Alcotest.(check bool) (d.rule ^ " untouched") true
          (d.severity = Analysis.Lint.Info))
    refined

let () =
  Alcotest.run "absint"
    [ ( "lattice",
        [ Qseed.to_alcotest prop_join_commutative;
          Qseed.to_alcotest prop_join_idempotent;
          Qseed.to_alcotest prop_join_associative;
          Qseed.to_alcotest prop_join_upper_bound;
          Qseed.to_alcotest prop_widening_terminates;
          Qseed.to_alcotest prop_lift2_sound ] );
      ( "effects",
        [ Alcotest.test_case "total over all 65,536 decodings" `Quick
            test_effects_total;
          Alcotest.test_case "spot checks against concrete semantics" `Quick
            test_effects_spot_checks ] );
      ( "soundness",
        [ Alcotest.test_case "guard-loop: static == oracle, nonzero floor"
            `Quick test_guard_loop_static_floor;
          Alcotest.test_case "defended guard-loop: static == oracle" `Quick
            test_guard_loop_static_defended;
          Alcotest.test_case "static counters stable at jobs 4" `Quick
            test_guard_loop_static_jobs_parity;
          Alcotest.test_case "terminating baseline rejoin" `Quick
            test_terminating_static_sound;
          Qseed.to_alcotest prop_static_sound_on_generated;
          Alcotest.test_case "sabotaged transfer function is caught" `Quick
            test_sabotage_trips ] );
      ( "prove",
        [ Alcotest.test_case "undefended guard loop: escape witnesses" `Quick
            test_prove_undefended_escapes;
          Alcotest.test_case "defended guard loop: semantically proven" `Quick
            test_prove_defended_clean;
          Alcotest.test_case "refine_lint re-grades by semantic verdict"
            `Quick test_refine_lint_regrades ] ) ]
