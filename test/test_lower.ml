(* End-to-end tests for the compiler pipeline: Mini-C -> IR -> Thumb ->
   simulated machine. The key property is differential: the IR
   interpreter and the generated machine code must agree on return
   values and final global state for every program. *)

let compile src = Lower.Ast_lower.modul_of_source src

(* substring containment *)
let astring_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Run the linked image on the plain machine until BKPT; return r0 and a
   reader for globals. *)
let run_machine (m : Ir.modul) =
  let image = Lower.Layout.link m in
  let t = Lower.Layout.load image in
  match Machine.Exec.run ~max_steps:2_000_000 t.mem t.cpu with
  | Machine.Exec.Breakpoint 0 ->
    let r0 = Machine.Cpu.get t.cpu Thumb.Reg.r0 in
    let global name =
      match
        Machine.Memory.read_u32 t.mem (List.assoc name image.global_addrs)
      with
      | Ok v -> v
      | Error _ -> Alcotest.fail ("cannot read global " ^ name)
    in
    (r0, global)
  | stop -> Alcotest.fail (Fmt.str "machine stopped: %a" Machine.Exec.pp_stop stop)

let differential ?(args = []) name src =
  let m = compile src in
  let interp =
    match Ir.Interp.run m ~entry:"main" ~args with
    | Ok out -> out
    | Error e -> Alcotest.fail ("interp: " ^ e)
  in
  let r0, global = run_machine m in
  (match interp.ret with
  | Some expected ->
    Alcotest.(check int) (name ^ ": return value") expected r0
  | None -> ());
  List.iter
    (fun (gname, v) ->
      Alcotest.(check int) (name ^ ": global " ^ gname) v (global gname))
    interp.globals

(* --- concrete programs ------------------------------------------------- *)

let simple_arith () =
  differential "arith"
    "int main(void) { return (3 + 4) * 5 - 6 / 2; }"

let loops_and_branches () =
  differential "loops"
    {|
      int sum = 0;
      int main(void) {
        for (int i = 1; i <= 10; i = i + 1) {
          if (i % 2 == 0) { sum = sum + i; }
        }
        return sum;
      }
    |}

let while_guard () =
  differential "while"
    {|
      int main(void) {
        int n = 100;
        while (n) { n = n - 7; if (n < 0) { break; } }
        return n;
      }
    |}

let calls_and_recursion () =
  differential "fib"
    {|
      int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      int main(void) { return fib(12); }
    |}

let division_runtime () =
  differential "division"
    {|
      int main(void) {
        int a = 0 - 100;
        int q = a / 7;
        int r = a % 7;
        unsigned u = 3000000000;
        unsigned v = u / 3;
        return q * 1000 + r * 10 + (v == 1000000000);
      }
    |}

let shifts_signedness () =
  differential "shifts"
    {|
      int main(void) {
        int s = 0 - 8;
        unsigned u = 4294967288;
        return (s >> 1) + (u >> 1 > 1000);
      }
    |}

let short_circuit () =
  differential "short-circuit"
    {|
      int calls = 0;
      int bump(void) { calls = calls + 1; return 1; }
      int main(void) {
        int a = 0;
        int r1 = a && bump();
        int r2 = a || bump();
        int r3 = bump() || bump();
        return r1 * 100 + r2 * 10 + r3;
      }
    |}

let enums_and_globals () =
  differential "enums"
    {|
      enum status { OK, FAIL, RETRY };
      volatile unsigned flag = 0;
      int main(void) {
        flag = RETRY;
        if (flag == RETRY) { return OK; }
        return FAIL;
      }
    |}

let do_while_continue () =
  differential "do-while"
    {|
      int main(void) {
        int i = 0;
        int acc = 0;
        do {
          i = i + 1;
          if (i == 3) { continue; }
          acc = acc + i;
        } while (i < 6);
        return acc;
      }
    |}

let paper_guard_compiles () =
  (* while(a != 0xD3B9AEC6): the Table I(c) guard must produce a
     literal-pool load, and exiting requires the exact constant. *)
  differential "hamming guard"
    {|
      volatile unsigned a = 0xE7D25763;
      int main(void) {
        int spins = 0;
        while (a != 0xD3B9AEC6) {
          spins = spins + 1;
          if (spins == 3) { a = 0xD3B9AEC6; }
        }
        return spins;
      }
    |}

let nested_control () =
  differential "nested"
    {|
      int classify(int v) {
        if (v < 0) { return 0 - 1; }
        else { if (v == 0) { return 0; } else { return 1; } }
      }
      int main(void) {
        return classify(0 - 5) + classify(0) * 10 + classify(7) * 100;
      }
    |}

let switch_fallthrough () =
  differential "switch"
    {|
      int classify(int v) {
        int r = 0;
        switch (v) {
          case 0:
          case 1:
            r = 100;
            break;
          case 2:
            r = r + 1;   /* falls through */
          case 3:
            r = r + 10;
            break;
          default:
            r = 999;
        }
        return r;
      }
      int main(void) {
        return classify(0) + classify(1) * 2 + classify(2) * 4 + classify(3) * 8
               + classify(7) * 16;
      }
    |}

let switch_on_enum () =
  differential "switch-enum"
    {|
      enum cmd { STOP, GO, TURN };
      int dispatch(int c) {
        switch (c) {
          case STOP: return 1;
          case GO: return 2;
          case TURN: return 3;
        }
        return 0;
      }
      int main(void) {
        return dispatch(STOP) + dispatch(GO) * 10 + dispatch(TURN) * 100
               + dispatch(42) * 1000;
      }
    |}

(* --- randomised differential testing ------------------------------------- *)

(* Generate a small straight-line + loop program over two globals. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_expr_str depth =
    fix
      (fun self (depth, _) ->
        if depth = 0 then
          oneof
            [ map string_of_int (int_bound 100);
              oneofl [ "x"; "y" ] ]
        else
          let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "<<"; ">>"; "=="; "!=" ] in
          let* l = self (depth - 1, ()) in
          let* r = self (depth - 1, ()) in
          (* keep shifts small and well-defined *)
          if op = "<<" || op = ">>" then return (Printf.sprintf "((%s) %s 3)" l op)
          else return (Printf.sprintf "((%s) %s (%s))" l op r))
      (depth, ())
  in
  let* e1 = gen_expr_str 3 in
  let* e2 = gen_expr_str 3 in
  let* e3 = gen_expr_str 2 in
  let* bound = int_range 1 8 in
  return
    (Printf.sprintf
       {|
         unsigned x = 7;
         unsigned y = 9;
         int main(void) {
           for (int i = 0; i < %d; i = i + 1) {
             x = %s;
             y = %s;
           }
           return %s;
         }
       |}
       bound e1 e2 e3)

let prop_differential =
  let arb = QCheck.make ~print:(fun s -> s) gen_program in
  QCheck.Test.make ~name:"interp = machine on random programs" ~count:60 arb
    (fun src ->
      let m = compile src in
      match Ir.Interp.run m ~entry:"main" ~args:[] with
      | Error _ -> false
      | Ok interp ->
        let r0, global = run_machine m in
        interp.ret = Some r0
        && List.for_all (fun (g, v) -> global g = v) interp.globals)

(* --- codegen mechanics ------------------------------------------------------ *)

let literal_pool_used () =
  let m = compile "unsigned main(void) { return 0xD3B9AEC6; }" in
  let image = Lower.Layout.link m in
  (* 0xD3B9AEC6 must appear as a 32-bit literal somewhere in text *)
  let found = ref false in
  Array.iteri
    (fun i w ->
      if
        i + 1 < Array.length image.words
        && w = 0xD3B9AEC6 land 0xFFFF
        && image.words.(i + 1) = 0xD3B9AEC6 lsr 16
      then found := true)
    image.words;
  Alcotest.(check bool) "pool constant present" true !found

let symbols_and_sections () =
  let m =
    compile
      "int used = 5;\nint zeroed;\nint helper(void) { return used; }\nint main(void) { return helper() + zeroed; }"
  in
  let image = Lower.Layout.link m in
  Alcotest.(check bool) "main symbol" true
    (List.mem_assoc "main" image.symbols);
  Alcotest.(check bool) "runtime symbol" true
    (List.mem_assoc "__idiv" image.symbols);
  Alcotest.(check int) "data holds one word" 4 image.data.size;
  Alcotest.(check int) "bss holds one word" 4 image.bss.size;
  let report = Lower.Layout.size_report image in
  Alcotest.(check int) "report total"
    (image.text.size + 8)
    (List.assoc "total" report)

let gpio_symbol_resolves () =
  let m =
    Lower.Ast_lower.modul_of_source
      ~externs:[ ("__trigger_high", 0); ("__halt", 0) ]
      "int main(void) { __trigger_high(); __halt(); return 0; }"
  in
  let image = Lower.Layout.link m in
  let found = ref false in
  Array.iteri
    (fun i w ->
      if
        i + 1 < Array.length image.words
        && w = Lower.Codegen.gpio_trigger_address land 0xFFFF
        && image.words.(i + 1) = Lower.Codegen.gpio_trigger_address lsr 16
      then found := true)
    image.words;
  Alcotest.(check bool) "gpio address in pool" true !found

let volatile_loads_preserved () =
  (* Two reads of a volatile global must produce two loads in IR. *)
  let m =
    compile
      "volatile unsigned a = 1;\nint main(void) { return a + a; }"
  in
  let f = Option.get (Ir.find_func m "main") in
  let volatile_loads = ref 0 in
  Ir.iter_instrs f (fun _ i ->
      match i with
      | Ir.Load { volatile = true; _ } -> incr volatile_loads
      | _ -> ());
  Alcotest.(check int) "two volatile loads" 2 !volatile_loads

let objdump_listing () =
  let m = compile "int main(void) { return 42; }" in
  let image = Lower.Layout.link m in
  let listing = Lower.Objdump.to_string image in
  Alcotest.(check bool) "has main symbol" true
    (astring_contains listing "<main>:");
  Alcotest.(check bool) "has crt0 symbol" true
    (astring_contains listing "<__start>:");
  Alcotest.(check bool) "decodes movs" true
    (astring_contains listing "movs r0, #42")

let literal_pool_dedup () =
  (* the same constant referenced twice must share one pool slot *)
  let m =
    compile
      "unsigned main(void) { unsigned a = 0xD3B9AEC6; unsigned b = 0xD3B9AEC6; return a ^ b; }"
  in
  let f = Option.get (Ir.find_func m "main") in
  let c = Lower.Codegen.func m f in
  let occurrences = ref 0 in
  Array.iteri
    (fun i w ->
      if
        i + 1 < Array.length c.words
        && w = 0xD3B9AEC6 land 0xFFFF
        && c.words.(i + 1) = 0xD3B9AEC6 lsr 16
      then incr occurrences)
    c.words;
  Alcotest.(check int) "one pool entry" 1 !occurrences;
  (* and the program still computes a ^ b = 0 *)
  let r0, _ = run_machine m in
  Alcotest.(check int) "xor cancels" 0 r0

let big_frame_spills () =
  (* >127 slots forces split SP adjustments; semantics must hold *)
  let decls =
    String.concat "\n"
      (List.init 55 (fun i -> Printf.sprintf "int v%d = %d;" i i))
  in
  let sum =
    String.concat " + " (List.init 55 (fun i -> Printf.sprintf "v%d" i))
  in
  let src = Printf.sprintf "int main(void) { %s return %s; }" decls sum in
  differential "big frame" src

let frame_overflow_rejected () =
  (* past 255 slots the backend must fail loudly, not corrupt silently *)
  let decls =
    String.concat "\n"
      (List.init 300 (fun i -> Printf.sprintf "int w%d = %d;" i i))
  in
  let src = Printf.sprintf "int main(void) { %s return w0; }" decls in
  let m = compile src in
  (match Lower.Layout.link m with
  | exception Lower.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected a frame-size error")

let too_many_args_rejected () =
  let src =
    "int f(int a, int b, int c, int d, int e) { return a + b + c + d + e; }\nint main(void) { return f(1, 2, 3, 4, 5); }"
  in
  let m = compile src in
  match Lower.Layout.link m with
  | exception Lower.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected an arity limit error"

let lowering_rejects () =
  let expect_error src =
    match Lower.Ast_lower.modul_of_source src with
    | exception Lower.Ast_lower.Error _ -> ()
    | _ -> Alcotest.fail ("expected lowering error for " ^ src)
  in
  expect_error "int main(void) { return missing; }";
  expect_error "int main(void) { return f(); }"

let () =
  let props = List.map Qseed.to_alcotest [ prop_differential ] in
  Alcotest.run "lower"
    [ ("differential",
       [ Alcotest.test_case "arith" `Quick simple_arith;
         Alcotest.test_case "loops" `Quick loops_and_branches;
         Alcotest.test_case "while guard" `Quick while_guard;
         Alcotest.test_case "recursion" `Quick calls_and_recursion;
         Alcotest.test_case "division" `Quick division_runtime;
         Alcotest.test_case "shift signedness" `Quick shifts_signedness;
         Alcotest.test_case "short circuit" `Quick short_circuit;
         Alcotest.test_case "enums and globals" `Quick enums_and_globals;
         Alcotest.test_case "do-while/continue" `Quick do_while_continue;
         Alcotest.test_case "paper guard" `Quick paper_guard_compiles;
         Alcotest.test_case "nested control" `Quick nested_control;
         Alcotest.test_case "switch fallthrough" `Quick switch_fallthrough;
         Alcotest.test_case "switch on enum" `Quick switch_on_enum ]);
      ("random", props);
      ("codegen",
       [ Alcotest.test_case "literal pool" `Quick literal_pool_used;
         Alcotest.test_case "symbols and sections" `Quick symbols_and_sections;
         Alcotest.test_case "gpio trigger" `Quick gpio_symbol_resolves;
         Alcotest.test_case "volatile loads" `Quick volatile_loads_preserved;
         Alcotest.test_case "literal pool dedup" `Quick literal_pool_dedup;
         Alcotest.test_case "big frames" `Quick big_frame_spills;
         Alcotest.test_case "frame overflow rejected" `Quick frame_overflow_rejected;
         Alcotest.test_case "arg limit rejected" `Quick too_many_args_rejected;
         Alcotest.test_case "objdump listing" `Quick objdump_listing;
         Alcotest.test_case "rejects bad programs" `Quick lowering_rejects ]) ]
