(* The trace-wide exhaustive injector, tested three ways:

   - unit tests for the canonical state keys (exact serializations:
     stable across write/undo cycles, sensitive to every register, flag
     and dirty byte) and for the shared key map (bucket collisions must
     never merge distinct keys);
   - a QCheck property pinning the pruned campaign against the unpruned
     reference oracle on generated firmware — identical verdict tables,
     identical per-point verdicts;
   - a differential test reproducing the Glitch_emu.Campaign fig2 sweep
     tables bit-for-bit from a one-cycle persistent-mode exhaustive run,
     sequentially and with a 4-domain pool. *)

let popcount x =
  let rec go n x = if x = 0 then n else go (n + 1) (x land (x - 1)) in
  go 0 x

(* --- State: canonical whole-machine keys --------------------------------- *)

let sram = 0x20000000

let seal_rig () =
  let mem = Machine.Memory.create () in
  Machine.Memory.map mem ~addr:sram ~size:0x100;
  let cpu = Machine.Cpu.create ~sp:(sram + 0xF0) ~pc:sram () in
  Exhaust.State.seal ~mem ~cpu

let test_state_key_stable_across_undo () =
  let rig = seal_rig () in
  let mem = Exhaust.State.mem rig in
  let k0 = Exhaust.State.key rig in
  for round = 1 to 3 do
    let m = Exhaust.State.mark rig in
    Machine.Memory.write_u8_exn mem (sram + 0x10) (0x40 + round);
    Machine.Memory.write_u32_exn mem (sram + 0x20) 0xDEADBEEF;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: dirty state has a different key" round)
      false
      (String.equal k0 (Exhaust.State.key rig));
    Exhaust.State.undo_to rig m;
    Alcotest.(check string)
      (Printf.sprintf "round %d: key restored after undo" round)
      k0 (Exhaust.State.key rig)
  done

let test_state_key_ignores_same_value_write () =
  let rig = seal_rig () in
  let mem = Exhaust.State.mem rig in
  let k0 = Exhaust.State.key rig in
  (* writing a byte's pristine value back dirties the journal but not
     the state: the key only encodes bytes that differ from pristine *)
  Machine.Memory.write_u8_exn mem (sram + 8) 0;
  Alcotest.(check string) "pristine-value write leaves the key" k0
    (Exhaust.State.key rig);
  Machine.Memory.write_u8_exn mem (sram + 8) 7;
  let k1 = Exhaust.State.key rig in
  Alcotest.(check bool) "real write changes the key" false
    (String.equal k0 k1);
  Machine.Memory.write_u8_exn mem (sram + 8) 0;
  Alcotest.(check string) "writing the pristine value back reverts the key"
    k0 (Exhaust.State.key rig)

let test_state_key_register_sensitivity () =
  let rig = seal_rig () in
  let cpu = Exhaust.State.cpu rig in
  let k0 = Exhaust.State.key rig in
  for r = 0 to 15 do
    let saved = cpu.Machine.Cpu.regs.(r) in
    cpu.Machine.Cpu.regs.(r) <- saved lxor 0x1000;
    Alcotest.(check bool)
      (Printf.sprintf "r%d is part of the key" r)
      false
      (String.equal k0 (Exhaust.State.key rig));
    cpu.Machine.Cpu.regs.(r) <- saved;
    Alcotest.(check string)
      (Printf.sprintf "r%d restored restores the key" r)
      k0 (Exhaust.State.key rig)
  done

let test_state_key_flag_sensitivity () =
  let rig = seal_rig () in
  let cpu = Exhaust.State.cpu rig in
  let k0 = Exhaust.State.key rig in
  let flags =
    [ ("n", fun v -> cpu.Machine.Cpu.n <- v);
      ("z", fun v -> cpu.Machine.Cpu.z <- v);
      ("c", fun v -> cpu.Machine.Cpu.c <- v);
      ("v", fun v -> cpu.Machine.Cpu.v <- v) ]
  in
  List.iter
    (fun (name, set) ->
      set true;
      Alcotest.(check bool)
        (Printf.sprintf "flag %s is part of the key" name)
        false
        (String.equal k0 (Exhaust.State.key rig));
      set false;
      Alcotest.(check string)
        (Printf.sprintf "flag %s cleared restores the key" name)
        k0 (Exhaust.State.key rig))
    flags

let test_state_key_distinct_dirty_bytes () =
  let rig = seal_rig () in
  let mem = Exhaust.State.mem rig in
  let m = Exhaust.State.mark rig in
  Machine.Memory.write_u8_exn mem (sram + 0x30) 1;
  let ka = Exhaust.State.key rig in
  Exhaust.State.undo_to rig m;
  Machine.Memory.write_u8_exn mem (sram + 0x31) 1;
  let kb = Exhaust.State.key rig in
  Alcotest.(check bool) "same byte at a different address, different key"
    false (String.equal ka kb)

let test_state_save_restore_regs () =
  let rig = seal_rig () in
  let cpu = Exhaust.State.cpu rig in
  let scratch = Array.make 16 0 in
  cpu.Machine.Cpu.regs.(3) <- 0x33;
  cpu.Machine.Cpu.n <- true;
  let k0 = Exhaust.State.key rig in
  let flags = Exhaust.State.save_regs rig scratch in
  cpu.Machine.Cpu.regs.(3) <- 0x44;
  cpu.Machine.Cpu.regs.(11) <- 0x55;
  cpu.Machine.Cpu.n <- false;
  cpu.Machine.Cpu.c <- true;
  Exhaust.State.restore_regs rig scratch flags;
  Alcotest.(check string) "save/restore round-trips the key" k0
    (Exhaust.State.key rig)

(* --- Keymap: collisions must never merge --------------------------------- *)

let test_keymap_collisions_kept_apart () =
  (* one bucket: every key collides with every other by construction *)
  let m = Runtime.Keymap.create ~slots:1 () in
  Runtime.Keymap.add m "state-a" 3;
  Runtime.Keymap.add m "state-b" 5;
  Alcotest.(check (option int)) "first colliding key" (Some 3)
    (Runtime.Keymap.find m "state-a");
  Alcotest.(check (option int)) "second colliding key" (Some 5)
    (Runtime.Keymap.find m "state-b");
  Alcotest.(check (option int)) "absent key is a miss" None
    (Runtime.Keymap.find m "state-c");
  Alcotest.(check int) "both distinct keys counted" 2 (Runtime.Keymap.count m);
  (* re-publishing is a no-op, not a second entry *)
  Runtime.Keymap.add m "state-a" 3;
  Alcotest.(check int) "duplicate insert not counted" 2
    (Runtime.Keymap.count m);
  Alcotest.check_raises "negative verdicts rejected"
    (Invalid_argument "Keymap.add: negative value") (fun () ->
      Runtime.Keymap.add m "state-d" (-1))

(* --- Memory write journal ------------------------------------------------- *)

let test_memory_journal_rewind () =
  let mem = Machine.Memory.create () in
  Machine.Memory.map mem ~addr:sram ~size:0x40;
  Machine.Memory.write_u8_exn mem sram 0xAB;
  let j = Machine.Memory.journal_create () in
  Machine.Memory.attach_journal mem j;
  let mark = Machine.Memory.journal_length j in
  Machine.Memory.write_u8_exn mem sram 0x11;
  Machine.Memory.write_u32_exn mem (sram + 4) 0x01020304;
  Machine.Memory.write_u8_exn mem sram 0x22;
  Alcotest.(check int) "each byte store journaled" 6
    (Machine.Memory.journal_length j);
  let addr, old = Machine.Memory.journal_entry j mark in
  Alcotest.(check int) "entry records the address" sram addr;
  Alcotest.(check int) "entry records the pre-image" 0xAB old;
  Machine.Memory.undo_to mem j mark;
  Alcotest.(check int) "twice-written byte restored" 0xAB
    (Machine.Memory.read_u8_exn mem sram);
  Alcotest.(check int) "word store restored" 0
    (Machine.Memory.read_u32_exn mem (sram + 4));
  Alcotest.(check int) "journal truncated to the mark" mark
    (Machine.Memory.journal_length j);
  Machine.Memory.detach_journal mem;
  Machine.Memory.write_u8_exn mem sram 0x33;
  Alcotest.(check int) "detached writes are not journaled" mark
    (Machine.Memory.journal_length j)

(* --- property: pruned campaign == unpruned oracle ------------------------- *)

(* On generated firmware, the campaign with state-hash pruning must
   produce the same per-function tables, totals, counters and per-point
   verdicts as the reference oracle that executes every continuation.
   Weight-1 flips over a short window keep the oracle affordable. *)
let prop_pruned_equals_oracle =
  QCheck.Test.make ~name:"pruned campaign == unpruned oracle" ~count:8
    Gen.Ast_gen.arb_any (fun case ->
      match
        Resistor.Driver.compile Resistor.Config.none
          (Gen.Ast_gen.source_of_case case)
      with
      | exception _ -> QCheck.assume_fail ()
      | compiled ->
        let spec =
          Exhaust.Campaign.spec_of_image compiled.Resistor.Driver.image
        in
        let config =
          { (Exhaust.Campaign.default_config ()) with
            Exhaust.Campaign.weights = [ 1 ];
            max_trace = 96;
            keep_points = true }
        in
        let pruned = Exhaust.Campaign.run spec config in
        let oracle =
          Exhaust.Campaign.run spec
            { config with Exhaust.Campaign.prune = false }
        in
        pruned.Exhaust.Campaign.points = oracle.Exhaust.Campaign.points
        && pruned.faulted = oracle.faulted
        && pruned.pruned + pruned.executed = oracle.pruned + oracle.executed
        && pruned.totals = oracle.totals
        && pruned.rows = oracle.rows
        && pruned.verdicts = oracle.verdicts)

(* --- differential: exhaust reproduces the fig2 sweep tables --------------- *)

(* Glitch_emu.Campaign's classification, restated as an exhaust
   classifier (the campaign's own [classify] is internal). It reads
   only the final CPU state and the stop — pure, as sharing requires. *)
let fig2_classify cpu (stop : Machine.Exec.stop) =
  Glitch_emu.Campaign.category_index
    (match stop with
    | Machine.Exec.Breakpoint _ ->
      if
        Machine.Cpu.get cpu Glitch_emu.Testcase.skip_reg
        = Glitch_emu.Testcase.skip_marker
      then Glitch_emu.Campaign.Success
      else Glitch_emu.Campaign.No_effect
    | Machine.Exec.Bad_read _ | Machine.Exec.Bad_write _ ->
      Glitch_emu.Campaign.Bad_read
    | Machine.Exec.Bad_fetch _ -> Glitch_emu.Campaign.Bad_fetch
    | Machine.Exec.Invalid_instruction _ ->
      Glitch_emu.Campaign.Invalid_instruction
    | Machine.Exec.Swi_trap _ | Machine.Exec.Step_limit ->
      Glitch_emu.Campaign.Failed)

let ncat = List.length Glitch_emu.Campaign.categories

(* Run the exhaustive injector restricted to the one cycle that fetches
   the case's target word, in persistent mode with weights 0..16 (all
   65,536 masks of the model, bijectively), and rebuild the fig2 tally
   from the per-point verdicts. *)
let exhaust_fig2_tables ?pool flip ~zero_is_invalid case =
  let spec = Exhaust.Campaign.spec_of_case case in
  let config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.models = [ flip ];
      weights = List.init 17 Fun.id;
      mode = Exhaust.Campaign.Persistent;
      zero_is_invalid;
      max_trace = 200;
      classify = Some fig2_classify;
      keep_points = true }
  in
  let steps, _stop = Exhaust.Campaign.baseline spec config in
  let target_pc =
    spec.Exhaust.Campaign.flash_base
    + (2 * case.Glitch_emu.Testcase.target_index)
  in
  let k =
    match
      Array.to_seqi steps |> Seq.find (fun (_, (pc, _)) -> pc = target_pc)
    with
    | Some (k, _) -> k
    | None ->
      Alcotest.failf "%s: baseline never fetches the target word"
        case.Glitch_emu.Testcase.name
  in
  let config =
    { config with
      Exhaust.Campaign.cycles = Some (k, k + 1);
      settle_steps = Some (200 - k - 1) }
  in
  let r = Exhaust.Campaign.run ?pool spec config in
  let verdicts =
    match r.Exhaust.Campaign.verdicts with
    | Some b -> b
    | None -> Alcotest.fail "keep_points produced no verdict array"
  in
  let by_weight = Array.init 17 (fun _ -> Array.make ncat 0) in
  let totals = Array.make ncat 0 in
  Array.iteri
    (fun p (_model, bits, _mask) ->
      let w = popcount bits in
      let c = Bytes.get_uint8 verdicts p in
      by_weight.(w).(c) <- by_weight.(w).(c) + 1;
      if w > 0 then totals.(c) <- totals.(c) + 1)
    (Exhaust.Campaign.enum_points config);
  (by_weight, totals)

let check_fig2_parity ?pool flip ~zero_is_invalid case =
  let ref_result =
    Glitch_emu.Campaign.run_case
      { (Glitch_emu.Campaign.default_config flip) with zero_is_invalid }
      case
  in
  let by_weight, totals =
    exhaust_fig2_tables ?pool flip ~zero_is_invalid case
  in
  let label what =
    Printf.sprintf "%s/%s: %s bit-identical" case.Glitch_emu.Testcase.name
      (Glitch_emu.Fault_model.name flip) what
  in
  Alcotest.(check bool)
    (label "by_weight tables")
    true
    (ref_result.Glitch_emu.Campaign.by_weight = by_weight);
  Alcotest.(check bool) (label "totals") true
    (ref_result.Glitch_emu.Campaign.totals = totals)

let test_fig2_differential () =
  let beq = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let bne = Glitch_emu.Testcase.conditional_branch Thumb.Instr.NE in
  check_fig2_parity Glitch_emu.Fault_model.And ~zero_is_invalid:false beq;
  check_fig2_parity Glitch_emu.Fault_model.Or ~zero_is_invalid:false bne;
  check_fig2_parity Glitch_emu.Fault_model.Xor ~zero_is_invalid:false beq;
  check_fig2_parity Glitch_emu.Fault_model.And ~zero_is_invalid:true beq

let test_fig2_differential_jobs4 () =
  let beq = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      check_fig2_parity ~pool Glitch_emu.Fault_model.And ~zero_is_invalid:false
        beq)

(* --- whole-image acceptance: prune floor and jobs parity ------------------ *)

(* The PR's acceptance criterion, pinned in-tree: on the guard-loop
   firmware the injector must share at least half of all continuations,
   and the per-function verdict tables at --jobs 4 must equal the
   sequential ones (only the pruned/executed split may move). *)
let test_guard_loop_prune_floor_and_parity () =
  let compiled =
    Resistor.Driver.compile Resistor.Config.none Resistor.Firmware.guard_loop
  in
  let spec =
    Exhaust.Campaign.spec_of_image ~name:"guard_loop"
      compiled.Resistor.Driver.image
  in
  let config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.max_trace = 256 }
  in
  let seq = Exhaust.Campaign.run spec config in
  Alcotest.(check bool) "baseline still running (non-terminating guard)" true
    (seq.Exhaust.Campaign.baseline_stop = None);
  Alcotest.(check bool)
    (Printf.sprintf "prune rate %.3f >= 0.5" (Exhaust.Campaign.prune_rate seq))
    true
    (Exhaust.Campaign.prune_rate seq >= 0.5);
  Alcotest.(check int) "counters partition the points"
    seq.Exhaust.Campaign.points
    (seq.faulted + seq.pruned + seq.executed);
  let par =
    Runtime.Pool.with_pool ~jobs:4 (fun pool ->
        Exhaust.Campaign.run ~pool spec config)
  in
  Alcotest.(check bool) "rows bit-identical at jobs 4" true
    (seq.Exhaust.Campaign.rows = par.Exhaust.Campaign.rows);
  Alcotest.(check bool) "totals bit-identical at jobs 4" true
    (seq.totals = par.totals);
  Alcotest.(check int) "faulted identical at jobs 4" seq.faulted par.faulted;
  Alcotest.(check int) "states identical at jobs 4" seq.states par.states

(* --- agreement: reachability-weighted static column ----------------------- *)

(* The unrestricted static score charges a function for code the
   baseline never fetches; restricting it to traced instructions must
   not lose rank agreement, and on the fully defended guard loop —
   where the unweighted concordance sits at exactly 50% — it must
   strictly improve it. *)
let test_agreement_reachability_weighting () =
  let compiled =
    Resistor.Driver.compile
      (Resistor.Config.all ~sensitive:[ "a" ] ())
      Resistor.Firmware.guard_loop
  in
  let image = compiled.Resistor.Driver.image in
  let spec = Exhaust.Campaign.spec_of_image ~name:"guard_loop" image in
  let config = Exhaust.Campaign.default_config () in
  let result = Exhaust.Campaign.run spec config in
  let baseline, _stop = Exhaust.Campaign.baseline spec config in
  let surface = Analysis.Surface.analyze (Analysis.Cfg.of_image image) in
  let unweighted = Exhaust.Agreement.of_result surface result in
  let weighted = Exhaust.Agreement.of_result ~baseline surface result in
  Alcotest.(check bool) "report is marked weighted" true weighted.weighted;
  Alcotest.(check bool) "enough functions for ranking to mean something" true
    (List.length weighted.rows >= 4);
  Alcotest.(check (float 1e-9)) "unweighted concordance preserved in both"
    unweighted.Exhaust.Agreement.concordance
    weighted.concordance_unweighted;
  List.iter
    (fun (row : Exhaust.Agreement.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: reached insns bounded by points" row.fname)
        true
        (row.reached_insns > 0 || row.points = 0))
    weighted.rows;
  Alcotest.(check bool)
    (Printf.sprintf "weighted concordance %.2f strictly beats 0.5"
       weighted.concordance)
    true
    (weighted.concordance > 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "weighted %.2f >= unweighted %.2f" weighted.concordance
       weighted.concordance_unweighted)
    true
    (weighted.concordance >= weighted.concordance_unweighted)

(* --- persistence round-trip ----------------------------------------------- *)

let test_result_cache_roundtrip () =
  let case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let spec = Exhaust.Campaign.spec_of_case case in
  let config =
    { (Exhaust.Campaign.default_config ()) with
      Exhaust.Campaign.max_trace = 64 }
  in
  let r = Exhaust.Campaign.run spec config in
  (match Exhaust.Campaign.decode_result spec config
           (Exhaust.Campaign.encode_result r)
   with
  | None -> Alcotest.fail "decode rejected its own encoding"
  | Some d ->
    Alcotest.(check bool) "rows survive the round trip" true
      (d.Exhaust.Campaign.rows = r.Exhaust.Campaign.rows);
    Alcotest.(check bool) "totals survive the round trip" true
      (d.totals = r.totals);
    Alcotest.(check int) "decoded results report executed = 0" 0 d.executed;
    Alcotest.(check int) "decoded pruned absorbs the split"
      (r.pruned + r.executed) d.pruned);
  (* corrupted payloads are a miss, not a crash *)
  Alcotest.(check bool) "truncated payload rejected" true
    (Exhaust.Campaign.decode_result spec config "exhaust1 garbage" = None);
  let dir = Filename.temp_file "exhaust_cache" "" in
  Sys.remove dir;
  let cache = Cache.open_dir dir in
  let cold, hit_cold = Exhaust.Campaign.run_cached ~cache spec config in
  let warm, hit_warm = Exhaust.Campaign.run_cached ~cache spec config in
  Alcotest.(check bool) "first run is a miss" false hit_cold;
  Alcotest.(check bool) "second run is a hit" true hit_warm;
  Alcotest.(check bool) "warm rows identical" true
    (cold.Exhaust.Campaign.rows = warm.Exhaust.Campaign.rows);
  Alcotest.(check int) "warm run executed nothing" 0 warm.executed

let () =
  Alcotest.run "exhaust"
    [ ( "state",
        [ Alcotest.test_case "key stable across write/undo cycles" `Quick
            test_state_key_stable_across_undo;
          Alcotest.test_case "pristine-value writes do not change the key"
            `Quick test_state_key_ignores_same_value_write;
          Alcotest.test_case "key sensitive to every register" `Quick
            test_state_key_register_sensitivity;
          Alcotest.test_case "key sensitive to every flag" `Quick
            test_state_key_flag_sensitivity;
          Alcotest.test_case "key distinguishes dirty addresses" `Quick
            test_state_key_distinct_dirty_bytes;
          Alcotest.test_case "save/restore registers round-trips" `Quick
            test_state_save_restore_regs ] );
      ( "keymap",
        [ Alcotest.test_case "bucket collisions never merge keys" `Quick
            test_keymap_collisions_kept_apart ] );
      ( "journal",
        [ Alcotest.test_case "write journal rewinds memory" `Quick
            test_memory_journal_rewind ] );
      ( "pruning",
        [ Qseed.to_alcotest prop_pruned_equals_oracle;
          Alcotest.test_case "guard-loop prune floor + jobs-4 parity" `Quick
            test_guard_loop_prune_floor_and_parity ] );
      ( "agreement",
        [ Alcotest.test_case "reachability weighting beats unweighted rank"
            `Quick test_agreement_reachability_weighting ] );
      ( "differential",
        [ Alcotest.test_case "fig2 sweep tables reproduced bit-for-bit" `Quick
            test_fig2_differential;
          Alcotest.test_case "fig2 parity with a 4-domain pool" `Quick
            test_fig2_differential_jobs4 ] );
      ( "persistence",
        [ Alcotest.test_case "encode/decode and cache round-trip" `Quick
            test_result_cache_roundtrip ] ) ]
