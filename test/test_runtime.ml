(* Tests for the work-distribution runtime: contiguous chunk queues and
   the persistent domain pool that the parallel campaigns are built
   on. *)

(* --- chunk splitting ------------------------------------------------------ *)

let split_covers_range () =
  List.iter
    (fun (lo, hi, pieces) ->
      let name = Printf.sprintf "[%d,%d)/%d" lo hi pieces in
      let slices = Runtime.Chunk.split ~lo ~hi ~pieces in
      (* slices are non-empty, in order, and tile the range exactly *)
      let stop =
        List.fold_left
          (fun expect (a, b) ->
            Alcotest.(check int) (name ^ " contiguous") expect a;
            Alcotest.(check bool) (name ^ " non-empty") true (b > a);
            b)
          lo slices
      in
      Alcotest.(check int) (name ^ " reaches hi") hi stop;
      Alcotest.(check bool)
        (name ^ " at most pieces")
        true
        (List.length slices <= pieces);
      (* balanced: sizes differ by at most one *)
      let sizes = List.map (fun (a, b) -> b - a) slices in
      List.iter
        (fun s ->
          List.iter
            (fun s' ->
              Alcotest.(check bool) (name ^ " balanced") true (abs (s - s') <= 1))
            sizes)
        sizes)
    [ (0, 65536, 4); (0, 10, 3); (0, 10, 4); (5, 6, 4); (7, 100, 1);
      (3, 20, 17); (0, 5, 8) ]

let split_empty_range () =
  Alcotest.(check (list (pair int int)))
    "empty range" []
    (Runtime.Chunk.split ~lo:5 ~hi:5 ~pieces:4)

let prop_split_tiles_range =
  QCheck.Test.make ~name:"split tiles the range exactly" ~count:200
    QCheck.(triple (int_range 0 100) (int_range 0 1000) (int_range 1 64))
    (fun (lo, len, pieces) ->
      let hi = lo + len in
      let slices = Runtime.Chunk.split ~lo ~hi ~pieces in
      let contiguous =
        List.fold_left
          (fun expect (a, b) ->
            match expect with
            | Some e when a = e && b > a -> Some b
            | _ -> None)
          (Some lo) slices
      in
      contiguous = Some hi && List.length slices <= pieces)

(* --- chunk queue ---------------------------------------------------------- *)

let queue_drains_exactly_once () =
  let lo = 3 and hi = 100 in
  let q = Runtime.Chunk.queue ~size:7 ~lo ~hi ~jobs:4 () in
  let seen = Array.make hi 0 in
  let rec drain () =
    match Runtime.Chunk.take q with
    | None -> ()
    | Some (a, b) ->
      Alcotest.(check bool) "slice within range" true (lo <= a && a < b && b <= hi);
      for i = a to b - 1 do
        seen.(i) <- seen.(i) + 1
      done;
      drain ()
  in
  drain ();
  for i = lo to hi - 1 do
    Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 seen.(i)
  done;
  Alcotest.(check (option (pair int int)))
    "stays exhausted" None (Runtime.Chunk.take q)

let queue_rejects_bad_size () =
  Alcotest.check_raises "size 0"
    (Invalid_argument "Chunk.queue: non-positive slice size")
    (fun () -> ignore (Runtime.Chunk.queue ~size:0 ~lo:0 ~hi:10 ~jobs:2 ()))

let concurrent_drain_partitions_range () =
  (* Four domains race on one queue; together they must claim every
     index exactly once. *)
  let lo = 0 and hi = 10_000 in
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      let q = Runtime.Chunk.queue ~size:13 ~lo ~hi ~jobs:4 () in
      let parts =
        Runtime.Pool.map_workers pool (fun _wid ->
            let mine = ref [] in
            let rec drain () =
              match Runtime.Chunk.take q with
              | None -> ()
              | Some (a, b) ->
                for i = a to b - 1 do
                  mine := i :: !mine
                done;
                drain ()
            in
            drain ();
            !mine)
      in
      let all = List.concat parts |> List.sort compare in
      Alcotest.(check (list int)) "every index exactly once"
        (List.init (hi - lo) (fun i -> lo + i))
        all)

(* --- pool ----------------------------------------------------------------- *)

let jobs_are_clamped () =
  Runtime.Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "clamped to 1" 1 (Runtime.Pool.jobs pool));
  Runtime.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "kept at 3" 3 (Runtime.Pool.jobs pool))

let run_reaches_every_worker () =
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      let hit = Array.make 4 (Atomic.make 0) in
      Array.iteri (fun i _ -> hit.(i) <- Atomic.make 0) hit;
      Runtime.Pool.run pool (fun wid -> Atomic.incr hit.(wid));
      Array.iteri
        (fun wid a ->
          Alcotest.(check int) (Printf.sprintf "worker %d ran once" wid) 1
            (Atomic.get a))
        hit)

let map_workers_ordered () =
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "ids in order" [ 0; 1; 2; 3 ]
        (Runtime.Pool.map_workers pool (fun wid -> wid)))

let map_array_matches_sequential () =
  let input = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expect = Array.map f input in
  Runtime.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (array int)) "jobs=3" expect
        (Runtime.Pool.map_array pool f input));
  Runtime.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (array int)) "jobs=1" expect
        (Runtime.Pool.map_array pool f input))

let pool_survives_reuse () =
  Runtime.Pool.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let total = Atomic.make 0 in
        Runtime.Pool.run pool (fun wid -> ignore (Atomic.fetch_and_add total (wid + 1)));
        Alcotest.(check int) (Printf.sprintf "round %d" round) 3 (Atomic.get total)
      done)

let worker_exception_propagates () =
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "re-raised in caller" (Failure "boom") (fun () ->
          Runtime.Pool.run pool (fun wid ->
              if wid = 2 then failwith "boom"));
      (* the pool is still usable after a failed region *)
      let n = Atomic.make 0 in
      Runtime.Pool.run pool (fun _ -> Atomic.incr n);
      Alcotest.(check int) "pool survives the failure" 4 (Atomic.get n))

let nested_run_rejected () =
  Runtime.Pool.with_pool ~jobs:2 (fun pool ->
      let nested = ref None in
      Runtime.Pool.run pool (fun wid ->
          if wid = 0 then
            match Runtime.Pool.run pool (fun _ -> ()) with
            | () -> nested := Some false
            | exception Invalid_argument _ -> nested := Some true);
      Alcotest.(check (option bool)) "nested run raises" (Some true) !nested)

(* --- shared store --------------------------------------------------------- *)

let store_starts_empty () =
  let s = Runtime.Store.create ~slots:64 in
  Alcotest.(check int) "length" 64 (Runtime.Store.length s);
  for i = 0 to 63 do
    Alcotest.(check int) (Printf.sprintf "slot %d empty" i) (-1)
      (Runtime.Store.get s i)
  done;
  Alcotest.(check int) "occupancy" 0 (Runtime.Store.occupancy s)

let store_set_get_roundtrip () =
  let s = Runtime.Store.create ~slots:300 in
  (* the full representable value range, including the extremes *)
  for i = 0 to 254 do
    Runtime.Store.set s i i
  done;
  for i = 0 to 254 do
    Alcotest.(check int) (Printf.sprintf "slot %d" i) i (Runtime.Store.get s i)
  done;
  Alcotest.(check int) "untouched slot still empty" (-1)
    (Runtime.Store.get s 255);
  Alcotest.(check int) "occupancy counts filled slots" 255
    (Runtime.Store.occupancy s)

let store_rejects_bad_values () =
  let s = Runtime.Store.create ~slots:4 in
  Alcotest.check_raises "value 255 reserved"
    (Invalid_argument "Store.set: value out of range") (fun () ->
      Runtime.Store.set s 0 255);
  Alcotest.check_raises "negative value"
    (Invalid_argument "Store.set: value out of range") (fun () ->
      Runtime.Store.set s 0 (-1));
  Alcotest.check_raises "no slots"
    (Invalid_argument "Store.create: non-positive slot count") (fun () ->
      ignore (Runtime.Store.create ~slots:0))

let store_concurrent_publication () =
  (* Racing writers all publish the same (deterministic) value per
     slot — the campaign-sweep contract — so after the region every
     slot must hold exactly that value. *)
  let slots = 10_000 in
  let s = Runtime.Store.create ~slots in
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      Runtime.Pool.run pool (fun _wid ->
          for i = 0 to slots - 1 do
            match Runtime.Store.get s i with
            | -1 -> Runtime.Store.set s i (i land 0x7F)
            | v -> if v <> i land 0x7F then failwith "torn read"
          done));
  for i = 0 to slots - 1 do
    if Runtime.Store.get s i <> i land 0x7F then
      Alcotest.failf "slot %d holds %d" i (Runtime.Store.get s i)
  done;
  Alcotest.(check int) "all slots published" slots (Runtime.Store.occupancy s)

(* --- pool stats ----------------------------------------------------------- *)

let default_jobs_clamped_to_chunks () =
  Alcotest.(check int) "one chunk, one job" 1
    (Runtime.Pool.default_jobs ~chunks:1 ());
  Alcotest.(check int) "zero chunks still one job" 1
    (Runtime.Pool.default_jobs ~chunks:0 ());
  Alcotest.(check bool) "never above the chunk count" true
    (Runtime.Pool.default_jobs ~chunks:2 () <= 2);
  Alcotest.(check bool) "always at least one" true
    (Runtime.Pool.default_jobs () >= 1)

let cgroup_quota_parsers () =
  let check_max name expect line =
    Alcotest.(check (option int)) name expect (Runtime.Pool.parse_cpu_max line)
  in
  check_max "whole quota" (Some 2) "200000 100000";
  check_max "fractional quota rounds up" (Some 2) "150000 100000";
  check_max "sub-core quota keeps one" (Some 1) "50000 100000";
  check_max "unlimited" None "max 100000";
  check_max "trailing newline tolerated" (Some 4) "400000 100000\n";
  check_max "malformed" None "banana";
  check_max "missing period" None "200000";
  check_max "zero period" None "200000 0";
  check_max "negative quota" None "-1 100000";
  let check_cfs name expect quota period =
    Alcotest.(check (option int)) name expect
      (Runtime.Pool.parse_cpu_cfs ~quota ~period)
  in
  check_cfs "v1 whole quota" (Some 3) "300000" "100000";
  check_cfs "v1 ceil" (Some 2) "110000" "100000";
  check_cfs "v1 unlimited" None "-1" "100000";
  check_cfs "v1 malformed" None "lots" "100000";
  (* default_jobs must respect whatever the live cgroup says *)
  (match Runtime.Pool.cgroup_cpu_limit () with
  | Some limit ->
    Alcotest.(check bool) "default_jobs within cgroup quota" true
      (Runtime.Pool.default_jobs () <= max 1 limit)
  | None -> ());
  Alcotest.(check bool) "always at least one" true
    (Runtime.Pool.default_jobs () >= 1)

let pool_stats_account_regions () =
  Runtime.Pool.with_pool ~jobs:2 (fun pool ->
      let s0 = Runtime.Pool.stats pool in
      Alcotest.(check int) "starts at zero regions" 0 s0.Runtime.Pool.regions;
      for _ = 1 to 3 do
        Runtime.Pool.run pool (fun _ -> ignore (Sys.opaque_identity 0))
      done;
      let s = Runtime.Pool.stats pool in
      Alcotest.(check int) "three regions" 3 s.Runtime.Pool.regions;
      Alcotest.(check bool) "wall is non-negative" true (s.Runtime.Pool.wall_s >= 0.);
      Alcotest.(check bool) "busy is non-negative" true (s.Runtime.Pool.busy_s >= 0.);
      Runtime.Pool.reset_stats pool;
      let s = Runtime.Pool.stats pool in
      Alcotest.(check int) "reset clears regions" 0 s.Runtime.Pool.regions;
      Alcotest.(check (float 0.)) "reset clears wall" 0. s.Runtime.Pool.wall_s)

let pool_stats_derived_measures () =
  (* wait = jobs*wall - busy (clamped at 0); utilization = busy/(jobs*wall),
     and 1.0 on a pool that has run nothing. *)
  let s = { Runtime.Pool.regions = 1; wall_s = 2.0; busy_s = 3.0 } in
  Alcotest.(check (float 1e-9)) "wait" 1.0 (Runtime.Pool.stats_wait ~jobs:2 s);
  Alcotest.(check (float 1e-9)) "utilization" 0.75
    (Runtime.Pool.stats_utilization ~jobs:2 s);
  let over = { Runtime.Pool.regions = 1; wall_s = 1.0; busy_s = 3.0 } in
  Alcotest.(check (float 1e-9)) "wait clamped at zero" 0.
    (Runtime.Pool.stats_wait ~jobs:2 over);
  Alcotest.(check (float 1e-9)) "utilization clamped at one" 1.0
    (Runtime.Pool.stats_utilization ~jobs:2 over);
  let idle = { Runtime.Pool.regions = 0; wall_s = 0.; busy_s = 0. } in
  Alcotest.(check (float 1e-9)) "idle pool reads fully utilized" 1.0
    (Runtime.Pool.stats_utilization ~jobs:4 idle)

let pool_stats_busy_tracks_work () =
  Runtime.Pool.with_pool ~jobs:2 (fun pool ->
      Runtime.Pool.run pool (fun _ ->
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 0.01 do
            ignore (Sys.opaque_identity 0)
          done);
      let s = Runtime.Pool.stats pool in
      (* two workers each spun ~10ms *)
      Alcotest.(check bool) "busy covers both workers" true
        (s.Runtime.Pool.busy_s >= 0.015);
      Alcotest.(check bool) "busy bounded by jobs*wall" true
        (s.Runtime.Pool.busy_s <= (2. *. s.Runtime.Pool.wall_s) +. 1e-6))

let () =
  let props = List.map Qseed.to_alcotest [ prop_split_tiles_range ] in
  Alcotest.run "runtime"
    [ ("chunk",
       [ Alcotest.test_case "split covers ranges" `Quick split_covers_range;
         Alcotest.test_case "split of empty range" `Quick split_empty_range;
         Alcotest.test_case "queue drains exactly once" `Quick
           queue_drains_exactly_once;
         Alcotest.test_case "queue rejects bad size" `Quick
           queue_rejects_bad_size ]);
      ("chunk-properties", props);
      ("pool",
       [ Alcotest.test_case "jobs clamped" `Quick jobs_are_clamped;
         Alcotest.test_case "run reaches every worker" `Quick
           run_reaches_every_worker;
         Alcotest.test_case "map_workers ordered" `Quick map_workers_ordered;
         Alcotest.test_case "map_array matches Array.map" `Quick
           map_array_matches_sequential;
         Alcotest.test_case "pool reusable across regions" `Quick
           pool_survives_reuse;
         Alcotest.test_case "worker exception propagates" `Quick
           worker_exception_propagates;
         Alcotest.test_case "nested regions rejected" `Quick nested_run_rejected;
         Alcotest.test_case "concurrent drain partitions range" `Quick
           concurrent_drain_partitions_range ]);
      ("store",
       [ Alcotest.test_case "starts empty" `Quick store_starts_empty;
         Alcotest.test_case "set/get roundtrip" `Quick store_set_get_roundtrip;
         Alcotest.test_case "rejects bad values" `Quick store_rejects_bad_values;
         Alcotest.test_case "concurrent publication" `Quick
           store_concurrent_publication ]);
      ("stats",
       [ Alcotest.test_case "default_jobs clamped to chunks" `Quick
           default_jobs_clamped_to_chunks;
         Alcotest.test_case "cgroup quota parsers" `Quick cgroup_quota_parsers;
         Alcotest.test_case "regions accounted and reset" `Quick
           pool_stats_account_regions;
         Alcotest.test_case "wait and utilization math" `Quick
           pool_stats_derived_measures;
         Alcotest.test_case "busy tracks work" `Quick
           pool_stats_busy_tracks_work ]) ]
