(* Tests for GlitchResistor: each defense pass in isolation (semantics
   preservation + the protection actually materialising), the compile
   driver, and a reduced-sweep run of the Table VI evaluation. *)

open Resistor

let builtins =
  [ ("__trigger_high", fun _ -> 0);
    ("__trigger_low", fun _ -> 0);
    ("__halt", fun _ -> 0);
    ("__flash_commit", fun _ -> 0) ]

let interp ?(entry = "main") m =
  match Ir.Interp.run ~builtins ~fuel:2_000_000 m ~entry ~args:[] with
  | Ok out -> out
  | Error e -> Alcotest.fail ("interp: " ^ e)

let compile config src = fst (Driver.compile_modul config src)

(* A defended program must behave exactly like the undefended one in the
   absence of glitches. *)
let same_behaviour ?(globals = []) name config src =
  let plain = compile Config.none src in
  let defended = compile config src in
  let out_plain = interp plain in
  let out_defended = interp defended in
  Alcotest.(check (option int)) (name ^ ": return") out_plain.ret out_defended.ret;
  List.iter
    (fun g ->
      Alcotest.(check int)
        (name ^ ": global " ^ g)
        (List.assoc g out_plain.globals)
        (List.assoc g out_defended.globals))
    globals

let terminating_src =
  {|
    enum status { OK, NOPE, MAYBE };
    volatile unsigned flag = 0;
    unsigned acc = 0;
    int classify(int v) {
      if (v > 10) { return OK; }
      if (v > 5) { return MAYBE; }
      return NOPE;
    }
    int lucky(void) { return 7; }
    int main(void) {
      for (int i = 0; i < 20; i = i + 1) {
        if (classify(i) == OK) { acc = acc + 2; }
        if (classify(i) == MAYBE) { acc = acc + 1; }
      }
      flag = acc;
      int x = 0;
      while (x < 5) { x = x + 1; }
      if (lucky() == 7) { acc = acc + 100; }
      return acc;
    }
  |}

(* --- config ------------------------------------------------------------- *)

let config_names () =
  Alcotest.(check string) "none" "None" (Config.name Config.none);
  Alcotest.(check string) "all" "All" (Config.name (Config.all ()));
  Alcotest.(check string) "all but delay" "All\\Delay"
    (Config.name (Config.all_but_delay ()));
  Alcotest.(check string) "single" "Branches"
    (Config.name (Config.only ~branches:true ()));
  Alcotest.(check string) "sigcfi only" "Sigcfi"
    (Config.name (Config.only ~sigcfi:true ()));
  Alcotest.(check string) "both cfi" "Sigcfi+Domains"
    (Config.name (Config.only ~sigcfi:true ~domains:true ()));
  Alcotest.(check string) "stacked cfi" "All\\Delay+Sigcfi+Domains"
    (Config.name { (Config.all_but_delay ()) with sigcfi = true; domains = true })

(* --- enum rewriter --------------------------------------------------------- *)

let enum_rewriting () =
  let src = "enum a { X, Y, Z };\nenum b { P = 1, Q };\nint main(void) { return X; }" in
  let sema = Minic.Sema.check (Minic.Parser.program src) in
  let ast', report = Enum_rewriter.rewrite sema in
  Alcotest.(check (list string)) "skips initialized" [ "b" ] report.skipped;
  (match report.rewritten with
  | [ ("a", assignments) ] ->
    Alcotest.(check int) "three members" 3 (List.length assignments);
    Alcotest.(check bool) "hamming >= 8" true
      (Enum_rewriter.min_hamming_distance report >= 8)
  | _ -> Alcotest.fail "expected exactly enum a rewritten");
  (* the rewritten program must still check and keep b intact *)
  let sema' = Minic.Sema.check ast' in
  Alcotest.(check int) "P unchanged" 1 (List.assoc "P" sema'.enum_constants);
  Alcotest.(check bool) "X diversified" true
    (List.assoc "X" sema'.enum_constants <> 0)

let enum_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "enums" (Config.only ~enums:true ())
    terminating_src

(* --- returns ------------------------------------------------------------------ *)

let returns_instrumentation () =
  let m = compile (Config.only ~returns:true ()) terminating_src in
  (* lucky() returns only the constant 7 and is compared against 7 *)
  let lucky = Option.get (Ir.find_func m "lucky") in
  let ret_consts =
    List.filter_map
      (fun (b : Ir.block) ->
        match b.term with Ir.Ret (Some (Ir.Const c)) -> Some c | _ -> None)
      lucky.blocks
  in
  Alcotest.(check bool) "return diversified away from 7" true
    (ret_consts <> [] && not (List.mem 7 ret_consts));
  (* classify returns enum constants used in == compares: also eligible *)
  let classify = Option.get (Ir.find_func m "classify") in
  let classify_consts =
    List.filter_map
      (fun (b : Ir.block) ->
        match b.term with Ir.Ret (Some (Ir.Const c)) -> Some c | _ -> None)
      classify.blocks
  in
  Alcotest.(check bool) "classify instrumented" true
    (not (List.exists (fun c -> c < 3) classify_consts))

let returns_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "returns" (Config.only ~returns:true ())
    terminating_src

let returns_skips_unsafe () =
  (* result stored in a global: not a direct comparison, must skip *)
  let src =
    "unsigned sink = 0;\nint f(void) { return 7; }\nint main(void) { sink = f(); return 0; }"
  in
  let m = compile (Config.only ~returns:true ()) src in
  let f = Option.get (Ir.find_func m "f") in
  let consts =
    List.filter_map
      (fun (b : Ir.block) ->
        match b.term with Ir.Ret (Some (Ir.Const c)) -> Some c | _ -> None)
      f.blocks
  in
  (* the lowering's dead-code block contributes a ret 0; what matters is
     that 7 survives undiversified *)
  Alcotest.(check bool) "unchanged" true (List.mem 7 consts);
  let out = interp m in
  Alcotest.(check int) "sink still 7" 7 (List.assoc "sink" out.globals)

(* --- integrity ------------------------------------------------------------------ *)

let integrity_src =
  {|
    volatile unsigned secret = 5;
    unsigned out = 0;
    int main(void) {
      secret = 42;
      out = secret + 1;
      return out;
    }
  |}

let integrity_mechanism () =
  let config = Config.only ~integrity:true ~sensitive:[ "secret" ] () in
  let m = compile config integrity_src in
  (* shadow exists and is kept complementary *)
  Alcotest.(check bool) "shadow global" true
    (Ir.find_global m (Integrity.shadow_name "secret") <> None);
  let out = interp m in
  Alcotest.(check (option int)) "return" (Some 43) out.ret;
  Alcotest.(check int) "no detections" 0
    (List.assoc Detect.counter_global out.globals);
  Alcotest.(check int) "shadow complementary" (lnot 42 land 0xFFFFFFFF)
    (List.assoc (Integrity.shadow_name "secret") out.globals)

let integrity_detects_corruption () =
  let config =
    { (Config.only ~integrity:true ~sensitive:[ "secret" ] ()) with
      reaction = Config.Record }
  in
  let src =
    "volatile unsigned secret = 5;\nint read_secret(void) { return secret; }\nint main(void) { return read_secret(); }"
  in
  let m = compile config src in
  (* sanity: the instrumented read passes when the shadow is intact *)
  let out = interp m in
  Alcotest.(check int) "clean run, no detections" 0
    (List.assoc Detect.counter_global out.globals);
  (* a "glitch": corrupt the stored value without touching its shadow
     (hand-written IR added after the pass ran), then perform an
     instrumented read *)
  let b = Ir.Builder.create ~fname:"attack_entry" ~params:[] ~returns_value:true in
  Ir.Builder.store ~volatile:true b (Ir.Global "secret") (Ir.Const 1234);
  let r = Option.get (Ir.Builder.call b ~dst:true "read_secret" []) in
  Ir.Builder.ret b (Some r);
  m.funcs <- m.funcs @ [ Ir.Builder.func b ];
  let out = interp ~entry:"attack_entry" m in
  Alcotest.(check bool) "detection fired" true
    (List.assoc Detect.counter_global out.globals > 0);
  (* the corrupted value was still returned: reaction policy decides
     what happens next, not the check itself *)
  Alcotest.(check (option int)) "corrupt value observed" (Some 1234) out.ret

let integrity_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "integrity"
    (Config.only ~integrity:true ~sensitive:[ "flag" ] ())
    terminating_src

(* --- branches and loops ------------------------------------------------------------ *)

let branches_instrumentation_counts () =
  let m = compile Config.none terminating_src in
  let conds = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          match b.term with Ir.Cond_br _ -> incr conds | _ -> ())
        f.blocks)
    m.funcs;
  let m' = compile (Config.only ~branches:true ()) terminating_src in
  let checks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          if String.length b.label > 8 && String.sub b.label 0 9 = "gr.branch" then
            incr checks)
        f.blocks)
    m'.funcs;
  Alcotest.(check bool)
    (Printf.sprintf "every branch checked (%d conds, %d blocks)" !conds !checks)
    true
    (!checks >= !conds)

let branches_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "branches" (Config.only ~branches:true ())
    terminating_src

let loops_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "loops" (Config.only ~loops:true ())
    terminating_src

let loops_find_headers () =
  let m = compile Config.none terminating_src in
  let main = Option.get (Ir.find_func m "main") in
  Alcotest.(check bool) "main has loop headers" true
    (List.length (Loops.guard_edges main) >= 2)

let branch_check_complements () =
  (* The re-check must use complemented operands: look for XOR with -1
     in the check blocks. *)
  let m = compile (Config.only ~branches:true ()) terminating_src in
  let found = ref false in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          if String.length b.label > 8 && String.sub b.label 0 9 = "gr.branch" then
            List.iter
              (fun i ->
                match i with
                | Ir.Binop { op = Ir.Xor; rhs = Ir.Const 0xFFFFFFFF; _ } ->
                  found := true
                | _ -> ())
              b.instrs)
        f.blocks)
    m.funcs;
  Alcotest.(check bool) "complemented re-check" true !found

(* --- delay ------------------------------------------------------------------------- *)

let delay_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "delay" (Config.only ~delay:true ())
    terminating_src

let delay_mechanics () =
  let m = compile (Config.only ~delay:true ()) terminating_src in
  Alcotest.(check bool) "seed global" true
    (Ir.find_global m Delay.seed_global <> None);
  Alcotest.(check bool) "delay fn" true (Ir.find_func m Delay.delay_fn <> None);
  Alcotest.(check bool) "init fn" true (Ir.find_func m Delay.init_fn <> None);
  (* the seed must change across the run (LCG advanced) *)
  let out = interp m in
  Alcotest.(check bool) "seed advanced" true
    (List.assoc Delay.seed_global out.globals <> 0x20210524)

let delay_covers_switch_blocks () =
  (* the paper: every block ending in a BranchInst or SwitchInst *)
  let src =
    "int f(int v) { switch (v) { case 1: return 1; default: return 2; } return 0; }\nint main(void) { return f(1); }"
  in
  let m = compile (Config.only ~delay:true ()) src in
  let f = Option.get (Ir.find_func m "f") in
  let delayed_switch = ref false in
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.Switch _ ->
        if
          List.exists
            (function
              | Ir.Call { callee; _ } -> callee = Delay.delay_fn
              | _ -> false)
            b.instrs
        then delayed_switch := true
      | _ -> ())
    f.blocks;
  Alcotest.(check bool) "switch block delayed" true !delayed_switch;
  (* and the defended switch still behaves *)
  same_behaviour "switch+delay" (Config.only ~delay:true ()) src

let delay_opt_in_scope () =
  let config =
    { (Config.only ~delay:true ()) with
      delay_scope = Config.Delay_opt_in [ "classify" ] }
  in
  let m = compile config terminating_src in
  let calls_delay (f : Ir.func) =
    let found = ref false in
    Ir.iter_instrs f (fun _ i ->
        match i with
        | Ir.Call { callee; _ } when callee = Delay.delay_fn -> found := true
        | _ -> ());
    !found
  in
  Alcotest.(check bool) "classify delayed" true
    (calls_delay (Option.get (Ir.find_func m "classify")));
  Alcotest.(check bool) "main not delayed" false
    (calls_delay (Option.get (Ir.find_func m "main")))

(* --- cfcss baseline --------------------------------------------------------------- *)

let cfcss_semantics_preserved () =
  (* signature checking must be invisible to a clean run *)
  let plain = compile Config.none terminating_src in
  let signed = compile Config.none terminating_src in
  let (_ : Cfcss.report) = Cfcss.run Config.Record signed in
  let out_plain = interp plain in
  let out_signed = interp signed in
  Alcotest.(check (option int)) "return" out_plain.ret out_signed.ret;
  Alcotest.(check int) "no detections" 0
    (List.assoc Detect.counter_global out_signed.globals)

let cfcss_mechanics () =
  let m = compile Config.none terminating_src in
  let report = Cfcss.run Config.Record m in
  Alcotest.(check bool) "blocks signed" true (report.blocks_signed > 5);
  Alcotest.(check bool) "checks inserted" true (report.checks_inserted > 3);
  Alcotest.(check bool) "signature global" true
    (Ir.find_global m Cfcss.signature_global <> None)

let cfcss_detects_illegal_edge () =
  (* Jump into the middle of a signed function from outside: the entry
     check of the target block must fire. Simulate by calling a
     hand-written entry that leaves a bogus signature in G and then
     branches... the closest IR-level equivalent is calling a signed
     function with G set to garbage mid-block; instead corrupt G
     directly between two blocks via an unsigned helper. *)
  let m = compile Config.none terminating_src in
  let (_ : Cfcss.report) = Cfcss.run Config.Record m in
  (* helper that scribbles on G, standing in for a PC glitch landing in
     an unexpected block *)
  let b = Ir.Builder.create ~fname:"attack_entry" ~params:[] ~returns_value:true in
  Ir.Builder.store ~volatile:true b (Ir.Global Cfcss.signature_global)
    (Ir.Const 0xBAD);
  let r = Option.get (Ir.Builder.call b ~dst:true "classify" [ Ir.Const 20 ]) in
  Ir.Builder.ret b (Some r);
  m.funcs <- m.funcs @ [ Ir.Builder.func b ];
  (* classify's entry block signs G itself, so the corruption must be
     detected at the first *successor* block check only if the entry's
     signature write is skipped; calling normally re-signs. Therefore
     corrupt between blocks: interp the module entry that calls classify
     normally and confirm no detection (legal path)... *)
  let out = interp ~entry:"attack_entry" m in
  ignore out.ret;
  (* The call itself is legal, so detections here are zero -- the
     illegal-edge case needs sub-block granularity that only shows up on
     the board under real glitches (exercised by the ablation bench).
     What we can check statically: every non-entry block with multiple
     predecessors got a check chain. *)
  let f = Option.get (Ir.find_func m "main") in
  let has_chain =
    List.exists
      (fun (blk : Ir.block) ->
        String.length blk.label >= 9 && String.sub blk.label 0 9 = "gr.cfcss.")
      f.blocks
  in
  Alcotest.(check bool) "check chains present" true has_chain

(* --- sigcfi (FIPAC-style running-signature CFI) ------------------------------------ *)

let sigcfi_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "sigcfi" (Config.only ~sigcfi:true ())
    terminating_src

let sigcfi_mechanics () =
  let m, reports =
    Driver.compile_modul (Config.only ~sigcfi:true ()) terminating_src
  in
  let r = Option.get reports.sigcfi_report in
  Alcotest.(check bool) "blocks signed" true (r.blocks_signed > 5);
  Alcotest.(check bool) "edges split" true (r.updates_inserted > 5);
  Alcotest.(check bool) "sink checks" true (r.checks_inserted >= 4);
  Alcotest.(check bool) "state global" true
    (Ir.find_global m Sigcfi.state_global <> None);
  (* clean run stays silent *)
  let out = interp m in
  Alcotest.(check int) "no detections" 0
    (List.assoc Detect.counter_global out.globals);
  (* the branchless step must agree with the field it models: it is
     GF(2^8) multiplication by the generator, the same function the
     compile-time patch constants are derived with *)
  for x = 0 to 255 do
    Alcotest.(check int)
      (Printf.sprintf "step %d = gf256 mul by alpha" x)
      (Reedsolomon.Gf256.mul x 2) (Sigcfi.step x)
  done

let sigcfi_detects_illegal_edge () =
  (* Instrument by hand (like the cfcss test) and then simulate a PC
     glitch: rewrite classify's terminators to bypass the edge-split
     state updates. The running accumulator keeps the *source* block's
     signature, so the sink check at the return must fire. *)
  let m = compile Config.none terminating_src in
  let (_ : Sigcfi.report) = Sigcfi.run Config.Record m in
  let classify = Option.get (Ir.find_func m "classify") in
  let is_glue l = String.length l >= 12 && String.sub l 0 12 = "gr.sigcfi.up" in
  let glue_target l =
    let b = List.find (fun (b : Ir.block) -> b.Ir.label = l) classify.blocks in
    match b.term with Ir.Br t -> t | _ -> Alcotest.fail "glue without Br"
  in
  let bypass l = if is_glue l then glue_target l else l in
  List.iter
    (fun (b : Ir.block) ->
      if not (is_glue b.Ir.label) then
        b.term <-
          (match b.term with
          | Ir.Br l -> Ir.Br (bypass l)
          | Ir.Cond_br { cond; if_true; if_false } ->
            Ir.Cond_br
              { cond; if_true = bypass if_true; if_false = bypass if_false }
          | Ir.Switch { value; cases; default } ->
            Ir.Switch
              { value;
                cases = List.map (fun (v, l) -> (v, bypass l)) cases;
                default = bypass default }
          | t -> t))
    classify.blocks;
  let b = Ir.Builder.create ~fname:"attack_entry" ~params:[] ~returns_value:true in
  let r = Option.get (Ir.Builder.call b ~dst:true "classify" [ Ir.Const 20 ]) in
  Ir.Builder.ret b (Some r);
  m.funcs <- m.funcs @ [ Ir.Builder.func b ];
  let out = interp ~entry:"attack_entry" m in
  Alcotest.(check bool) "detection fired" true
    (List.assoc Detect.counter_global out.globals > 0)

(* --- domains (SCRAMBLE-CFI-style clusters) ----------------------------------------- *)

let domains_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "domains" (Config.only ~domains:true ())
    terminating_src

let domains_mechanics () =
  let m, reports =
    Driver.compile_modul (Config.only ~domains:true ()) terminating_src
  in
  let r = Option.get reports.domains_report in
  Alcotest.(check int) "clusters" 2 r.clusters;
  Alcotest.(check int) "main anchors cluster 0" 0 (List.assoc "main" r.domains);
  Alcotest.(check bool) "entry+return checks" true (r.checks_inserted >= 6);
  Alcotest.(check bool) "domain register" true
    (Ir.find_global m Domains.domain_global <> None);
  (* cluster keys are distinct and nonzero, so no bridge is an identity *)
  let keys = List.init r.clusters (Domains.cluster_key ~key:r.key) in
  Alcotest.(check bool) "keys nonzero" true (List.for_all (fun k -> k <> 0) keys);
  Alcotest.(check int) "keys distinct" r.clusters
    (List.length (List.sort_uniq compare keys));
  let out = interp m in
  Alcotest.(check int) "no detections" 0
    (List.assoc Detect.counter_global out.globals)

let domains_detects_escape () =
  (* A glitch that lands in another cluster without crossing a bridge
     leaves the old key in the domain register: scribble on it and make
     an un-bridged call, the callee's entry check must fire. *)
  let config = { (Config.only ~domains:true ()) with reaction = Config.Record } in
  let m = compile config terminating_src in
  let b = Ir.Builder.create ~fname:"attack_entry" ~params:[] ~returns_value:true in
  Ir.Builder.store ~volatile:true b (Ir.Global Domains.domain_global)
    (Ir.Const 0);
  let r = Option.get (Ir.Builder.call b ~dst:true "classify" [ Ir.Const 20 ]) in
  Ir.Builder.ret b (Some r);
  m.funcs <- m.funcs @ [ Ir.Builder.func b ];
  let out = interp ~entry:"attack_entry" m in
  Alcotest.(check bool) "detection fired" true
    (List.assoc Detect.counter_global out.globals > 0)

let cfi_stacked_semantics_preserved () =
  same_behaviour ~globals:[ "flag" ] "stacked cfi"
    { (Config.all ~sensitive:[ "flag"; "acc" ] ()) with
      sigcfi = true; domains = true }
    terminating_src

(* --- driver + firmware ---------------------------------------------------------------- *)

let all_firmware_compiles_under_all_configs () =
  List.iter
    (fun (label, config) ->
      List.iter
        (fun (name, src) ->
          match Driver.compile config src with
          | compiled ->
            Alcotest.(check bool)
              (Printf.sprintf "%s under %s links" name label)
              true
              (Array.length compiled.image.words > 0)
          | exception e ->
            Alcotest.fail
              (Printf.sprintf "%s under %s: %s" name label (Printexc.to_string e)))
        [ ("boot_tick", Firmware.boot_tick);
          ("guard_loop", Firmware.guard_loop);
          ("if_success", Firmware.if_success) ])
    Overhead.configurations

let all_defended_behaviour_matches () =
  same_behaviour ~globals:[ "flag" ] "all defenses"
    (Config.all ~sensitive:[ "flag"; "acc" ] ())
    terminating_src

let boot_fires_trigger_under_every_config () =
  List.iter
    (fun (r : Overhead.row) ->
      Alcotest.(check bool)
        (r.label ^ " boots")
        true (r.boot_cycles > 0);
      Alcotest.(check bool)
        (r.label ^ " grows text")
        true
        (r.label = "None" || r.text_bytes >= 584))
    (Overhead.all_rows ())

let overhead_ordering () =
  let rows = Overhead.all_rows () in
  let find label = List.find (fun (r : Overhead.row) -> r.label = label) rows in
  let none = find "None" and delay = find "Delay" and all = find "All" in
  let all_nd = find "All\\Delay" in
  Alcotest.(check bool) "delay dominates boot time" true
    (delay.boot_cycles > 20 * none.boot_cycles);
  Alcotest.(check bool) "delay constant ~ flash commit" true
    (delay.boot_cycles - none.boot_cycles > Overhead.flash_commit_cycles / 2);
  let paper_labels = List.map fst Overhead.paper_configurations in
  Alcotest.(check bool) "all is the largest paper image" true
    (List.for_all
       (fun (r : Overhead.row) ->
         (not (List.mem r.label paper_labels)) || r.total_bytes <= all.total_bytes)
       rows);
  let stacked = find "All\\Delay+Sigcfi+Domains" in
  Alcotest.(check bool) "stacked cfi larger than all\\delay" true
    (stacked.total_bytes > all_nd.total_bytes);
  Alcotest.(check bool) "all\\delay cheaper than all" true
    (all_nd.boot_cycles < all.boot_cycles)

(* --- evaluation (reduced sweep) --------------------------------------------------------- *)

let defended_beats_undefended () =
  let run config =
    Evaluate.run ~sweep_step:7 config Evaluate.Worst_case Evaluate.Single
  in
  let undefended = run Config.none in
  let defended = run (Config.all_but_delay ~sensitive:[ "a" ] ()) in
  Alcotest.(check bool)
    (Printf.sprintf "undefended glitchable (%d successes)" undefended.successes)
    true (undefended.successes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "defended safer (%d <= %d)" defended.successes
       undefended.successes)
    true
    (defended.successes <= undefended.successes)

let long_attacks_detected () =
  let o =
    Evaluate.run ~sweep_step:7
      (Config.all_but_delay ~sensitive:[ "a" ] ())
      Evaluate.Worst_case Evaluate.Long
  in
  Alcotest.(check bool)
    (Printf.sprintf "detections occur (%d)" o.detections)
    true (o.detections > 0)

let () =
  Alcotest.run "resistor"
    [ ("config", [ Alcotest.test_case "names" `Quick config_names ]);
      ("enum-rewriter",
       [ Alcotest.test_case "rewrites uninitialized only" `Quick enum_rewriting;
         Alcotest.test_case "semantics preserved" `Quick enum_semantics_preserved ]);
      ("returns",
       [ Alcotest.test_case "instruments eligible" `Quick returns_instrumentation;
         Alcotest.test_case "semantics preserved" `Quick returns_semantics_preserved;
         Alcotest.test_case "skips unsafe uses" `Quick returns_skips_unsafe ]);
      ("integrity",
       [ Alcotest.test_case "shadow mechanics" `Quick integrity_mechanism;
         Alcotest.test_case "detects bypassing writes" `Quick
           integrity_detects_corruption;
         Alcotest.test_case "semantics preserved" `Quick
           integrity_semantics_preserved ]);
      ("redundancy",
       [ Alcotest.test_case "branch instrumentation" `Quick
           branches_instrumentation_counts;
         Alcotest.test_case "branches semantics" `Quick branches_semantics_preserved;
         Alcotest.test_case "loops semantics" `Quick loops_semantics_preserved;
         Alcotest.test_case "loop headers found" `Quick loops_find_headers;
         Alcotest.test_case "complemented re-checks" `Quick branch_check_complements ]);
      ("delay",
       [ Alcotest.test_case "semantics preserved" `Quick delay_semantics_preserved;
         Alcotest.test_case "mechanics" `Quick delay_mechanics;
         Alcotest.test_case "switch blocks delayed" `Quick delay_covers_switch_blocks;
         Alcotest.test_case "opt-in scope" `Quick delay_opt_in_scope ]);
      ("driver",
       [ Alcotest.test_case "all firmware x all configs" `Quick
           all_firmware_compiles_under_all_configs;
         Alcotest.test_case "all defenses behave" `Quick all_defended_behaviour_matches;
         Alcotest.test_case "boot rows" `Quick boot_fires_trigger_under_every_config;
         Alcotest.test_case "overhead ordering" `Quick overhead_ordering ]);
      ("sigcfi",
       [ Alcotest.test_case "semantics preserved" `Quick sigcfi_semantics_preserved;
         Alcotest.test_case "mechanics" `Quick sigcfi_mechanics;
         Alcotest.test_case "detects illegal edges" `Quick
           sigcfi_detects_illegal_edge ]);
      ("domains",
       [ Alcotest.test_case "semantics preserved" `Quick domains_semantics_preserved;
         Alcotest.test_case "mechanics" `Quick domains_mechanics;
         Alcotest.test_case "detects domain escape" `Quick domains_detects_escape;
         Alcotest.test_case "stacked with all" `Quick cfi_stacked_semantics_preserved ]);
      ("cfcss",
       [ Alcotest.test_case "semantics preserved" `Quick cfcss_semantics_preserved;
         Alcotest.test_case "mechanics" `Quick cfcss_mechanics;
         Alcotest.test_case "structure" `Quick cfcss_detects_illegal_edge ]);
      ("evaluation",
       [ Alcotest.test_case "defended beats undefended" `Slow
           defended_beats_undefended;
         Alcotest.test_case "long attacks detected" `Slow long_attacks_detected ]) ]
