(* Tests for the batch audit service: the JSON line codec, the result
   payload codec with its re-validation, and the hit/warm/miss
   temperature contract — a warm or hit response must come back with
   zero sweep cases executed. *)

module Json = Service.Json

let counter = ref 0

let fresh_cache () =
  incr counter;
  Cache.open_dir
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "glitch-serve-test.%d.%d" (Unix.getpid ()) !counter))

(* --- JSON codec ----------------------------------------------------------- *)

let json_roundtrip () =
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
        Alcotest.(check string)
          (Printf.sprintf "stable through %s" s)
          s (Json.to_string v')
      | Error e -> Alcotest.failf "%s failed to reparse: %s" s e)
    [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 0; Json.Int (-42);
      Json.Int 65536; Json.Float 1.5; Json.String "";
      Json.String "with \"quotes\" and \\ and \ncontrol \tbytes";
      Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
      Json.Obj
        [ ("id", Json.Int 3); ("nested", Json.Obj [ ("a", Json.List []) ]);
          ("s", Json.String "v") ] ]

let json_parses_foreign_input () =
  (* input the compact printer would not itself produce *)
  List.iter
    (fun (input, expect) ->
      match Json.of_string input with
      | Ok v -> Alcotest.(check string) input expect (Json.to_string v)
      | Error e -> Alcotest.failf "%S rejected: %s" input e)
    [ ("  { \"a\" : [ 1 , 2 ] }  ", {|{"a":[1,2]}|});
      ({|"Aé"|}, {|"A|} ^ "\xc3\xa9" ^ {|"|});
      ("-0", "0"); ("1e2", "100.0"); ("true", "true") ]

let json_rejects_malformed () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Ok v ->
        Alcotest.failf "%S parsed as %s" input (Json.to_string v)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "nul"; "1 2";
      "{\"a\":1,}"; "[1] trailing"; "\"bad \\x escape\"" ]

let json_accessors () =
  let v = Json.Obj [ ("s", Json.String "x"); ("n", Json.Int 7);
                     ("b", Json.Bool true) ] in
  Alcotest.(check (option string)) "string member" (Some "x")
    (Option.bind (Json.member "s" v) Json.string_value);
  Alcotest.(check (option int)) "int member" (Some 7)
    (Option.bind (Json.member "n" v) Json.int_value);
  Alcotest.(check (option bool)) "bool member" (Some true)
    (Option.bind (Json.member "b" v) Json.bool_value);
  Alcotest.(check bool) "missing member" true (Json.member "zz" v = None);
  Alcotest.(check bool) "member of non-object" true
    (Json.member "a" (Json.Int 3) = None)

(* --- result payload codec -------------------------------------------------- *)

let beq = Option.get (Service.find_case "beq")
let config = Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And

let payload_roundtrip () =
  let r = Glitch_emu.Campaign.run_case config beq in
  match Service.decode_result config beq (Service.encode_result r) with
  | None -> Alcotest.fail "intact payload rejected"
  | Some r' ->
    Alcotest.(check bool) "by_weight preserved" true
      (r.by_weight = r'.by_weight);
    Alcotest.(check bool) "totals preserved" true (r.totals = r'.totals);
    Alcotest.(check int) "decoded results execute nothing" 0
      r'.stats.executed;
    Alcotest.(check int) "decoded results are fully memoized" 65536
      r'.stats.memoized

let payload_revalidation_rejects () =
  let r = Glitch_emu.Campaign.run_case config beq in
  let good = Service.encode_result r in
  let nums = String.split_on_char ' ' good |> List.filter (fun s -> s <> "") in
  let rejoin l = String.concat " " l in
  let bump_first l =
    match l with
    | x :: rest -> string_of_int (int_of_string x + 1) :: rest
    | [] -> []
  in
  List.iter
    (fun (name, payload) ->
      Alcotest.(check bool) name true
        (Service.decode_result config beq payload = None))
    [ ("empty", ""); ("garbage", "not numbers at all");
      ("truncated", rejoin (List.filteri (fun i _ -> i < 50) nums));
      ("extra field", rejoin (nums @ [ "0" ]));
      ("negative count", rejoin ("-1" :: List.tl nums));
      (* breaks counts-sum-to-2^16 and the totals re-derivation *)
      ("inconsistent counts", rejoin (bump_first nums)) ]

(* --- service temperature --------------------------------------------------- *)

let svc_request svc line =
  match Json.of_string (Service.handle_line svc line) with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not JSON: %s" e

let field_int resp name =
  match Option.bind (Json.member name resp) Json.int_value with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int field %S" name

let field_string resp name =
  match Option.bind (Json.member name resp) Json.string_value with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S" name

let check_ok resp =
  Alcotest.(check (option bool)) "ok" (Some true)
    (Option.bind (Json.member "ok" resp) Json.bool_value)

let warm_store_executes_nothing () =
  let svc = Service.create () in
  let r1 = svc_request svc {|{"id": 1, "case": "beq"}|} in
  check_ok r1;
  Alcotest.(check string) "first is a miss" "miss" (field_string r1 "cache");
  Alcotest.(check bool) "first run executes" true (field_int r1 "executed" > 0);
  Alcotest.(check int) "conservation" 65536
    (field_int r1 "executed" + field_int r1 "memoized");
  let r2 = svc_request svc {|{"id": 2, "case": "beq"}|} in
  Alcotest.(check string) "second is warm" "warm" (field_string r2 "cache");
  Alcotest.(check int) "warm executes nothing" 0 (field_int r2 "executed");
  Alcotest.(check int) "warm serves every mask" 65536 (field_int r2 "memoized");
  (* a different model is a different key: back to a miss *)
  let r3 = svc_request svc {|{"id": 3, "case": "beq", "model": "or"}|} in
  Alcotest.(check string) "other model misses" "miss" (field_string r3 "cache")

let persistent_cache_hits_across_services () =
  let cache = fresh_cache () in
  let svc1 = Service.create ~cache () in
  let r1 = svc_request svc1 {|{"id": 1, "case": "bne", "model": "or"}|} in
  check_ok r1;
  Alcotest.(check string) "cold cache misses" "miss" (field_string r1 "cache");
  (* a fresh service (fresh in-session stores) over the same directory:
     only the persistent cache can explain a zero-execution answer *)
  let svc2 = Service.create ~cache () in
  let r2 = svc_request svc2 {|{"id": 2, "case": "bne", "model": "or"}|} in
  check_ok r2;
  Alcotest.(check string) "warm cache hits" "hit" (field_string r2 "cache");
  Alcotest.(check int) "hit executes nothing" 0 (field_int r2 "executed");
  Alcotest.(check bool) "tables identical" true
    (Json.member "totals" r1 = Json.member "totals" r2
    && Json.member "by_weight" r1 = Json.member "by_weight" r2)

let corrupted_cache_entry_reruns () =
  let cache = fresh_cache () in
  let svc = Service.create ~cache () in
  let r1 = svc_request svc {|{"case": "beq"}|} in
  check_ok r1;
  (* clobber every entry in the cache directory with garbage *)
  let dir = Cache.dir cache in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat dir sub in
      if Sys.is_directory subdir then
        Array.iter
          (fun f ->
            let oc = open_out_bin (Filename.concat subdir f) in
            output_string oc "glitch-cache 1\ncorrupted beyond repair\n";
            close_out oc)
          (Sys.readdir subdir))
    (Sys.readdir dir);
  let svc2 = Service.create ~cache () in
  let r2 = svc_request svc2 {|{"case": "beq"}|} in
  check_ok r2;
  Alcotest.(check string) "corrupt entry is a miss" "miss"
    (field_string r2 "cache");
  Alcotest.(check bool) "tables re-derived identically" true
    (Json.member "totals" r1 = Json.member "totals" r2)

let service_matches_direct_campaign () =
  let svc = Service.create () in
  let resp = svc_request svc {|{"case": "beq"}|} in
  let direct = Glitch_emu.Campaign.run_case config beq in
  List.iter
    (fun cat ->
      let name = Glitch_emu.Campaign.category_name cat in
      let got =
        Option.bind (Json.member "totals" resp) (fun t ->
            Option.bind (Json.member name t) Json.int_value)
      in
      Alcotest.(check (option int)) name
        (Some direct.totals.(Glitch_emu.Campaign.category_index cat))
        got)
    Glitch_emu.Campaign.categories

(* --- request errors -------------------------------------------------------- *)

let errors_answer_instead_of_crashing () =
  let svc = Service.create () in
  List.iter
    (fun (line, expect_id) ->
      let resp = svc_request svc line in
      Alcotest.(check (option bool)) (line ^ " not ok") (Some false)
        (Option.bind (Json.member "ok" resp) Json.bool_value);
      Alcotest.(check bool) (line ^ " has an error") true
        (Json.member "error" resp <> None);
      Alcotest.(check bool) (line ^ " echoes id") true
        (Json.member "id" resp = Some expect_id))
    [ ("this is not json", Json.Null);
      ("{}", Json.Null);
      ({|{"id": 9, "case": "no-such-case"}|}, Json.Int 9);
      ({|{"id": 10, "case": 3}|}, Json.Int 10);
      ({|{"id": 11, "case": "beq", "model": "nand"}|}, Json.Int 11);
      ({|[1,2,3]|}, Json.Null) ]

let find_case_is_case_insensitive () =
  Alcotest.(check bool) "beq" true (Service.find_case "beq" <> None);
  Alcotest.(check bool) "BEQ" true (Service.find_case "BEQ" <> None);
  Alcotest.(check bool) "non-branch ldrb" true
    (Service.find_case "ldrb" <> None);
  Alcotest.(check bool) "unknown" true (Service.find_case "nope" = None)

let () =
  Alcotest.run "serve"
    [ ("json",
       [ Alcotest.test_case "roundtrip" `Quick json_roundtrip;
         Alcotest.test_case "foreign input" `Quick json_parses_foreign_input;
         Alcotest.test_case "malformed rejected" `Quick json_rejects_malformed;
         Alcotest.test_case "accessors" `Quick json_accessors ]);
      ("payload",
       [ Alcotest.test_case "roundtrip" `Quick payload_roundtrip;
         Alcotest.test_case "re-validation rejects" `Quick
           payload_revalidation_rejects ]);
      ("temperature",
       [ Alcotest.test_case "warm store executes nothing" `Quick
           warm_store_executes_nothing;
         Alcotest.test_case "persistent cache hits across services" `Quick
           persistent_cache_hits_across_services;
         Alcotest.test_case "corrupted entry reruns" `Quick
           corrupted_cache_entry_reruns;
         Alcotest.test_case "matches direct campaign" `Quick
           service_matches_direct_campaign ]);
      ("errors",
       [ Alcotest.test_case "errors answer, never crash" `Quick
           errors_answer_instead_of_crashing;
         Alcotest.test_case "find_case case-insensitive" `Quick
           find_case_is_case_insensitive ]) ]
