(* Tests for the static glitch-surface analyzer and defense auditor:
   CFG recovery, the 1/2-bit surface sweep, the lint rules on the
   example firmwares, and the differential property pinning the static
   classification against the dynamic campaign sweep. *)

open Analysis

let compile config source = Resistor.Driver.compile config source

let lint config source = Lint.run (Lint.of_compiled (compile config source))

let contains s ~affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let has_rule ?severity rule (r : Lint.report) =
  List.exists
    (fun (d : Lint.diag) ->
      d.rule = rule
      && match severity with None -> true | Some s -> d.severity = s)
    r.diags

let find_rule rule (r : Lint.report) =
  List.filter (fun (d : Lint.diag) -> d.rule = rule) r.diags

(* --- CFG recovery ----------------------------------------------------------- *)

let cfg_recovers_firmware () =
  let c = compile Resistor.Config.none Resistor.Firmware.guard_loop in
  let cfg = Cfg.of_image c.image in
  Alcotest.(check bool) "main recovered" true (Cfg.find_fn cfg "main" <> None);
  Alcotest.(check bool)
    "entry block exists" true
    (Cfg.block_at cfg c.image.entry <> None);
  Alcotest.(check bool)
    "reachable instructions" true
    (List.length (Cfg.reachable_insns cfg) > 10);
  Alcotest.(check bool)
    "has conditional guards" true
    (Cfg.conditionals cfg <> []);
  (* traversal must never walk off the image or hit undecodable words
     in compiler output *)
  List.iter
    (fun a ->
      match a with
      | Cfg.Fallthrough_off _ | Cfg.Target_outside _ | Cfg.Undecodable _
      | Cfg.Dangling_bl _ ->
        Alcotest.failf "unexpected anomaly: %a" Cfg.pp_anomaly a
      | Cfg.Unreachable_code _ | Cfg.Computed_target _ -> ())
    cfg.anomalies

let cfg_owner_and_literals () =
  (* if_success materialises 32-bit constants, so literal pools exist
     and must be classified as data, not code *)
  let c =
    compile
      (Resistor.Config.only ~enums:true ~returns:true ())
      Resistor.Firmware.if_success
  in
  let cfg = Cfg.of_image c.image in
  Alcotest.(check bool) "literal pools found" true (cfg.data_halfwords > 0);
  List.iter
    (fun (f : Cfg.fn) ->
      Alcotest.(check (option string))
        ("owner of " ^ f.name)
        (Some f.name)
        (Cfg.owner cfg f.entry))
    cfg.funcs

let cfg_taken_edge_first () =
  let c = compile Resistor.Config.none Resistor.Firmware.guard_loop in
  let cfg = Cfg.of_image c.image in
  let owning addr =
    List.find_opt
      (fun (b : Cfg.block) ->
        List.exists (fun (i : Cfg.insn) -> i.addr = addr) b.insns)
      cfg.blocks
  in
  List.iter
    (fun (i : Cfg.insn) ->
      match owning i.addr with
      | Some b ->
        Alcotest.(check bool)
          "conditional blocks have two successors" true
          (List.length b.succs = 2 && b.term = Cfg.Cond)
      | None -> Alcotest.fail "conditional without a block")
    (Cfg.conditionals cfg)

(* --- static surface --------------------------------------------------------- *)

(* the BEQ of the Figure-2 snippet, at its rig address *)
let beq_case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ
let beq_word = Glitch_emu.Testcase.target_word beq_case
let beq_addr = Glitch_emu.Campaign.flash_base + (2 * beq_case.target_index)

let surface_branch_profile () =
  let p = Surface.profile_word ~addr:beq_addr beq_word in
  Alcotest.(check int) "16 one-bit flips" Surface.flips1
    (p.control1 + p.fault1 + p.benign1);
  Alcotest.(check int) "120 two-bit flips" Surface.flips2
    (p.control2 + p.fault2 + p.benign2);
  (* every perturbation of a branch changes control flow or faults *)
  Alcotest.(check int) "no benign 1-bit flip of a branch" 0 p.benign1;
  Alcotest.(check int) "no benign 2-bit flip of a branch" 0 p.benign2;
  (* bit 8 complements the condition: exactly one direction mask *)
  Alcotest.(check (list int)) "direction flip mask" [ 0x0100 ]
    p.direction_masks;
  Alcotest.(check bool) "escape masks exist" true (p.escape_masks <> []);
  List.iter
    (fun m ->
      let instr = Thumb.Decode.instr (beq_word lxor m) in
      Alcotest.(check bool)
        "escape degrades to straight-line" false
        (Surface.diverts instr))
    p.escape_masks

let surface_fault_iff_undecodable () =
  for mask = 1 to 0xFFFF do
    if Glitch_emu.Bitmask.popcount mask <= 2 then begin
      let word = beq_word lxor mask in
      let undecodable =
        match Thumb.Decode.instr word with
        | Thumb.Instr.Undefined _ -> true
        | _ -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "mask 0x%04x" mask)
        undecodable
        (Surface.classify ~old_word:beq_word word = Surface.Fault)
    end
  done

let surface_alu_mostly_benign () =
  (* movs r5, #0xAD: flips inside the immediate or register fields stay
     straight-line *)
  let word =
    Thumb.Encode.instr (Thumb.Instr.Imm (Thumb.Instr.MOVi, Thumb.Reg.r5, 0xAD))
  in
  let p = Surface.profile_word word in
  Alcotest.(check bool) "ALU word has benign flips" true (p.benign1 > 0);
  Alcotest.(check (list int)) "no direction flip on ALU" [] p.direction_masks

let surface_scores () =
  let c = compile Resistor.Config.none Resistor.Firmware.guard_loop in
  let s = Surface.analyze (Cfg.of_image c.image) in
  Alcotest.(check bool) "score in (0,1)" true
    (s.image_score > 0. && s.image_score < 1.);
  Alcotest.(check int) "136 flips per instruction"
    ((Surface.flips1 + Surface.flips2) * List.length s.profiles)
    s.total_flips;
  let main =
    List.find (fun (f : Surface.func_surface) -> f.fname = "main") s.funcs
  in
  Alcotest.(check bool) "main has instructions" true (main.insns > 0)

(* --- differential: static classification vs dynamic campaign ------------------ *)

let dynamic_config = Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.Xor

let check_one_mask (case : Glitch_emu.Testcase.t) mask =
  let old_word = Glitch_emu.Testcase.target_word case in
  let word = old_word lxor mask in
  let addr = Glitch_emu.Campaign.flash_base + (2 * case.target_index) in
  let dynamic = Glitch_emu.Campaign.run_one dynamic_config case ~mask in
  let predicted = Surface.predicted_outcomes ~addr word in
  if not (List.mem dynamic predicted) then
    Alcotest.failf "%s mask 0x%04x: dynamic %s not in predicted {%s}"
      case.name mask
      (Glitch_emu.Campaign.category_name dynamic)
      (String.concat ", "
         (List.map Glitch_emu.Campaign.category_name predicted));
  let static = Surface.classify ~old_word word in
  (* Fault (undecodable) always shows up as Invalid_instruction; the
     converse can fail for decodable-but-ill-formed transfers (bx to a
     non-Thumb address), which predicted_outcomes already covers. *)
  if static = Surface.Fault then
    Alcotest.(check bool)
      (Printf.sprintf "%s mask 0x%04x: Fault implies Invalid_instruction"
         case.name mask)
      true
      (dynamic = Glitch_emu.Campaign.Invalid_instruction);
  Alcotest.(check bool)
    (Printf.sprintf "%s mask 0x%04x: branch flip is never Benign" case.name
       mask)
    true (static <> Surface.Benign)

(* Exhaustive over the masks the surface sweep enumerates: every 1-
   and 2-bit flip of every conditional branch, 14 x (16 + 120) runs. *)
let differential_exhaustive () =
  List.iter
    (fun case ->
      for mask = 1 to 0xFFFF do
        if Glitch_emu.Bitmask.popcount mask <= 2 then check_one_mask case mask
      done)
    Glitch_emu.Testcase.all_conditional_branches

(* ... and sampled over arbitrary-weight masks, where the prediction
   must stay a sound over-approximation. *)
let prop_differential_any_mask =
  QCheck.Test.make ~name:"static classification agrees with the dynamic sweep"
    ~count:200
    QCheck.(pair (int_bound 13) (int_range 1 0xFFFF))
    (fun (case_idx, mask) ->
      let case =
        List.nth Glitch_emu.Testcase.all_conditional_branches case_idx
      in
      check_one_mask case mask;
      true)

(* classify_flip under all three fault models against the real
   emulator: an identity application must leave the run
   indistinguishable from the baseline (No_effect), a Fault verdict
   must surface as Invalid_instruction, and any non-identity verdict
   must agree with [predicted_outcomes] on the word the model actually
   produces. *)
let check_one_flip model (case : Glitch_emu.Testcase.t) mask =
  let old_word = Glitch_emu.Testcase.target_word case in
  let word = Glitch_emu.Fault_model.apply model ~mask old_word land 0xFFFF in
  let addr = Glitch_emu.Campaign.flash_base + (2 * case.target_index) in
  let dynamic =
    Glitch_emu.Campaign.run_one
      (Glitch_emu.Campaign.default_config model)
      case ~mask
  in
  let static = Surface.classify_flip model ~mask ~old_word in
  let label fmt =
    Printf.sprintf
      ("%s %s mask 0x%04x: " ^^ fmt)
      (Glitch_emu.Fault_model.name model)
      case.name mask
  in
  if word = old_word then begin
    Alcotest.(check bool)
      (label "identity application is Benign")
      true (static = Surface.Benign);
    Alcotest.(check bool)
      (label "identity application leaves the baseline outcome")
      true
      (dynamic = Glitch_emu.Campaign.No_effect)
  end
  else begin
    let predicted = Surface.predicted_outcomes ~addr word in
    if not (List.mem dynamic predicted) then
      Alcotest.failf "%s"
        (label "dynamic %s not in predicted {%s}"
           (Glitch_emu.Campaign.category_name dynamic)
           (String.concat ", "
              (List.map Glitch_emu.Campaign.category_name predicted)));
    if static = Surface.Fault then
      Alcotest.(check bool)
        (label "Fault implies Invalid_instruction")
        true
        (dynamic = Glitch_emu.Campaign.Invalid_instruction);
    Alcotest.(check bool)
      (label "non-identity branch perturbation is never Benign")
      true
      (static <> Surface.Benign)
  end

let prop_differential_fault_models =
  QCheck.Test.make
    ~name:"classify_flip agrees with the dynamic sweep under And/Or/Xor"
    ~count:300
    QCheck.(triple (int_bound 2) (int_bound 13) (int_range 0 0xFFFF))
    (fun (model_idx, case_idx, mask) ->
      let model = List.nth Glitch_emu.Fault_model.all model_idx in
      let case =
        List.nth Glitch_emu.Testcase.all_conditional_branches case_idx
      in
      check_one_flip model case mask;
      true)

(* the weight-w selections of the XOR model are exactly the XOR sweep:
   flip_surface must reproduce profile_word's tallies column for
   column *)
let flip_surface_xor_matches_profile () =
  List.iter
    (fun (case : Glitch_emu.Testcase.t) ->
      let word = Glitch_emu.Testcase.target_word case in
      let p = Surface.profile_word word in
      let t = Surface.flip_surface Glitch_emu.Fault_model.Xor word in
      Alcotest.(check int) (case.name ^ ": control") (p.control1 + p.control2)
        t.f_control;
      Alcotest.(check int) (case.name ^ ": fault") (p.fault1 + p.fault2)
        t.f_fault;
      Alcotest.(check int) (case.name ^ ": benign") (p.benign1 + p.benign2)
        t.f_benign;
      Alcotest.(check int) (case.name ^ ": xor has no identity selections") 0
        t.f_identity)
    Glitch_emu.Testcase.all_conditional_branches

(* And can only clear set bits, Or can only set cleared ones: on any
   word the two models' identity selections partition the 136
   bit-selections between them (a selection is And-identity iff it
   picks only zeros, Or-identity iff only ones — weight <= 2 means no
   mixed selection is identity for either). *)
let flip_surface_unidirectional_identities () =
  List.iter
    (fun (case : Glitch_emu.Testcase.t) ->
      let word = Glitch_emu.Testcase.target_word case in
      let a = Surface.flip_surface Glitch_emu.Fault_model.And word in
      let o = Surface.flip_surface Glitch_emu.Fault_model.Or word in
      Alcotest.(check bool)
        (case.name ^ ": identities are benign (And)")
        true (a.f_identity <= a.f_benign);
      Alcotest.(check bool)
        (case.name ^ ": identities are benign (Or)")
        true (o.f_identity <= o.f_benign);
      let ones = Glitch_emu.Bitmask.popcount (word land 0xFFFF) in
      let zeros = 16 - ones in
      let pairs n = n * (n - 1) / 2 in
      Alcotest.(check int)
        (case.name ^ ": And identities = zero-only selections")
        (zeros + pairs zeros) a.f_identity;
      Alcotest.(check int)
        (case.name ^ ": Or identities = one-only selections")
        (ones + pairs ones) o.f_identity)
    Glitch_emu.Testcase.all_conditional_branches

(* --- defense audit ----------------------------------------------------------- *)

let lint_undefended_guard_loop () =
  let r = lint Resistor.Config.none Resistor.Firmware.guard_loop in
  let guard_errors =
    List.filter
      (fun (d : Lint.diag) -> d.severity = Lint.Error)
      (find_rule "guard-flippable" r)
  in
  Alcotest.(check bool) "guard flagged" true (guard_errors <> []);
  List.iter
    (fun (d : Lint.diag) ->
      Alcotest.(check string) "owned by main" "main" d.func;
      Alcotest.(check bool)
        "message names the single-bit flip" true
        (contains ~affix:"single-bit" d.message))
    guard_errors

let lint_defended_guard_loop () =
  let r = lint (Resistor.Config.all ~sensitive:[ "a" ] ()) Resistor.Firmware.guard_loop in
  Alcotest.(check (list string)) "defended build is clean" []
    (List.map (fun (d : Lint.diag) -> d.rule ^ ": " ^ d.message) (Lint.errors r));
  Alcotest.(check bool)
    "guards reported as re-checked" true
    (List.exists
       (fun (d : Lint.diag) ->
         d.severity = Lint.Info
         && contains ~affix:"complemented duplicate" d.message)
       (find_rule "guard-flippable" r))

let secure_boot_source =
  (* mirrors examples/firmware/secure_boot.c *)
  {|
enum verdict { SIG_OK, SIG_BAD };

volatile unsigned fw_word0 = 0xDEAD0001;
volatile unsigned fw_word1 = 0xBEEF0002;
volatile unsigned expected = 0x61B2C290;
volatile unsigned attack_success = 0;

int verify_signature(void) {
  unsigned digest = 0;
  digest = digest ^ (fw_word0 * 3);
  digest = digest ^ (fw_word1 * 5);
  if (digest == expected) { return SIG_OK; }
  return SIG_BAD;
}

int main(void) {
  __trigger_high();
  if (verify_signature() == SIG_OK) {
    attack_success = 170;
    __halt();
  }
  while (1) { }
  return 0;
}
|}

let defense_pipeline_source =
  (* mirrors examples/firmware/defense_pipeline.c *)
  {|
enum door_state { LOCKED, UNLOCKED, JAMMED };

volatile unsigned pin_ok = 0;
volatile unsigned door = 0;

int check_pin(void) {
  if (pin_ok == 1) { return UNLOCKED; }
  return LOCKED;
}

int main(void) {
  for (int tries = 0; tries < 3; tries = tries + 1) {
    if (check_pin() == UNLOCKED) {
      door = 1;
      return 0;
    }
  }
  return 1;
}
|}

let lint_example_firmwares () =
  let undefended = lint Resistor.Config.none secure_boot_source in
  Alcotest.(check bool)
    "secure_boot undefended flags guards" true
    (has_rule ~severity:Lint.Error "guard-flippable" undefended);
  let defended =
    lint
      (Resistor.Config.all_but_delay
         ~sensitive:[ "expected"; "attack_success" ] ())
      secure_boot_source
  in
  Alcotest.(check int) "secure_boot defended is clean" 0
    (List.length (Lint.errors defended));
  let undefended = lint Resistor.Config.none defense_pipeline_source in
  Alcotest.(check bool)
    "defense_pipeline undefended flags guards" true
    (has_rule ~severity:Lint.Error "guard-flippable" undefended);
  let defended =
    lint (Resistor.Config.all_but_delay ~sensitive:[ "door" ] ())
      defense_pipeline_source
  in
  Alcotest.(check int) "defense_pipeline defended is clean" 0
    (List.length (Lint.errors defended))

let lint_enum_and_return_hamming () =
  let r =
    lint
      (Resistor.Config.only ~enums:true ~returns:true ())
      Resistor.Firmware.if_success
  in
  Alcotest.(check bool) "enum rule ran" true (has_rule "enum-hamming" r);
  Alcotest.(check bool)
    "diversified enums pass the distance bound" false
    (has_rule ~severity:Lint.Error "enum-hamming" r);
  Alcotest.(check bool)
    "diversified returns pass the distance bound" false
    (has_rule ~severity:Lint.Error "return-hamming" r)

(* The Table VII witness: CFCSS-only firmware passes its own signature
   audit, yet every guard remains direction-flippable along legal
   edges. *)
let lint_cfcss_witness () =
  let m, reports =
    Resistor.Driver.compile_modul Resistor.Config.none
      Resistor.Firmware.guard_loop
  in
  let report = Resistor.Cfcss.run Resistor.Config.Spin m in
  let reports =
    { reports with
      Resistor.Driver.verify_warnings =
        reports.Resistor.Driver.verify_warnings
        @ Resistor.Pass.drain_warnings () }
  in
  let target =
    { Lint.image = Lower.Layout.link m;
      modul = Some m;
      config = Some Resistor.Config.none;
      reports = Some reports;
      cfcss = Some report }
  in
  let r = Lint.run target in
  Alcotest.(check bool)
    "signature audit is clean" false
    (has_rule ~severity:Lint.Error "cfcss-signature" r);
  Alcotest.(check bool)
    "clean audit cites the limitation" true
    (List.exists
       (fun (d : Lint.diag) ->
         contains ~affix:"Table VII" d.message)
       (find_rule "cfcss-signature" r));
  Alcotest.(check bool)
    "guards still flippable" true
    (has_rule ~severity:Lint.Error "guard-flippable" r)

(* The same witness shape for the post-paper CFI passes: a defended
   build audits clean (with the limitation cited), a sabotaged build —
   checks suppressed via the negative-control hook — is flagged. *)
let cfi_errors (r : Lint.report) =
  List.filter
    (fun (d : Lint.diag) ->
      contains ~affix:"sigcfi" d.rule || contains ~affix:"domains" d.rule)
    (Lint.errors r)
  |> List.map (fun (d : Lint.diag) -> d.rule ^ ": " ^ d.message)

let lint_sigcfi_audit () =
  let config = Resistor.Config.only ~sigcfi:true () in
  let r = lint config Resistor.Firmware.guard_loop in
  (* sigcfi alone leaves branch directions unprotected (guard-flippable
     errors are expected residue); its own audit must be clean *)
  Alcotest.(check (list string)) "defended build clean" [] (cfi_errors r);
  Alcotest.(check bool) "clean audit cites the limitation" true
    (List.exists
       (fun (d : Lint.diag) -> contains ~affix:"Table VII" d.message)
       (find_rule "sigcfi-sink" r));
  let sabotaged =
    Fun.protect
      ~finally:(fun () -> Resistor.Sigcfi.disable_checks := false)
      (fun () ->
        Resistor.Sigcfi.disable_checks := true;
        lint config Resistor.Firmware.guard_loop)
  in
  Alcotest.(check bool) "sabotaged build flagged" true
    (has_rule ~severity:Lint.Error "sigcfi-sink" sabotaged)

let lint_domains_audit () =
  let config = Resistor.Config.only ~domains:true () in
  let r = lint config Resistor.Firmware.guard_loop in
  Alcotest.(check (list string)) "defended build clean" [] (cfi_errors r);
  Alcotest.(check bool) "clean audit leaves a witness" true
    (has_rule ~severity:Lint.Info "domains-check" r);
  let sabotaged =
    Fun.protect
      ~finally:(fun () -> Resistor.Domains.disable_checks := false)
      (fun () ->
        Resistor.Domains.disable_checks := true;
        lint config Resistor.Firmware.guard_loop)
  in
  Alcotest.(check bool) "sabotaged build flagged" true
    (has_rule ~severity:Lint.Error "domains-check" sabotaged)

let lint_stacked_cfi_clean () =
  let config =
    { (Resistor.Config.all_but_delay ~sensitive:[ "a" ] ()) with
      sigcfi = true; domains = true }
  in
  let r = lint config Resistor.Firmware.guard_loop in
  Alcotest.(check (list string)) "stacked build clean" []
    (List.map (fun (d : Lint.diag) -> d.rule ^ ": " ^ d.message) (Lint.errors r))

(* --- structural audit units --------------------------------------------------- *)

let build_plain_loop () =
  let b = Ir.Builder.create ~fname:"f" ~params:[ "n" ] ~returns_value:true in
  Ir.Builder.br b "head";
  let _ = Ir.Builder.new_block b "head" in
  let n = Ir.Builder.load b (Ir.Local "n") in
  let c = Ir.Builder.icmp b Ir.Ne n (Ir.Const 0) in
  Ir.Builder.cond_br b c ~if_true:"body" ~if_false:"exit";
  let _ = Ir.Builder.new_block b "body" in
  let n2 = Ir.Builder.load b (Ir.Local "n") in
  let d = Ir.Builder.binop b Ir.Sub n2 (Ir.Const 1) in
  Ir.Builder.store b (Ir.Local "n") d;
  Ir.Builder.br b "head";
  let _ = Ir.Builder.new_block b "exit" in
  Ir.Builder.ret b (Some (Ir.Const 0));
  Ir.Builder.func b

let audit_unguarded_loop () =
  match Lint.audit_func (build_plain_loop ()) with
  | Lint.Unguarded { branches; loops } ->
    Alcotest.(check bool) "loop guard unprotected" true
      (branches > 0 && loops > 0)
  | Lint.Protected -> Alcotest.fail "bare loop audited as protected"
  | Lint.No_conditionals -> Alcotest.fail "loop guard not seen"

let audit_straight_line () =
  let b = Ir.Builder.create ~fname:"g" ~params:[] ~returns_value:true in
  Ir.Builder.ret b (Some (Ir.Const 7));
  match Lint.audit_func (Ir.Builder.func b) with
  | Lint.No_conditionals -> ()
  | _ -> Alcotest.fail "straight-line function has no guards"

let audit_defended_module () =
  let c =
    compile (Resistor.Config.all ~sensitive:[ "a" ] ()) Resistor.Firmware.guard_loop
  in
  match Ir.find_func c.modul "main" with
  | None -> Alcotest.fail "no main"
  | Some f -> (
    match Lint.audit_func f with
    | Lint.Protected -> ()
    | Lint.Unguarded { branches; loops } ->
      Alcotest.failf "defended main audited unguarded (%d branches, %d loops)"
        branches loops
    | Lint.No_conditionals -> Alcotest.fail "defended main lost its guards")

let hamming_helpers () =
  Alcotest.(check int) "0 vs 0xFF" 8 (Lint.min_pairwise [ 0; 0xFF ]);
  Alcotest.(check int) "triple takes the min" 1
    (Lint.min_pairwise [ 0; 0xFF; 0xFE ]);
  Alcotest.(check int) "singleton" max_int (Lint.min_pairwise [ 42 ]);
  let c =
    compile
      (Resistor.Config.only ~enums:true ~returns:true ())
      Resistor.Firmware.if_success
  in
  (match c.reports.enum_report with
  | Some er ->
    List.iter
      (fun (ename, members) ->
        List.iter
          (fun (mname, v) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s linked into image" ename mname)
              true
              (Lint.constant_in_image c.image v))
          members)
      er.rewritten
  | None -> Alcotest.fail "enum pass did not run");
  Alcotest.(check bool) "absent constant" false
    (Lint.constant_in_image c.image 0x5A5A5A77)

(* --- json -------------------------------------------------------------------- *)

let json_shape () =
  let r = lint Resistor.Config.none Resistor.Firmware.guard_loop in
  let j = Lint.to_json r in
  Alcotest.(check bool) "has errors field" true
    (contains ~affix:"\"errors\":" j);
  Alcotest.(check bool) "has guard-flippable" true
    (contains ~affix:"\"rule\":\"guard-flippable\"" j);
  Alcotest.(check bool) "single line" false (String.contains j '\n')

let () =
  Alcotest.run "analysis"
    [ ( "cfg",
        [ Alcotest.test_case "recovers firmware" `Quick cfg_recovers_firmware;
          Alcotest.test_case "owners and literal pools" `Quick
            cfg_owner_and_literals;
          Alcotest.test_case "conditional successors" `Quick
            cfg_taken_edge_first ] );
      ( "surface",
        [ Alcotest.test_case "branch profile" `Quick surface_branch_profile;
          Alcotest.test_case "fault iff undecodable" `Quick
            surface_fault_iff_undecodable;
          Alcotest.test_case "alu flips benign" `Quick surface_alu_mostly_benign;
          Alcotest.test_case "image scores" `Quick surface_scores ] );
      ( "differential",
        [ Alcotest.test_case "all 1/2-bit flips vs campaign" `Slow
            differential_exhaustive;
          Qseed.to_alcotest prop_differential_any_mask;
          Qseed.to_alcotest prop_differential_fault_models;
          Alcotest.test_case "flip_surface XOR column matches profile_word"
            `Quick flip_surface_xor_matches_profile;
          Alcotest.test_case "And/Or identity selections accounted" `Quick
            flip_surface_unidirectional_identities ] );
      ( "lint",
        [ Alcotest.test_case "undefended guard loop" `Quick
            lint_undefended_guard_loop;
          Alcotest.test_case "defended guard loop" `Quick
            lint_defended_guard_loop;
          Alcotest.test_case "example firmwares" `Quick lint_example_firmwares;
          Alcotest.test_case "enum and return hamming" `Quick
            lint_enum_and_return_hamming;
          Alcotest.test_case "cfcss witness (Table VII)" `Quick
            lint_cfcss_witness;
          Alcotest.test_case "sigcfi audit + sabotage" `Quick lint_sigcfi_audit;
          Alcotest.test_case "domains audit + sabotage" `Quick
            lint_domains_audit;
          Alcotest.test_case "stacked cfi clean" `Quick lint_stacked_cfi_clean;
          Alcotest.test_case "json shape" `Quick json_shape ] );
      ( "audit",
        [ Alcotest.test_case "unguarded loop" `Quick audit_unguarded_loop;
          Alcotest.test_case "straight line" `Quick audit_straight_line;
          Alcotest.test_case "defended module" `Quick audit_defended_module;
          Alcotest.test_case "hamming helpers" `Quick hamming_helpers ] ) ]
