(* Tests for the Figure 2 emulation framework: mask enumeration, fault
   models, snippet construction, and outcome classification. *)

open Glitch_emu

(* --- bitmask enumeration ------------------------------------------------- *)

let choose_table () =
  Alcotest.(check int) "16 choose 0" 1 (Bitmask.choose 16 0);
  Alcotest.(check int) "16 choose 1" 16 (Bitmask.choose 16 1);
  Alcotest.(check int) "16 choose 2" 120 (Bitmask.choose 16 2);
  Alcotest.(check int) "16 choose 8" 12870 (Bitmask.choose 16 8);
  Alcotest.(check int) "16 choose 16" 1 (Bitmask.choose 16 16);
  Alcotest.(check int) "out of range" 0 (Bitmask.choose 16 17)

let enumeration_matches_choose () =
  for k = 0 to 16 do
    let n = ref 0 in
    Bitmask.iter_of_weight ~width:16 ~weight:k (fun mask ->
        incr n;
        Alcotest.(check int) "weight" k (Bitmask.popcount mask));
    Alcotest.(check int)
      (Printf.sprintf "count at weight %d" k)
      (Bitmask.choose 16 k) !n
  done

let enumeration_distinct_and_complete () =
  let seen = Hashtbl.create 65536 in
  Bitmask.iter_all ~width:16 (fun ~weight:_ ~mask ->
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen mask);
      Hashtbl.add seen mask ());
  Alcotest.(check int) "covers 2^16" 65536 (Hashtbl.length seen)

let prop_weight_enumeration =
  QCheck.Test.make ~name:"of_weight lists are sorted and exact" ~count:50
    QCheck.(pair (int_range 1 12) (int_range 0 12))
    (fun (width, weight) ->
      QCheck.assume (weight <= width);
      let masks = Bitmask.of_weight ~width ~weight in
      List.length masks = Bitmask.choose width weight
      && List.for_all (fun m -> Bitmask.popcount m = weight) masks
      && List.sort compare masks = masks)

(* --- fault models ---------------------------------------------------------- *)

let fault_semantics () =
  Alcotest.(check int) "and clears" 0xD000
    (Fault_model.apply And ~mask:0xF000 0xD003);
  Alcotest.(check int) "or sets" 0xD0FF (Fault_model.apply Or ~mask:0x00FF 0xD000);
  Alcotest.(check int) "xor toggles" 0x5000
    (Fault_model.apply Xor ~mask:0x8000 0xD000)

let fault_identity () =
  List.iter
    (fun flip ->
      let mask = Fault_model.identity_mask flip ~width:16 in
      Alcotest.(check int)
        (Fault_model.name flip)
        0xD003
        (Fault_model.apply flip ~mask 0xD003))
    Fault_model.all

let fault_unidirectional () =
  (* AND can only clear bits; OR can only set them. *)
  for mask = 0 to 0xFF do
    let w = 0xD003 in
    let anded = Fault_model.apply And ~mask:(0xFF00 lor mask) w in
    Alcotest.(check int) "and subset" anded (anded land w);
    let ored = Fault_model.apply Or ~mask w in
    Alcotest.(check int) "or superset" ored (ored lor w)
  done

let flipped_bits () =
  Alcotest.(check int) "and identity" 0
    (Fault_model.flipped_bits And ~width:16 ~mask:0xFFFF);
  Alcotest.(check int) "and 3 zeros" 3
    (Fault_model.flipped_bits And ~width:16 ~mask:0x1FFF);
  Alcotest.(check int) "or identity" 0
    (Fault_model.flipped_bits Or ~width:16 ~mask:0);
  Alcotest.(check int) "or 2 ones" 2
    (Fault_model.flipped_bits Or ~width:16 ~mask:0x0011)

(* --- test cases -------------------------------------------------------------- *)

let all_cases_assemble () =
  Alcotest.(check int) "14 conditional branches" 14
    (List.length Testcase.all_conditional_branches);
  List.iter
    (fun (case : Testcase.t) ->
      match List.nth case.instrs case.target_index with
      | Thumb.Instr.B_cond _ -> ()
      | i ->
        Alcotest.fail
          (Printf.sprintf "%s target is %s, not a conditional branch" case.name
             (Thumb.Instr.to_string i)))
    Testcase.all_conditional_branches

let non_branch_cases_work () =
  List.iter
    (fun (case : Testcase.t) ->
      let config = Campaign.default_config Fault_model.And in
      (* identity: effect present, no marker *)
      (match Campaign.run_one config case ~mask:0xFFFF with
      | Campaign.No_effect -> ()
      | cat ->
        Alcotest.fail
          (Printf.sprintf "%s unglitched: %s" case.name
             (Campaign.category_name cat)));
      (* zero the word: instruction becomes a nop, effect missing *)
      match Campaign.run_one config case ~mask:0 with
      | Campaign.Success -> ()
      | cat ->
        Alcotest.fail
          (Printf.sprintf "%s nopped: %s" case.name (Campaign.category_name cat)))
    Testcase.non_branch_cases

let unglitched_runs_take_branch () =
  (* With the identity mask every snippet must take its branch: normal
     marker set, skip marker clear. *)
  List.iter
    (fun (case : Testcase.t) ->
      let config = Campaign.default_config Fault_model.And in
      let mask = Fault_model.identity_mask Fault_model.And ~width:16 in
      match Campaign.run_one config case ~mask with
      | Campaign.No_effect -> ()
      | cat ->
        Alcotest.fail
          (Printf.sprintf "%s unglitched: %s" case.name
             (Campaign.category_name cat)))
    Testcase.all_conditional_branches

(* --- classification ----------------------------------------------------------- *)

let beq_case = Testcase.conditional_branch Thumb.Instr.EQ

let nop_corruption_is_success () =
  (* AND mask 0 turns the branch into MOVS r0, r0 — the paper's
     canonical "skipped" instruction. *)
  let config = Campaign.default_config Fault_model.And in
  match Campaign.run_one config beq_case ~mask:0 with
  | Campaign.Success -> ()
  | cat -> Alcotest.fail (Campaign.category_name cat)

let zero_invalid_changes_classification () =
  let config =
    { (Campaign.default_config Fault_model.And) with zero_is_invalid = true }
  in
  match Campaign.run_one config beq_case ~mask:0 with
  | Campaign.Invalid_instruction -> ()
  | cat -> Alcotest.fail (Campaign.category_name cat)

let condition_inversion_is_success () =
  (* OR-ing bit 8 turns BEQ (cond 0) into BNE (cond 1): with Z set the
     branch is no longer taken, so the dead instruction runs. *)
  let config = Campaign.default_config Fault_model.Or in
  match Campaign.run_one config beq_case ~mask:0x0100 with
  | Campaign.Success -> ()
  | cat -> Alcotest.fail (Campaign.category_name cat)

let far_branch_is_bad_fetch () =
  (* OR-ing the sign bit of the offset branches far backwards, out of
     the tiny flash mapping. *)
  let config = Campaign.default_config Fault_model.Or in
  match Campaign.run_one config beq_case ~mask:0x0080 with
  | Campaign.Bad_fetch -> ()
  | cat -> Alcotest.fail (Campaign.category_name cat)

let prop_classification_deterministic =
  QCheck.Test.make ~name:"run_one is deterministic" ~count:100
    QCheck.(int_bound 0xFFFF)
    (fun mask ->
      let config = Campaign.default_config Fault_model.Xor in
      Campaign.run_one config beq_case ~mask = Campaign.run_one config beq_case ~mask)

(* --- the paper's headline result ---------------------------------------- *)

let and_beats_or_on_beq () =
  let run flip =
    Campaign.run_case (Campaign.default_config flip) beq_case
  in
  let and_rate = Campaign.category_percent (run Fault_model.And) Campaign.Success in
  let or_rate = Campaign.category_percent (run Fault_model.Or) Campaign.Success in
  Alcotest.(check bool)
    (Printf.sprintf "AND %.1f%% > OR %.1f%%" and_rate or_rate)
    true (and_rate > or_rate);
  Alcotest.(check bool) "AND skips over half the time" true (and_rate > 50.);
  (* weight-0 entries are the unmodified instruction: never a success *)
  let r = run Fault_model.And in
  Alcotest.(check int) "unmodified is never a success" 0
    r.by_weight.(0).(Campaign.category_index Campaign.Success)

let counts_are_conserved () =
  let r = Campaign.run_case (Campaign.default_config Fault_model.And) beq_case in
  let sum =
    Array.fold_left
      (fun acc row -> acc + Array.fold_left ( + ) 0 row)
      0 r.by_weight
  in
  Alcotest.(check int) "all 65536 masks classified" 65536 sum

(* --- golden Figure 2 numbers --------------------------------------------- *)

(* Pinned category totals for BEQ under each Figure 2 configuration,
   in category order Success; Bad_read; Bad_fetch; Invalid_instruction;
   Failed; No_effect (totals exclude the weight-0 identity mask, so each
   row sums to 65535). Any change to the decoder, the fault models or
   the campaign loop that shifts these numbers must be deliberate. *)
let golden_configs =
  [ ("and", Campaign.default_config Fault_model.And,
     [| 40960; 16384; 0; 0; 0; 8191 |]);
    ("or", Campaign.default_config Fault_model.Or,
     [| 30776; 0; 23328; 2048; 9272; 111 |]);
    ("xor", Campaign.default_config Fault_model.Xor,
     [| 29131; 24768; 4758; 5120; 1473; 285 |]);
    ("and zero-invalid",
     { (Campaign.default_config Fault_model.And) with zero_is_invalid = true },
     [| 32768; 16384; 0; 8192; 0; 8191 |]) ]

let golden_category_totals () =
  List.iter
    (fun (name, config, expect) ->
      let r = Campaign.run_case config beq_case in
      Alcotest.(check (array int)) name expect r.totals)
    golden_configs

let golden_success_by_weight () =
  (* The success column of Figure 2 for BEQ under all four
     configurations: one count per flipped-bit weight 0..16. *)
  let expect =
    [ ("and",
       [| 0; 2; 28; 183; 741; 2080; 4290; 6721; 8151; 7722; 5720; 3289; 1443;
          468; 106; 15; 1 |]);
      ("or",
       [| 0; 4; 50; 290; 1035; 2541; 4543; 6105; 6271; 4954; 3001; 1379; 471;
          114; 17; 1; 0 |]);
      ("xor",
       [| 0; 6; 51; 221; 656; 1501; 2792; 4283; 5377; 5381; 4329; 2703; 1274;
          438; 103; 15; 1 |]);
      ("and zero-invalid",
       [| 0; 2; 28; 182; 728; 2002; 4004; 6006; 6864; 6006; 4004; 2002; 728;
          182; 28; 2; 0 |]) ]
  in
  List.iter2
    (fun (name, config, _) (ename, expected) ->
      assert (name = ename);
      let r = Campaign.run_case config beq_case in
      let succ =
        Array.map
          (fun row -> row.(Campaign.category_index Campaign.Success))
          r.by_weight
      in
      Alcotest.(check (array int)) (name ^ " success by weight") expected succ)
    golden_configs expect

(* Category totals summed over all 14 conditional-branch cases, one row
   per Figure 2 flip model. Together with the per-case BEQ rows above,
   this locks the whole Figure 2 surface: any change to the decoder,
   executor, fault models, rig reset, or memo that shifts a single
   classification anywhere breaks one of these arrays. Values were
   produced by the pre-memoization reference implementation. *)
let golden_aggregate_branch_totals () =
  let expect =
    [ ("and", [| 623616; 229376; 0; 1024; 0; 63474 |]);
      ("or", [| 232280; 0; 425824; 38912; 218904; 1570 |]);
      ("xor", [| 407837; 346760; 66603; 71674; 20615; 4001 |]);
      ("and zero-invalid", [| 583680; 229376; 0; 40960; 0; 63474 |]) ]
  in
  List.iter2
    (fun (name, config, _) (ename, expected) ->
      assert (name = ename);
      let agg = Array.make (List.length Campaign.categories) 0 in
      List.iter
        (fun case ->
          let r = Campaign.run_case config case in
          Array.iteri (fun i n -> agg.(i) <- agg.(i) + n) r.totals)
        Testcase.all_conditional_branches;
      Alcotest.(check (array int)) (name ^ " aggregate totals") expected agg)
    golden_configs expect

let golden_non_branch_totals () =
  (* The supplement's non-branch cases under the two unidirectional
     models, pinned per case. *)
  let expect =
    [ (Fault_model.And, "STRB", [| 46592; 18432; 0; 0; 0; 511 |]);
      (Fault_model.And, "LDRB", [| 42496; 18432; 0; 0; 0; 4607 |]);
      (Fault_model.And, "ADDS", [| 49664; 0; 0; 0; 0; 15871 |]);
      (Fault_model.Or, "STRB", [| 23296; 25600; 16384; 0; 0; 255 |]);
      (Fault_model.Or, "LDRB", [| 7936; 24576; 32768; 0; 0; 255 |]);
      (Fault_model.Or, "ADDS", [| 24576; 20480; 8192; 6144; 0; 6143 |]) ]
  in
  List.iter
    (fun (flip, cname, expected) ->
      let case =
        List.find
          (fun (c : Testcase.t) -> c.name = cname)
          Testcase.non_branch_cases
      in
      let r = Campaign.run_case (Campaign.default_config flip) case in
      Alcotest.(check (array int))
        (Fault_model.name flip ^ " " ^ cname)
        expected r.totals)
    expect

(* --- sequential = parallel ----------------------------------------------- *)

let check_same_result name (seq : Campaign.result) (par : Campaign.result) =
  Alcotest.(check (array (array int)))
    (name ^ " by_weight") seq.by_weight par.by_weight;
  Alcotest.(check (array int)) (name ^ " totals") seq.totals par.totals

let parallel_matches_sequential () =
  (* Every Figure 2 configuration on BEQ, plus two more branch cases on
     the AND model: running the sweep on 2 or 4 domains must reproduce
     the single-domain tallies bit for bit. *)
  let workloads =
    List.map (fun (n, c, _) -> (n, c, beq_case)) golden_configs
    @ [ ("and", Campaign.default_config Fault_model.And,
         Testcase.conditional_branch Thumb.Instr.NE);
        ("and", Campaign.default_config Fault_model.And,
         Testcase.conditional_branch Thumb.Instr.LT) ]
  in
  Runtime.Pool.with_pool ~jobs:2 (fun pool2 ->
      Runtime.Pool.with_pool ~jobs:4 (fun pool4 ->
          List.iter
            (fun (cname, config, (case : Testcase.t)) ->
              let name = cname ^ "/" ^ case.name in
              let seq = Campaign.run_case config case in
              check_same_result (name ^ " jobs=2") seq
                (Campaign.run_case ~pool:pool2 config case);
              check_same_result (name ^ " jobs=4") seq
                (Campaign.run_case ~pool:pool4 config case))
            workloads))

(* --- campaign properties -------------------------------------------------- *)

(* The differential harness: [Campaign.run_one] is the original
   reference kernel (fresh machine, clear + reload reset, no memo),
   while [Campaign.sweep] is the memoized fast kernel on a reused rig
   with blit-based resets. Sampling random (case, model, mask) triples
   pins the two code paths against each other. *)

let diff_cases =
  [| beq_case;
     Testcase.conditional_branch Thumb.Instr.NE;
     Testcase.conditional_branch Thumb.Instr.LT;
     Testcase.store_case;
     Testcase.alu_case |]

let diff_sweeps =
  (* (config, case) sweeps built lazily, once per pair *)
  Array.map
    (fun case ->
      Array.of_list
        (List.map
           (fun (_, config, _) -> (config, lazy (Campaign.sweep config case)))
           golden_configs))
    diff_cases

let prop_fast_kernel_matches_reference =
  QCheck.Test.make
    ~name:"memoized sweep kernel agrees with the reference run_one" ~count:200
    QCheck.(
      triple
        (int_bound (Array.length diff_cases - 1))
        (int_bound (List.length golden_configs - 1))
        (int_bound 0xFFFF))
    (fun (ci, ki, mask) ->
      let case = diff_cases.(ci) in
      let config, sweep = diff_sweeps.(ci).(ki) in
      Campaign.run_one config case ~mask
      = (Lazy.force sweep).Campaign.categories.(mask))

let prop_memo_agrees_with_categories =
  (* The per-word memo must agree with the per-mask categories: the
     entry for a mask's perturbed word is exactly that mask's
     classification. *)
  QCheck.Test.make ~name:"memo table agrees with categories_by_mask" ~count:300
    QCheck.(
      triple
        (int_bound (Array.length diff_cases - 1))
        (int_bound (List.length golden_configs - 1))
        (int_bound 0xFFFF))
    (fun (ci, ki, mask) ->
      let case = diff_cases.(ci) in
      let config, sweep = diff_sweeps.(ci).(ki) in
      let s = Lazy.force sweep in
      let word = Fault_model.apply config.flip ~mask (Testcase.target_word case) in
      s.Campaign.by_word.(word) = Some s.Campaign.categories.(mask))

let sweep_stats_account_for_every_mask () =
  (* executed + memoized = 65,536 for every sequential sweep; executed
     equals the number of distinct perturbed words (memo occupancy);
     XOR is a bijection so it can never hit the memo. *)
  List.iter
    (fun (name, config, _) ->
      let s = Campaign.sweep config beq_case in
      let stats = s.Campaign.sweep_stats in
      Alcotest.(check int)
        (name ^ " executed+memoized")
        65536
        (stats.Campaign.executed + stats.Campaign.memoized);
      let occupied =
        Array.fold_left
          (fun acc c -> if c = None then acc else acc + 1)
          0 s.Campaign.by_word
      in
      Alcotest.(check int) (name ^ " executed = distinct words") occupied
        stats.Campaign.executed;
      let r = Campaign.run_case config beq_case in
      Alcotest.(check int)
        (name ^ " run_case stats account for every mask")
        65536
        (r.stats.Campaign.executed + r.stats.Campaign.memoized))
    golden_configs;
  let xor = Campaign.sweep (Campaign.default_config Fault_model.Xor) beq_case in
  Alcotest.(check int) "xor never hits the memo" 0
    xor.Campaign.sweep_stats.Campaign.memoized

let memo_saves_most_executions () =
  (* The Figure 2(a) claim behind the optimisation: under AND, a sweep
     executes only the distinct subsets of the target's set bits —
     2^popcount(target) words — and memoizes the other ~98%. *)
  let s = Campaign.sweep (Campaign.default_config Fault_model.And) beq_case in
  let stats = s.Campaign.sweep_stats in
  let expected = 1 lsl Bitmask.popcount (Testcase.target_word beq_case) in
  Alcotest.(check int) "AND executes 2^popcount(target) words" expected
    stats.Campaign.executed;
  Alcotest.(check bool) "memo serves the large majority" true
    (stats.Campaign.memoized > 60000)

(* --- shared store --------------------------------------------------------- *)

let shared_store_warm_run_executes_nothing () =
  (* A store kept warm across run_case calls of the same (config, case)
     pair serves every word: the second run classifies all 65,536 masks
     without executing a single instruction, sequentially and on a
     pool. *)
  let config = Campaign.default_config Fault_model.And in
  let store = Campaign.make_store () in
  let cold = Campaign.run_case ~store config beq_case in
  Alcotest.(check bool) "cold run executes" true
    (cold.stats.Campaign.executed > 0);
  let warm = Campaign.run_case ~store config beq_case in
  check_same_result "warm = cold" cold warm;
  Alcotest.(check int) "warm run executes nothing" 0
    warm.stats.Campaign.executed;
  Alcotest.(check int) "warm run serves every mask" 65536
    warm.stats.Campaign.memoized;
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      let par = Campaign.run_case ~pool ~store config beq_case in
      check_same_result "warm parallel = cold" cold par;
      Alcotest.(check int) "warm parallel executes nothing" 0
        par.stats.Campaign.executed)

let parallel_stats_conserve_masks () =
  (* The executed/memoized split of a parallel sweep is schedule-
     dependent (two workers racing on a cold slot both execute), but
     every mask is accounted for, every distinct word is executed at
     least once, and a worker never executes the same word twice — so
     executed is bounded by jobs x distinct words, not by the mask
     count. *)
  let config = Campaign.default_config Fault_model.And in
  let distinct = 1 lsl Bitmask.popcount (Testcase.target_word beq_case) in
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      let r = Campaign.run_case ~pool config beq_case in
      Alcotest.(check int) "executed+memoized" 65536
        (r.stats.Campaign.executed + r.stats.Campaign.memoized);
      Alcotest.(check bool) "every distinct word executed" true
        (r.stats.Campaign.executed >= distinct);
      Alcotest.(check bool) "bounded by jobs x distinct words" true
        (r.stats.Campaign.executed <= 4 * distinct))

let prop_shared_store_matches_private_oracle =
  (* The sequential run (one fresh private store, the pre-sharing
     semantics) is the oracle: a parallel run over the shared store and
     a warm-store rerun must reproduce its tables bit for bit. *)
  QCheck.Test.make
    ~name:"shared-store sweeps match the private-store oracle" ~count:6
    QCheck.(
      pair
        (int_bound (Array.length diff_cases - 1))
        (int_bound (List.length golden_configs - 1)))
    (fun (ci, ki) ->
      let case = diff_cases.(ci) in
      let _, config, _ = List.nth golden_configs ki in
      let oracle = Campaign.run_case config case in
      let store = Campaign.make_store () in
      Runtime.Pool.with_pool ~jobs:2 (fun pool ->
          let shared = Campaign.run_case ~pool ~store config case in
          let warm = Campaign.run_case ~store config case in
          oracle.Campaign.by_weight = shared.Campaign.by_weight
          && oracle.Campaign.totals = shared.Campaign.totals
          && oracle.Campaign.by_weight = warm.Campaign.by_weight
          && warm.Campaign.stats.Campaign.executed = 0))

let prop_flipped_bits_match_apply =
  (* flipped_bits reports the number of bit positions a mask can change:
     under XOR apply flips exactly those bits of any word; under AND/OR
     it flips a subset of them (only already-set / already-clear bits
     actually change). *)
  QCheck.Test.make ~name:"flipped_bits is consistent with apply" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (mask, word) ->
      List.for_all
        (fun flip ->
          let changed = word lxor Fault_model.apply flip ~mask word in
          let reported = Fault_model.flipped_bits flip ~width:16 ~mask in
          match flip with
          | Fault_model.Xor ->
            changed = mask && Bitmask.popcount changed = reported
          | Fault_model.And ->
            (* AND clears bits where the mask has zeros *)
            changed land mask = 0
            && changed land word = changed
            && Bitmask.popcount changed <= reported
          | Fault_model.Or ->
            (* OR sets bits where the mask has ones *)
            changed lor mask = mask
            && changed land word = 0
            && Bitmask.popcount changed <= reported)
        Fault_model.all)

let () =
  let props =
    List.map Qseed.to_alcotest
      [ prop_weight_enumeration; prop_classification_deterministic ]
  in
  let campaign_props =
    List.map Qseed.to_alcotest
      [ prop_fast_kernel_matches_reference; prop_memo_agrees_with_categories;
        prop_shared_store_matches_private_oracle; prop_flipped_bits_match_apply ]
  in
  Alcotest.run "glitch_emu"
    [ ("bitmask",
       [ Alcotest.test_case "binomial table" `Quick choose_table;
         Alcotest.test_case "enumeration counts" `Quick enumeration_matches_choose;
         Alcotest.test_case "distinct and complete" `Quick
           enumeration_distinct_and_complete ]);
      ("bitmask-properties", props);
      ("fault-model",
       [ Alcotest.test_case "apply semantics" `Quick fault_semantics;
         Alcotest.test_case "identity masks" `Quick fault_identity;
         Alcotest.test_case "unidirectionality" `Quick fault_unidirectional;
         Alcotest.test_case "flipped-bit counting" `Quick flipped_bits ]);
      ("testcases",
       [ Alcotest.test_case "all 14 assemble" `Quick all_cases_assemble;
         Alcotest.test_case "branches taken unglitched" `Quick
           unglitched_runs_take_branch;
         Alcotest.test_case "non-branch cases" `Quick non_branch_cases_work ]);
      ("classification",
       [ Alcotest.test_case "nop corruption succeeds" `Quick
           nop_corruption_is_success;
         Alcotest.test_case "0x0000 invalid mode" `Quick
           zero_invalid_changes_classification;
         Alcotest.test_case "condition inversion succeeds" `Quick
           condition_inversion_is_success;
         Alcotest.test_case "far branch bad-fetches" `Quick far_branch_is_bad_fetch ]);
      ("figure2",
       [ Alcotest.test_case "AND beats OR (paper headline)" `Slow and_beats_or_on_beq;
         Alcotest.test_case "mask accounting" `Slow counts_are_conserved ]);
      ("figure2-golden",
       [ Alcotest.test_case "category totals" `Slow golden_category_totals;
         Alcotest.test_case "success by weight, all models" `Slow
           golden_success_by_weight;
         Alcotest.test_case "aggregate branch totals, all models" `Slow
           golden_aggregate_branch_totals;
         Alcotest.test_case "non-branch totals" `Slow golden_non_branch_totals ]);
      ("parallel",
       [ Alcotest.test_case "sequential = parallel" `Slow
           parallel_matches_sequential ]);
      ("memo",
       [ Alcotest.test_case "stats account for every mask" `Slow
           sweep_stats_account_for_every_mask;
         Alcotest.test_case "AND memo saves most executions" `Slow
           memo_saves_most_executions;
         Alcotest.test_case "warm shared store executes nothing" `Slow
           shared_store_warm_run_executes_nothing;
         Alcotest.test_case "parallel stats conserve masks" `Slow
           parallel_stats_conserve_masks ]);
      ("campaign-properties", campaign_props) ]
