(* Tests for the GF(2^8) field, polynomial arithmetic, the Reed-Solomon
   codec, and the constant diversification scheme built on it. *)

open Reedsolomon

(* --- field laws (property-based) ----------------------------------------- *)

let gen_elt = QCheck.int_bound 255
let gen_nonzero = QCheck.int_range 1 255

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:500
    QCheck.(triple gen_elt gen_elt gen_elt)
    (fun (a, b, c) -> Gf256.add (Gf256.add a b) c = Gf256.add a (Gf256.add b c))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:500
    QCheck.(triple gen_elt gen_elt gen_elt)
    (fun (a, b, c) -> Gf256.mul (Gf256.mul a b) c = Gf256.mul a (Gf256.mul b c))

let prop_mul_comm =
  QCheck.Test.make ~name:"mul commutative" ~count:500
    QCheck.(pair gen_elt gen_elt)
    (fun (a, b) -> Gf256.mul a b = Gf256.mul b a)

let prop_distributive =
  QCheck.Test.make ~name:"mul distributes over add" ~count:500
    QCheck.(triple gen_elt gen_elt gen_elt)
    (fun (a, b, c) ->
      Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_inverse =
  QCheck.Test.make ~name:"x * inv x = 1" ~count:255 gen_nonzero (fun a ->
      Gf256.mul a (Gf256.inv a) = 1)

let prop_div_mul =
  QCheck.Test.make ~name:"(a/b)*b = a" ~count:500
    QCheck.(pair gen_elt gen_nonzero)
    (fun (a, b) -> Gf256.mul (Gf256.div a b) b = a)

let prop_pow_exp =
  QCheck.Test.make ~name:"pow 2 n = exp n" ~count:300 (QCheck.int_bound 254)
    (fun n -> Gf256.pow 2 n = Gf256.exp n)

let field_units () =
  Alcotest.(check int) "add self-inverse" 0 (Gf256.add 0xAB 0xAB);
  Alcotest.(check int) "mul identity" 0xAB (Gf256.mul 0xAB 1);
  Alcotest.(check int) "mul zero" 0 (Gf256.mul 0xAB 0);
  Alcotest.(check int) "alpha^0" 1 (Gf256.exp 0);
  Alcotest.(check int) "alpha^1" 2 (Gf256.exp 1);
  Alcotest.(check int) "alpha^8 reduces" 0x1D (Gf256.exp 8);
  Alcotest.(check int) "alpha^255 wraps" 1 (Gf256.exp 255);
  (match Gf256.div 1 0 with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero must raise");
  Alcotest.(check int) "log alpha" 1 (Gf256.log 2)

(* --- polynomials ----------------------------------------------------------- *)

let poly_basics () =
  Alcotest.(check int) "degree" 2 (Gfpoly.degree [| 1; 0; 3 |]);
  Alcotest.(check bool) "zero" true (Gfpoly.is_zero [| 0; 0 |]);
  Alcotest.(check bool) "normalize equal" true
    (Gfpoly.equal [| 0; 0; 1; 2 |] [| 1; 2 |]);
  (* (x + 1)(x + 2) = x^2 + 3x + 2 over GF(2^8) *)
  Alcotest.(check bool) "mul" true
    (Gfpoly.equal (Gfpoly.mul [| 1; 1 |] [| 1; 2 |]) [| 1; 3; 2 |]);
  Alcotest.(check int) "eval horner" (Gf256.add (Gf256.mul 3 3) 5)
    (Gfpoly.eval [| 3; 5 |] 3)

let poly_divmod_inverts_mul () =
  let a = [| 7; 0; 3; 1 |] and b = [| 1; 5 |] in
  let q, r = Gfpoly.divmod a b in
  let back = Gfpoly.add (Gfpoly.mul q b) r in
  Alcotest.(check bool) "a = q*b + r" true (Gfpoly.equal a back)

let prop_divmod =
  let gen_poly =
    QCheck.Gen.(
      map
        (fun l -> Array.of_list l)
        (list_size (int_range 1 8) (int_bound 255)))
  in
  let arb = QCheck.make ~print:(Fmt.str "%a" Gfpoly.pp) gen_poly in
  QCheck.Test.make ~name:"divmod reconstructs" ~count:300 (QCheck.pair arb arb)
    (fun (a, b) ->
      QCheck.assume (not (Gfpoly.is_zero b));
      let q, r = Gfpoly.divmod a b in
      Gfpoly.equal a (Gfpoly.add (Gfpoly.mul q b) r)
      && (Gfpoly.is_zero r || Gfpoly.degree r < Gfpoly.degree b))

let generator_roots () =
  (* The degree-n generator vanishes exactly at alpha^0 .. alpha^(n-1). *)
  let g = Gfpoly.generator 6 in
  Alcotest.(check int) "degree" 6 (Gfpoly.degree g);
  for i = 0 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "root alpha^%d" i)
      0
      (Gfpoly.eval g (Gf256.exp i))
  done;
  Alcotest.(check bool) "alpha^6 is not a root" true
    (Gfpoly.eval g (Gf256.exp 6) <> 0)

(* --- codec ------------------------------------------------------------------ *)

let encode_is_systematic () =
  let msg = [| 0x12; 0x34; 0x56 |] in
  let code = Rs.encode ~ecc_len:4 msg in
  Alcotest.(check int) "length" 7 (Array.length code);
  Alcotest.(check bool) "message prefix" true (Array.sub code 0 3 = msg);
  Alcotest.(check bool) "valid" true (Rs.is_valid ~ecc_len:4 code)

let decode_clean () =
  let code = Rs.encode ~ecc_len:4 [| 1; 2; 3; 4 |] in
  match Rs.decode ~ecc_len:4 code with
  | Ok c -> Alcotest.(check bool) "unchanged" true (c = code)
  | Error _ -> Alcotest.fail "clean codeword must decode"

let decode_corrects_errors () =
  let msg = Array.init 10 (fun i -> (i * 37) land 0xFF) in
  let code = Rs.encode ~ecc_len:8 msg in
  (* corrupt 4 symbols = ecc/2, the correction bound *)
  let received = Array.copy code in
  List.iter
    (fun (pos, v) -> received.(pos) <- v)
    [ (0, 0xFF); (3, 0x00); (9, 0xA5); (12, 0x5A) ];
  match Rs.decode_message ~ecc_len:8 received with
  | Ok m -> Alcotest.(check bool) "message recovered" true (m = msg)
  | Error _ -> Alcotest.fail "4 errors within bound must correct"

let decode_rejects_too_many () =
  let msg = Array.init 10 (fun i -> i) in
  let code = Rs.encode ~ecc_len:4 msg in
  let received = Array.copy code in
  (* corrupt 5 symbols, beyond the ecc/2 = 2 bound *)
  for i = 0 to 4 do
    received.(i) <- received.(i) lxor 0xFF
  done;
  match Rs.decode ~ecc_len:4 received with
  | Error `Too_many_errors -> ()
  | Error `Invalid_length -> Alcotest.fail "wrong error"
  | Ok c ->
    (* Miscorrection to a *different* codeword is information-
       theoretically possible beyond the bound; silently "fixing" back
       to the original is not. *)
    Alcotest.(check bool) "must not silently return original" true (c <> code)

let prop_roundtrip_with_errors =
  let gen =
    QCheck.Gen.(
      let* len = int_range 1 20 in
      let* msg = array_size (return len) (int_bound 255) in
      let* nerr = int_range 0 3 in
      let* positions =
        list_repeat nerr (int_bound (len + 6 - 1))
      in
      let* vals = list_repeat nerr (int_range 1 255) in
      return (msg, List.combine positions vals))
  in
  let arb =
    QCheck.make
      ~print:(fun (msg, errs) ->
        Fmt.str "msg=%a errs=%a"
          Fmt.(array ~sep:(any ",") int)
          msg
          Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") int int))
          errs)
      gen
  in
  QCheck.Test.make ~name:"corrupt <= 3 symbols, ecc 6 corrects" ~count:300 arb
    (fun (msg, errs) ->
      (* deduplicate positions: two errors at one position is fewer errors *)
      let errs =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) errs
      in
      let code = Rs.encode ~ecc_len:6 msg in
      let received = Array.copy code in
      List.iter (fun (p, v) -> received.(p) <- received.(p) lxor v) errs;
      match Rs.decode ~ecc_len:6 received with
      | Ok c -> c = code
      | Error _ -> false)

(* RS over GF(2^8) is linear: parity(a xor b) = parity a xor parity b. *)
let prop_parity_linear =
  let gen =
    QCheck.Gen.(
      let* len = int_range 1 16 in
      let* a = array_size (return len) (int_bound 255) in
      let* b = array_size (return len) (int_bound 255) in
      return (a, b))
  in
  let arb =
    QCheck.make
      ~print:(fun (a, b) ->
        Fmt.str "%a / %a" Fmt.(array ~sep:comma int) a Fmt.(array ~sep:comma int) b)
      gen
  in
  QCheck.Test.make ~name:"parity is GF(2)-linear" ~count:200 arb
    (fun (a, b) ->
      let x = Array.map2 ( lxor ) a b in
      let pa = Rs.parity ~ecc_len:6 a
      and pb = Rs.parity ~ecc_len:6 b
      and px = Rs.parity ~ecc_len:6 x in
      Array.for_all2 ( = ) px (Array.map2 ( lxor ) pa pb))

let prop_syndromes_zero_iff_codeword =
  QCheck.Test.make ~name:"valid codewords have zero syndromes" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (int_bound 255))
    (fun msg ->
      Rs.is_valid ~ecc_len:5 (Rs.encode ~ecc_len:5 msg))

(* --- diversification ---------------------------------------------------------- *)

let diversify_deterministic () =
  Alcotest.(check int) "stable" (Diversify.value ~width_bytes:4 1)
    (Diversify.value ~width_bytes:4 1);
  Alcotest.(check bool) "distinct ordinals differ" true
    (Diversify.value ~width_bytes:4 1 <> Diversify.value ~width_bytes:4 2)

let diversify_width () =
  List.iter
    (fun w ->
      let v = Diversify.value ~width_bytes:w 123 in
      Alcotest.(check bool)
        (Printf.sprintf "fits in %d bytes" w)
        true
        (v >= 0 && v < 1 lsl (8 * w)))
    [ 1; 2; 4 ]

let diversify_hamming_guarantee () =
  (* The paper's claim: minimum pairwise Hamming distance of 8 for
     4-byte values. Check a set as large as any real ENUM. *)
  let vs = Diversify.values ~count:64 () in
  Alcotest.(check int) "64 values" 64 (List.length vs);
  let d = Diversify.min_pairwise_hamming vs in
  Alcotest.(check bool) (Printf.sprintf "min distance %d >= 8" d) true (d >= 8)

let diversify_large_set_distance () =
  let vs = Diversify.values ~count:256 () in
  let d = Diversify.min_pairwise_hamming vs in
  Alcotest.(check bool) (Printf.sprintf "256 values, distance %d >= 6" d) true
    (d >= 6)

let hamming_fn () =
  Alcotest.(check int) "0 vs 0" 0 (Diversify.hamming 0 0);
  Alcotest.(check int) "1 bit" 1 (Diversify.hamming 0 1);
  Alcotest.(check int) "0 vs 0xFF" 8 (Diversify.hamming 0 0xFF);
  Alcotest.(check int) "paper example" 4 (Diversify.hamming 0b1010 0b0101)

let () =
  let props =
    List.map Qseed.to_alcotest
      [ prop_add_assoc; prop_mul_assoc; prop_mul_comm; prop_distributive;
        prop_inverse; prop_div_mul; prop_pow_exp; prop_divmod;
        prop_roundtrip_with_errors; prop_parity_linear;
        prop_syndromes_zero_iff_codeword ]
  in
  Alcotest.run "reedsolomon"
    [ ("field",
       [ Alcotest.test_case "units and identities" `Quick field_units ]);
      ("poly",
       [ Alcotest.test_case "basics" `Quick poly_basics;
         Alcotest.test_case "divmod inverts mul" `Quick poly_divmod_inverts_mul;
         Alcotest.test_case "generator roots" `Quick generator_roots ]);
      ("codec",
       [ Alcotest.test_case "systematic encoding" `Quick encode_is_systematic;
         Alcotest.test_case "clean decode" `Quick decode_clean;
         Alcotest.test_case "corrects to the bound" `Quick decode_corrects_errors;
         Alcotest.test_case "rejects beyond the bound" `Quick
           decode_rejects_too_many ]);
      ("diversify",
       [ Alcotest.test_case "deterministic" `Quick diversify_deterministic;
         Alcotest.test_case "width" `Quick diversify_width;
         Alcotest.test_case "hamming >= 8 (paper claim)" `Quick
           diversify_hamming_guarantee;
         Alcotest.test_case "large set distance" `Quick diversify_large_set_distance;
         Alcotest.test_case "hamming distance fn" `Quick hamming_fn ]);
      ("properties", props) ]
