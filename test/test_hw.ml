(* Tests for the hardware simulation: deterministic randomness, the
   susceptibility landscape, board/trigger mechanics, glitcher
   behaviour, the attack programs of Tables I-III, and the qualitative
   results the paper reports. *)

open Hw

(* --- hashrand ----------------------------------------------------------- *)

let hashrand_deterministic () =
  Alcotest.(check int) "stable" (Hashrand.hash ~seed:1 [ 2; 3 ])
    (Hashrand.hash ~seed:1 [ 2; 3 ]);
  Alcotest.(check bool) "seed matters" true
    (Hashrand.hash ~seed:1 [ 2; 3 ] <> Hashrand.hash ~seed:2 [ 2; 3 ]);
  Alcotest.(check bool) "coords matter" true
    (Hashrand.hash ~seed:1 [ 2; 3 ] <> Hashrand.hash ~seed:1 [ 3; 2 ])

let prop_u01_range =
  QCheck.Test.make ~name:"u01 in [0,1)" ~count:1000
    QCheck.(pair int (small_list int))
    (fun (seed, coords) ->
      let u = Hashrand.u01 ~seed coords in
      u >= 0. && u < 1.)

let prop_bits_range =
  QCheck.Test.make ~name:"bits within width" ~count:500
    QCheck.(pair int (int_range 1 32))
    (fun (seed, width) ->
      let v = Hashrand.bits ~seed [ 7 ] ~width in
      v >= 0 && v < 1 lsl width)

(* --- susceptibility -------------------------------------------------------- *)

let landscape_properties () =
  let config = Susceptibility.default in
  (* bounded, non-negative, and small on most of the plane *)
  let above_one = ref 0 and total = ref 0 in
  for w = -49 to 49 do
    for o = -49 to 49 do
      incr total;
      let e = Susceptibility.landscape config ~width:w ~offset:o in
      Alcotest.(check bool) "non-negative" true (e >= 0.);
      if e > 1. then incr above_one
    done
  done;
  Alcotest.(check bool) "deterministic cores are rare" true
    (!above_one > 0 && !above_one < !total / 100)

let class_factors_ordered () =
  let load =
    Thumb.Instr.Mem_imm
      { load = true; byte = true; rd = Thumb.Reg.r3; rb = Thumb.Reg.r3; imm = 0 }
  in
  let cmp = Thumb.Instr.Imm (CMPi, Thumb.Reg.r3, 0) in
  let branch = Thumb.Instr.B_cond (EQ, -4) in
  let alu = Thumb.Instr.Imm (ADDi, Thumb.Reg.r3, 7) in
  let f = Susceptibility.class_factor in
  Alcotest.(check bool) "loads easiest (RQ4)" true
    (f load > f cmp && f load > f alu);
  Alcotest.(check bool) "branches glitchable" true (f branch > f alu);
  Alcotest.(check bool) "register ALU nearly immune" true (f alu < 0.2)

let corrupt_word_biased () =
  let config = Susceptibility.default in
  (* over many salts, 1->0 flips must dominate 0->1 flips *)
  let cleared = ref 0 and set = ref 0 in
  for salt = 0 to 500 do
    let w = 0xD0F0 in
    let w' = Susceptibility.corrupt_word config ~salt:[ salt ] w in
    cleared := !cleared + Glitch_emu.Bitmask.popcount (w land lnot w');
    set := !set + Glitch_emu.Bitmask.popcount (w' land lnot w)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "clears (%d) >> sets (%d)" !cleared !set)
    true
    (!cleared > 4 * !set)

let roll_deterministic_effect () =
  let config = Susceptibility.default in
  let instr = Thumb.Instr.B_cond (EQ, -4) in
  (* same point, different nonces: the effect kind never changes between
     firing attempts (only whether it fires) *)
  let kinds = Hashtbl.create 8 in
  for nonce = 0 to 200 do
    match
      Susceptibility.roll config ~sustained:false ~width:(-10) ~offset:4
        ~cycle:5 ~nonce ~instr ~sp:0x20003FE8
    with
    | Susceptibility.No_fault -> ()
    | effect -> Hashtbl.replace kinds (Fmt.str "%a" Susceptibility.pp_effect effect) ()
  done;
  Alcotest.(check bool) "at most one firing effect kind" true
    (Hashtbl.length kinds <= 1)

(* --- board ------------------------------------------------------------------ *)

let board_trigger_and_cycles () =
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  (match Board.run_plain ~max_cycles:200 board with
  | `Timeout -> () (* the unglitched guard loops forever *)
  | `Stopped s -> Alcotest.fail (Fmt.str "stopped: %a" Machine.Exec.pp_stop s));
  match Board.trigger_edges board with
  | [ edge ] -> Alcotest.(check bool) "trigger early" true (edge > 0 && edge < 30)
  | edges ->
    Alcotest.fail (Printf.sprintf "expected 1 trigger edge, got %d" (List.length edges))

let board_reset_is_clean () =
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let (_ : [ `Stopped of Machine.Exec.stop | `Timeout ]) =
    Board.run_plain ~max_cycles:100 board
  in
  let c1 = Board.cycles board in
  Board.reset board;
  Alcotest.(check int) "cycles cleared" 0 (Board.cycles board);
  Alcotest.(check (list int)) "edges cleared" [] (Board.trigger_edges board);
  let (_ : [ `Stopped of Machine.Exec.stop | `Timeout ]) =
    Board.run_plain ~max_cycles:100 board
  in
  Alcotest.(check int) "deterministic rerun" c1 (Board.cycles board)

let board_double_loop_triggers_twice () =
  (* Force the value to change so both loops exit: run the while(a)
     double loop with a = 1; it spins in loop1 forever unglitched, so
     instead use skip faults via the glitcher at a known-hot point...
     simpler: check the while(!a) double program re-arms the trigger by
     glitching with a blanket schedule. *)
  let board = Board.create (Board.Asm (Attack.double_loop_program While_not_a)) in
  let (_ : [ `Stopped of Machine.Exec.stop | `Timeout ]) =
    Board.run_plain ~max_cycles:120 board
  in
  Alcotest.(check int) "one edge while stuck in loop1" 1
    (List.length (Board.trigger_edges board))

let guard_programs_assemble () =
  List.iter
    (fun guard ->
      List.iter
        (fun src -> ignore (Thumb.Asm.assemble src))
        [ Attack.single_loop_program guard;
          Attack.double_loop_program guard;
          Attack.long_glitch_program guard ])
    Attack.all_guards

(* Every pc-relative load in the guard programs must hit a literal pool
   word holding one of the experiment's two constants — this pins the
   hand-computed [pc, #imm] offsets. *)
let literal_pool_offsets_correct () =
  let constants = [ 0xE7D25763; 0xD3B9AEC6 ] in
  List.iter
    (fun src ->
      let words = Array.of_list (Thumb.Asm.assemble_words src) in
      Array.iteri
        (fun i w ->
          match Thumb.Decode.instr w with
          | Thumb.Instr.Ldr_pc (_, imm) ->
            let target = (((2 * i) + 4) land lnot 3) + (4 * imm) in
            let idx = target / 2 in
            if idx + 1 >= Array.length words then
              Alcotest.fail "pool load out of program";
            let v = words.(idx) lor (words.(idx + 1) lsl 16) in
            Alcotest.(check bool)
              (Printf.sprintf "pool value 0x%08x at instr %d" v i)
              true (List.mem v constants)
          | _ -> ())
        words)
    [ Attack.single_loop_program While_ne_const;
      Attack.double_loop_program While_ne_const;
      Attack.long_glitch_program While_ne_const ]

(* --- glitcher ------------------------------------------------------------------ *)

let glitcher_deterministic () =
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let schedule = [ Glitcher.single ~width:(-10) ~offset:5 ~ext_offset:4 ] in
  let o1 = Glitcher.run ~max_cycles:200 ~nonce:3 board schedule in
  let c1 = Board.cycles board in
  let o2 = Glitcher.run ~max_cycles:200 ~nonce:3 board schedule in
  Alcotest.(check bool) "same stop" true (o1.stop = o2.stop);
  Alcotest.(check int) "same cycles" c1 o2.cycles

let glitcher_without_schedule_is_plain () =
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let obs = Glitcher.run ~max_cycles:200 board [] in
  Alcotest.(check bool) "loops forever" true (obs.stop = `Timeout);
  Alcotest.(check int) "nothing glitched" 0 obs.glitched_cycles

let forced_skip_escapes_loop () =
  (* Drive the board manually: skipping the BEQ must exit while(!a). *)
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let rec go budget =
    if budget = 0 then Alcotest.fail "never reached breakpoint"
    else
      let applied =
        match Board.peek board with
        | Ok (Thumb.Instr.B_cond (EQ, _)) -> Board.As_nop
        | Ok _ | Error _ -> Board.Normal
      in
      match Board.step ~applied board with
      | Machine.Exec.Running -> go (budget - 1)
      | Machine.Exec.Stopped (Machine.Exec.Breakpoint 0) ->
        Alcotest.(check int) "escape marker" 0xAA (Board.reg board 0)
      | Machine.Exec.Stopped s ->
        Alcotest.fail (Fmt.str "stopped: %a" Machine.Exec.pp_stop s)
  in
  go 200

let snapshot_restore_equivalence () =
  (* restoring a snapshot must reproduce a fresh deterministic run *)
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let schedule = [ Glitcher.single ~width:(-12) ~offset:8 ~ext_offset:3 ] in
  let o_fresh = Glitcher.run ~max_cycles:250 ~nonce:9 board schedule in
  let r3_fresh = Board.reg board 3 in
  (* snapshot a freshly reset board right after boot-to-trigger *)
  Board.reset board;
  ignore (Board.run_until_trigger ~max_cycles:100 board);
  let snap = Board.snapshot board in
  let o_restored = Glitcher.run ~max_cycles:250 ~nonce:9 ~from:snap board schedule in
  Alcotest.(check bool) "same stop" true (o_fresh.stop = o_restored.stop);
  Alcotest.(check int) "same comparator" r3_fresh (Board.reg board 3)

let instr_duration_matches_execution () =
  (* instr_duration must predict exactly what execute-then-count books:
     step through two full guard iterations comparing prediction and
     actual cycle delta at every instruction. *)
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  for step = 1 to 40 do
    match Board.peek board with
    | Error _ -> ()
    | Ok instr ->
      let predicted = Board.instr_duration board instr in
      let before = Board.cycles board in
      (match Board.step board with
      | Machine.Exec.Running ->
        Alcotest.(check int)
          (Fmt.str "step %d: %a" step Thumb.Instr.pp instr)
          predicted
          (Board.cycles board - before)
      | Machine.Exec.Stopped _ -> ())
  done

(* Replay from a trigger snapshot must be indistinguishable from a full
   power-on reset, with and without the dead-schedule baseline: the boot
   is deterministic and no window can arm before the first edge exists.
   Random schedules over the double-loop program exercise multi-trigger
   and repeat > 1 cases. *)
let prop_replay_equiv_reset =
  let param =
    QCheck.Gen.(
      map
        (fun (width, offset, ext_offset, (repeat, trigger_index)) ->
          { Glitcher.width; offset; ext_offset; repeat; trigger_index })
        (tup4 (int_range (-49) 49) (int_range (-49) 49) (int_range 0 12)
           (tup2 (int_range 1 6) (int_range 0 1))))
  in
  let arb =
    QCheck.make
      ~print:(fun (ps, nonce) ->
        String.concat ";"
          (Printf.sprintf "nonce=%d" nonce
          :: List.map
               (fun p ->
                 Printf.sprintf "{w=%d;o=%d;ext=%d;rep=%d;trig=%d}"
                   p.Glitcher.width p.Glitcher.offset p.Glitcher.ext_offset
                   p.Glitcher.repeat p.Glitcher.trigger_index)
               ps))
      QCheck.Gen.(tup2 (list_size (int_range 1 3) param) (int_range 0 5))
  in
  let board = Board.create (Board.Asm (Attack.double_loop_program While_not_a)) in
  ignore (Board.run_until_trigger ~max_cycles:500 board);
  let snap = Board.snapshot board in
  let baseline = Glitcher.baseline ~max_cycles:500 board ~from:snap in
  QCheck.Test.make ~name:"run ~from:snap = reset-then-run (± baseline)" ~count:300
    arb
    (fun (schedule, nonce) ->
      let post b = List.init 16 (Board.reg b) in
      let o_reset = Glitcher.run ~max_cycles:500 ~nonce board schedule in
      let r_reset = post board in
      let o_snap = Glitcher.run ~max_cycles:500 ~nonce ~from:snap board schedule in
      let r_snap = post board in
      let o_base =
        Glitcher.run ~max_cycles:500 ~nonce ~from:snap ~baseline board schedule
      in
      let r_base = post board in
      let same (a : Glitcher.observation) (b : Glitcher.observation) =
        a.stop = b.stop && a.cycles = b.cycles && a.fired = b.fired
        && a.glitched_cycles = b.glitched_cycles
      in
      same o_reset o_snap && same o_reset o_base && r_reset = r_snap
      && r_reset = r_base)

(* The sweep kernel end-to-end: a strided (width, offset) sub-plane of
   the Table I sweep, reset-per-attempt vs the boot_rig replay path,
   must classify every attempt identically. *)
let sweep_replay_differential () =
  let rig = Attack.boot_rig (Attack.single_loop_program While_not_a) in
  let fresh = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let width = ref (-49) in
  while !width <= 49 do
    let offset = ref (-49) in
    while !offset <= 49 do
      let schedule =
        [ Glitcher.single ~width:!width ~offset:!offset ~ext_offset:5 ]
      in
      let o_reset = Glitcher.run ~max_cycles:300 fresh schedule in
      let o_rig = Attack.attempt rig schedule in
      if
        o_reset.Glitcher.stop <> o_rig.Glitcher.stop
        || o_reset.Glitcher.cycles <> o_rig.Glitcher.cycles
        || Attack.escaped fresh o_reset <> Attack.escaped (Attack.rig_board rig) o_rig
        || Board.reg fresh 3 <> Board.reg (Attack.rig_board rig) 3
      then
        Alcotest.failf "diverged at width=%d offset=%d" !width !offset;
      offset := !offset + 7
    done;
    width := !width + 7
  done

let tie_break_uses_absolute_cycles () =
  (* Two windows overlap the same instruction: window [b] (trigger 0,
     far ext_offset) opens at absolute cycle 100, window [a] (trigger 1,
     near ext_offset) at 101. The glitch must resolve to [b], the
     earlier absolute cycle. The pre-fix code compared cycles relative
     to each window's own trigger edge (1 < 90) and picked [a]. *)
  let a =
    { (Glitcher.single ~width:0 ~offset:0 ~ext_offset:1) with trigger_index = 1 }
  in
  let b = Glitcher.single ~width:0 ~offset:0 ~ext_offset:90 in
  let edges = [ 10; 100 ] in
  (match Glitcher.active_window [ a; b ] edges ~start:100 ~duration:3 with
  | Some (p, rel) ->
    Alcotest.(check int) "earliest absolute window wins" 90 p.Glitcher.ext_offset;
    Alcotest.(check int) "relative cycle vs its own edge" 90 rel
  | None -> Alcotest.fail "expected an overlapping window");
  (* sanity: with the roles swapped, the trigger-1 window wins *)
  let a' = { a with ext_offset = 0 } in
  match Glitcher.active_window [ a'; b ] edges ~start:100 ~duration:3 with
  | Some (p, _) ->
    Alcotest.(check int) "trigger-1 window at cycle 100 wins" 1
      p.Glitcher.trigger_index
  | None -> Alcotest.fail "expected an overlapping window"

let overlap_uses_actual_duration () =
  (* A not-taken branch occupies 1 cycle, but the pre-fix overlap test
     assumed the taken duration (3), so a 1-cycle window aimed past the
     branch also matched the branch's two phantom cycles. Layout (cycle
     stamps relative to the trigger edge): CMP at +0, BNE (not taken)
     at +1, BKPT at +2, and nothing ever runs at +3. *)
  let board =
    Board.create
      (Board.Asm
         {|
  movs r1, #0x48
  lsls r1, r1, #24
  adds r1, #0x28
  movs r2, #1
  str  r2, [r1, #0]
  cmp  r2, #1
  bne  away
  bkpt #0
away:
  movs r0, #0x22
  bkpt #0
|})
  in
  let glitched ext_offset =
    let obs =
      Glitcher.run ~max_cycles:100 board
        [ Glitcher.single ~width:(-10) ~offset:5 ~ext_offset ]
    in
    obs.Glitcher.glitched_cycles
  in
  Alcotest.(check int) "window on the branch's real cycle" 1 (glitched 1);
  (* pre-fix: 2 — the window matched both the BKPT and the branch's
     phantom second cycle *)
  Alcotest.(check int) "window past the branch hits one instruction" 1
    (glitched 2);
  (* pre-fix: 1 — the window matched the branch's phantom third cycle,
     a cycle that never elapses *)
  Alcotest.(check int) "window on a cycle that never elapses" 0 (glitched 3)

let second_trigger_schedules () =
  (* a schedule armed on trigger 1 must not fire while only trigger 0
     has occurred *)
  let board = Board.create (Board.Asm (Attack.double_loop_program While_not_a)) in
  let late =
    [ { (Glitcher.single ~width:(-10) ~offset:5 ~ext_offset:2) with
        trigger_index = 1 } ]
  in
  let obs = Glitcher.run ~max_cycles:250 board late in
  (* stuck in loop1 forever: the second trigger never arrives *)
  Alcotest.(check bool) "timeout in loop1" true (obs.stop = `Timeout);
  Alcotest.(check int) "no glitched cycles" 0 obs.glitched_cycles

let loop_takes_eight_cycles () =
  (* the paper's guard loops are 8 cycles per iteration on the M0; the
     board's cycle accounting must agree, or every ext_offset in
     Tables I-III would target the wrong instruction *)
  let board = Board.create (Board.Asm (Attack.single_loop_program While_not_a)) in
  let (_ : [ `Stopped of Machine.Exec.stop | `Timeout ]) =
    Board.run_plain ~max_cycles:200 board
  in
  match Board.trigger_edges board with
  | [ edge ] ->
    (* cycles after the trigger must be a multiple of the loop period *)
    let after = 200 - edge in
    let remainder = after mod Attack.loop_cycles in
    (* the run stops mid-loop at the cap; simulate exactly N loops by
       measuring pc recurrence instead: step until pc repeats twice *)
    ignore remainder;
    Board.reset board;
    ignore (Board.run_until_trigger ~max_cycles:100 board);
    let start_pc = ref None in
    let c0 = ref 0 and c1 = ref 0 in
    (try
       for _ = 1 to 64 do
         let pc = Board.pc board in
         (match !start_pc with
         | None ->
           start_pc := Some pc;
           c0 := Board.cycles board
         | Some p when p = pc && !c1 = 0 && Board.cycles board > !c0 ->
           c1 := Board.cycles board;
           raise Exit
         | Some _ -> ());
         ignore (Board.step board)
       done
     with Exit -> ());
    Alcotest.(check int) "8-cycle loop" Attack.loop_cycles (!c1 - !c0)
  | _ -> Alcotest.fail "expected one trigger edge"

(* --- paper-shape assertions (slow) --------------------------------------------- *)

let table1_shape () =
  let not_a = Attack.run_table1 While_not_a in
  let a = Attack.run_table1 While_a in
  let total (t : Attack.table1) =
    Array.fold_left (fun acc (c : Attack.cycle_stats) -> acc + c.successes) 0
      t.per_cycle
  in
  let t_not_a = total not_a and t_a = total a in
  Alcotest.(check bool)
    (Printf.sprintf "while(!a)=%d more glitchable than while(a)=%d" t_not_a t_a)
    true (t_not_a > t_a);
  (* overall success rate in the sub-percent regime the paper reports *)
  let rate = 100. *. float_of_int t_not_a /. float_of_int (8 * 9801) in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f%% in [0.2, 2.0]" rate)
    true
    (rate > 0.2 && rate < 2.0);
  (* successes exist at late (compare/branch) cycles *)
  Alcotest.(check bool) "branch cycles glitchable" true
    (not_a.per_cycle.(5).successes > 0 || not_a.per_cycle.(6).successes > 0)

let table2_partial_exceeds_full () =
  let t = Attack.run_table2 While_not_a in
  let partial = Array.fold_left ( + ) 0 t.partial in
  let full = Array.fold_left ( + ) 0 t.full in
  Alcotest.(check bool)
    (Printf.sprintf "partial %d > full %d (multi-glitch harder)" partial full)
    true
    (partial > 2 * full && full > 0)

(* Reproducibility pin: the experiments are fully deterministic, so the
   default-seed totals are exact. If the fault-model calibration changes
   intentionally, update these numbers AND the tables in EXPERIMENTS.md. *)
let table1_golden_totals () =
  let total guard =
    let t = Attack.run_table1 guard in
    Array.fold_left (fun acc (c : Attack.cycle_stats) -> acc + c.successes) 0
      t.per_cycle
  in
  Alcotest.(check int) "while(!a)" 460 (total While_not_a);
  Alcotest.(check int) "while(a)" 315 (total While_a);
  Alcotest.(check int) "while(a!=K)" 260 (total While_ne_const)

(* The window-duration and tie-break fixes turn out to be latent for all
   three tables, so these goldens match the pre-fix counts exactly: the
   guard loops spin with their branches TAKEN (a not-taken branch only
   appears after a successful glitch, once the armed window is already
   in the past), and Table II's two trigger edges sit a full loop apart,
   so no single instruction can overlap windows of both edges. The
   replay kernel is bit-identical by construction. Both claims are
   enforced by the differential/property tests above; these goldens pin
   the absolute numbers for EXPERIMENTS.md. *)
let table2_golden_totals () =
  let totals guard =
    let t = Attack.run_table2 guard in
    (Array.fold_left ( + ) 0 t.partial, Array.fold_left ( + ) 0 t.full)
  in
  Alcotest.(check (pair int int)) "while(!a)" (384, 91) (totals While_not_a);
  Alcotest.(check (pair int int)) "while(a)" (278, 53) (totals While_a);
  Alcotest.(check (pair int int)) "while(a!=K)" (221, 44) (totals While_ne_const)

let table3_golden_rows () =
  let t = Attack.run_table3 While_not_a in
  Alcotest.(check int) "attempts per window" 9801 t.attempts_per_window;
  Alcotest.(check int) "total" 249
    (List.fold_left (fun acc (_, s) -> acc + s) 0 t.windows);
  (* the first and last rows, pinned exactly *)
  Alcotest.(check int) "0-10" 13 (List.assoc 10 t.windows);
  Alcotest.(check int) "0-20" 34 (List.assoc 20 t.windows)

let tuner_finds_reliable_params () =
  let r = Tuner.search While_not_a in
  (match r.found with
  | Some (w, o, cycle) ->
    Alcotest.(check bool) "params in range" true
      (w >= -49 && w <= 49 && o >= -49 && o <= 49 && cycle >= 0 && cycle < 8);
    (* re-validate with fresh attempt noise: like the paper's "10 out
       of 10", the tuned point must be highly reliable, though attempt
       noise means a fresh batch can drop an attempt or two *)
    let board =
      Board.create (Board.Asm (Attack.single_loop_program While_not_a))
    in
    let ok = ref 0 in
    for nonce = 100 to 109 do
      let obs =
        Glitcher.run ~max_cycles:300 ~nonce board
          [ Glitcher.single ~width:w ~offset:o ~ext_offset:cycle ]
      in
      if Attack.escaped board obs then incr ok
    done;
    Alcotest.(check bool)
      (Printf.sprintf "reliable (%d/10 on fresh attempts)" !ok)
      true (!ok >= 7)
  | None -> Alcotest.fail "tuner found no 100% parameters");
  Alcotest.(check bool) "search did work" true (r.attempts > 1000)

let () =
  let props = List.map Qseed.to_alcotest [ prop_u01_range; prop_bits_range ] in
  Alcotest.run "hw"
    [ ("hashrand",
       Alcotest.test_case "deterministic" `Quick hashrand_deterministic :: props);
      ("susceptibility",
       [ Alcotest.test_case "landscape" `Quick landscape_properties;
         Alcotest.test_case "class factors (RQ4)" `Quick class_factors_ordered;
         Alcotest.test_case "1->0 bias" `Quick corrupt_word_biased;
         Alcotest.test_case "deterministic effects" `Quick roll_deterministic_effect ]);
      ("board",
       [ Alcotest.test_case "trigger and cycles" `Quick board_trigger_and_cycles;
         Alcotest.test_case "reset" `Quick board_reset_is_clean;
         Alcotest.test_case "double loop trigger" `Quick board_double_loop_triggers_twice;
         Alcotest.test_case "guard programs assemble" `Quick guard_programs_assemble;
         Alcotest.test_case "literal pools correct" `Quick literal_pool_offsets_correct ]);
      ("glitcher",
       [ Alcotest.test_case "deterministic" `Quick glitcher_deterministic;
         Alcotest.test_case "no schedule = plain run" `Quick
           glitcher_without_schedule_is_plain;
         Alcotest.test_case "forced skip escapes" `Quick forced_skip_escapes_loop;
         Alcotest.test_case "snapshot/restore" `Quick snapshot_restore_equivalence;
         Alcotest.test_case "instr duration" `Quick instr_duration_matches_execution;
         Qseed.to_alcotest prop_replay_equiv_reset;
         Alcotest.test_case "sweep replay differential" `Quick
           sweep_replay_differential;
         Alcotest.test_case "tie-break absolute" `Quick
           tie_break_uses_absolute_cycles;
         Alcotest.test_case "not-taken branch duration" `Quick
           overlap_uses_actual_duration;
         Alcotest.test_case "second trigger" `Quick second_trigger_schedules;
         Alcotest.test_case "loop cycle accounting" `Quick loop_takes_eight_cycles ]);
      ("paper-shapes",
       [ Alcotest.test_case "table 1" `Slow table1_shape;
         Alcotest.test_case "table 1 golden totals" `Slow table1_golden_totals;
         Alcotest.test_case "table 2 golden totals" `Slow table2_golden_totals;
         Alcotest.test_case "table 3 golden rows" `Slow table3_golden_rows;
         Alcotest.test_case "table 2" `Slow table2_partial_exceeds_full;
         Alcotest.test_case "tuner" `Slow tuner_finds_reliable_params ]) ]
