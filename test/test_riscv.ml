(* Tests for the RV32I substrate: known encodings from the unprivileged
   spec, codec round-trips, executor semantics, and the cross-ISA
   glitch campaign. *)

open Riscv

let check_word = Alcotest.(check int)

(* --- known encodings ----------------------------------------------------- *)

let known_encodings () =
  let cases =
    [ (Instr.nop, 0x00000013) (* addi x0, x0, 0 *);
      (Instr.Op_imm (ADDI, 5, 0, 173), 0x0AD00293);
      (Instr.Lui (1, 0xDEAD000 lsl 4), 0xDEAD00B7);
      (Instr.Jal (1, 8), 0x008000EF);
      (Instr.Jalr (0, 1, 0), 0x00008067) (* ret *);
      (Instr.Branch (BEQ, 10, 11, 8), 0x00B50463);
      (Instr.Branch (BNE, 10, 11, -4), 0xFEB51EE3);
      (Instr.Load (LW, 6, 2, 16), 0x01012303);
      (Instr.Store (SW, 2, 6, 16), 0x00612823);
      (Instr.Op (ADD, 3, 1, 2), 0x002081B3);
      (Instr.Op (SUB, 3, 1, 2), 0x402081B3);
      (Instr.Op_imm (SRAI, 4, 4, 3), 0x40325213);
      (Instr.Ebreak, 0x00100073);
      (Instr.Ecall, 0x00000073) ]
  in
  List.iter
    (fun (i, expected) ->
      check_word (Instr.to_string i) expected (Codec.encode i);
      Alcotest.(check string)
        (Printf.sprintf "decode 0x%08x" expected)
        (Instr.to_string i)
        (Instr.to_string (Codec.decode expected)))
    cases

let zero_and_ones_are_illegal () =
  (* the spec reserves both patterns as illegal — the built-in version
     of the paper's proposed ISA hardening *)
  (match Codec.decode 0 with
  | Instr.Undefined 0 -> ()
  | i -> Alcotest.fail ("0x00000000 decoded to " ^ Instr.to_string i));
  match Codec.decode 0xFFFFFFFF with
  | Instr.Undefined _ -> ()
  | i -> Alcotest.fail ("0xFFFFFFFF decoded to " ^ Instr.to_string i)

(* decode is total and re-encoding a defined decoding is the identity *)
let prop_word_identity =
  QCheck.Test.make ~name:"encode (decode w) = w on defined words" ~count:20000
    (QCheck.make
       QCheck.Gen.(map (fun x -> x land 0xFFFFFFFF) (int_bound max_int)))
    (fun w ->
      match Codec.decode w with
      | Instr.Undefined w' -> w' = w
      | i -> Codec.encode i = w)

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm12 = int_range (-2048) 2047 in
  oneof
    [ (let* rd = reg and* rs1 = reg and* imm = imm12 in
       let* op =
         oneofl Instr.[ ADDI; SLTI; SLTIU; XORI; ORI; ANDI ]
       in
       return (Instr.Op_imm (op, rd, rs1, imm)));
      (let* rd = reg and* rs1 = reg and* sh = int_range 0 31 in
       let* op = oneofl Instr.[ SLLI; SRLI; SRAI ] in
       return (Instr.Op_imm (op, rd, rs1, sh)));
      (let* rd = reg and* rs1 = reg and* rs2 = reg in
       let* op =
         oneofl Instr.[ ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND ]
       in
       return (Instr.Op (op, rd, rs1, rs2)));
      (let* cond = oneofl Instr.branch_conds and* rs1 = reg and* rs2 = reg
       and* off = int_range (-2048) 2047 in
       return (Instr.Branch (cond, rs1, rs2, off * 2)));
      (let* rd = reg and* imm = int_range 0 0xFFFFF in
       oneofl [ Instr.Lui (rd, imm lsl 12); Instr.Auipc (rd, imm lsl 12) ]);
      (let* rd = reg and* off = int_range (-1000) 1000 in
       return (Instr.Jal (rd, off * 2)));
      (let* rd = reg and* rs1 = reg and* imm = imm12 in
       return (Instr.Jalr (rd, rs1, imm)));
      (let* w = oneofl Instr.[ LB; LH; LW; LBU; LHU ] and* rd = reg
       and* rs1 = reg and* imm = imm12 in
       return (Instr.Load (w, rd, rs1, imm)));
      (let* w = oneofl Instr.[ SB; SH; SW ] and* rs1 = reg and* rs2 = reg
       and* imm = imm12 in
       return (Instr.Store (w, rs1, rs2, imm))) ]

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:3000
    (QCheck.make ~print:Instr.to_string gen_instr)
    (fun i -> Codec.decode (Codec.encode i) = i)

(* --- executor --------------------------------------------------------------- *)

let run_program ?(sp = 0x200003F0) instrs =
  let mem = Machine.Memory.create () in
  Machine.Memory.map mem ~addr:0x08000000 ~size:0x1000;
  Machine.Memory.map mem ~addr:0x20000000 ~size:0x400;
  List.iteri
    (fun i instr ->
      match
        Machine.Memory.write_u32 mem (0x08000000 + (4 * i)) (Codec.encode instr)
      with
      | Ok () -> ()
      | Error _ -> assert false)
    instrs;
  let cpu = Exec.create_cpu ~sp ~pc:0x08000000 () in
  let stop = Exec.run ~max_steps:1000 mem cpu in
  (stop, cpu)

let exec_arithmetic () =
  let stop, cpu =
    run_program
      [ Instr.Op_imm (ADDI, 1, 0, 40);
        Instr.Op_imm (ADDI, 2, 0, 2);
        Instr.Op (ADD, 3, 1, 2);
        Instr.Op (SUB, 4, 1, 2);
        Instr.Op (SLT, 5, 2, 1);
        Instr.Op_imm (SLTIU, 6, 0, -1) (* 0 < 0xFFFFFFFF unsigned *);
        Instr.Ebreak ]
  in
  Alcotest.(check bool) "halts" true (stop = Exec.Ebreak_hit);
  Alcotest.(check int) "add" 42 (Exec.get cpu 3);
  Alcotest.(check int) "sub" 38 (Exec.get cpu 4);
  Alcotest.(check int) "slt" 1 (Exec.get cpu 5);
  Alcotest.(check int) "sltiu -1" 1 (Exec.get cpu 6)

let exec_x0_hardwired () =
  let _, cpu =
    run_program [ Instr.Op_imm (ADDI, 0, 0, 99); Instr.Ebreak ]
  in
  Alcotest.(check int) "x0 stays zero" 0 (Exec.get cpu 0)

let exec_memory_and_signs () =
  let stop, cpu =
    run_program
      [ Instr.Op_imm (ADDI, 1, 0, -1);
        Instr.Store (SB, 2, 1, 0) (* store 0xFF byte at sp *);
        Instr.Load (LB, 3, 2, 0) (* sign-extends *);
        Instr.Load (LBU, 4, 2, 0) (* zero-extends *);
        Instr.Ebreak ]
  in
  Alcotest.(check bool) "halts" true (stop = Exec.Ebreak_hit);
  Alcotest.(check int) "lb" 0xFFFFFFFF (Exec.get cpu 3);
  Alcotest.(check int) "lbu" 0xFF (Exec.get cpu 4)

let exec_calls () =
  (* jal/jalr call and return *)
  let stop, cpu =
    run_program
      [ Instr.Op_imm (ADDI, 10, 0, 1);
        Instr.Jal (1, 12) (* call +12 *);
        Instr.Op_imm (ADDI, 10, 10, 100);
        Instr.Ebreak;
        Instr.Op_imm (ADDI, 10, 10, 10) (* callee *);
        Instr.Jalr (0, 1, 0) (* ret *) ]
  in
  Alcotest.(check bool) "halts" true (stop = Exec.Ebreak_hit);
  Alcotest.(check int) "1 + 10 + 100" 111 (Exec.get cpu 10)

let exec_faults () =
  let stop, _ =
    run_program [ Instr.Load (LW, 1, 0, 0); Instr.Ebreak ]
  in
  Alcotest.(check bool) "bad read at 0" true (stop = Exec.Bad_read 0);
  let stop, _ =
    run_program [ Instr.Jalr (0, 0, 0x122); Instr.Ebreak ]
  in
  (match stop with
  | Exec.Bad_fetch _ -> ()
  | s -> Alcotest.fail (Fmt.str "expected bad fetch, got %a" Exec.pp_stop s));
  let stop, _ = run_program [ Instr.Undefined 0 ] in
  Alcotest.(check bool) "illegal" true (stop = Exec.Invalid_instruction 0)

(* --- cross-ISA campaign -------------------------------------------------------- *)

let unglitched_branches_taken () =
  List.iter
    (fun case ->
      let config = Campaign.default_config Glitch_emu.Fault_model.And in
      let identity = 0xFFFFFFFF in
      match Campaign.run_one config case ~mask:identity with
      | Glitch_emu.Campaign.No_effect -> ()
      | cat ->
        Alcotest.fail
          (Printf.sprintf "%s unglitched: %s" case.Campaign.name
             (Glitch_emu.Campaign.category_name cat)))
    Campaign.all_conditional_branches

let campaign_deterministic () =
  let case = Campaign.conditional_branch Instr.BEQ in
  let config = Campaign.default_config Glitch_emu.Fault_model.And in
  let r1 = Campaign.run_case config case in
  let r2 = Campaign.run_case config case in
  Alcotest.(check bool) "same totals" true (r1.totals = r2.totals)

let high_weights_enumerated_exhaustively () =
  (* Weights whose whole population fits the 600-mask budget must be
     enumerated, not sampled with replacement: weight 31 has only
     C(32,31) = 32 masks, so sampling would count duplicates as
     independent trials. The per-weight totals must equal the population
     size, and the category counts must match running every mask of
     that weight once. *)
  let case = Campaign.conditional_branch Instr.BEQ in
  let config = Campaign.default_config Glitch_emu.Fault_model.And in
  let r = Campaign.run_case config case in
  List.iter
    (fun (weight, population) ->
      let total, counts = List.nth r.Campaign.by_weight weight in
      Alcotest.(check int)
        (Printf.sprintf "weight %d enumerated" weight)
        population total;
      let expected = Array.make (Array.length counts) 0 in
      Glitch_emu.Bitmask.iter_of_weight ~width:32 ~weight (fun mask ->
          let cat = Campaign.run_one config case ~mask in
          let i = Glitch_emu.Campaign.category_index cat in
          expected.(i) <- expected.(i) + 1);
      Alcotest.(check (array int))
        (Printf.sprintf "weight %d counts" weight)
        expected counts)
    [ (30, 496); (31, 32); (32, 1) ];
  (* a mid-range weight still samples exactly the configured budget *)
  let total, _ = List.nth r.Campaign.by_weight 16 in
  Alcotest.(check int) "weight 16 sampled" config.Campaign.samples_per_weight
    total

let riscv_encoding_more_fault_tolerant () =
  (* The headline cross-ISA result: under the same 1->0 fault model,
     RV32I branches are skipped an order of magnitude less often than
     Thumb branches, with most corruptions decoding as illegal. *)
  let thumb_rate =
    let case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
    let r =
      Glitch_emu.Campaign.run_case
        (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And)
        case
    in
    Glitch_emu.Campaign.category_percent r Glitch_emu.Campaign.Success
  in
  let case = Campaign.conditional_branch Instr.BEQ in
  let r =
    Campaign.run_case (Campaign.default_config Glitch_emu.Fault_model.And) case
  in
  let riscv_rate = Campaign.success_percent r in
  let invalid_rate =
    Campaign.category_percent r Glitch_emu.Campaign.Invalid_instruction
  in
  Alcotest.(check bool)
    (Printf.sprintf "thumb %.1f%% >> riscv %.1f%%" thumb_rate riscv_rate)
    true
    (thumb_rate > 3. *. riscv_rate);
  Alcotest.(check bool)
    (Printf.sprintf "invalid dominates (%.1f%%)" invalid_rate)
    true (invalid_rate > 50.)

let () =
  let props =
    List.map Qseed.to_alcotest [ prop_word_identity; prop_roundtrip ]
  in
  Alcotest.run "riscv"
    [ ("codec",
       Alcotest.test_case "known encodings" `Quick known_encodings
       :: Alcotest.test_case "0x0 illegal" `Quick zero_and_ones_are_illegal
       :: props);
      ("exec",
       [ Alcotest.test_case "arithmetic" `Quick exec_arithmetic;
         Alcotest.test_case "x0 hardwired" `Quick exec_x0_hardwired;
         Alcotest.test_case "memory and signs" `Quick exec_memory_and_signs;
         Alcotest.test_case "jal/jalr" `Quick exec_calls;
         Alcotest.test_case "faults" `Quick exec_faults ]);
      ("campaign",
       [ Alcotest.test_case "unglitched taken" `Quick unglitched_branches_taken;
         Alcotest.test_case "deterministic" `Slow campaign_deterministic;
         Alcotest.test_case "high weights exhaustive" `Slow
           high_weights_enumerated_exhaustively;
         Alcotest.test_case "cross-ISA headline" `Slow
           riscv_encoding_more_fault_tolerant ]) ]
