(* Tests for the stats utilities that every report and bench rides on. *)

let counter_basics () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.incr ~by:3 c "b";
  Alcotest.(check int) "a" 2 (Stats.Counter.get c "a");
  Alcotest.(check int) "b" 3 (Stats.Counter.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counter.get c "z");
  Alcotest.(check int) "total" 5 (Stats.Counter.total c);
  Alcotest.(check (list (pair string int)))
    "sorted by count desc"
    [ ("b", 3); ("a", 2) ]
    (Stats.Counter.to_list c)

let counter_ties_sort_by_key () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "zz";
  Stats.Counter.incr c "aa";
  Alcotest.(check (list (pair string int)))
    "key order on ties"
    [ ("aa", 1); ("zz", 1) ]
    (Stats.Counter.to_list c)

let rate_formatting () =
  let s p = Fmt.str "%a" Stats.Rate.pp_pct p in
  Alcotest.(check string) "zero" "0%" (s 0.);
  Alcotest.(check string) "large" "11.35%" (s 11.35);
  Alcotest.(check string) "small" "0.705%" (s 0.705);
  Alcotest.(check string) "tiny" "0.000928%" (s 0.000928);
  Alcotest.(check string) "count+pct" "585 (0.705%)"
    (Fmt.str "%a" Stats.Rate.pp_count_pct (585, 82959))

let rate_pct () =
  Alcotest.(check (float 1e-9)) "simple" 50. (Stats.Rate.pct ~num:1 ~den:2);
  Alcotest.(check (float 1e-9)) "den 0" 0. (Stats.Rate.pct ~num:5 ~den:0)

let perf_cycle_counters () =
  let (), p = Stats.Perf.time ~label:"t" ~jobs:1 ~items:10 (fun () -> ()) in
  (* without cycle counters the PERF line stays in its original shape *)
  Alcotest.(check bool) "no cycle keys by default" false
    (String.length (Stats.Perf.machine_line p)
    <> String.length
         (Stats.Perf.machine_line
            (Stats.Perf.with_cycles ~booted:0 ~replayed:0 p)));
  Alcotest.(check (float 1e-9)) "replay rate empty" 0. (Stats.Perf.replay_rate p);
  let p = Stats.Perf.with_cycles ~booted:25 ~replayed:75 p in
  Alcotest.(check (float 1e-9)) "replay rate" 0.75 (Stats.Perf.replay_rate p);
  let line = Stats.Perf.machine_line p in
  let has needle =
    let n = String.length needle and l = String.length line in
    let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "booted in PERF line" true (has "booted_cycles=25");
  Alcotest.(check bool) "replayed in PERF line" true (has "replayed_cycles=75");
  Alcotest.(check bool) "booted in json" true
    (let line = Stats.Perf.to_json p in
     let n = "\"booted_cycles\":25" in
     let rec go i =
       i + String.length n <= String.length line
       && (String.sub line i (String.length n) = n || go (i + 1))
     in
     go 0)

let contains haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let perf_pool_counters () =
  let (), p = Stats.Perf.time ~label:"t" ~jobs:4 ~items:10 (fun () -> ()) in
  (* the default (no pool accounting) keeps the PERF line in its
     original shape *)
  Alcotest.(check bool) "no pool keys by default" false
    (contains (Stats.Perf.machine_line p) "wait_s=");
  let p = Stats.Perf.with_pool_stats ~wait_s:1.25 ~utilization:0.75 p in
  let line = Stats.Perf.machine_line p in
  Alcotest.(check bool) "wait in PERF line" true (contains line "wait_s=1.250");
  Alcotest.(check bool) "utilization in PERF line" true
    (contains line "utilization=0.7500");
  let json = Stats.Perf.to_json p in
  Alcotest.(check bool) "wait in json" true (contains json "\"wait_s\":1.250");
  Alcotest.(check bool) "utilization in json" true
    (contains json "\"utilization\":0.7500")

let table_layout () =
  let out =
    Stats.Table.render ~header:[ "A"; "Blong"; "C" ]
      [ [ "aaaa"; "b"; "c" ]; [ "x" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all rows align: columns padded to widest member *)
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "rule as wide as header" true
      (String.length rule >= String.length header - 2)
  | _ -> Alcotest.fail "missing lines");
  (* short rows padded, no exception *)
  Alcotest.(check bool) "contains cells" true
    (String.length out > 0)

let () =
  Alcotest.run "stats"
    [ ("counter",
       [ Alcotest.test_case "basics" `Quick counter_basics;
         Alcotest.test_case "tie order" `Quick counter_ties_sort_by_key ]);
      ("rate",
       [ Alcotest.test_case "formatting" `Quick rate_formatting;
         Alcotest.test_case "pct" `Quick rate_pct ]);
      ("perf",
       [ Alcotest.test_case "cycle counters" `Quick perf_cycle_counters;
         Alcotest.test_case "pool counters" `Quick perf_pool_counters ]);
      ("table", [ Alcotest.test_case "layout" `Quick table_layout ]) ]
