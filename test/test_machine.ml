(* Tests for the machine substrate: memory mapping/faults, CPU flag
   semantics, executor behaviour on full programs, and the outcome
   taxonomy used by the glitch emulator. *)

open Machine

let stop_testable = Alcotest.testable Exec.pp_stop Exec.stop_equal

(* Run an assembly snippet to completion and return (stop, cpu). *)
let run_asm ?max_steps src =
  let t = Loader.load_asm src in
  let stop = Exec.run ?max_steps t.mem t.cpu in
  (stop, t.cpu, t)

let reg cpu r = Cpu.get cpu (Thumb.Reg.of_int r)

(* --- memory ------------------------------------------------------------- *)

let memory_mapping () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:0x100;
  Alcotest.(check bool) "mapped" true (Memory.is_mapped m 0x10FF);
  Alcotest.(check bool) "not mapped" false (Memory.is_mapped m 0x1100);
  (match Memory.write_u32 m 0x1000 0xDEADBEEF with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed");
  (match Memory.read_u32 m 0x1000 with
  | Ok v -> Alcotest.(check int) "roundtrip" 0xDEADBEEF v
  | Error _ -> Alcotest.fail "read failed");
  (match Memory.read_u16 m 0x1001 with
  | Error (Memory.Unaligned _) -> ()
  | Ok _ | Error (Memory.Unmapped _) -> Alcotest.fail "expected unaligned fault");
  match Memory.read_u8 m 0x2000 with
  | Error (Memory.Unmapped 0x2000) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unmapped fault"

let memory_overlap_rejected () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:0x100;
  match Memory.map m ~addr:0x10F0 ~size:0x100 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlap must be rejected"

let memory_device () =
  let m = Memory.create () in
  let last = ref (-1) in
  Memory.add_device m ~addr:0x4800 ~size:4
    ~read:(fun off -> off + 1)
    ~write:(fun off v -> last := (off lsl 8) lor v);
  (match Memory.write_u8 m 0x4802 0xAB with
  | Ok () -> Alcotest.(check int) "device write" 0x2AB !last
  | Error _ -> Alcotest.fail "device write failed");
  match Memory.read_u8 m 0x4803 with
  | Ok v -> Alcotest.(check int) "device read" 4 v
  | Error _ -> Alcotest.fail "device read failed"

let memory_little_endian () =
  let m = Memory.create () in
  Memory.map m ~addr:0 ~size:16;
  (match Memory.write_u32 m 0 0x11223344 with Ok () -> () | Error _ -> assert false);
  match Memory.read_u8 m 0 with
  | Ok v -> Alcotest.(check int) "lsb first" 0x44 v
  | Error _ -> Alcotest.fail "read failed"

(* The unboxed accessors must agree with the result API in every
   regime: cached-region fast path, region-straddling slow path, device
   dispatch, and faults raised as [Memory.Fault]. *)

let memory_exn_api () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:0x100;
  Memory.write_u32_exn m 0x1000 0xDEADBEEF;
  Alcotest.(check int) "u32 roundtrip" 0xDEADBEEF (Memory.read_u32_exn m 0x1000);
  Alcotest.(check int) "u16 low half" 0xBEEF (Memory.read_u16_exn m 0x1000);
  Memory.write_u16_exn m 0x1002 0x1234;
  Alcotest.(check int) "u16 patch" 0x1234BEEF (Memory.read_u32_exn m 0x1000);
  (match Memory.read_u16_exn m 0x1001 with
  | exception Memory.Fault (Memory.Unaligned 0x1001) -> ()
  | _ -> Alcotest.fail "expected unaligned Fault");
  match Memory.read_u8_exn m 0x2000 with
  | exception Memory.Fault (Memory.Unmapped 0x2000) -> ()
  | _ -> Alcotest.fail "expected unmapped Fault"

let memory_straddles_regions () =
  (* An aligned word access spanning two adjacent RAM regions must fall
     back to the per-byte path and still succeed. *)
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:2;
  Memory.map m ~addr:0x1002 ~size:4;
  Memory.write_u32_exn m 0x1000 0xCAFEF00D;
  Alcotest.(check int) "straddling word" 0xCAFEF00D (Memory.read_u32_exn m 0x1000);
  Alcotest.(check int) "low region byte" 0x0D (Memory.read_u8_exn m 0x1000);
  Alcotest.(check int) "high region byte" 0xCA (Memory.read_u8_exn m 0x1003);
  (* a word whose tail is unmapped faults with the first missing byte *)
  match Memory.read_u32_exn m 0x1004 with
  | exception Memory.Fault (Memory.Unmapped 0x1006) -> ()
  | _ -> Alcotest.fail "expected fault at first unmapped byte"

let memory_cache_tracks_regions () =
  (* Alternating between regions (and a device) must never let the
     last-hit cache serve stale mappings. *)
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:16;
  Memory.map m ~addr:0x3000 ~size:16;
  let written = ref [] in
  Memory.add_device m ~addr:0x5000 ~size:4
    ~read:(fun off -> 0x40 + off)
    ~write:(fun off v -> written := (off, v) :: !written);
  Memory.write_u16_exn m 0x1000 0x1111;
  Memory.write_u16_exn m 0x3000 0x3333;
  Memory.write_u8_exn m 0x5001 0xAB;
  Alcotest.(check int) "region A" 0x1111 (Memory.read_u16_exn m 0x1000);
  Alcotest.(check int) "region B" 0x3333 (Memory.read_u16_exn m 0x3000);
  Alcotest.(check int) "device read" 0x42 (Memory.read_u8_exn m 0x5002);
  Alcotest.(check (list (pair int int))) "device write seen" [ (1, 0xAB) ]
    !written

let memory_load_bytes_blit () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:8;
  Memory.load_bytes m ~addr:0x1004 (Bytes.of_string "\x0D\xF0\xFE\xCA");
  Alcotest.(check int) "blit contents" 0xCAFEF00D (Memory.read_u32_exn m 0x1004)

(* --- flag semantics ------------------------------------------------------ *)

let flags_add_sub () =
  let stop, cpu, _ = run_asm "movs r0, #0\nsubs r0, #1\nbkpt #0" in
  Alcotest.check stop_testable "halts" (Exec.Breakpoint 0) stop;
  Alcotest.(check int) "0 - 1 wraps" 0xFFFFFFFF (reg cpu 0);
  Alcotest.(check bool) "N set" true cpu.n;
  Alcotest.(check bool) "C clear (borrow)" false cpu.c;
  let _, cpu, _ = run_asm "movs r0, #5\nsubs r0, #5\nbkpt #0" in
  Alcotest.(check bool) "Z set" true cpu.z;
  Alcotest.(check bool) "C set (no borrow)" true cpu.c

let flags_overflow () =
  (* 0x7FFFFFFF + 1 overflows: build 0x7FFFFFFF as (1 << 31) - 1. *)
  let src =
    "movs r0, #1\nlsls r0, r0, #31\nsubs r0, #1\nmovs r1, #1\nadds r0, r0, r1\nbkpt #0"
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check bool) "V set" true cpu.v;
  Alcotest.(check bool) "N set" true cpu.n

let flags_logical () =
  let _, cpu, _ = run_asm "movs r0, #0xF0\nmovs r1, #0x0F\ntst r0, r1\nbkpt #0" in
  Alcotest.(check bool) "Z set by tst" true cpu.z

let shift_carry () =
  let _, cpu, _ = run_asm "movs r0, #3\nlsrs r0, r0, #1\nbkpt #0" in
  Alcotest.(check int) "3 >> 1" 1 (reg cpu 0);
  Alcotest.(check bool) "carry = shifted-out bit" true cpu.c

(* --- conditional branch semantics --------------------------------------- *)

let cond_branches () =
  (* For every condition, run: cmp that makes it true, branch, marker. *)
  let check_taken name src expected =
    let _, cpu, _ = run_asm src in
    Alcotest.(check int) name expected (reg cpu 0)
  in
  check_taken "beq taken"
    "movs r1, #4\ncmp r1, #4\nbeq yes\nmovs r0, #1\nbkpt #0\nyes:\nmovs r0, #2\nbkpt #0"
    2;
  check_taken "bne not taken"
    "movs r1, #4\ncmp r1, #4\nbne yes\nmovs r0, #1\nbkpt #0\nyes:\nmovs r0, #2\nbkpt #0"
    1;
  check_taken "blt signed"
    "movs r1, #0\nsubs r1, #1\ncmp r1, #1\nblt yes\nmovs r0, #1\nbkpt #0\nyes:\nmovs r0, #2\nbkpt #0"
    2;
  check_taken "bhi unsigned"
    "movs r1, #0\nsubs r1, #1\ncmp r1, #1\nbhi yes\nmovs r0, #1\nbkpt #0\nyes:\nmovs r0, #2\nbkpt #0"
    2;
  check_taken "bge equal"
    "movs r1, #7\ncmp r1, #7\nbge yes\nmovs r0, #1\nbkpt #0\nyes:\nmovs r0, #2\nbkpt #0"
    2

(* --- memory instructions -------------------------------------------------- *)

let load_store_roundtrip () =
  let src =
    {|
      movs r0, #0xAB
      str  r0, [sp, #4]
      ldr  r1, [sp, #4]
      mov  r2, sp
      strb r0, [r2, #1]
      ldrb r3, [r2, #1]
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "word" 0xAB (reg cpu 1);
  Alcotest.(check int) "byte" 0xAB (reg cpu 3)

let push_pop_stack () =
  let src =
    {|
      movs r4, #1
      movs r5, #2
      push {r4, r5}
      movs r4, #0
      movs r5, #0
      pop  {r4, r5}
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "r4 restored" 1 (reg cpu 4);
  Alcotest.(check int) "r5 restored" 2 (reg cpu 5)

let bl_and_bx () =
  let src =
    {|
      movs r0, #0
      bl   callee
      adds r0, #10
      bkpt #0
    callee:
      adds r0, #1
      bx   lr
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "call then return" 11 (reg cpu 0)

let sign_extension () =
  let src =
    {|
      movs r0, #0xFF
      mov  r2, sp
      strb r0, [r2, #0]
      movs r1, #0
      ldsb r3, [r2, r1]
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "ldsb sign extends" 0xFFFFFFFF (reg cpu 3)

(* --- outcome taxonomy ------------------------------------------------------ *)

let bad_read_reported () =
  let stop, _, _ = run_asm "movs r0, #0\nldr r1, [r0, #0]\nbkpt #0" in
  Alcotest.check stop_testable "bad read at 0" (Exec.Bad_read 0) stop

let bad_fetch_reported () =
  (* BX to an unmapped (thumb) address, then fetch faults there. *)
  let stop, _, _ = run_asm "movs r0, #5\nbx r0\nbkpt #0" in
  Alcotest.check stop_testable "bad fetch" (Exec.Bad_fetch 4) stop

let invalid_instruction_reported () =
  let t = Loader.load_instrs [ Thumb.Instr.Undefined 0xE801 ] in
  let stop = Exec.run t.mem t.cpu in
  Alcotest.check stop_testable "invalid" (Exec.Invalid_instruction 0xE801) stop

let step_limit_reported () =
  let stop, _, _ = run_asm ~max_steps:50 "loop:\nb loop" in
  Alcotest.check stop_testable "spin" Exec.Step_limit stop

let paper_while_not_a_loops_forever () =
  (* Table I(a)'s guard: while(!a) with a = 0 never exits un-glitched. *)
  let src =
    "movs r3, #0\nstr r3, [sp, #4]\nloop:\nldr r3, [sp, #4]\ncmp r3, #0\nbeq loop\nmovs r0, #0xAA\nbkpt #0"
  in
  let stop, _, _ = run_asm ~max_steps:1000 src in
  Alcotest.check stop_testable "infinite loop" Exec.Step_limit stop

let glitched_beq_exits_loop () =
  (* Corrupt the beq into a nop (the paper's headline effect) and the
     loop exits with the success marker. *)
  let src =
    "movs r3, #0\nstr r3, [sp, #4]\nloop:\nldr r3, [sp, #4]\ncmp r3, #0\nbeq loop\nmovs r0, #0xAA\nbkpt #0"
  in
  let t = Loader.load_asm src in
  Loader.patch_word t ~index:4 0x0000 (* beq -> movs r0, r0 *);
  let stop = Exec.run ~max_steps:1000 t.mem t.cpu in
  Alcotest.check stop_testable "exits" (Exec.Breakpoint 0) stop;
  Alcotest.(check int) "success marker" 0xAA (reg t.cpu 0)

let fetch_override () =
  (* Transient corruption via the fetch hook: memory is untouched. *)
  let src = "movs r0, #1\nbkpt #0" in
  let t = Loader.load_asm src in
  let base = t.layout.flash_base in
  let fetch addr = if addr = base then Some 0x2005 (* movs r0, #5 *) else None in
  let stop = Exec.run ~fetch ~max_steps:10 t.mem t.cpu in
  Alcotest.check stop_testable "halts" (Exec.Breakpoint 0) stop;
  Alcotest.(check int) "override used" 5 (reg t.cpu 0);
  Alcotest.(check int) "flash unmodified" 0x2001 (Loader.code_word t ~index:0)

(* --- wider ALU semantics --------------------------------------------------- *)

let carry_chain_adc () =
  (* 64-bit add via ADDS/ADCS: 0xFFFFFFFF + 1 carries into the high word *)
  let src =
    {|
      movs r0, #0
      mvns r0, r0        ; r0 = 0xFFFFFFFF (low a)
      movs r1, #2        ; high a
      movs r2, #1        ; low b
      movs r3, #3        ; high b
      adds r0, r0, r2    ; low sum, sets carry
      adcs r1, r3        ; high sum + carry
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "low word wraps" 0 (reg cpu 0);
  Alcotest.(check int) "carry propagated" 6 (reg cpu 1)

let sbc_borrow () =
  let src =
    {|
      movs r0, #0
      movs r1, #1
      subs r0, r0, r1    ; 0 - 1: borrow (C clear)
      movs r2, #5
      movs r3, #2
      sbcs r2, r3        ; 5 - 2 - borrow = 2
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "sbc applies borrow" 2 (reg cpu 2)

let rotate_and_bic () =
  let src =
    {|
      movs r0, #0x81
      movs r1, #4
      rors r0, r1        ; rotate right by 4
      movs r2, #0xFF
      movs r3, #0x0F
      bics r2, r3        ; 0xFF & ~0x0F
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "ror" 0x10000008 (reg cpu 0);
  Alcotest.(check int) "bic" 0xF0 (reg cpu 2)

let mul_and_cmn () =
  let _, cpu, _ =
    run_asm "movs r0, #7
movs r1, #6
muls r0, r1
movs r2, #0
cmn r2, r2
bkpt #0"
  in
  Alcotest.(check int) "mul" 42 (reg cpu 0);
  Alcotest.(check bool) "cmn 0 0 sets Z" true cpu.z

let stmia_ldmia_roundtrip () =
  let src =
    {|
      movs r0, #1
      movs r1, #2
      movs r2, #3
      mov  r4, sp
      subs r4, #64
      movs r5, #0
      movs r5, r4        ; base copy
      stmia r4!, {r0, r1, r2}
      movs r0, #0
      movs r1, #0
      movs r2, #0
      ldmia r5!, {r0, r1, r2}
      bkpt #0
    |}
  in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "r0" 1 (reg cpu 0);
  Alcotest.(check int) "r1" 2 (reg cpu 1);
  Alcotest.(check int) "r2" 3 (reg cpu 2);
  (* writeback: both bases advanced by 12 *)
  Alcotest.(check int) "writeback" (reg cpu 5) (reg cpu 4 - 0 + 0) |> ignore;
  Alcotest.(check int) "bases advanced equally" (reg cpu 4) (reg cpu 5)

let ldr_pc_aligns () =
  (* LDR Rd, [PC, #imm] aligns the base down to a word boundary *)
  let src = "ldr r0, [pc, #4]\nbkpt #0\nnop\nnop\nlit:\n.word 0xCAFEF00D" in
  let _, cpu, _ = run_asm src in
  Alcotest.(check int) "pc-relative literal" 0xCAFEF00D (reg cpu 0)

let hi_add_pc_branches () =
  (* ADD PC, Rm acts as an indirect branch *)
  let src =
    {|
      movs r0, #2
      add  pc, r0        ; skip the next two halfwords
      bkpt #1
      bkpt #2
      movs r1, #99
      bkpt #0
    |}
  in
  let stop, cpu, _ = run_asm src in
  Alcotest.check stop_testable "lands past the traps" (Exec.Breakpoint 0) stop;
  Alcotest.(check int) "marker" 99 (reg cpu 1)

(* Robustness: no decoded instruction may crash the emulator, whatever
   the machine state. Outcomes must always be a step_result. *)
let prop_step_total =
  QCheck.Test.make ~name:"executor is total over random words" ~count:2000
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (word, r0) ->
      let t =
        Loader.load_instrs [ Thumb.Decode.instr word; Thumb.Instr.Bkpt 0 ]
      in
      Cpu.set t.cpu Thumb.Reg.r0 r0;
      match Exec.run ~max_steps:16 t.mem t.cpu with
      | (_ : Exec.stop) -> true)

(* Branch target arithmetic: pc' = pc + 4 + 2*offset for taken branches. *)
let prop_branch_target =
  QCheck.Test.make ~name:"taken branch target arithmetic" ~count:200
    (QCheck.int_range 1 100)
    (fun off ->
      let t =
        Loader.load_instrs
          [ Thumb.Instr.Imm (MOVi, Thumb.Reg.r0, 0);
            Thumb.Instr.Imm (CMPi, Thumb.Reg.r0, 0);
            Thumb.Instr.B_cond (EQ, off) ]
      in
      (* step three times; after the branch, pc = base + 4 + 4 + 2*off *)
      let base = t.layout.flash_base in
      ignore (Exec.step t.mem t.cpu);
      ignore (Exec.step t.mem t.cpu);
      ignore (Exec.step t.mem t.cpu);
      Cpu.pc t.cpu = base + 4 + 4 + (2 * off))

(* --- property: ADD/SUB flags agree with wide-integer reference ---------- *)

let prop_adds_flags =
  QCheck.Test.make ~name:"adds matches 64-bit reference" ~count:1000
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFF))
    (fun (a, b) ->
      (* movs r0, #lo; lsls to build a; adds r0, #b — then compare. *)
      let t = Loader.load_instrs
          Thumb.Instr.
            [ Imm (MOVi, Thumb.Reg.r0, (a lsr 8) land 0xFF);
              Shift (Lsl, Thumb.Reg.r0, Thumb.Reg.r0, 8);
              Imm (ADDi, Thumb.Reg.r0, a land 0xFF);
              Imm (ADDi, Thumb.Reg.r0, b);
              Bkpt 0 ]
      in
      let stop = Exec.run t.mem t.cpu in
      stop = Exec.Breakpoint 0
      && Cpu.get t.cpu Thumb.Reg.r0 = (a + b) land 0xFFFFFFFF
      && t.cpu.z = ((a + b) land 0xFFFFFFFF = 0)
      && t.cpu.n = ((a + b) land 0x80000000 <> 0))

let prop_cmp_eq_iff_equal =
  QCheck.Test.make ~name:"cmp sets Z iff operands equal" ~count:500
    QCheck.(pair (int_bound 0xFF) (int_bound 0xFF))
    (fun (a, b) ->
      let t = Loader.load_instrs
          Thumb.Instr.
            [ Imm (MOVi, Thumb.Reg.r0, a); Imm (MOVi, Thumb.Reg.r1, b);
              Alu (CMPr, Thumb.Reg.r0, Thumb.Reg.r1); Bkpt 0 ]
      in
      let (_ : Exec.stop) = Exec.run t.mem t.cpu in
      t.cpu.z = (a = b))

let () =
  let props =
    List.map Qseed.to_alcotest
      [ prop_adds_flags; prop_cmp_eq_iff_equal; prop_step_total;
        prop_branch_target ]
  in
  Alcotest.run "machine"
    [ ("memory",
       [ Alcotest.test_case "mapping and faults" `Quick memory_mapping;
         Alcotest.test_case "overlap rejected" `Quick memory_overlap_rejected;
         Alcotest.test_case "device region" `Quick memory_device;
         Alcotest.test_case "little endian" `Quick memory_little_endian;
         Alcotest.test_case "exn accessors" `Quick memory_exn_api;
         Alcotest.test_case "region straddling" `Quick memory_straddles_regions;
         Alcotest.test_case "cache tracks regions" `Quick memory_cache_tracks_regions;
         Alcotest.test_case "load_bytes blit" `Quick memory_load_bytes_blit ]);
      ("flags",
       [ Alcotest.test_case "add/sub carry-borrow" `Quick flags_add_sub;
         Alcotest.test_case "signed overflow" `Quick flags_overflow;
         Alcotest.test_case "logical ops" `Quick flags_logical;
         Alcotest.test_case "shift carry out" `Quick shift_carry ]);
      ("control-flow",
       [ Alcotest.test_case "conditional branches" `Quick cond_branches;
         Alcotest.test_case "bl/bx call and return" `Quick bl_and_bx ]);
      ("memory-instructions",
       [ Alcotest.test_case "load/store roundtrip" `Quick load_store_roundtrip;
         Alcotest.test_case "push/pop" `Quick push_pop_stack;
         Alcotest.test_case "sign extension" `Quick sign_extension;
         Alcotest.test_case "stmia/ldmia" `Quick stmia_ldmia_roundtrip;
         Alcotest.test_case "pc-relative literal" `Quick ldr_pc_aligns ]);
      ("alu-extended",
       [ Alcotest.test_case "adc carry chain" `Quick carry_chain_adc;
         Alcotest.test_case "sbc borrow" `Quick sbc_borrow;
         Alcotest.test_case "ror/bic" `Quick rotate_and_bic;
         Alcotest.test_case "mul/cmn" `Quick mul_and_cmn;
         Alcotest.test_case "add pc indirection" `Quick hi_add_pc_branches ]);
      ("outcomes",
       [ Alcotest.test_case "bad read" `Quick bad_read_reported;
         Alcotest.test_case "bad fetch" `Quick bad_fetch_reported;
         Alcotest.test_case "invalid instruction" `Quick invalid_instruction_reported;
         Alcotest.test_case "step limit" `Quick step_limit_reported;
         Alcotest.test_case "paper loop spins" `Quick paper_while_not_a_loops_forever;
         Alcotest.test_case "glitched beq exits" `Quick glitched_beq_exits_loop;
         Alcotest.test_case "fetch override" `Quick fetch_override ]);
      ("properties", props) ]
