(* A tour of the GlitchResistor compile pipeline: watch one source file
   pass through the ENUM rewriter and each IR pass, and diff the result.

     dune exec examples/defense_pipeline.exe *)

let source =
  {|
    enum door_state { LOCKED, UNLOCKED, JAMMED };

    volatile unsigned pin_ok = 0;
    volatile unsigned door = 0;

    int check_pin(void) {
      if (pin_ok == 1) { return UNLOCKED; }
      return LOCKED;
    }

    int main(void) {
      for (int tries = 0; tries < 3; tries = tries + 1) {
        if (check_pin() == UNLOCKED) {
          door = 1;
          return 0;
        }
      }
      return 1;
    }
  |}

let () =
  (* Stage 1: the source-to-source ENUM rewriter. *)
  let sema = Minic.Sema.check ~externs:Resistor.Driver.firmware_externs
      (Minic.Parser.program source)
  in
  let rewritten_ast, report = Resistor.Enum_rewriter.rewrite sema in
  Fmt.pr "=== After the ENUM rewriter (source-to-source) ===@.";
  (match report.rewritten with
  | [ (name, assignments) ] ->
    Fmt.pr "enum %s diversified (min pairwise Hamming distance %d):@." name
      (Resistor.Enum_rewriter.min_hamming_distance report);
    List.iter (fun (m, v) -> Fmt.pr "  %s = 0x%08X@." m v) assignments
  | _ -> Fmt.pr "nothing rewritten@.");
  Fmt.pr "@.%s@." (Minic.Pretty.to_string rewritten_ast);

  (* Stage 2: the IR before and after the defense passes. *)
  let show label config =
    let m, _ = Resistor.Driver.compile_modul config source in
    let main = Option.get (Ir.find_func m "main") in
    let check = Option.get (Ir.find_func m "check_pin") in
    Fmt.pr "=== %s: %d blocks in main, %d in check_pin ===@." label
      (List.length main.blocks) (List.length check.blocks);
    m
  in
  let plain = show "Undefended IR" Resistor.Config.none in
  let defended =
    show "Defended IR (All\\Delay)"
      (Resistor.Config.all_but_delay ~sensitive:[ "door" ] ())
  in
  Fmt.pr "@.check_pin after the passes:@.%a@." Ir.pp_func
    (Option.get (Ir.find_func defended "check_pin"));

  (* Stage 3: machine code sizes. *)
  let size m = List.assoc "total" (Lower.Layout.size_report (Lower.Layout.link m)) in
  Fmt.pr "Image size: %d bytes undefended, %d bytes defended@." (size plain)
    (size defended);

  (* Stage 4: behaviour is preserved. *)
  let run m =
    Ir.Interp.run m ~entry:"main" ~args:[]
      ~builtins:
        [ ("__trigger_high", fun _ -> 0); ("__trigger_low", fun _ -> 0);
          ("__halt", fun _ -> 0); ("__flash_commit", fun _ -> 0) ]
  in
  match (run plain, run defended) with
  | Ok a, Ok b ->
    Fmt.pr "Both return %a / %a - semantics preserved.@."
      Fmt.(option int) a.ret
      Fmt.(option int) b.ret
  | _ -> Fmt.pr "interpretation failed@."
