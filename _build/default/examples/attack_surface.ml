(* Visualise the glitch parameter plane: an ASCII heatmap of attack
   success over (width, offset), the search space the ChipWhisperer
   sweeps and the tuner hunts through.

     dune exec examples/attack_surface.exe *)

let () =
  Fmt.pr "Attack surface of while(!a) under single glitches at cycle 4@.";
  Fmt.pr "(the CMP), sampled every 2%% of width x offset:@.@.";
  let board =
    Hw.Board.create
      (Hw.Board.Asm (Hw.Attack.single_loop_program Hw.Attack.While_not_a))
  in
  (* sample the plane *)
  let hits = ref [] in
  let width = ref (-49) in
  while !width <= 49 do
    let row = Buffer.create 64 in
    let offset = ref (-49) in
    while !offset <= 49 do
      let obs =
        Hw.Glitcher.run ~max_cycles:250 board
          [ Hw.Glitcher.single ~width:!width ~offset:!offset ~ext_offset:4 ]
      in
      let escaped = Hw.Attack.escaped board obs in
      if escaped then hits := (!width, !offset) :: !hits;
      let e =
        Hw.Susceptibility.landscape Hw.Susceptibility.default ~width:!width
          ~offset:!offset
      in
      Buffer.add_char row
        (if escaped then '#'
         else if e > 1.0 then '+'
         else if e > 0.3 then 'o'
         else if e > 0.08 then '.'
         else ' ');
      offset := !offset + 2
    done;
    Fmt.pr "%4d |%s|@." !width (Buffer.contents row);
    width := !width + 2
  done;
  Fmt.pr "@.legend: '#' successful glitch, '+' near-deterministic core,@.";
  Fmt.pr "        'o' strong tail, '.' weak tail, ' ' dead zone@.";
  Fmt.pr "@.%d successful parameter points in this %d-point sample.@."
    (List.length !hits) (50 * 50);
  Fmt.pr
    "The sweet spots are tiny islands in a dead plane - this is why the@.";
  Fmt.pr
    "attacker's tuning phase (Section V-B) exists, and why randomized@.";
  Fmt.pr "delays that desynchronise the trigger are so disruptive.@."
