(* Quickstart: assemble a tiny guarded program, run it clean, then
   glitch it — the whole toolchain in thirty lines.

     dune exec examples/quickstart.exe *)

let guard =
  {|
    movs r0, #0          ; "signature valid" flag: 0 = invalid
  check:
    cmp  r0, #0
    beq  check           ; refuse to boot while the flag is 0
    movs r1, #0xAA       ; unreachable without a glitch
    bkpt #0
  |}

let () =
  (* 1. Assemble and inspect. *)
  let instrs = Thumb.Asm.assemble guard in
  Fmt.pr "Program (%d instructions):@." (List.length instrs);
  List.iteri
    (fun i ins ->
      Fmt.pr "  %2d: %04x  %a@." i (Thumb.Encode.instr ins) Thumb.Instr.pp ins)
    instrs;

  (* 2. Run it unmodified: the guard loops forever. *)
  let t = Machine.Loader.load_instrs instrs in
  (match Machine.Exec.run ~max_steps:1000 t.mem t.cpu with
  | Machine.Exec.Step_limit -> Fmt.pr "@.Clean run: stuck in the guard loop (good).@."
  | stop -> Fmt.pr "@.Clean run: unexpected stop %a@." Machine.Exec.pp_stop stop);

  (* 3. "Glitch" the conditional branch: clear all its bits, which turns
        BEQ into MOVS r0, r0 — the paper's headline corruption. *)
  let t = Machine.Loader.load_instrs instrs in
  Machine.Loader.patch_word t ~index:2 0x0000;
  (match Machine.Exec.run ~max_steps:1000 t.mem t.cpu with
  | Machine.Exec.Breakpoint 0 ->
    Fmt.pr "Glitched run: escaped! r1 = 0x%X@."
      (Machine.Cpu.get t.cpu Thumb.Reg.r1)
  | stop -> Fmt.pr "Glitched run: %a@." Machine.Exec.pp_stop stop);

  (* 4. How likely is that corruption? Ask the Figure 2 campaign. *)
  let case = Glitch_emu.Testcase.conditional_branch Thumb.Instr.EQ in
  let result =
    Glitch_emu.Campaign.run_case
      (Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And)
      case
  in
  Fmt.pr
    "@.Exhaustive AND-model campaign on BEQ: %.1f%% of all 65,536 bit-clear@."
    (Glitch_emu.Campaign.category_percent result Glitch_emu.Campaign.Success);
  Fmt.pr "masks skip the branch. Glitching is not exotic - defend your guards.@."
