(* Figure-2-style emulation campaign, focused: how does each fault model
   treat one instruction of your choice, and which corruptions actually
   cause the skip?

     dune exec examples/emulation_campaign.exe -- [beq|bne|blt|...] *)

let () =
  let cond =
    match Array.to_list Sys.argv with
    | _ :: name :: _ ->
      let name = String.lowercase_ascii name in
      (match
         List.find_opt
           (fun c -> "b" ^ Thumb.Instr.cond_name c = name)
           Thumb.Instr.all_conds
       with
      | Some c -> c
      | None ->
        Fmt.epr "unknown branch %S, using beq@." name;
        Thumb.Instr.EQ)
    | _ -> Thumb.Instr.EQ
  in
  let case = Glitch_emu.Testcase.conditional_branch cond in
  Fmt.pr "Test case %s (target word 0x%04X):@.%s@." case.name
    (Glitch_emu.Testcase.target_word case)
    case.source;

  (* Full campaign per fault model. *)
  List.iter
    (fun flip ->
      let config = Glitch_emu.Campaign.default_config flip in
      let r = Glitch_emu.Campaign.run_case config case in
      Fmt.pr "@.%s model:@." (Glitch_emu.Fault_model.name flip);
      List.iter
        (fun cat ->
          Fmt.pr "  %-20s %6.2f%%@."
            (Glitch_emu.Campaign.category_name cat)
            (Glitch_emu.Campaign.category_percent r cat))
        Glitch_emu.Campaign.categories;
      Fmt.pr "  success by flipped bits:";
      List.iter
        (fun (k, rate) -> if k > 0 && k <= 8 then Fmt.pr " %d:%.0f%%" k rate)
        (Glitch_emu.Campaign.success_rate_by_weight r);
      Fmt.pr "@.")
    Glitch_emu.Fault_model.all;

  (* Show the actual single-bit corruptions that skip the branch. *)
  Fmt.pr "@.Single 1->0 bit-clears of %s that skip it:@." case.name;
  let word = Glitch_emu.Testcase.target_word case in
  let config = Glitch_emu.Campaign.default_config Glitch_emu.Fault_model.And in
  for bit = 0 to 15 do
    if word land (1 lsl bit) <> 0 then begin
      let mask = 0xFFFF lxor (1 lsl bit) in
      let corrupted = word land mask in
      match Glitch_emu.Campaign.run_one config case ~mask with
      | Glitch_emu.Campaign.Success ->
        Fmt.pr "  bit %2d: 0x%04X becomes %a@." bit corrupted Thumb.Instr.pp
          (Thumb.Decode.instr corrupted)
      | _ -> ()
    end
  done
