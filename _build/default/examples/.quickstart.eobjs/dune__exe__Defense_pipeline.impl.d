examples/defense_pipeline.ml: Fmt Ir List Lower Minic Option Resistor
