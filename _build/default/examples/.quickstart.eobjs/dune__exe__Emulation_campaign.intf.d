examples/emulation_campaign.mli:
