examples/defense_pipeline.mli:
