examples/emulation_campaign.ml: Array Fmt Glitch_emu List String Sys Thumb
