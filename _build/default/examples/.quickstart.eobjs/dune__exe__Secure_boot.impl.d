examples/secure_boot.ml: Fmt Hw List Lower Resistor Stats
