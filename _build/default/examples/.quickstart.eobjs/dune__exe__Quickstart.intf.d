examples/quickstart.mli:
