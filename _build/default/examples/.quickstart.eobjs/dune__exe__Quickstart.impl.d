examples/quickstart.ml: Fmt Glitch_emu List Machine Thumb
