examples/attack_surface.ml: Buffer Fmt Hw List
