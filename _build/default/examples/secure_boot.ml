(* Secure boot, the paper's motivating scenario: a bootloader checks a
   firmware signature and refuses to boot when it is invalid. We attack
   the check with the simulated ChipWhisperer, undefended and then
   defended with GlitchResistor, and compare.

     dune exec examples/secure_boot.exe *)

(* A toy bootloader in Mini-C. The "signature check" folds the firmware
   words against the expected digest; on mismatch it spins in a recovery
   loop. An attacker wants to reach boot_firmware() anyway. *)
let bootloader =
  {|
    enum verdict { SIG_OK, SIG_BAD };

    volatile unsigned fw_word0 = 0xDEAD0001;
    volatile unsigned fw_word1 = 0xBEEF0002;
    volatile unsigned expected = 0x61B2C290;
    volatile unsigned attack_success = 0;

    int verify_signature(void) {
      unsigned digest = 0;
      digest = digest ^ (fw_word0 * 3);
      digest = digest ^ (fw_word1 * 5);
      if (digest == expected) { return SIG_OK; }
      return SIG_BAD;
    }

    int main(void) {
      __trigger_high();
      if (verify_signature() == SIG_OK) {
        attack_success = 170;   /* boot_firmware() */
        __halt();
      }
      while (1) { }             /* recovery: refuse to boot */
      return 0;
    }
  |}

let attack_image label image =
  let board = Hw.Board.create (Hw.Board.Image image) in
  if not (Hw.Board.run_until_trigger board) then failwith "no trigger";
  let snap = Hw.Board.snapshot board in
  let budget = Hw.Board.cycles board + 4000 in
  let successes = ref 0 and detections = ref 0 and attempts = ref 0 in
  for width = -49 to 49 do
    for offset = -49 to 49 do
      for ext_offset = 0 to 10 do
        incr attempts;
        let (_ : Hw.Glitcher.observation) =
          Hw.Glitcher.run ~max_cycles:budget ~from:snap board
            [ Hw.Glitcher.single ~width ~offset ~ext_offset ]
        in
        (match Hw.Board.read_global board "attack_success" with
        | Some 170 -> incr successes
        | Some _ | None ->
          if Resistor.Detect.detections (Hw.Board.read_global board) > 0 then
            incr detections)
      done
    done
  done;
  Fmt.pr "%-28s %7d attempts: %4d boots stolen (%a), %5d detections@." label
    !attempts !successes Stats.Rate.pp_pct
    (Stats.Rate.pct ~num:!successes ~den:!attempts)
    !detections

let () =
  Fmt.pr "Attacking the signature check with single glitches (11 cycles x@.";
  Fmt.pr "9,801 parameter points = 107,811 attempts per build):@.@.";
  let undefended = Resistor.Driver.compile Resistor.Config.none bootloader in
  attack_image "undefended" undefended.image;
  let defended =
    Resistor.Driver.compile
      (Resistor.Config.all_but_delay
         ~sensitive:[ "expected"; "attack_success" ] ())
      bootloader
  in
  attack_image "GlitchResistor (All\\Delay)" defended.image;
  let full =
    Resistor.Driver.compile
      (Resistor.Config.all ~sensitive:[ "expected"; "attack_success" ] ())
      bootloader
  in
  attack_image "GlitchResistor (All)" full.image;
  Fmt.pr "@.The defended builds also grew: undefended %d bytes, defended %d bytes@."
    (List.assoc "total" (Lower.Layout.size_report undefended.image))
    (List.assoc "total" (Lower.Layout.size_report full.image));
  Fmt.pr "- the price of making the attacker's search space collapse.@."
