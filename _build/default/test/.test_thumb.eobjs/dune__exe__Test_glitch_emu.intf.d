test/test_glitch_emu.mli:
