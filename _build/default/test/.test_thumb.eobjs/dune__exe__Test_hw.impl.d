test/test_hw.ml: Alcotest Array Attack Board Fmt Glitch_emu Glitcher Hashrand Hashtbl Hw List Machine Printf QCheck QCheck_alcotest Susceptibility Thumb Tuner
