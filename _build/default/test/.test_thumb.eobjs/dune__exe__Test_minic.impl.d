test/test_minic.ml: Alcotest Ast Fmt Lexer List Minic Parser Pretty Printf QCheck QCheck_alcotest Sema
