test/test_machine.ml: Alcotest Cpu Exec List Loader Machine Memory QCheck QCheck_alcotest Thumb
