test/test_riscv.ml: Alcotest Campaign Codec Exec Fmt Glitch_emu Instr List Machine Printf QCheck QCheck_alcotest Riscv Thumb
