test/test_resistor.mli:
