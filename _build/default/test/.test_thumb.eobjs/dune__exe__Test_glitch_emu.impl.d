test/test_glitch_emu.ml: Alcotest Array Bitmask Campaign Fault_model Glitch_emu Hashtbl List Printf QCheck QCheck_alcotest Testcase Thumb
