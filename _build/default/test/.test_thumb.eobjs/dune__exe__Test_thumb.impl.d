test/test_thumb.ml: Alcotest Asm Cycles Decode Encode Fmt Instr List Printf QCheck QCheck_alcotest Reg Thumb
