test/test_thumb.mli:
