test/test_lower.ml: Alcotest Array Fmt Ir List Lower Machine Option Printf QCheck QCheck_alcotest String Thumb
