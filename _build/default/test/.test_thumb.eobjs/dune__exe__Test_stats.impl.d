test/test_stats.ml: Alcotest Fmt List Stats String
