test/test_reedsolomon.ml: Alcotest Array Diversify Fmt Gf256 Gfpoly List Printf QCheck QCheck_alcotest Reedsolomon Rs
