test/test_reedsolomon.mli:
