test/test_resistor.ml: Alcotest Array Cfcss Config Delay Detect Driver Enum_rewriter Evaluate Firmware Integrity Ir List Loops Minic Option Overhead Printexc Printf Resistor String
