test/test_ir.ml: Alcotest Ir List Option Printf
