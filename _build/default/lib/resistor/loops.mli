(** Loop-guard duplication (Section VI-B): the branch-duplication pass
    protects the {e true} edge only, on the assumption that the false
    edge is the common, uninteresting path — which is exactly backwards
    for loop guards, where escaping the loop takes the false edge. This
    pass finds loop headers (conditional blocks targeted by a back edge)
    and adds the same complemented re-check to their false edge. *)

type report = { loops_instrumented : int }

val loop_headers : Ir.func -> Ir.block list
(** Blocks ending in a conditional branch that are the target of a back
    edge (an edge from a block at the same or later position). *)

val run : Config.reaction -> Ir.modul -> report
