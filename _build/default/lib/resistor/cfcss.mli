(** An executable related-work baseline: CFCSS-style control-flow
    checking by software signatures (Oh, Shirvani & McCluskey, 2002 —
    row "CFCSS" of Table VII).

    Every basic block gets a unique signature; a volatile runtime
    signature variable is checked on block entry against the signatures
    of the block's legal predecessors and then updated. Arriving from
    anywhere else (a corrupted branch target, a PC glitched into the
    middle of a function) is detected.

    The instructive limitation — the reason Table VII shows CFCSS
    lacking most of GlitchResistor's properties — is that a glitch
    flipping a branch's *direction* moves along a legal edge and is
    invisible to signature checking. The ablation benchmark
    demonstrates this: CFCSS alone barely reduces the guard-skipping
    success rate that GlitchResistor's duplication passes eliminate. *)

type report = {
  blocks_signed : int;
  checks_inserted : int;
}

val signature_global : string
(** ["__cfcss_G"], the volatile runtime signature variable. *)

val run : Config.reaction -> Ir.modul -> report
(** Instrument every function; detections call the same
    [__gr_detected] hook as GlitchResistor's own checks. *)

val compile : string -> Lower.Layout.image * report
(** Convenience: lower a Mini-C firmware with no GlitchResistor
    defenses, apply CFCSS, link. *)
