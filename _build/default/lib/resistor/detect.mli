(** The detection runtime (Section VI-B "Detection Reaction"): a module
    gains one counter global and one [__gr_detected] function that every
    injected check calls when a logically-impossible state is observed.
    The reaction is configurable; the paper leaves it to the developer
    (report, disable updates, destroy data, ...). *)

val detected_fn : string
(** ["__gr_detected"]. *)

val counter_global : string
(** ["__gr_detect_count"]; non-zero after any detection. *)

val ensure : Config.reaction -> Ir.modul -> unit
(** Add the counter and function to the module if not present. *)

val detections : (string -> int option) -> int
(** Given a global reader (e.g. [Hw.Board.read_global board]), the
    number of detections recorded. *)
