(** Non-trivial return codes (Section VI-A): functions that only ever
    return constants, whose results are used exclusively in comparisons
    against those same constants, get their return values (and the
    compared-against literals) replaced by Reed-Solomon diversified
    constants. A glitched return value then lands at Hamming distance
    >= 8 from every valid code instead of 1.

    Mirroring the paper's soundness restrictions, a function is skipped
    when any return is computed, or any caller stores/propagates the
    result beyond a direct constant comparison. *)

type report = {
  instrumented : (string * (int * int) list) list;
      (** function -> (original constant, diversified constant) *)
  considered : int;  (** functions examined *)
}

val run : Ir.modul -> report
