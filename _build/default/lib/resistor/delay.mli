(** Random timing injection (Section VI-B.1): a linear congruential
    generator (glibc's constants) seeds a short busy-wait that runs at
    the end of every basic block ending in a branch, de-synchronising
    any externally observable trigger from the security-critical
    instructions that follow it.

    [__gr_init] runs once at boot, {e before} anything else: it
    increments the persisted seed and commits it to flash (modelled by
    the runtime's [__flash_commit] busy-wait, whose ~178k cycles are
    Table IV's constant overhead), so repeated attempts against the same
    seed are useless. The delay and init routines are themselves subject
    to the other defenses — the driver runs this pass first. *)

type report = { sites : int  (** blocks that received a delay call *) }

val seed_global : string
val delay_fn : string
val init_fn : string

val run : scope:Config.delay_scope -> Ir.modul -> report
(** Adds the seed global, [__gr_delay], [__gr_init], the per-block
    calls, and the boot-time init call at the head of [main]. *)
