(** The ENUM Rewriter (Section VI-A): a source-to-source pass — the one
    defense that cannot run on IR, because enum identity is already
    erased to plain constants there.

    Only declarations whose members are {e all} uninitialized are
    rewritten (the paper's soundness condition: explicit values may
    encode protocol constants, and C's sequential-from-zero default may
    be assumed by the programmer, so both are left alone unless the
    developer opts in). Each rewritten member receives a Reed-Solomon
    diversified 32-bit constant with minimum pairwise Hamming
    distance 8. *)

type report = {
  rewritten : (string * (string * int) list) list;
      (** enum name -> member assignments *)
  skipped : string list;  (** enums left alone (had initializers) *)
}

val rewrite : Minic.Sema.t -> Minic.Ast.program * report
(** Rewrites the declarations in the checked program's AST. Because
    members are referenced by name everywhere else in the source, no
    other construct needs editing — exactly why the paper implements
    this as a clang rewriter. *)

val min_hamming_distance : report -> int
(** Smallest pairwise bit distance across every rewritten enum set
    ([max_int] if nothing was rewritten). *)
