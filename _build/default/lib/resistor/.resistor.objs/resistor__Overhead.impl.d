lib/resistor/overhead.ml: Config Driver Firmware Hw List Lower
