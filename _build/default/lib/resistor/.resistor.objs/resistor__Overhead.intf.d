lib/resistor/overhead.mli: Config
