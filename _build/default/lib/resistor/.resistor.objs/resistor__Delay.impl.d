lib/resistor/delay.ml: Config Detect Ir List Pass
