lib/resistor/evaluate.ml: Config Detect Driver Firmware Hw List Stats
