lib/resistor/config.mli:
