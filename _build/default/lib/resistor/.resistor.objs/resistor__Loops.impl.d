lib/resistor/loops.ml: Branches Detect Hashtbl Ir List Pass
