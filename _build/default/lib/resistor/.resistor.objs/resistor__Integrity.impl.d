lib/resistor/integrity.ml: Detect Ir List Option Pass
