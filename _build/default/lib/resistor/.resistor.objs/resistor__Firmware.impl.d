lib/resistor/firmware.ml:
