lib/resistor/returns.ml: Hashtbl Ir List Pass Reedsolomon
