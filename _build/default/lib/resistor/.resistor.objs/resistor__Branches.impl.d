lib/resistor/branches.ml: Detect Hashtbl Ir List Pass
