lib/resistor/driver.ml: Branches Config Delay Detect Enum_rewriter Integrity Ir List Loops Lower Minic Returns
