lib/resistor/detect.ml: Config Ir List
