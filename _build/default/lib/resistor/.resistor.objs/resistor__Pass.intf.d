lib/resistor/pass.mli: Hashtbl Ir
