lib/resistor/cfcss.ml: Config Detect Driver Hashtbl Ir List Lower Option Pass
