lib/resistor/enum_rewriter.ml: List Minic Reedsolomon
