lib/resistor/delay.mli: Config Ir
