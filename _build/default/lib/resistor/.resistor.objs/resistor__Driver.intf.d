lib/resistor/driver.mli: Branches Config Delay Enum_rewriter Integrity Ir Loops Lower Returns
