lib/resistor/evaluate.mli: Config Hw Lower
