lib/resistor/detect.mli: Config Ir
