lib/resistor/pass.ml: Fmt Hashtbl Ir List Printf String
