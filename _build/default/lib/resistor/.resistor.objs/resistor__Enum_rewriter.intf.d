lib/resistor/enum_rewriter.mli: Minic
