lib/resistor/config.ml: List String
