lib/resistor/branches.mli: Config Hashtbl Ir Pass
