lib/resistor/compare.ml: List Stats
