lib/resistor/compare.mli:
