lib/resistor/returns.mli: Ir
