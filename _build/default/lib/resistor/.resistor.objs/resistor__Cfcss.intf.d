lib/resistor/cfcss.mli: Config Ir Lower
