lib/resistor/firmware.mli:
