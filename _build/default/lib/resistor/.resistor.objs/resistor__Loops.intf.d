lib/resistor/loops.mli: Config Ir
