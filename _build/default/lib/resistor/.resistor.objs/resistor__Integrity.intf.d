lib/resistor/integrity.mli: Config Ir
