type report = {
  rewritten : (string * (string * int) list) list;
  skipped : string list;
}

let rewrite (sema : Minic.Sema.t) =
  let rewritten = ref [] and skipped = ref [] in
  let prog =
    List.map
      (fun item ->
        match item with
        | Minic.Ast.Ienum decl -> (
          match
            List.find_opt
              (fun (info : Minic.Sema.enum_info) -> info.decl.ename = decl.ename)
              sema.enums
          with
          | Some info when info.fully_uninitialized ->
            let assignments =
              List.mapi
                (fun i (member, _) ->
                  (member, Reedsolomon.Diversify.value ~width_bytes:4 (i + 1)))
                decl.members
            in
            rewritten := (decl.ename, assignments) :: !rewritten;
            Minic.Ast.Ienum
              { decl with
                members =
                  List.map
                    (fun (member, v) -> (member, Some (Minic.Ast.Int v)))
                    assignments }
          | Some _ | None ->
            skipped := decl.ename :: !skipped;
            item)
        | Minic.Ast.Iglobal _ | Minic.Ast.Ifunc _ -> item)
      sema.prog
  in
  (prog, { rewritten = List.rev !rewritten; skipped = List.rev !skipped })

let min_hamming_distance report =
  List.fold_left
    (fun acc (_, assignments) ->
      min acc (Reedsolomon.Diversify.min_pairwise_hamming (List.map snd assignments)))
    max_int report.rewritten
