(** Conditional-branch duplication (Section VI-B): on the {e true} edge
    of every conditional branch, re-verify the condition before letting
    execution continue. The re-check replicates the instructions that
    computed the comparison (volatile loads and call results excepted)
    and evaluates the {e complemented} form — [if (a == 5)] is
    re-checked as [if (~a == ~5)] — so the same unidirectional bit flips
    applied twice cannot satisfy both encodings. A failed re-check is a
    logical impossibility and calls the detector. *)

type report = { branches_instrumented : int }

val instrument_edge :
  Ir.func ->
  Pass.fresh ->
  (int, Ir.instr) Hashtbl.t ->
  block:Ir.block ->
  edge:[ `True | `False ] ->
  Ir.block list
(** Build the re-check on one edge of [block]'s conditional terminator
    (re-pointing the terminator); returns the new blocks to append.
    Shared with the loop-guard pass. *)

val run : Config.reaction -> Ir.modul -> report
