type report = { sites : int }

let seed_global = "__gr_seed"
let delay_fn = "__gr_delay"
let init_fn = "__gr_init"

(* glibc's LCG parameters. *)
let lcg_mul = 1103515245
let lcg_inc = 12345

let build_delay_fn () =
  let b = Ir.Builder.create ~fname:delay_fn ~params:[] ~returns_value:false in
  Ir.Builder.add_local b "n";
  let s = Ir.Builder.load ~volatile:true b (Ir.Global seed_global) in
  let m = Ir.Builder.binop b Ir.Mul s (Ir.Const lcg_mul) in
  let s' = Ir.Builder.binop b Ir.Add m (Ir.Const lcg_inc) in
  Ir.Builder.store ~volatile:true b (Ir.Global seed_global) s';
  let sh = Ir.Builder.binop b Ir.Lshr s' (Ir.Const 16) in
  (* 0-7 busy iterations; a mask keeps the generator division-free on a
     core with no hardware divide *)
  let n0 = Ir.Builder.binop b Ir.And sh (Ir.Const 7) in
  Ir.Builder.store b (Ir.Local "n") n0;
  Ir.Builder.br b "head";
  let _head = Ir.Builder.new_block b "head" in
  let nv = Ir.Builder.load b (Ir.Local "n") in
  let c = Ir.Builder.icmp b Ir.Ne nv (Ir.Const 0) in
  Ir.Builder.cond_br b c ~if_true:"body" ~if_false:"exit";
  let _body = Ir.Builder.new_block b "body" in
  let nv2 = Ir.Builder.load b (Ir.Local "n") in
  let d = Ir.Builder.binop b Ir.Sub nv2 (Ir.Const 1) in
  Ir.Builder.store b (Ir.Local "n") d;
  Ir.Builder.br b "head";
  let _exit = Ir.Builder.new_block b "exit" in
  Ir.Builder.ret b None;
  Ir.Builder.func b

let build_init_fn () =
  let b = Ir.Builder.create ~fname:init_fn ~params:[] ~returns_value:false in
  let s = Ir.Builder.load ~volatile:true b (Ir.Global seed_global) in
  let s' = Ir.Builder.binop b Ir.Add s (Ir.Const 1) in
  Ir.Builder.store ~volatile:true b (Ir.Global seed_global) s';
  ignore (Ir.Builder.call b "__flash_commit" []);
  Ir.Builder.ret b None;
  Ir.Builder.func b

let in_scope scope fname =
  match (scope : Config.delay_scope) with
  | Config.Delay_everywhere -> true
  | Config.Delay_opt_in names -> List.mem fname names
  | Config.Delay_opt_out names -> not (List.mem fname names)

let run ~scope (m : Ir.modul) =
  if Ir.find_global m seed_global = None then
    m.globals <-
      m.globals
      @ [ { Ir.gname = seed_global; init = 0x20210524; volatile = true;
            sensitive = false } ];
  if not (List.mem "__flash_commit" m.externs) then
    m.externs <- "__flash_commit" :: m.externs;
  if Ir.find_func m delay_fn = None then m.funcs <- m.funcs @ [ build_delay_fn () ];
  if Ir.find_func m init_fn = None then m.funcs <- m.funcs @ [ build_init_fn () ];
  let runtime = [ delay_fn; init_fn; Detect.detected_fn ] in
  let sites = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if (not (List.mem f.fname runtime)) && in_scope scope f.fname then
        List.iter
          (fun (b : Ir.block) ->
            match b.term with
            | Ir.Br _ | Ir.Cond_br _ | Ir.Switch _ ->
              (* the paper: every block ending in a BranchInst or
                 SwitchInst gets a delay *)
              incr sites;
              b.instrs <-
                b.instrs @ [ Ir.Call { dst = None; callee = delay_fn; args = [] } ]
            | Ir.Ret _ | Ir.Unreachable -> ())
          f.blocks)
    m.funcs;
  (* seed refresh before anything else at boot *)
  (match Ir.find_func m "main" with
  | Some main -> (
    match main.blocks with
    | entry :: _ ->
      entry.instrs <-
        Ir.Call { dst = None; callee = init_fn; args = [] } :: entry.instrs
    | [] -> ())
  | None -> ());
  Pass.verify_or_fail "delay" m;
  { sites = !sites }
