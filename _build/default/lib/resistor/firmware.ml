let sensitive_globals = [ "a"; "tick" ]
let attack_marker_global = "attack_success"
let attack_marker_value = 0xAA

(* Tables IV/V: a CubeMX-flavoured firmware. Boot initialises the
   (simulated) clock and UART through functions with constant return
   codes, calibrates a delay loop, then raises the trigger to mark
   boot-complete and falls into the tick loop. The success function is
   reachable only if the sensitive tick counter reads zero — designed to
   be impossible, exactly like the paper's evaluation firmware. *)
let boot_tick =
  {|
enum boot_status { BOOT_OK, BOOT_FAIL, CLOCK_READY, UART_READY };

volatile unsigned tick = 1;
volatile unsigned sys_clock = 0;
volatile unsigned uart_ready = 0;
volatile unsigned attack_success = 0;

int clock_init(void) {
  sys_clock = 48;
  return 42;
}

int uart_init(void) {
  uart_ready = 1;
  return 42;
}

int hal_init(void) {
  int calibrate = 0;
  for (int i = 0; i < 64; i = i + 1) {
    calibrate = calibrate + i;
  }
  if (clock_init() == 42) {
    if (uart_init() == 42) {
      return calibrate;
    }
  }
  return 0;
}

int check_tick(void) {
  if (tick == 0) { return BOOT_OK; }
  return BOOT_FAIL;
}

void success(void) {
  attack_success = 170;
}

int main(void) {
  int boot = hal_init();
  __trigger_high();
  while (1) {
    if (check_tick() == BOOT_OK) {
      success();
      __halt();
    }
    tick = tick + 1;
    if (tick == 0) { tick = 1; }
  }
  return boot;
}
|}

(* Table VI worst case: the most glitchable guard from Section V,
   compiled with the defenses. The volatile qualifier means a glitched
   first load can satisfy every duplicated check (the paper's stated
   lower bound for the defenses). *)
let guard_loop =
  {|
volatile unsigned a = 0;
volatile unsigned attack_success = 0;

int main(void) {
  __trigger_high();
  while (!a) { }
  attack_success = 170;
  __trigger_low();
  __halt();
  return 0;
}
|}

(* Table VI best case: a guarded if on an uninitialized enum — every
   defense participates (enum diversification widens the Hamming gap,
   branch duplication re-checks, integrity shadows the flag). *)
let if_success =
  {|
enum status { SUCCESS, FAILURE };

volatile unsigned a = FAILURE;
volatile unsigned attack_success = 0;

int main(void) {
  __trigger_high();
  if (a == SUCCESS) {
    attack_success = 170;
  }
  __trigger_low();
  __halt();
  return 0;
}
|}
