type report = {
  instrumented : (string * (int * int) list) list;
  considered : int;
}

(* Constants a function returns, or None if any return is non-constant
   (or the function is void). *)
let return_constants (f : Ir.func) =
  let constants = ref [] and constant_only = ref f.returns_value in
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.Ret (Some (Ir.Const c)) ->
        if not (List.mem c !constants) then constants := c :: !constants
      | Ir.Ret (Some (Ir.Temp _)) | Ir.Ret None -> constant_only := false
      | Ir.Br _ | Ir.Cond_br _ | Ir.Switch _ | Ir.Unreachable -> ())
    f.blocks;
  if !constant_only && !constants <> [] then Some (List.rev !constants) else None

(* Do all uses of call results of [callee] across the module consist of
   direct comparisons against its return constants? Collect the use
   sites. *)
let comparison_uses_only (m : Ir.modul) callee constants =
  let ok = ref true in
  let result_temps = Hashtbl.create 8 in
  (* per function: find temps holding callee's result, then scan uses *)
  let sites = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.reset result_temps;
      Ir.iter_instrs f (fun _ i ->
          match i with
          | Ir.Call { dst = Some d; callee = c; _ } when c = callee ->
            Hashtbl.replace result_temps d ()
          | _ -> ());
      if Hashtbl.length result_temps > 0 then begin
        let uses_result v =
          match v with Ir.Temp t -> Hashtbl.mem result_temps t | Ir.Const _ -> false
        in
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun i ->
                match i with
                | Ir.Icmp { op = Ir.Eq | Ir.Ne; lhs; rhs; _ }
                  when uses_result lhs || uses_result rhs -> (
                  (* must compare against one of the known constants *)
                  match (lhs, rhs) with
                  | Ir.Temp _, Ir.Const k | Ir.Const k, Ir.Temp _ ->
                    if List.mem k constants then
                      sites := (f, b, i) :: !sites
                    else ok := false
                  | _ -> ok := false)
                | Ir.Icmp { lhs; rhs; _ }
                  when uses_result lhs || uses_result rhs ->
                  (* ordered comparison: diversified codes are unordered *)
                  ok := false
                | Ir.Load _ | Ir.Icmp _ -> ()
                | Ir.Store { src; _ } -> if uses_result src then ok := false
                | Ir.Binop { lhs; rhs; _ } ->
                  if uses_result lhs || uses_result rhs then ok := false
                | Ir.Call { args; _ } ->
                  if List.exists uses_result args then ok := false)
              b.instrs;
            match b.term with
            | Ir.Cond_br { cond; _ } ->
              (* raw truth-test of the result is not a constant compare *)
              if uses_result cond then ok := false
            | Ir.Switch { value; _ } ->
              (* switching on a diversified result would need every case
                 rewritten; conservatively skip *)
              if uses_result value then ok := false
            | Ir.Ret (Some v) -> if uses_result v then ok := false
            | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ())
          f.blocks
      end)
    m.funcs;
  if !ok then Some !sites else None

let rewrite_function (m : Ir.modul) (f : Ir.func) constants =
  let mapping =
    List.mapi
      (fun i c -> (c, Reedsolomon.Diversify.value ~width_bytes:4 (i + 1)))
      constants
  in
  (* returns *)
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.Ret (Some (Ir.Const c)) ->
        b.term <- Ir.Ret (Some (Ir.Const (List.assoc c mapping)))
      | Ir.Ret _ | Ir.Br _ | Ir.Cond_br _ | Ir.Switch _ | Ir.Unreachable -> ())
    f.blocks;
  (* call-site comparisons: rewrite the compared constant *)
  List.iter
    (fun (g : Ir.func) ->
      let result_temps = Hashtbl.create 8 in
      Ir.iter_instrs g (fun _ i ->
          match i with
          | Ir.Call { dst = Some d; callee; _ } when callee = f.fname ->
            Hashtbl.replace result_temps d ()
          | _ -> ());
      if Hashtbl.length result_temps > 0 then
        List.iter
          (fun (b : Ir.block) ->
            b.instrs <-
              List.map
                (fun i ->
                  match i with
                  | Ir.Icmp ({ op = Ir.Eq | Ir.Ne; lhs; rhs; _ } as r) -> (
                    let is_result v =
                      match v with
                      | Ir.Temp t -> Hashtbl.mem result_temps t
                      | Ir.Const _ -> false
                    in
                    match (lhs, rhs) with
                    | l, Ir.Const k when is_result l && List.mem_assoc k mapping ->
                      Ir.Icmp { r with rhs = Ir.Const (List.assoc k mapping) }
                    | Ir.Const k, r' when is_result r' && List.mem_assoc k mapping ->
                      Ir.Icmp
                        { r with lhs = Ir.Const (List.assoc k mapping) }
                    | _ -> i)
                  | _ -> i)
                b.instrs)
          g.blocks)
    m.funcs;
  mapping

let run (m : Ir.modul) =
  let considered = ref 0 in
  let instrumented = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      match return_constants f with
      | None -> ()
      | Some constants -> (
        incr considered;
        match comparison_uses_only m f.fname constants with
        | None | Some [] ->
          (* unsafe uses, or no comparison sites at all (e.g. an entry
             point nobody calls): nothing to gain, leave it alone *)
          ()
        | Some (_ :: _) ->
          let mapping = rewrite_function m f constants in
          instrumented := (f.fname, mapping) :: !instrumented))
    m.funcs;
  Pass.verify_or_fail "returns" m;
  { instrumented = List.rev !instrumented; considered = !considered }
