type report = { loops_instrumented : int }

let loop_headers (f : Ir.func) =
  let index = Hashtbl.create 16 in
  List.iteri (fun i (b : Ir.block) -> Hashtbl.replace index b.label i) f.blocks;
  let is_back_edge ~from target =
    match Hashtbl.find_opt index target with
    | Some ti -> ti <= from
    | None -> false
  in
  let headers = Hashtbl.create 8 in
  List.iteri
    (fun i (b : Ir.block) ->
      List.iter
        (fun successor ->
          if is_back_edge ~from:i successor then
            Hashtbl.replace headers successor ())
        (Ir.successors b.term))
    f.blocks;
  List.filter
    (fun (b : Ir.block) ->
      Hashtbl.mem headers b.label
      && match b.term with
         | Ir.Cond_br _ -> true
         | Ir.Br _ | Ir.Switch _ | Ir.Ret _ | Ir.Unreachable -> false)
    f.blocks

let run reaction (m : Ir.modul) =
  Detect.ensure reaction m;
  let count = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if f.fname <> Detect.detected_fn then begin
        let fresh = Pass.fresh_for f in
        let defs = Pass.def_map f in
        let additions =
          List.concat_map
            (fun block ->
              incr count;
              Branches.instrument_edge f fresh defs ~block ~edge:`False)
            (loop_headers f)
        in
        f.blocks <- f.blocks @ additions
      end)
    m.funcs;
  Pass.verify_or_fail "loops" m;
  { loops_instrumented = !count }
