(** The Mini-C firmware used by the paper's defense evaluation:

    - {!boot_tick}: the Tables IV/V workload — a CubeMX-style boot
      (clock + UART init with constant return codes and an enum status),
      a sensitive tick counter, and an infinite tick loop with an
      impossible success branch. The firmware raises the trigger pin
      exactly when boot completes, so boot time is the cycle stamp of
      the first trigger edge.
    - {!guard_loop}: Table VI's worst case, [while (!a)] over a volatile
      sensitive global; escaping writes the attack marker.
    - {!if_success}: Table VI's best case, [if (a == SUCCESS)] on an
      uninitialized-enum status with [a] initialised to [FAILURE]. *)

val boot_tick : string
val guard_loop : string
val if_success : string

val sensitive_globals : string list
(** ["a"; "tick"] — the variables the paper marks sensitive. *)

val attack_marker_global : string
(** ["attack_success"]; holds {!attack_marker_value} after a successful
    attack. *)

val attack_marker_value : int
(** [0xAA] *)
