let detected_fn = "__gr_detected"
let counter_global = "__gr_detect_count"

let ensure reaction (m : Ir.modul) =
  if Ir.find_global m counter_global = None then
    m.globals <-
      m.globals
      @ [ { Ir.gname = counter_global; init = 0; volatile = true;
            sensitive = false } ];
  if Ir.find_func m detected_fn = None then begin
    let b = Ir.Builder.create ~fname:detected_fn ~params:[] ~returns_value:false in
    let v = Ir.Builder.load ~volatile:true b (Ir.Global counter_global) in
    let v' = Ir.Builder.binop b Ir.Add v (Ir.Const 1) in
    Ir.Builder.store ~volatile:true b (Ir.Global counter_global) v';
    (match (reaction : Config.reaction) with
    | Config.Record -> Ir.Builder.ret b None
    | Config.Halt ->
      ignore (Ir.Builder.call b "__halt" []);
      Ir.Builder.ret b None
    | Config.Spin ->
      Ir.Builder.br b "spin";
      let _spin = Ir.Builder.new_block b "spin" in
      Ir.Builder.br b "spin");
    m.funcs <- m.funcs @ [ Ir.Builder.func b ];
    if
      (match reaction with Config.Halt -> true | Config.Spin | Config.Record -> false)
      && not (List.mem "__halt" m.externs)
    then m.externs <- "__halt" :: m.externs
  end

let detections read_global =
  match read_global counter_global with Some n -> n | None -> 0
