(** Data integrity (Section VI-B): every sensitive global gets a shadow
    "integrity" global holding its bitwise complement, allocated away
    from the original (here: appended at the end of .data/.bss, so the
    two never share a memory row). Writes update both; reads verify
    [var XOR shadow == 0xFFFFFFFF] and call the detector on mismatch —
    a single glitch cannot produce complementary corruption in two
    separate cells. *)

type report = {
  protected : (string * string) list;  (** global -> shadow name *)
  checks_inserted : int;  (** read-side verifications added *)
}

val shadow_name : string -> string

val run : sensitive:string list -> Config.reaction -> Ir.modul -> report
