type report = { blocks_signed : int; checks_inserted : int }

let signature_global = "__cfcss_G"

(* Distinct per-(function, block) signatures; the constant prefix keeps
   them out of the way of ordinary program values. *)
let signatures (m : Ir.modul) =
  let table = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          incr next;
          Hashtbl.replace table (f.fname, b.label) (0x51B00000 lor !next))
        f.blocks)
    m.funcs;
  table

let predecessors (f : Ir.func) =
  let preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun succ ->
          Hashtbl.replace preds succ
            (b.label :: Option.value ~default:[] (Hashtbl.find_opt preds succ)))
        (Ir.successors b.term))
    f.blocks;
  preds

let instrument_function sigs (f : Ir.func) =
  let fresh = Pass.fresh_for f in
  let preds = predecessors f in
  let sig_of label = Hashtbl.find sigs (f.fname, label) in
  let checks = ref 0 in
  let out = ref [] in
  let emit blk = out := blk :: !out in
  let entry_label = match f.blocks with b :: _ -> b.label | [] -> "" in
  List.iter
    (fun (b : Ir.block) ->
      let own_sig = sig_of b.label in
      (* The signed body: assert our signature, and re-assert it after
         every call (the callee signed its own blocks into G). *)
      let set_g =
        Ir.Store
          { dst = Ir.Global signature_global; src = Ir.Const own_sig;
            volatile = true }
      in
      let body_instrs =
        set_g
        :: List.concat_map
             (fun i ->
               match i with
               | Ir.Call _ -> [ i; set_g ]
               | Ir.Load _ | Ir.Store _ | Ir.Binop _ | Ir.Icmp _ -> [ i ])
             b.instrs
      in
      let pred_labels =
        Option.value ~default:[] (Hashtbl.find_opt preds b.label)
        |> List.sort_uniq compare
      in
      if b.label = entry_label || pred_labels = [] then
        emit { Ir.label = b.label; instrs = body_instrs; term = b.term }
      else begin
        incr checks;
        let body_label = Pass.label fresh "cfcss.body" in
        let bad_label = Pass.label fresh "cfcss.bad" in
        (* check chain under the original label: G must match one legal
           predecessor's signature, else the detector fires *)
        let g_temp = Pass.temp fresh in
        let load_g =
          Ir.Load { dst = g_temp; src = Ir.Global signature_global; volatile = true }
        in
        let rec chain label first = function
          | [] -> assert false
          | pred :: rest ->
            let v = Pass.temp fresh in
            let fail_to =
              if rest = [] then bad_label else Pass.label fresh "cfcss.chk"
            in
            emit
              { Ir.label;
                instrs =
                  (if first then [ load_g ] else [])
                  @ [ Ir.Icmp
                        { dst = v; op = Ir.Eq; lhs = Ir.Temp g_temp;
                          rhs = Ir.Const (sig_of pred) } ];
                term =
                  Ir.Cond_br
                    { cond = Ir.Temp v; if_true = body_label; if_false = fail_to } };
            if rest <> [] then chain fail_to false rest
        in
        chain b.label true pred_labels;
        emit
          { Ir.label = bad_label;
            instrs =
              [ Ir.Call { dst = None; callee = Detect.detected_fn; args = [] } ];
            term = Ir.Br body_label };
        emit { Ir.label = body_label; instrs = body_instrs; term = b.term }
      end)
    f.blocks;
  f.blocks <- List.rev !out;
  !checks

let run reaction (m : Ir.modul) =
  Detect.ensure reaction m;
  if Ir.find_global m signature_global = None then
    m.globals <-
      m.globals
      @ [ { Ir.gname = signature_global; init = 0; volatile = true;
            sensitive = false } ];
  let sigs = signatures m in
  let blocks = Hashtbl.length sigs in
  let checks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if f.fname <> Detect.detected_fn then
        checks := !checks + instrument_function sigs f)
    m.funcs;
  Pass.verify_or_fail "cfcss" m;
  { blocks_signed = blocks; checks_inserted = !checks }

let compile source =
  let m, _ = Driver.compile_modul Config.none source in
  let report = run Config.Spin m in
  (Lower.Layout.link m, report)
