type scenario = Worst_case | Best_case

let scenario_name = function
  | Worst_case -> "while(!a)"
  | Best_case -> "if(a==SUCCESS)"

let scenario_source = function
  | Worst_case -> Firmware.guard_loop
  | Best_case -> Firmware.if_success

type attack = Single | Long | Windowed

let attack_name = function
  | Single -> "single"
  | Long -> "long"
  | Windowed -> "windowed(10)"

type outcome = { attempts : int; successes : int; detections : int }

let success_rate o =
  Stats.Rate.pct ~num:o.successes ~den:o.attempts

let detection_rate o =
  Stats.Rate.pct ~num:o.detections ~den:(o.detections + o.successes)

(* Schedules per attack, in (ext_offset, repeat) form. *)
let windows = function
  | Single -> List.init 11 (fun c -> (c, 1))
  | Long -> List.init 10 (fun i -> (0, 10 * (i + 1)))
  | Windowed -> List.init 11 (fun s -> (s, 10))

let run_image ?fault_config ?(sweep_step = 1) image attack =
  let board = Hw.Board.create (Hw.Board.Image image) in
  if not (Hw.Board.run_until_trigger ~max_cycles:2_000_000 board) then
    invalid_arg "Evaluate.run: firmware never raised its trigger";
  let snap = Hw.Board.snapshot board in
  let boot_cycles = Hw.Board.cycles board in
  (* enough budget after the trigger for the defended loop plus the
     spin-on-detection reaction to settle *)
  let max_cycles = boot_cycles + 4_000 in
  let attempts = ref 0 and successes = ref 0 and detections = ref 0 in
  List.iter
    (fun (ext_offset, repeat) ->
      let width = ref (-49) in
      while !width <= 49 do
        let offset = ref (-49) in
        while !offset <= 49 do
          incr attempts;
          let schedule =
            [ Hw.Glitcher.with_repeat
                (Hw.Glitcher.single ~width:!width ~offset:!offset ~ext_offset)
                repeat ]
          in
          let (_ : Hw.Glitcher.observation) =
            Hw.Glitcher.run ?config:fault_config ~max_cycles ~from:snap board
              schedule
          in
          let marker = Hw.Board.read_global board Firmware.attack_marker_global in
          let succeeded = marker = Some Firmware.attack_marker_value in
          if succeeded then incr successes
          else if Detect.detections (Hw.Board.read_global board) > 0 then
            incr detections;
          offset := !offset + sweep_step
        done;
        width := !width + sweep_step
      done)
    (windows attack);
  { attempts = !attempts; successes = !successes; detections = !detections }

let run ?fault_config ?sweep_step (config : Config.t) scenario attack =
  let compiled = Driver.compile config (scenario_source scenario) in
  run_image ?fault_config ?sweep_step compiled.image attack
