type cpu = { regs : int array; mutable pc : int }

let mask32 v = v land 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let create_cpu ?(sp = 0) ?(pc = 0) () =
  let regs = Array.make 32 0 in
  regs.(2) <- mask32 sp;
  { regs; pc = mask32 pc }

let get cpu r = if r = 0 then 0 else cpu.regs.(r)
let set cpu r v = if r <> 0 then cpu.regs.(r) <- mask32 v

type stop =
  | Ebreak_hit
  | Ecall_trap
  | Bad_read of int
  | Bad_write of int
  | Bad_fetch of int
  | Invalid_instruction of int
  | Step_limit

let pp_stop ppf = function
  | Ebreak_hit -> Fmt.string ppf "ebreak"
  | Ecall_trap -> Fmt.string ppf "ecall"
  | Bad_read a -> Fmt.pf ppf "bad read at 0x%08x" a
  | Bad_write a -> Fmt.pf ppf "bad write at 0x%08x" a
  | Bad_fetch a -> Fmt.pf ppf "bad fetch at 0x%08x" a
  | Invalid_instruction w -> Fmt.pf ppf "invalid instruction 0x%08x" w
  | Step_limit -> Fmt.string ppf "step limit exhausted"

type step_result = Running | Stopped of stop

let sign_extend_8 v = if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
let sign_extend_16 v = if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v

let branch_taken cond a b =
  let sa = to_signed a and sb = to_signed b in
  match (cond : Instr.branch_cond) with
  | BEQ -> a = b
  | BNE -> a <> b
  | BLT -> sa < sb
  | BGE -> sa >= sb
  | BLTU -> a < b
  | BGEU -> a >= b

let alu_imm (op : Instr.alu_imm_op) a imm =
  match op with
  | ADDI -> mask32 (a + imm)
  | SLTI -> if to_signed a < imm then 1 else 0
  | SLTIU -> if a < mask32 imm then 1 else 0
  | XORI -> mask32 (a lxor mask32 imm)
  | ORI -> mask32 (a lor mask32 imm)
  | ANDI -> a land mask32 imm
  | SLLI -> mask32 (a lsl (imm land 31))
  | SRLI -> a lsr (imm land 31)
  | SRAI -> mask32 (to_signed a asr (imm land 31))

let alu (op : Instr.alu_op) a b =
  match op with
  | ADD -> mask32 (a + b)
  | SUB -> mask32 (a - b)
  | SLL -> mask32 (a lsl (b land 31))
  | SLT -> if to_signed a < to_signed b then 1 else 0
  | SLTU -> if a < b then 1 else 0
  | XOR -> a lxor b
  | SRL -> a lsr (b land 31)
  | SRA -> mask32 (to_signed a asr (b land 31))
  | OR -> a lor b
  | AND -> a land b

let execute mem cpu (i : Instr.t) : step_result =
  let pc = cpu.pc in
  let next = ref (pc + 4) in
  let stop = ref None in
  (match i with
  | Lui (rd, imm) -> set cpu rd imm
  | Auipc (rd, imm) -> set cpu rd (mask32 (pc + imm))
  | Jal (rd, off) ->
    set cpu rd (pc + 4);
    next := mask32 (pc + off)
  | Jalr (rd, rs1, imm) ->
    let target = mask32 (get cpu rs1 + imm) land lnot 1 in
    set cpu rd (pc + 4);
    next := target
  | Branch (cond, rs1, rs2, off) ->
    if branch_taken cond (get cpu rs1) (get cpu rs2) then
      next := mask32 (pc + off)
  | Load (w, rd, rs1, imm) -> (
    let addr = mask32 (get cpu rs1 + imm) in
    let result =
      match w with
      | LW -> Machine.Memory.read_u32 mem addr
      | LH | LHU -> Machine.Memory.read_u16 mem addr
      | LB | LBU -> Machine.Memory.read_u8 mem addr
    in
    match result with
    | Error (Machine.Memory.Unmapped a | Machine.Memory.Unaligned a) ->
      stop := Some (Bad_read a)
    | Ok v ->
      let v =
        match w with
        | LB -> sign_extend_8 v
        | LH -> sign_extend_16 v
        | LW | LBU | LHU -> v
      in
      set cpu rd v)
  | Store (w, rs1, rs2, imm) -> (
    let addr = mask32 (get cpu rs1 + imm) in
    let v = get cpu rs2 in
    let result =
      match w with
      | SW -> Machine.Memory.write_u32 mem addr v
      | SH -> Machine.Memory.write_u16 mem addr v
      | SB -> Machine.Memory.write_u8 mem addr v
    in
    match result with
    | Error (Machine.Memory.Unmapped a | Machine.Memory.Unaligned a) ->
      stop := Some (Bad_write a)
    | Ok () -> ())
  | Op_imm (op, rd, rs1, imm) -> set cpu rd (alu_imm op (get cpu rs1) imm)
  | Op (op, rd, rs1, rs2) -> set cpu rd (alu op (get cpu rs1) (get cpu rs2))
  | Fence -> ()
  | Ecall -> stop := Some Ecall_trap
  | Ebreak -> stop := Some Ebreak_hit
  | Undefined w -> stop := Some (Invalid_instruction w));
  match !stop with
  | Some s -> Stopped s
  | None ->
    (* instruction-address-misaligned: branch targets must be 4-aligned
       in RV32I (no compressed extension here) *)
    if !next land 3 <> 0 then Stopped (Bad_fetch !next)
    else begin
      cpu.pc <- !next;
      Running
    end

let step mem cpu =
  match Machine.Memory.read_u32 mem cpu.pc with
  | Error (Machine.Memory.Unmapped a | Machine.Memory.Unaligned a) ->
    Stopped (Bad_fetch a)
  | Ok w -> execute mem cpu (Codec.decode w)

let run ?(max_steps = 10_000) mem cpu =
  let rec go remaining =
    if remaining = 0 then Step_limit
    else
      match step mem cpu with
      | Running -> go (remaining - 1)
      | Stopped s -> s
  in
  go max_steps
