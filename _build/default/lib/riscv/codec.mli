(** Bit-exact RV32I encoder and total decoder.

    Like the Thumb pair, the decoder is total over the 32-bit word
    space so perturbed encodings always classify: anything outside the
    RV32I base set — including the entire 16-bit-compressed space
    (low bits not [11]) and the all-zero / all-one words the spec
    reserves as illegal — decodes to [Undefined]. *)

val encode : Instr.t -> int
(** @raise Invalid_argument on out-of-range fields. [Undefined w]
    round-trips as [w]. *)

val decode : int -> Instr.t
(** Total over [0, 0xFFFFFFFF]. *)

val encode_program : Instr.t list -> int list
