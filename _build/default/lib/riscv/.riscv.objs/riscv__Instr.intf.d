lib/riscv/instr.mli: Fmt
