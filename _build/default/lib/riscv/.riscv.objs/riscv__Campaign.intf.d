lib/riscv/campaign.mli: Glitch_emu Instr
