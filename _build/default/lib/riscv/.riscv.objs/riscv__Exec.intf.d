lib/riscv/exec.mli: Fmt Instr Machine
