lib/riscv/exec.ml: Array Codec Fmt Instr Machine
