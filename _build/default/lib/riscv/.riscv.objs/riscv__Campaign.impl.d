lib/riscv/campaign.ml: Array Codec Exec Glitch_emu Instr List Machine Seq Stats String
