lib/riscv/instr.ml: Fmt
