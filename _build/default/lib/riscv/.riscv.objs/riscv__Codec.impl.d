lib/riscv/codec.ml: Instr List Printf
