lib/riscv/codec.mli: Instr
