(** The RV32I base instruction set (unprivileged spec v2.1), used by the
    cross-ISA fault-tolerance study: the paper hypothesises that "a
    minor modification to the ISA could pay large dividends" against
    glitching but cannot test it without fabricating silicon — in
    emulation we can, by running the Figure 2 campaign over a second,
    architecturally different encoding (32-bit instructions, dense
    major-opcode space, [0x00000000] architecturally *defined* as an
    illegal instruction).

    Registers are integers in [0, 31]; [x0] reads as zero. Immediates
    are stored sign-extended where the format sign-extends. *)

type branch_cond = BEQ | BNE | BLT | BGE | BLTU | BGEU

val branch_conds : branch_cond list
val branch_cond_name : branch_cond -> string

type load_width = LB | LH | LW | LBU | LHU
type store_width = SB | SH | SW

type alu_imm_op = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

type alu_op =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND

type t =
  | Lui of int * int  (** rd, imm[31:12] (stored as the full value) *)
  | Auipc of int * int
  | Jal of int * int  (** rd, byte offset (signed, multiple of 2) *)
  | Jalr of int * int * int  (** rd, rs1, imm12 *)
  | Branch of branch_cond * int * int * int  (** rs1, rs2, byte offset *)
  | Load of load_width * int * int * int  (** rd, rs1, imm12 *)
  | Store of store_width * int * int * int  (** rs1, rs2 (source), imm12 *)
  | Op_imm of alu_imm_op * int * int * int  (** rd, rs1, imm *)
  | Op of alu_op * int * int * int  (** rd, rs1, rs2 *)
  | Fence
  | Ecall
  | Ebreak
  | Undefined of int  (** raw 32-bit word with no RV32I decoding *)

val nop : t
(** [ADDI x0, x0, 0], the canonical RISC-V NOP (encodes to 0x00000013 —
    note that unlike Thumb, the all-zero word is NOT a nop). *)

val is_branch : t -> bool
val pp : t Fmt.t
val to_string : t -> string
