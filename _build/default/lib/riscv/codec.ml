let mask32 v = v land 0xFFFFFFFF

let check name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Riscv.Codec: %s = %d out of [%d, %d]" name v lo hi)

let reg name r = check name r 0 31; r

let sign_extend bits v =
  let m = 1 lsl (bits - 1) in
  ((v land ((1 lsl bits) - 1)) lxor m) - m

(* format builders *)
let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check "imm12" imm (-2048) 2047;
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check "imm12" imm (-2048) 2047;
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opcode

let b_type ~off ~rs2 ~rs1 ~funct3 =
  check "branch offset" off (-4096) 4094;
  if off land 1 <> 0 then invalid_arg "Riscv.Codec: odd branch offset";
  let imm = off land 0x1FFF in
  let bit n = (imm lsr n) land 1 in
  (bit 12 lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (bit 11 lsl 7) lor 0b1100011

let branch_funct3 = function
  | Instr.BEQ -> 0b000 | Instr.BNE -> 0b001 | Instr.BLT -> 0b100
  | Instr.BGE -> 0b101 | Instr.BLTU -> 0b110 | Instr.BGEU -> 0b111

let load_funct3 = function
  | Instr.LB -> 0b000 | Instr.LH -> 0b001 | Instr.LW -> 0b010
  | Instr.LBU -> 0b100 | Instr.LHU -> 0b101

let store_funct3 = function Instr.SB -> 0b000 | Instr.SH -> 0b001 | Instr.SW -> 0b010

let encode (i : Instr.t) =
  match i with
  | Lui (rd, imm) ->
    if imm land 0xFFF <> 0 then invalid_arg "Riscv.Codec: lui imm low bits";
    (mask32 imm land 0xFFFFF000) lor (reg "rd" rd lsl 7) lor 0b0110111
  | Auipc (rd, imm) ->
    if imm land 0xFFF <> 0 then invalid_arg "Riscv.Codec: auipc imm low bits";
    (mask32 imm land 0xFFFFF000) lor (reg "rd" rd lsl 7) lor 0b0010111
  | Jal (rd, off) ->
    check "jal offset" off (-1048576) 1048574;
    if off land 1 <> 0 then invalid_arg "Riscv.Codec: odd jal offset";
    let imm = off land 0x1FFFFF in
    let bit n = (imm lsr n) land 1 in
    (bit 20 lsl 31)
    lor (((imm lsr 1) land 0x3FF) lsl 21)
    lor (bit 11 lsl 20)
    lor (((imm lsr 12) land 0xFF) lsl 12)
    lor (reg "rd" rd lsl 7) lor 0b1101111
  | Jalr (rd, rs1, imm) ->
    i_type ~imm ~rs1:(reg "rs1" rs1) ~funct3:0 ~rd:(reg "rd" rd) ~opcode:0b1100111
  | Branch (c, rs1, rs2, off) ->
    b_type ~off ~rs2:(reg "rs2" rs2) ~rs1:(reg "rs1" rs1)
      ~funct3:(branch_funct3 c)
  | Load (w, rd, rs1, imm) ->
    i_type ~imm ~rs1:(reg "rs1" rs1) ~funct3:(load_funct3 w) ~rd:(reg "rd" rd)
      ~opcode:0b0000011
  | Store (w, rs1, rs2, imm) ->
    s_type ~imm ~rs2:(reg "rs2" rs2) ~rs1:(reg "rs1" rs1)
      ~funct3:(store_funct3 w) ~opcode:0b0100011
  | Op_imm (SLLI, rd, rs1, sh) ->
    check "shamt" sh 0 31;
    r_type ~funct7:0 ~rs2:sh ~rs1:(reg "rs1" rs1) ~funct3:0b001
      ~rd:(reg "rd" rd) ~opcode:0b0010011
  | Op_imm (SRLI, rd, rs1, sh) ->
    check "shamt" sh 0 31;
    r_type ~funct7:0 ~rs2:sh ~rs1:(reg "rs1" rs1) ~funct3:0b101
      ~rd:(reg "rd" rd) ~opcode:0b0010011
  | Op_imm (SRAI, rd, rs1, sh) ->
    check "shamt" sh 0 31;
    r_type ~funct7:0b0100000 ~rs2:sh ~rs1:(reg "rs1" rs1) ~funct3:0b101
      ~rd:(reg "rd" rd) ~opcode:0b0010011
  | Op_imm (op, rd, rs1, imm) ->
    let funct3 =
      match op with
      | ADDI -> 0b000 | SLTI -> 0b010 | SLTIU -> 0b011 | XORI -> 0b100
      | ORI -> 0b110 | ANDI -> 0b111
      | SLLI | SRLI | SRAI -> assert false
    in
    i_type ~imm ~rs1:(reg "rs1" rs1) ~funct3 ~rd:(reg "rd" rd) ~opcode:0b0010011
  | Op (op, rd, rs1, rs2) ->
    let funct3, funct7 =
      match op with
      | ADD -> (0b000, 0) | SUB -> (0b000, 0b0100000) | SLL -> (0b001, 0)
      | SLT -> (0b010, 0) | SLTU -> (0b011, 0) | XOR -> (0b100, 0)
      | SRL -> (0b101, 0) | SRA -> (0b101, 0b0100000) | OR -> (0b110, 0)
      | AND -> (0b111, 0)
    in
    r_type ~funct7 ~rs2:(reg "rs2" rs2) ~rs1:(reg "rs1" rs1) ~funct3
      ~rd:(reg "rd" rd) ~opcode:0b0110011
  | Fence -> 0b0001111
  | Ecall -> 0b1110011
  | Ebreak -> (1 lsl 20) lor 0b1110011
  | Undefined w ->
    check "word" w 0 0xFFFFFFFF;
    w

let decode w : Instr.t =
  if w < 0 || w > 0xFFFFFFFF then invalid_arg "Riscv.Codec.decode: not 32-bit";
  if w land 0b11 <> 0b11 then Instr.Undefined w
  else begin
    let opcode = w land 0x7F in
    let rd = (w lsr 7) land 0x1F in
    let funct3 = (w lsr 12) land 0x7 in
    let rs1 = (w lsr 15) land 0x1F in
    let rs2 = (w lsr 20) land 0x1F in
    let funct7 = (w lsr 25) land 0x7F in
    let imm_i = sign_extend 12 (w lsr 20) in
    match opcode with
    | 0b0110111 -> Instr.Lui (rd, w land 0xFFFFF000)
    | 0b0010111 -> Instr.Auipc (rd, w land 0xFFFFF000)
    | 0b1101111 ->
      let bit n = (w lsr n) land 1 in
      let off =
        (bit 31 lsl 20)
        lor (((w lsr 12) land 0xFF) lsl 12)
        lor (bit 20 lsl 11)
        lor (((w lsr 21) land 0x3FF) lsl 1)
      in
      Instr.Jal (rd, sign_extend 21 off)
    | 0b1100111 when funct3 = 0 -> Instr.Jalr (rd, rs1, imm_i)
    | 0b1100011 -> (
      let bit n = (w lsr n) land 1 in
      let off =
        (bit 31 lsl 12)
        lor (bit 7 lsl 11)
        lor (((w lsr 25) land 0x3F) lsl 5)
        lor (((w lsr 8) land 0xF) lsl 1)
      in
      let off = sign_extend 13 off in
      match funct3 with
      | 0b000 -> Instr.Branch (BEQ, rs1, rs2, off)
      | 0b001 -> Instr.Branch (BNE, rs1, rs2, off)
      | 0b100 -> Instr.Branch (BLT, rs1, rs2, off)
      | 0b101 -> Instr.Branch (BGE, rs1, rs2, off)
      | 0b110 -> Instr.Branch (BLTU, rs1, rs2, off)
      | 0b111 -> Instr.Branch (BGEU, rs1, rs2, off)
      | _ -> Instr.Undefined w)
    | 0b0000011 -> (
      match funct3 with
      | 0b000 -> Instr.Load (LB, rd, rs1, imm_i)
      | 0b001 -> Instr.Load (LH, rd, rs1, imm_i)
      | 0b010 -> Instr.Load (LW, rd, rs1, imm_i)
      | 0b100 -> Instr.Load (LBU, rd, rs1, imm_i)
      | 0b101 -> Instr.Load (LHU, rd, rs1, imm_i)
      | _ -> Instr.Undefined w)
    | 0b0100011 -> (
      let imm = sign_extend 12 ((funct7 lsl 5) lor rd) in
      match funct3 with
      | 0b000 -> Instr.Store (SB, rs1, rs2, imm)
      | 0b001 -> Instr.Store (SH, rs1, rs2, imm)
      | 0b010 -> Instr.Store (SW, rs1, rs2, imm)
      | _ -> Instr.Undefined w)
    | 0b0010011 -> (
      match funct3 with
      | 0b000 -> Instr.Op_imm (ADDI, rd, rs1, imm_i)
      | 0b010 -> Instr.Op_imm (SLTI, rd, rs1, imm_i)
      | 0b011 -> Instr.Op_imm (SLTIU, rd, rs1, imm_i)
      | 0b100 -> Instr.Op_imm (XORI, rd, rs1, imm_i)
      | 0b110 -> Instr.Op_imm (ORI, rd, rs1, imm_i)
      | 0b111 -> Instr.Op_imm (ANDI, rd, rs1, imm_i)
      | 0b001 when funct7 = 0 -> Instr.Op_imm (SLLI, rd, rs1, rs2)
      | 0b101 when funct7 = 0 -> Instr.Op_imm (SRLI, rd, rs1, rs2)
      | 0b101 when funct7 = 0b0100000 -> Instr.Op_imm (SRAI, rd, rs1, rs2)
      | _ -> Instr.Undefined w)
    | 0b0110011 -> (
      match (funct3, funct7) with
      | 0b000, 0 -> Instr.Op (ADD, rd, rs1, rs2)
      | 0b000, 0b0100000 -> Instr.Op (SUB, rd, rs1, rs2)
      | 0b001, 0 -> Instr.Op (SLL, rd, rs1, rs2)
      | 0b010, 0 -> Instr.Op (SLT, rd, rs1, rs2)
      | 0b011, 0 -> Instr.Op (SLTU, rd, rs1, rs2)
      | 0b100, 0 -> Instr.Op (XOR, rd, rs1, rs2)
      | 0b101, 0 -> Instr.Op (SRL, rd, rs1, rs2)
      | 0b101, 0b0100000 -> Instr.Op (SRA, rd, rs1, rs2)
      | 0b110, 0 -> Instr.Op (OR, rd, rs1, rs2)
      | 0b111, 0 -> Instr.Op (AND, rd, rs1, rs2)
      | _ -> Instr.Undefined w)
    | 0b0001111 when w = 0b0001111 -> Instr.Fence
    | 0b1110011 when funct3 = 0 && rs1 = 0 && rd = 0 ->
      if w lsr 20 = 0 then Instr.Ecall
      else if w lsr 20 = 1 then Instr.Ebreak
      else Instr.Undefined w
    | _ -> Instr.Undefined w
  end

let encode_program is = List.map encode is
