type branch_cond = BEQ | BNE | BLT | BGE | BLTU | BGEU

let branch_conds = [ BEQ; BNE; BLT; BGE; BLTU; BGEU ]

let branch_cond_name = function
  | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt"
  | BGE -> "bge" | BLTU -> "bltu" | BGEU -> "bgeu"

type load_width = LB | LH | LW | LBU | LHU
type store_width = SB | SH | SW

type alu_imm_op = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

type alu_op = ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND

type t =
  | Lui of int * int
  | Auipc of int * int
  | Jal of int * int
  | Jalr of int * int * int
  | Branch of branch_cond * int * int * int
  | Load of load_width * int * int * int
  | Store of store_width * int * int * int
  | Op_imm of alu_imm_op * int * int * int
  | Op of alu_op * int * int * int
  | Fence
  | Ecall
  | Ebreak
  | Undefined of int

let nop = Op_imm (ADDI, 0, 0, 0)

let is_branch = function
  | Branch _ | Jal _ | Jalr _ -> true
  | Lui _ | Auipc _ | Load _ | Store _ | Op_imm _ | Op _ | Fence | Ecall
  | Ebreak | Undefined _ -> false

let load_name = function
  | LB -> "lb" | LH -> "lh" | LW -> "lw" | LBU -> "lbu" | LHU -> "lhu"

let store_name = function SB -> "sb" | SH -> "sh" | SW -> "sw"

let alu_imm_name = function
  | ADDI -> "addi" | SLTI -> "slti" | SLTIU -> "sltiu" | XORI -> "xori"
  | ORI -> "ori" | ANDI -> "andi" | SLLI -> "slli" | SRLI -> "srli"
  | SRAI -> "srai"

let alu_name = function
  | ADD -> "add" | SUB -> "sub" | SLL -> "sll" | SLT -> "slt" | SLTU -> "sltu"
  | XOR -> "xor" | SRL -> "srl" | SRA -> "sra" | OR -> "or" | AND -> "and"

let pp ppf = function
  | Lui (rd, imm) -> Fmt.pf ppf "lui x%d, 0x%x" rd (imm lsr 12)
  | Auipc (rd, imm) -> Fmt.pf ppf "auipc x%d, 0x%x" rd (imm lsr 12)
  | Jal (rd, off) -> Fmt.pf ppf "jal x%d, %d" rd off
  | Jalr (rd, rs1, imm) -> Fmt.pf ppf "jalr x%d, x%d, %d" rd rs1 imm
  | Branch (c, rs1, rs2, off) ->
    Fmt.pf ppf "%s x%d, x%d, %d" (branch_cond_name c) rs1 rs2 off
  | Load (w, rd, rs1, imm) ->
    Fmt.pf ppf "%s x%d, %d(x%d)" (load_name w) rd imm rs1
  | Store (w, rs1, rs2, imm) ->
    Fmt.pf ppf "%s x%d, %d(x%d)" (store_name w) rs2 imm rs1
  | Op_imm (op, rd, rs1, imm) ->
    Fmt.pf ppf "%s x%d, x%d, %d" (alu_imm_name op) rd rs1 imm
  | Op (op, rd, rs1, rs2) ->
    Fmt.pf ppf "%s x%d, x%d, x%d" (alu_name op) rd rs1 rs2
  | Fence -> Fmt.string ppf "fence"
  | Ecall -> Fmt.string ppf "ecall"
  | Ebreak -> Fmt.string ppf "ebreak"
  | Undefined w -> Fmt.pf ppf "udf.w 0x%08x" w

let to_string i = Fmt.str "%a" pp i
