(** RV32I executor over the shared {!Machine.Memory}, mirroring the
    Thumb executor's outcome taxonomy so the glitch-emulation campaign
    can classify perturbed runs identically on both ISAs. *)

type cpu = {
  regs : int array;  (** 32 registers; [x0] reads as zero *)
  mutable pc : int;
}

val create_cpu : ?sp:int -> ?pc:int -> unit -> cpu
(** [sp] initialises [x2] per the standard ABI. *)

val get : cpu -> int -> int
val set : cpu -> int -> int -> unit

type stop =
  | Ebreak_hit
  | Ecall_trap
  | Bad_read of int
  | Bad_write of int
  | Bad_fetch of int
  | Invalid_instruction of int
  | Step_limit

val pp_stop : stop Fmt.t

type step_result = Running | Stopped of stop

val execute : Machine.Memory.t -> cpu -> Instr.t -> step_result
val step : Machine.Memory.t -> cpu -> step_result
val run : ?max_steps:int -> Machine.Memory.t -> cpu -> stop
