type t = int

let of_int n =
  if n < 0 || n > 15 then invalid_arg "Reg.of_int: register out of range"
  else n

let to_int r = r

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let sp = 13
let lr = 14
let pc = 15

let is_low r = r < 8
let equal = Int.equal
let compare = Int.compare

let pp ppf r =
  match r with
  | 13 -> Fmt.string ppf "sp"
  | 14 -> Fmt.string ppf "lr"
  | 15 -> Fmt.string ppf "pc"
  | n -> Fmt.pf ppf "r%d" n
