let check name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encode: %s = %d out of [%d, %d]" name v lo hi)

let low name r =
  let n = Reg.to_int r in
  check name n 0 7;
  n

let any r = Reg.to_int r

let shift_op_bits = function Instr.Lsl -> 0 | Instr.Lsr -> 1 | Instr.Asr -> 2

let sign_bits = function
  | Instr.STRH -> (0, 0)
  | Instr.LDRH -> (0, 1)
  | Instr.LDSB -> (1, 0)
  | Instr.LDSH -> (1, 1)

let instr (i : Instr.t) =
  match i with
  | Shift (op, rd, rs, imm) ->
    check "imm5" imm 0 31;
    (shift_op_bits op lsl 11) lor (imm lsl 6) lor (low "rs" rs lsl 3)
    lor low "rd" rd
  | Add_sub { sub; imm; rd; rs; operand } ->
    check "operand" operand 0 7;
    (0b00011 lsl 11)
    lor ((if imm then 1 else 0) lsl 10)
    lor ((if sub then 1 else 0) lsl 9)
    lor (operand lsl 6) lor (low "rs" rs lsl 3) lor low "rd" rd
  | Imm (op, rd, imm) ->
    check "imm8" imm 0 255;
    (0b001 lsl 13) lor (Instr.imm_op_to_int op lsl 11)
    lor (low "rd" rd lsl 8) lor imm
  | Alu (op, rd, rs) ->
    (0b010000 lsl 10) lor (Instr.alu_op_to_int op lsl 6)
    lor (low "rs" rs lsl 3) lor low "rd" rd
  | Hi_add (rd, rm) | Hi_cmp (rd, rm) | Hi_mov (rd, rm) ->
    let op =
      match i with
      | Hi_add _ -> 0
      | Hi_cmp _ -> 1
      | Hi_mov _ -> 2
      | Shift _ | Add_sub _ | Imm _ | Alu _ | Bx _ | Ldr_pc _ | Mem_reg _
      | Mem_sign _ | Mem_imm _ | Mem_half _ | Mem_sp _ | Load_addr _
      | Sp_adjust _ | Push _ | Pop _ | Stmia _ | Ldmia _ | B_cond _ | Swi _
      | B _ | Bl_hi _ | Bl_lo _ | Bkpt _ | Undefined _ -> assert false
    in
    let d = any rd and m = any rm in
    let h1 = d lsr 3 and h2 = m lsr 3 in
    (0b010001 lsl 10) lor (op lsl 8) lor (h1 lsl 7) lor (h2 lsl 6)
    lor ((m land 7) lsl 3) lor (d land 7)
  | Bx rm ->
    let m = any rm in
    (0b010001 lsl 10) lor (3 lsl 8) lor ((m lsr 3) lsl 6)
    lor ((m land 7) lsl 3)
  | Ldr_pc (rd, imm) ->
    check "imm8" imm 0 255;
    (0b01001 lsl 11) lor (low "rd" rd lsl 8) lor imm
  | Mem_reg { load; byte; rd; rb; ro } ->
    (0b0101 lsl 12)
    lor ((if load then 1 else 0) lsl 11)
    lor ((if byte then 1 else 0) lsl 10)
    lor (low "ro" ro lsl 6) lor (low "rb" rb lsl 3) lor low "rd" rd
  | Mem_sign { op; rd; rb; ro } ->
    let s, h = sign_bits op in
    (0b0101 lsl 12) lor (h lsl 11) lor (s lsl 10) lor (1 lsl 9)
    lor (low "ro" ro lsl 6) lor (low "rb" rb lsl 3) lor low "rd" rd
  | Mem_imm { load; byte; rd; rb; imm } ->
    check "imm5" imm 0 31;
    (0b011 lsl 13)
    lor ((if byte then 1 else 0) lsl 12)
    lor ((if load then 1 else 0) lsl 11)
    lor (imm lsl 6) lor (low "rb" rb lsl 3) lor low "rd" rd
  | Mem_half { load; rd; rb; imm } ->
    check "imm5" imm 0 31;
    (0b1000 lsl 12)
    lor ((if load then 1 else 0) lsl 11)
    lor (imm lsl 6) lor (low "rb" rb lsl 3) lor low "rd" rd
  | Mem_sp { load; rd; imm } ->
    check "imm8" imm 0 255;
    (0b1001 lsl 12)
    lor ((if load then 1 else 0) lsl 11)
    lor (low "rd" rd lsl 8) lor imm
  | Load_addr { from_sp; rd; imm } ->
    check "imm8" imm 0 255;
    (0b1010 lsl 12)
    lor ((if from_sp then 1 else 0) lsl 11)
    lor (low "rd" rd lsl 8) lor imm
  | Sp_adjust words ->
    check "imm7" (abs words) 0 127;
    (0b10110000 lsl 8)
    lor ((if words < 0 then 1 else 0) lsl 7)
    lor abs words
  | Push { rlist; lr } ->
    check "rlist" rlist 0 255;
    (0b1011 lsl 12) lor (0b10 lsl 9) lor ((if lr then 1 else 0) lsl 8) lor rlist
  | Pop { rlist; pc } ->
    check "rlist" rlist 0 255;
    (0b1011 lsl 12) lor (1 lsl 11) lor (0b10 lsl 9)
    lor ((if pc then 1 else 0) lsl 8)
    lor rlist
  | Stmia (rb, rlist) ->
    check "rlist" rlist 0 255;
    (0b1100 lsl 12) lor (low "rb" rb lsl 8) lor rlist
  | Ldmia (rb, rlist) ->
    check "rlist" rlist 0 255;
    (0b1100 lsl 12) lor (1 lsl 11) lor (low "rb" rb lsl 8) lor rlist
  | B_cond (c, off) ->
    check "offset8" off (-128) 127;
    (0b1101 lsl 12) lor (Instr.cond_to_int c lsl 8) lor (off land 0xFF)
  | Swi imm ->
    check "imm8" imm 0 255;
    (0b11011111 lsl 8) lor imm
  | B off ->
    check "offset11" off (-1024) 1023;
    (0b11100 lsl 11) lor (off land 0x7FF)
  | Bl_hi off ->
    check "offset11" off (-1024) 1023;
    (0b11110 lsl 11) lor (off land 0x7FF)
  | Bl_lo off ->
    check "offset11" off 0 2047;
    (0b11111 lsl 11) lor off
  | Bkpt imm ->
    check "imm8" imm 0 255;
    (0b10111110 lsl 8) lor imm
  | Undefined w ->
    check "word" w 0 0xFFFF;
    w

let program is = List.map instr is

let to_bytes is =
  let words = program is in
  let b = Bytes.create (2 * List.length words) in
  List.iteri
    (fun i w ->
      Bytes.set_uint8 b (2 * i) (w land 0xFF);
      Bytes.set_uint8 b ((2 * i) + 1) ((w lsr 8) land 0xFF))
    words;
  b
