let popcount byte =
  let rec go acc b = if b = 0 then acc else go (acc + (b land 1)) (b lsr 1) in
  go 0 byte

let of_instr ~taken (i : Instr.t) =
  match i with
  | Shift _ | Add_sub _ | Imm _ | Alu _ | Hi_add _ | Hi_cmp _ | Hi_mov _
  | Load_addr _ | Sp_adjust _ -> 1
  | Ldr_pc _ | Mem_reg _ | Mem_sign _ | Mem_imm _ | Mem_half _ | Mem_sp _ -> 2
  | Push { rlist; lr } -> 1 + popcount rlist + if lr then 1 else 0
  | Pop { rlist; pc } -> 1 + popcount rlist + if pc then 3 else 0
  | Stmia (_, rlist) | Ldmia (_, rlist) -> 1 + popcount rlist
  | B_cond _ -> if taken then 3 else 1
  | B _ -> 3
  | Bx _ -> 3
  | Bl_hi _ -> 1
  | Bl_lo _ -> 3
  | Swi _ | Bkpt _ | Undefined _ -> 1
