(** Bit-exact assembler from {!Instr.t} to 16-bit Thumb words
    (the Keystone substitute).

    Encodings follow the ARM7TDMI Technical Reference Manual Thumb
    instruction formats 1-19, e.g. [B_cond (EQ, 3)] ("beq #6") encodes to
    [0xD003] and [Instr.nop] to [0x0000]. *)

val instr : Instr.t -> int
(** [instr i] is the 16-bit encoding of [i].
    @raise Invalid_argument if an immediate or register is out of range
    for the format (e.g. a high register in a 3-bit field). Encoding an
    [Undefined w] returns [w] unchanged. *)

val program : Instr.t list -> int list
(** Encode a sequence of instructions to a list of 16-bit words. *)

val to_bytes : Instr.t list -> bytes
(** Little-endian byte image of {!program}. *)
