(** Cortex-M0 instruction timing, used by the simulated target board's
    DWT-style cycle counter and by the clock-glitch scheduler.

    Numbers follow the Cortex-M0 Technical Reference Manual: most
    instructions are single-cycle; loads and stores take 2 cycles; taken
    branches take 3 (1 if not taken); [BL] takes 4; [BX] takes 3;
    multiple loads/stores take 1+N. The paper's experiments bound each
    guard loop at 8 cycles with the branch costing 1-3, which this model
    reproduces. *)

val of_instr : taken:bool -> Instr.t -> int
(** [of_instr ~taken i] is the number of clock cycles [i] consumes.
    [taken] only matters for conditional branches. *)
