type cond = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE

let cond_to_int = function
  | EQ -> 0 | NE -> 1 | CS -> 2 | CC -> 3
  | MI -> 4 | PL -> 5 | VS -> 6 | VC -> 7
  | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11
  | GT -> 12 | LE -> 13

let cond_of_int = function
  | 0 -> Some EQ | 1 -> Some NE | 2 -> Some CS | 3 -> Some CC
  | 4 -> Some MI | 5 -> Some PL | 6 -> Some VS | 7 -> Some VC
  | 8 -> Some HI | 9 -> Some LS | 10 -> Some GE | 11 -> Some LT
  | 12 -> Some GT | 13 -> Some LE
  | _ -> None

let all_conds = [ EQ; NE; CS; CC; MI; PL; VS; VC; HI; LS; GE; LT; GT; LE ]

let cond_name = function
  | EQ -> "eq" | NE -> "ne" | CS -> "cs" | CC -> "cc"
  | MI -> "mi" | PL -> "pl" | VS -> "vs" | VC -> "vc"
  | HI -> "hi" | LS -> "ls" | GE -> "ge" | LT -> "lt"
  | GT -> "gt" | LE -> "le"

type shift_op = Lsl | Lsr | Asr

type alu_op =
  | AND | EOR | LSLr | LSRr | ASRr | ADC | SBC | ROR
  | TST | NEG | CMPr | CMN | ORR | MUL | BIC | MVN

let alu_op_to_int = function
  | AND -> 0 | EOR -> 1 | LSLr -> 2 | LSRr -> 3
  | ASRr -> 4 | ADC -> 5 | SBC -> 6 | ROR -> 7
  | TST -> 8 | NEG -> 9 | CMPr -> 10 | CMN -> 11
  | ORR -> 12 | MUL -> 13 | BIC -> 14 | MVN -> 15

let alu_op_of_int = function
  | 0 -> AND | 1 -> EOR | 2 -> LSLr | 3 -> LSRr
  | 4 -> ASRr | 5 -> ADC | 6 -> SBC | 7 -> ROR
  | 8 -> TST | 9 -> NEG | 10 -> CMPr | 11 -> CMN
  | 12 -> ORR | 13 -> MUL | 14 -> BIC | 15 -> MVN
  | _ -> invalid_arg "Instr.alu_op_of_int"

type imm_op = MOVi | CMPi | ADDi | SUBi

let imm_op_to_int = function MOVi -> 0 | CMPi -> 1 | ADDi -> 2 | SUBi -> 3

let imm_op_of_int = function
  | 0 -> MOVi | 1 -> CMPi | 2 -> ADDi | 3 -> SUBi
  | _ -> invalid_arg "Instr.imm_op_of_int"

type sign_op = STRH | LDSB | LDRH | LDSH

type t =
  | Shift of shift_op * Reg.t * Reg.t * int
  | Add_sub of { sub : bool; imm : bool; rd : Reg.t; rs : Reg.t; operand : int }
  | Imm of imm_op * Reg.t * int
  | Alu of alu_op * Reg.t * Reg.t
  | Hi_add of Reg.t * Reg.t
  | Hi_cmp of Reg.t * Reg.t
  | Hi_mov of Reg.t * Reg.t
  | Bx of Reg.t
  | Ldr_pc of Reg.t * int
  | Mem_reg of { load : bool; byte : bool; rd : Reg.t; rb : Reg.t; ro : Reg.t }
  | Mem_sign of { op : sign_op; rd : Reg.t; rb : Reg.t; ro : Reg.t }
  | Mem_imm of { load : bool; byte : bool; rd : Reg.t; rb : Reg.t; imm : int }
  | Mem_half of { load : bool; rd : Reg.t; rb : Reg.t; imm : int }
  | Mem_sp of { load : bool; rd : Reg.t; imm : int }
  | Load_addr of { from_sp : bool; rd : Reg.t; imm : int }
  | Sp_adjust of int
  | Push of { rlist : int; lr : bool }
  | Pop of { rlist : int; pc : bool }
  | Stmia of Reg.t * int
  | Ldmia of Reg.t * int
  | B_cond of cond * int
  | Swi of int
  | B of int
  | Bl_hi of int
  | Bl_lo of int
  | Bkpt of int
  | Undefined of int

let nop = Shift (Lsl, Reg.r0, Reg.r0, 0)

let is_branch = function
  | B_cond _ | B _ | Bx _ | Bl_hi _ | Bl_lo _ -> true
  | Pop { pc = true; _ } -> true
  | Shift _ | Add_sub _ | Imm _ | Alu _ | Hi_add _ | Hi_cmp _ | Hi_mov _
  | Ldr_pc _ | Mem_reg _ | Mem_sign _ | Mem_imm _ | Mem_half _ | Mem_sp _
  | Load_addr _ | Sp_adjust _ | Push _ | Pop _ | Stmia _ | Ldmia _ | Swi _
  | Bkpt _ | Undefined _ -> false

let is_load = function
  | Ldr_pc _ | Ldmia _ | Pop _ -> true
  | Mem_reg { load; _ } | Mem_imm { load; _ } | Mem_half { load; _ }
  | Mem_sp { load; _ } -> load
  | Mem_sign { op = LDSB | LDRH | LDSH; _ } -> true
  | Mem_sign { op = STRH; _ } -> false
  | Shift _ | Add_sub _ | Imm _ | Alu _ | Hi_add _ | Hi_cmp _ | Hi_mov _
  | Bx _ | Load_addr _ | Sp_adjust _ | Push _ | Stmia _ | B_cond _ | Swi _
  | B _ | Bl_hi _ | Bl_lo _ | Bkpt _ | Undefined _ -> false

let is_store = function
  | Push _ | Stmia _ -> true
  | Mem_reg { load; _ } | Mem_imm { load; _ } | Mem_half { load; _ }
  | Mem_sp { load; _ } -> not load
  | Mem_sign { op = STRH; _ } -> true
  | Mem_sign { op = LDSB | LDRH | LDSH; _ } -> false
  | Shift _ | Add_sub _ | Imm _ | Alu _ | Hi_add _ | Hi_cmp _ | Hi_mov _
  | Bx _ | Ldr_pc _ | Load_addr _ | Sp_adjust _ | Pop _ | Ldmia _ | B_cond _
  | Swi _ | B _ | Bl_hi _ | Bl_lo _ | Bkpt _ | Undefined _ -> false

let equal (a : t) (b : t) = a = b

let shift_name = function Lsl -> "lsls" | Lsr -> "lsrs" | Asr -> "asrs"

let alu_name = function
  | AND -> "ands" | EOR -> "eors" | LSLr -> "lsls" | LSRr -> "lsrs"
  | ASRr -> "asrs" | ADC -> "adcs" | SBC -> "sbcs" | ROR -> "rors"
  | TST -> "tst" | NEG -> "negs" | CMPr -> "cmp" | CMN -> "cmn"
  | ORR -> "orrs" | MUL -> "muls" | BIC -> "bics" | MVN -> "mvns"

let imm_name = function
  | MOVi -> "movs" | CMPi -> "cmp" | ADDi -> "adds" | SUBi -> "subs"

let sign_name = function
  | STRH -> "strh" | LDSB -> "ldsb" | LDRH -> "ldrh" | LDSH -> "ldsh"

let pp_rlist ppf (rlist, extra) =
  let regs =
    List.filter (fun i -> rlist land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let names = List.map (fun i -> Fmt.str "r%d" i) regs @ extra in
  Fmt.pf ppf "{%s}" (String.concat ", " names)

let pp ppf = function
  | Shift (op, rd, rs, imm) ->
    Fmt.pf ppf "%s %a, %a, #%d" (shift_name op) Reg.pp rd Reg.pp rs imm
  | Add_sub { sub; imm; rd; rs; operand } ->
    let mnem = if sub then "subs" else "adds" in
    if imm then Fmt.pf ppf "%s %a, %a, #%d" mnem Reg.pp rd Reg.pp rs operand
    else
      Fmt.pf ppf "%s %a, %a, %a" mnem Reg.pp rd Reg.pp rs Reg.pp
        (Reg.of_int operand)
  | Imm (op, rd, imm) -> Fmt.pf ppf "%s %a, #%d" (imm_name op) Reg.pp rd imm
  | Alu (op, rd, rs) -> Fmt.pf ppf "%s %a, %a" (alu_name op) Reg.pp rd Reg.pp rs
  | Hi_add (rd, rm) -> Fmt.pf ppf "add %a, %a" Reg.pp rd Reg.pp rm
  | Hi_cmp (rd, rm) -> Fmt.pf ppf "cmp %a, %a" Reg.pp rd Reg.pp rm
  | Hi_mov (rd, rm) -> Fmt.pf ppf "mov %a, %a" Reg.pp rd Reg.pp rm
  | Bx rm -> Fmt.pf ppf "bx %a" Reg.pp rm
  | Ldr_pc (rd, imm) -> Fmt.pf ppf "ldr %a, [pc, #%d]" Reg.pp rd (imm * 4)
  | Mem_reg { load; byte; rd; rb; ro } ->
    Fmt.pf ppf "%s%s %a, [%a, %a]"
      (if load then "ldr" else "str")
      (if byte then "b" else "")
      Reg.pp rd Reg.pp rb Reg.pp ro
  | Mem_sign { op; rd; rb; ro } ->
    Fmt.pf ppf "%s %a, [%a, %a]" (sign_name op) Reg.pp rd Reg.pp rb Reg.pp ro
  | Mem_imm { load; byte; rd; rb; imm } ->
    let scale = if byte then 1 else 4 in
    Fmt.pf ppf "%s%s %a, [%a, #%d]"
      (if load then "ldr" else "str")
      (if byte then "b" else "")
      Reg.pp rd Reg.pp rb (imm * scale)
  | Mem_half { load; rd; rb; imm } ->
    Fmt.pf ppf "%s %a, [%a, #%d]"
      (if load then "ldrh" else "strh")
      Reg.pp rd Reg.pp rb (imm * 2)
  | Mem_sp { load; rd; imm } ->
    Fmt.pf ppf "%s %a, [sp, #%d]" (if load then "ldr" else "str") Reg.pp rd
      (imm * 4)
  | Load_addr { from_sp; rd; imm } ->
    Fmt.pf ppf "add %a, %s, #%d" Reg.pp rd (if from_sp then "sp" else "pc")
      (imm * 4)
  | Sp_adjust words ->
    if words < 0 then Fmt.pf ppf "sub sp, #%d" (-words * 4)
    else Fmt.pf ppf "add sp, #%d" (words * 4)
  | Push { rlist; lr } -> Fmt.pf ppf "push %a" pp_rlist (rlist, if lr then [ "lr" ] else [])
  | Pop { rlist; pc } -> Fmt.pf ppf "pop %a" pp_rlist (rlist, if pc then [ "pc" ] else [])
  | Stmia (rb, rlist) -> Fmt.pf ppf "stmia %a!, %a" Reg.pp rb pp_rlist (rlist, [])
  | Ldmia (rb, rlist) -> Fmt.pf ppf "ldmia %a!, %a" Reg.pp rb pp_rlist (rlist, [])
  | B_cond (c, off) -> Fmt.pf ppf "b%s #%d" (cond_name c) (off * 2)
  | Swi imm -> Fmt.pf ppf "swi #%d" imm
  | B off -> Fmt.pf ppf "b #%d" (off * 2)
  | Bl_hi off -> Fmt.pf ppf "bl.hi #%d" off
  | Bl_lo off -> Fmt.pf ppf "bl.lo #%d" off
  | Bkpt imm -> Fmt.pf ppf "bkpt #%d" imm
  | Undefined w -> Fmt.pf ppf "udf.w 0x%04x" w

let to_string i = Fmt.str "%a" pp i
