type error = { line : int; message : string }

exception Parse_error of error

let pp_error ppf { line; message } = Fmt.pf ppf "line %d: %s" line message

let fail line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* --- lexical helpers ------------------------------------------------- *)

let strip_comment s =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '@' s)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let parse_int line s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad integer %S" s

(* "#42", "#0x2A", "#-8" *)
let parse_imm line s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '#' then
    parse_int line (String.sub s 1 (String.length s - 1))
  else fail line "expected immediate, got %S" s

let parse_reg line s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "sp" -> Reg.sp
  | "lr" -> Reg.lr
  | "pc" -> Reg.pc
  | "ip" -> Reg.r12
  | _ ->
    if String.length s >= 2 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n <= 15 -> Reg.of_int n
      | Some _ | None -> fail line "bad register %S" s
    else fail line "bad register %S" s

let low_reg line s =
  let r = parse_reg line s in
  if Reg.is_low r then r else fail line "register %a not a low register" Reg.pp r

(* Split operands at top level commas, respecting [...] and {...}. *)
let split_operands s =
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' | '{' ->
        incr depth;
        Buffer.add_char buf c
      | ']' | '}' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | _ -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out |> List.filter (fun s -> s <> "")

(* "{r0, r1, lr}" -> (rlist bits for r0-r7, lr/pc flag) *)
let parse_reglist line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then
    fail line "expected register list, got %S" s;
  let inner = String.sub s 1 (n - 2) in
  let parts = String.split_on_char ',' inner |> List.map String.trim in
  List.fold_left
    (fun (rlist, special) part ->
      if part = "" then (rlist, special)
      else
        match String.lowercase_ascii part with
        | "lr" | "pc" -> (rlist, true)
        | _ ->
          let r = parse_reg line part in
          if Reg.is_low r then (rlist lor (1 lsl Reg.to_int r), special)
          else fail line "high register %a in register list" Reg.pp r)
    (0, false) parts

(* "[rb, #imm]" | "[rb, ro]" | "[rb]" *)
type mem_operand =
  | Base_imm of Reg.t * int
  | Base_reg of Reg.t * Reg.t

let parse_mem line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "expected memory operand, got %S" s;
  let inner = String.sub s 1 (n - 2) in
  match String.split_on_char ',' inner |> List.map String.trim with
  | [ rb ] -> Base_imm (parse_reg line rb, 0)
  | [ rb; second ] ->
    let rb = parse_reg line rb in
    if String.length second > 0 && second.[0] = '#' then
      Base_imm (rb, parse_imm line second)
    else Base_reg (rb, parse_reg line second)
  | _ -> fail line "bad memory operand %S" s

(* --- source lines ----------------------------------------------------- *)

type raw_line = { num : int; label : string option; body : string option }

let split_lines src =
  String.split_on_char '\n' src
  |> List.mapi (fun i text -> (i + 1, String.trim (strip_comment text)))
  |> List.filter_map (fun (num, text) ->
         if text = "" then None
         else
           match String.index_opt text ':' with
           | Some i
             when i > 0
                  && String.for_all is_ident_char (String.sub text 0 i) ->
             let rest = String.trim (String.sub text (i + 1) (String.length text - i - 1)) in
             Some { num; label = Some (String.sub text 0 i);
                    body = (if rest = "" then None else Some rest) }
           | Some _ | None -> Some { num; label = None; body = Some text })

(* halfword length of an instruction line *)
let body_length line body =
  match String.split_on_char ' ' body with
  | mnem :: _ when String.lowercase_ascii mnem = "bl" -> 2
  | mnem :: _ when String.lowercase_ascii mnem = ".word" -> 2
  | _ :: _ -> 1
  | [] -> fail line "empty instruction"

(* --- instruction parsing ---------------------------------------------- *)

type target_env = { labels : (string, int) Hashtbl.t; here : int }
(* [here] is the halfword index of the instruction being parsed. *)

(* Branch offset in halfwords from an instruction at halfword index
   [here]: offset field = target - (here + 2). *)
let branch_offset line env arg =
  let arg = String.trim arg in
  if String.length arg > 0 && arg.[0] = '#' then (
    let bytes = parse_imm line arg in
    if bytes land 1 <> 0 then fail line "odd branch offset %d" bytes;
    bytes / 2)
  else
    match Hashtbl.find_opt env.labels arg with
    | Some target -> target - (env.here + 2)
    | None -> fail line "undefined label %S" arg

let alu_of_mnemonic = function
  | "ands" | "and" -> Some Instr.AND
  | "eors" | "eor" -> Some Instr.EOR
  | "adcs" | "adc" -> Some Instr.ADC
  | "sbcs" | "sbc" -> Some Instr.SBC
  | "rors" | "ror" -> Some Instr.ROR
  | "tst" -> Some Instr.TST
  | "negs" | "neg" -> Some Instr.NEG
  | "cmn" -> Some Instr.CMN
  | "orrs" | "orr" -> Some Instr.ORR
  | "muls" | "mul" -> Some Instr.MUL
  | "bics" | "bic" -> Some Instr.BIC
  | "mvns" | "mvn" -> Some Instr.MVN
  | _ -> None

let shift_of_mnemonic = function
  | "lsls" | "lsl" -> Some (Instr.Lsl, Instr.LSLr)
  | "lsrs" | "lsr" -> Some (Instr.Lsr, Instr.LSRr)
  | "asrs" | "asr" -> Some (Instr.Asr, Instr.ASRr)
  | _ -> None

let cond_of_branch_mnemonic m =
  if String.length m = 3 && m.[0] = 'b' then
    let suffix = String.sub m 1 2 in
    List.find_opt (fun c -> Instr.cond_name c = suffix) Instr.all_conds
  else None

let is_imm s = String.length s > 0 && (String.trim s).[0] = '#'

let rec parse_instr env line body : Instr.t list =
  (* Validate ranges eagerly so callers get a located Parse_error rather
     than a late Invalid_argument from the encoder. *)
  let instrs = parse_instr_unchecked env line body in
  List.iter
    (fun i ->
      try ignore (Encode.instr i)
      with Invalid_argument message -> fail line "%s" message)
    instrs;
  instrs

and parse_instr_unchecked env line body : Instr.t list =
  let mnem, rest =
    match String.index_opt body ' ' with
    | Some i ->
      ( String.lowercase_ascii (String.sub body 0 i),
        String.sub body (i + 1) (String.length body - i - 1) )
    | None -> (String.lowercase_ascii body, "")
  in
  let ops = split_operands rest in
  let one i = [ i ] in
  match (mnem, ops) with
  | "nop", [] -> one (Instr.Hi_mov (Reg.r8, Reg.r8))
  | ".word", [ imm ] ->
    (* 32-bit data in the instruction stream (literal pools); kept as
       raw halfwords so decode reports whatever the bits happen to be *)
    let v = parse_int line imm land 0xFFFFFFFF in
    [ Instr.Undefined (v land 0xFFFF); Instr.Undefined ((v lsr 16) land 0xFFFF) ]
  | ("movs" | "mov"), [ rd; src ] when is_imm src ->
    one (Instr.Imm (Instr.MOVi, low_reg line rd, parse_imm line src))
  | "movs", [ rd; rs ] ->
    one (Instr.Shift (Instr.Lsl, low_reg line rd, low_reg line rs, 0))
  | "mov", [ rd; rm ] -> one (Instr.Hi_mov (parse_reg line rd, parse_reg line rm))
  | "cmp", [ rd; src ] when is_imm src ->
    one (Instr.Imm (Instr.CMPi, low_reg line rd, parse_imm line src))
  | "cmp", [ rd; rs ] ->
    let rd = parse_reg line rd and rs = parse_reg line rs in
    if Reg.is_low rd && Reg.is_low rs then one (Instr.Alu (Instr.CMPr, rd, rs))
    else one (Instr.Hi_cmp (rd, rs))
  | ("adds" | "subs"), [ rd; src ] when is_imm src ->
    let op = if mnem = "adds" then Instr.ADDi else Instr.SUBi in
    one (Instr.Imm (op, low_reg line rd, parse_imm line src))
  | ("adds" | "subs"), [ rd; rs; src ] ->
    let sub = mnem = "subs" in
    let rd = low_reg line rd and rs = low_reg line rs in
    if is_imm src then
      one (Instr.Add_sub { sub; imm = true; rd; rs; operand = parse_imm line src })
    else
      one
        (Instr.Add_sub
           { sub; imm = false; rd; rs; operand = Reg.to_int (low_reg line src) })
  | "add", [ rd; base; src ]
    when is_imm src
         && (String.lowercase_ascii (String.trim base) = "sp"
            || String.lowercase_ascii (String.trim base) = "pc") ->
    let bytes = parse_imm line src in
    if bytes land 3 <> 0 then fail line "unaligned address offset %d" bytes;
    one
      (Instr.Load_addr
         { from_sp = String.lowercase_ascii (String.trim base) = "sp";
           rd = low_reg line rd;
           imm = bytes / 4 })
  | "add", [ sp; src ]
    when String.lowercase_ascii (String.trim sp) = "sp" && is_imm src ->
    let bytes = parse_imm line src in
    if bytes land 3 <> 0 then fail line "unaligned sp adjustment %d" bytes;
    one (Instr.Sp_adjust (bytes / 4))
  | "sub", [ sp; src ]
    when String.lowercase_ascii (String.trim sp) = "sp" && is_imm src ->
    let bytes = parse_imm line src in
    if bytes land 3 <> 0 then fail line "unaligned sp adjustment %d" bytes;
    one (Instr.Sp_adjust (-(bytes / 4)))
  | "add", [ rd; rm ] -> one (Instr.Hi_add (parse_reg line rd, parse_reg line rm))
  | _, [ rd; rs; amount ]
    when shift_of_mnemonic mnem <> None && is_imm amount ->
    let op, _ = Option.get (shift_of_mnemonic mnem) in
    one (Instr.Shift (op, low_reg line rd, low_reg line rs, parse_imm line amount))
  | _, [ rd; rs ] when shift_of_mnemonic mnem <> None ->
    let _, op = Option.get (shift_of_mnemonic mnem) in
    one (Instr.Alu (op, low_reg line rd, low_reg line rs))
  | _, [ rd; rs ] when alu_of_mnemonic mnem <> None ->
    one (Instr.Alu (Option.get (alu_of_mnemonic mnem), low_reg line rd, low_reg line rs))
  | ("ldr" | "str"), [ rd; mem ] -> (
    let load = mnem = "ldr" in
    match parse_mem line mem with
    | Base_imm (rb, bytes) when Reg.equal rb Reg.sp ->
      if bytes land 3 <> 0 then fail line "unaligned sp-relative offset";
      one (Instr.Mem_sp { load; rd = low_reg line rd; imm = bytes / 4 })
    | Base_imm (rb, bytes) when Reg.equal rb Reg.pc ->
      if not load then fail line "str pc-relative is not encodable";
      if bytes land 3 <> 0 then fail line "unaligned pc-relative offset";
      one (Instr.Ldr_pc (low_reg line rd, bytes / 4))
    | Base_imm (rb, bytes) ->
      if bytes land 3 <> 0 then fail line "unaligned word offset %d" bytes;
      one
        (Instr.Mem_imm
           { load; byte = false; rd = low_reg line rd; rb; imm = bytes / 4 })
    | Base_reg (rb, ro) ->
      one (Instr.Mem_reg { load; byte = false; rd = low_reg line rd; rb; ro }))
  | ("ldrb" | "strb"), [ rd; mem ] -> (
    let load = mnem = "ldrb" in
    match parse_mem line mem with
    | Base_imm (rb, imm) ->
      one (Instr.Mem_imm { load; byte = true; rd = low_reg line rd; rb; imm })
    | Base_reg (rb, ro) ->
      one (Instr.Mem_reg { load; byte = true; rd = low_reg line rd; rb; ro }))
  | ("ldrh" | "strh"), [ rd; mem ] -> (
    let load = mnem = "ldrh" in
    match parse_mem line mem with
    | Base_imm (rb, bytes) ->
      if bytes land 1 <> 0 then fail line "unaligned halfword offset %d" bytes;
      one (Instr.Mem_half { load; rd = low_reg line rd; rb; imm = bytes / 2 })
    | Base_reg (rb, ro) ->
      let op = if load then Instr.LDRH else Instr.STRH in
      one (Instr.Mem_sign { op; rd = low_reg line rd; rb; ro }))
  | ("ldsb" | "ldsh"), [ rd; mem ] -> (
    match parse_mem line mem with
    | Base_reg (rb, ro) ->
      let op = if mnem = "ldsb" then Instr.LDSB else Instr.LDSH in
      one (Instr.Mem_sign { op; rd = low_reg line rd; rb; ro })
    | Base_imm _ -> fail line "%s requires a register offset" mnem)
  | "push", [ regs ] ->
    let rlist, lr = parse_reglist line regs in
    one (Instr.Push { rlist; lr })
  | "pop", [ regs ] ->
    let rlist, pc = parse_reglist line regs in
    one (Instr.Pop { rlist; pc })
  | "stmia", [ rb; regs ] | "ldmia", [ rb; regs ] ->
    let rb = String.trim rb in
    let rb =
      if String.length rb > 0 && rb.[String.length rb - 1] = '!' then
        String.sub rb 0 (String.length rb - 1)
      else rb
    in
    let rb = low_reg line rb in
    let rlist, special = parse_reglist line regs in
    if special then fail line "lr/pc not allowed in %s" mnem;
    if mnem = "stmia" then one (Instr.Stmia (rb, rlist))
    else one (Instr.Ldmia (rb, rlist))
  | "b", [ target ] -> one (Instr.B (branch_offset line env target))
  | "bl", [ target ] ->
    (* Two-halfword BL; the offset is computed from the first halfword. *)
    let off = branch_offset line env target * 2 in
    one (Instr.Bl_hi (off asr 12)) @ [ Instr.Bl_lo ((off lsr 1) land 0x7FF) ]
  | "bx", [ rm ] -> one (Instr.Bx (parse_reg line rm))
  | "swi", [ imm ] -> one (Instr.Swi (parse_imm line imm))
  | "bkpt", [ imm ] -> one (Instr.Bkpt (parse_imm line imm))
  | _, [ target ] when cond_of_branch_mnemonic mnem <> None ->
    let cond = Option.get (cond_of_branch_mnemonic mnem) in
    one (Instr.B_cond (cond, branch_offset line env target))
  | _, _ -> fail line "cannot parse %S" body

(* --- driver ------------------------------------------------------------ *)

let assemble_with_labels ?(origin = 0) src =
  if origin land 1 <> 0 then invalid_arg "Asm.assemble: odd origin";
  let lines = split_lines src in
  let labels = Hashtbl.create 16 in
  (* First pass: label -> halfword index. *)
  let (_ : int) =
    List.fold_left
      (fun here { num; label; body } ->
        (match label with
        | Some name ->
          if Hashtbl.mem labels name then fail num "duplicate label %S" name;
          Hashtbl.add labels name here
        | None -> ());
        match body with
        | Some b -> here + body_length num b
        | None -> here)
      0 lines
  in
  (* Second pass: parse with resolved labels. *)
  let _, rev_instrs =
    List.fold_left
      (fun (here, acc) { num; label = _; body } ->
        match body with
        | None -> (here, acc)
        | Some b ->
          let is = parse_instr { labels; here } num b in
          (here + List.length is, List.rev_append is acc))
      (0, []) lines
  in
  let label_offsets =
    Hashtbl.fold (fun name off acc -> (name, off) :: acc) labels []
    |> List.sort compare
  in
  (List.rev rev_instrs, label_offsets)

let assemble ?origin src = fst (assemble_with_labels ?origin src)

let assemble_words ?origin src = Encode.program (assemble ?origin src)
