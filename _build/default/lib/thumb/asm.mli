(** Tiny two-pass textual assembler for Thumb-16 snippets.

    Accepts the assembly dialect used throughout the paper's test cases:

    {v
        movs r3, #0
      loop:
        ldrb r3, [r3]
        cmp  r3, #0
        beq  loop
        movs r0, #0xAA
    v}

    One instruction or label per line; [;] and [@] start comments;
    immediates are decimal or [0x]-hex; branch targets may be labels or
    [#byte-offset] literals. Mnemonics cover the subset needed by the
    emulation test cases and the code generator (moves, ALU ops,
    loads/stores, push/pop, branches, [bl], [bx], [swi], [bkpt], [nop]). *)

type error = { line : int; message : string }

exception Parse_error of error

val pp_error : error Fmt.t

val assemble : ?origin:int -> string -> Instr.t list
(** [assemble ~origin src] parses and resolves labels, assuming the
    first instruction is placed at byte address [origin] (default 0).
    @raise Parse_error on syntax errors, unknown mnemonics, out-of-range
    immediates, or undefined/duplicate labels. *)

val assemble_words : ?origin:int -> string -> int list
(** {!assemble} followed by {!Encode.program}. *)

val assemble_with_labels :
  ?origin:int -> string -> Instr.t list * (string * int) list
(** Like {!assemble}, also returning each label's halfword offset —
    used by the linker to export symbols from hand-written runtime
    assembly. *)
