(** ARM core registers, [r0] through [r15].

    Registers are represented as plain integers in [0, 15] so they can be
    packed directly into instruction encodings; the smart constructor
    {!of_int} validates the range. *)

type t = private int

val of_int : int -> t
(** [of_int n] is register [rn]. @raise Invalid_argument unless
    [0 <= n <= 15]. *)

val to_int : t -> int

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t

val sp : t
(** Stack pointer, [r13]. *)

val lr : t
(** Link register, [r14]. *)

val pc : t
(** Program counter, [r15]. *)

val is_low : t -> bool
(** Thumb-16 "low" registers [r0]-[r7], addressable by 3-bit fields. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
