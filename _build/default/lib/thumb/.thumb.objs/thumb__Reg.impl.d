lib/thumb/reg.ml: Fmt Int
