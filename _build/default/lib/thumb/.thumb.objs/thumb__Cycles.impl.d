lib/thumb/cycles.ml: Instr
