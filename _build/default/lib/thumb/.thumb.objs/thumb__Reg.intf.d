lib/thumb/reg.mli: Fmt
