lib/thumb/decode.mli: Instr
