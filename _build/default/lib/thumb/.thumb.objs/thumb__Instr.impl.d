lib/thumb/instr.ml: Fmt List Reg String
