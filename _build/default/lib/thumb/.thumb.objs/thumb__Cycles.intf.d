lib/thumb/cycles.mli: Instr
