lib/thumb/decode.ml: Instr Reg
