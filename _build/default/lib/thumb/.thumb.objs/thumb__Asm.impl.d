lib/thumb/asm.ml: Buffer Encode Fmt Hashtbl Instr List Option Reg String
