lib/thumb/asm.mli: Fmt Instr
