lib/thumb/instr.mli: Fmt Reg
