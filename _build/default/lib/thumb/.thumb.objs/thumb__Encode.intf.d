lib/thumb/encode.mli: Instr
