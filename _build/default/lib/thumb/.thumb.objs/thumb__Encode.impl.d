lib/thumb/encode.ml: Bytes Instr List Printf Reg
