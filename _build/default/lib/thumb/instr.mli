(** ARM Thumb-16 (ARMv6-M / ARM7TDMI Thumb) instruction set.

    One constructor per encoding format of the 16-bit Thumb instruction
    set. Branch offsets are stored as the raw signed immediate of the
    encoding (a count of halfwords); the branch target is
    [pc + 4 + 2 * offset] per the ARM architecture manual. *)

(** Condition codes for conditional branches, in encoding order
    (bits [11:8] of format 16). Encodings [0b1110] (AL, undefined for
    [B<cond>]) and [0b1111] (SWI escape) are not conditions. *)
type cond =
  | EQ  (** Z set *)
  | NE  (** Z clear *)
  | CS  (** C set (aka HS) *)
  | CC  (** C clear (aka LO) *)
  | MI  (** N set *)
  | PL  (** N clear *)
  | VS  (** V set *)
  | VC  (** V clear *)
  | HI  (** C set and Z clear *)
  | LS  (** C clear or Z set *)
  | GE  (** N = V *)
  | LT  (** N <> V *)
  | GT  (** Z clear and N = V *)
  | LE  (** Z set or N <> V *)

val cond_to_int : cond -> int
val cond_of_int : int -> cond option
val all_conds : cond list
val cond_name : cond -> string

(** Shift operations of format 1. *)
type shift_op = Lsl | Lsr | Asr

(** Register-register ALU operations of format 4, in encoding order. *)
type alu_op =
  | AND | EOR | LSLr | LSRr | ASRr | ADC | SBC | ROR
  | TST | NEG | CMPr | CMN | ORR | MUL | BIC | MVN

val alu_op_to_int : alu_op -> int
val alu_op_of_int : int -> alu_op

(** Immediate operations of format 3, in encoding order. *)
type imm_op = MOVi | CMPi | ADDi | SUBi

val imm_op_to_int : imm_op -> int
val imm_op_of_int : int -> imm_op

(** Halfword/sign-extended load-store operations of format 8. *)
type sign_op = STRH | LDSB | LDRH | LDSH

type t =
  | Shift of shift_op * Reg.t * Reg.t * int
      (** [op Rd, Rs, #imm5] (format 1). [Shift (Lsl, rd, rs, 0)] is the
          canonical [MOVS Rd, Rs]; [0x0000] is therefore [MOVS r0, r0]. *)
  | Add_sub of { sub : bool; imm : bool; rd : Reg.t; rs : Reg.t; operand : int }
      (** [ADD/SUB Rd, Rs, Rn] or [ADD/SUB Rd, Rs, #imm3] (format 2).
          [operand] is a register number or a 3-bit immediate. *)
  | Imm of imm_op * Reg.t * int  (** [op Rd, #imm8] (format 3). *)
  | Alu of alu_op * Reg.t * Reg.t  (** [op Rd, Rs] (format 4). *)
  | Hi_add of Reg.t * Reg.t  (** [ADD Rd, Rm], high registers (format 5). *)
  | Hi_cmp of Reg.t * Reg.t  (** [CMP Rd, Rm], high registers (format 5). *)
  | Hi_mov of Reg.t * Reg.t  (** [MOV Rd, Rm], high registers (format 5). *)
  | Bx of Reg.t  (** [BX Rm] (format 5). *)
  | Ldr_pc of Reg.t * int
      (** [LDR Rd, \[PC, #imm8*4\]] (format 6); [imm8] stored unscaled. *)
  | Mem_reg of { load : bool; byte : bool; rd : Reg.t; rb : Reg.t; ro : Reg.t }
      (** [STR/STRB/LDR/LDRB Rd, \[Rb, Ro\]] (format 7). *)
  | Mem_sign of { op : sign_op; rd : Reg.t; rb : Reg.t; ro : Reg.t }
      (** [STRH/LDSB/LDRH/LDSH Rd, \[Rb, Ro\]] (format 8). *)
  | Mem_imm of { load : bool; byte : bool; rd : Reg.t; rb : Reg.t; imm : int }
      (** [STR/LDR(B) Rd, \[Rb, #imm5\]] (format 9); word form scaled by 4
          at encode time, [imm] stored unscaled (0-31). *)
  | Mem_half of { load : bool; rd : Reg.t; rb : Reg.t; imm : int }
      (** [STRH/LDRH Rd, \[Rb, #imm5*2\]] (format 10); [imm] unscaled. *)
  | Mem_sp of { load : bool; rd : Reg.t; imm : int }
      (** [STR/LDR Rd, \[SP, #imm8*4\]] (format 11); [imm] unscaled. *)
  | Load_addr of { from_sp : bool; rd : Reg.t; imm : int }
      (** [ADD Rd, PC/SP, #imm8*4] (format 12); [imm] unscaled. *)
  | Sp_adjust of int
      (** [ADD SP, #imm7*4] or [SUB SP, #imm7*4] (format 13); signed word
          count in [-127, 127]. *)
  | Push of { rlist : int; lr : bool }  (** (format 14) *)
  | Pop of { rlist : int; pc : bool }  (** (format 14) *)
  | Stmia of Reg.t * int  (** [STMIA Rb!, {rlist}] (format 15). *)
  | Ldmia of Reg.t * int  (** [LDMIA Rb!, {rlist}] (format 15). *)
  | B_cond of cond * int  (** [B<cond> target]; signed halfword offset (format 16). *)
  | Swi of int  (** [SWI imm8] (format 17). *)
  | B of int  (** [B target]; signed 11-bit halfword offset (format 18). *)
  | Bl_hi of int  (** First half of [BL] (format 19, H=0); signed 11-bit. *)
  | Bl_lo of int  (** Second half of [BL] (format 19, H=1); unsigned 11-bit. *)
  | Bkpt of int  (** [BKPT imm8] (ARMv5T+). *)
  | Undefined of int
      (** A 16-bit word with no defined Thumb decoding; the raw word is
          kept so perturbed instructions can be reported faithfully. *)

val nop : t
(** [MOVS r0, r0], the all-zero encoding. *)

val is_branch : t -> bool
(** Conditional and unconditional direct branches, [BX], and [BL] parts. *)

val is_load : t -> bool
val is_store : t -> bool

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
