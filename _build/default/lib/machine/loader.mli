(** Convenience harness: map a flash + SRAM address space shaped like the
    paper's STM32 targets, load a program, and produce a ready-to-run
    CPU. *)

type layout = {
  flash_base : int;
  flash_size : int;
  sram_base : int;
  sram_size : int;
  stack_top : int;
}

val stm32_layout : layout
(** Flash at [0x08000000] (128 KiB), SRAM at [0x20000000] (16 KiB),
    initial SP [0x20003FF0] — chosen so the paper's observed
    SP-derived corruption values ([0x20003FE8], [0x20003FF6]) are
    plausible stack addresses. *)

type t = { mem : Memory.t; cpu : Cpu.t; layout : layout }

val load_instrs : ?layout:layout -> Thumb.Instr.t list -> t
(** Map the layout, place the encoded program at [flash_base], point the
    CPU at it with SP = [stack_top]. *)

val load_asm : ?layout:layout -> string -> t
(** [load_instrs] of [Thumb.Asm.assemble]. *)

val code_word : t -> index:int -> int
(** Halfword of the loaded program at instruction [index] (for
    mask-based corruption). *)

val patch_word : t -> index:int -> int -> unit
(** Overwrite the halfword at instruction [index] (mask-based glitch
    injection, as the emulation framework does). *)
