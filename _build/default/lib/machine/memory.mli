(** Sparse 32-bit physical memory with explicit mappings.

    Accesses to unmapped addresses report a fault instead of raising, so
    the executor can classify glitch outcomes ("bad read", "bad fetch")
    the same way the paper's Unicorn harness does. Word and halfword
    accesses must be naturally aligned, matching Cortex-M0 behaviour
    where unaligned accesses HardFault. *)

type t

type fault =
  | Unmapped of int  (** address with no RAM/ROM/device mapping *)
  | Unaligned of int  (** naturally misaligned halfword/word access *)

val pp_fault : fault Fmt.t

val create : unit -> t

val map : t -> addr:int -> size:int -> unit
(** Back [addr, addr+size) with zero-initialised RAM.
    @raise Invalid_argument on overlap with an existing mapping. *)

val add_device : t ->
  addr:int -> size:int -> read:(int -> int) -> write:(int -> int -> unit) ->
  unit
(** Map a byte-granularity device: [read offset] and [write offset byte]
    are called with offsets relative to [addr].
    @raise Invalid_argument on overlap with an existing mapping. *)

val is_mapped : t -> int -> bool

val clear : t -> unit
(** Zero every RAM region (devices are untouched). Used by glitch
    campaigns to reuse one address space across millions of runs. *)

type snapshot

val snapshot : t -> snapshot
(** Copy of all RAM contents (device state is the device's problem). *)

val restore : t -> snapshot -> unit
(** Restore RAM to a snapshot taken from the same memory.
    @raise Invalid_argument if region shapes differ. *)

val read_u8 : t -> int -> (int, fault) result
val read_u16 : t -> int -> (int, fault) result
val read_u32 : t -> int -> (int, fault) result
val write_u8 : t -> int -> int -> (unit, fault) result
val write_u16 : t -> int -> int -> (unit, fault) result
val write_u32 : t -> int -> int -> (unit, fault) result

val load_bytes : t -> addr:int -> bytes -> unit
(** Bulk store for program loading. @raise Invalid_argument if any byte
    falls outside RAM mappings. *)
