type stop =
  | Breakpoint of int
  | Swi_trap of int
  | Bad_read of int
  | Bad_write of int
  | Bad_fetch of int
  | Invalid_instruction of int
  | Step_limit

let pp_stop ppf = function
  | Breakpoint n -> Fmt.pf ppf "breakpoint #%d" n
  | Swi_trap n -> Fmt.pf ppf "swi #%d" n
  | Bad_read a -> Fmt.pf ppf "bad read at 0x%08x" a
  | Bad_write a -> Fmt.pf ppf "bad write at 0x%08x" a
  | Bad_fetch a -> Fmt.pf ppf "bad fetch at 0x%08x" a
  | Invalid_instruction w -> Fmt.pf ppf "invalid instruction 0x%04x" w
  | Step_limit -> Fmt.string ppf "step limit exhausted"

let stop_equal (a : stop) (b : stop) = a = b

type step_result = Running | Stopped of stop

let mask32 v = v land 0xFFFFFFFF
let bit31 v = v land 0x80000000 <> 0

open Thumb

(* Flag updates ---------------------------------------------------------- *)

let set_nz (cpu : Cpu.t) result =
  cpu.n <- bit31 result;
  cpu.z <- result = 0

(* result, carry-out, overflow of a + b + carry_in over 32 bits *)
let add_with_carry a b carry_in =
  let wide = a + b + if carry_in then 1 else 0 in
  let result = mask32 wide in
  let carry = wide > 0xFFFFFFFF in
  (* signed overflow: operands same sign, result different sign *)
  let overflow = bit31 (lnot (a lxor b) land (a lxor result)) in
  (result, carry, overflow)

let adds (cpu : Cpu.t) a b =
  let r, c, v = add_with_carry a b false in
  set_nz cpu r;
  cpu.c <- c;
  cpu.v <- v;
  r

let subs (cpu : Cpu.t) a b =
  let r, c, v = add_with_carry a (mask32 (lnot b)) true in
  set_nz cpu r;
  cpu.c <- c;
  cpu.v <- v;
  r

let adcs (cpu : Cpu.t) a b =
  let r, c, v = add_with_carry a b cpu.c in
  set_nz cpu r;
  cpu.c <- c;
  cpu.v <- v;
  r

let sbcs (cpu : Cpu.t) a b =
  let r, c, v = add_with_carry a (mask32 (lnot b)) cpu.c in
  set_nz cpu r;
  cpu.c <- c;
  cpu.v <- v;
  r

(* Immediate-amount shifts (format 1): amount 0 encodes special cases. *)
let shift_imm (cpu : Cpu.t) op value amount =
  match (op : Instr.shift_op), amount with
  | Lsl, 0 -> value (* MOVS: carry unchanged *)
  | Lsl, n ->
    cpu.c <- value land (1 lsl (32 - n)) <> 0;
    mask32 (value lsl n)
  | Lsr, 0 ->
    (* encodes LSR #32 *)
    cpu.c <- bit31 value;
    0
  | Lsr, n ->
    cpu.c <- value land (1 lsl (n - 1)) <> 0;
    value lsr n
  | Asr, 0 ->
    (* encodes ASR #32 *)
    cpu.c <- bit31 value;
    if bit31 value then 0xFFFFFFFF else 0
  | Asr, n ->
    cpu.c <- value land (1 lsl (n - 1)) <> 0;
    let signed = if bit31 value then value lor (-1 lxor 0xFFFFFFFF) else value in
    mask32 (signed asr n)

(* Register-amount shifts (format 4): amount taken from low byte. *)
let shift_reg (cpu : Cpu.t) op value amount =
  let amount = amount land 0xFF in
  if amount = 0 then value
  else
    match (op : Instr.alu_op) with
    | LSLr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (32 - amount)) <> 0;
        mask32 (value lsl amount)
      end
      else if amount = 32 then begin
        cpu.c <- value land 1 <> 0;
        0
      end
      else begin
        cpu.c <- false;
        0
      end
    | LSRr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (amount - 1)) <> 0;
        value lsr amount
      end
      else if amount = 32 then begin
        cpu.c <- bit31 value;
        0
      end
      else begin
        cpu.c <- false;
        0
      end
    | ASRr ->
      if amount < 32 then begin
        cpu.c <- value land (1 lsl (amount - 1)) <> 0;
        let signed =
          if bit31 value then value lor (-1 lxor 0xFFFFFFFF) else value
        in
        mask32 (signed asr amount)
      end
      else begin
        cpu.c <- bit31 value;
        if bit31 value then 0xFFFFFFFF else 0
      end
    | ROR ->
      let n = amount land 31 in
      let result =
        if n = 0 then value else mask32 ((value lsr n) lor (value lsl (32 - n)))
      in
      cpu.c <- bit31 result;
      result
    | AND | EOR | ADC | SBC | TST | NEG | CMPr | CMN | ORR | MUL | BIC | MVN ->
      invalid_arg "Exec.shift_reg: not a shift op"

(* Memory helpers --------------------------------------------------------- *)

let sign_extend_8 v = if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
let sign_extend_16 v = if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v

let rlist_regs rlist =
  List.filter (fun i -> rlist land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Execution --------------------------------------------------------------- *)

let execute mem (cpu : Cpu.t) (i : Instr.t) : step_result =
  let pc = Cpu.pc cpu in
  let next = ref (pc + 2) in
  let get r = Cpu.get cpu r in
  let set r v = Cpu.set cpu r v in
  let outcome = ref Running in
  let stop s = outcome := Stopped s in
  let load width addr k =
    let result =
      match width with
      | `W -> Memory.read_u32 mem addr
      | `H -> Memory.read_u16 mem addr
      | `B -> Memory.read_u8 mem addr
    in
    match result with
    | Ok v -> k v
    | Error (Memory.Unmapped a | Memory.Unaligned a) -> stop (Bad_read a)
  in
  let store width addr v =
    let result =
      match width with
      | `W -> Memory.write_u32 mem addr v
      | `H -> Memory.write_u16 mem addr v
      | `B -> Memory.write_u8 mem addr v
    in
    match result with
    | Ok () -> ()
    | Error (Memory.Unmapped a | Memory.Unaligned a) -> stop (Bad_write a)
  in
  (match i with
  | Shift (op, rd, rs, imm) ->
    let r = shift_imm cpu op (get rs) imm in
    set_nz cpu r;
    set rd r
  | Add_sub { sub; imm; rd; rs; operand } ->
    let b = if imm then operand else get (Reg.of_int operand) in
    let r = if sub then subs cpu (get rs) b else adds cpu (get rs) b in
    set rd r
  | Imm (MOVi, rd, imm) ->
    set_nz cpu imm;
    set rd imm
  | Imm (CMPi, rd, imm) -> ignore (subs cpu (get rd) imm)
  | Imm (ADDi, rd, imm) -> set rd (adds cpu (get rd) imm)
  | Imm (SUBi, rd, imm) -> set rd (subs cpu (get rd) imm)
  | Alu (op, rd, rs) -> (
    let a = get rd and b = get rs in
    match op with
    | AND ->
      let r = a land b in
      set_nz cpu r;
      set rd r
    | EOR ->
      let r = a lxor b in
      set_nz cpu r;
      set rd r
    | ORR ->
      let r = a lor b in
      set_nz cpu r;
      set rd r
    | BIC ->
      let r = a land lnot b land 0xFFFFFFFF in
      set_nz cpu r;
      set rd r
    | MVN ->
      let r = mask32 (lnot b) in
      set_nz cpu r;
      set rd r
    | TST -> set_nz cpu (a land b)
    | NEG -> set rd (subs cpu 0 b)
    | CMPr -> ignore (subs cpu a b)
    | CMN -> ignore (adds cpu a b)
    | ADC -> set rd (adcs cpu a b)
    | SBC -> set rd (sbcs cpu a b)
    | MUL ->
      let r = mask32 (a * b) in
      set_nz cpu r;
      set rd r
    | LSLr | LSRr | ASRr | ROR ->
      let r = shift_reg cpu op a b in
      set_nz cpu r;
      set rd r)
  | Hi_add (rd, rm) ->
    let r = mask32 (get rd + get rm) in
    if Reg.equal rd Reg.pc then next := r land lnot 1 else set rd r
  | Hi_cmp (rd, rm) -> ignore (subs cpu (get rd) (get rm))
  | Hi_mov (rd, rm) ->
    let r = get rm in
    if Reg.equal rd Reg.pc then next := r land lnot 1 else set rd r
  | Bx rm ->
    let target = get rm in
    if target land 1 = 0 then
      (* Leaving Thumb state is an error on a Cortex-M-class core. *)
      stop (Invalid_instruction (target land 0xFFFF))
    else next := target land lnot 1
  | Ldr_pc (rd, imm) ->
    let addr = ((pc + 4) land lnot 3) + (imm * 4) in
    load `W addr (fun v -> set rd v)
  | Mem_reg { load = l; byte; rd; rb; ro } ->
    let addr = mask32 (get rb + get ro) in
    let width = if byte then `B else `W in
    if l then load width addr (fun v -> set rd v)
    else store width addr (get rd)
  | Mem_sign { op; rd; rb; ro } -> (
    let addr = mask32 (get rb + get ro) in
    match op with
    | STRH -> store `H addr (get rd)
    | LDRH -> load `H addr (fun v -> set rd v)
    | LDSB -> load `B addr (fun v -> set rd (sign_extend_8 v))
    | LDSH -> load `H addr (fun v -> set rd (sign_extend_16 v)))
  | Mem_imm { load = l; byte; rd; rb; imm } ->
    let addr = mask32 (get rb + if byte then imm else imm * 4) in
    let width = if byte then `B else `W in
    if l then load width addr (fun v -> set rd v)
    else store width addr (get rd)
  | Mem_half { load = l; rd; rb; imm } ->
    let addr = mask32 (get rb + (imm * 2)) in
    if l then load `H addr (fun v -> set rd v) else store `H addr (get rd)
  | Mem_sp { load = l; rd; imm } ->
    let addr = mask32 (get Reg.sp + (imm * 4)) in
    if l then load `W addr (fun v -> set rd v) else store `W addr (get rd)
  | Load_addr { from_sp; rd; imm } ->
    let base = if from_sp then get Reg.sp else (pc + 4) land lnot 3 in
    set rd (mask32 (base + (imm * 4)))
  | Sp_adjust words -> set Reg.sp (mask32 (get Reg.sp + (words * 4)))
  | Push { rlist; lr } ->
    let regs = rlist_regs rlist @ if lr then [ 14 ] else [] in
    let count = List.length regs in
    let base = mask32 (get Reg.sp - (4 * count)) in
    List.iteri
      (fun idx r ->
        if !outcome = Running then
          store `W (base + (4 * idx)) (get (Reg.of_int r)))
      regs;
    if !outcome = Running then set Reg.sp base
  | Pop { rlist; pc = load_pc } ->
    let regs = rlist_regs rlist in
    let base = get Reg.sp in
    List.iteri
      (fun idx r ->
        if !outcome = Running then
          load `W (base + (4 * idx)) (fun v -> set (Reg.of_int r) v))
      regs;
    let count = List.length regs in
    if !outcome = Running && load_pc then
      load `W (base + (4 * count)) (fun v -> next := v land lnot 1);
    if !outcome = Running then
      set Reg.sp (mask32 (base + (4 * (count + if load_pc then 1 else 0))))
  | Stmia (rb, rlist) ->
    let base = ref (get rb) in
    List.iter
      (fun r ->
        if !outcome = Running then begin
          store `W !base (get (Reg.of_int r));
          base := mask32 (!base + 4)
        end)
      (rlist_regs rlist);
    if !outcome = Running then set rb !base
  | Ldmia (rb, rlist) ->
    let base = ref (get rb) in
    List.iter
      (fun r ->
        if !outcome = Running then
          load `W !base (fun v ->
              set (Reg.of_int r) v;
              base := mask32 (!base + 4)))
      (rlist_regs rlist);
    if !outcome = Running then set rb !base
  | B_cond (cond, off) ->
    if Cpu.condition_holds cpu cond then next := pc + 4 + (off * 2)
  | Swi imm -> stop (Swi_trap imm)
  | B off -> next := pc + 4 + (off * 2)
  | Bl_hi off -> Cpu.set cpu Reg.lr (mask32 (pc + 4 + (off lsl 12)))
  | Bl_lo off ->
    let target = mask32 (Cpu.get cpu Reg.lr + (off lsl 1)) in
    Cpu.set cpu Reg.lr ((pc + 2) lor 1);
    next := target land lnot 1
  | Bkpt imm -> stop (Breakpoint imm)
  | Undefined w -> stop (Invalid_instruction w));
  match !outcome with
  | Running ->
    Cpu.set_pc cpu !next;
    Running
  | Stopped _ as s -> s

let step ?fetch mem cpu =
  let pc = Cpu.pc cpu in
  let word =
    match fetch with
    | Some f -> (
      match f pc with
      | Some w -> Ok w
      | None -> Memory.read_u16 mem pc)
    | None -> Memory.read_u16 mem pc
  in
  match word with
  | Error (Memory.Unmapped a | Memory.Unaligned a) -> Stopped (Bad_fetch a)
  | Ok w -> execute mem cpu (Decode.instr w)

let run ?fetch ?(max_steps = 10_000) mem cpu =
  let rec go remaining =
    if remaining = 0 then Step_limit
    else
      match step ?fetch mem cpu with
      | Running -> go (remaining - 1)
      | Stopped s -> s
  in
  go max_steps
