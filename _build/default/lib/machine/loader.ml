type layout = {
  flash_base : int;
  flash_size : int;
  sram_base : int;
  sram_size : int;
  stack_top : int;
}

let stm32_layout =
  { flash_base = 0x08000000;
    flash_size = 128 * 1024;
    sram_base = 0x20000000;
    sram_size = 16 * 1024;
    stack_top = 0x20003FF0 }

type t = { mem : Memory.t; cpu : Cpu.t; layout : layout }

let load_instrs ?(layout = stm32_layout) instrs =
  let mem = Memory.create () in
  Memory.map mem ~addr:layout.flash_base ~size:layout.flash_size;
  Memory.map mem ~addr:layout.sram_base ~size:layout.sram_size;
  Memory.load_bytes mem ~addr:layout.flash_base (Thumb.Encode.to_bytes instrs);
  let cpu = Cpu.create ~sp:layout.stack_top ~pc:layout.flash_base () in
  { mem; cpu; layout }

let load_asm ?layout src = load_instrs ?layout (Thumb.Asm.assemble src)

let code_word t ~index =
  match Memory.read_u16 t.mem (t.layout.flash_base + (2 * index)) with
  | Ok w -> w
  | Error fault -> invalid_arg (Fmt.str "Loader.code_word: %a" Memory.pp_fault fault)

let patch_word t ~index w =
  match Memory.write_u16 t.mem (t.layout.flash_base + (2 * index)) w with
  | Ok () -> ()
  | Error fault ->
    invalid_arg (Fmt.str "Loader.patch_word: %a" Memory.pp_fault fault)
