type fault = Unmapped of int | Unaligned of int

let pp_fault ppf = function
  | Unmapped a -> Fmt.pf ppf "unmapped access at 0x%08x" a
  | Unaligned a -> Fmt.pf ppf "unaligned access at 0x%08x" a

type region =
  | Ram of { base : int; data : Bytes.t }
  | Device of { base : int; size : int; read : int -> int; write : int -> int -> unit }

type t = { mutable regions : region list }

let create () = { regions = [] }

let region_span = function
  | Ram { base; data } -> (base, base + Bytes.length data)
  | Device { base; size; _ } -> (base, base + size)

let overlaps t lo hi =
  List.exists
    (fun r ->
      let rlo, rhi = region_span r in
      lo < rhi && rlo < hi)
    t.regions

let check_new t ~addr ~size =
  if size <= 0 then invalid_arg "Memory: non-positive region size";
  if addr < 0 then invalid_arg "Memory: negative base address";
  if overlaps t addr (addr + size) then
    invalid_arg (Printf.sprintf "Memory: region 0x%08x+%d overlaps" addr size)

let map t ~addr ~size =
  check_new t ~addr ~size;
  t.regions <- Ram { base = addr; data = Bytes.make size '\000' } :: t.regions

let add_device t ~addr ~size ~read ~write =
  check_new t ~addr ~size;
  t.regions <- Device { base = addr; size; read; write } :: t.regions

let find t addr =
  List.find_opt
    (fun r ->
      let lo, hi = region_span r in
      addr >= lo && addr < hi)
    t.regions

let is_mapped t addr = find t addr <> None

let clear t =
  List.iter
    (function
      | Ram { data; _ } -> Bytes.fill data 0 (Bytes.length data) '\000'
      | Device _ -> ())
    t.regions

let byte_read t addr =
  match find t addr with
  | Some (Ram { base; data }) -> Ok (Bytes.get_uint8 data (addr - base))
  | Some (Device { base; read; _ }) -> Ok (read (addr - base) land 0xFF)
  | None -> Error (Unmapped addr)

let byte_write t addr v =
  match find t addr with
  | Some (Ram { base; data }) ->
    Bytes.set_uint8 data (addr - base) (v land 0xFF);
    Ok ()
  | Some (Device { base; write; _ }) ->
    write (addr - base) (v land 0xFF);
    Ok ()
  | None -> Error (Unmapped addr)

let read_u8 = byte_read
let write_u8 = byte_write

let rec read_le t addr n =
  if n = 0 then Ok 0
  else
    match byte_read t addr with
    | Error _ as e -> e
    | Ok b -> (
      match read_le t (addr + 1) (n - 1) with
      | Error _ as e -> e
      | Ok rest -> Ok (b lor (rest lsl 8)))

let rec write_le t addr v n =
  if n = 0 then Ok ()
  else
    match byte_write t addr (v land 0xFF) with
    | Error _ as e -> e
    | Ok () -> write_le t (addr + 1) (v lsr 8) (n - 1)

let read_u16 t addr =
  if addr land 1 <> 0 then Error (Unaligned addr) else read_le t addr 2

let read_u32 t addr =
  if addr land 3 <> 0 then Error (Unaligned addr) else read_le t addr 4

let write_u16 t addr v =
  if addr land 1 <> 0 then Error (Unaligned addr) else write_le t addr v 2

let write_u32 t addr v =
  if addr land 3 <> 0 then Error (Unaligned addr) else write_le t addr v 4

let load_bytes t ~addr b =
  Bytes.iteri
    (fun i c ->
      match byte_write t (addr + i) (Char.code c) with
      | Ok () -> ()
      | Error _ ->
        invalid_arg
          (Printf.sprintf "Memory.load_bytes: 0x%08x is not mapped" (addr + i)))
    b

type snapshot = (int * Bytes.t) list

let snapshot t =
  List.filter_map
    (function
      | Ram { base; data } -> Some (base, Bytes.copy data)
      | Device _ -> None)
    t.regions

let restore t snap =
  List.iter
    (fun (base, saved) ->
      match find t base with
      | Some (Ram { base = b; data }) when b = base
                                           && Bytes.length data = Bytes.length saved ->
        Bytes.blit saved 0 data 0 (Bytes.length saved)
      | Some _ | None -> invalid_arg "Memory.restore: mismatched snapshot")
    snap
