lib/machine/exec.ml: Cpu Decode Fmt Instr List Memory Reg Thumb
