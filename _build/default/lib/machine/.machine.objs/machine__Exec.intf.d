lib/machine/exec.mli: Cpu Fmt Memory Thumb
