lib/machine/loader.ml: Cpu Fmt Memory Thumb
