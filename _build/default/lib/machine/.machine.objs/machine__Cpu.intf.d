lib/machine/cpu.mli: Fmt Thumb
