lib/machine/memory.mli: Fmt
