lib/machine/loader.mli: Cpu Memory Thumb
