lib/machine/cpu.ml: Array Fmt Thumb
