lib/machine/memory.ml: Bytes Char Fmt List Printf
