let pct ~num ~den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let pp_pct ppf p =
  if p = 0. then Fmt.string ppf "0%"
  else if p >= 10. then Fmt.pf ppf "%.2f%%" p
  else if p >= 0.01 then Fmt.pf ppf "%.3f%%" p
  else Fmt.pf ppf "%.6f%%" p

let pp_count_pct ppf (num, den) = Fmt.pf ppf "%d (%a)" num pp_pct (pct ~num ~den)
