lib/stats/table.mli:
