lib/stats/rate.ml: Fmt
