lib/stats/table.ml: Array Buffer List String
