lib/stats/counter.mli:
