(** String-keyed tallies used by campaign reports. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
val total : t -> int

val to_list : t -> (string * int) list
(** Sorted by descending count, then key. *)
