let render ~header rows =
  let cols = List.length header in
  let pad row = row @ List.init (max 0 (cols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let rule = List.init cols (fun i -> String.make widths.(i) '-') in
  emit rule;
  List.iter emit rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)
