(** Percentage helpers matching the paper's reporting style
    (e.g. "585 (0.705%)"). *)

val pct : num:int -> den:int -> float
(** 100 * num/den; 0 when [den] is 0. *)

val pp_pct : Format.formatter -> float -> unit
(** Adaptive precision: "11.35%", "0.705%", "0.000306%". *)

val pp_count_pct : Format.formatter -> int * int -> unit
(** [(num, den)] as "num (p%)". *)
