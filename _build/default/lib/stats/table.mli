(** Aligned plain-text tables for reproducing the paper's tables on a
    terminal. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays out all cells left-aligned in columns wide
    enough for their largest member, with a rule under the header. Rows
    shorter than the header are padded with empty cells. *)

val print : header:string list -> string list list -> unit
