type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 16

let incr ?(by = 1) t key =
  Hashtbl.replace t key (by + Option.value ~default:0 (Hashtbl.find_opt t key))

let get t key = Option.value ~default:0 (Hashtbl.find_opt t key)
let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (k1, v1) (k2, v2) ->
         match compare v2 v1 with 0 -> compare k1 k2 | c -> c)
