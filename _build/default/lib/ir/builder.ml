type t = {
  fn : Types.func;
  mutable cursor : Types.block;
  mutable next_temp : int;
  mutable next_label : int;
}

let create ~fname ~params ~returns_value =
  let entry = { Types.label = "entry"; instrs = []; term = Types.Unreachable } in
  let fn =
    { Types.fname; params; returns_value; locals = params; blocks = [ entry ] }
  in
  { fn; cursor = entry; next_temp = 0; next_label = 0 }

let func t = t.fn

let add_local t name =
  if not (List.mem name t.fn.locals) then t.fn.locals <- t.fn.locals @ [ name ]

let fresh_temp t =
  let n = t.next_temp in
  t.next_temp <- n + 1;
  n

let fresh_label t hint =
  let n = t.next_label in
  t.next_label <- n + 1;
  Printf.sprintf "%s.%d" hint n

let new_block t label =
  let b = { Types.label; instrs = []; term = Types.Unreachable } in
  t.fn.blocks <- t.fn.blocks @ [ b ];
  t.cursor <- b;
  b

let position_at t b = t.cursor <- b
let current_block t = t.cursor

let emit t i = t.cursor.Types.instrs <- t.cursor.Types.instrs @ [ i ]

let load ?(volatile = false) t src =
  let dst = fresh_temp t in
  emit t (Types.Load { dst; src; volatile });
  Types.Temp dst

let store ?(volatile = false) t dst src = emit t (Types.Store { dst; src; volatile })

let binop t op lhs rhs =
  let dst = fresh_temp t in
  emit t (Types.Binop { dst; op; lhs; rhs });
  Types.Temp dst

let icmp t op lhs rhs =
  let dst = fresh_temp t in
  emit t (Types.Icmp { dst; op; lhs; rhs });
  Types.Temp dst

let call t ?(dst = false) callee args =
  if dst then begin
    let d = fresh_temp t in
    emit t (Types.Call { dst = Some d; callee; args });
    Some (Types.Temp d)
  end
  else begin
    emit t (Types.Call { dst = None; callee; args });
    None
  end

let br t label = t.cursor.Types.term <- Types.Br label

let cond_br t cond ~if_true ~if_false =
  t.cursor.Types.term <- Types.Cond_br { cond; if_true; if_false }

let ret t v = t.cursor.Types.term <- Types.Ret v

let switch t value ~cases ~default =
  t.cursor.Types.term <- Types.Switch { value; cases; default }
