(** Imperative construction API for IR functions, in the style of
    LLVM's IRBuilder: a cursor positioned at the end of a block, fresh
    temp and label allocation, and helpers for each instruction. *)

type t

val create : fname:string -> params:string list -> returns_value:bool -> t
(** Start a function with an empty entry block labelled ["entry"];
    parameters are registered as locals. *)

val func : t -> Types.func
(** The function under construction (shared, mutable). *)

val add_local : t -> string -> unit
(** Register a stack slot; repeat registrations are ignored. *)

val fresh_temp : t -> int
val fresh_label : t -> string -> string
(** [fresh_label t hint] is a unique label like ["hint.3"]. *)

val new_block : t -> string -> Types.block
(** Append a block with the given (already unique) label and move the
    cursor to it. The block initially ends in [Unreachable]. *)

val position_at : t -> Types.block -> unit
val current_block : t -> Types.block

val load : ?volatile:bool -> t -> Types.var -> Types.value
val store : ?volatile:bool -> t -> Types.var -> Types.value -> unit
val binop : t -> Types.binop -> Types.value -> Types.value -> Types.value
val icmp : t -> Types.icmp -> Types.value -> Types.value -> Types.value
val call : t -> ?dst:bool -> string -> Types.value list -> Types.value option
(** [dst] defaults to false (no result temp). *)

val br : t -> string -> unit
val cond_br : t -> Types.value -> if_true:string -> if_false:string -> unit
val ret : t -> Types.value option -> unit

val switch :
  t -> Types.value -> cases:(int * string) list -> default:string -> unit
(** Terminator setters; each finalises the current block. *)
