(** A small LLVM-flavoured intermediate representation.

    Functions are graphs of basic blocks; every block ends in exactly one
    terminator. Program variables (globals, parameters and C locals)
    live in memory and are accessed through [Load]/[Store] — the
    [-O0 + mem2reg-less] style — while instruction results are
    write-once virtual registers ([Temp]). [volatile] marks accesses the
    GlitchResistor passes must not replicate and the code generator must
    not reorder or elide, exactly as in LLVM.

    All values are 32-bit words; signedness is carried by the operation
    (e.g. [Slt] vs [Ult]), not the type. *)

type var =
  | Global of string
  | Local of string  (** parameter or stack slot, per-function *)

type value =
  | Const of int  (** 32-bit, stored in [0, 0xFFFFFFFF] *)
  | Temp of int

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type instr =
  | Load of { dst : int; src : var; volatile : bool }
  | Store of { dst : var; src : value; volatile : bool }
  | Binop of { dst : int; op : binop; lhs : value; rhs : value }
  | Icmp of { dst : int; op : icmp; lhs : value; rhs : value }
      (** [dst] receives 0 or 1. *)
  | Call of { dst : int option; callee : string; args : value list }

type terminator =
  | Br of string
  | Cond_br of { cond : value; if_true : string; if_false : string }
  | Switch of { value : value; cases : (int * string) list; default : string }
      (** LLVM's SwitchInst: first matching case wins, else default. *)
  | Ret of value option
  | Unreachable

type block = {
  label : string;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : string list;  (** locals that receive argument values on entry *)
  returns_value : bool;
  mutable locals : string list;  (** all stack slots, including params *)
  mutable blocks : block list;  (** head is the entry block *)
}

type global = {
  gname : string;
  init : int;
  volatile : bool;
  mutable sensitive : bool;
      (** marked by configuration for the data-integrity pass *)
}

type modul = {
  mutable globals : global list;
  mutable funcs : func list;
  mutable externs : string list;
      (** callees resolved by the runtime (board intrinsics, detection
          hooks) rather than by IR functions *)
}

val mask32 : int -> int
val to_signed : int -> int

val eval_binop : binop -> int -> int -> int
(** 32-bit semantics; division/remainder by zero yields 0 (the
    interpreter and the board runtime agree on this to keep defended and
    undefended programs comparable). *)

val eval_icmp : icmp -> int -> int -> int

val negate_icmp : icmp -> icmp
(** Logical complement: [Eq <-> Ne], [Slt <-> Sge], ... Used by the
    branch-duplication pass to build the opposite re-check. *)

val find_func : modul -> string -> func option
val find_block : func -> string -> block option
val find_global : modul -> string -> global option

val successors : terminator -> string list

val iter_instrs : func -> (block -> instr -> unit) -> unit

val map_func_instrs : func -> (block -> instr -> instr list) -> unit
(** Rewrite every instruction to a (possibly longer) sequence. *)

val max_temp : func -> int
(** Largest temp index used; -1 if none. *)

val pp_value : value Fmt.t
val pp_instr : instr Fmt.t
val pp_terminator : terminator Fmt.t
val pp_func : func Fmt.t
val pp_modul : modul Fmt.t
