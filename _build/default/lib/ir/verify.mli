(** Structural well-formedness checks, run after lowering and after
    every GlitchResistor pass (like LLVM's verifier): branch targets
    exist, labels and temps are unique, locals/globals/callees are
    declared, and value-returning functions do not [ret void]. *)

type violation = { func : string; message : string }

val pp_violation : violation Fmt.t

val func : Types.modul -> Types.func -> violation list
val modul : Types.modul -> violation list

val check_exn : Types.modul -> unit
(** @raise Invalid_argument listing all violations, if any. *)
