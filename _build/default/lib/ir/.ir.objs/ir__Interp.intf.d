lib/ir/interp.mli: Types
