lib/ir/types.ml: Fmt List Option
