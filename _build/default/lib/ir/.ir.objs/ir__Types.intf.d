lib/ir/types.mli: Fmt
