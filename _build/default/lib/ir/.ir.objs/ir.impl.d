lib/ir/ir.ml: Builder Interp Types Verify
