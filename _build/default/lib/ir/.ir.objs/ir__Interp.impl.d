lib/ir/interp.ml: Fmt Hashtbl List Option Printf Types
