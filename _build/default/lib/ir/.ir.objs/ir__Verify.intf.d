lib/ir/verify.mli: Fmt Types
