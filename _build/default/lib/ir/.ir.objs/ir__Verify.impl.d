lib/ir/verify.ml: Fmt Hashtbl List Option Types
