type violation = { func : string; message : string }

let pp_violation ppf { func; message } = Fmt.pf ppf "%s: %s" func message

let func (m : Types.modul) (f : Types.func) =
  let bad = ref [] in
  let report fmt =
    Fmt.kstr (fun message -> bad := { func = f.fname; message } :: !bad) fmt
  in
  (* unique labels *)
  let labels = List.map (fun (b : Types.block) -> b.label) f.blocks in
  List.iteri
    (fun i l ->
      if List.exists (fun l' -> l' = l) (List.filteri (fun j _ -> j < i) labels)
      then report "duplicate label %s" l)
    labels;
  if f.blocks = [] then report "no blocks";
  (* defined names *)
  let known_var = function
    | Types.Local name ->
      if not (List.mem name f.locals) then report "undeclared local %s" name
    | Types.Global name ->
      if Types.find_global m name = None then report "undeclared global %s" name
  in
  let callees =
    List.map (fun (g : Types.func) -> g.fname) m.funcs @ m.externs
  in
  (* single-assignment temps, defined before use in block order *)
  let defined = Hashtbl.create 64 in
  let define t =
    if Hashtbl.mem defined t then report "temp t%d assigned twice" t
    else Hashtbl.add defined t ()
  in
  let use = function
    | Types.Const _ -> ()
    | Types.Temp t -> if not (Hashtbl.mem defined t) then report "t%d used before definition" t
  in
  List.iter
    (fun (b : Types.block) ->
      List.iter
        (fun i ->
          match i with
          | Types.Load { dst; src; _ } ->
            known_var src;
            define dst
          | Types.Store { dst; src; _ } ->
            known_var dst;
            use src
          | Types.Binop { dst; lhs; rhs; _ } | Types.Icmp { dst; lhs; rhs; _ } ->
            use lhs;
            use rhs;
            define dst
          | Types.Call { dst; callee; args } ->
            List.iter use args;
            if not (List.mem callee callees) then
              report "call to unknown function %s" callee;
            Option.iter define dst)
        b.instrs;
      match b.term with
      | Types.Br l ->
        if not (List.mem l labels) then report "branch to unknown label %s" l
      | Types.Cond_br { cond; if_true; if_false } ->
        use cond;
        List.iter
          (fun l ->
            if not (List.mem l labels) then report "branch to unknown label %s" l)
          [ if_true; if_false ]
      | Types.Switch { value; cases; default } ->
        use value;
        List.iter
          (fun l ->
            if not (List.mem l labels) then report "branch to unknown label %s" l)
          (default :: List.map snd cases);
        let case_values = List.map fst cases in
        if List.length (List.sort_uniq compare case_values) <> List.length case_values
        then report "duplicate switch case values"
      | Types.Ret (Some v) ->
        use v;
        if not f.returns_value then report "ret value in void function"
      | Types.Ret None ->
        if f.returns_value then report "ret void in value-returning function"
      | Types.Unreachable -> ())
    f.blocks;
  List.rev !bad

let modul (m : Types.modul) =
  let dup_globals =
    List.filteri
      (fun i (g : Types.global) ->
        List.exists
          (fun (g' : Types.global) -> g'.gname = g.gname)
          (List.filteri (fun j _ -> j < i) m.globals))
      m.globals
  in
  let global_violations =
    List.map
      (fun (g : Types.global) ->
        { func = "<module>"; message = "duplicate global " ^ g.gname })
      dup_globals
  in
  global_violations @ List.concat_map (func m) m.funcs

let check_exn m =
  match modul m with
  | [] -> ()
  | violations ->
    invalid_arg
      (Fmt.str "IR verification failed:@ %a"
         Fmt.(list ~sep:cut pp_violation)
         violations)
