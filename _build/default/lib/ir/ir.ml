(* Facade: [Ir] re-exports the IR type definitions plus the builder,
   verifier, and reference interpreter as submodules. *)

include Types
module Builder = Builder
module Verify = Verify
module Interp = Interp
