type var = Global of string | Local of string

type value = Const of int | Temp of int

type binop = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type instr =
  | Load of { dst : int; src : var; volatile : bool }
  | Store of { dst : var; src : value; volatile : bool }
  | Binop of { dst : int; op : binop; lhs : value; rhs : value }
  | Icmp of { dst : int; op : icmp; lhs : value; rhs : value }
  | Call of { dst : int option; callee : string; args : value list }

type terminator =
  | Br of string
  | Cond_br of { cond : value; if_true : string; if_false : string }
  | Switch of { value : value; cases : (int * string) list; default : string }
  | Ret of value option
  | Unreachable

type block = {
  label : string;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : string list;
  returns_value : bool;
  mutable locals : string list;
  mutable blocks : block list;
}

type global = {
  gname : string;
  init : int;
  volatile : bool;
  mutable sensitive : bool;
}

type modul = {
  mutable globals : global list;
  mutable funcs : func list;
  mutable externs : string list;
}

let mask32 v = v land 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let eval_binop op a b =
  let a = mask32 a and b = mask32 b in
  match op with
  | Add -> mask32 (a + b)
  | Sub -> mask32 (a - b)
  | Mul -> mask32 (a * b)
  | Sdiv -> if b = 0 then 0 else mask32 (to_signed a / to_signed b)
  | Srem -> if b = 0 then 0 else mask32 (to_signed a mod to_signed b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> mask32 (a lsl (b land 31))
  | Lshr -> a lsr (b land 31)
  | Ashr ->
    let s = to_signed a asr (b land 31) in
    mask32 s

let eval_icmp op a b =
  let a = mask32 a and b = mask32 b in
  let sa = to_signed a and sb = to_signed b in
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Slt -> sa < sb
    | Sle -> sa <= sb
    | Sgt -> sa > sb
    | Sge -> sa >= sb
    | Ult -> a < b
    | Ule -> a <= b
    | Ugt -> a > b
    | Uge -> a >= b
  in
  if r then 1 else 0

let negate_icmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Slt -> Sge
  | Sle -> Sgt
  | Sgt -> Sle
  | Sge -> Slt
  | Ult -> Uge
  | Ule -> Ugt
  | Ugt -> Ule
  | Uge -> Ult

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs
let find_block f label = List.find_opt (fun b -> b.label = label) f.blocks
let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

let successors = function
  | Br l -> [ l ]
  | Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]
  | Switch { cases; default; _ } -> default :: List.map snd cases
  | Ret _ | Unreachable -> []

let iter_instrs f visit =
  List.iter (fun b -> List.iter (visit b) b.instrs) f.blocks

let map_func_instrs f rewrite =
  List.iter
    (fun b -> b.instrs <- List.concat_map (fun i -> rewrite b i) b.instrs)
    f.blocks

let instr_temps = function
  | Load { dst; _ } -> [ dst ]
  | Store { src = Temp t; _ } -> [ t ]
  | Store _ -> []
  | Binop { dst; lhs; rhs; _ } | Icmp { dst; lhs; rhs; _ } ->
    dst
    :: List.filter_map (function Temp t -> Some t | Const _ -> None) [ lhs; rhs ]
  | Call { dst; args; _ } ->
    Option.to_list dst
    @ List.filter_map (function Temp t -> Some t | Const _ -> None) args

let max_temp f =
  List.fold_left
    (fun acc b ->
      let acc =
        List.fold_left
          (fun acc i -> List.fold_left max acc (instr_temps i))
          acc b.instrs
      in
      match b.term with
      | Cond_br { cond = Temp t; _ } -> max acc t
      | Switch { value = Temp t; _ } -> max acc t
      | Ret (Some (Temp t)) -> max acc t
      | Br _ | Cond_br _ | Switch _ | Ret _ | Unreachable -> acc)
    (-1) f.blocks

(* --- printing ------------------------------------------------------------ *)

let pp_var ppf = function
  | Global name -> Fmt.pf ppf "@%s" name
  | Local name -> Fmt.pf ppf "%%%s" name

let pp_value ppf = function
  | Const v -> Fmt.pf ppf "%d" (to_signed v)
  | Temp t -> Fmt.pf ppf "t%d" t

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let pp_instr ppf = function
  | Load { dst; src; volatile } ->
    Fmt.pf ppf "t%d = load%s %a" dst (if volatile then " volatile" else "") pp_var src
  | Store { dst; src; volatile } ->
    Fmt.pf ppf "store%s %a, %a" (if volatile then " volatile" else "") pp_var dst
      pp_value src
  | Binop { dst; op; lhs; rhs } ->
    Fmt.pf ppf "t%d = %s %a, %a" dst (binop_name op) pp_value lhs pp_value rhs
  | Icmp { dst; op; lhs; rhs } ->
    Fmt.pf ppf "t%d = icmp %s %a, %a" dst (icmp_name op) pp_value lhs pp_value rhs
  | Call { dst; callee; args } -> (
    let pp_args = Fmt.(list ~sep:(any ", ") pp_value) in
    match dst with
    | Some d -> Fmt.pf ppf "t%d = call %s(%a)" d callee pp_args args
    | None -> Fmt.pf ppf "call %s(%a)" callee pp_args args)

let pp_terminator ppf = function
  | Br l -> Fmt.pf ppf "br %s" l
  | Cond_br { cond; if_true; if_false } ->
    Fmt.pf ppf "br %a, %s, %s" pp_value cond if_true if_false
  | Switch { value; cases; default } ->
    Fmt.pf ppf "switch %a, default %s [%a]" pp_value value default
      Fmt.(list ~sep:(any "; ") (pair ~sep:(any " -> ") int string))
      cases
  | Ret None -> Fmt.string ppf "ret void"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_value v
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:" b.label;
  List.iter (fun i -> Fmt.pf ppf "@ %a" pp_instr i) b.instrs;
  Fmt.pf ppf "@ %a@]" pp_terminator b.term

let pp_func ppf f =
  Fmt.pf ppf "@[<v>func %s(%a)%s {@ %a@ }@]" f.fname
    Fmt.(list ~sep:(any ", ") string)
    f.params
    (if f.returns_value then " : i32" else "")
    Fmt.(list ~sep:cut pp_block)
    f.blocks

let pp_modul ppf m =
  List.iter
    (fun g ->
      Fmt.pf ppf "global @%s = %d%s%s@."
        g.gname (to_signed g.init)
        (if g.volatile then " volatile" else "")
        (if g.sensitive then " sensitive" else ""))
    m.globals;
  List.iter (fun f -> Fmt.pf ppf "%a@.@." pp_func f) m.funcs
