(** Instruction-level bit-flip models.

    Published fault characterisations (cited in Section IV of the paper)
    find glitch-induced flips to be mostly unidirectional: clock and
    voltage glitches overwhelmingly clear bits (1 -> 0, the [And] model)
    while some technologies set them (0 -> 1, the [Or] model).
    Bidirectional flips ([Xor]) are possible but improbable. *)

type flip =
  | And  (** clear the bits not selected by the mask: [word land mask] *)
  | Or  (** set the bits selected by the mask: [word lor mask] *)
  | Xor  (** toggle the bits selected by the mask: [word lxor mask] *)

val all : flip list
val name : flip -> string

val apply : flip -> mask:int -> int -> int

val identity_mask : flip -> width:int -> int
(** The mask that leaves a word unmodified: all-ones for [And], zero for
    [Or]/[Xor]. *)

val flipped_bits : flip -> width:int -> mask:int -> int
(** How many bit positions the mask can possibly change: for [And] the
    number of zeros in the mask, for [Or]/[Xor] the number of ones. This
    is the x-axis of Figure 2. *)
