let pct p = Fmt.str "%.1f" p

let sorted_by_success results =
  List.sort
    (fun a b ->
      compare
        (Campaign.category_percent b Campaign.Success)
        (Campaign.category_percent a Campaign.Success))
    results

let outcome_table results =
  let header =
    "Instr" :: List.map Campaign.category_name Campaign.categories
  in
  let rows =
    List.map
      (fun (r : Campaign.result) ->
        r.case.name
        :: List.map
             (fun cat -> pct (Campaign.category_percent r cat))
             Campaign.categories)
      (sorted_by_success results)
  in
  Stats.Table.render ~header rows

let success_by_weight_table results =
  let results = sorted_by_success results in
  let header =
    "Flipped bits" :: List.map (fun (r : Campaign.result) -> r.case.name) results
  in
  let weights =
    match results with
    | [] -> []
    | r :: _ ->
      List.filter_map
        (fun (w, _) -> if w = 0 then None else Some w)
        (Campaign.success_rate_by_weight r)
  in
  let rows =
    List.map
      (fun w ->
        string_of_int w
        :: List.map
             (fun r ->
               match List.assoc_opt w (Campaign.success_rate_by_weight r) with
               | Some rate -> pct rate
               | None -> "-")
             results)
      weights
  in
  Stats.Table.render ~header rows

let mean_success_rate results =
  match results with
  | [] -> 0.
  | _ ->
    let rates =
      List.map (fun r -> Campaign.category_percent r Campaign.Success) results
    in
    List.fold_left ( +. ) 0. rates /. float_of_int (List.length rates)

let summary_line results =
  match results with
  | [] -> "no results"
  | (r : Campaign.result) :: _ ->
    Fmt.str "%s model: mean success rate %.1f%% across %d instructions"
      (Fault_model.name r.config.flip)
      (mean_success_rate results) (List.length results)
