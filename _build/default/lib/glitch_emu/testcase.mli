(** Hand-written snippets that isolate one instruction under glitch, in
    the style of the paper's emulation framework: "a successful glitch
    (i.e., the targeted instruction was skipped) will place [a marker] in
    a known register, and a normal execution will place [a different
    marker] in a separate known register".

    Thumb immediates are 8-bit, so the markers are [0xAD] (in {!skip_reg},
    standing in for the paper's [0xdead]) and [0xAA] (in {!normal_reg},
    for [0xaaaa]). *)

type t = {
  name : string;  (** e.g. "BEQ" *)
  source : string;  (** assembly text *)
  instrs : Thumb.Instr.t list;  (** assembled form *)
  target_index : int;  (** halfword index of the instruction under glitch *)
}

val skip_reg : Thumb.Reg.t
(** [r5]; holds {!skip_marker} iff the instruction after the target
    executed (i.e. the branch was "skipped"). *)

val skip_marker : int

val normal_reg : Thumb.Reg.t
(** [r6]; holds {!normal_marker} when the snippet ran to completion. *)

val normal_marker : int

val target_word : t -> int
(** Encoding of the instruction under glitch. *)

val conditional_branch : Thumb.Instr.cond -> t
(** Snippet whose flags make [B<cond>] taken, so the fall-through
    instruction only executes if the branch is corrupted. *)

val all_conditional_branches : t list
(** One test per condition code, in Figure 2's instruction set. *)

val store_case : t
val load_case : t
val alu_case : t

val non_branch_cases : t list
(** Extension of the Figure 2 study to non-branch instructions (the
    paper: "in the limit, glitching could ... skip every defensive
    instruction"). Each snippet arranges for the skip marker to appear
    iff the target instruction's architectural effect is missing. *)
