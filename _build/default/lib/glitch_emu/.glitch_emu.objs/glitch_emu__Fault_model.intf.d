lib/glitch_emu/fault_model.mli:
