lib/glitch_emu/bitmask.ml: List
