lib/glitch_emu/testcase.mli: Thumb
