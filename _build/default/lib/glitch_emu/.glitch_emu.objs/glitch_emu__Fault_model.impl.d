lib/glitch_emu/fault_model.ml: Bitmask
