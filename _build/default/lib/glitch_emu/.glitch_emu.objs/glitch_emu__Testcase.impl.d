lib/glitch_emu/testcase.ml: List Printf String Thumb
