lib/glitch_emu/report.ml: Campaign Fault_model Fmt List Stats
