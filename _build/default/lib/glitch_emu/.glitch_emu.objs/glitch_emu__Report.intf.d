lib/glitch_emu/report.mli: Campaign
