lib/glitch_emu/campaign.mli: Fault_model Testcase
