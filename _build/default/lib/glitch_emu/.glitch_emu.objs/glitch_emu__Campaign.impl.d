lib/glitch_emu/campaign.ml: Array Bitmask Cpu Exec Fault_model List Machine Memory Stats Testcase Thumb
