lib/glitch_emu/bitmask.mli:
