(** Text rendering of campaign results in the shape of Figure 2: a
    success-rate series per instruction (by number of flipped bits) and a
    per-instruction outcome histogram. *)

val outcome_table : Campaign.result list -> string
(** One row per instruction, sorted by descending success rate (the
    order Figure 2 plots), with a column per outcome category. *)

val success_by_weight_table : Campaign.result list -> string
(** Rows = number of flipped bits (1..16), one column per instruction:
    the success percentage among all masks of that weight. *)

val summary_line : Campaign.result list -> string
(** Aggregate success rate across all instructions and weights, e.g. for
    the paper's headline "60% when flipping to 0 / 30% when flipping
    to 1" comparison. *)

val mean_success_rate : Campaign.result list -> float
