type flip = And | Or | Xor

let all = [ And; Or; Xor ]
let name = function And -> "AND" | Or -> "OR" | Xor -> "XOR"

let apply flip ~mask word =
  match flip with
  | And -> word land mask
  | Or -> word lor mask
  | Xor -> word lxor mask

let identity_mask flip ~width =
  match flip with And -> (1 lsl width) - 1 | Or | Xor -> 0

let flipped_bits flip ~width ~mask =
  match flip with
  | And -> width - Bitmask.popcount mask
  | Or | Xor -> Bitmask.popcount mask
