(** Exhaustive bit-mask enumeration: every (n choose k) combination of k
    set bits within an n-bit word, as used by the paper's emulation
    framework (Section IV) to model unidirectional bit flips. *)

val popcount : int -> int

val choose : int -> int -> int
(** [choose n k] is the binomial coefficient; 0 when [k < 0 || k > n]. *)

val iter_of_weight : width:int -> weight:int -> (int -> unit) -> unit
(** Visit every [width]-bit mask with exactly [weight] set bits, in
    increasing numeric order. *)

val of_weight : width:int -> weight:int -> int list

val iter_all : width:int -> (weight:int -> mask:int -> unit) -> unit
(** Visit all [2^width] masks, announcing each mask's weight. *)
